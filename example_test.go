package raidrel_test

import (
	"fmt"

	"raidrel"
)

// ExampleMTTDL reproduces the paper's equation 3 worked example.
func ExampleMTTDL() {
	mttdl, err := raidrel.MTTDL(raidrel.MTTDLInput{N: 7, MTBF: 461386, MTTR: 12})
	if err != nil {
		fmt.Println(err)
		return
	}
	expected, err := raidrel.ExpectedDDFs(raidrel.MTTDLInput{N: 7, MTBF: 461386, MTTR: 12}, 87600, 1000)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("MTTDL: %.0f years\n", mttdl/raidrel.HoursPerYear)
	fmt.Printf("expected DDFs, 10 years x 1000 groups: %.3f\n", expected)
	// Output:
	// MTTDL: 36176 years
	// expected DDFs, 10 years x 1000 groups: 0.276
}

// ExampleNew runs a small reduced-mission study.
func ExampleNew() {
	params := raidrel.BaseCase()
	params.MissionHours = 8760 // one year
	model, err := raidrel.New(params)
	if err != nil {
		fmt.Println(err)
		return
	}
	result, err := model.Run(2000, 20070625)
	if err != nil {
		fmt.Println(err)
		return
	}
	count := result.DDFsPer1000GroupsAt(8760)
	fmt.Printf("first-year DDFs per 1000 groups: %.1f (MTTDL predicts 0.028)\n", count)
	fmt.Println("orders of magnitude apart:", count > 1)
	// Output:
	// first-year DDFs per 1000 groups: 14.0 (MTTDL predicts 0.028)
	// orders of magnitude apart: true
}
