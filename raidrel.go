// Package raidrel estimates the reliability of RAID storage systems with
// the enhanced model of Elerath & Pecht, "Enhanced Reliability Modeling of
// RAID Storage Systems" (DSN 2007): per-drive three-parameter Weibull
// distributions for operational failure, restoration, latent-defect
// creation, and scrubbing, evaluated by sequential Monte Carlo simulation
// of double-disk failures (DDFs). It corrects the classical MTTDL
// method's homogeneous-Poisson assumptions and accounts for silent data
// corruption.
//
// This root package is the stable public facade over the internal
// implementation packages. Quick start:
//
//	model, err := raidrel.New(raidrel.BaseCase())
//	if err != nil { ... }
//	res, err := model.Run(10000, 1) // 10,000 RAID groups, seed 1
//	if err != nil { ... }
//	fmt.Println(res.DDFsPer1000GroupsAt(87600)) // DDFs per 1,000 groups in 10 years
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced table and figure.
package raidrel

import (
	"raidrel/internal/analytic"
	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// Re-exported model types. The core package defines the implementation;
// these aliases are the supported public names.
type (
	// Params parameterizes a study: group structure, mission, and the four
	// transition distributions of the paper's Fig. 4.
	Params = core.Params
	// WeibullSpec is a three-parameter Weibull in (γ location, η scale,
	// β shape) form.
	WeibullSpec = core.WeibullSpec
	// Model is a validated, runnable study.
	Model = core.Model
	// Result aggregates one Monte Carlo campaign.
	Result = core.Result
	// MTTDLComparison contrasts the simulation with the MTTDL estimate.
	MTTDLComparison = core.MTTDLComparison
	// SparePolicy bounds the spare-drive pool (Params.Spares); nil keeps
	// the paper's always-available-spare assumption.
	SparePolicy = sim.SparePolicy
)

// BaseCase returns the paper's Table 2 base case: an 8-drive RAID 4/5
// group on a 10-year mission with latent defects and 168-hour scrubbing.
func BaseCase() Params { return core.BaseCase() }

// New validates params and returns a runnable model.
func New(p Params) (*Model, error) { return core.New(p) }

// MTTDLInput holds the constant-rate inputs of the classical calculation.
type MTTDLInput = analytic.MTTDLInput

// MTTDL returns the classical mean time to data loss (the paper's eq. 1)
// in hours.
func MTTDL(in MTTDLInput) (float64, error) { return analytic.MTTDL(in) }

// ExpectedDDFs returns the homogeneous-Poisson DDF estimate (eq. 3) for a
// fleet over a horizon.
func ExpectedDDFs(in MTTDLInput, hours float64, groups int) (float64, error) {
	return analytic.ExpectedDDFs(in, hours, groups)
}

// MTTDLDoubleParity returns the classical RAID 6 approximation
// MTBF³/(m(m-1)(m-2)·MTTR²) with m = N+2 — as blind to latent defects as
// equation 1.
func MTTDLDoubleParity(in MTTDLInput) (float64, error) {
	return analytic.MTTDLDoubleParity(in)
}

// HoursPerYear is the paper's 8,760-hour year.
const HoursPerYear = analytic.HoursPerYear
