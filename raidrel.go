// Package raidrel estimates the reliability of RAID storage systems with
// the enhanced model of Elerath & Pecht, "Enhanced Reliability Modeling of
// RAID Storage Systems" (DSN 2007): per-drive three-parameter Weibull
// distributions for operational failure, restoration, latent-defect
// creation, and scrubbing, evaluated by sequential Monte Carlo simulation
// of double-disk failures (DDFs). It corrects the classical MTTDL
// method's homogeneous-Poisson assumptions and accounts for silent data
// corruption.
//
// This root package is the stable public facade over the internal
// implementation packages. Quick start:
//
//	model, err := raidrel.New(raidrel.BaseCase())
//	if err != nil { ... }
//	res, err := model.Run(10000, 1) // 10,000 RAID groups, seed 1
//	if err != nil { ... }
//	fmt.Println(res.DDFsPer1000GroupsAt(87600)) // DDFs per 1,000 groups in 10 years
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every reproduced table and figure.
package raidrel

import (
	"io"

	"raidrel/internal/analytic"
	"raidrel/internal/campaign"
	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// Re-exported model types. The core package defines the implementation;
// these aliases are the supported public names.
type (
	// Params parameterizes a study: group structure, mission, and the four
	// transition distributions of the paper's Fig. 4.
	Params = core.Params
	// WeibullSpec is a three-parameter Weibull in (γ location, η scale,
	// β shape) form.
	WeibullSpec = core.WeibullSpec
	// Model is a validated, runnable study.
	Model = core.Model
	// Result aggregates one Monte Carlo campaign.
	Result = core.Result
	// MTTDLComparison contrasts the simulation with the MTTDL estimate.
	MTTDLComparison = core.MTTDLComparison
	// SparePolicy bounds the spare-drive pool (Params.Spares); nil keeps
	// the paper's always-available-spare assumption.
	SparePolicy = sim.SparePolicy
	// Bias configures failure-biased importance sampling (Params.Bias):
	// hazards are scaled up during sampling and every estimate is
	// reweighted by the likelihood ratio, accelerating rare-event
	// campaigns without biasing the expectation. The zero value is plain
	// Monte Carlo.
	Bias = sim.Bias
)

// Adaptive-campaign types (Model.RunAdaptive): DDFs are rare events, so
// instead of a fixed iteration count the orchestrator runs batches until
// the Wilson confidence interval on the per-group DDF probability reaches
// a target relative half-width or a budget runs out, checkpointing after
// every batch so a killed campaign resumes bit-for-bit identically.
type (
	// AdaptiveOptions steers an adaptive campaign: precision target,
	// budgets, batch size, checkpoint/resume paths, progress sink.
	AdaptiveOptions = core.AdaptiveOptions
	// AdaptiveResult couples the usual Result with campaign telemetry.
	AdaptiveResult = core.AdaptiveResult
	// CampaignResult is the orchestrator's view: iterations, CI, batches,
	// stopping reason.
	CampaignResult = campaign.Result
	// Progress receives a telemetry Snapshot after every batch.
	Progress = campaign.Progress
	// ProgressFunc adapts a function to the Progress interface.
	ProgressFunc = campaign.ProgressFunc
	// Snapshot is one telemetry frame: iterations/sec, DDF counts by
	// cause, CI width, ETA.
	Snapshot = campaign.Snapshot
	// StopReason records which stopping rule ended a campaign.
	StopReason = campaign.StopReason
)

// Stopping reasons reported in CampaignResult.Reason.
const (
	// StopTarget: the CI reached the target relative half-width.
	StopTarget = campaign.StopTarget
	// StopMaxIterations: the iteration budget was exhausted.
	StopMaxIterations = campaign.StopMaxIterations
	// StopMaxDuration: the wall-clock budget was exhausted.
	StopMaxDuration = campaign.StopMaxDuration
	// StopCancelled: the context was cancelled between batches.
	StopCancelled = campaign.StopCancelled
)

// StderrProgress returns the default campaign telemetry reporter, writing
// one status line per batch to standard error.
func StderrProgress() Progress { return campaign.StderrProgress() }

// WriterProgress returns a campaign telemetry reporter writing to w.
func WriterProgress(w io.Writer) Progress { return campaign.WriterProgress(w) }

// BaseCase returns the paper's Table 2 base case: an 8-drive RAID 4/5
// group on a 10-year mission with latent defects and 168-hour scrubbing.
func BaseCase() Params { return core.BaseCase() }

// New validates params and returns a runnable model.
func New(p Params) (*Model, error) { return core.New(p) }

// MTTDLInput holds the constant-rate inputs of the classical calculation.
type MTTDLInput = analytic.MTTDLInput

// MTTDL returns the classical mean time to data loss (the paper's eq. 1)
// in hours.
func MTTDL(in MTTDLInput) (float64, error) { return analytic.MTTDL(in) }

// ExpectedDDFs returns the homogeneous-Poisson DDF estimate (eq. 3) for a
// fleet over a horizon.
func ExpectedDDFs(in MTTDLInput, hours float64, groups int) (float64, error) {
	return analytic.ExpectedDDFs(in, hours, groups)
}

// MTTDLDoubleParity returns the classical RAID 6 approximation
// MTBF³/(m(m-1)(m-2)·MTTR²) with m = N+2 — as blind to latent defects as
// equation 1.
func MTTDLDoubleParity(in MTTDLInput) (float64, error) {
	return analytic.MTTDLDoubleParity(in)
}

// HoursPerYear is the paper's 8,760-hour year.
const HoursPerYear = analytic.HoursPerYear
