package raidrel_test

import (
	"context"
	"math"
	"testing"

	"raidrel"
)

// The facade exposes enough to reproduce the paper's headline comparison.
func TestFacadeEndToEnd(t *testing.T) {
	p := raidrel.BaseCase()
	p.MissionHours = 2 * raidrel.HoursPerYear
	m, err := raidrel.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	simulated := res.DDFsPer1000GroupsAt(p.MissionHours)
	mttdl, err := raidrel.ExpectedDDFs(raidrel.MTTDLInput{
		N: 7, MTBF: 461386, MTTR: 12,
	}, p.MissionHours, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if simulated <= 10*mttdl {
		t.Errorf("simulated %v not >> MTTDL %v", simulated, mttdl)
	}
}

func TestFacadeMTTDL(t *testing.T) {
	m, err := raidrel.MTTDL(raidrel.MTTDLInput{N: 7, MTBF: 461386, MTTR: 12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m/8760-36162) > 100 {
		t.Errorf("MTTDL = %v years", m/8760)
	}
}

func TestFacadeValidation(t *testing.T) {
	var bad raidrel.Params
	if _, err := raidrel.New(bad); err == nil {
		t.Error("zero params accepted")
	}
}

// TestFacadeRunAdaptive exercises the adaptive orchestrator through the
// public API: a budget-bounded campaign with telemetry whose final result
// matches a plain fixed-size Run of the same iteration count exactly.
func TestFacadeRunAdaptive(t *testing.T) {
	p := raidrel.BaseCase()
	p.MissionHours = 2 * raidrel.HoursPerYear
	m, err := raidrel.New(p)
	if err != nil {
		t.Fatal(err)
	}
	var frames int
	res, err := m.RunAdaptive(context.Background(), 1, raidrel.AdaptiveOptions{
		BatchSize:     200,
		MaxIterations: 500,
		Progress:      raidrel.ProgressFunc(func(s raidrel.Snapshot) { frames++ }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign.Reason != raidrel.StopMaxIterations {
		t.Errorf("stop reason %v, want iteration budget", res.Campaign.Reason)
	}
	if res.Campaign.Iterations != 500 || res.Groups != 500 {
		t.Errorf("iterations %d / groups %d, want 500", res.Campaign.Iterations, res.Groups)
	}
	if frames == 0 {
		t.Error("progress sink never called")
	}
	fixed, err := m.Run(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.DDFsPer1000GroupsAt(p.MissionHours), fixed.DDFsPer1000GroupsAt(p.MissionHours); got != want {
		t.Errorf("adaptive curve %v != fixed-size curve %v at same iteration count", got, want)
	}
}
