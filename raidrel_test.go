package raidrel_test

import (
	"math"
	"testing"

	"raidrel"
)

// The facade exposes enough to reproduce the paper's headline comparison.
func TestFacadeEndToEnd(t *testing.T) {
	p := raidrel.BaseCase()
	p.MissionHours = 2 * raidrel.HoursPerYear
	m, err := raidrel.New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	simulated := res.DDFsPer1000GroupsAt(p.MissionHours)
	mttdl, err := raidrel.ExpectedDDFs(raidrel.MTTDLInput{
		N: 7, MTBF: 461386, MTTR: 12,
	}, p.MissionHours, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if simulated <= 10*mttdl {
		t.Errorf("simulated %v not >> MTTDL %v", simulated, mttdl)
	}
}

func TestFacadeMTTDL(t *testing.T) {
	m, err := raidrel.MTTDL(raidrel.MTTDLInput{N: 7, MTBF: 461386, MTTR: 12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m/8760-36162) > 100 {
		t.Errorf("MTTDL = %v years", m/8760)
	}
}

func TestFacadeValidation(t *testing.T) {
	var bad raidrel.Params
	if _, err := raidrel.New(bad); err == nil {
		t.Error("zero params accepted")
	}
}
