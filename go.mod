module raidrel

go 1.22
