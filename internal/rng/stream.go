package rng

// jumpPoly is the xoshiro256** jump polynomial: applying it advances the
// generator by 2^128 steps, yielding 2^128 non-overlapping subsequences.
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the generator by 2^128 steps in O(256) time. Two generators
// separated by a Jump produce non-overlapping streams for any realistic
// simulation length.
func (r *RNG) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				for i := range s {
					s[i] ^= r.s[i]
				}
			}
			r.Uint64()
		}
	}
	r.s = s
	r.hasSpare = false
}

// Split returns a new generator whose stream is guaranteed disjoint from the
// receiver's future output: the child takes the receiver's current sequence
// and the receiver jumps 2^128 steps past it.
func (r *RNG) Split() *RNG {
	child := &RNG{s: r.s}
	r.Jump()
	return child
}

// ForStream returns a generator for sub-stream `stream` of the given seed.
// The state is derived by hashing (seed, stream) through SplitMix64, so any
// two distinct (seed, stream) pairs yield statistically independent
// sequences. Unlike Split/Jump this is O(1) for any stream index, which
// lets a Monte Carlo runner assign stream i to iteration i and stay
// deterministic regardless of worker count.
func ForStream(seed, stream uint64) *RNG {
	var r RNG
	r.SeedStream(seed, stream)
	return &r
}

// SeedStream re-initializes r in place to the exact state ForStream(seed,
// stream) would return, without allocating. Monte Carlo workers use it to
// reuse one generator across millions of iterations.
func (r *RNG) SeedStream(seed, stream uint64) {
	// Two mixing rounds decorrelate adjacent stream indices.
	s1, h1 := splitMix64(seed ^ 0x6a09e667f3bcc909)
	_, h2 := splitMix64(s1 + stream*0x9e3779b97f4a7c15)
	r.Reseed(h1 ^ h2)
}

// Streams returns n mutually disjoint generators derived from seed, one per
// parallel worker. The zeroth stream starts at New(seed); each subsequent
// stream is 2^128 steps further along.
func Streams(seed uint64, n int) []*RNG {
	if n <= 0 {
		return nil
	}
	out := make([]*RNG, 0, n)
	base := New(seed)
	for i := 0; i < n; i++ {
		out = append(out, base.Split())
	}
	return out
}
