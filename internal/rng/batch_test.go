package rng

import (
	"math"
	"testing"
)

// TestUint64sMatchesSequential asserts the batched fill's contract: one
// Uint64s call produces exactly the values (and final generator state) of
// len(dst) sequential Uint64 calls.
func TestUint64sMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000} {
		batch, seq := New(123), New(123)
		dst := make([]uint64, n)
		batch.Uint64s(dst)
		for i, got := range dst {
			if want := seq.Uint64(); got != want {
				t.Fatalf("n=%d: Uint64s[%d] = %#x, sequential Uint64 = %#x", n, i, got, want)
			}
		}
		if batch.s != seq.s {
			t.Fatalf("n=%d: generator states diverge after batch fill", n)
		}
	}
}

// TestExpFloat64sMatchesSequential is the same contract for the
// exponential fill the sampler kernels batch through.
func TestExpFloat64sMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000} {
		batch, seq := New(456), New(456)
		dst := make([]float64, n)
		batch.ExpFloat64s(dst)
		for i, got := range dst {
			if want := seq.ExpFloat64(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: ExpFloat64s[%d] = %v, sequential ExpFloat64 = %v", n, i, got, want)
			}
		}
		if batch.s != seq.s {
			t.Fatalf("n=%d: generator states diverge after batch fill", n)
		}
	}
}

// TestUint64sAliasedState guards the state-hoisting optimization inside
// Uint64s: the loop keeps the xoshiro words in locals and writes them back
// once, which must stay correct for any destination slice.
func TestUint64sAliasedState(t *testing.T) {
	r := New(7)
	want := New(7)
	var wantVals [8]uint64
	for i := range wantVals {
		wantVals[i] = want.Uint64()
	}
	var dst [8]uint64
	r.Uint64s(dst[:4])
	r.Uint64s(dst[4:])
	if dst != wantVals {
		t.Fatalf("split batch fills: got %v, want %v", dst, wantVals)
	}
}

// TestFloat64sMatchesSequential is the sequential-equivalence contract for
// the uniform fill: one Float64s call produces exactly the values (and
// final generator state) of len(dst) sequential Float64 calls.
func TestFloat64sMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000} {
		batch, seq := New(789), New(789)
		dst := make([]float64, n)
		batch.Float64s(dst)
		for i, got := range dst {
			if want := seq.Float64(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: Float64s[%d] = %v, sequential Float64 = %v", n, i, got, want)
			}
		}
		if batch.s != seq.s {
			t.Fatalf("n=%d: generator states diverge after batch fill", n)
		}
	}
}

// TestFloat64sAliasedState is the state-hoisting guard for Float64s: split
// fills must continue the stream exactly where the previous fill stopped.
func TestFloat64sAliasedState(t *testing.T) {
	r := New(7)
	want := New(7)
	var wantVals [8]float64
	for i := range wantVals {
		wantVals[i] = want.Float64()
	}
	var dst [8]float64
	r.Float64s(dst[:4])
	r.Float64s(dst[4:])
	if dst != wantVals {
		t.Fatalf("split batch fills: got %v, want %v", dst, wantVals)
	}
}

// TestAntitheticComplement pins the antithetic mode's contract: the same
// seed with antithetic on yields the bitwise complement of every output
// word — so each derived uniform u' = (2^53-1-u53)/2^53 ~ 1-u — with the
// state advance untouched, and the batched fills agree with the scalar
// draws in both modes.
func TestAntitheticComplement(t *testing.T) {
	prim, anti := New(99), New(99)
	anti.SetAntithetic(true)
	if !anti.Antithetic() || prim.Antithetic() {
		t.Fatal("antithetic mode flags wrong")
	}
	for i := 0; i < 100; i++ {
		u, v := prim.Uint64(), anti.Uint64()
		if v != ^u {
			t.Fatalf("draw %d: antithetic %#x is not the complement of %#x", i, v, u)
		}
	}
	if prim.s != anti.s {
		t.Fatal("antithetic mode perturbed the state advance")
	}

	// Uniform-layer meaning: u + u' == 1 - 2^-53 exactly for every pair.
	for i := 0; i < 100; i++ {
		sum := prim.Float64() + anti.Float64()
		if sum != 1-0x1p-53 {
			t.Fatalf("pair %d: u+u' = %v, want 1-2^-53", i, sum)
		}
	}

	// Batched fills honour the mask and match scalar draws.
	batch := New(99)
	batch.SetAntithetic(true)
	var us [16]uint64
	var fs [16]float64
	batch.Uint64s(us[:])
	seq := New(99)
	seq.SetAntithetic(true)
	for i, got := range us {
		if want := seq.Uint64(); got != want {
			t.Fatalf("antithetic Uint64s[%d] = %#x, want %#x", i, got, want)
		}
	}
	batch.Float64s(fs[:])
	for i, got := range fs {
		if want := seq.Float64(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("antithetic Float64s[%d] = %v, want %v", i, got, want)
		}
	}

	// SetAntithetic(false) restores the primary stream from the same state.
	anti.SetAntithetic(false)
	if anti.Uint64() != prim.Uint64() {
		t.Fatal("clearing antithetic mode did not restore the primary stream")
	}
}

// Batched-fill micro-benchmarks, with -benchmem so allocation regressions
// in the fill paths are visible alongside the ns/op.

func BenchmarkUint64s(b *testing.B) {
	r := New(1)
	dst := make([]uint64, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(dst) * 8))
	for i := 0; i < b.N; i++ {
		r.Uint64s(dst)
	}
}

func BenchmarkExpFloat64s(b *testing.B) {
	r := New(1)
	dst := make([]float64, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(dst) * 8))
	for i := 0; i < b.N; i++ {
		r.ExpFloat64s(dst)
	}
}

func BenchmarkFloat64s(b *testing.B) {
	r := New(1)
	dst := make([]float64, 1024)
	b.ReportAllocs()
	b.SetBytes(int64(len(dst) * 8))
	for i := 0; i < b.N; i++ {
		r.Float64s(dst)
	}
}
