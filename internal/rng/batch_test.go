package rng

import (
	"math"
	"testing"
)

// TestUint64sMatchesSequential asserts the batched fill's contract: one
// Uint64s call produces exactly the values (and final generator state) of
// len(dst) sequential Uint64 calls.
func TestUint64sMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000} {
		batch, seq := New(123), New(123)
		dst := make([]uint64, n)
		batch.Uint64s(dst)
		for i, got := range dst {
			if want := seq.Uint64(); got != want {
				t.Fatalf("n=%d: Uint64s[%d] = %#x, sequential Uint64 = %#x", n, i, got, want)
			}
		}
		if batch.s != seq.s {
			t.Fatalf("n=%d: generator states diverge after batch fill", n)
		}
	}
}

// TestExpFloat64sMatchesSequential is the same contract for the
// exponential fill the sampler kernels batch through.
func TestExpFloat64sMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 1000} {
		batch, seq := New(456), New(456)
		dst := make([]float64, n)
		batch.ExpFloat64s(dst)
		for i, got := range dst {
			if want := seq.ExpFloat64(); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d: ExpFloat64s[%d] = %v, sequential ExpFloat64 = %v", n, i, got, want)
			}
		}
		if batch.s != seq.s {
			t.Fatalf("n=%d: generator states diverge after batch fill", n)
		}
	}
}

// TestUint64sAliasedState guards the state-hoisting optimization inside
// Uint64s: the loop keeps the xoshiro words in locals and writes them back
// once, which must stay correct for any destination slice.
func TestUint64sAliasedState(t *testing.T) {
	r := New(7)
	want := New(7)
	var wantVals [8]uint64
	for i := range wantVals {
		wantVals[i] = want.Uint64()
	}
	var dst [8]uint64
	r.Uint64s(dst[:4])
	r.Uint64s(dst[4:])
	if dst != wantVals {
		t.Fatalf("split batch fills: got %v, want %v", dst, wantVals)
	}
}
