package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// xoshiro256** reference vector: state seeded with s[0..3] = 1,2,3,4 must
// produce these first outputs (from the reference C implementation).
func TestXoshiroReferenceVector(t *testing.T) {
	r := &RNG{s: [4]uint64{1, 2, 3, 4}}
	want := []uint64{
		11520, 0, 1509978240,
		1215971899390074240, 1216172134540287360, 607988272756665600,
		16172922978634559625, 8476171486693032832, 10595114339597558777,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("output %d: got %d, want %d", i, got, w)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a.Reseed(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agreed on %d of 1000 draws", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	a.NormFloat64() // may set the cached spare
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Reseed state differs from New at draw %d", i)
		}
	}
	if a.NormFloat64() != b.NormFloat64() {
		t.Fatal("Reseed did not clear the cached normal spare")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(2)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		e := r.ExpFloat64()
		if e < 0 {
			t.Fatalf("negative exponential variate %v", e)
		}
		sum += e
		sumSq += e * e
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exp variance = %v, want ~1", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum, sumSq, sumCu float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
		sumCu += x * x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	skew := sumCu / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("normal third moment = %v, want ~0", skew)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		seen := make(map[int]bool)
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if n <= 3 && len(seen) != n {
			t.Errorf("Intn(%d) produced only %d distinct values in 200 draws", n, len(seen))
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	// Chi-squared with 9 dof; 99.9th percentile ~ 27.9.
	var chi2 float64
	expected := float64(draws) / n
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Errorf("chi-squared = %v exceeds 27.9 (counts %v)", chi2, counts)
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	a := New(11)
	b := New(11)
	b.Jump()
	matches := 0
	for i := 0; i < 10000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("jumped stream matched base stream on %d of 10000 draws", matches)
	}
}

func TestSplitChildEqualsParentPrefix(t *testing.T) {
	parent := New(12)
	reference := New(12)
	child := parent.Split()
	for i := 0; i < 1000; i++ {
		if child.Uint64() != reference.Uint64() {
			t.Fatalf("child stream diverged from pre-split sequence at %d", i)
		}
	}
}

func TestStreamsPairwiseDistinct(t *testing.T) {
	streams := Streams(99, 4)
	if len(streams) != 4 {
		t.Fatalf("got %d streams, want 4", len(streams))
	}
	const draws = 2000
	outputs := make([][]uint64, len(streams))
	for i, s := range streams {
		outputs[i] = make([]uint64, draws)
		for j := range outputs[i] {
			outputs[i][j] = s.Uint64()
		}
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			matches := 0
			for k := 0; k < draws; k++ {
				if outputs[i][k] == outputs[j][k] {
					matches++
				}
			}
			if matches > 2 {
				t.Errorf("streams %d and %d matched on %d of %d draws", i, j, matches, draws)
			}
		}
	}
}

func TestForStreamIndependence(t *testing.T) {
	// Distinct stream indices must give distinct sequences; same index must
	// reproduce exactly.
	a := ForStream(1, 0)
	b := ForStream(1, 1)
	c := ForStream(2, 0)
	again := ForStream(1, 0)
	matchAB, matchAC := 0, 0
	for i := 0; i < 5000; i++ {
		av := a.Uint64()
		if av != again.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
		if av == b.Uint64() {
			matchAB++
		}
		if av == c.Uint64() {
			matchAC++
		}
	}
	if matchAB > 2 || matchAC > 2 {
		t.Fatalf("streams correlated: %d, %d matches", matchAB, matchAC)
	}
}

func TestForStreamAdjacentIndices(t *testing.T) {
	// Adjacent iteration indices are the common case; make sure their
	// uniform outputs look independent (no shared prefix).
	prev := ForStream(42, 100)
	next := ForStream(42, 101)
	same := 0
	for i := 0; i < 5000; i++ {
		if prev.Uint64() == next.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("adjacent streams matched %d times", same)
	}
}

func TestStreamsEdgeCases(t *testing.T) {
	if s := Streams(1, 0); s != nil {
		t.Errorf("Streams(_, 0) = %v, want nil", s)
	}
	if s := Streams(1, -3); s != nil {
		t.Errorf("Streams(_, -3) = %v, want nil", s)
	}
}

func TestMul64Property(t *testing.T) {
	// Cross-check mul64 against math/bits semantics via big-integer-free
	// identity: (a*b) mod 2^64 must equal the lo word.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		if lo != a*b {
			return false
		}
		// Verify hi via the schoolbook decomposition with 32-bit halves.
		aLo, aHi := a&0xffffffff, a>>32
		bLo, bHi := b&0xffffffff, b>>32
		carry := ((aLo*bLo)>>32 + (aHi*bLo)&0xffffffff + (aLo*bHi)&0xffffffff) >> 32
		wantHi := aHi*bHi + (aHi*bLo)>>32 + (aLo*bHi)>>32 + carry
		return hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(17)
	for i := 0; i < 100000; i++ {
		if u := r.Float64Open(); u <= 0 || u >= 1 {
			t.Fatalf("Float64Open returned %v", u)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
