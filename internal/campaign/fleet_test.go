package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
)

// fleetSpec returns a fastConfig campaign over 8-group fleets sharing a
// single repair crew. The 100 h MTTR keeps the crew ~16% utilized, so
// every chronology accrues a nontrivial heal backlog.
func fleetSpec() Spec {
	cfg := fastConfig()
	cfg.Trans.TTR = dist.MustExponential(1e-2)
	return Spec{
		Config:    cfg,
		Seed:      81,
		BatchSize: 96,
		Fleet:     &sim.FleetOptions{Groups: 8, MaxConcurrentRebuilds: 1},
	}
}

func TestFleetCampaignRuns(t *testing.T) {
	spec := fleetSpec()
	spec.BatchSize = 100 // not a chronology multiple: defaults must round up
	spec.MaxIterations = 777
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxIterations {
		t.Fatalf("stop reason %v, want %v", res.Reason, StopMaxIterations)
	}
	// 777 rounds up to 784 = 98 whole chronologies of 8 groups.
	if res.Iterations != 784 {
		t.Fatalf("iterations %d, want budget rounded to 784", res.Iterations)
	}
	f := res.Fleet
	if f == nil || f != res.Run.Fleet {
		t.Fatal("Result.Fleet does not alias the run's backlog tally")
	}
	if f.GroupsPer != 8 || f.Chronologies != res.Iterations/8 {
		t.Fatalf("tally shape %+v for %d iterations", f, res.Iterations)
	}
	if f.Failures != f.Rebuilds+f.ActiveAtEnd+f.QueuedAtEnd {
		t.Fatalf("tally conservation violated: %+v", f)
	}
	if f.Waited == 0 || f.TotalWaitHours <= 0 {
		t.Fatalf("single-crew fleet accrued no backlog (%+v); campaign test is vacuous", f)
	}
}

// A budget-only fleet campaign reproduces the single sim.RunSparse fleet
// run: the event stream bit-for-bit, the backlog tally up to the float
// fold order of its two running sums.
func TestFleetCampaignMatchesPlainRun(t *testing.T) {
	spec := fleetSpec()
	const n = 480
	want, err := sim.RunSparse(sim.RunSpec{
		Config: spec.Config, Iterations: n, Seed: spec.Seed, Fleet: spec.Fleet,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec.MaxIterations = n
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Groups != want.Groups || !reflect.DeepEqual(res.Run.Events, want.Events) {
		t.Fatal("batched fleet campaign differs from single sim.RunSparse")
	}
	a, b := res.Fleet, want.Fleet
	if a.Chronologies != b.Chronologies || a.GroupsPer != b.GroupsPer ||
		a.Failures != b.Failures || a.Rebuilds != b.Rebuilds || a.Waited != b.Waited ||
		a.ActiveAtEnd != b.ActiveAtEnd || a.QueuedAtEnd != b.QueuedAtEnd ||
		a.MaxQueueDepth != b.MaxQueueDepth ||
		a.MaxWaitHours != b.MaxWaitHours || a.MaxExposureHours != b.MaxExposureHours {
		t.Fatalf("campaign fleet tally %+v != plain run %+v", a, b)
	}
	if relErrOf(a.TotalWaitHours, b.TotalWaitHours) > 1e-12 ||
		relErrOf(a.MeanDepthSum, b.MeanDepthSum) > 1e-12 {
		t.Fatalf("campaign fleet sums %v/%v != plain run %v/%v",
			a.TotalWaitHours, a.MeanDepthSum, b.TotalWaitHours, b.MeanDepthSum)
	}
}

func relErrOf(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if b > m {
		m = b
	}
	return d / m
}

// The subsystem's core guarantee extended to fleet campaigns: a killed and
// resumed campaign must continue the backlog tally bit-for-bit, since the
// checkpoint restores it verbatim and the remaining batches fold in the
// same order the uninterrupted run used.
func TestFleetKillResumeEqualsUninterrupted(t *testing.T) {
	spec := fleetSpec()
	spec.TargetRelErr = 0.1

	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Reason != StopTarget {
		t.Fatalf("reference campaign stopped for %v, want target", want.Reason)
	}
	if want.Fleet == nil || want.Fleet.Waited == 0 {
		t.Fatal("reference campaign accrued no backlog; test is vacuous")
	}

	path := filepath.Join(t.TempDir(), "c.json")
	ctx, cancel := context.WithCancel(context.Background())
	killed := spec
	killed.Checkpoint = path
	batches := 0
	killed.Progress = ProgressFunc(func(s Snapshot) {
		if !s.Done {
			batches++
			if batches == 2 {
				cancel()
			}
		}
	})
	part, err := Run(ctx, killed)
	if err != nil {
		t.Fatal(err)
	}
	if part.Reason != StopCancelled || part.Iterations >= want.Iterations {
		t.Fatalf("kill point %d (%v) not partway through reference %d", part.Iterations, part.Reason, want.Iterations)
	}

	resumed := spec
	resumed.Resume = path
	got, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != want.Reason || got.Iterations != want.Iterations {
		t.Fatalf("resumed campaign (%v after %d) differs from uninterrupted (%v after %d)",
			got.Reason, got.Iterations, want.Reason, want.Iterations)
	}
	if !reflect.DeepEqual(got.Run.Events, want.Run.Events) {
		t.Error("event streams differ bit-for-bit")
	}
	if got.Fleet == nil || *got.Fleet != *want.Fleet {
		t.Errorf("fleet tallies differ:\nresumed      %+v\nuninterrupted %+v", got.Fleet, want.Fleet)
	}
	if got.CI != want.CI || got.RelErr != want.RelErr {
		t.Errorf("CI differs: resumed %+v relerr=%v vs uninterrupted %+v relerr=%v",
			got.CI, got.RelErr, want.CI, want.RelErr)
	}
}

func TestFleetFingerprint(t *testing.T) {
	base := Spec{Config: fastConfig(), Seed: 1}
	fp := base.Fingerprint()

	fleet := base
	fleet.Fleet = &sim.FleetOptions{Groups: 8}
	ffp := fleet.Fingerprint()
	if ffp == fp {
		t.Error("enabling the fleet did not change the fingerprint")
	}
	size := base
	size.Fleet = &sim.FleetOptions{Groups: 16}
	if size.Fingerprint() == ffp {
		t.Error("fleet size change did not change the fingerprint")
	}
	crew := base
	crew.Fleet = &sim.FleetOptions{Groups: 8, MaxConcurrentRebuilds: 2}
	if crew.Fingerprint() == ffp {
		t.Error("repair-slot change did not change the fingerprint")
	}
	spares := base
	spares.Fleet = &sim.FleetOptions{Groups: 8, SharedSpares: &sim.SparePolicy{Initial: 2, ReplenishHours: 100}}
	if spares.Fingerprint() == ffp {
		t.Error("shared-spare policy did not change the fingerprint")
	}
}

func TestFleetSpecValidation(t *testing.T) {
	engine := fleetSpec()
	engine.Engine = sim.BlockEngine{}
	if _, err := Run(context.Background(), engine); err == nil {
		t.Error("fleet campaign with an explicit engine accepted")
	}
	offset := fleetSpec()
	offset.Offset = 4 // not a chronology boundary
	offset.MaxIterations = 96
	if _, err := Run(context.Background(), offset); err == nil {
		t.Error("fleet campaign with a mid-chronology offset accepted")
	}
	vr := fleetSpec()
	vr.Config.VR = sim.VR{Antithetic: true}
	if _, err := Run(context.Background(), vr); err == nil {
		t.Error("fleet campaign with variance reduction accepted")
	}
	bad := fleetSpec()
	bad.Fleet = &sim.FleetOptions{Groups: 0}
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("empty fleet accepted")
	}

	defaults := fleetSpec()
	defaults.BatchSize = 100
	defaults.MaxIterations = 1000
	d := defaults.withDefaults()
	if d.BatchSize != 104 || d.MaxIterations != 1000 {
		t.Errorf("defaults rounded (batch, budget) to (%d, %d), want (104, 1000)", d.BatchSize, d.MaxIterations)
	}
}

// The loader must reject tampered fleet tallies — wrong fleet shape,
// broken conservation, negative hours, or a fleet campaign whose
// checkpoint lost the tally entirely.
func TestFleetCheckpointValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := fleetSpec()
	spec.MaxIterations = 480
	spec.Checkpoint = path
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	restored, _, err := loadCheckpoint(path, spec.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Fleet == nil || *restored.Fleet != *res.Fleet {
		t.Errorf("restored fleet tally %+v differs from the live campaign's %+v", restored.Fleet, res.Fleet)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(*checkpointFile)) {
		c := doc
		fleet := *doc.Fleet
		c.Fleet = &fleet
		mutate(&c)
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeCheckpoint(raw, spec.withDefaults()); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
	corrupt("missing tally", func(c *checkpointFile) { c.Fleet = nil })
	corrupt("wrong fleet size", func(c *checkpointFile) { c.Fleet.GroupsPer = 4; c.Fleet.Chronologies *= 2 })
	corrupt("short coverage", func(c *checkpointFile) { c.Fleet.Chronologies-- })
	corrupt("broken conservation", func(c *checkpointFile) { c.Fleet.Failures++ })
	corrupt("negative count", func(c *checkpointFile) { c.Fleet.Waited = -1 })
	corrupt("negative hours", func(c *checkpointFile) { c.Fleet.TotalWaitHours = -1 })
}
