package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
	"raidrel/internal/stats"
)

// rareConfig puts the per-group DDF probability near 2e-4 — rare enough
// that reaching ±10% costs plain Monte Carlo ~2M iterations, so importance
// sampling has something real to accelerate, while the unbiased reference
// stays affordable in a test (~1s).
func rareConfig() sim.Config {
	return sim.Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    8760,
		Trans: sim.Transitions{
			TTOp: dist.MustExponential(2e-6), // MTBF 500,000 h
			TTR:  dist.MustExponential(1e-2), // MTTR 100 h
		},
	}
}

// TestCrossValidationBiasedVsUnbiased is the tentpole's correctness
// harness: the same rare-event campaign run plain and importance-sampled
// must (a) agree — overlapping confidence intervals at the same level —
// and (b) the biased run must reach the ±10% target with at least 10×
// fewer iterations. The measured counts back the BENCH_sim.json entry.
func TestCrossValidationBiasedVsUnbiased(t *testing.T) {
	const target = 0.1

	unbiased, err := Run(context.Background(), Spec{
		Config:       rareConfig(),
		Seed:         42,
		BatchSize:    50000,
		TargetRelErr: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if unbiased.Reason != StopTarget {
		t.Fatalf("unbiased campaign stopped for %v, want target", unbiased.Reason)
	}

	biasedCfg := rareConfig()
	biasedCfg.Bias.Op = 8
	biased, err := Run(context.Background(), Spec{
		Config:       biasedCfg,
		Seed:         42,
		BatchSize:    2000,
		TargetRelErr: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if biased.Reason != StopTarget {
		t.Fatalf("biased campaign stopped for %v, want target", biased.Reason)
	}
	if biased.ESS <= 0 {
		t.Error("biased campaign reports no effective sample size")
	}

	// Agreement: the two 95% intervals on the same quantity must overlap.
	// With both at ±10% a miss would be a > 3σ event, i.e. a weight bug.
	if biased.CI.Lo > unbiased.CI.Hi || unbiased.CI.Lo > biased.CI.Hi {
		t.Errorf("estimates disagree: biased CI [%g, %g] vs unbiased [%g, %g]",
			biased.CI.Lo, biased.CI.Hi, unbiased.CI.Lo, unbiased.CI.Hi)
	}

	// Acceleration: the headline claim of the feature.
	speedup := float64(unbiased.Iterations) / float64(biased.Iterations)
	t.Logf("±10%%: unbiased %d iterations, biased %d (%.0f×); unbiased CI [%g, %g], biased [%g, %g] ess=%.0f",
		unbiased.Iterations, biased.Iterations, speedup,
		unbiased.CI.Lo, unbiased.CI.Hi, biased.CI.Lo, biased.CI.Hi, biased.ESS)
	if speedup < 10 {
		t.Errorf("biased campaign took %d iterations vs %d unbiased — %.1f×, want >= 10×",
			biased.Iterations, unbiased.Iterations, speedup)
	}
}

// A biased campaign killed partway and resumed must match the
// uninterrupted run bit for bit — the weights round-trip the checkpoint.
func TestKillResumeBiasedCampaign(t *testing.T) {
	cfg := rareConfig()
	cfg.Bias.Op = 8
	spec := Spec{
		Config:       cfg,
		Seed:         42,
		BatchSize:    2000,
		TargetRelErr: 0.15,
	}

	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Reason != StopTarget {
		t.Fatalf("reference campaign stopped for %v, want target", want.Reason)
	}

	path := filepath.Join(t.TempDir(), "c.json")
	ctx, cancel := context.WithCancel(context.Background())
	killed := spec
	killed.Checkpoint = path
	batches := 0
	killed.Progress = ProgressFunc(func(s Snapshot) {
		if !s.Done {
			batches++
			if batches == 2 {
				cancel()
			}
		}
	})
	part, err := Run(ctx, killed)
	if err != nil {
		t.Fatal(err)
	}
	if part.Reason != StopCancelled {
		t.Fatalf("killed campaign stopped for %v, want cancelled", part.Reason)
	}
	if part.Iterations >= want.Iterations {
		t.Fatalf("kill point %d not partway through reference %d; test is vacuous",
			part.Iterations, want.Iterations)
	}

	resumed := spec
	resumed.Resume = path
	got, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != want.Reason || got.Iterations != want.Iterations {
		t.Fatalf("resumed campaign (%v after %d) differs from uninterrupted (%v after %d)",
			got.Reason, got.Iterations, want.Reason, want.Iterations)
	}
	if got.CI != want.CI || got.ESS != want.ESS {
		t.Errorf("weighted statistics differ: resumed CI %+v ess %v vs uninterrupted %+v ess %v",
			got.CI, got.ESS, want.CI, want.ESS)
	}
	if got.Run.Groups != want.Run.Groups || !reflect.DeepEqual(got.Run.Events, want.Run.Events) {
		t.Error("events (incl. log weights) differ bit-for-bit after resume")
	}
}

// An unbiased checkpoint must not resume into a biased campaign (or vice
// versa): the stored events lack (or carry) weights the estimator needs.
func TestResumeRejectsBiasMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := Spec{Config: fastConfig(), Seed: 1, BatchSize: 100, MaxIterations: 100, Checkpoint: path}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	biased := spec
	biased.Checkpoint = ""
	biased.Resume = path
	biased.Config.Bias.Op = 3
	if _, err := Run(context.Background(), biased); err == nil {
		t.Error("biased campaign resumed an unbiased checkpoint")
	}

	biasedPath := filepath.Join(t.TempDir(), "b.json")
	biasedSpec := spec
	biasedSpec.Config.Bias.Op = 3
	biasedSpec.Checkpoint = biasedPath
	if _, err := Run(context.Background(), biasedSpec); err != nil {
		t.Fatal(err)
	}
	otherTheta := biasedSpec
	otherTheta.Checkpoint = ""
	otherTheta.Resume = biasedPath
	otherTheta.Config.Bias.Op = 5
	if _, err := Run(context.Background(), otherTheta); err == nil {
		t.Error("campaign resumed a checkpoint written under a different bias factor")
	}
}

// The decoder must reject weight corruption: within a group the log weight
// is a single per-iteration quantity repeated on each event.
func TestDecodeCheckpointRejectsWeightMismatch(t *testing.T) {
	cfg := fastConfig()
	cfg.Bias.Op = 2
	spec := Spec{Config: cfg, Seed: 1, MaxIterations: 10}.withDefaults()
	doc := checkpointFile{
		Version:     CheckpointVersion,
		Fingerprint: spec.Fingerprint(),
		Seed:        1,
		NextStream:  10,
		Batches:     1,
		Events: []checkpointEvent{
			{Group: 3, Time: 100, Cause: int(sim.CauseOpOp), LogW: -0.5},
			{Group: 3, Time: 200, Cause: int(sim.CauseLdOp), LogW: -0.7},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeCheckpoint(data, spec); err == nil {
		t.Error("same-group events with different log weights accepted")
	}

	// The consistent version of the same document decodes fine and
	// restores the weights.
	doc.Events[1].LogW = -0.5
	data, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	run, _, err := decodeCheckpoint(data, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Weighted() {
		t.Error("restored weighted checkpoint reports no weights")
	}
	for _, e := range run.Events {
		if e.LogW != -0.5 {
			t.Errorf("restored log weight %v, want -0.5", e.LogW)
		}
	}
}

// Satellite fix: an exhausted wall-clock budget used to produce a negative
// remaining duration that eta discarded as "unknown"; it must clamp to 0.
func TestEtaClampsExhaustedWallClock(t *testing.T) {
	spec := Spec{MaxDuration: time.Second}
	if got := eta(spec, Snapshot{Elapsed: 2 * time.Second}); got != 0 {
		t.Errorf("eta with exhausted budget = %v, want 0", got)
	}
	if got := eta(spec, Snapshot{Elapsed: 400 * time.Millisecond}); got != 600*time.Millisecond {
		t.Errorf("eta with 600ms remaining = %v", got)
	}
	// No budget, no rate: still unknown.
	if got := eta(Spec{}, Snapshot{}); got != -1 {
		t.Errorf("eta with no rule = %v, want -1", got)
	}
}

// Satellite fix: the final progress line used to omit the estimate the
// whole campaign existed to produce. Pin the exact format, plain and
// weighted.
func TestWriterProgressDoneLine(t *testing.T) {
	s := Snapshot{
		Done: true, Reason: StopTarget,
		Iterations: 5000, Batches: 5, Elapsed: 1500 * time.Millisecond,
		TotalDDFs: 12, OpOpDDFs: 8, LdOpDDFs: 4, GroupsWithDDF: 11,
		CI:     stats.Interval{Lo: 0.001, Hi: 0.003, Level: 0.95},
		RelErr: 0.5,
	}

	var sb strings.Builder
	WriterProgress(&sb).Report(s)
	want := "campaign: done (target precision reached): 5000 iterations in 5 batches, 1.5s: " +
		"12 DDFs (8 op+op, 4 ld+op) p=0.0022 ci95=[0.001, 0.003] relerr=0.500\n"
	if sb.String() != want {
		t.Errorf("done line:\n got %q\nwant %q", sb.String(), want)
	}

	// Weighted campaign: p̂ is the CI midpoint and the ESS is appended.
	s.ESS = 7.5
	sb.Reset()
	WriterProgress(&sb).Report(s)
	want = "campaign: done (target precision reached): 5000 iterations in 5 batches, 1.5s: " +
		"12 DDFs (8 op+op, 4 ld+op) p=0.002 ci95=[0.001, 0.003] relerr=0.500 ess=7.5\n"
	if sb.String() != want {
		t.Errorf("weighted done line:\n got %q\nwant %q", sb.String(), want)
	}
}
