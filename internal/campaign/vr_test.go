package campaign

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
)

// vrSpec returns a fastConfig campaign with the full variance-reduction
// stack on a small block, sized so tests cross several batches quickly.
func vrSpec() Spec {
	cfg := fastConfig()
	cfg.VR = sim.VR{Antithetic: true, Stratify: true, ControlVariate: true, BlockSize: 64}
	return Spec{
		Config:    cfg,
		Seed:      77,
		BatchSize: 512,
	}
}

// TestVRKillResumeEqualsUninterrupted extends the subsystem's core
// guarantee to variance-reduced campaigns: the restored block tallies must
// continue bit-for-bit, so the resumed campaign's estimator, CI, and VR
// diagnostics all match the uninterrupted run exactly.
func TestVRKillResumeEqualsUninterrupted(t *testing.T) {
	spec := vrSpec()
	spec.TargetRelErr = 0.15
	testKillResume(t, spec)
}

// TestCondVRKillResumeEqualsUninterrupted is the same guarantee for the
// conditional-DDF variate on the scrubbed base case: the checkpoint carries
// the [0, drives] expectation and the count-valued Z sums, and the resumed
// campaign must still match bit-for-bit.
func TestCondVRKillResumeEqualsUninterrupted(t *testing.T) {
	cfg := scrubBaseConfig()
	cfg.VR = sim.VR{Antithetic: true, Stratify: true, CondVariate: true, BlockSize: 64}
	spec := Spec{
		Config:       cfg,
		Seed:         77,
		BatchSize:    1024,
		TargetRelErr: 0.015,
	}
	testKillResume(t, spec)
}

func testKillResume(t *testing.T, spec Spec) {
	t.Helper()
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Reason != StopTarget {
		t.Fatalf("reference campaign stopped for %v, want target", want.Reason)
	}
	if want.Run.VR == nil || len(want.Run.VR.Blocks) < 4 {
		t.Fatal("reference campaign accumulated no VR blocks; test is vacuous")
	}

	path := filepath.Join(t.TempDir(), "c.json")
	ctx, cancel := context.WithCancel(context.Background())
	killed := spec
	killed.Checkpoint = path
	batches := 0
	killed.Progress = ProgressFunc(func(s Snapshot) {
		if !s.Done {
			batches++
			if batches == 2 {
				cancel()
			}
		}
	})
	part, err := Run(ctx, killed)
	if err != nil {
		t.Fatal(err)
	}
	if part.Reason != StopCancelled || part.Iterations >= want.Iterations {
		t.Fatalf("kill point %d (%v) not partway through reference %d", part.Iterations, part.Reason, want.Iterations)
	}

	resumed := spec
	resumed.Resume = path
	got, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != want.Reason || got.Iterations != want.Iterations {
		t.Fatalf("resumed campaign (%v after %d) differs from uninterrupted (%v after %d)",
			got.Reason, got.Iterations, want.Reason, want.Iterations)
	}
	if !reflect.DeepEqual(got.Run.Events, want.Run.Events) {
		t.Error("event streams differ bit-for-bit")
	}
	if !reflect.DeepEqual(got.Run.VR, want.Run.VR) {
		t.Errorf("VR tallies differ:\nresumed      %+v\nuninterrupted %+v", got.Run.VR, want.Run.VR)
	}
	if got.CI != want.CI || got.RelErr != want.RelErr {
		t.Errorf("CI differs: resumed %+v relerr=%v vs uninterrupted %+v relerr=%v",
			got.CI, got.RelErr, want.CI, want.RelErr)
	}
	if got.VRPairs != want.VRPairs || got.VRCoeff != want.VRCoeff || got.VRFactor != want.VRFactor {
		t.Errorf("VR diagnostics differ: resumed (%d, %v, %v) vs uninterrupted (%d, %v, %v)",
			got.VRPairs, got.VRCoeff, got.VRFactor, want.VRPairs, want.VRCoeff, want.VRFactor)
	}
	if !reflect.DeepEqual(got.VRByVariate, want.VRByVariate) {
		t.Errorf("VR breakdown differs: resumed %+v vs uninterrupted %+v", got.VRByVariate, want.VRByVariate)
	}
}

// TestVRCampaignEstimator sanity-checks the block-mean estimator against
// the plain Wilson campaign on the same configuration: the variance-reduced
// point estimate must land near the plain estimate, the antithetic pair
// count must cover half the iterations, and the reported reduction factor
// must be positive.
func TestVRCampaignEstimator(t *testing.T) {
	plain, err := Run(context.Background(), Spec{
		Config: fastConfig(), Seed: 5, BatchSize: 4096, MaxIterations: 16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	pRef := float64(plain.GroupsWithDDF) / float64(plain.Iterations)

	spec := vrSpec()
	spec.Seed = 5
	spec.MaxIterations = 16384
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 16384 {
		t.Fatalf("VR campaign ran %d iterations, want 16384", res.Iterations)
	}
	if res.VRPairs != res.Iterations/2 {
		t.Errorf("VRPairs = %d, want %d", res.VRPairs, res.Iterations/2)
	}
	if res.VRFactor <= 0 {
		t.Errorf("VRFactor = %v, want > 0", res.VRFactor)
	}
	center := (res.CI.Lo + res.CI.Hi) / 2
	// Both estimates carry O(1/sqrt(n)) noise; 5 combined standard errors is a
	// generous agreement band that still catches a broken estimator.
	se := 5 * math.Sqrt(pRef*(1-pRef)/float64(res.Iterations)) * 2
	if math.Abs(center-pRef) > se {
		t.Errorf("VR estimate %v far from plain estimate %v (band %v)", center, pRef, se)
	}
	if res.CI.Lo < 0 {
		t.Errorf("CI lower bound %v negative after clamping", res.CI.Lo)
	}
}

// TestVRSpecAlignment: batch sizes and iteration budgets are rounded up to
// whole VR blocks, the engine defaults to the block engine, and misaligned
// shard offsets or non-block engines are rejected outright.
func TestVRSpecAlignment(t *testing.T) {
	spec := vrSpec()
	spec.BatchSize = 100 // not a multiple of 64
	spec.MaxIterations = 70
	d := spec.withDefaults()
	if d.BatchSize != 128 {
		t.Errorf("BatchSize defaulted to %d, want 128", d.BatchSize)
	}
	if d.MaxIterations != 128 {
		t.Errorf("MaxIterations defaulted to %d, want 128", d.MaxIterations)
	}
	if _, ok := d.Engine.(sim.BlockEngine); !ok {
		t.Errorf("engine defaulted to %T, want sim.BlockEngine", d.Engine)
	}

	offset := vrSpec()
	offset.MaxIterations = 128
	offset.Offset = 96 // not a multiple of 64
	if err := offset.Validate(); err == nil {
		t.Error("misaligned VR shard offset accepted")
	}
	offset.Offset = 128
	if err := offset.Validate(); err != nil {
		t.Errorf("aligned VR shard offset rejected: %v", err)
	}

	wrongEngine := vrSpec()
	wrongEngine.MaxIterations = 128
	wrongEngine.Engine = sim.IntervalEngine{}
	if err := wrongEngine.Validate(); err == nil {
		t.Error("VR with a non-block engine accepted")
	}
}

// TestVRFingerprint: enabling VR must change the campaign identity (the
// block tallies are incompatible), while a zero VR value must reproduce the
// legacy digest so existing checkpoints stay resumable.
func TestVRFingerprint(t *testing.T) {
	base := Spec{Config: fastConfig(), Seed: 1}
	fp := base.Fingerprint()

	zero := base
	zero.Config.VR = sim.VR{}
	if zero.Fingerprint() != fp {
		t.Error("zero VR value perturbed the fingerprint (legacy checkpoints orphaned)")
	}
	// A bare block size without any technique is scheduling, not identity.
	sched := base
	sched.Config.VR = sim.VR{BlockSize: 128}
	if sched.Fingerprint() != fp {
		t.Error("bare VR block size perturbed the fingerprint")
	}

	vr := base
	vr.Config.VR = sim.VR{Antithetic: true}
	if vr.Fingerprint() == fp {
		t.Error("enabling VR did not change the fingerprint")
	}
	other := base
	other.Config.VR = sim.VR{Antithetic: true, BlockSize: 128}
	if other.Fingerprint() == vr.Fingerprint() {
		t.Error("VR block size change did not change the fingerprint")
	}
}

// TestVRCheckpointValidation: the loader must reject tampered VR tallies —
// wrong iteration coverage, impossible block sizes, or a VR campaign whose
// checkpoint lost its tallies entirely.
func TestVRCheckpointValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := vrSpec()
	spec.MaxIterations = 512
	spec.Checkpoint = path
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	restored, _, err := loadCheckpoint(path, spec.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.VR, res.Run.VR) {
		t.Error("restored VR tallies differ from the live campaign's")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func(*checkpointFile)) {
		c := doc
		c.VR = &checkpointVR{BlockSize: doc.VR.BlockSize, EZ: doc.VR.EZ, Blocks: append([]sim.VRBlock(nil), doc.VR.Blocks...)}
		mutate(&c)
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeCheckpoint(raw, spec.withDefaults()); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
	corrupt("missing tallies", func(c *checkpointFile) { c.VR = nil })
	corrupt("short coverage", func(c *checkpointFile) { c.VR.Blocks = c.VR.Blocks[:len(c.VR.Blocks)-1] })
	corrupt("bad block size", func(c *checkpointFile) { c.VR.BlockSize = 0 })
	corrupt("oversized block", func(c *checkpointFile) { c.VR.Blocks[0].N += c.VR.BlockSize; c.VR.Blocks[1].N -= c.VR.BlockSize })
	corrupt("impossible pairs", func(c *checkpointFile) { c.VR.Blocks[0].P = c.VR.Blocks[0].N })
	corrupt("bad expectation", func(c *checkpointFile) { c.VR.EZ = 1.5 })
}

// TestSnapshotVRJSONRoundTrip: the VR diagnostics must survive the wire
// form, since raidreld streams Snapshots to clients as SSE frames.
func TestSnapshotVRJSONRoundTrip(t *testing.T) {
	s := Snapshot{
		Iterations:    4096,
		Batches:       4,
		GroupsWithDDF: 120,
		RelErr:        0.21,
		VRPairs:       2048,
		VRCoeff:       0.83,
		VRFactor:      3.7,
		VRByVariate:   &VRBreakdown{Antithetic: 1.2, Stratified: 1.1, Cond: 5.9},
		ETA:           -1,
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("round trip changed the snapshot:\n got %+v\nwant %+v", back, s)
	}

	// VR-off snapshots must not emit the VR keys at all.
	off, err := json.Marshal(Snapshot{Iterations: 10, RelErr: math.Inf(1), ETA: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"vr_pairs", "vr_coeff", "vr_factor", "vr_breakdown"} {
		if jsonHasKey(off, key) {
			t.Errorf("VR-off snapshot emitted %q: %s", key, off)
		}
	}
}

func jsonHasKey(data []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// noScrubBaseConfig is the paper's no-scrub base case (the Table 3
// baseline row / Fig. 7 upper curve): the full Weibull parameterization
// with latent defects but scrubbing disabled. With defects never cleared,
// the control variate — 1{any first-generation operational failure within
// the mission} — predicts the DDF indicator almost perfectly, which is the
// regime the stacked estimator is built for.
func noScrubBaseConfig() sim.Config {
	return sim.Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: sim.Transitions{
			TTOp: dist.MustWeibull(1.12, 461386, 0),
			TTR:  dist.MustWeibull(2, 12, 6),
			TTLd: dist.MustWeibull(1, 9259, 0),
		},
	}
}

// TestVREfficiencyFigure measures the headline statistical claim backing
// the BENCH_sim.json "variance_reduction" entry and gated by
// scripts/benchgate.sh: on the paper's no-scrub base case the stacked
// antithetic/stratified/control-variate estimator must reach the same
// relative-CI target with at least 2× fewer iterations than the plain
// Wilson campaign, while agreeing with it. (Measured headroom is ~8× at
// the iteration granularity below; the per-block variance-reduction
// factor itself is ~60×.)
func TestVREfficiencyFigure(t *testing.T) {
	const target = 0.01
	cfg := noScrubBaseConfig()

	plain, err := Run(context.Background(), Spec{
		Config:       cfg,
		Seed:         7,
		BatchSize:    512,
		TargetRelErr: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Reason != StopTarget {
		t.Fatalf("plain campaign stopped for %v, want target", plain.Reason)
	}

	vrCfg := cfg
	vrCfg.VR = sim.VR{Antithetic: true, Stratify: true, ControlVariate: true}
	vr, err := Run(context.Background(), Spec{
		Config:        vrCfg,
		Seed:          7,
		BatchSize:     512,
		MinIterations: 2048, // ≥ 8 blocks before the block-mean CI may stop
		TargetRelErr:  target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vr.Reason != StopTarget {
		t.Fatalf("VR campaign stopped for %v, want target", vr.Reason)
	}

	// Agreement at the same level: overlapping 95% intervals.
	if vr.CI.Lo > plain.CI.Hi || plain.CI.Lo > vr.CI.Hi {
		t.Errorf("estimates disagree: VR CI [%g, %g] vs plain [%g, %g]",
			vr.CI.Lo, vr.CI.Hi, plain.CI.Lo, plain.CI.Hi)
	}

	speedup := float64(plain.Iterations) / float64(vr.Iterations)
	t.Logf("±%.0f%%: plain %d iterations, VR stack %d (%.1f×); plain CI [%g, %g], VR [%g, %g] vrfactor=%.2f coeff=%.3f",
		target*100, plain.Iterations, vr.Iterations, speedup,
		plain.CI.Lo, plain.CI.Hi, vr.CI.Lo, vr.CI.Hi, vr.VRFactor, vr.VRCoeff)
	if speedup < 2 {
		t.Errorf("VR campaign took %d iterations vs %d plain — %.1f×, want >= 2×",
			vr.Iterations, plain.Iterations, speedup)
	}
	if vr.VRFactor < 2 {
		t.Errorf("variance-reduction factor %.2f, want >= 2", vr.VRFactor)
	}
}

// scrubBaseConfig is the paper's scrubbed base case (the Table 3 scrub row /
// Fig. 7 lower curve): full Weibull parameterization with the 168-hour
// scrub cycle. Scrubbing erases defect persistence, so the indicator
// control loses nearly all its correlation and the conditional-DDF variate
// is the technique that matters here.
func scrubBaseConfig() sim.Config {
	cfg := noScrubBaseConfig()
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	return cfg
}

// TestVREfficiencyFigureScrubbed is the scrubbed-regime counterpart of
// TestVREfficiencyFigure, gated by scripts/benchgate.sh: with the
// conditional-DDF variate replacing the indicator control, the stacked
// estimator must reach the ±1% relative-CI target with at least 3× fewer
// iterations than the plain Wilson campaign — the headline claim of the
// cond-variate work. (Measured headroom is ~2× above the gate at the batch
// granularity below.)
func TestVREfficiencyFigureScrubbed(t *testing.T) {
	const target = 0.01
	cfg := scrubBaseConfig()

	plain, err := Run(context.Background(), Spec{
		Config:       cfg,
		Seed:         7,
		BatchSize:    2048,
		TargetRelErr: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Reason != StopTarget {
		t.Fatalf("plain campaign stopped for %v, want target", plain.Reason)
	}

	vrCfg := cfg
	vrCfg.VR = sim.VR{Antithetic: true, Stratify: true, CondVariate: true}
	vr, err := Run(context.Background(), Spec{
		Config:        vrCfg,
		Seed:          7,
		BatchSize:     2048,
		MinIterations: 2048, // ≥ 8 blocks before the block-mean CI may stop
		TargetRelErr:  target,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vr.Reason != StopTarget {
		t.Fatalf("VR campaign stopped for %v, want target", vr.Reason)
	}

	// Agreement at the same level: overlapping 95% intervals.
	if vr.CI.Lo > plain.CI.Hi || plain.CI.Lo > vr.CI.Hi {
		t.Errorf("estimates disagree: VR CI [%g, %g] vs plain [%g, %g]",
			vr.CI.Lo, vr.CI.Hi, plain.CI.Lo, plain.CI.Hi)
	}

	speedup := float64(plain.Iterations) / float64(vr.Iterations)
	t.Logf("±%.0f%%: plain %d iterations, cond-VR stack %d (%.1f×); plain CI [%g, %g], VR [%g, %g] vrfactor=%.2f coeff=%.3f breakdown=%+v",
		target*100, plain.Iterations, vr.Iterations, speedup,
		plain.CI.Lo, plain.CI.Hi, vr.CI.Lo, vr.CI.Hi, vr.VRFactor, vr.VRCoeff, vr.VRByVariate)
	if speedup < 3 {
		t.Errorf("cond-VR campaign took %d iterations vs %d plain — %.1f×, want >= 3×",
			vr.Iterations, plain.Iterations, speedup)
	}
	if vr.VRFactor < 3 {
		t.Errorf("variance-reduction factor %.2f, want >= 3", vr.VRFactor)
	}
	if bd := vr.VRByVariate; bd == nil {
		t.Error("cond-VR campaign reported no per-variate breakdown")
	} else {
		if bd.Cond <= 1 {
			t.Errorf("cond variate credited %.2f×, want > 1×", bd.Cond)
		}
		if bd.Control != 0 {
			t.Errorf("indicator-control credit %.2f on a cond-variate campaign, want 0", bd.Control)
		}
	}
}
