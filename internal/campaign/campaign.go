// Package campaign orchestrates adaptive Monte Carlo campaigns on top of
// internal/sim. DDFs are rare events — the paper's base case yields ~0.27
// DDFs per 1,000 groups per 10 years — so a fixed iteration count either
// wastes cycles or returns statistically useless counts. The orchestrator
// instead runs iterations in batches and, after each batch:
//
//  1. computes a confidence interval on the per-group DDF probability —
//     Wilson for plain Monte Carlo, the weighted-normal interval of the
//     likelihood-ratio estimator when importance sampling (sim.Bias) is
//     on — and stops once a target relative half-width (or an iteration /
//     wall-clock budget) is reached;
//  2. writes a versioned JSON checkpoint — per-group results plus the
//     next RNG stream index — so a killed campaign resumes bit-for-bit
//     identically (stream i is always assigned to iteration i, so the
//     worker count and the kill point are both irrelevant);
//  3. reports progress (iterations/sec, running DDF counts by cause, CI
//     width, ETA) through a pluggable Progress sink.
package campaign

import (
	"context"
	"fmt"
	"math"
	"time"

	"raidrel/internal/sim"
	"raidrel/internal/stats"
)

// Default knobs applied by Spec.withDefaults.
const (
	// DefaultBatchSize is the iterations-per-batch default: small enough
	// for responsive progress and tight checkpoints, large enough that
	// batch overhead (CI computation, checkpoint write) is negligible.
	DefaultBatchSize = 1000
	// DefaultConfidence is the CI level used when Spec.Confidence is zero.
	DefaultConfidence = 0.95
)

// Spec describes an adaptive campaign.
type Spec struct {
	// Config is the simulated RAID-group configuration.
	Config sim.Config
	// Seed is the campaign RNG seed; iteration i always draws from
	// rng.ForStream(Seed, i) regardless of batching, workers, or resume.
	Seed uint64
	// Workers is the per-batch parallelism (0 = GOMAXPROCS).
	Workers int
	// Engine selects the simulation engine (nil = sim.EventEngine).
	Engine sim.Engine

	// Offset shifts the campaign's RNG stream assignment: local iteration i
	// draws from rng.ForStream(Seed, Offset+i). Shard j of n in an
	// N-iteration campaign runs Offset = j·N/n with MaxIterations =
	// (j+1)·N/n − j·N/n; merging the shard results in offset order
	// reproduces the unsharded campaign bit-exactly. Nonzero offsets enter
	// the fingerprint, so a shard checkpoint can only resume its own shard.
	Offset int

	// Fleet, when non-nil, runs fleet chronologies of Fleet.Groups coupled
	// RAID groups (shared spare pool, bounded repair bandwidth) instead of
	// independent groups. Iterations still count groups; batch sizes and
	// budgets are rounded up to whole chronologies, the heal-backlog tally
	// accumulates in Result.Fleet, and checkpoints carry it so a resumed
	// campaign's backlog statistics stay exact. Engine must be nil.
	Fleet *sim.FleetOptions

	// BatchSize is the number of iterations per batch (0 = DefaultBatchSize).
	BatchSize int
	// MinIterations is the floor below which the target-precision rule
	// never fires, guarding against lucky early stops (0 = one batch).
	MinIterations int

	// TargetRelErr stops the campaign once the relative half-width of the
	// CI on the per-group DDF probability drops to this value (e.g. 0.1
	// for ±10%). Zero disables the precision rule.
	TargetRelErr float64
	// Confidence is the CI level for the stopping rule and reports
	// (0 = DefaultConfidence).
	Confidence float64
	// MaxIterations is a hard iteration budget (0 = unlimited).
	MaxIterations int
	// MaxDuration is a wall-clock budget for this process, excluding any
	// time spent by a resumed-from run (0 = unlimited).
	MaxDuration time.Duration

	// Checkpoint, when non-empty, is a file path written atomically after
	// every batch so the campaign can be killed and resumed.
	Checkpoint string
	// Resume, when non-empty, is a checkpoint file to restore before
	// running. When Checkpoint is empty, checkpoints continue to be
	// written to the Resume path.
	Resume string

	// Progress receives a snapshot after every batch and a final one on
	// completion (nil = no reporting).
	Progress Progress

	// now is a test hook for the clock.
	now func() time.Time
}

// withDefaults returns a copy of s with zero knobs filled in. Negative
// knobs are left alone for validate to reject — they signal caller error,
// not a request for the default.
func (s Spec) withDefaults() Spec {
	if s.BatchSize == 0 {
		s.BatchSize = DefaultBatchSize
	}
	if s.Config.VR.Enabled() {
		// Variance reduction acts within blocks of consecutive iterations, so
		// every batch must cover whole blocks: round the batch size and any
		// iteration budget up to block multiples, and default the engine to
		// the block engine VR requires. A split block would stratify over a
		// partial quantile range and bias its block mean.
		if s.Engine == nil {
			s.Engine = sim.BlockEngine{}
		}
		bs := s.Config.VR.EffectiveBlock()
		if bs > 0 {
			s.BatchSize = roundUp(s.BatchSize, bs)
			if s.MaxIterations > 0 {
				s.MaxIterations = roundUp(s.MaxIterations, bs)
			}
		}
	}
	if s.Fleet != nil && s.Fleet.Groups > 1 {
		// Fleet runs dispatch whole chronologies of Groups coupled groups:
		// every batch (and any iteration budget) must cover whole
		// chronologies, or the runner would be asked for a fractional fleet.
		s.BatchSize = roundUp(s.BatchSize, s.Fleet.Groups)
		if s.MaxIterations > 0 {
			s.MaxIterations = roundUp(s.MaxIterations, s.Fleet.Groups)
		}
	}
	if s.MinIterations == 0 {
		s.MinIterations = s.BatchSize
	}
	if s.Confidence == 0 {
		s.Confidence = DefaultConfidence
	}
	if s.now == nil {
		s.now = time.Now
	}
	return s
}

// validate rejects specs that cannot run or would never stop. Called on
// the defaulted copy.
func (s Spec) validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if s.TargetRelErr < 0 {
		return fmt.Errorf("campaign: target relative error %v negative", s.TargetRelErr)
	}
	if s.BatchSize < 0 {
		return fmt.Errorf("campaign: batch size %d negative", s.BatchSize)
	}
	if s.MinIterations < 0 {
		return fmt.Errorf("campaign: min iterations %d negative", s.MinIterations)
	}
	if s.MaxDuration < 0 {
		return fmt.Errorf("campaign: max duration %v negative", s.MaxDuration)
	}
	if s.Confidence <= 0 || s.Confidence >= 1 {
		return fmt.Errorf("campaign: confidence level %v outside (0,1)", s.Confidence)
	}
	if s.MaxIterations < 0 {
		return fmt.Errorf("campaign: max iterations %d negative", s.MaxIterations)
	}
	if s.Offset < 0 {
		return fmt.Errorf("campaign: stream offset %d negative", s.Offset)
	}
	if s.TargetRelErr == 0 && s.MaxIterations == 0 && s.MaxDuration == 0 {
		return fmt.Errorf("campaign: no stopping rule (set TargetRelErr, MaxIterations, or MaxDuration)")
	}
	if s.Config.VR.Enabled() {
		if _, ok := s.Engine.(sim.BlockEngine); !ok {
			return fmt.Errorf("campaign: variance reduction requires sim.BlockEngine, got %T", s.Engine)
		}
		if bs := s.Config.VR.EffectiveBlock(); s.Offset%bs != 0 {
			return fmt.Errorf("campaign: stream offset %d is not a multiple of the VR block size %d (shards must start on block boundaries)", s.Offset, bs)
		}
	}
	if s.Fleet != nil {
		if s.Engine != nil {
			return fmt.Errorf("campaign: fleet campaigns use the dedicated fleet engine; Engine must be nil, got %T", s.Engine)
		}
		if err := s.Fleet.Config(s.Config).Validate(); err != nil {
			return err
		}
		if s.Offset%s.Fleet.Groups != 0 {
			return fmt.Errorf("campaign: stream offset %d is not a multiple of the fleet size %d (shards must start on chronology boundaries)", s.Offset, s.Fleet.Groups)
		}
	}
	return nil
}

// roundUp rounds n up to the next multiple of m.
func roundUp(n, m int) int {
	if r := n % m; r != 0 {
		return n + m - r
	}
	return n
}

// Validate reports whether the spec (after defaulting) could run — the
// same checks Run performs before its first batch. Services accepting
// specs over the wire use it to reject bad requests at submit time instead
// of surfacing the error from a queued job later.
func (s Spec) Validate() error {
	return s.withDefaults().validate()
}

// checkpointPath returns where checkpoints should be written, or "".
func (s Spec) checkpointPath() string {
	if s.Checkpoint != "" {
		return s.Checkpoint
	}
	return s.Resume
}

// StopReason records why a campaign ended.
type StopReason int

const (
	// StopNone means the campaign has not stopped.
	StopNone StopReason = iota
	// StopTarget: the CI reached the target relative half-width.
	StopTarget
	// StopMaxIterations: the iteration budget was exhausted.
	StopMaxIterations
	// StopMaxDuration: the wall-clock budget was exhausted.
	StopMaxDuration
	// StopCancelled: the context was cancelled; the checkpoint (if any)
	// reflects every completed batch.
	StopCancelled
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopNone:
		return "running"
	case StopTarget:
		return "target precision reached"
	case StopMaxIterations:
		return "iteration budget exhausted"
	case StopMaxDuration:
		return "wall-clock budget exhausted"
	case StopCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("reason(%d)", int(s))
	}
}

// Result aggregates a finished (or cancelled) campaign.
type Result struct {
	// Run holds the merged results of every completed batch in sparse
	// form, exactly as a single sim.RunSparse of the same iteration count
	// would return them. Memory is O(events), so billion-iteration
	// rare-event campaigns accumulate in effectively constant space.
	Run *sim.SparseResult
	// Iterations is the number of completed iterations (== the next RNG
	// stream index).
	Iterations int
	// Batches is the number of batches executed, including any restored
	// from a checkpoint.
	Batches int
	// GroupsWithDDF counts groups that experienced at least one DDF —
	// the binomial numerator behind CI.
	GroupsWithDDF int
	// GroupsWithUnavail counts groups that experienced at least one
	// unavailability onset (a coupled-topology episode where a component
	// outage pushed the group past its redundancy without data loss). Zero
	// for flat topologies; never part of the loss statistics or CI.
	GroupsWithUnavail int
	// CI is the interval on the per-group DDF probability: Wilson for a
	// plain campaign, the weighted-normal interval of the likelihood-ratio
	// estimator when importance sampling is enabled.
	CI stats.Interval
	// RelErr is CI's relative half-width (+Inf until a DDF is seen).
	RelErr float64
	// ESS is the Kish effective sample size of the event-group importance
	// weights — the number of unweighted DDF groups carrying equivalent
	// statistical information. Zero for unbiased campaigns (where every
	// weight is 1 and ESS would equal GroupsWithDDF).
	ESS float64
	// VRPairs is the number of completed antithetic pairs; zero when
	// variance reduction (or antithetic pairing) is off.
	VRPairs int
	// VRCoeff is the fitted control-variate coefficient ĉ; zero when the
	// control variate is off or the control has no sample variance yet.
	VRCoeff float64
	// VRFactor is the variance-reduction factor: the naive per-iteration
	// estimator's variance divided by the achieved block-mean estimator's
	// variance, ≈ how many plain iterations one VR iteration is worth.
	// Zero until measurable.
	VRFactor float64
	// VRByVariate attributes VRFactor to the individual techniques; nil
	// until VRFactor is measurable or when VR is off.
	VRByVariate *VRBreakdown
	// Fleet aggregates the heal-backlog statistics of a fleet campaign
	// (Spec.Fleet); nil otherwise. It aliases Run.Fleet.
	Fleet *sim.FleetTally
	// Reason records which stopping rule fired.
	Reason StopReason
	// Elapsed is this process's wall-clock time in the campaign loop.
	Elapsed time.Duration
	// ResumedFrom is the iteration count restored from a checkpoint
	// (0 for a fresh campaign).
	ResumedFrom int
}

// Run executes the campaign until a stopping rule fires or ctx is
// cancelled. Cancellation is not an error: the partial result is returned
// with Reason == StopCancelled, and the checkpoint file (if configured)
// holds every completed batch for a later Resume.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	run := &sim.SparseResult{}
	batches := 0
	resumedFrom := 0
	if spec.Resume != "" {
		restored, restoredBatches, err := loadCheckpoint(spec.Resume, spec)
		if err != nil {
			return nil, err
		}
		run = restored
		batches = restoredBatches
		resumedFrom = run.Groups
	}

	start := spec.now()
	for {
		done := run.Groups
		elapsed := spec.now().Sub(start)
		res := assemble(spec, run, done, batches, resumedFrom, elapsed)

		switch {
		case ctx.Err() != nil:
			res.Reason = StopCancelled
		case spec.TargetRelErr > 0 && done >= spec.MinIterations && res.RelErr <= spec.TargetRelErr:
			res.Reason = StopTarget
		case spec.MaxIterations > 0 && done >= spec.MaxIterations:
			res.Reason = StopMaxIterations
		case spec.MaxDuration > 0 && done > 0 && elapsed >= spec.MaxDuration:
			res.Reason = StopMaxDuration
		}
		if res.Reason != StopNone {
			report(spec, res, start, true)
			return res, nil
		}

		batch := spec.BatchSize
		if spec.MaxIterations > 0 && done+batch > spec.MaxIterations {
			batch = spec.MaxIterations - done
		}
		br, err := sim.RunSparse(sim.RunSpec{
			Config:     spec.Config,
			Iterations: batch,
			Seed:       spec.Seed,
			Workers:    spec.Workers,
			Engine:     spec.Engine,
			Offset:     spec.Offset + done,
			Fleet:      spec.Fleet,
		})
		if err != nil {
			return nil, err
		}
		run.Merge(br)
		batches++

		if path := spec.checkpointPath(); path != "" {
			if err := saveCheckpoint(path, spec, run, batches); err != nil {
				return nil, fmt.Errorf("campaign: checkpoint: %w", err)
			}
		}
		report(spec, assemble(spec, run, run.Groups, batches, resumedFrom, spec.now().Sub(start)), start, false)
	}
}

// Summarize builds the Result view — counts, CI, relative error, ESS — of
// an externally assembled run, exactly as Run would report it at the same
// state. The service layer uses it to summarize shard merges: k shard
// results combined through sim.SparseResult.Merge are handed here with the
// unsharded spec, yielding the same statistics an unsharded campaign of
// run.Groups iterations would have produced. Reason is left as StopNone;
// the run did not pass through a stopping rule.
func Summarize(spec Spec, run *sim.SparseResult) *Result {
	spec = spec.withDefaults()
	return assemble(spec, run, run.Groups, 0, 0, 0)
}

// assemble builds the Result view of the current state.
func assemble(spec Spec, run *sim.SparseResult, done, batches, resumedFrom int, elapsed time.Duration) *Result {
	res := &Result{
		Run:         run,
		Iterations:  done,
		Batches:     batches,
		Reason:      StopNone,
		Elapsed:     elapsed,
		ResumedFrom: resumedFrom,
	}
	res.RelErr = math.Inf(1)
	res.Fleet = run.Fleet
	if done > 0 {
		res.GroupsWithDDF = run.GroupsWithDDF()
		res.GroupsWithUnavail = run.GroupsWithUnavail()
		var ws []float64
		if spec.Config.Bias.Enabled() {
			// ESS stays the weight-degeneracy diagnostic of any
			// importance-sampled campaign, whichever interval stops it.
			ws = run.GroupWeights()
			res.ESS = stats.ESS(ws)
		}
		switch {
		case spec.Config.VR.Enabled() && run.VR != nil && len(run.VR.Blocks) >= 2:
			// Variance-reduced campaign: blocks are iid by construction, so
			// the stopping interval is a normal interval over block means —
			// control-variate adjusted when that technique is on.
			assembleVR(spec, run.VR, res)
		case spec.Config.Bias.Enabled():
			// Importance-sampled campaign: the observations are the
			// likelihood-ratio weights of event groups (implied zeros
			// elsewhere), not 0/1 indicators, so Wilson does not apply.
			// Stop on the weighted-normal interval instead.
			ci, err := stats.WeightedBernoulliCI(ws, done, spec.Confidence)
			if err == nil {
				res.CI = ci
				if len(ws) > 0 {
					res.RelErr = ci.RelativeHalfWidth()
				}
			}
		default:
			ci, err := stats.WilsonCI(res.GroupsWithDDF, done, spec.Confidence)
			if err == nil {
				res.CI = ci
				if res.GroupsWithDDF > 0 {
					// With zero events the Wilson interval is [0, hi] and its
					// relative half-width is identically 1 — no information
					// about the rate at all. Keep RelErr infinite so neither
					// the stopping rule nor the ETA treats it as progress.
					res.RelErr = ci.RelativeHalfWidth()
				}
			}
		}
	}
	return res
}

// assembleVR fills res.CI, res.RelErr, and the VR diagnostics from the
// run's block tallies. Each block contributes one mean observation; with
// the control variate on, the interval is the control-adjusted one around
// ȳ - ĉ·(z̄ - EZ).
func assembleVR(spec Spec, vr *sim.VRTally, res *Result) {
	ys := make([]float64, len(vr.Blocks))
	zs := make([]float64, len(vr.Blocks))
	var sumY, sumY2 float64
	n := 0
	for i, b := range vr.Blocks {
		ys[i] = b.Y / float64(b.N)
		zs[i] = b.Z / float64(b.N)
		sumY += b.Y
		sumY2 += b.Y2
		n += b.N
	}
	var ci stats.Interval
	var err error
	if spec.Config.VR.AnyControl() {
		ci, res.VRCoeff, err = stats.ControlVariateCI(ys, zs, vr.EZ, spec.Confidence)
	} else {
		ci, err = stats.NormalMeanCI(ys, spec.Confidence)
	}
	if err != nil {
		return
	}
	res.VRPairs = vr.Pairs()
	res.RelErr = ci.RelativeHalfWidth()
	half := (ci.Hi - ci.Lo) / 2
	// VRFactor compares the naive per-iteration estimator's standard error
	// (from the unblocked sums Σy, Σy²) against the achieved half-width.
	if n > 1 && half > 0 {
		mean := sumY / float64(n)
		if v1 := sumY2/float64(n) - mean*mean; v1 > 0 {
			naiveHalf := stats.ZScore(ci.Level) * math.Sqrt(v1/float64(n))
			res.VRFactor = (naiveHalf / half) * (naiveHalf / half)
		}
	}
	res.VRByVariate = vrBreakdown(spec.Config.VR, vr, ys, zs, res.VRFactor)
	// The normal interval over block means can cross zero; the estimand is
	// a probability, so clamp for display after the relative-error math.
	if ci.Lo < 0 {
		ci.Lo = 0
	}
	res.CI = ci
}

// VRBreakdown attributes the campaign's overall variance-reduction factor
// to the individual techniques. Each field is the multiplicative factor
// credited to that technique (how many plain iterations one of its
// iterations is worth); fields for techniques that are off stay zero. The
// attribution is a diagnostic, not an exact decomposition: antithetic and
// control credits come from their own sample statistics, and stratification
// receives the residual, so interaction effects land on Stratified.
type VRBreakdown struct {
	// Antithetic is v₁/(v₁+cov): the per-sample variance against the pair
	// co-moment, the classical antithetic gain.
	Antithetic float64 `json:"antithetic,omitempty"`
	// Stratified is the residual factor VRFactor/(Antithetic·control) —
	// what remains of the measured total after the other credits.
	Stratified float64 `json:"stratified,omitempty"`
	// Control is 1/(1-r²) for the indicator control variate.
	Control float64 `json:"control,omitempty"`
	// Cond is 1/(1-r²) for the conditional-DDF variate.
	Cond float64 `json:"cond,omitempty"`
}

// vrBreakdown computes the per-variate attribution from the block tallies.
// Returns nil until the total factor is measurable.
func vrBreakdown(v sim.VR, vr *sim.VRTally, ys, zs []float64, total float64) *VRBreakdown {
	if !(total > 0) {
		return nil
	}
	bd := &VRBreakdown{}
	if v.Antithetic {
		var sumY, sumY2, sumC float64
		var n, p int
		for _, b := range vr.Blocks {
			sumY += b.Y
			sumY2 += b.Y2
			sumC += b.C
			n += b.N
			p += b.P
		}
		if p > 0 && n > 0 {
			mean := sumY / float64(n)
			v1 := sumY2/float64(n) - mean*mean
			cov := sumC/float64(p) - mean*mean
			if v1 > 0 && v1+cov > 0 {
				bd.Antithetic = v1 / (v1 + cov)
			}
		}
	}
	if v.AnyControl() {
		var acc stats.CVAccum
		for i := range ys {
			acc.Add(ys[i], zs[i])
		}
		f := total // cap: a control cannot be credited more than the total
		if r2 := acc.R2(); r2 < 1 {
			if g := 1 / (1 - r2); g < f || !(f > 1) {
				f = g
			}
		}
		if v.CondVariate {
			bd.Cond = f
		} else {
			bd.Control = f
		}
	}
	if v.Stratify {
		denom := 1.0
		for _, f := range []float64{bd.Antithetic, bd.Control, bd.Cond} {
			if f > 0 {
				denom *= f
			}
		}
		bd.Stratified = total / denom
	}
	return bd
}
