package campaign

import (
	"encoding/json"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint parser. The
// decoder must never panic — a corrupted or hand-edited checkpoint file
// yields a descriptive error — and anything it does accept must satisfy
// the SparseResult invariants the campaign loop relies on.
func FuzzCheckpointDecode(f *testing.F) {
	spec := Spec{Config: fastConfig(), Seed: 7, MaxIterations: 100}.withDefaults()

	// Seed corpus: a genuine checkpoint, then targeted corruptions of the
	// fields the decoder validates.
	valid := checkpointFile{
		Version:     CheckpointVersion,
		Fingerprint: spec.Fingerprint(),
		Seed:        7,
		NextStream:  100,
		Batches:     1,
		Events: []checkpointEvent{
			{Group: 3, Time: 100.5, Cause: 1},
			{Group: 3, Time: 200.25, Cause: 2},
			{Group: 42, Time: 50, Cause: 2},
		},
	}
	if data, err := json.Marshal(valid); err == nil {
		f.Add(data)
	}
	corrupt := func(mutate func(*checkpointFile)) {
		doc := valid
		doc.Events = append([]checkpointEvent(nil), valid.Events...)
		mutate(&doc)
		if data, err := json.Marshal(doc); err == nil {
			f.Add(data)
		}
	}
	corrupt(func(d *checkpointFile) { d.Events[0].Group = -1 })
	corrupt(func(d *checkpointFile) { d.Events[0].Group = d.NextStream })
	corrupt(func(d *checkpointFile) { d.Events[0].Cause = 99 })
	corrupt(func(d *checkpointFile) { d.Events[0].Time = -5 })
	corrupt(func(d *checkpointFile) { d.Events[0].Time = 1e12 })
	corrupt(func(d *checkpointFile) { d.Events[0], d.Events[2] = d.Events[2], d.Events[0] })
	corrupt(func(d *checkpointFile) { d.NextStream = -4 })
	corrupt(func(d *checkpointFile) { d.Version = CheckpointVersion + 1 })
	f.Add([]byte("{not json"))
	f.Add([]byte(`{"version":1,"events":[{"g":1e99,"t":"x"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		run, batches, err := decodeCheckpoint(data, spec)
		if err != nil {
			return
		}
		// Accepted documents must be internally consistent.
		if batches < 0 {
			t.Fatalf("accepted checkpoint with %d batches", batches)
		}
		if run.Groups < 0 {
			t.Fatalf("accepted checkpoint with %d groups", run.Groups)
		}
		if run.TotalDDFs != len(run.Events) || run.TotalDDFs != run.OpOpDDFs+run.LdOpDDFs {
			t.Fatalf("inconsistent tallies: total=%d events=%d opop=%d ldop=%d",
				run.TotalDDFs, len(run.Events), run.OpOpDDFs, run.LdOpDDFs)
		}
		for i, e := range run.Events {
			if e.Group < 0 || e.Group >= run.Groups {
				t.Fatalf("event %d: group %d outside [0, %d)", i, e.Group, run.Groups)
			}
			if !(e.Time >= 0) || e.Time > spec.Config.Mission {
				t.Fatalf("event %d: time %v outside mission", i, e.Time)
			}
			if i > 0 {
				prev := run.Events[i-1]
				if e.Group < prev.Group || (e.Group == prev.Group && e.Time < prev.Time) {
					t.Fatalf("event %d: accepted unsorted events", i)
				}
			}
		}
		// Accepted state must also survive the campaign's next step: a
		// GroupsWithDDF scan and a re-encode.
		if k := run.GroupsWithDDF(); k < 0 || k > run.Groups {
			t.Fatalf("GroupsWithDDF() = %d with %d groups", k, run.Groups)
		}
	})
}
