package campaign

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
)

// TestFingerprintStability pins the fingerprint of a fully specified
// campaign. The digest is shared infrastructure: checkpoints embed it,
// the raidreld result cache keys on it, and shard manifests compare it —
// so a silent change would orphan every on-disk checkpoint and split the
// cache. If this test fails, either revert the change to Fingerprint or
// bump CheckpointVersion and migrate deliberately.
func TestFingerprintStability(t *testing.T) {
	spec := Spec{
		Config: sim.Config{
			Drives:     8,
			Redundancy: 1,
			Mission:    87600,
			Trans: sim.Transitions{
				TTOp: dist.MustExponential(2.5e-5),
				TTR:  dist.MustExponential(1e-1),
			},
		},
		Seed: 42,
	}
	const want = "41bd9c5d9dffb37f"
	if got := spec.Fingerprint(); got != want {
		t.Errorf("fingerprint changed: got %s, want %s (cache keys and checkpoints would be orphaned)", got, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Config: fastConfig(), Seed: 1}
	fp := base.Fingerprint()

	seed := base
	seed.Seed = 2
	if seed.Fingerprint() == fp {
		t.Error("seed change did not change the fingerprint")
	}

	drives := base
	drives.Config.Drives = 9
	if drives.Fingerprint() == fp {
		t.Error("config change did not change the fingerprint")
	}

	engine := base
	engine.Engine = sim.IntervalEngine{}
	if engine.Fingerprint() == fp {
		t.Error("engine change did not change the fingerprint")
	}

	// Shard offsets are part of the identity (a shard checkpoint must not
	// resume into another shard), but offset zero must reproduce the
	// pre-sharding fingerprint so existing checkpoints stay resumable.
	shard := base
	shard.Offset = 500
	if shard.Fingerprint() == fp {
		t.Error("shard offset did not change the fingerprint")
	}
	zero := base
	zero.Offset = 0
	if zero.Fingerprint() != fp {
		t.Error("offset 0 perturbed the fingerprint (legacy checkpoints orphaned)")
	}

	// Stopping knobs are deliberately NOT identity: the same simulated
	// stream at a different budget shares its checkpoints.
	budget := base
	budget.MaxIterations = 12345
	budget.TargetRelErr = 0.05
	if budget.Fingerprint() != fp {
		t.Error("stopping knobs perturbed the fingerprint")
	}

	// A flat (nil or component-free) topology must not perturb the
	// fingerprint — it is the same simulated model, and every checkpoint
	// written before the component layer existed must stay resumable. A
	// coupled topology is identity, and different trees differ.
	flat := base
	flat.Config.Topology = &sim.Topology{}
	if flat.Fingerprint() != fp {
		t.Error("flat topology perturbed the fingerprint (legacy checkpoints orphaned)")
	}
	coupled := base
	coupled.Config.Topology = &sim.Topology{Components: []sim.Component{{
		Name: "enc", Drives: []int{0, 1},
		TTOp: dist.MustExponential(1e-5), TTR: dist.MustExponential(1e-3),
	}}}
	cfp := coupled.Fingerprint()
	if cfp == fp {
		t.Error("coupled topology did not change the fingerprint")
	}
	other := base
	other.Config.Topology = &sim.Topology{Components: []sim.Component{{
		Name: "enc", Drives: []int{0, 1},
		TTOp: dist.MustExponential(2e-5), TTR: dist.MustExponential(1e-3),
	}}}
	if other.Fingerprint() == cfp {
		t.Error("different component rates share a fingerprint")
	}
}
