package campaign

import (
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"raidrel/internal/stats"
)

// Snapshot is one telemetry frame, emitted after every batch and once
// more when the campaign stops.
type Snapshot struct {
	// Iterations completed so far (== next RNG stream index).
	Iterations int
	// Batches executed so far, including restored ones.
	Batches int
	// TotalDDFs, OpOpDDFs, LdOpDDFs are the running event counts by cause.
	TotalDDFs, OpOpDDFs, LdOpDDFs int
	// GroupsWithDDF is the binomial numerator of the stopping statistic.
	GroupsWithDDF int
	// CI is the current interval on the per-group DDF probability (Wilson,
	// or weighted-normal under importance sampling).
	CI stats.Interval
	// RelErr is CI's relative half-width (+Inf until a DDF is seen).
	RelErr float64
	// ESS is the effective sample size of the importance weights; zero for
	// unbiased campaigns.
	ESS float64
	// Rate is iterations per second in this process (0 until measurable).
	Rate float64
	// Elapsed is wall-clock time in this process's campaign loop.
	Elapsed time.Duration
	// ETA estimates the remaining time until some stopping rule fires;
	// negative when no estimate is possible yet.
	ETA time.Duration
	// Done marks the final snapshot; Reason says why the campaign ended.
	Done   bool
	Reason StopReason
}

// Progress receives campaign telemetry. Implementations must tolerate
// being called from the orchestrator goroutine between batches; a slow
// sink slows the campaign.
type Progress interface {
	Report(Snapshot)
}

// ProgressFunc adapts a function to the Progress interface.
type ProgressFunc func(Snapshot)

// Report implements Progress.
func (f ProgressFunc) Report(s Snapshot) { f(s) }

// report builds a Snapshot from the result view and forwards it.
func report(spec Spec, res *Result, start time.Time, done bool) {
	if spec.Progress == nil {
		return
	}
	s := Snapshot{
		Iterations:    res.Iterations,
		Batches:       res.Batches,
		GroupsWithDDF: res.GroupsWithDDF,
		CI:            res.CI,
		RelErr:        res.RelErr,
		ESS:           res.ESS,
		Elapsed:       res.Elapsed,
		ETA:           -1,
		Done:          done,
		Reason:        res.Reason,
	}
	if res.Run != nil {
		s.TotalDDFs = res.Run.TotalDDFs
		s.OpOpDDFs = res.Run.OpOpDDFs
		s.LdOpDDFs = res.Run.LdOpDDFs
	}
	if secs := res.Elapsed.Seconds(); secs > 0 && res.Iterations > res.ResumedFrom {
		s.Rate = float64(res.Iterations-res.ResumedFrom) / secs
	}
	if !done {
		s.ETA = eta(spec, s)
	} else {
		s.ETA = 0
	}
	spec.Progress.Report(s)
}

// eta estimates time to the nearest stopping rule, or -1 when unknown.
// The precision rule scales like 1/√n: reaching target t from relative
// half-width r at n iterations needs roughly n·(r/t)² total iterations.
func eta(spec Spec, s Snapshot) time.Duration {
	best := time.Duration(-1)
	consider := func(d time.Duration) {
		if d < 0 {
			return
		}
		if best < 0 || d < best {
			best = d
		}
	}
	if s.Rate > 0 {
		if spec.TargetRelErr > 0 && !math.IsInf(s.RelErr, 1) && s.RelErr > spec.TargetRelErr {
			ratio := s.RelErr / spec.TargetRelErr
			needed := float64(s.Iterations) * ratio * ratio
			consider(time.Duration((needed - float64(s.Iterations)) / s.Rate * float64(time.Second)))
		}
		if spec.MaxIterations > 0 {
			consider(time.Duration(float64(spec.MaxIterations-s.Iterations) / s.Rate * float64(time.Second)))
		}
	}
	if spec.MaxDuration > 0 {
		remaining := spec.MaxDuration - s.Elapsed
		if remaining < 0 {
			// Elapsed already past the budget: the stop fires at the next
			// batch boundary. Clamp to 0 rather than letting the negative
			// value be discarded as "unknown".
			remaining = 0
		}
		consider(remaining)
	}
	return best
}

// WriterProgress returns a Progress sink that prints one status line per
// snapshot to w. It is the default reporter behind raidsim -progress. The
// final "done" line repeats the estimate, CI, and relative error of the
// in-flight lines, so a log's last line carries the campaign's verdict.
func WriterProgress(w io.Writer) Progress {
	return ProgressFunc(func(s Snapshot) {
		if s.Done {
			fmt.Fprintf(w, "campaign: done (%s): %d iterations in %d batches, %s: %d DDFs (%d op+op, %d ld+op) p=%.3g ci%.0f=[%.3g, %.3g] relerr=%s%s\n",
				s.Reason, s.Iterations, s.Batches, s.Elapsed.Round(time.Millisecond),
				s.TotalDDFs, s.OpOpDDFs, s.LdOpDDFs,
				phat(s), s.CI.Level*100, s.CI.Lo, s.CI.Hi, relErrString(s.RelErr), essString(s))
			return
		}
		fmt.Fprintf(w, "campaign: %d iters (%.0f/s) ddf=%d (%d op+op, %d ld+op) p=%.3g ci%.0f=[%.3g, %.3g] relerr=%s%s eta=%s\n",
			s.Iterations, s.Rate, s.TotalDDFs, s.OpOpDDFs, s.LdOpDDFs,
			phat(s), s.CI.Level*100, s.CI.Lo, s.CI.Hi, relErrString(s.RelErr), essString(s), etaString(s.ETA))
	})
}

// StderrProgress returns the default reporter writing to standard error.
func StderrProgress() Progress { return WriterProgress(os.Stderr) }

func phat(s Snapshot) float64 {
	if s.ESS > 0 {
		// Importance-sampled campaign: the point estimate is the weighted
		// mean, the midpoint of the (symmetric) weighted-normal CI.
		return (s.CI.Lo + s.CI.Hi) / 2
	}
	if s.Iterations == 0 {
		return 0
	}
	return float64(s.GroupsWithDDF) / float64(s.Iterations)
}

func essString(s Snapshot) string {
	if s.ESS > 0 {
		return fmt.Sprintf(" ess=%.1f", s.ESS)
	}
	return ""
}

func relErrString(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", r)
}

func etaString(d time.Duration) string {
	if d < 0 {
		return "unknown"
	}
	return d.Round(time.Second).String()
}
