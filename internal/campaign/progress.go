package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"raidrel/internal/stats"
)

// Snapshot is one telemetry frame, emitted after every batch and once
// more when the campaign stops.
type Snapshot struct {
	// Iterations completed so far (== next RNG stream index).
	Iterations int
	// Batches executed so far, including restored ones.
	Batches int
	// TotalDDFs, OpOpDDFs, LdOpDDFs are the running event counts by cause.
	TotalDDFs, OpOpDDFs, LdOpDDFs int
	// UnavailEvents is the running count of unavailability onsets (coupled
	// topologies only); never part of the loss counts above.
	UnavailEvents int
	// GroupsWithDDF is the binomial numerator of the stopping statistic.
	GroupsWithDDF int
	// CI is the current interval on the per-group DDF probability (Wilson,
	// or weighted-normal under importance sampling).
	CI stats.Interval
	// RelErr is CI's relative half-width (+Inf until a DDF is seen).
	RelErr float64
	// ESS is the effective sample size of the importance weights; zero for
	// unbiased campaigns.
	ESS float64
	// VRPairs, VRCoeff, VRFactor mirror the Result diagnostics of a
	// variance-reduced campaign: completed antithetic pairs, the fitted
	// control-variate coefficient, and the estimated variance-reduction
	// factor. All zero when VR is off.
	VRPairs  int
	VRCoeff  float64
	VRFactor float64
	// VRByVariate attributes VRFactor to the individual techniques; nil
	// until the factor is measurable or when VR is off.
	VRByVariate *VRBreakdown
	// Rate is iterations per second in this process (0 until measurable).
	Rate float64
	// Elapsed is wall-clock time in this process's campaign loop.
	Elapsed time.Duration
	// ETA estimates the remaining time until some stopping rule fires;
	// negative when no estimate is possible yet.
	ETA time.Duration
	// Done marks the final snapshot; Reason says why the campaign ended.
	Done   bool
	Reason StopReason
}

// snapshotJSON is the wire form of a Snapshot: flat, machine-readable, and
// free of JSON-hostile values (`+Inf` relative errors and negative "unknown"
// ETAs are omitted rather than encoded). It is the line format of
// JSONProgress and the frame format of the raidreld streaming endpoint.
type snapshotJSON struct {
	Iterations    int          `json:"iterations"`
	Batches       int          `json:"batches"`
	TotalDDFs     int          `json:"ddfs"`
	OpOpDDFs      int          `json:"ddfs_op_op"`
	LdOpDDFs      int          `json:"ddfs_ld_op"`
	UnavailEvents int          `json:"unavail,omitempty"`
	GroupsWithDDF int          `json:"groups_with_ddf"`
	P             float64      `json:"p"`
	CILo          float64      `json:"ci_lo"`
	CIHi          float64      `json:"ci_hi"`
	Confidence    float64      `json:"confidence,omitempty"`
	RelErr        *float64     `json:"rel_err,omitempty"`
	ESS           float64      `json:"ess,omitempty"`
	VRPairs       int          `json:"vr_pairs,omitempty"`
	VRCoeff       float64      `json:"vr_coeff,omitempty"`
	VRFactor      float64      `json:"vr_factor,omitempty"`
	VRBreakdown   *VRBreakdown `json:"vr_breakdown,omitempty"`
	Rate          float64      `json:"rate,omitempty"`
	ElapsedS      float64      `json:"elapsed_s"`
	ETAS          *float64     `json:"eta_s,omitempty"`
	Done          bool         `json:"done,omitempty"`
	Reason        string       `json:"reason,omitempty"`
}

// MarshalJSON implements json.Marshaler with the snapshotJSON wire form.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	doc := snapshotJSON{
		Iterations:    s.Iterations,
		Batches:       s.Batches,
		TotalDDFs:     s.TotalDDFs,
		OpOpDDFs:      s.OpOpDDFs,
		LdOpDDFs:      s.LdOpDDFs,
		UnavailEvents: s.UnavailEvents,
		GroupsWithDDF: s.GroupsWithDDF,
		P:             phat(s),
		CILo:          s.CI.Lo,
		CIHi:          s.CI.Hi,
		Confidence:    s.CI.Level,
		ESS:           s.ESS,
		VRPairs:       s.VRPairs,
		VRCoeff:       s.VRCoeff,
		VRFactor:      s.VRFactor,
		VRBreakdown:   s.VRByVariate,
		Rate:          s.Rate,
		ElapsedS:      s.Elapsed.Seconds(),
		Done:          s.Done,
	}
	if !math.IsInf(s.RelErr, 1) {
		doc.RelErr = &s.RelErr
	}
	if !s.Done && s.ETA >= 0 {
		etas := s.ETA.Seconds()
		doc.ETAS = &etas
	}
	if s.Done {
		doc.Reason = s.Reason.String()
	}
	return json.Marshal(doc)
}

// UnmarshalJSON inverts MarshalJSON, so Go clients of the wire form (a
// raidsim -progress=json log, a raidreld SSE frame or status document) can
// decode frames back into Snapshots. Omitted fields take their "unknown"
// in-memory values: a missing rel_err is +Inf, a missing eta_s is -1.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var doc snapshotJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	*s = Snapshot{
		Iterations:    doc.Iterations,
		Batches:       doc.Batches,
		TotalDDFs:     doc.TotalDDFs,
		OpOpDDFs:      doc.OpOpDDFs,
		LdOpDDFs:      doc.LdOpDDFs,
		UnavailEvents: doc.UnavailEvents,
		GroupsWithDDF: doc.GroupsWithDDF,
		CI:            stats.Interval{Lo: doc.CILo, Hi: doc.CIHi, Level: doc.Confidence},
		RelErr:        math.Inf(1),
		ESS:           doc.ESS,
		VRPairs:       doc.VRPairs,
		VRCoeff:       doc.VRCoeff,
		VRFactor:      doc.VRFactor,
		VRByVariate:   doc.VRBreakdown,
		Rate:          doc.Rate,
		Elapsed:       time.Duration(doc.ElapsedS * float64(time.Second)),
		ETA:           -1,
		Done:          doc.Done,
		Reason:        parseStopReason(doc.Reason),
	}
	if doc.RelErr != nil {
		s.RelErr = *doc.RelErr
	}
	if doc.ETAS != nil {
		s.ETA = time.Duration(*doc.ETAS * float64(time.Second))
	}
	if s.Done {
		s.ETA = 0
	}
	return nil
}

// parseStopReason inverts StopReason.String; unknown strings (including
// the empty in-flight frame) map to StopNone.
func parseStopReason(text string) StopReason {
	for r := StopNone; r <= StopCancelled; r++ {
		if r.String() == text {
			return r
		}
	}
	return StopNone
}

// Progress receives campaign telemetry. Implementations must tolerate
// being called from the orchestrator goroutine between batches; a slow
// sink slows the campaign.
type Progress interface {
	Report(Snapshot)
}

// ProgressFunc adapts a function to the Progress interface.
type ProgressFunc func(Snapshot)

// Report implements Progress.
func (f ProgressFunc) Report(s Snapshot) { f(s) }

// report builds a Snapshot from the result view and forwards it.
func report(spec Spec, res *Result, start time.Time, done bool) {
	if spec.Progress == nil {
		return
	}
	s := Snapshot{
		Iterations:    res.Iterations,
		Batches:       res.Batches,
		GroupsWithDDF: res.GroupsWithDDF,
		CI:            res.CI,
		RelErr:        res.RelErr,
		ESS:           res.ESS,
		VRPairs:       res.VRPairs,
		VRCoeff:       res.VRCoeff,
		VRFactor:      res.VRFactor,
		VRByVariate:   res.VRByVariate,
		Elapsed:       res.Elapsed,
		ETA:           -1,
		Done:          done,
		Reason:        res.Reason,
	}
	if res.Run != nil {
		s.TotalDDFs = res.Run.TotalDDFs
		s.OpOpDDFs = res.Run.OpOpDDFs
		s.LdOpDDFs = res.Run.LdOpDDFs
		s.UnavailEvents = res.Run.UnavailEvents
	}
	if secs := res.Elapsed.Seconds(); secs > 0 && res.Iterations > res.ResumedFrom {
		s.Rate = float64(res.Iterations-res.ResumedFrom) / secs
	}
	if !done {
		s.ETA = eta(spec, s)
	} else {
		s.ETA = 0
	}
	spec.Progress.Report(s)
}

// eta estimates time to the nearest stopping rule, or -1 when unknown.
// The precision rule scales like 1/√n: reaching target t from relative
// half-width r at n iterations needs roughly n·(r/t)² total iterations.
func eta(spec Spec, s Snapshot) time.Duration {
	best := time.Duration(-1)
	consider := func(d time.Duration) {
		if d < 0 {
			return
		}
		if best < 0 || d < best {
			best = d
		}
	}
	if s.Rate > 0 {
		if spec.TargetRelErr > 0 && !math.IsInf(s.RelErr, 1) && s.RelErr > spec.TargetRelErr {
			ratio := s.RelErr / spec.TargetRelErr
			needed := float64(s.Iterations) * ratio * ratio
			consider(time.Duration((needed - float64(s.Iterations)) / s.Rate * float64(time.Second)))
		}
		if spec.MaxIterations > 0 {
			consider(time.Duration(float64(spec.MaxIterations-s.Iterations) / s.Rate * float64(time.Second)))
		}
	}
	if spec.MaxDuration > 0 {
		remaining := spec.MaxDuration - s.Elapsed
		if remaining < 0 {
			// Elapsed already past the budget: the stop fires at the next
			// batch boundary. Clamp to 0 rather than letting the negative
			// value be discarded as "unknown".
			remaining = 0
		}
		consider(remaining)
	}
	return best
}

// WriterProgress returns a Progress sink that prints one status line per
// snapshot to w. It is the default reporter behind raidsim -progress. The
// final "done" line repeats the estimate, CI, and relative error of the
// in-flight lines, so a log's last line carries the campaign's verdict.
func WriterProgress(w io.Writer) Progress {
	return ProgressFunc(func(s Snapshot) {
		if s.Done {
			fmt.Fprintf(w, "campaign: done (%s): %d iterations in %d batches, %s: %d DDFs (%d op+op, %d ld+op) p=%.3g ci%.0f=[%.3g, %.3g] relerr=%s%s\n",
				s.Reason, s.Iterations, s.Batches, s.Elapsed.Round(time.Millisecond),
				s.TotalDDFs, s.OpOpDDFs, s.LdOpDDFs,
				phat(s), s.CI.Level*100, s.CI.Lo, s.CI.Hi, relErrString(s.RelErr), essString(s)+vrString(s)+unavailString(s))
			return
		}
		fmt.Fprintf(w, "campaign: %d iters (%.0f/s) ddf=%d (%d op+op, %d ld+op) p=%.3g ci%.0f=[%.3g, %.3g] relerr=%s%s eta=%s\n",
			s.Iterations, s.Rate, s.TotalDDFs, s.OpOpDDFs, s.LdOpDDFs,
			phat(s), s.CI.Level*100, s.CI.Lo, s.CI.Hi, relErrString(s.RelErr), essString(s)+vrString(s)+unavailString(s), etaString(s.ETA))
	})
}

// StderrProgress returns the default reporter writing to standard error.
func StderrProgress() Progress { return WriterProgress(os.Stderr) }

// JSONProgress returns a Progress sink that writes one JSON object per
// snapshot to w, newline-delimited — the machine-readable counterpart of
// WriterProgress, behind raidsim -progress=json and the raidreld streaming
// endpoint. Encoding errors are swallowed: telemetry must never abort a
// campaign.
func JSONProgress(w io.Writer) Progress {
	enc := json.NewEncoder(w)
	return ProgressFunc(func(s Snapshot) {
		_ = enc.Encode(s) // Encode appends the newline
	})
}

func phat(s Snapshot) float64 {
	if s.ESS > 0 || s.VRFactor > 0 {
		// Importance-sampled or variance-reduced campaign: the point
		// estimate is the (adjusted) mean, the midpoint of the symmetric
		// normal CI, not the raw event fraction.
		return (s.CI.Lo + s.CI.Hi) / 2
	}
	if s.Iterations == 0 {
		return 0
	}
	return float64(s.GroupsWithDDF) / float64(s.Iterations)
}

func vrString(s Snapshot) string {
	if s.VRFactor <= 0 {
		return ""
	}
	out := fmt.Sprintf(" vr=%.2gx", s.VRFactor)
	if bd := s.VRByVariate; bd != nil {
		parts := ""
		appendPart := func(name string, f float64) {
			if f > 0 {
				if parts != "" {
					parts += " "
				}
				parts += fmt.Sprintf("%s=%.2gx", name, f)
			}
		}
		appendPart("anti", bd.Antithetic)
		appendPart("strat", bd.Stratified)
		appendPart("cv", bd.Control)
		appendPart("cond", bd.Cond)
		if parts != "" {
			out += " (" + parts + ")"
		}
	}
	return out
}

func unavailString(s Snapshot) string {
	if s.UnavailEvents > 0 {
		return fmt.Sprintf(" unavail=%d", s.UnavailEvents)
	}
	return ""
}

func essString(s Snapshot) string {
	if s.ESS > 0 {
		return fmt.Sprintf(" ess=%.1f", s.ESS)
	}
	return ""
}

func relErrString(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", r)
}

func etaString(d time.Duration) string {
	if d < 0 {
		return "unknown"
	}
	return d.Round(time.Second).String()
}
