package campaign

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
	"raidrel/internal/stats"
)

// fastConfig puts the per-group DDF probability near 3% — rare enough
// that the Wilson interval takes thousands of iterations to tighten
// (exercising the adaptive loop), frequent enough that tests stay fast.
func fastConfig() sim.Config {
	return sim.Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: sim.Transitions{
			TTOp: dist.MustExponential(2.5e-5), // MTBF 40,000 h
			TTR:  dist.MustExponential(1e-1),   // MTTR 10 h
		},
	}
}

func TestRunStopsOnTarget(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Config:       fastConfig(),
		Seed:         1,
		BatchSize:    200,
		TargetRelErr: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopTarget {
		t.Fatalf("stop reason %v, want %v", res.Reason, StopTarget)
	}
	if res.RelErr > 0.3 {
		t.Errorf("stopped at relative error %v > target 0.3", res.RelErr)
	}
	if res.Iterations%200 != 0 || res.Iterations == 0 {
		t.Errorf("iterations %d not a positive batch multiple", res.Iterations)
	}
	if res.Iterations != res.Run.Groups {
		t.Errorf("iterations %d != group count %d", res.Iterations, res.Run.Groups)
	}
	if res.CI.Lo >= res.CI.Hi || res.CI.Level != DefaultConfidence {
		t.Errorf("suspicious CI %+v", res.CI)
	}
}

func TestRunStopsOnIterationBudget(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Config:        fastConfig(),
		Seed:          2,
		BatchSize:     200,
		TargetRelErr:  0.001, // unreachable in-budget
		MaxIterations: 500,   // not a batch multiple: final batch must shrink
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxIterations {
		t.Fatalf("stop reason %v, want %v", res.Reason, StopMaxIterations)
	}
	if res.Iterations != 500 {
		t.Errorf("iterations %d, want exactly 500", res.Iterations)
	}
}

func TestRunBudgetEqualsPlainRun(t *testing.T) {
	// A budget-only campaign must reproduce sim.RunSparse exactly,
	// whatever the batch size.
	const n = 600
	want, err := sim.RunSparse(sim.RunSpec{Config: fastConfig(), Iterations: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Spec{
		Config:        fastConfig(),
		Seed:          5,
		BatchSize:     170,
		MaxIterations: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Groups != want.Groups || !reflect.DeepEqual(res.Run.Events, want.Events) {
		t.Fatal("batched campaign differs from single sim.RunSparse")
	}
	if res.Run.TotalDDFs != want.TotalDDFs {
		t.Fatalf("total DDFs %d != %d", res.Run.TotalDDFs, want.TotalDDFs)
	}
}

func TestRunStopsOnWallClock(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Config:      fastConfig(),
		Seed:        3,
		BatchSize:   100,
		MaxDuration: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopMaxDuration {
		t.Fatalf("stop reason %v, want %v", res.Reason, StopMaxDuration)
	}
	if res.Iterations < 100 {
		t.Errorf("campaign stopped before completing a single batch (%d iterations)", res.Iterations)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var batches int
	res, err := Run(ctx, Spec{
		Config:        fastConfig(),
		Seed:          4,
		BatchSize:     100,
		MaxIterations: 1 << 30,
		Progress: ProgressFunc(func(s Snapshot) {
			if !s.Done {
				batches++
				if batches == 3 {
					cancel()
				}
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != StopCancelled {
		t.Fatalf("stop reason %v, want %v", res.Reason, StopCancelled)
	}
	if res.Iterations != 300 {
		t.Errorf("cancelled after batch 3 but completed %d iterations, want 300", res.Iterations)
	}
}

// TestRunCancelKeepsCheckpointCurrent is the graceful-drain contract:
// cancelling mid-campaign must (a) return the partial result with the
// distinct StopCancelled reason, (b) leave the checkpoint reflecting every
// completed batch, and (c) allow a resume that finishes bit-identically to
// an uninterrupted campaign. raidreld's SIGTERM drain relies on all three.
func TestRunCancelKeepsCheckpointCurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := Spec{
		Config:        fastConfig(),
		Seed:          11,
		BatchSize:     100,
		MaxIterations: 500,
		Checkpoint:    path,
	}

	ctx, cancel := context.WithCancel(context.Background())
	cspec := spec
	var batches int
	cspec.Progress = ProgressFunc(func(s Snapshot) {
		if !s.Done {
			if batches++; batches == 2 {
				cancel()
			}
		}
	})
	part, err := Run(ctx, cspec)
	if err != nil {
		t.Fatal(err)
	}
	if part.Reason != StopCancelled {
		t.Fatalf("stop reason %v, want %v", part.Reason, StopCancelled)
	}
	if part.Iterations != 200 {
		t.Fatalf("cancelled after batch 2 but completed %d iterations, want 200", part.Iterations)
	}

	// The checkpoint must be current: exactly the completed batches, not a
	// stale earlier write.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	restored, restoredBatches, err := decodeCheckpoint(data, spec.withDefaults())
	if err != nil {
		t.Fatalf("checkpoint after cancel not loadable: %v", err)
	}
	if restored.Groups != part.Iterations || restoredBatches != part.Batches {
		t.Fatalf("checkpoint holds %d iterations in %d batches, campaign stopped at %d in %d",
			restored.Groups, restoredBatches, part.Iterations, part.Batches)
	}

	// Resume to completion and compare with an uninterrupted campaign.
	rspec := spec
	rspec.Resume = path
	resumed, err := Run(context.Background(), rspec)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations != full.Iterations || !reflect.DeepEqual(resumed.Run.Events, full.Run.Events) {
		t.Error("resumed-after-cancel campaign differs from uninterrupted campaign")
	}
}

// TestShardComposition lifts the sim-level offset-composition guarantee to
// the campaign level: k shard campaigns over disjoint Offset ranges, merged
// in offset order, must be bit-identical to one unsharded campaign, and
// Summarize must report the same statistics the unsharded run computed.
func TestShardComposition(t *testing.T) {
	const n, shards = 900, 3
	spec := Spec{Config: fastConfig(), Seed: 13, BatchSize: 150, MaxIterations: n}
	full, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	merged := &sim.SparseResult{}
	for i := 0; i < shards; i++ {
		start, end := i*n/shards, (i+1)*n/shards
		sspec := spec
		sspec.Offset = start
		sspec.MaxIterations = end - start
		sres, err := Run(context.Background(), sspec)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Iterations != end-start {
			t.Fatalf("shard %d ran %d iterations, want %d", i, sres.Iterations, end-start)
		}
		merged.Merge(sres.Run)
	}

	if merged.Groups != full.Run.Groups || !reflect.DeepEqual(merged.Events, full.Run.Events) {
		t.Fatal("merged shard campaigns differ from the unsharded campaign")
	}
	sum := Summarize(spec, merged)
	if sum.Iterations != full.Iterations || sum.GroupsWithDDF != full.GroupsWithDDF ||
		sum.CI != full.CI || sum.RelErr != full.RelErr {
		t.Errorf("Summarize of merged shards %+v differs from unsharded campaign %+v", sum, full)
	}
}

func TestRunMinIterationsGuard(t *testing.T) {
	// With a very loose target the first batch would already satisfy the
	// precision rule; MinIterations must hold the campaign open.
	res, err := Run(context.Background(), Spec{
		Config:        fastConfig(),
		Seed:          6,
		BatchSize:     100,
		MinIterations: 700,
		TargetRelErr:  0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 700 {
		t.Errorf("stopped at %d iterations, below MinIterations 700", res.Iterations)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Config: fastConfig()}); err == nil {
		t.Error("spec without any stopping rule accepted")
	}
	if _, err := Run(context.Background(), Spec{Config: sim.Config{}, MaxIterations: 10}); err == nil {
		t.Error("invalid sim config accepted")
	}
	if _, err := Run(context.Background(), Spec{
		Config: fastConfig(), MaxIterations: 10, TargetRelErr: -1,
	}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := Run(context.Background(), Spec{
		Config: fastConfig(), MaxIterations: 10, Confidence: 1.5,
	}); err == nil {
		t.Error("confidence outside (0,1) accepted")
	}
	if _, err := Run(context.Background(), Spec{
		Config: fastConfig(), MaxIterations: 10, BatchSize: -5,
	}); err == nil {
		t.Error("negative batch size accepted")
	}
	if _, err := Run(context.Background(), Spec{
		Config: fastConfig(), MaxIterations: 10, MaxDuration: -time.Second,
	}); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestProgressTelemetry(t *testing.T) {
	var snaps []Snapshot
	_, err := Run(context.Background(), Spec{
		Config:        fastConfig(),
		Seed:          7,
		BatchSize:     150,
		MaxIterations: 450,
		Progress:      ProgressFunc(func(s Snapshot) { snaps = append(snaps, s) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 4 { // 3 batches + final
		t.Fatalf("got %d snapshots, want 4", len(snaps))
	}
	for i, s := range snaps[:3] {
		if s.Done {
			t.Errorf("snapshot %d marked done", i)
		}
		if s.Iterations != 150*(i+1) {
			t.Errorf("snapshot %d at %d iterations, want %d", i, s.Iterations, 150*(i+1))
		}
		if s.Batches != i+1 {
			t.Errorf("snapshot %d batches = %d", i, s.Batches)
		}
		if s.TotalDDFs != s.OpOpDDFs+s.LdOpDDFs {
			t.Errorf("snapshot %d cause split %d+%d != total %d", i, s.OpOpDDFs, s.LdOpDDFs, s.TotalDDFs)
		}
		if s.GroupsWithDDF > 0 && (s.CI.Lo >= s.CI.Hi || math.IsInf(s.RelErr, 1)) {
			t.Errorf("snapshot %d has events but no usable CI: %+v", i, s)
		}
	}
	final := snaps[3]
	if !final.Done || final.Reason != StopMaxIterations {
		t.Errorf("final snapshot %+v not a proper completion frame", final)
	}
	if final.Iterations != 450 {
		t.Errorf("final snapshot at %d iterations, want 450", final.Iterations)
	}
}

// TestJSONProgressFormat pins the machine-readable snapshot schema: one
// JSON object per line, JSON-hostile values (infinite RelErr, unknown ETA)
// omitted rather than encoded, and the final frame carrying done+reason.
func TestJSONProgressFormat(t *testing.T) {
	var sb strings.Builder
	p := JSONProgress(&sb)
	p.Report(Snapshot{Iterations: 1000, Batches: 1, Rate: 500, TotalDDFs: 3, OpOpDDFs: 2, LdOpDDFs: 1,
		GroupsWithDDF: 3, CI: stats.Interval{Lo: 0.001, Hi: 0.005, Level: 0.95},
		RelErr: 0.5, Elapsed: 2 * time.Second, ETA: 2 * time.Minute})
	p.Report(Snapshot{Done: true, Reason: StopTarget, Iterations: 1000, Batches: 1,
		RelErr: math.Inf(1), ETA: -1})

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2:\n%s", len(lines), sb.String())
	}
	var frame map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &frame); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	for key, want := range map[string]float64{
		"iterations": 1000, "batches": 1, "ddfs": 3, "ddfs_op_op": 2, "ddfs_ld_op": 1,
		"groups_with_ddf": 3, "ci_lo": 0.001, "ci_hi": 0.005, "confidence": 0.95,
		"rel_err": 0.5, "rate": 500, "elapsed_s": 2, "eta_s": 120, "p": 0.003,
	} {
		if got, ok := frame[key].(float64); !ok || got != want {
			t.Errorf("frame[%q] = %v, want %v", key, frame[key], want)
		}
	}
	if _, present := frame["done"]; present {
		t.Error("in-flight frame carries done")
	}

	var final map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &final); err != nil {
		t.Fatalf("line 2 not valid JSON: %v", err)
	}
	if final["done"] != true || final["reason"] != StopTarget.String() {
		t.Errorf("final frame %v missing done/reason", final)
	}
	for _, absent := range []string{"rel_err", "eta_s"} {
		if _, present := final[absent]; present {
			t.Errorf("final frame encodes %q despite unknown value", absent)
		}
	}
}

func TestWriterProgressFormat(t *testing.T) {
	var sb strings.Builder
	p := WriterProgress(&sb)
	p.Report(Snapshot{Iterations: 1000, Rate: 500, TotalDDFs: 3, OpOpDDFs: 2, LdOpDDFs: 1,
		GroupsWithDDF: 3, RelErr: 0.5, ETA: 2 * time.Minute})
	p.Report(Snapshot{Done: true, Reason: StopTarget, Iterations: 1000, Batches: 1})
	out := sb.String()
	for _, want := range []string{"1000 iters", "500/s", "2 op+op", "1 ld+op", "eta=2m0s", "target precision reached"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}
