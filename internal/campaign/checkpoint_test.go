package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/sim"
)

// TestKillResumeEqualsUninterrupted is the subsystem's core guarantee:
// a campaign killed partway and resumed from its checkpoint produces the
// identical DDF counts and CI as the same campaign run uninterrupted.
func TestKillResumeEqualsUninterrupted(t *testing.T) {
	// A 15% target needs a few thousand iterations at fastConfig's DDF
	// probability, so the kill after batch 2 lands genuinely mid-campaign.
	spec := Spec{
		Config:       fastConfig(),
		Seed:         42,
		BatchSize:    200,
		TargetRelErr: 0.15,
	}

	// Reference: the campaign run to completion, no interruption.
	want, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Reason != StopTarget {
		t.Fatalf("reference campaign stopped for %v, want target", want.Reason)
	}

	// "Kill" the same campaign after its second batch: cancel the context
	// from the progress sink, exactly as a SIGINT would between batches.
	path := filepath.Join(t.TempDir(), "c.json")
	ctx, cancel := context.WithCancel(context.Background())
	killed := spec
	killed.Checkpoint = path
	batches := 0
	killed.Progress = ProgressFunc(func(s Snapshot) {
		if !s.Done {
			batches++
			if batches == 2 {
				cancel()
			}
		}
	})
	part, err := Run(ctx, killed)
	if err != nil {
		t.Fatal(err)
	}
	if part.Reason != StopCancelled {
		t.Fatalf("killed campaign stopped for %v, want cancelled", part.Reason)
	}
	if part.Iterations >= want.Iterations {
		t.Fatalf("kill point %d not partway through reference %d; test is vacuous",
			part.Iterations, want.Iterations)
	}

	// Resume from the checkpoint file and run to completion.
	resumed := spec
	resumed.Resume = path
	got, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResumedFrom != part.Iterations {
		t.Errorf("resumed from %d iterations, checkpoint held %d", got.ResumedFrom, part.Iterations)
	}
	if got.Reason != want.Reason || got.Iterations != want.Iterations {
		t.Fatalf("resumed campaign (%v after %d) differs from uninterrupted (%v after %d)",
			got.Reason, got.Iterations, want.Reason, want.Iterations)
	}
	if got.Run.TotalDDFs != want.Run.TotalDDFs ||
		got.Run.OpOpDDFs != want.Run.OpOpDDFs ||
		got.Run.LdOpDDFs != want.Run.LdOpDDFs {
		t.Errorf("DDF counts differ: resumed (%d,%d,%d) vs uninterrupted (%d,%d,%d)",
			got.Run.TotalDDFs, got.Run.OpOpDDFs, got.Run.LdOpDDFs,
			want.Run.TotalDDFs, want.Run.OpOpDDFs, want.Run.LdOpDDFs)
	}
	if got.CI != want.CI || got.GroupsWithDDF != want.GroupsWithDDF {
		t.Errorf("CI differs: resumed %+v (k=%d) vs uninterrupted %+v (k=%d)",
			got.CI, got.GroupsWithDDF, want.CI, want.GroupsWithDDF)
	}
	if got.Run.Groups != want.Run.Groups || !reflect.DeepEqual(got.Run.Events, want.Run.Events) {
		t.Error("per-group chronologies differ bit-for-bit")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := Spec{
		Config:        fastConfig(),
		Seed:          9,
		BatchSize:     150,
		MaxIterations: 450,
		Checkpoint:    path,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	restored, batches, err := loadCheckpoint(path, spec.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if batches != res.Batches {
		t.Errorf("restored %d batches, want %d", batches, res.Batches)
	}
	if restored.Groups != res.Run.Groups || !reflect.DeepEqual(restored.Events, res.Run.Events) {
		t.Error("restored results differ from the live campaign's")
	}
	if restored.TotalDDFs != res.Run.TotalDDFs ||
		restored.OpOpDDFs != res.Run.OpOpDDFs ||
		restored.LdOpDDFs != res.Run.LdOpDDFs {
		t.Error("restored tallies differ")
	}

	// Resuming a finished campaign must stop immediately with the same
	// result and run zero extra batches.
	again := spec
	again.Checkpoint = ""
	again.Resume = path
	rerun, err := Run(context.Background(), again)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.Batches != res.Batches || rerun.Iterations != res.Iterations {
		t.Errorf("resume of finished campaign reran work: %d batches / %d iters, want %d / %d",
			rerun.Batches, rerun.Iterations, res.Batches, res.Iterations)
	}
	if rerun.Reason != StopMaxIterations {
		t.Errorf("resume of finished campaign stopped for %v", rerun.Reason)
	}
}

// A coupled-topology campaign's checkpoints carry unavailability onsets
// (cause 3) next to the loss events; the round trip must restore them into
// the unavailability tallies, and resuming must reproduce the
// uninterrupted campaign bit-for-bit.
func TestCheckpointRoundTripWithTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	cfg := fastConfig()
	cfg.Topology = &sim.Topology{Components: []sim.Component{{
		Name:   "enclosure",
		Drives: []int{0, 1, 2, 3, 4, 5, 6, 7},
		TTOp:   dist.MustExponential(5e-4),
		TTR:    dist.MustExponential(1e-3),
	}}}
	spec := Spec{
		Config:        cfg,
		Seed:          17,
		BatchSize:     200,
		MaxIterations: 600,
		Checkpoint:    path,
	}
	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.UnavailEvents == 0 {
		t.Fatal("no unavailability onsets at these component rates; the round trip tests nothing")
	}
	if res.GroupsWithUnavail == 0 {
		t.Error("campaign result did not surface unavailable groups")
	}

	restored, _, err := loadCheckpoint(path, spec.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if restored.UnavailEvents != res.Run.UnavailEvents {
		t.Errorf("restored %d unavailability onsets, want %d", restored.UnavailEvents, res.Run.UnavailEvents)
	}
	if restored.TotalDDFs != res.Run.TotalDDFs || !reflect.DeepEqual(restored.Events, res.Run.Events) {
		t.Error("restored events differ from the live campaign's")
	}

	// A flat campaign must reject the coupled checkpoint: the topology is
	// part of the fingerprint when (and only when) it is coupled.
	flat := spec
	flat.Checkpoint = ""
	flat.Resume = path
	flat.Config.Topology = nil
	if _, err := Run(context.Background(), flat); err == nil {
		t.Error("flat campaign resumed a coupled-topology checkpoint")
	}
}

func TestResumeRejectsMismatchedCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	spec := Spec{Config: fastConfig(), Seed: 1, BatchSize: 100, MaxIterations: 100, Checkpoint: path}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}

	wrongSeed := spec
	wrongSeed.Checkpoint = ""
	wrongSeed.Resume = path
	wrongSeed.Seed = 2
	if _, err := Run(context.Background(), wrongSeed); err == nil {
		t.Error("resume with a different seed accepted")
	}

	wrongConfig := spec
	wrongConfig.Checkpoint = ""
	wrongConfig.Resume = path
	wrongConfig.Config.Drives = 9
	if _, err := Run(context.Background(), wrongConfig); err == nil {
		t.Error("resume with a different config accepted")
	}
}

func TestResumeRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Config: fastConfig(), Seed: 1, MaxIterations: 100}

	missing := spec
	missing.Resume = filepath.Join(dir, "nope.json")
	if _, err := Run(context.Background(), missing); err == nil {
		t.Error("missing checkpoint accepted")
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := spec
	bad.Resume = corrupt
	if _, err := Run(context.Background(), bad); err == nil {
		t.Error("corrupt checkpoint accepted")
	}

	// Future version: loader must refuse rather than guess.
	futurePath := filepath.Join(dir, "future.json")
	doc := checkpointFile{Version: CheckpointVersion + 1, Fingerprint: spec.withDefaults().Fingerprint(), Seed: 1}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(futurePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	future := spec
	future.Resume = futurePath
	if _, err := Run(context.Background(), future); err == nil {
		t.Error("future-version checkpoint accepted")
	}
}

func TestCheckpointWritesAreAtomic(t *testing.T) {
	// After every batch the file on disk must parse as a complete
	// checkpoint — the tmp+rename protocol never exposes partial writes.
	path := filepath.Join(t.TempDir(), "c.json")
	seen := 0
	_, err := Run(context.Background(), Spec{
		Config:        fastConfig(),
		Seed:          11,
		BatchSize:     100,
		MaxIterations: 300,
		Checkpoint:    path,
		Progress: ProgressFunc(func(s Snapshot) {
			if s.Done {
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("after batch %d: %v", s.Batches, err)
				return
			}
			var doc checkpointFile
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Errorf("after batch %d: unparsable checkpoint: %v", s.Batches, err)
				return
			}
			if doc.NextStream != s.Iterations {
				t.Errorf("after batch %d: checkpoint next_stream %d != %d iterations",
					s.Batches, doc.NextStream, s.Iterations)
			}
			seen++
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("verified %d checkpoints, want 3", seen)
	}
}
