package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"raidrel/internal/sim"
)

// CheckpointVersion is the current on-disk checkpoint format version.
// Loaders reject other versions rather than guessing.
const CheckpointVersion = 1

// checkpointEvent is one DDF in flat form: group index within the
// campaign, event time, cause, and (for importance-sampled campaigns) the
// group's log likelihood-ratio weight. Groups without events are implied
// by NextStream, which keeps the file small in the rare-event regime where
// almost every group is empty. LogW is omitted when zero, so unbiased
// campaigns write exactly the format older readers expect.
type checkpointEvent struct {
	Group int     `json:"g"`
	Time  float64 `json:"t"`
	Cause int     `json:"c"`
	LogW  float64 `json:"lw,omitempty"`
}

// checkpointFile is the versioned JSON document written after each batch.
type checkpointFile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Seed        uint64 `json:"seed"`
	// NextStream is the next RNG stream index — equal to the number of
	// completed iterations, since stream i always drives iteration i.
	NextStream int `json:"next_stream"`
	Batches    int `json:"batches"`
	// Events lists every DDF observed so far, in (group, time) order.
	Events []checkpointEvent `json:"events"`
	// VR holds the block-level variance-reduction tallies of a VR campaign.
	// Omitted (and absent from the digest surface) for plain campaigns, so
	// pre-VR checkpoints and readers are unaffected.
	VR *checkpointVR `json:"vr,omitempty"`
	// Fleet holds the accumulated heal-backlog tally of a fleet campaign,
	// verbatim, so a resumed campaign's backlog statistics continue from
	// exactly where the interrupted one stopped. Omitted for scalar
	// campaigns, mirroring VR: pre-fleet checkpoints stay byte-compatible.
	Fleet *sim.FleetTally `json:"fleet,omitempty"`
}

// checkpointVR serializes sim.VRTally: the analytic control expectation
// plus every completed block's sums, verbatim. Restoring them verbatim is
// what makes a resumed VR campaign's estimator bit-exact.
type checkpointVR struct {
	BlockSize int           `json:"block_size"`
	EZ        float64       `json:"ez"`
	Blocks    []sim.VRBlock `json:"blocks"`
}

// engineName names the effective engine for fingerprinting.
func engineName(e sim.Engine) string {
	if e == nil {
		return fmt.Sprintf("%T", sim.EventEngine{})
	}
	return fmt.Sprintf("%T", e)
}

// Fingerprint digests the campaign identity — configuration, seed, engine,
// and shard offset — so a checkpoint is only ever resumed into the campaign
// that wrote it. The same digest keys the raidreld result cache and shard
// manifests: one config identity shared by every layer that must agree on
// "is this the same campaign?". Distribution parameters are captured via
// their value formatting; a custom NHPP rate function cannot be hashed, so
// only its presence and declared bound participate.
//
// The digest is stable across releases (pinned by TestFingerprintStability):
// changing it would silently orphan every on-disk checkpoint and cached
// result.
func (s Spec) Fingerprint() string {
	cfg := s.Config
	h := fnv.New64a()
	fmt.Fprintf(h, "drives=%d;red=%d;mission=%g;seed=%d;engine=%s;",
		cfg.Drives, cfg.Redundancy, cfg.Mission, s.Seed, engineName(s.Engine))
	fmt.Fprintf(h, "ttop=%v;ttr=%v;ttld=%v;ttscrub=%v;",
		cfg.Trans.TTOp, cfg.Trans.TTR, cfg.Trans.TTLd, cfg.Trans.TTScrub)
	fmt.Fprintf(h, "nhpp=%t;nhppmax=%g;", cfg.Trans.TTLdRate != nil, cfg.Trans.TTLdRateMax)
	fmt.Fprintf(h, "slots=%v;spares=%v;", cfg.SlotTTOp, cfg.Spares)
	if cfg.Bias.Enabled() {
		// Included only when biasing is on: checkpoints written before the
		// importance-sampling feature keep their fingerprints and remain
		// resumable, while a biased campaign never resumes an unbiased
		// checkpoint (or one biased differently) — the weights would be
		// inconsistent.
		fmt.Fprintf(h, "bias=%v;", cfg.Bias)
	}
	if cfg.VR.Enabled() {
		// Included only when variance reduction is on, mirroring the bias
		// component: legacy fingerprints stay stable, and a VR campaign can
		// only resume a checkpoint with the identical technique stack and
		// block size — the block tallies would otherwise be incompatible.
		fmt.Fprintf(h, "vr=%v;", cfg.VR)
	}
	if cfg.Topology.Coupled() {
		// Included only for coupled topologies, so every flat campaign's
		// fingerprint (and checkpoint) predating the component layer stays
		// valid, while a coupled campaign never resumes a flat checkpoint or
		// one with a different component tree. Topology.String renders the
		// components deterministically for exactly this purpose.
		fmt.Fprintf(h, "topology=%v;", cfg.Topology)
	}
	if s.Offset != 0 {
		// Included only for shard campaigns, so every pre-sharding
		// fingerprint (and checkpoint) stays valid, while shard i's
		// checkpoint can never be resumed into shard j.
		fmt.Fprintf(h, "offset=%d;", s.Offset)
	}
	if s.Fleet != nil {
		// Included only for fleet campaigns, keeping every scalar
		// fingerprint stable. The fleet size, repair-slot cap, and spare
		// policy all change which streams feed which chronology and how
		// contention unfolds, so any difference must orphan the checkpoint.
		fmt.Fprintf(h, "fleet=%d/%d;", s.Fleet.Groups, s.Fleet.MaxConcurrentRebuilds)
		if s.Fleet.SharedSpares != nil {
			fmt.Fprintf(h, "fleetspares=%v;", *s.Fleet.SharedSpares)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpoint atomically writes the campaign state: the document is
// written to a temporary file in the same directory and renamed over the
// destination, so a kill mid-write leaves the previous checkpoint intact.
// The sparse accumulator and the file share the same representation —
// events in (group, time) order plus a group count — so encoding is a
// direct copy.
func saveCheckpoint(path string, spec Spec, run *sim.SparseResult, batches int) error {
	doc := checkpointFile{
		Version:     CheckpointVersion,
		Fingerprint: spec.Fingerprint(),
		Seed:        spec.Seed,
		NextStream:  run.Groups,
		Batches:     batches,
		Events:      make([]checkpointEvent, 0, run.TotalDDFs),
	}
	for _, e := range run.Events {
		doc.Events = append(doc.Events, checkpointEvent{Group: e.Group, Time: e.Time, Cause: int(e.Cause), LogW: e.LogW})
	}
	if run.VR != nil {
		doc.VR = &checkpointVR{BlockSize: run.VR.BlockSize, EZ: run.VR.EZ, Blocks: run.VR.Blocks}
	}
	if run.Fleet != nil {
		fleet := *run.Fleet
		doc.Fleet = &fleet
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// loadCheckpoint restores the campaign state from path.
func loadCheckpoint(path string, spec Spec) (*sim.SparseResult, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: resume: %w", err)
	}
	run, batches, err := decodeCheckpoint(data, spec)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: resume %s: %w", path, err)
	}
	return run, batches, nil
}

// decodeCheckpoint parses and fully validates a checkpoint document,
// verifying the format version, that the checkpoint belongs to this
// (config, seed, engine), and that every event is well-formed — group
// inside [0, NextStream), time finite and within the mission, cause one of
// the defined values, events sorted by (group, time), log weights
// finite and identical within a group. A corrupted or hand-edited file
// yields a descriptive error, never a panic or a silently inconsistent
// accumulator.
func decodeCheckpoint(data []byte, spec Spec) (*sim.SparseResult, int, error) {
	var doc checkpointFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, 0, err
	}
	if doc.Version != CheckpointVersion {
		return nil, 0, fmt.Errorf("checkpoint version %d, want %d", doc.Version, CheckpointVersion)
	}
	if want := spec.Fingerprint(); doc.Fingerprint != want {
		return nil, 0, fmt.Errorf("checkpoint fingerprint %s does not match campaign %s (config, seed, or engine changed)",
			doc.Fingerprint, want)
	}
	if doc.Seed != spec.Seed {
		return nil, 0, fmt.Errorf("checkpoint seed %d, campaign seed %d", doc.Seed, spec.Seed)
	}
	if doc.NextStream < 0 {
		return nil, 0, fmt.Errorf("negative stream index %d", doc.NextStream)
	}
	run := &sim.SparseResult{
		Groups: doc.NextStream,
		Events: make([]sim.GroupEvent, 0, len(doc.Events)),
	}
	for i, e := range doc.Events {
		if e.Group < 0 || e.Group >= doc.NextStream {
			return nil, 0, fmt.Errorf("event %d: group %d outside [0, %d)", i, e.Group, doc.NextStream)
		}
		if math.IsNaN(e.Time) || e.Time < 0 || e.Time > spec.Config.Mission {
			return nil, 0, fmt.Errorf("event %d: time %v outside [0, %v]", i, e.Time, spec.Config.Mission)
		}
		c := sim.Cause(e.Cause)
		if c != sim.CauseOpOp && c != sim.CauseLdOp && c != sim.CauseUnavail {
			return nil, 0, fmt.Errorf("event %d: unknown cause %d", i, e.Cause)
		}
		if math.IsNaN(e.LogW) || math.IsInf(e.LogW, 0) {
			return nil, 0, fmt.Errorf("event %d: log weight %v not finite", i, e.LogW)
		}
		if i > 0 {
			prev := doc.Events[i-1]
			if e.Group < prev.Group || (e.Group == prev.Group && e.Time < prev.Time) {
				return nil, 0, fmt.Errorf("event %d: events not sorted by (group, time)", i)
			}
			if e.Group == prev.Group && e.LogW != prev.LogW {
				// The weight is a per-group quantity repeated on each event;
				// a mismatch means the file was corrupted or edited.
				return nil, 0, fmt.Errorf("event %d: log weight %v differs from group %d's %v", i, e.LogW, e.Group, prev.LogW)
			}
		}
		run.Events = append(run.Events, sim.GroupEvent{Group: e.Group, LogW: e.LogW, DDF: sim.DDF{Time: e.Time, Cause: c}})
	}
	if spec.Config.VR.Enabled() && doc.VR == nil && doc.NextStream > 0 {
		return nil, 0, fmt.Errorf("variance-reduced campaign, but the checkpoint carries no VR tallies")
	}
	if doc.VR != nil {
		if doc.VR.BlockSize <= 0 {
			return nil, 0, fmt.Errorf("vr: block size %d not positive", doc.VR.BlockSize)
		}
		// The indicator control is a probability; the conditional-DDF
		// variate is a per-group count bounded by the drive count.
		ezMax := 1.0
		if spec.Config.VR.CondVariate {
			ezMax = float64(spec.Config.Drives)
		}
		if math.IsNaN(doc.VR.EZ) || doc.VR.EZ < 0 || doc.VR.EZ > ezMax {
			return nil, 0, fmt.Errorf("vr: control expectation %v outside [0, %v]", doc.VR.EZ, ezMax)
		}
		total := 0
		for i, b := range doc.VR.Blocks {
			if b.N <= 0 || b.N > doc.VR.BlockSize {
				return nil, 0, fmt.Errorf("vr block %d: %d iterations outside (0, %d]", i, b.N, doc.VR.BlockSize)
			}
			if b.P < 0 || 2*b.P > b.N {
				return nil, 0, fmt.Errorf("vr block %d: %d pairs inconsistent with %d iterations", i, b.P, b.N)
			}
			for _, v := range [...]float64{b.Y, b.Z, b.Y2, b.C} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, 0, fmt.Errorf("vr block %d: non-finite tally", i)
				}
			}
			total += b.N
		}
		if total != doc.NextStream {
			return nil, 0, fmt.Errorf("vr blocks cover %d iterations, checkpoint has %d", total, doc.NextStream)
		}
		run.VR = &sim.VRTally{BlockSize: doc.VR.BlockSize, EZ: doc.VR.EZ, Blocks: doc.VR.Blocks}
	}
	if spec.Fleet != nil && doc.Fleet == nil && doc.NextStream > 0 {
		return nil, 0, fmt.Errorf("fleet campaign, but the checkpoint carries no fleet tally")
	}
	if doc.Fleet != nil {
		f := doc.Fleet
		if spec.Fleet == nil {
			return nil, 0, fmt.Errorf("fleet: checkpoint carries a fleet tally, but the campaign is scalar")
		}
		if f.GroupsPer != spec.Fleet.Groups {
			return nil, 0, fmt.Errorf("fleet: checkpoint fleet size %d, campaign %d", f.GroupsPer, spec.Fleet.Groups)
		}
		if f.Chronologies < 0 || f.Chronologies*f.GroupsPer != doc.NextStream {
			return nil, 0, fmt.Errorf("fleet: %d chronologies of %d groups inconsistent with %d iterations",
				f.Chronologies, f.GroupsPer, doc.NextStream)
		}
		if f.Failures < 0 || f.Rebuilds < 0 || f.Waited < 0 || f.ActiveAtEnd < 0 || f.QueuedAtEnd < 0 || f.MaxQueueDepth < 0 {
			return nil, 0, fmt.Errorf("fleet: negative count in tally %+v", *f)
		}
		if f.Failures != f.Rebuilds+f.ActiveAtEnd+f.QueuedAtEnd {
			return nil, 0, fmt.Errorf("fleet: %d failures != %d rebuilds + %d active + %d queued",
				f.Failures, f.Rebuilds, f.ActiveAtEnd, f.QueuedAtEnd)
		}
		for _, v := range [...]float64{f.TotalWaitHours, f.MaxWaitHours, f.MeanDepthSum, f.MaxExposureHours} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, 0, fmt.Errorf("fleet: non-finite or negative hours in tally %+v", *f)
			}
		}
		fleet := *f
		run.Fleet = &fleet
	}
	run.Tally()
	return run, doc.Batches, nil
}
