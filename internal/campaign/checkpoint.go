package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"raidrel/internal/sim"
)

// CheckpointVersion is the current on-disk checkpoint format version.
// Loaders reject other versions rather than guessing.
const CheckpointVersion = 1

// checkpointEvent is one DDF in flat form: group index within the
// campaign, event time, and cause. Groups without events are implied by
// NextStream, which keeps the file small in the rare-event regime where
// almost every group is empty.
type checkpointEvent struct {
	Group int     `json:"g"`
	Time  float64 `json:"t"`
	Cause int     `json:"c"`
}

// checkpointFile is the versioned JSON document written after each batch.
type checkpointFile struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Seed        uint64 `json:"seed"`
	// NextStream is the next RNG stream index — equal to the number of
	// completed iterations, since stream i always drives iteration i.
	NextStream int `json:"next_stream"`
	Batches    int `json:"batches"`
	// Events lists every DDF observed so far, in (group, time) order.
	Events []checkpointEvent `json:"events"`
}

// engineName names the effective engine for fingerprinting.
func engineName(e sim.Engine) string {
	if e == nil {
		return fmt.Sprintf("%T", sim.EventEngine{})
	}
	return fmt.Sprintf("%T", e)
}

// fingerprint digests the campaign identity — configuration, seed, and
// engine — so a checkpoint is only ever resumed into the campaign that
// wrote it. Distribution parameters are captured via their value
// formatting; a custom NHPP rate function cannot be hashed, so only its
// presence and declared bound participate.
func fingerprint(spec Spec) string {
	cfg := spec.Config
	h := fnv.New64a()
	fmt.Fprintf(h, "drives=%d;red=%d;mission=%g;seed=%d;engine=%s;",
		cfg.Drives, cfg.Redundancy, cfg.Mission, spec.Seed, engineName(spec.Engine))
	fmt.Fprintf(h, "ttop=%v;ttr=%v;ttld=%v;ttscrub=%v;",
		cfg.Trans.TTOp, cfg.Trans.TTR, cfg.Trans.TTLd, cfg.Trans.TTScrub)
	fmt.Fprintf(h, "nhpp=%t;nhppmax=%g;", cfg.Trans.TTLdRate != nil, cfg.Trans.TTLdRateMax)
	fmt.Fprintf(h, "slots=%v;spares=%v;", cfg.SlotTTOp, cfg.Spares)
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpoint atomically writes the campaign state: the document is
// written to a temporary file in the same directory and renamed over the
// destination, so a kill mid-write leaves the previous checkpoint intact.
func saveCheckpoint(path string, spec Spec, run *sim.RunResult, batches int) error {
	doc := checkpointFile{
		Version:     CheckpointVersion,
		Fingerprint: fingerprint(spec),
		Seed:        spec.Seed,
		NextStream:  len(run.PerGroup),
		Batches:     batches,
		Events:      make([]checkpointEvent, 0, run.TotalDDFs),
	}
	for g, events := range run.PerGroup {
		for _, d := range events {
			doc.Events = append(doc.Events, checkpointEvent{Group: g, Time: d.Time, Cause: int(d.Cause)})
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// loadCheckpoint restores the campaign state from path, verifying the
// format version and that the checkpoint belongs to this (config, seed,
// engine) before reconstructing per-group results.
func loadCheckpoint(path string, spec Spec) (*sim.RunResult, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: resume: %w", err)
	}
	var doc checkpointFile
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, 0, fmt.Errorf("campaign: resume %s: %w", path, err)
	}
	if doc.Version != CheckpointVersion {
		return nil, 0, fmt.Errorf("campaign: resume %s: checkpoint version %d, want %d",
			path, doc.Version, CheckpointVersion)
	}
	if want := fingerprint(spec); doc.Fingerprint != want {
		return nil, 0, fmt.Errorf("campaign: resume %s: checkpoint fingerprint %s does not match campaign %s (config, seed, or engine changed)",
			path, doc.Fingerprint, want)
	}
	if doc.Seed != spec.Seed {
		return nil, 0, fmt.Errorf("campaign: resume %s: checkpoint seed %d, campaign seed %d",
			path, doc.Seed, spec.Seed)
	}
	if doc.NextStream < 0 {
		return nil, 0, fmt.Errorf("campaign: resume %s: negative stream index %d", path, doc.NextStream)
	}
	run := &sim.RunResult{PerGroup: make([][]sim.DDF, doc.NextStream)}
	for _, e := range doc.Events {
		if e.Group < 0 || e.Group >= doc.NextStream {
			return nil, 0, fmt.Errorf("campaign: resume %s: event group %d outside [0, %d)",
				path, e.Group, doc.NextStream)
		}
		run.PerGroup[e.Group] = append(run.PerGroup[e.Group], sim.DDF{Time: e.Time, Cause: sim.Cause(e.Cause)})
	}
	run.Tally()
	return run, doc.Batches, nil
}
