// Package renewal computes renewal-theoretic quantities for repairable
// systems. The paper's first argument (§1) is that the component hazard
// rate and the system rate of occurrence of failures (ROCOF) are different
// objects; this package makes that concrete by solving the renewal equation
//
//	m(t) = F(t) + ∫₀ᵗ m(t-s) dF(s)
//
// for the expected number of renewals m(t) of a socket whose lifetimes are
// drawn i.i.d. from an arbitrary distribution F. It also provides the
// renewal density (the true ROCOF of a renewal process), used to validate
// the Monte Carlo engine against theory for single-slot processes.
package renewal

import (
	"fmt"
	"math"

	"raidrel/internal/dist"
)

// Function is a discretized renewal function m(t) on a uniform grid.
type Function struct {
	Step   float64   // grid spacing, hours
	Values []float64 // m(i*Step) for i = 0..len-1
}

// Compute solves the renewal equation for lifetimes distributed as d on a
// uniform grid of the given step out to horizon. The discretization uses
// the standard Riemann–Stieltjes midpoint scheme
//
//	m_i = F(t_i) + Σ_{j=1..i} m_{i-j} [F(t_j) - F(t_{j-1})]
//
// which converges O(step) and is exact in the exponential case up to grid
// error.
func Compute(d dist.Distribution, horizon, step float64) (*Function, error) {
	if d == nil {
		return nil, fmt.Errorf("renewal: nil distribution")
	}
	if !(horizon > 0) || !(step > 0) || step > horizon {
		return nil, fmt.Errorf("renewal: need 0 < step <= horizon, got step=%v horizon=%v", step, horizon)
	}
	n := int(math.Ceil(horizon/step)) + 1
	m := make([]float64, n)
	// Precompute CDF increments.
	cdf := make([]float64, n)
	for i := range cdf {
		cdf[i] = d.CDF(float64(i) * step)
	}
	for i := 1; i < n; i++ {
		v := cdf[i]
		for j := 1; j <= i; j++ {
			v += m[i-j] * (cdf[j] - cdf[j-1])
		}
		m[i] = v
	}
	return &Function{Step: step, Values: m}, nil
}

// At evaluates m(t) by linear interpolation; t beyond the grid is clamped.
func (f *Function) At(t float64) float64 {
	if t <= 0 {
		return 0
	}
	pos := t / f.Step
	i := int(pos)
	if i >= len(f.Values)-1 {
		return f.Values[len(f.Values)-1]
	}
	frac := pos - float64(i)
	return f.Values[i] + frac*(f.Values[i+1]-f.Values[i])
}

// Density returns the renewal density (ROCOF) at t by central differencing.
func (f *Function) Density(t float64) float64 {
	h := f.Step
	lo, hi := t-h, t+h
	if lo < 0 {
		lo = 0
	}
	return (f.At(hi) - f.At(lo)) / (hi - lo)
}

// AsymptoticRate returns the elementary-renewal-theorem limit m(t)/t → 1/μ.
func AsymptoticRate(d dist.Distribution) float64 {
	return 1 / d.Mean()
}
