package renewal

import (
	"math"
	"testing"

	"raidrel/internal/dist"
)

// For exponential lifetimes the renewal process is a HPP and m(t) = λt
// exactly — the one case where the MTTDL-style "rate × time" arithmetic is
// valid.
func TestExponentialRenewalIsLinear(t *testing.T) {
	d := dist.MustExponential(0.01)
	f, err := Compute(d, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{100, 400, 900} {
		want := 0.01 * tt
		if got := f.At(tt); math.Abs(got-want) > 0.01*want+0.01 {
			t.Errorf("m(%v) = %v, want %v", tt, got, want)
		}
	}
	// Density is constant λ.
	if d1, d2 := f.Density(200), f.Density(800); math.Abs(d1-d2) > 1e-3 {
		t.Errorf("exponential ROCOF not constant: %v vs %v", d1, d2)
	}
}

// For increasing-hazard (β > 1) Weibull lifetimes the renewal function
// starts below λt — new sockets rarely fail early — then approaches the
// elementary-renewal-theorem slope 1/μ.
func TestWeibullRenewalShape(t *testing.T) {
	w := dist.MustWeibull(2, 100, 0)
	f, err := Compute(w, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rate := AsymptoticRate(w)
	// Early: far fewer renewals than the asymptotic line.
	if got := f.At(30); got > rate*30*0.5 {
		t.Errorf("early m(30) = %v, want well below %v", got, rate*30)
	}
	// Late: slope approaches 1/μ within 5%.
	slope := (f.At(1000) - f.At(800)) / 200
	if math.Abs(slope-rate)/rate > 0.05 {
		t.Errorf("late slope %v, want ~%v", slope, rate)
	}
}

// The renewal density of a β > 1 Weibull process oscillates toward 1/μ —
// crucially it is NOT the component hazard h(t), which grows without
// bound. This is Ascher's point quoted in §1 of the paper.
func TestRenewalDensityIsNotHazard(t *testing.T) {
	w := dist.MustWeibull(2, 100, 0)
	f, err := Compute(w, 2000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// At t = 1000 the hazard is 2·1000/100² = 0.2, but the renewal density
	// is near the asymptotic 1/μ ≈ 0.0113.
	hazard := w.Hazard(1000)
	density := f.Density(1000)
	if density > hazard/5 {
		t.Errorf("renewal density %v should be far below hazard %v", density, hazard)
	}
	if math.Abs(density-AsymptoticRate(w))/AsymptoticRate(w) > 0.1 {
		t.Errorf("renewal density %v not near 1/μ = %v", density, AsymptoticRate(w))
	}
}

func TestComputeValidation(t *testing.T) {
	d := dist.MustExponential(1)
	if _, err := Compute(nil, 10, 1); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := Compute(d, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Compute(d, 10, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Compute(d, 10, 20); err == nil {
		t.Error("step > horizon accepted")
	}
}

func TestAtEdges(t *testing.T) {
	f, err := Compute(dist.MustExponential(0.1), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.At(-5) != 0 || f.At(0) != 0 {
		t.Error("m(t<=0) should be 0")
	}
	// Clamped beyond the grid.
	if f.At(1e6) != f.Values[len(f.Values)-1] {
		t.Error("beyond-grid lookup not clamped")
	}
}

func TestMonotonicity(t *testing.T) {
	f, err := Compute(dist.MustWeibull(1.12, 461386, 0), 87600, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(f.Values); i++ {
		if f.Values[i] < f.Values[i-1] {
			t.Fatalf("renewal function decreased at step %d", i)
		}
	}
}
