// Package report renders experiment results as aligned ASCII tables, CSV,
// and terminal line plots, so every figure and table of the paper can be
// regenerated on a plain terminal with no plotting dependencies.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddFloats appends a row of a label plus formatted numbers.
func (t *Table) AddFloats(label string, format string, values ...float64) {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	total := len(widths)*2 - 2
	for _, width := range widths {
		total += width
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders labelled series as a CSV body with a shared x column. All
// series must share the x grid; ragged series error.
func CSV(w io.Writer, xName string, x []float64, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("report: %d names for %d series", len(names), len(series))
	}
	for i, s := range series {
		if len(s) != len(x) {
			return fmt.Errorf("report: series %q has %d points, x has %d", names[i], len(s), len(x))
		}
	}
	header := append([]string{xName}, names...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := range x {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, strconv.FormatFloat(x[i], 'g', -1, 64))
		for _, s := range series {
			cells = append(cells, strconv.FormatFloat(s[i], 'g', -1, 64))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
