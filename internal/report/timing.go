package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TimingLane is one drive slot's episode list for a timing diagram.
type TimingLane struct {
	Label string
	// Down lists [start, end) intervals when the drive is failed/being
	// rebuilt.
	Down [][2]float64
	// Defects lists [start, end) intervals when the drive carries an
	// uncorrected latent defect.
	Defects [][2]float64
}

// TimingDiagram renders a Fig.-5-style digital timing diagram: one lane
// per drive, '█' while the drive is down, '~' while it carries a latent
// defect, '-' while healthy, with marker rows for group-level events.
type TimingDiagram struct {
	Title   string
	Horizon float64
	Width   int
	Lanes   []TimingLane
	// Marks are group-level instants (e.g. DDFs) drawn on their own row.
	Marks []TimingMark
}

// TimingMark is one labelled instant.
type TimingMark struct {
	Time  float64
	Label byte
}

// Render writes the diagram to w.
func (d *TimingDiagram) Render(w io.Writer) error {
	if d.Horizon <= 0 {
		return fmt.Errorf("report: timing diagram needs positive horizon")
	}
	if len(d.Lanes) == 0 {
		return fmt.Errorf("report: timing diagram needs lanes")
	}
	width := d.Width
	if width < 20 {
		width = 80
	}
	col := func(t float64) int {
		c := int(t / d.Horizon * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	labelW := 0
	for _, l := range d.Lanes {
		if len(l.Label) > labelW {
			labelW = len(l.Label)
		}
	}
	if d.Title != "" {
		if _, err := fmt.Fprintln(w, d.Title); err != nil {
			return err
		}
	}
	for _, lane := range d.Lanes {
		row := []byte(strings.Repeat("-", width))
		for _, iv := range lane.Defects {
			for c := col(iv[0]); c <= col(iv[1]); c++ {
				row[c] = '~'
			}
		}
		for _, iv := range lane.Down {
			for c := col(iv[0]); c <= col(iv[1]); c++ {
				row[c] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, lane.Label, row); err != nil {
			return err
		}
	}
	if len(d.Marks) > 0 {
		row := []byte(strings.Repeat(" ", width))
		sorted := make([]TimingMark, len(d.Marks))
		copy(sorted, d.Marks)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
		for _, m := range sorted {
			row[col(m.Time)] = m.Label
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", labelW, "events", row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%*s%.0f h   (# down, ~ latent defect, - healthy)\n",
		labelW, "", width-1, "", d.Horizon)
	return err
}
