package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LinePlot renders one or more series as an ASCII chart. Series share the
// x grid; each series gets a distinct marker. It is deliberately simple:
// the experiments only need the qualitative shape (linear vs super-linear,
// ordering of curves) to be visible in a terminal.
type LinePlot struct {
	Title   string
	XLabel  string
	YLabel  string
	Width   int // plot columns (default 72)
	Height  int // plot rows (default 20)
	x       []float64
	names   []string
	series  [][]float64
	markers string
}

// NewLinePlot creates a plot over the shared x grid.
func NewLinePlot(title string, x []float64) *LinePlot {
	return &LinePlot{
		Title:   title,
		Width:   72,
		Height:  20,
		x:       x,
		markers: "*o+x#@%&",
	}
}

// Add appends a named series, which must match the x grid length.
func (p *LinePlot) Add(name string, values []float64) error {
	if len(values) != len(p.x) {
		return fmt.Errorf("report: series %q has %d points, x has %d", name, len(values), len(p.x))
	}
	p.names = append(p.names, name)
	p.series = append(p.series, values)
	return nil
}

// Render writes the chart to w.
func (p *LinePlot) Render(w io.Writer) error {
	if len(p.series) == 0 || len(p.x) < 2 {
		return fmt.Errorf("report: nothing to plot")
	}
	width, height := p.Width, p.Height
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := p.x[0], p.x[len(p.x)-1]
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for _, v := range s {
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		marker := p.markers[si%len(p.markers)]
		for i := range p.x {
			col := int(math.Round((p.x[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((s[i] - ymin) / (ymax - ymin) * float64(height-1)))
			grid[height-1-row][col] = marker
		}
	}
	if p.Title != "" {
		if _, err := fmt.Fprintln(w, p.Title); err != nil {
			return err
		}
	}
	yAxisW := 12
	for i, rowBytes := range grid {
		label := strings.Repeat(" ", yAxisW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*.4g ", yAxisW-1, ymax)
		case height - 1:
			label = fmt.Sprintf("%*.4g ", yAxisW-1, ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(rowBytes)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", yAxisW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%-*.4g%*.4g  (%s)\n",
		strings.Repeat(" ", yAxisW+1), width/2, xmin, width/2-1, xmax, p.XLabel); err != nil {
		return err
	}
	legend := make([]string, 0, len(p.names))
	for i, n := range p.names {
		legend = append(legend, fmt.Sprintf("%c %s", p.markers[i%len(p.markers)], n))
	}
	_, err := fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, " | "))
	return err
}
