package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	tb.AddRow("partial")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[3], "22") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns align: "value" column of row 2 starts at the same offset as
	// in the header.
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "1") {
		t.Error("columns not aligned")
	}
}

func TestTableAddFloats(t *testing.T) {
	tb := NewTable("case", "a", "b")
	tb.AddFloats("x", "%.2f", 1.234, 5.678)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.23") || !strings.Contains(sb.String(), "5.68") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	err := CSV(&sb, "t", []float64{0, 1}, []string{"a", "b"},
		[][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	want := "t,a,b\n0,10,30\n1,20,40\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestCSVValidation(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, "t", []float64{0}, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
	if err := CSV(&sb, "t", []float64{0}, []string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Error("name/series mismatch accepted")
	}
}

func TestLinePlot(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	p := NewLinePlot("demo", x)
	p.XLabel = "hours"
	if err := p.Add("up", []float64{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("down", []float64{4, 3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "legend") {
		t.Errorf("missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
	if !strings.Contains(out, "hours") {
		t.Error("x label missing")
	}
}

func TestLinePlotValidation(t *testing.T) {
	p := NewLinePlot("x", []float64{0, 1})
	if err := p.Add("bad", []float64{1}); err == nil {
		t.Error("ragged series accepted")
	}
	var sb strings.Builder
	if err := p.Render(&sb); err == nil {
		t.Error("empty plot rendered")
	}
}

func TestTimingDiagram(t *testing.T) {
	d := &TimingDiagram{
		Title:   "demo",
		Horizon: 100,
		Width:   50,
		Lanes: []TimingLane{
			{Label: "slot 0", Down: [][2]float64{{10, 20}}},
			{Label: "slot 1", Defects: [][2]float64{{40, 60}}},
		},
		Marks: []TimingMark{{Time: 50, Label: 'L'}},
	}
	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "#") {
		t.Error("down glyphs missing")
	}
	if !strings.Contains(out, "~") {
		t.Error("defect glyphs missing")
	}
	if !strings.Contains(out, "L") {
		t.Error("mark missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 2 lanes + marks + axis
		t.Errorf("%d lines:\n%s", len(lines), out)
	}
}

func TestTimingDiagramValidation(t *testing.T) {
	var sb strings.Builder
	if err := (&TimingDiagram{Horizon: 0, Lanes: []TimingLane{{}}}).Render(&sb); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := (&TimingDiagram{Horizon: 10}).Render(&sb); err == nil {
		t.Error("no lanes accepted")
	}
}

func TestTimingDiagramClampsOutOfRange(t *testing.T) {
	d := &TimingDiagram{
		Horizon: 100,
		Width:   30,
		Lanes:   []TimingLane{{Label: "s", Down: [][2]float64{{-10, 500}}}},
	}
	var sb strings.Builder
	if err := d.Render(&sb); err != nil {
		t.Fatalf("out-of-range intervals should clamp, got %v", err)
	}
}

func TestLinePlotFlatSeries(t *testing.T) {
	p := NewLinePlot("flat", []float64{0, 1, 2})
	if err := p.Add("zero", []float64{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatalf("flat series failed: %v", err)
	}
}
