// Package cosim bridges the repository's two halves: it replays a
// Monte Carlo group chronology from the reliability model (internal/sim)
// onto a block-level array with real parity (internal/raid) and compares
// verdicts — every statistical DDF should correspond to physically
// unrecoverable stripes, and vice versa. This grounds the model's event
// algebra in actual reconstruction arithmetic.
//
// The correspondence carries the paper's own approximations (§4.2): the
// model decides data loss instantaneously at the failure instant, ignores
// defects created during rebuild windows, and lets scrubs "correct"
// defects even while the group is degraded. Physically those corners play
// out over the rebuild window. Replay counts how often each corner occurs
// so tests can assert exact agreement outside them.
package cosim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"raidrel/internal/raid"
	"raidrel/internal/rng"
	"raidrel/internal/sim"
)

// PhysicalLoss is one data-loss event observed on the array, after
// applying the model's suppression rule (one loss per outstanding
// restore).
type PhysicalLoss struct {
	// FailTime is the chronology time of the drive failure whose handling
	// exposed the loss — directly comparable to sim.DDF.Time.
	FailTime float64
	// LostSets counts stripe sets that could not be reconstructed
	// (StripeSets for whole-array double failures).
	LostSets int
	// DoubleFailure reports whether the loss came from overlapping
	// whole-disk failures rather than a latent defect met during rebuild.
	DoubleFailure bool
}

// Result compares one chronology's model verdicts with the physical
// replay.
type Result struct {
	ModelDDFs      []sim.DDF
	PhysicalLosses []PhysicalLoss
	// DefectsInjected counts corruptions actually placed on the array.
	DefectsInjected int
	// DefectsRepaired counts scrub corrections applied on a fully
	// healthy array.
	DefectsRepaired int
	// CornerEvents counts chronology events that fell into one of the
	// documented model/physics divergence corners (defects created or
	// scrubs applied while a rebuild was in flight).
	CornerEvents int
	// RepairAnomalies counts scrub corrections that could not be applied
	// physically (stripe unrecoverable at scrub time).
	RepairAnomalies int
}

// Agrees reports whether model and array reached the same verdict. When
// no chronology event hit a divergence corner, the loss events must match
// the model's DDFs one for one (count and, within tolerance, times).
func (r *Result) Agrees() bool {
	if r.CornerEvents > 0 || r.RepairAnomalies > 0 {
		return true // no strict claim inside the documented corners
	}
	if len(r.ModelDDFs) != len(r.PhysicalLosses) {
		return false
	}
	for i, d := range r.ModelDDFs {
		if math.Abs(d.Time-r.PhysicalLosses[i].FailTime) > 1e-9 {
			return false
		}
	}
	return true
}

// Config parameterizes a replay.
type Config struct {
	Sim        sim.Config
	Level      raid.Level
	StripeSets int
	BlockSize  int
}

// location addresses one block on one drive.
type location struct{ set, row int }

// lossCandidate is a physical loss before suppression filtering.
type lossCandidate struct {
	failTime   float64
	restoreEnd float64
	lostSets   int
	double     bool
}

// Replay simulates one traced chronology and replays it on a fresh array.
func Replay(cfg Config, seed uint64) (*Result, error) {
	if cfg.Sim.Drives < 3 {
		return nil, fmt.Errorf("cosim: need >= 3 drives, got %d", cfg.Sim.Drives)
	}
	array, err := raid.New(cfg.Level, cfg.Sim.Drives, cfg.StripeSets, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	if array.Redundancy() != cfg.Sim.Redundancy {
		return nil, fmt.Errorf("cosim: %v tolerates %d losses but the model assumes %d",
			cfg.Level, array.Redundancy(), cfg.Sim.Redundancy)
	}
	r := rng.ForStream(seed, 0)
	if err := fillArray(array, cfg.BlockSize, r); err != nil {
		return nil, err
	}
	var trace sim.Trace
	ddfs, err := sim.SimulateTraced(cfg.Sim, rng.ForStream(seed, 1), &trace)
	if err != nil {
		return nil, err
	}
	res := &Result{ModelDDFs: ddfs}

	var (
		pending    = make(map[int][]location, cfg.Sim.Drives) // slot -> FIFO of live corruptions
		live       = make(map[location]int)                   // corruption refcount by place
		downSince  = make(map[int]float64, cfg.Sim.Drives)
		overlapped = make(map[int]bool, cfg.Sim.Drives) // rebuild window shared with another failure
		candidates []lossCandidate
		openLoss   = make(map[int]int) // slot -> candidate index awaiting restoreEnd
	)
	rows := rowsPerSet(array)

	for _, e := range trace.Events {
		switch e.Kind {
		case sim.TraceDefect:
			if len(downSince) > 0 {
				// Defect during some rebuild window — the paper's carve-out
				// (on the rebuilding drive itself or a survivor).
				res.CornerEvents++
				if _, isDown := downSince[e.Slot]; isDown {
					continue // cannot corrupt a failed disk
				}
			}
			loc, ok := pickLocation(r, cfg.StripeSets, rows, live)
			if !ok {
				res.CornerEvents++ // array saturated with corruption
				continue
			}
			if err := array.CorruptBlock(e.Slot, loc.set, loc.row); err != nil {
				return nil, fmt.Errorf("cosim: inject defect: %w", err)
			}
			pending[e.Slot] = append(pending[e.Slot], loc)
			live[loc]++
			res.DefectsInjected++

		case sim.TraceScrub:
			queue := pending[e.Slot]
			if len(queue) == 0 {
				continue // defect belonged to a replaced drive
			}
			loc := queue[0]
			pending[e.Slot] = queue[1:]
			releaseLocation(live, loc)
			if len(downSince) > 0 {
				// Scrubbing while degraded: physically the repair may
				// succeed (RAID 6) or fail (RAID 5); either way the model's
				// instantaneous-verdict assumption no longer binds.
				res.CornerEvents++
			}
			if err := array.RepairBlock(e.Slot, loc.set, loc.row); err != nil {
				res.RepairAnomalies++
				continue
			}
			res.DefectsRepaired++

		case sim.TraceOpFail:
			if len(downSince) >= cfg.Sim.Redundancy {
				// Too many drives down at once: whole-array loss.
				candidates = append(candidates, lossCandidate{
					failTime:   e.Time,
					restoreEnd: math.Inf(1), // filled at this slot's restore
					lostSets:   cfg.StripeSets,
					double:     true,
				})
				openLoss[e.Slot] = len(candidates) - 1
			}
			if err := array.FailDisk(e.Slot); err != nil {
				return nil, fmt.Errorf("cosim: fail disk: %w", err)
			}
			// Overlapping failures: rebuild losses in shared windows are
			// consequences of the double failure, not separate events.
			if len(downSince) > 0 {
				overlapped[e.Slot] = true
				for k := range downSince {
					overlapped[k] = true
				}
				// If corruption is also outstanding, defect losses and the
				// double failure entangle in one rebuild window and cannot
				// be attributed to single events physically.
				for _, queue := range pending {
					if len(queue) > 0 {
						res.CornerEvents++
						break
					}
				}
			}
			downSince[e.Slot] = e.Time
			// The dead drive's corruptions die with it.
			for _, loc := range pending[e.Slot] {
				releaseLocation(live, loc)
			}
			delete(pending, e.Slot)

		case sim.TraceOpRestore:
			failTime := downSince[e.Slot]
			delete(downSince, e.Slot)
			rep, err := array.ReplaceDisk(e.Slot)
			if err != nil {
				return nil, fmt.Errorf("cosim: rebuild: %w", err)
			}
			wasOverlapped := overlapped[e.Slot]
			delete(overlapped, e.Slot)
			if idx, ok := openLoss[e.Slot]; ok {
				candidates[idx].restoreEnd = e.Time
				delete(openLoss, e.Slot)
				// Any rebuild losses are consequences of the same event.
			} else if len(rep.LostSets) > 0 && !wasOverlapped {
				candidates = append(candidates, lossCandidate{
					failTime:   failTime,
					restoreEnd: e.Time,
					lostSets:   len(rep.LostSets),
				})
				if len(rep.LostSets) > 1 {
					// Multiple coexisting defects: physics destroys every
					// affected stripe in this one rebuild, while the model
					// truncates only the oldest defect and charges the rest
					// to subsequent failures. Another documented corner.
					res.CornerEvents++
				}
			}
			if len(rep.LostSets) > 0 {
				dropLostSets(pending, live, rep.LostSets)
			}
		}
	}

	// Apply the model's suppression rule: losses whose triggering failure
	// falls inside an earlier loss's restore window are not counted.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].failTime < candidates[j].failTime })
	suppressUntil := 0.0
	for _, c := range candidates {
		if c.failTime < suppressUntil {
			continue
		}
		res.PhysicalLosses = append(res.PhysicalLosses, PhysicalLoss{
			FailTime:      c.failTime,
			LostSets:      c.lostSets,
			DoubleFailure: c.double,
		})
		suppressUntil = c.restoreEnd
	}
	return res, nil
}

// pickLocation draws an uncorrupted (set, row), avoiding double-XOR
// cancellation at already-corrupt places. Gives up after a few tries on a
// saturated array.
func pickLocation(r *rng.RNG, sets, rows int, live map[location]int) (location, bool) {
	for attempt := 0; attempt < 16; attempt++ {
		loc := location{set: r.Intn(sets), row: r.Intn(rows)}
		if live[loc] == 0 {
			return loc, true
		}
	}
	return location{}, false
}

func releaseLocation(live map[location]int, loc location) {
	if live[loc] > 1 {
		live[loc]--
	} else {
		delete(live, loc)
	}
}

// dropLostSets clears corruption bookkeeping for stripe sets that were
// zero-filled after a loss.
func dropLostSets(pending map[int][]location, live map[location]int, lostSets []int) {
	lost := make(map[int]bool, len(lostSets))
	for _, s := range lostSets {
		lost[s] = true
	}
	for slot, queue := range pending {
		kept := queue[:0]
		for _, loc := range queue {
			if lost[loc.set] {
				releaseLocation(live, loc)
			} else {
				kept = append(kept, loc)
			}
		}
		pending[slot] = kept
	}
}

// fillArray writes random data to every stripe set.
func fillArray(a *raid.Array, blockSize int, r *rng.RNG) error {
	for set := 0; set < a.StripeSets(); set++ {
		data := make([][]byte, a.DataBlocksPerSet())
		for i := range data {
			blk := make([]byte, blockSize)
			for j := range blk {
				blk[j] = byte(r.Intn(256))
			}
			data[i] = blk
		}
		if err := a.WriteStripe(set, data); err != nil {
			return err
		}
	}
	return nil
}

// rowsPerSet mirrors the array's internal stripe-set depth.
func rowsPerSet(a *raid.Array) int {
	if a.Level() == raid.RAID6 {
		return a.Disks() - 2
	}
	return 1
}

// ErrMismatch is returned by Check when verdicts disagree outside the
// documented carve-outs.
var ErrMismatch = errors.New("cosim: model and physical verdicts disagree")

// Check replays count chronologies and returns an error describing the
// first disagreement outside the carve-outs.
func Check(cfg Config, seed uint64, count int) error {
	for i := 0; i < count; i++ {
		res, err := Replay(cfg, seed+uint64(i))
		if err != nil {
			return err
		}
		if !res.Agrees() {
			return fmt.Errorf("%w: iteration %d: model %d DDFs, physical %d losses",
				ErrMismatch, i, len(res.ModelDDFs), len(res.PhysicalLosses))
		}
	}
	return nil
}
