package cosim

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/raid"
	"raidrel/internal/sim"
)

// busyConfig produces frequent failures and defects so verdict agreement
// gets exercised hard in few iterations.
func busyConfig() Config {
	return Config{
		Sim: sim.Config{
			Drives:     8,
			Redundancy: 1,
			Mission:    30000,
			Trans: sim.Transitions{
				TTOp: dist.MustExponential(2e-5), // MTBF 50,000 h
				TTR:  dist.MustWeibull(2, 24, 12),
				// Defect heat balances two needs: frequent enough that LdOp
				// DDFs occur, rare enough that most runs avoid the
				// documented divergence corners (defects inside rebuild
				// windows).
				TTLd:    dist.MustExponential(5e-5),
				TTScrub: dist.MustWeibull(3, 500, 6),
			},
		},
		Level:      raid.RAID5,
		StripeSets: 40,
		BlockSize:  32,
	}
}

func TestReplayValidation(t *testing.T) {
	cfg := busyConfig()
	cfg.Sim.Drives = 2
	if _, err := Replay(cfg, 1); err == nil {
		t.Error("2-drive replay accepted")
	}
	cfg = busyConfig()
	cfg.Level = raid.RAID6 // redundancy mismatch with Sim.Redundancy 1
	if _, err := Replay(cfg, 1); err == nil {
		t.Error("redundancy mismatch accepted")
	}
	cfg = busyConfig()
	cfg.StripeSets = 0
	if _, err := Replay(cfg, 1); err == nil {
		t.Error("zero stripe sets accepted")
	}
}

// The headline integration result: over many chronologies, every model
// DDF corresponds to a physical loss and vice versa, outside the
// documented divergence corners.
func TestModelMatchesPhysicsRAID5(t *testing.T) {
	cfg := busyConfig()
	agreed, corners, modelDDFs, physLosses := 0, 0, 0, 0
	const runs = 400
	for i := 0; i < runs; i++ {
		res, err := Replay(cfg, uint64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		modelDDFs += len(res.ModelDDFs)
		physLosses += len(res.PhysicalLosses)
		if res.CornerEvents > 0 || res.RepairAnomalies > 0 {
			corners++
			continue
		}
		if !res.Agrees() {
			t.Fatalf("run %d: model %d DDFs at %v, physical %d losses %v",
				i, len(res.ModelDDFs), res.ModelDDFs, len(res.PhysicalLosses), res.PhysicalLosses)
		}
		agreed++
	}
	if agreed < runs/2 {
		t.Fatalf("only %d of %d runs were corner-free; config too hot to be meaningful (corners=%d)",
			agreed, runs, corners)
	}
	if modelDDFs == 0 {
		t.Fatal("no DDFs generated; config too mild")
	}
	t.Logf("agreed=%d corners=%d modelDDFs=%d physicalLosses=%d",
		agreed, corners, modelDDFs, physLosses)
}

// Double-parity arrays replayed against a redundancy-2 model — both the
// row-diagonal-parity and the Reed-Solomon codec.
func TestModelMatchesPhysicsRAID6(t *testing.T) {
	for _, level := range []raid.Level{raid.RAID6, raid.RAID6RS} {
		cfg := busyConfig()
		cfg.Level = level
		cfg.Sim.Redundancy = 2
		// Hotter rates so triple coincidences actually occur sometimes.
		cfg.Sim.Trans.TTOp = dist.MustExponential(1e-4)
		cfg.Sim.Trans.TTLd = dist.MustExponential(1e-3)
		cfg.Sim.Trans.TTScrub = dist.MustWeibull(3, 2000, 6)
		for i := 0; i < 60; i++ {
			res, err := Replay(cfg, uint64(2000+i))
			if err != nil {
				t.Fatalf("%v: %v", level, err)
			}
			if !res.Agrees() {
				t.Fatalf("%v run %d: model %v, physical %v", level, i, res.ModelDDFs, res.PhysicalLosses)
			}
		}
	}
}

// With latent defects disabled, the only possible losses are overlapping
// whole-disk failures, and model/physics must agree exactly on every run
// (no corners exist without defects).
func TestPureOpOpCorrespondence(t *testing.T) {
	cfg := busyConfig()
	cfg.Sim.Trans.TTLd = nil
	cfg.Sim.Trans.TTScrub = nil
	cfg.Sim.Trans.TTOp = dist.MustExponential(1e-4)
	cfg.Sim.Trans.TTR = dist.MustExponential(1e-3) // long rebuilds: overlaps happen
	total := 0
	for i := 0; i < 200; i++ {
		res, err := Replay(cfg, uint64(3000+i))
		if err != nil {
			t.Fatal(err)
		}
		if res.CornerEvents != 0 {
			t.Fatalf("run %d: corners without defects", i)
		}
		if !res.Agrees() {
			t.Fatalf("run %d: model %v vs physical %v", i, res.ModelDDFs, res.PhysicalLosses)
		}
		for _, l := range res.PhysicalLosses {
			if !l.DoubleFailure {
				t.Fatalf("run %d: defect-free chronology produced a non-double loss", i)
			}
		}
		total += len(res.PhysicalLosses)
	}
	if total == 0 {
		t.Fatal("no overlapping failures generated; config too mild")
	}
}

func TestCheckHelper(t *testing.T) {
	cfg := busyConfig()
	cfg.Sim.Mission = 20000
	if err := Check(cfg, 5000, 25); err != nil {
		t.Fatal(err)
	}
}

// Scrub bookkeeping: repaired defects must not register as losses later.
func TestScrubPreventsPhysicalLoss(t *testing.T) {
	cfg := busyConfig()
	// Very fast scrub: defects barely live; losses should be rare compared
	// to the no-scrub replay.
	cfg.Sim.Trans.TTScrub = dist.MustWeibull(3, 24, 1)
	fast := 0
	for i := 0; i < 80; i++ {
		res, err := Replay(cfg, uint64(4000+i))
		if err != nil {
			t.Fatal(err)
		}
		fast += len(res.PhysicalLosses)
	}
	cfg.Sim.Trans.TTScrub = nil
	slow := 0
	for i := 0; i < 80; i++ {
		res, err := Replay(cfg, uint64(4000+i))
		if err != nil {
			t.Fatal(err)
		}
		slow += len(res.PhysicalLosses)
	}
	if fast*2 >= slow {
		t.Errorf("fast scrub losses %d not << no-scrub losses %d", fast, slow)
	}
}
