package hdd

import "fmt"

// Consequence classifies a failure mechanism by its system-level effect —
// the two branches of the paper's Fig. 3.
type Consequence int

const (
	// Operational mechanisms make the drive unable to find data: the
	// whole drive must be replaced ("cannot find data").
	Operational Consequence = iota + 1
	// Latent mechanisms silently lose or corrupt data at rest or at write
	// time ("data missing"), discovered only on read or scrub.
	Latent
)

// String implements fmt.Stringer.
func (c Consequence) String() string {
	switch c {
	case Operational:
		return "operational"
	case Latent:
		return "latent"
	default:
		return fmt.Sprintf("Consequence(%d)", int(c))
	}
}

// Mechanism is one physical failure mechanism from the paper's §3.
type Mechanism struct {
	Name        string
	Consequence Consequence
	Description string
}

// Mechanisms reproduces the Fig. 3 taxonomy. The reliability model does
// not distinguish individual mechanisms — all operational mechanisms feed
// the TTOp distribution and all latent mechanisms feed TTLd — but the
// taxonomy documents what those distributions aggregate, and the fault-
// injection example uses it to label injected faults.
func Mechanisms() []Mechanism {
	return []Mechanism{
		{"bad servo-track", Operational, "servo wedges damaged by scratches or thermal asperities; heads cannot position"},
		{"bad electronics", Operational, "external PCB failures: DRAM, cracked chip capacitors"},
		{"cannot stay on track", Operational, "non-repeatable run-out from bearing wear, vibration, servo-loop errors"},
		{"bad read head", Operational, "magnetic degradation accelerated by ESD, contamination impacts, heat"},
		{"SMART limit exceeded", Operational, "excessive reallocations in a time window trip the SMART threshold"},
		{"bad media write", Latent, "writing on scratched, smeared, or pitted media corrupts data at write time"},
		{"inherent bit-error rate", Latent, "statistical write errors that escape immediate verification"},
		{"high-fly write", Latent, "perturbed head aerodynamics write magnetically weak, unreadable data"},
		{"thermal asperity erasure", Latent, "repeated head-disk contact heat erases previously good data"},
		{"corrosion", Latent, "media corrosion erases data, accelerated by thermal-asperity heat"},
		{"scratched media", Latent, "hard particles (TiW, Al2O3, C) scratch; soft particles smear data at rest"},
	}
}

// MechanismsByConsequence filters the taxonomy.
func MechanismsByConsequence(c Consequence) []Mechanism {
	var out []Mechanism
	for _, m := range Mechanisms() {
		if m.Consequence == c {
			out = append(out, m)
		}
	}
	return out
}

// SMART models the self-monitoring threshold of §3.1: reallocation events
// are tolerated until more than Threshold occur within WindowHours; then
// the drive trips (an operational failure).
type SMART struct {
	Threshold   int
	WindowHours float64

	events []float64
}

// NewSMART returns a SMART monitor. Threshold and window must be positive.
func NewSMART(threshold int, windowHours float64) (*SMART, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("hdd: SMART threshold must be >= 1, got %d", threshold)
	}
	if !(windowHours > 0) {
		return nil, fmt.Errorf("hdd: SMART window must be positive, got %v", windowHours)
	}
	return &SMART{Threshold: threshold, WindowHours: windowHours}, nil
}

// RecordReallocation registers a sector reallocation at the given drive
// age and reports whether the drive trips (more than Threshold events in
// the trailing window). Ages must be non-decreasing.
func (s *SMART) RecordReallocation(ageHours float64) (tripped bool, err error) {
	if n := len(s.events); n > 0 && ageHours < s.events[n-1] {
		return false, fmt.Errorf("hdd: SMART ages must be non-decreasing (%v after %v)",
			ageHours, s.events[n-1])
	}
	s.events = append(s.events, ageHours)
	// Drop events that left the window.
	cut := 0
	for cut < len(s.events) && s.events[cut] < ageHours-s.WindowHours {
		cut++
	}
	s.events = s.events[cut:]
	return len(s.events) > s.Threshold, nil
}

// Count returns the events currently inside the window.
func (s *SMART) Count() int { return len(s.events) }
