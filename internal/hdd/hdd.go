// Package hdd models the hard disk drive as the reliability model sees
// it: a catalog of physical drive types (capacity, interface, sustained
// rate), the failure mode/mechanism taxonomy of the paper's Fig. 3, SMART
// threshold accounting, and vintage descriptors that map manufacturing
// epochs to lifetime distributions.
package hdd

import (
	"fmt"
	"math"

	"raidrel/internal/analytic"
	"raidrel/internal/dist"
)

// Interface is the drive's host attachment.
type Interface int

const (
	// FibreChannel drives attach to 2 Gb/s loops in the paper's examples.
	FibreChannel Interface = iota + 1
	// SATA drives attach to 1.5 Gb/s links in the paper's examples.
	SATA
)

// String implements fmt.Stringer.
func (i Interface) String() string {
	switch i {
	case FibreChannel:
		return "FC"
	case SATA:
		return "SATA"
	default:
		return fmt.Sprintf("Interface(%d)", int(i))
	}
}

// BusRate returns the interface's shared-bus bandwidth in bytes/second.
func (i Interface) BusRate() (float64, error) {
	switch i {
	case FibreChannel:
		return analytic.FibreChannel2Gb, nil
	case SATA:
		return analytic.SATA15Gb, nil
	default:
		return 0, fmt.Errorf("hdd: unknown interface %d", int(i))
	}
}

// Drive describes one physical drive model.
type Drive struct {
	Model         string
	CapacityBytes float64
	Interface     Interface
	// SustainedBps is the drive's streaming rate in bytes/second.
	SustainedBps float64
}

// Validate checks the drive description.
func (d Drive) Validate() error {
	if d.Model == "" {
		return fmt.Errorf("hdd: drive needs a model name")
	}
	if !(d.CapacityBytes > 0) || math.IsInf(d.CapacityBytes, 0) {
		return fmt.Errorf("hdd: %s: capacity %v invalid", d.Model, d.CapacityBytes)
	}
	if !(d.SustainedBps > 0) || math.IsInf(d.SustainedBps, 0) {
		return fmt.Errorf("hdd: %s: sustained rate %v invalid", d.Model, d.SustainedBps)
	}
	if _, err := d.Interface.BusRate(); err != nil {
		return fmt.Errorf("hdd: %s: %w", d.Model, err)
	}
	return nil
}

// Catalog drives from the paper's §6.2 worked examples.
var (
	// FC144GB is the 144 GB Fibre Channel drive (~3 h minimum rebuild in
	// a group of 14).
	FC144GB = Drive{
		Model:         "FC-144GB",
		CapacityBytes: 144 * analytic.GB,
		Interface:     FibreChannel,
		SustainedBps:  analytic.FCDriveRate,
	}
	// SATA500GB is the 500 GB SATA drive (~10.4 h minimum rebuild).
	SATA500GB = Drive{
		Model:         "SATA-500GB",
		CapacityBytes: 500 * analytic.GB,
		Interface:     SATA,
		SustainedBps:  analytic.FCDriveRate,
	}
)

// MinRebuildHours returns the drive's hard minimum rebuild time in a group
// of the given size with the given foreground-IO share.
func (d Drive) MinRebuildHours(groupSize int, foregroundShare float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	bus, err := d.Interface.BusRate()
	if err != nil {
		return 0, err
	}
	return analytic.MinRebuildHours(analytic.RebuildInput{
		CapacityBytes:   d.CapacityBytes,
		DriveRateBps:    d.SustainedBps,
		BusRateBps:      bus,
		GroupSize:       groupSize,
		ForegroundShare: foregroundShare,
	})
}

// MinScrubHours returns the minimum full-disk scrub pass duration.
func (d Drive) MinScrubHours(foregroundShare float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	bus, err := d.Interface.BusRate()
	if err != nil {
		return 0, err
	}
	return analytic.MinScrubHours(analytic.RebuildInput{
		CapacityBytes:   d.CapacityBytes,
		DriveRateBps:    d.SustainedBps,
		BusRateBps:      bus,
		GroupSize:       2, // irrelevant for scrub; satisfies validation
		ForegroundShare: foregroundShare,
	})
}

// RestoreSpec derives a three-parameter Weibull time-to-restore for this
// drive: location = hard minimum rebuild time plus service delay, shape 2
// (right-skewed, per the paper's §6.2), scale = twice the location as a
// pragmatic spread.
func (d Drive) RestoreSpec(groupSize int, foregroundShare, serviceDelayHours float64) (dist.Weibull, error) {
	if serviceDelayHours < 0 || math.IsNaN(serviceDelayHours) {
		return dist.Weibull{}, fmt.Errorf("hdd: invalid service delay %v", serviceDelayHours)
	}
	minH, err := d.MinRebuildHours(groupSize, foregroundShare)
	if err != nil {
		return dist.Weibull{}, err
	}
	loc := minH + serviceDelayHours
	return dist.NewWeibull(2, loc*2, loc)
}

// Vintage ties a manufacturing epoch to its fitted lifetime distribution
// (Fig. 2: different vintages of the same product have different β and η).
type Vintage struct {
	Name string
	Life dist.Weibull
}

// NewVintage builds a vintage from (β, η).
func NewVintage(name string, shape, scale float64) (Vintage, error) {
	if name == "" {
		return Vintage{}, fmt.Errorf("hdd: vintage needs a name")
	}
	w, err := dist.NewWeibull(shape, scale, 0)
	if err != nil {
		return Vintage{}, fmt.Errorf("hdd: vintage %s: %w", name, err)
	}
	return Vintage{Name: name, Life: w}, nil
}
