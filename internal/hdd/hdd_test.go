package hdd

import (
	"math"
	"testing"
)

func TestInterfaceBusRates(t *testing.T) {
	fc, err := FibreChannel.BusRate()
	if err != nil {
		t.Fatal(err)
	}
	if fc != 2e9/8 {
		t.Errorf("FC rate = %v", fc)
	}
	sata, err := SATA.BusRate()
	if err != nil {
		t.Fatal(err)
	}
	if sata != 1.5e9/8 {
		t.Errorf("SATA rate = %v", sata)
	}
	if _, err := Interface(99).BusRate(); err == nil {
		t.Error("unknown interface accepted")
	}
	if FibreChannel.String() != "FC" || SATA.String() != "SATA" {
		t.Error("interface strings wrong")
	}
}

func TestCatalogDrivesValid(t *testing.T) {
	for _, d := range []Drive{FC144GB, SATA500GB} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s invalid: %v", d.Model, err)
		}
	}
}

func TestDriveValidation(t *testing.T) {
	bad := []Drive{
		{Model: "", CapacityBytes: 1, Interface: SATA, SustainedBps: 1},
		{Model: "x", CapacityBytes: 0, Interface: SATA, SustainedBps: 1},
		{Model: "x", CapacityBytes: 1, Interface: SATA, SustainedBps: 0},
		{Model: "x", CapacityBytes: 1, Interface: Interface(9), SustainedBps: 1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// The paper's §6.2: SATA 500 GB in a group of 14 needs ~10.4 h minimum.
func TestPaperRebuildExamples(t *testing.T) {
	sata, err := SATA500GB.MinRebuildHours(14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sata-10.4) > 0.1 {
		t.Errorf("SATA rebuild = %v, want ~10.4", sata)
	}
	fc, err := FC144GB.MinRebuildHours(14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fc < 2 || fc > 3.5 {
		t.Errorf("FC rebuild = %v, want 2-3.5", fc)
	}
}

func TestRestoreSpec(t *testing.T) {
	w, err := SATA500GB.RestoreSpec(14, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Location = minimum rebuild + 2 h delay; every sample must exceed it.
	if w.Location() < 12 || w.Location() > 13 {
		t.Errorf("restore location = %v", w.Location())
	}
	if w.Shape() != 2 {
		t.Errorf("restore shape = %v", w.Shape())
	}
	if _, err := SATA500GB.RestoreSpec(14, 0, -1); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestMechanismTaxonomy(t *testing.T) {
	all := Mechanisms()
	if len(all) != 11 {
		t.Fatalf("%d mechanisms", len(all))
	}
	ops := MechanismsByConsequence(Operational)
	lds := MechanismsByConsequence(Latent)
	if len(ops) != 5 {
		t.Errorf("%d operational mechanisms, want 5 (Fig. 3)", len(ops))
	}
	if len(lds) != 6 {
		t.Errorf("%d latent mechanisms, want 6 (Fig. 3)", len(lds))
	}
	if len(ops)+len(lds) != len(all) {
		t.Error("taxonomy split incomplete")
	}
	if Operational.String() != "operational" || Latent.String() != "latent" {
		t.Error("consequence strings wrong")
	}
}

func TestSMARTTrip(t *testing.T) {
	s, err := NewSMART(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Three events in the window: at the threshold, not over it.
	for _, age := range []float64{10, 20, 30} {
		tripped, err := s.RecordReallocation(age)
		if err != nil {
			t.Fatal(err)
		}
		if tripped {
			t.Fatalf("tripped at %v with %d events", age, s.Count())
		}
	}
	// Fourth event within the window trips.
	tripped, err := s.RecordReallocation(50)
	if err != nil {
		t.Fatal(err)
	}
	if !tripped {
		t.Error("4th event in window did not trip")
	}
}

func TestSMARTWindowExpiry(t *testing.T) {
	s, err := NewSMART(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []float64{0, 10} {
		if _, err := s.RecordReallocation(age); err != nil {
			t.Fatal(err)
		}
	}
	// 200 h later the early events have left the window.
	tripped, err := s.RecordReallocation(200)
	if err != nil {
		t.Fatal(err)
	}
	if tripped {
		t.Error("tripped on stale events")
	}
	if s.Count() != 1 {
		t.Errorf("window holds %d events, want 1", s.Count())
	}
}

func TestSMARTValidation(t *testing.T) {
	if _, err := NewSMART(0, 10); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewSMART(1, 0); err == nil {
		t.Error("zero window accepted")
	}
	s, _ := NewSMART(1, 10)
	if _, err := s.RecordReallocation(5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecordReallocation(4); err == nil {
		t.Error("time went backwards")
	}
}

func TestNewVintage(t *testing.T) {
	v, err := NewVintage("v2", 1.2162, 1.2566e5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Life.Shape() != 1.2162 {
		t.Errorf("shape = %v", v.Life.Shape())
	}
	if _, err := NewVintage("", 1, 1); err == nil {
		t.Error("unnamed vintage accepted")
	}
	if _, err := NewVintage("x", -1, 1); err == nil {
		t.Error("invalid shape accepted")
	}
}
