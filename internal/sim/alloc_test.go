package sim

import (
	"runtime"
	"runtime/debug"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// TestSimulateIntoZeroAlloc asserts the engine hot path's contract: after
// warm-up, an event-free base-case chronology — the overwhelming majority
// in the rare-event regime — runs with zero heap allocations. The contract
// covers both engines, plain and with importance sampling active (the
// tilted kernels must not reintroduce per-draw allocation).
func TestSimulateIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc contract is gated in the non-race job")
	}
	engines := []struct {
		name string
		eng  IntoSimulator
	}{
		{"EventEngine", EventEngine{}},
		{"IntervalEngine", IntervalEngine{}},
	}
	biases := []struct {
		name string
		bias Bias
	}{
		{"Plain", Bias{}},
		{"BiasedOp8", Bias{Op: 8}},
	}
	for _, e := range engines {
		for _, b := range biases {
			t.Run(e.name+"/"+b.name, func(t *testing.T) {
				// sync.Pool contents may be dropped by a GC cycle
				// mid-measurement; that is a pool refill, not a hot-path
				// allocation. Disable GC.
				defer debug.SetGCPercent(debug.SetGCPercent(-1))

				cfg := paperBaseConfig()
				cfg.Bias = b.bias
				var (
					r   rng.RNG
					buf []DDF
					err error
				)
				// Find a stream with an event-free chronology (at ~2.7e-4
				// plain DDF probability the first candidate virtually always
				// qualifies; under θ=8 most streams still qualify), warming
				// the pooled scratch along the way.
				stream := uint64(0)
				found := false
				for s := uint64(0); s < 100; s++ {
					r.SeedStream(1, s)
					buf, _, err = e.eng.SimulateInto(cfg, &r, buf[:0])
					if err != nil {
						t.Fatal(err)
					}
					if len(buf) == 0 && !found {
						stream, found = s, true
					}
				}
				if !found {
					t.Fatal("no event-free chronology in 100 base-case streams")
				}

				allocs := testing.AllocsPerRun(200, func() {
					r.SeedStream(1, stream)
					buf, _, err = e.eng.SimulateInto(cfg, &r, buf[:0])
				})
				if err != nil {
					t.Fatal(err)
				}
				if allocs != 0 {
					t.Errorf("event-free SimulateInto allocates %.1f allocs/run, want 0", allocs)
				}
			})
		}
	}
}

// TestSimulateIntoZeroAllocCoupled extends the zero-allocation contract to
// the topology layer: with a coupled component tree attached — components
// actually failing, pausing rebuilds, and emitting unavailability onsets —
// a warm event-engine chronology whose events fit the reused buffer must
// still not touch the heap. All of topoScratch's state is pooled slices.
func TestSimulateIntoZeroAllocCoupled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc contract is gated in the non-race job")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	cfg := paperBaseConfig()
	// Hot enough that component failures and unavailability onsets are
	// routine, so the measured path includes compFail/compRestore, the
	// pause bookkeeping, and onset appends — not just the idle check.
	cfg.Topology = &Topology{Components: []Component{
		{Name: "enclosure", Drives: []int{0, 1, 2, 3, 4, 5, 6, 7},
			TTOp: dist.MustExponential(1e-4), TTR: dist.MustExponential(1e-3)},
		{Name: "expander", Drives: []int{0, 1, 2, 3}, Paths: 2,
			TTOp: dist.MustExponential(1e-4), TTR: dist.MustExponential(1e-2)},
	}}
	eng := EventEngine{}
	var (
		r   rng.RNG
		buf []DDF
		err error
	)
	// Warm the pools and the buffer capacity, and pick a stream that did
	// produce unavailability onsets so the measurement is not vacuous.
	stream, found := uint64(0), false
	for s := uint64(0); s < 100; s++ {
		r.SeedStream(1, s)
		buf, _, err = eng.SimulateInto(cfg, &r, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range buf {
			if d.Cause == CauseUnavail {
				stream, found = s, true
			}
		}
	}
	if !found {
		t.Fatal("no unavailability onsets in 100 coupled streams; alloc test is vacuous")
	}

	allocs := testing.AllocsPerRun(200, func() {
		r.SeedStream(1, stream)
		buf, _, err = eng.SimulateInto(cfg, &r, buf[:0])
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm coupled SimulateInto allocates %.1f allocs/run, want 0", allocs)
	}
}

// TestRunSparseMemoryFootprint is the O(events)-not-O(iterations)
// regression guard: a 1M-iteration base-case run must allocate far less
// than the dense PerGroup representation's 24 MB of slice headers alone.
// The bound is generous — the point is the asymptotic class, not the
// constant.
func TestRunSparseMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-iteration run skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates; the O(events) bound is gated in the non-race job")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := RunSparse(RunSpec{
		Config:     paperBaseConfig(),
		Iterations: 1_000_000,
		Seed:       20070625,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc

	if res.TotalDDFs == 0 {
		t.Fatal("1M base-case groups produced no DDFs; bound test is vacuous")
	}
	// The base case yields ~0.14 events per group, so the sparse pipeline
	// allocates ~20 MB here (event copies plus index growth). The
	// store-everything pipeline allocated ~12 KB per iteration — ~12 GB
	// for this run — so the generous 64 MB bound still catches any
	// O(iterations) regression by two orders of magnitude.
	const bound = 64 << 20
	if allocated > bound {
		t.Errorf("1M-iteration sparse run allocated %d bytes (> %d): result pipeline is no longer O(events)",
			allocated, bound)
	}
	t.Logf("1M iterations: %d DDFs, %d bytes allocated", res.TotalDDFs, allocated)
}

// TestBlockRunnerSteadyStateAllocs pins the batched path's allocation
// contract at the runner level, where the pooled scratch is amortized over
// whole blocks: once the pools are warm, an event-free iteration costs no
// steady-state heap allocation — the per-run overhead (goroutines,
// channels, handoff growth) stays a small constant regardless of the
// iteration count.
func TestBlockRunnerSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Operational failures far beyond the mission: every chronology is
	// event-free, so any per-iteration allocation is hot-path bookkeeping,
	// not event copying.
	cfg := paperBaseConfig()
	cfg.Trans.TTOp = dist.MustExponential(1e-12)
	const iters = 1 << 14
	run := func() {
		res := &SparseResult{}
		if err := RunCollect(RunSpec{
			Config: cfg, Iterations: iters, Seed: 3, Workers: 1, Engine: BlockEngine{},
		}, res); err != nil {
			t.Fatal(err)
		}
		if res.TotalDDFs != 0 {
			t.Fatal("config produced events; alloc bound is not measuring the hot path")
		}
	}
	run() // warm the scratch, handoff, and channel pools

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	run()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	// One warm 16K-iteration run measures ~10 allocations (worker goroutine
	// plus channel plumbing); 256 leaves slack for runtime noise while still
	// failing loudly on any O(iterations) regression.
	if allocs > 256 {
		t.Errorf("warm %d-iteration block run made %d allocations, want a small constant (<= 256)", iters, allocs)
	}
	t.Logf("%d iterations: %d allocations", iters, allocs)
}
