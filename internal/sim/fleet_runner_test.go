package sim

import (
	"reflect"
	"runtime/debug"
	"testing"

	"raidrel/internal/dist"
)

// An uncontended fleet run through the runner observes the exact sparse
// result a scalar event-engine run does: group Offset+b·Groups+g draws
// from stream Offset+i like scalar iteration i.
func TestFleetRunMatchesScalarRun(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	const n = 480
	scalar, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 99, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.TotalDDFs == 0 {
		t.Fatal("no DDFs; comparison is vacuous")
	}
	fleet, err := RunSparse(RunSpec{
		Config: cfg, Iterations: n, Seed: 99, Workers: 3,
		Fleet: &FleetOptions{Groups: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Groups != scalar.Groups || !reflect.DeepEqual(fleet.Events, scalar.Events) {
		t.Fatal("uncontended fleet run differs from the scalar event-engine run")
	}
	if fleet.Fleet == nil {
		t.Fatal("fleet run produced no backlog tally")
	}
	if fleet.Fleet.Chronologies != n/12 || fleet.Fleet.GroupsPer != 12 {
		t.Fatalf("tally shape: %+v", fleet.Fleet)
	}
	if fleet.Fleet.Failures != fleet.Fleet.Rebuilds+fleet.Fleet.ActiveAtEnd+fleet.Fleet.QueuedAtEnd {
		t.Fatalf("tally conservation: %+v", fleet.Fleet)
	}
	if fleet.Fleet.Waited != 0 || fleet.Fleet.TotalWaitHours != 0 {
		t.Fatalf("uncontended fleet accrued waits: %+v", fleet.Fleet)
	}
}

// The fleet path's merge must be bit-identical for any worker count —
// the -race companion of the scalar invariance test, covering contended
// fleets (shared spares and a rebuild cap) where the backlog tallies are
// nontrivial.
func TestFleetRunWorkerCountInvariance(t *testing.T) {
	cfg := fastConfig()
	base := RunSpec{
		Config: cfg, Iterations: 360, Seed: 41,
		Fleet: &FleetOptions{
			Groups:                6,
			SharedSpares:          &SparePolicy{Initial: 1, ReplenishHours: 300},
			MaxConcurrentRebuilds: 1,
		},
	}
	one := base
	one.Workers = 1
	four := base
	four.Workers = 4
	r1, err := RunSparse(one)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunSparse(four)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Groups != r4.Groups || !reflect.DeepEqual(r1.Events, r4.Events) {
		t.Fatal("Workers:1 and Workers:4 produced different fleet event streams")
	}
	if r1.Fleet == nil || r4.Fleet == nil || *r1.Fleet != *r4.Fleet {
		t.Fatalf("fleet tallies differ across worker counts: %+v vs %+v", r1.Fleet, r4.Fleet)
	}
	if r1.TotalDDFs == 0 || r1.Fleet.Waited == 0 {
		t.Error("contended fleet produced no DDFs or no waits; invariance test is vacuous")
	}
}

// Batched fleet campaigns compose exactly like scalar ones: [0,k) then
// [k,n) with Offset k merges — events and backlog tally both — to the
// single-run result.
func TestFleetRunOffsetComposition(t *testing.T) {
	cfg := fastConfig()
	fo := &FleetOptions{Groups: 6, MaxConcurrentRebuilds: 1}
	whole, err := RunSparse(RunSpec{Config: cfg, Iterations: 360, Seed: 43, Workers: 2, Fleet: fo})
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunSparse(RunSpec{Config: cfg, Iterations: 120, Seed: 43, Workers: 2, Fleet: fo})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunSparse(RunSpec{Config: cfg, Iterations: 240, Seed: 43, Workers: 2, Fleet: fo, Offset: 120})
	if err != nil {
		t.Fatal(err)
	}
	first.Merge(second)
	if first.Groups != whole.Groups || !reflect.DeepEqual(first.Events, whole.Events) {
		t.Fatal("batched fleet run does not compose to the single run")
	}
	a, b := first.Fleet, whole.Fleet
	if a.Chronologies != b.Chronologies || a.GroupsPer != b.GroupsPer ||
		a.Failures != b.Failures || a.Rebuilds != b.Rebuilds || a.Waited != b.Waited ||
		a.ActiveAtEnd != b.ActiveAtEnd || a.QueuedAtEnd != b.QueuedAtEnd ||
		a.MaxQueueDepth != b.MaxQueueDepth ||
		a.MaxWaitHours != b.MaxWaitHours || a.MaxExposureHours != b.MaxExposureHours {
		t.Fatalf("merged fleet tally %+v != single-run %+v", a, b)
	}
	// The wait-hour and depth sums fold per-chronology values in a
	// different association when batched, so they match to rounding only.
	if relDiff(a.TotalWaitHours, b.TotalWaitHours) > 1e-12 || relDiff(a.MeanDepthSum, b.MeanDepthSum) > 1e-12 {
		t.Fatalf("merged fleet sums %v/%v != single-run %v/%v",
			a.TotalWaitHours, a.MeanDepthSum, b.TotalWaitHours, b.MeanDepthSum)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if b > m {
		m = b
	}
	return d / m
}

func TestFleetRunValidation(t *testing.T) {
	cfg := fastConfig()
	fo := &FleetOptions{Groups: 6}
	if err := RunCollect(RunSpec{Config: cfg, Iterations: 100, Seed: 1, Fleet: fo}, &SparseResult{}); err == nil {
		t.Error("iterations not a multiple of the fleet size accepted")
	}
	if err := RunCollect(RunSpec{Config: cfg, Iterations: 60, Offset: 3, Seed: 1, Fleet: fo}, &SparseResult{}); err == nil {
		t.Error("offset not a multiple of the fleet size accepted")
	}
	if err := RunCollect(RunSpec{Config: cfg, Iterations: 60, Seed: 1, Fleet: fo, Engine: BlockEngine{}}, &SparseResult{}); err == nil {
		t.Error("explicit engine on a fleet run accepted")
	}
	vr := cfg
	vr.VR = VR{Antithetic: true}
	if err := RunCollect(RunSpec{Config: vr, Iterations: 60, Seed: 1, Fleet: fo}, &SparseResult{}); err == nil {
		t.Error("variance reduction on a fleet run accepted")
	}
}

// The acceptance bar for fleet scale: a warm 10⁵-group event-free fleet
// chronology — the shape of a production fleet sweep's inner loop — runs
// with zero steady-state heap allocations.
func TestFleetIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc contract is gated in the non-race job")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Failures far beyond the mission and no defect process: every group is
	// event-free, so any allocation is hot-path bookkeeping, not event
	// copying. (At 8·10⁵ slots even a 10⁻¹² failure rate would seed a few
	// real failures across the measured runs.)
	cfg := fastConfig()
	cfg.Trans.TTOp = dist.MustExponential(1e-15)
	fc := FleetConfig{Groups: 100_000, Group: cfg, MaxConcurrentRebuilds: 4}
	var st FleetStats
	visit := func(g int, ddfs []DDF) {
		t.Fatalf("event-free fleet visited group %d", g)
	}
	run := func() {
		if err := SimulateFleetInto(fc, 7, 0, visit, &st); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pooled scratch to the fleet's size
	allocs := testing.AllocsPerRun(20, run)
	if allocs != 0 {
		t.Errorf("warm %d-group SimulateFleetInto allocates %.1f allocs/run, want 0", fc.Groups, allocs)
	}
	if st.Failures != 0 {
		t.Fatalf("config produced failures; alloc bound is not measuring the idle path")
	}
}

// Same contract under real event load at a smaller scale: a warm
// contended fleet whose chronology produces failures, waits, and DDFs
// still allocates nothing once the scratch has grown.
func TestFleetIntoZeroAllocBusy(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the zero-alloc contract is gated in the non-race job")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	cfg := fastConfig()
	fc := FleetConfig{
		Groups: 64, Group: cfg,
		SharedSpares:          &SparePolicy{Initial: 2, ReplenishHours: 200},
		MaxConcurrentRebuilds: 2,
	}
	var st FleetStats
	st.GroupWaitHours = make([]float64, fc.Groups)
	visit := func(g int, ddfs []DDF) {}
	var err error
	run := func() {
		err = SimulateFleetInto(fc, 11, 0, visit, &st)
	}
	for i := 0; i < 10; i++ {
		run() // warm every reusable array to this chronology's high-water mark
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.Failures == 0 || st.Waited == 0 {
		t.Fatal("busy fleet produced no failures or waits; alloc test is vacuous")
	}
	allocs := testing.AllocsPerRun(50, run)
	if err != nil {
		t.Fatal(err)
	}
	if allocs != 0 {
		t.Errorf("warm busy fleet chronology allocates %.1f allocs/run, want 0", allocs)
	}
}
