package sim

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestNHPPValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLdRate = func(float64) float64 { return 1e-4 }
	if err := cfg.Validate(); err == nil {
		t.Error("rate function without bound accepted")
	}
	cfg.Trans.TTLdRateMax = 1e-4
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid NHPP config rejected: %v", err)
	}
	cfg.Trans.TTLd = dist.MustExponential(1e-4)
	if err := cfg.Validate(); err == nil {
		t.Error("TTLd and TTLdRate together accepted")
	}
	cfg.Trans.TTLd = nil
	cfg.Trans.TTLdRate = nil
	if err := cfg.Validate(); err == nil {
		t.Error("bound without rate function accepted")
	}
}

// A constant rate function must reproduce the homogeneous process in
// expectation.
func TestNHPPConstantRateMatchesHomogeneous(t *testing.T) {
	const rate = 5e-4
	homogeneous := fastConfig()
	homogeneous.Trans.TTLd = dist.MustExponential(rate)
	nhpp := fastConfig()
	nhpp.Trans.TTLdRate = func(float64) float64 { return rate }
	nhpp.Trans.TTLdRateMax = rate

	count := func(cfg Config, seed uint64) int {
		total := 0
		for i := 0; i < 3000; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	a := count(homogeneous, 700)
	b := count(nhpp, 701)
	rel := math.Abs(float64(a-b)) / float64(a)
	if rel > 0.08 {
		t.Errorf("NHPP constant rate disagrees with homogeneous: %d vs %d", b, a)
	}
}

// A duty-cycled rate with the same time-average must land between the
// all-idle and all-busy homogeneous processes, near the average.
func TestNHPPDutyCycleBracketing(t *testing.T) {
	const (
		busyRate = 1e-3
		idleRate = 1e-5
	)
	mk := func(busyFrac float64) Config {
		cfg := fastConfig()
		period := 168.0
		busyHours := busyFrac * period
		cfg.Trans.TTLdRate = func(tm float64) float64 {
			if math.Mod(tm, period) < busyHours {
				return busyRate
			}
			return idleRate
		}
		cfg.Trans.TTLdRateMax = busyRate
		return cfg
	}
	count := func(cfg Config, seed uint64) int {
		total := 0
		for i := 0; i < 2000; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	idle := count(mk(0), 710)
	half := count(mk(0.5), 711)
	busy := count(mk(1), 712)
	if !(idle < half && half < busy) {
		t.Errorf("duty-cycle bracketing violated: idle=%d half=%d busy=%d", idle, half, busy)
	}
}

// Engines must agree under an NHPP defect process too.
func TestNHPPEnginesAgree(t *testing.T) {
	mkcfg := func() Config {
		cfg := fastConfig()
		cfg.Mission = 30000
		cfg.Trans.TTLdRate = func(tm float64) float64 {
			// Weekly cycle: 48 busy hours at 1e-3, the rest at 1e-4.
			if math.Mod(tm, 168) < 48 {
				return 1e-3
			}
			return 1e-4
		}
		cfg.Trans.TTLdRateMax = 1e-3
		cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
		return cfg
	}
	count := func(e Engine, seed uint64) int {
		cfg := mkcfg()
		total := 0
		for i := 0; i < 3000; i++ {
			ddfs, err := e.Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	a := count(EventEngine{}, 720)
	b := count(IntervalEngine{}, 721)
	if a == 0 || b == 0 {
		t.Fatal("no DDFs; config too mild")
	}
	rel := math.Abs(float64(a-b)) / float64(a)
	if rel > 0.1 {
		t.Errorf("engines disagree under NHPP: %d vs %d", a, b)
	}
}

// A misbehaving rate function (exceeding its declared bound) is clamped
// rather than silently biasing the thinning.
func TestNHPPRateClamping(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLdRate = func(float64) float64 { return 10 } // way over bound
	cfg.Trans.TTLdRateMax = 1e-3
	bounded := fastConfig()
	bounded.Trans.TTLdRate = func(float64) float64 { return 1e-3 }
	bounded.Trans.TTLdRateMax = 1e-3
	count := func(c Config) int {
		total := 0
		for i := 0; i < 500; i++ {
			ddfs, err := (EventEngine{}).Simulate(c, rng.ForStream(730, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	if a, b := count(cfg), count(bounded); a != b {
		t.Errorf("clamped over-bound rate should equal at-bound rate: %d vs %d", a, b)
	}
}
