package sim

import "fmt"

// TraceKind enumerates chronology events a tracing observer can receive.
type TraceKind int

const (
	// TraceOpFail is an operational failure of a drive slot.
	TraceOpFail TraceKind = iota + 1
	// TraceOpRestore is the completion of a slot's rebuild.
	TraceOpRestore
	// TraceDefect is the creation of a latent defect.
	TraceDefect
	// TraceScrub is the correction of a latent defect (by scrubbing or by
	// the concomitant repair after a DDF).
	TraceScrub
	// TraceDDF is a double-disk failure.
	TraceDDF
	// TraceCompFail and TraceCompRestore are a topology component path
	// instance failing and being repaired; Slot holds the component index.
	TraceCompFail
	TraceCompRestore
	// TraceUnavail is the onset of a data-unavailability episode (Slot -1).
	TraceUnavail
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceOpFail:
		return "op-fail"
	case TraceOpRestore:
		return "restore"
	case TraceDefect:
		return "defect"
	case TraceScrub:
		return "scrub"
	case TraceDDF:
		return "DDF"
	case TraceCompFail:
		return "comp-fail"
	case TraceCompRestore:
		return "comp-restore"
	case TraceUnavail:
		return "unavail"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one observed chronology event.
type TraceEvent struct {
	Time  float64
	Kind  TraceKind
	Slot  int   // drive slot; -1 for group-level events with no single slot
	Cause Cause // set for TraceDDF
}

// Observer receives chronology events in time order as the engine
// processes them.
type Observer interface {
	Observe(TraceEvent)
}

// Trace is an Observer that records everything.
type Trace struct {
	Events []TraceEvent
}

var _ Observer = (*Trace)(nil)

// Observe implements Observer.
func (t *Trace) Observe(e TraceEvent) { t.Events = append(t.Events, e) }

// Count returns how many events of the given kind were recorded.
func (t *Trace) Count(kind TraceKind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// SlotEvents returns the recorded events of one slot, preserving order.
func (t *Trace) SlotEvents(slot int) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Events {
		if e.Slot == slot {
			out = append(out, e)
		}
	}
	return out
}
