package sim

import (
	"fmt"
	"runtime"
	"sync"

	"raidrel/internal/rng"
)

// RunSpec describes a Monte Carlo campaign: Iterations independent group
// chronologies, each equivalent to monitoring one fielded RAID group for
// the mission (§5: "If 10,000 simulations are needed ... it is equivalent
// to monitoring the number of DDFs for 10,000 systems over the mission
// life").
type RunSpec struct {
	Config     Config
	Iterations int
	Seed       uint64
	Workers    int    // 0 = GOMAXPROCS
	Engine     Engine // nil = EventEngine
}

// RunResult aggregates a campaign.
type RunResult struct {
	// PerGroup holds each simulated group's DDF events in chronological
	// order; len(PerGroup) == Iterations.
	PerGroup [][]DDF
	// TotalDDFs is the total event count across groups.
	TotalDDFs int
	// OpOpDDFs and LdOpDDFs split the total by cause.
	OpOpDDFs, LdOpDDFs int
}

// EventTimes flattens the per-group DDF times into per-system event lists
// suitable for stats.MCF.
func (r *RunResult) EventTimes() [][]float64 {
	out := make([][]float64, len(r.PerGroup))
	for i, g := range r.PerGroup {
		ts := make([]float64, len(g))
		for j, d := range g {
			ts[j] = d.Time
		}
		out[i] = ts
	}
	return out
}

// DDFsBefore counts events at or before t across all groups.
func (r *RunResult) DDFsBefore(t float64) int {
	n := 0
	for _, g := range r.PerGroup {
		for _, d := range g {
			if d.Time <= t {
				n++
			}
		}
	}
	return n
}

// Run executes the campaign, fanning iterations across workers with
// disjoint RNG streams. Results are deterministic for a given (spec, seed,
// iteration count) regardless of worker count, because stream i is always
// assigned to iteration i.
func Run(spec RunSpec) (*RunResult, error) {
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	if spec.Iterations < 1 {
		return nil, fmt.Errorf("sim: iterations must be >= 1, got %d", spec.Iterations)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Iterations {
		workers = spec.Iterations
	}
	engine := spec.Engine
	if engine == nil {
		engine = EventEngine{}
	}

	// Iteration i always draws from rng.ForStream(seed, i), so the result
	// is bit-for-bit identical no matter how many workers run.
	result := &RunResult{PerGroup: make([][]DDF, spec.Iterations)}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < spec.Iterations; i += workers {
				ddfs, err := engine.Simulate(spec.Config, rng.ForStream(spec.Seed, uint64(i)))
				if err != nil {
					errs[w] = err
					return
				}
				result.PerGroup[i] = ddfs
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, g := range result.PerGroup {
		for _, d := range g {
			result.TotalDDFs++
			switch d.Cause {
			case CauseOpOp:
				result.OpOpDDFs++
			case CauseLdOp:
				result.LdOpDDFs++
			}
		}
	}
	return result, nil
}
