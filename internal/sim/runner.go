package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"raidrel/internal/rng"
)

// RunSpec describes a Monte Carlo campaign: Iterations independent group
// chronologies, each equivalent to monitoring one fielded RAID group for
// the mission (§5: "If 10,000 simulations are needed ... it is equivalent
// to monitoring the number of DDFs for 10,000 systems over the mission
// life").
type RunSpec struct {
	Config     Config
	Iterations int
	Seed       uint64
	Workers    int    // 0 = GOMAXPROCS
	Engine     Engine // nil = EventEngine

	// Offset shifts the RNG stream assignment: iteration i of this run
	// draws from rng.ForStream(Seed, Offset+i). Batched campaigns use it
	// to continue a run exactly where a previous batch left off — running
	// [0,k) then [k,n) with Offset k concatenates to the same per-group
	// results as one run of n iterations.
	Offset int

	// Fleet switches the run to fleet chronologies: each dispatch
	// simulates Fleet.Groups coupled groups (shared spares, bounded repair
	// bandwidth) in one chronology via SimulateFleetInto. Iterations still
	// counts groups — it must be a multiple of Fleet.Groups, as must
	// Offset — and group i keeps drawing from stream Offset+i, so an
	// uncontended fleet run observes the exact per-group stream a scalar
	// event-engine run would. Engine must be nil; collectors implementing
	// FleetObserver additionally receive each chronology's heal-backlog
	// statistics.
	Fleet *FleetOptions
}

// RunResult aggregates a campaign.
type RunResult struct {
	// PerGroup holds each simulated group's DDF events in chronological
	// order; len(PerGroup) == Iterations.
	PerGroup [][]DDF
	// TotalDDFs is the total data-loss event count across groups;
	// unavailability onsets are counted in UnavailEvents instead.
	TotalDDFs int
	// OpOpDDFs and LdOpDDFs split the total by cause.
	OpOpDDFs, LdOpDDFs int
	// UnavailEvents counts data-unavailability onsets (coupled topologies
	// only; always 0 for flat runs).
	UnavailEvents int

	// flatTimes caches the sorted flat event-time slice behind DDFsBefore;
	// built lazily so manually assembled results work too.
	flatOnce  sync.Once
	flatTimes []float64
}

// EventTimes flattens the per-group DDF times into per-system event lists
// suitable for stats.MCF.
func (r *RunResult) EventTimes() [][]float64 {
	out := make([][]float64, len(r.PerGroup))
	for i, g := range r.PerGroup {
		ts := make([]float64, len(g))
		for j, d := range g {
			ts[j] = d.Time
		}
		out[i] = ts
	}
	return out
}

// flat returns the sorted slice of all event times across groups, built
// once. PerGroup must not be mutated after the first DDFsBefore call.
func (r *RunResult) flat() []float64 {
	r.flatOnce.Do(func() {
		n := 0
		for _, g := range r.PerGroup {
			n += len(g)
		}
		ts := make([]float64, 0, n)
		for _, g := range r.PerGroup {
			for _, d := range g {
				if d.Cause == CauseUnavail {
					continue
				}
				ts = append(ts, d.Time)
			}
		}
		sort.Float64s(ts)
		r.flatTimes = ts
	})
	return r.flatTimes
}

// DDFsBefore counts events at or before t across all groups. The first
// call sorts a flat event-time slice; subsequent calls are a binary
// search, so rendering a cumulative curve is O((E + P) log E) for E events
// and P query points instead of O(P·E) group scans.
func (r *RunResult) DDFsBefore(t float64) int {
	ts := r.flat()
	// First index with ts[i] > t == count of events at or before t.
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// Tally recomputes the aggregate counts from PerGroup — for results
// assembled by hand, e.g. restored from a campaign checkpoint.
func (r *RunResult) Tally() {
	r.TotalDDFs, r.OpOpDDFs, r.LdOpDDFs, r.UnavailEvents = 0, 0, 0, 0
	for _, g := range r.PerGroup {
		for _, d := range g {
			if d.Cause == CauseUnavail {
				r.UnavailEvents++
				continue
			}
			r.TotalDDFs++
			switch d.Cause {
			case CauseOpOp:
				r.OpOpDDFs++
			case CauseLdOp:
				r.LdOpDDFs++
			}
		}
	}
}

// Merge appends another result's groups to r and retallies the counts.
// Batched campaigns use it to accumulate: merging the results of runs
// [0,k) and [k,n) (the latter with Offset k) yields exactly the result of
// a single n-iteration run.
func (r *RunResult) Merge(other *RunResult) {
	r.PerGroup = append(r.PerGroup, other.PerGroup...)
	r.TotalDDFs += other.TotalDDFs
	r.OpOpDDFs += other.OpOpDDFs
	r.LdOpDDFs += other.LdOpDDFs
	r.UnavailEvents += other.UnavailEvents
	r.flatOnce = sync.Once{}
	r.flatTimes = nil
}

// collectWindow is each worker's output-channel depth: how far ahead of
// the in-order merge a worker may run before blocking.
const collectWindow = 256

// handoff is one simulated iteration crossing from a worker to the merger.
type handoff struct {
	ddfs []DDF
	logW float64
	err  error
}

// RunCollect executes the campaign, streaming every iteration's DDFs into
// c in strict iteration order. Worker w simulates iterations i ≡ w (mod
// workers), each from RNG stream Offset+i, and the merger round-robins the
// worker channels — so c observes exactly the sequence a serial loop would
// produce, bit-identical for any worker count, while peak memory stays
// O(workers·window) instead of O(iterations).
//
// Each worker reuses one RNG (reseeded per stream) and, when the engine
// implements IntoSimulator, one DDF buffer — the steady-state event-free
// iteration allocates nothing.
func RunCollect(spec RunSpec, c Collector) error {
	if err := spec.Config.Validate(); err != nil {
		return err
	}
	if spec.Iterations < 1 {
		return fmt.Errorf("sim: iterations must be >= 1, got %d", spec.Iterations)
	}
	if spec.Offset < 0 {
		return fmt.Errorf("sim: stream offset must be >= 0, got %d", spec.Offset)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Iterations {
		workers = spec.Iterations
	}
	if spec.Fleet != nil {
		if spec.Engine != nil {
			return fmt.Errorf("sim: fleet runs use the dedicated fleet engine; Engine must be nil, got %T", spec.Engine)
		}
		return runCollectFleet(spec, workers, c)
	}
	engine := spec.Engine
	if engine == nil {
		engine = EventEngine{}
	}
	// Uniform feature gating: reject combinations the chosen engine cannot
	// express (finite spares or coupled topologies off the event engine,
	// VR off the block engine, bias without a weight channel) before any
	// worker starts.
	if err := EngineSupports(engine, spec.Config); err != nil {
		return err
	}
	if be, ok := engine.(BlockEngine); ok {
		// The block engine runs whole blocks per worker dispatch — and is
		// the only engine that implements the variance-reduction schemes.
		return runCollectBlocks(spec, be, workers, c)
	}
	into, hasInto := engine.(IntoSimulator)

	// done releases workers blocked on a full channel when the merger
	// aborts early on an error.
	done := make(chan struct{})
	defer close(done)
	chans := make([]chan handoff, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan handoff, collectWindow)
		go func(w int, out chan<- handoff) {
			var (
				r   rng.RNG
				buf []DDF
			)
			for i := w; i < spec.Iterations; i += workers {
				r.SeedStream(spec.Seed, uint64(spec.Offset+i))
				var h handoff
				if hasInto {
					buf, h.logW, h.err = into.SimulateInto(spec.Config, &r, buf[:0])
					if h.err == nil && len(buf) > 0 {
						// The buffer is reused next iteration; only the rare
						// event-bearing result is copied out.
						h.ddfs = make([]DDF, len(buf))
						copy(h.ddfs, buf)
					}
				} else {
					h.ddfs, h.err = engine.Simulate(spec.Config, &r)
				}
				select {
				case out <- h:
					if h.err != nil {
						return
					}
				case <-done:
					return
				}
			}
		}(w, chans[w])
	}

	for i := 0; i < spec.Iterations; i++ {
		h := <-chans[i%workers]
		if h.err != nil {
			return h.err
		}
		c.Observe(i, h.ddfs, h.logW)
	}
	return nil
}

// blockWindow is each block worker's output-channel depth — blocks are
// hundreds of iterations, so a shallow window already hides merge jitter.
const blockWindow = 4

// blockEv is one event-bearing iteration inside a handoff, sparse because
// the overwhelming majority of iterations produce no events. The events
// themselves live in the handoff's flat ddfs arena at [off, off+n) — an
// index into pooled storage, not an allocation.
type blockEv struct {
	idx int // iteration index within the block
	off int // offset into the handoff's ddfs arena
	n   int
}

// blockHandoff is one simulated block crossing from a worker to the merger.
// Handoffs are pooled; the per-iteration log weights, the sparse event
// index, and the flat event arena reuse their backing arrays across blocks,
// so once each reaches its high-water mark the steady state allocates
// nothing — even under an importance-sampling tilt where most iterations
// bear events.
type blockHandoff struct {
	logWs []float64 // one per iteration, in iteration order
	ev    []blockEv
	ddfs  []DDF // flat arena the ev entries index into
	vr    VRBlock
	ez    float64
	err   error
}

var blockHandoffPool = sync.Pool{New: func() any { return new(blockHandoff) }}

// recycle clears the handoff for reuse, keeping every backing array at its
// high-water capacity.
func (h *blockHandoff) recycle() {
	h.logWs = h.logWs[:0]
	h.ev = h.ev[:0]
	h.ddfs = h.ddfs[:0]
	h.vr = VRBlock{}
	h.ez = 0
	h.err = nil
}

// runCollectBlocks is RunCollect's batched path: worker w simulates whole
// blocks b ≡ w (mod workers) of consecutive iterations on one scratch
// acquisition, and the merger round-robins the blocks back into the same
// strict per-iteration Observe order the scalar path produces. With
// cfg.VR disabled the observed stream is bit-identical to the scalar
// engines'; with it enabled the antithetic/stratified stream mapping is
// applied per iteration and each block's tallies reach any VRBlockObserver.
func runCollectBlocks(spec RunSpec, be BlockEngine, workers int, c Collector) error {
	cfg := spec.Config
	vr := cfg.VR
	// The VR configuration's block size wins (the stratum layout depends on
	// it); the engine's Block is a batching hint for plain runs.
	bs := be.Block
	if vr.Enabled() || vr.BlockSize > 0 {
		bs = vr.EffectiveBlock()
	}
	if bs <= 0 {
		bs = DefaultVRBlock
	}

	// Blocks are aligned to multiples of bs in global (Offset-shifted)
	// iteration space, so a campaign batch starting at a block boundary
	// continues the exact block sequence of an unbatched run. Edge blocks of
	// unaligned runs are clipped.
	lo, hi := spec.Offset, spec.Offset+spec.Iterations
	b0, bLast := lo/bs, (hi-1)/bs
	nBlocks := bLast - b0 + 1
	if workers > nBlocks {
		workers = nBlocks
	}
	blockRange := func(b int) (blo, bhi int) {
		blo, bhi = b*bs, (b+1)*bs
		if blo < lo {
			blo = lo
		}
		if bhi > hi {
			bhi = hi
		}
		return blo, bhi
	}

	done := make(chan struct{})
	defer close(done)
	chans := make([]chan *blockHandoff, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *blockHandoff, blockWindow)
		go func(w int, out chan<- *blockHandoff) {
			sc := blockScratchPool.Get().(*blockScratch)
			defer func() {
				sc.release()
				blockScratchPool.Put(sc)
			}()
			prepErr := sc.prep(&cfg)
			var (
				r   rng.RNG
				buf []DDF
			)
			for b := b0 + w; b <= bLast; b += workers {
				h := blockHandoffPool.Get().(*blockHandoff)
				h.recycle()
				if prepErr != nil {
					h.err = prepErr
					select {
					case out <- h:
					case <-done:
					}
					return
				}
				blo, bhi := blockRange(b)
				h.ez = sc.ez
				prevY := 0.0
				for g := blo; g < bhi; g++ {
					stream, anti := vr.stream(g)
					r.SeedStream(spec.Seed, stream)
					r.SetAntithetic(anti)
					j, k := vr.stratum(g)
					sc.col.reset(&r, j, k)
					var logW float64
					var z float64
					buf, logW, z = sc.simulateGroup(&cfg, buf[:0])
					h.logWs = append(h.logWs, logW)
					if len(buf) > 0 {
						// The buffer is reused next iteration; stash the
						// events in the handoff's pooled arena.
						off := len(h.ddfs)
						h.ddfs = append(h.ddfs, buf...)
						h.ev = append(h.ev, blockEv{idx: g - blo, off: off, n: len(buf)})
					}
					if vr.Enabled() {
						wt := math.Exp(logW)
						y := 0.0
						if len(buf) > 0 {
							y = wt
						}
						h.vr.Y += y
						h.vr.Z += wt * z
						h.vr.Y2 += y * y
						h.vr.N++
						if vr.Antithetic {
							if g%2 == 1 && g-1 >= blo {
								h.vr.C += prevY * y
								h.vr.P++
							}
							prevY = y
						}
					}
				}
				select {
				case out <- h:
				case <-done:
					return
				}
			}
		}(w, chans[w])
	}

	vrObs, hasVRObs := c.(VRBlockObserver)
	for b := b0; b <= bLast; b++ {
		h := <-chans[(b-b0)%workers]
		if h.err != nil {
			return h.err
		}
		blo, _ := blockRange(b)
		evi := 0
		for idx, logW := range h.logWs {
			var ddfs []DDF
			if evi < len(h.ev) && h.ev[evi].idx == idx {
				e := h.ev[evi]
				ddfs = h.ddfs[e.off : e.off+e.n]
				evi++
			}
			c.Observe(blo+idx-lo, ddfs, logW)
		}
		if vr.Enabled() && hasVRObs {
			vrObs.ObserveVRBlock(bs, h.ez, h.vr)
		}
		h.recycle()
		blockHandoffPool.Put(h)
	}
	return nil
}

// fleetWindow is each fleet worker's output-channel depth; chronologies
// are whole fleets, so a shallow window hides merge jitter.
const fleetWindow = 4

// fleetHandoff is one simulated fleet chronology crossing from a worker to
// the merger: the sparse event-bearing groups (idx is the group index
// within the chronology) plus the chronology's backlog statistics.
type fleetHandoff struct {
	ev    []blockEv
	ddfs  []DDF // flat arena the ev entries index into
	stats FleetStats
	err   error
}

var fleetHandoffPool = sync.Pool{New: func() any { return new(fleetHandoff) }}

func (h *fleetHandoff) recycle() {
	h.ev = h.ev[:0]
	h.ddfs = h.ddfs[:0]
	h.stats = FleetStats{}
	h.err = nil
}

// runCollectFleet is RunCollect's fleet path: worker w simulates whole
// fleet chronologies b ≡ w (mod workers), and the merger round-robins
// them back into the same strict per-group Observe order the scalar path
// produces — group index Offset+b·Groups+g draws from stream Offset+i
// exactly like scalar iteration i, bit-identical for any worker count.
func runCollectFleet(spec RunSpec, workers int, c Collector) error {
	fc := spec.Fleet.Config(spec.Config)
	if err := fc.Validate(); err != nil {
		return err
	}
	groups := fc.Groups
	if spec.Iterations%groups != 0 {
		return fmt.Errorf("sim: fleet runs need iterations (%d) in whole chronologies of %d groups", spec.Iterations, groups)
	}
	if spec.Offset%groups != 0 {
		return fmt.Errorf("sim: fleet stream offset (%d) must be a multiple of the fleet size (%d)", spec.Offset, groups)
	}
	chrons := spec.Iterations / groups
	if workers > chrons {
		workers = chrons
	}

	done := make(chan struct{})
	defer close(done)
	chans := make([]chan *fleetHandoff, workers)
	for w := 0; w < workers; w++ {
		chans[w] = make(chan *fleetHandoff, fleetWindow)
		go func(w int, out chan<- *fleetHandoff) {
			for b := w; b < chrons; b += workers {
				h := fleetHandoffPool.Get().(*fleetHandoff)
				h.recycle()
				base := uint64(spec.Offset + b*groups)
				h.err = SimulateFleetInto(fc, spec.Seed, base, func(g int, ddfs []DDF) {
					// The visit slice is engine scratch; stash the rare
					// event-bearing group in the handoff's pooled arena.
					off := len(h.ddfs)
					h.ddfs = append(h.ddfs, ddfs...)
					h.ev = append(h.ev, blockEv{idx: g, off: off, n: len(ddfs)})
				}, &h.stats)
				// The merger owns h the moment it is sent (it recycles and
				// re-pools it), so latch the error before handing it off.
				failed := h.err != nil
				select {
				case out <- h:
					if failed {
						return
					}
				case <-done:
					return
				}
			}
		}(w, chans[w])
	}

	fleetObs, hasFleetObs := c.(FleetObserver)
	for b := 0; b < chrons; b++ {
		h := <-chans[b%workers]
		if h.err != nil {
			return h.err
		}
		base := b * groups
		evi := 0
		for g := 0; g < groups; g++ {
			var ddfs []DDF
			if evi < len(h.ev) && h.ev[evi].idx == g {
				e := h.ev[evi]
				ddfs = h.ddfs[e.off : e.off+e.n]
				evi++
			}
			c.Observe(base+g, ddfs, 0)
		}
		if hasFleetObs {
			fleetObs.ObserveFleetChronology(groups, h.stats)
		}
		h.recycle()
		fleetHandoffPool.Put(h)
	}
	return nil
}

// RunSparse executes the campaign and accumulates it in sparse form —
// O(events) memory, with the 99.9%+ event-free groups costing nothing but
// their count.
func RunSparse(spec RunSpec) (*SparseResult, error) {
	res := &SparseResult{}
	if err := RunCollect(spec, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Run executes the campaign and materializes the dense per-group
// representation. It is a compatibility wrapper over the sparse pipeline;
// prefer RunSparse (or RunCollect with a custom Collector) for large
// iteration counts, where PerGroup alone costs O(iterations) memory.
func Run(spec RunSpec) (*RunResult, error) {
	sres, err := RunSparse(spec)
	if err != nil {
		return nil, err
	}
	return sres.Dense(), nil
}
