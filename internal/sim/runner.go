package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"raidrel/internal/rng"
)

// RunSpec describes a Monte Carlo campaign: Iterations independent group
// chronologies, each equivalent to monitoring one fielded RAID group for
// the mission (§5: "If 10,000 simulations are needed ... it is equivalent
// to monitoring the number of DDFs for 10,000 systems over the mission
// life").
type RunSpec struct {
	Config     Config
	Iterations int
	Seed       uint64
	Workers    int    // 0 = GOMAXPROCS
	Engine     Engine // nil = EventEngine

	// Offset shifts the RNG stream assignment: iteration i of this run
	// draws from rng.ForStream(Seed, Offset+i). Batched campaigns use it
	// to continue a run exactly where a previous batch left off — running
	// [0,k) then [k,n) with Offset k concatenates to the same per-group
	// results as one run of n iterations.
	Offset int
}

// RunResult aggregates a campaign.
type RunResult struct {
	// PerGroup holds each simulated group's DDF events in chronological
	// order; len(PerGroup) == Iterations.
	PerGroup [][]DDF
	// TotalDDFs is the total event count across groups.
	TotalDDFs int
	// OpOpDDFs and LdOpDDFs split the total by cause.
	OpOpDDFs, LdOpDDFs int

	// flatTimes caches the sorted flat event-time slice behind DDFsBefore;
	// built lazily so manually assembled results work too.
	flatOnce  sync.Once
	flatTimes []float64
}

// EventTimes flattens the per-group DDF times into per-system event lists
// suitable for stats.MCF.
func (r *RunResult) EventTimes() [][]float64 {
	out := make([][]float64, len(r.PerGroup))
	for i, g := range r.PerGroup {
		ts := make([]float64, len(g))
		for j, d := range g {
			ts[j] = d.Time
		}
		out[i] = ts
	}
	return out
}

// flat returns the sorted slice of all event times across groups, built
// once. PerGroup must not be mutated after the first DDFsBefore call.
func (r *RunResult) flat() []float64 {
	r.flatOnce.Do(func() {
		n := 0
		for _, g := range r.PerGroup {
			n += len(g)
		}
		ts := make([]float64, 0, n)
		for _, g := range r.PerGroup {
			for _, d := range g {
				ts = append(ts, d.Time)
			}
		}
		sort.Float64s(ts)
		r.flatTimes = ts
	})
	return r.flatTimes
}

// DDFsBefore counts events at or before t across all groups. The first
// call sorts a flat event-time slice; subsequent calls are a binary
// search, so rendering a cumulative curve is O((E + P) log E) for E events
// and P query points instead of O(P·E) group scans.
func (r *RunResult) DDFsBefore(t float64) int {
	ts := r.flat()
	// First index with ts[i] > t == count of events at or before t.
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// Tally recomputes the aggregate counts from PerGroup — for results
// assembled by hand, e.g. restored from a campaign checkpoint.
func (r *RunResult) Tally() {
	r.TotalDDFs, r.OpOpDDFs, r.LdOpDDFs = 0, 0, 0
	for _, g := range r.PerGroup {
		for _, d := range g {
			r.TotalDDFs++
			switch d.Cause {
			case CauseOpOp:
				r.OpOpDDFs++
			case CauseLdOp:
				r.LdOpDDFs++
			}
		}
	}
}

// Merge appends another result's groups to r and retallies the counts.
// Batched campaigns use it to accumulate: merging the results of runs
// [0,k) and [k,n) (the latter with Offset k) yields exactly the result of
// a single n-iteration run.
func (r *RunResult) Merge(other *RunResult) {
	r.PerGroup = append(r.PerGroup, other.PerGroup...)
	r.TotalDDFs += other.TotalDDFs
	r.OpOpDDFs += other.OpOpDDFs
	r.LdOpDDFs += other.LdOpDDFs
	r.flatOnce = sync.Once{}
	r.flatTimes = nil
}

// Run executes the campaign, fanning iterations across workers with
// disjoint RNG streams. Results are deterministic for a given (spec, seed,
// iteration count) regardless of worker count, because stream Offset+i is
// always assigned to iteration i.
func Run(spec RunSpec) (*RunResult, error) {
	if err := spec.Config.Validate(); err != nil {
		return nil, err
	}
	if spec.Iterations < 1 {
		return nil, fmt.Errorf("sim: iterations must be >= 1, got %d", spec.Iterations)
	}
	if spec.Offset < 0 {
		return nil, fmt.Errorf("sim: stream offset must be >= 0, got %d", spec.Offset)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Iterations {
		workers = spec.Iterations
	}
	engine := spec.Engine
	if engine == nil {
		engine = EventEngine{}
	}

	// Iteration i always draws from rng.ForStream(seed, Offset+i), so the
	// result is bit-for-bit identical no matter how many workers run.
	result := &RunResult{PerGroup: make([][]DDF, spec.Iterations)}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < spec.Iterations; i += workers {
				ddfs, err := engine.Simulate(spec.Config, rng.ForStream(spec.Seed, uint64(spec.Offset+i)))
				if err != nil {
					errs[w] = err
					return
				}
				result.PerGroup[i] = ddfs
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	result.Tally()
	return result, nil
}
