package sim

// eventKind enumerates the event-queue engine's event types.
type eventKind uint8

const (
	evOpFail eventKind = iota + 1
	evOpRestore
	evDefectArrive
	evDefectClear
	evTruncateDefects
	// evCompFail and evCompRestore are the failure/repair of one topology
	// component path instance; their slot field indexes the instance, a
	// namespace separate from the drive slots. Flat runs never schedule
	// them.
	evCompFail
	evCompRestore
	// evFleetSpare marks a failed slot's replacement drive arriving from a
	// finite fleet spare pool: the slot may now enter the heal queue. Only
	// the fleet engine schedules it.
	evFleetSpare
)

// event is one scheduled occurrence in a group chronology. The struct is
// deliberately packed to 48 bytes (slot and gen as int32, kind as a byte):
// heap sifts copy whole events, so every saved byte is paid back thousands
// of times per Monte Carlo iteration. int32 is ample — slots index drives
// (fleet-wide at most millions) and gen counts a slot's replacements over
// one mission.
type event struct {
	time float64
	seq  int64   // insertion order; deterministic tie-break
	id   int64   // defect identifier for evDefectClear
	arg  float64 // evTruncateDefects: clear defects that started at or before arg
	slot int32
	gen  int32 // drive generation the event applies to (staleness guard)
	kind eventKind
}

// eventQueue is a min-heap of event values ordered by (time, seq). It is
// deliberately not backed by container/heap: pushing through the standard
// interface boxes every event into an interface value, which costs one
// heap allocation per scheduled event — the dominant allocation of the
// simulate hot loop. The value-based heap keeps its backing array across
// iterations (reset truncates, it does not free), so a warmed-up engine
// schedules events with zero allocations.
//
// Both sifts move a hole instead of swapping (one event copy per level,
// not three). Because (time, seq) is a total order — seq is unique within
// a run — the hole sift lands every element exactly where the swap-based
// sift would, so pop order (and therefore every simulated chronology) is
// bit-for-bit unchanged from the original container/heap implementation.
type eventQueue struct {
	es []event
}

// reset empties the queue, keeping the backing array for reuse.
func (q *eventQueue) reset() { q.es = q.es[:0] }

func (q *eventQueue) Len() int { return len(q.es) }

// before orders by (time, seq) — identical to the original container/heap
// comparison.
func before(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push adds e to the queue.
func (q *eventQueue) push(e event) {
	q.es = append(q.es, e)
	es := q.es
	// Sift the hole up, moving parents down until e's position is found.
	i := len(es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&e, &es[parent]) {
			break
		}
		es[i] = es[parent]
		i = parent
	}
	es[i] = e
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() event {
	es := q.es
	top := es[0]
	n := len(es) - 1
	last := es[n]
	q.es = es[:n]
	// Sift the hole down from the root: promote the smaller child until
	// `last` fits, then place it once.
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && before(&es[r], &es[c]) {
			c = r
		}
		if !before(&es[c], &last) {
			break
		}
		es[i] = es[c]
		i = c
	}
	if n > 0 {
		es[i] = last
	}
	return top
}
