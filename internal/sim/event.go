package sim

// eventKind enumerates the event-queue engine's event types.
type eventKind int

const (
	evOpFail eventKind = iota + 1
	evOpRestore
	evDefectArrive
	evDefectClear
	evTruncateDefects
)

// event is one scheduled occurrence in a group chronology.
type event struct {
	time float64
	seq  int64 // insertion order; deterministic tie-break
	kind eventKind
	slot int
	gen  int     // drive generation the event applies to (staleness guard)
	id   int64   // defect identifier for evDefectClear
	arg  float64 // evTruncateDefects: clear defects that started at or before arg
}

// eventQueue is a min-heap of event values ordered by (time, seq). It is
// deliberately not backed by container/heap: pushing through the standard
// interface boxes every event into an interface value, which costs one
// heap allocation per scheduled event — the dominant allocation of the
// simulate hot loop. The value-based heap keeps its backing array across
// iterations (reset truncates, it does not free), so a warmed-up engine
// schedules events with zero allocations.
type eventQueue struct {
	es []event
}

// reset empties the queue, keeping the backing array for reuse.
func (q *eventQueue) reset() { q.es = q.es[:0] }

func (q *eventQueue) Len() int { return len(q.es) }

// less orders by (time, seq) — identical to the previous container/heap
// comparison, so pop order (and therefore every simulated chronology) is
// bit-for-bit unchanged.
func (q *eventQueue) less(i, j int) bool {
	if q.es[i].time != q.es[j].time {
		return q.es[i].time < q.es[j].time
	}
	return q.es[i].seq < q.es[j].seq
}

// push adds e to the queue.
func (q *eventQueue) push(e event) {
	q.es = append(q.es, e)
	// Sift up.
	i := len(q.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.es[i], q.es[parent] = q.es[parent], q.es[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() event {
	top := q.es[0]
	n := len(q.es) - 1
	q.es[0] = q.es[n]
	q.es = q.es[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		q.es[i], q.es[smallest] = q.es[smallest], q.es[i]
		i = smallest
	}
}
