package sim

import "container/heap"

// eventKind enumerates the event-queue engine's event types.
type eventKind int

const (
	evOpFail eventKind = iota + 1
	evOpRestore
	evDefectArrive
	evDefectClear
	evTruncateDefects
)

// event is one scheduled occurrence in a group chronology.
type event struct {
	time float64
	seq  int64 // insertion order; deterministic tie-break
	kind eventKind
	slot int
	gen  int     // drive generation the event applies to (staleness guard)
	id   int64   // defect identifier for evDefectClear
	arg  float64 // evTruncateDefects: clear defects that started at or before arg
}

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// pushEvent and popEvent are typed wrappers over container/heap.
func pushEvent(q *eventQueue, e *event) { heap.Push(q, e) }

func popEvent(q *eventQueue) *event {
	e, _ := heap.Pop(q).(*event)
	return e
}
