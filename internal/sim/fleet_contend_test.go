package sim

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/markov"
	"raidrel/internal/rng"
)

// Simultaneous failures at the spare shelf: each claims its own
// replenishment order in processing order, so ties neither lose nor
// double-count a replacement. Pinned because the head-index bookkeeping
// is easy to get off by one.
func TestSparePoolSimultaneousFailures(t *testing.T) {
	pool := newSparePool(&SparePolicy{Initial: 1, ReplenishHours: 100})
	// Three failures at the same instant t=10. The first takes the stocked
	// spare; the second and third wait for their own orders — which both
	// arrive at 110, so both rebuilds start then (not one at 110 and one
	// lost, and not both on the same order).
	if got := pool.rebuildStart(10); got != 10 {
		t.Fatalf("first tie start = %v, want 10", got)
	}
	if got := pool.rebuildStart(10); got != 110 {
		t.Fatalf("second tie start = %v, want 110", got)
	}
	if got := pool.rebuildStart(10); got != 110 {
		t.Fatalf("third tie start = %v, want 110", got)
	}
	// A fourth failure at 120: all three orders placed at 10 arrived at
	// 110; two were claimed above, one restocked at the t=120 sweep.
	if got := pool.rebuildStart(120); got != 120 {
		t.Fatalf("post-tie start = %v, want 120 (one order restocked)", got)
	}
	// And a fifth finds the shelf empty again, waiting on the order placed
	// at 120.
	if got := pool.rebuildStart(121); got != 220 {
		t.Fatalf("fifth start = %v, want 220", got)
	}
}

// The head-index ring must rewind once drained so pooled reuse keeps the
// backing array.
func TestSparePoolHeadRewind(t *testing.T) {
	pool := newSparePool(&SparePolicy{Initial: 0, ReplenishHours: 10})
	for i := 0; i < 100; i++ {
		tFail := float64(i * 1000)
		if got := pool.rebuildStart(tFail); got != tFail+10 {
			t.Fatalf("failure %d: start = %v, want %v", i, got, tFail+10)
		}
	}
	if len(pool.orders) > 2 || pool.head > 1 {
		t.Fatalf("drained pool did not rewind: len=%d head=%d", len(pool.orders), pool.head)
	}
	pool.reset(pool.policy)
	if pool.stock != 0 || len(pool.orders) != 0 || pool.head != 0 {
		t.Fatalf("reset pool dirty: %+v", pool)
	}
}

// Scripted contention: one fleet-wide repair slot, three groups. While
// group 2's long rebuild holds the slot, group 0 (one failure, oldest)
// and group 1 (two failures) queue up. The freed slot must go to the
// most-degraded group first — group 1's oldest failure jumps ahead of
// group 0's earlier one — and every wait, queue-depth and exposure
// statistic is pinned.
//
// Timeline: g2s0 fails at 50 (TTR 100, holds the slot until 150);
// g0s0 fails at 60 (queued), g1s0 at 70 (queued), g1s1 at 80 (queued,
// group 1 now doubly degraded — an OpOp DDF). Grants: g1s0 at 150
// (level 2 beats g0's older level-1 request), g0s0 at 155, g1s1 at 160.
func TestFleetScriptedPriorityOrder(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// t=0 draws group by group, slot by slot:
			// g0s0=60, g0s1=∞, g1s0=70, g1s1=80, g2s0=50, g2s1=∞;
			// replacements after each restore never fail again.
			TTOp: newScripted(60, 5000, 70, 80, 50, 5000, 5000),
			// TTRs draw at failure instants in time order: 50, 60, 70, 80.
			TTR: newScripted(100, 5, 5, 5),
		},
	}
	fc := FleetConfig{Groups: 3, Group: cfg, MaxConcurrentRebuilds: 1}
	groups, st := simulateFleetSeeded(t, fc, 1, 0)

	if len(groups[1].DDFs) != 1 || groups[1].DDFs[0].Time != 80 || groups[1].DDFs[0].Cause != CauseOpOp {
		t.Errorf("group 1 DDFs = %v, want [{80 op+op}]", groups[1].DDFs)
	}
	if len(groups[0].DDFs) != 0 || len(groups[2].DDFs) != 0 {
		t.Errorf("unexpected DDFs: g0=%v g2=%v", groups[0].DDFs, groups[2].DDFs)
	}

	if st.Failures != 4 || st.Rebuilds != 4 || st.ActiveAtEnd != 0 || st.QueuedAtEnd != 0 {
		t.Errorf("conservation: %+v", st)
	}
	// Grant order pins the waits: g1s0 waits 150-70=80, g0s0 waits
	// 155-60=95, g1s1 waits 160-80=80. FIFO would have given g0s0 the 150
	// grant (wait 90) — the extra 5 h is the degradation priority at work.
	wantGroupWait := []float64{95, 160, 0}
	for g, want := range wantGroupWait {
		if math.Abs(st.GroupWaitHours[g]-want) > 1e-9 {
			t.Errorf("group %d wait = %v, want %v", g, st.GroupWaitHours[g], want)
		}
	}
	if st.Waited != 3 {
		t.Errorf("Waited = %d, want 3", st.Waited)
	}
	if math.Abs(st.TotalWaitHours-255) > 1e-9 || math.Abs(st.MaxWaitHours-95) > 1e-9 {
		t.Errorf("waits = %v/%v, want 255/95", st.TotalWaitHours, st.MaxWaitHours)
	}
	if st.MaxQueueDepth != 3 {
		t.Errorf("MaxQueueDepth = %d, want 3", st.MaxQueueDepth)
	}
	// With every wait completed inside the mission, the queue-depth time
	// integral equals the summed waits (Little's identity, exact here).
	if math.Abs(st.MeanQueueDepth*cfg.Mission-st.TotalWaitHours) > 1e-9 {
		t.Errorf("depth integral %v != total wait %v", st.MeanQueueDepth*cfg.Mission, st.TotalWaitHours)
	}
	// Exposure windows: g0 degraded 60..160, g1 70..165, g2 50..150.
	if math.Abs(st.MaxExposureHours-100) > 1e-9 {
		t.Errorf("MaxExposureHours = %v, want 100", st.MaxExposureHours)
	}
}

// The backlog accounting must conserve failures under heavy random
// contention: every failure is either rebuilt, rebuilding, or still
// queued at mission end, and the queue-depth integral can never
// undercount the completed waits.
func TestFleetBacklogConservation(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	scenarios := []FleetConfig{
		{Groups: 6, Group: cfg, MaxConcurrentRebuilds: 1},
		{Groups: 6, Group: cfg, MaxConcurrentRebuilds: 2},
		{Groups: 4, Group: cfg, MaxConcurrentRebuilds: 1,
			SharedSpares: &SparePolicy{Initial: 1, ReplenishHours: 400}},
		{Groups: 8, Group: cfg}, // unlimited: waits only from spares (none here)
	}
	for si, fc := range scenarios {
		sawQueuedAtEnd := false
		for i := 0; i < 300; i++ {
			_, st := simulateFleetSeeded(t, fc, uint64(640+si), uint64(i*fc.Groups))
			if st.Failures != st.Rebuilds+st.ActiveAtEnd+st.QueuedAtEnd {
				t.Fatalf("scenario %d iter %d: %d failures != %d + %d + %d",
					si, i, st.Failures, st.Rebuilds, st.ActiveAtEnd, st.QueuedAtEnd)
			}
			if st.QueuedAtEnd > 0 {
				sawQueuedAtEnd = true
			}
			if st.Waited > st.Failures {
				t.Fatalf("scenario %d: more waiters than failures: %+v", si, st)
			}
			if st.MaxWaitHours > st.TotalWaitHours+1e-9 {
				t.Fatalf("scenario %d: max wait exceeds total: %+v", si, st)
			}
			var groupSum float64
			for _, w := range st.GroupWaitHours {
				if w < 0 {
					t.Fatalf("scenario %d: negative group wait %v", si, w)
				}
				groupSum += w
			}
			if math.Abs(groupSum-st.TotalWaitHours) > 1e-6*(1+st.TotalWaitHours) {
				t.Fatalf("scenario %d: group waits %v != total %v", si, groupSum, st.TotalWaitHours)
			}
			// The depth integral counts completed waits in full and pending
			// ones partially; it can equal but never undercut the total.
			if st.MeanQueueDepth*cfg.Mission < st.TotalWaitHours-1e-6*(1+st.TotalWaitHours) {
				t.Fatalf("scenario %d: depth integral %v < total wait %v",
					si, st.MeanQueueDepth*cfg.Mission, st.TotalWaitHours)
			}
			if fc.SharedSpares == nil && fc.MaxConcurrentRebuilds == 0 {
				// Uncontended: every rebuild starts at its failure instant, so
				// no waits and a queue that never has width.
				if st.Waited != 0 || st.TotalWaitHours != 0 || st.QueuedAtEnd != 0 || st.MeanQueueDepth != 0 {
					t.Fatalf("scenario %d: uncontended fleet accrued waits: %+v", si, st)
				}
			}
		}
		if fc.MaxConcurrentRebuilds == 1 && !sawQueuedAtEnd {
			// Not a failure of the invariant, but the test would be weak if
			// the queue never survived to mission end in 300 chronologies.
			t.Logf("scenario %d: no chronology ended with a non-empty queue", si)
		}
	}
}

// Tighter contention must never reduce the backlog: the same fleet and
// streams with fewer repair slots sees (weakly) more total wait and a
// deeper queue.
func TestFleetBacklogMonotoneInSlots(t *testing.T) {
	cfg := fastConfig()
	slots := []int{1, 2, 4, 0} // 0 = unlimited
	waits := make([]float64, len(slots))
	for si, k := range slots {
		var total float64
		for i := 0; i < 400; i++ {
			_, st := simulateFleetSeeded(t, FleetConfig{Groups: 6, Group: cfg, MaxConcurrentRebuilds: k}, 650, uint64(i*6))
			total += st.TotalWaitHours
		}
		waits[si] = total
	}
	for i := 1; i < len(waits); i++ {
		if waits[i] > waits[i-1]+1e-9 {
			t.Errorf("wait not monotone in repair slots: %v (slots %v)", waits, slots)
		}
	}
	if waits[0] <= waits[len(waits)-1] {
		t.Errorf("single repair slot should accrue real waits: %v", waits)
	}
}

// Semantic confirmation (both engines): a latent defect ARRIVING while
// the group already has Redundancy failed drives does not record a DDF —
// DDFs are only determined at operational-failure instants. The
// companion scenario swaps the defect for a failure at the same instant
// and does lose data, proving the window was live.
func TestScriptedDefectAtRedundancyNoDDF(t *testing.T) {
	script := func() Config {
		return Config{
			Drives:     3,
			Redundancy: 1,
			Mission:    1000,
			Trans: Transitions{
				// Slot 0 fails at 100, rebuilt by 200; nothing else fails.
				TTOp: newScripted(100, 5000, 5000, 5000),
				TTR:  newScripted(100),
				// One defect on slot 1 at t=150 — inside the degraded window.
				TTLd:    newScripted(2000, 150, 2000, 2000, 2000),
				TTScrub: newScripted(500, 500),
			},
		}
	}
	engineDDFs, err := (EventEngine{}).Simulate(script(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(engineDDFs) != 0 {
		t.Errorf("event engine: defect during degraded window recorded %v, want none", engineDDFs)
	}
	fleetGroups, _ := simulateFleetSeeded(t, FleetConfig{Groups: 1, Group: script()}, 1, 0)
	if len(fleetGroups[0].DDFs) != 0 {
		t.Errorf("fleet engine: defect during degraded window recorded %v, want none", fleetGroups[0].DDFs)
	}

	// Companion: an operational failure at 150 instead of the defect IS a
	// DDF — the degraded window was real, the defect arrival just isn't a
	// loss event.
	live := func() Config {
		return Config{
			Drives:     3,
			Redundancy: 1,
			Mission:    1000,
			Trans: Transitions{
				TTOp: newScripted(100, 5000, 150, 5000, 5000),
				TTR:  newScripted(100, 100),
			},
		}
	}
	engineDDFs, err = (EventEngine{}).Simulate(live(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(engineDDFs) != 1 || engineDDFs[0].Time != 150 || engineDDFs[0].Cause != CauseOpOp {
		t.Errorf("event engine companion: %v, want [{150 op+op}]", engineDDFs)
	}
	fleetGroups, _ = simulateFleetSeeded(t, FleetConfig{Groups: 1, Group: live()}, 1, 0)
	if len(fleetGroups[0].DDFs) != 1 || fleetGroups[0].DDFs[0] != engineDDFs[0] {
		t.Errorf("fleet engine companion: %v, want %v", fleetGroups[0].DDFs, engineDDFs)
	}
}

// A queued DDF rebuild keeps its suppression window open until the
// rebuild actually completes: failures landing while the loss is still
// unrepaired (even though the repair has not started) must not record a
// second DDF.
func TestFleetScriptedSuppressionSpansQueueWait(t *testing.T) {
	cfg := Config{
		Drives:     3,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Group 0: slot 0 at 100 (holds the repair slot for 500 h).
			// Group 1: failures at 110, 120 (DDF, rebuild queued), 130
			// (inside the unrepaired window -> suppressed).
			TTOp: newScripted(100, 5000, 5000, 110, 120, 130, 5000, 5000),
			TTR:  newScripted(500, 10, 10, 10),
		},
	}
	groups, st := simulateFleetSeeded(t, FleetConfig{Groups: 2, Group: cfg, MaxConcurrentRebuilds: 1}, 1, 0)
	if len(groups[1].DDFs) != 1 || groups[1].DDFs[0].Time != 120 {
		t.Errorf("group 1 DDFs = %v, want only the 120 event (130 suppressed while queued)", groups[1].DDFs)
	}
	if st.MaxQueueDepth != 3 {
		t.Errorf("MaxQueueDepth = %d, want 3", st.MaxQueueDepth)
	}
}

// Cross-validation of the contended repair server against the analytic
// bounded-crew chain: with exponential rates, a single-crew fleet group's
// P(>= 1 DDF) must match NewBoundedRepairChain's absorption probability —
// exactly in distribution, so within Monte Carlo error here — while the
// unlimited-slot fleet matches the parallel-repair chain. The two chains
// sit many standard errors apart at these rates, so the test has the
// power to catch a repair server that silently ignores its slot bound.
func TestFleetContentionMatchesBoundedCrewMarkov(t *testing.T) {
	const (
		lambda     = 1e-4
		mu         = 5e-3
		mission    = 20000.0
		drives     = 6
		redundancy = 2
		iters      = 6000
	)
	cfg := Config{
		Drives:     drives,
		Redundancy: redundancy,
		Mission:    mission,
		Trans: Transitions{
			TTOp: dist.MustExponential(lambda),
			TTR:  dist.MustExponential(mu),
		},
	}
	simP := func(maxRebuilds int) float64 {
		res, err := RunSparse(RunSpec{
			Config: cfg, Iterations: iters, Seed: 660,
			Fleet: &FleetOptions{Groups: 1, MaxConcurrentRebuilds: maxRebuilds},
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.GroupsWithDDF()) / iters
	}
	chainP := func(build func() (*markov.Chain, error)) float64 {
		c, err := build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.AbsorptionProbability(0, mission)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	bounded := chainP(func() (*markov.Chain, error) {
		return markov.NewBoundedRepairChain(drives, redundancy, 1, lambda, mu)
	})
	parallel := chainP(func() (*markov.Chain, error) {
		return markov.NewParallelRepairChain(drives, redundancy, lambda, mu)
	})
	se := math.Sqrt(bounded * (1 - bounded) / iters)
	if math.Abs(bounded-parallel) < 8*se {
		t.Fatalf("chains too close (%v vs %v) for a %v-SE test; pick hotter rates", bounded, parallel, se)
	}

	if got := simP(1); math.Abs(got-bounded) > 4*se {
		t.Errorf("single-crew fleet P(DDF) = %v, bounded chain says %v (4 SE = %v)", got, bounded, 4*se)
	}
	seP := math.Sqrt(parallel * (1 - parallel) / iters)
	if got := simP(0); math.Abs(got-parallel) > 4*seP {
		t.Errorf("unlimited fleet P(DDF) = %v, parallel chain says %v (4 SE = %v)", got, parallel, 4*seP)
	}
}
