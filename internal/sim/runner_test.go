package sim

import (
	"reflect"
	"testing"

	"raidrel/internal/dist"
)

// paperBaseConfig is the paper's Table 2 base case (the same parameters
// core.BaseCase lowers to), rebuilt here because sim cannot import core.
func paperBaseConfig() Config {
	return Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp:    dist.MustWeibull(1.12, 461386, 0),
			TTR:     dist.MustWeibull(2, 12, 6),
			TTLd:    dist.MustWeibull(1, 9259, 0),
			TTScrub: dist.MustWeibull(3, 168, 6),
		},
	}
}

// TestRunWorkerCountInvariance is the determinism guarantee the campaign
// checkpoint design relies on: because stream i is always assigned to
// iteration i, the per-group results are bit-for-bit identical no matter
// how many workers execute the run.
func TestRunWorkerCountInvariance(t *testing.T) {
	const iters = 400
	base := RunSpec{Config: paperBaseConfig(), Iterations: iters, Seed: 20070625}

	one := base
	one.Workers = 1
	seven := base
	seven.Workers = 7

	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Run(seven)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.PerGroup, r7.PerGroup) {
		t.Fatal("Workers:1 and Workers:7 produced different per-group chronologies")
	}
	if r1.TotalDDFs != r7.TotalDDFs || r1.OpOpDDFs != r7.OpOpDDFs || r1.LdOpDDFs != r7.LdOpDDFs {
		t.Fatalf("tallies differ: (%d,%d,%d) vs (%d,%d,%d)",
			r1.TotalDDFs, r1.OpOpDDFs, r1.LdOpDDFs, r7.TotalDDFs, r7.OpOpDDFs, r7.LdOpDDFs)
	}
	if r1.TotalDDFs == 0 {
		t.Error("base case produced no DDFs in 400 groups; invariance test is vacuous")
	}
}

// TestRunOffsetComposition: running [0,k) then [k,n) with Offset k and
// merging must equal a single [0,n) run exactly — the property that makes
// checkpoint/resume bit-exact.
func TestRunOffsetComposition(t *testing.T) {
	cfg := fastConfig()
	const n, k = 300, 110
	whole, err := Run(RunSpec{Config: cfg, Iterations: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	head, err := Run(RunSpec{Config: cfg, Iterations: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tail, err := Run(RunSpec{Config: cfg, Iterations: n - k, Seed: 7, Offset: k, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	head.Merge(tail)
	if len(head.PerGroup) != n {
		t.Fatalf("merged %d groups, want %d", len(head.PerGroup), n)
	}
	if !reflect.DeepEqual(head.PerGroup, whole.PerGroup) {
		t.Fatal("offset-batched run differs from single run")
	}
	if head.TotalDDFs != whole.TotalDDFs || head.OpOpDDFs != whole.OpOpDDFs || head.LdOpDDFs != whole.LdOpDDFs {
		t.Fatal("merged tallies differ from single-run tallies")
	}
}

func TestRunNegativeOffsetRejected(t *testing.T) {
	if _, err := Run(RunSpec{Config: fastConfig(), Iterations: 1, Offset: -1}); err == nil {
		t.Error("negative offset accepted")
	}
}

// TestDDFsBeforeMatchesScan checks the binary-search fast path against a
// naive per-group scan on a real run.
func TestDDFsBeforeMatchesScan(t *testing.T) {
	res, err := Run(RunSpec{Config: fastConfig(), Iterations: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDDFs == 0 {
		t.Fatal("fast config produced no DDFs")
	}
	scan := func(t0 float64) int {
		n := 0
		for _, g := range res.PerGroup {
			for _, d := range g {
				if d.Time <= t0 {
					n++
				}
			}
		}
		return n
	}
	for _, q := range []float64{0, 1, 100, 8760, 20000, 87600, 1e9} {
		if got, want := res.DDFsBefore(q), scan(q); got != want {
			t.Errorf("DDFsBefore(%g) = %d, want %d", q, got, want)
		}
	}
	if res.DDFsBefore(87600) != res.TotalDDFs {
		t.Error("count at mission end should equal TotalDDFs")
	}
}

func TestDDFsBeforeAfterMerge(t *testing.T) {
	a, err := Run(RunSpec{Config: fastConfig(), Iterations: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Force the flat cache, then merge: the cache must be invalidated.
	before := a.DDFsBefore(87600)
	b, err := Run(RunSpec{Config: fastConfig(), Iterations: 50, Seed: 9, Offset: 50})
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if got := a.DDFsBefore(87600); got != before+b.TotalDDFs {
		t.Errorf("post-merge DDFsBefore = %d, want %d", got, before+b.TotalDDFs)
	}
}
