package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"raidrel/internal/rng"
)

// IntervalEngine is the second, independent implementation of the group
// chronology, patterned directly on the paper's Fig. 5 timing diagram: each
// slot's alternating TTF/TTR sequence and defect intervals are laid out
// first, then the merged failure sequence is swept for DDFs. It must agree
// statistically with EventEngine; the pair cross-validate in tests.
type IntervalEngine struct{}

var (
	_ Engine        = IntervalEngine{}
	_ IntoSimulator = IntervalEngine{}
)

// opInterval is one failure episode of a slot: the drive fails at Fail and
// the replacement is fully restored at RestoreEnd.
type opInterval struct {
	Fail, RestoreEnd float64
}

// defectInterval is one latent defect's lifetime: created at Start,
// corrected (scrub or drive replacement) at End.
type defectInterval struct {
	Start, End float64
}

// slotChronology is a slot's precomputed timeline.
type slotChronology struct {
	ops     []opInterval
	defects []defectInterval
}

// intervalFailure is one operational failure tagged with its slot, for the
// merged fleet-wide sweep.
type intervalFailure struct {
	slot int
	op   opInterval
}

// intervalScratch is the reusable per-worker state of the interval engine:
// per-slot chronologies and the merged failure sequence keep their backing
// arrays across iterations.
type intervalScratch struct {
	chrons []slotChronology
	fails  []intervalFailure
}

var intervalScratchPool = sync.Pool{New: func() any { return new(intervalScratch) }}

// Simulate implements Engine.
func (e IntervalEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	return e.SimulateInto(cfg, r, nil)
}

// SimulateInto implements IntoSimulator: one chronology, DDFs appended to
// buf, internal scratch pooled and reused across calls.
func (IntervalEngine) SimulateInto(cfg Config, r *rng.RNG, buf []DDF) ([]DDF, error) {
	if err := cfg.Validate(); err != nil {
		return buf, err
	}
	if cfg.Spares != nil {
		return buf, fmt.Errorf("sim: the interval engine cannot model a finite spare pool (slots are precomputed independently); use EventEngine")
	}
	sc := intervalScratchPool.Get().(*intervalScratch)
	defer intervalScratchPool.Put(sc)
	if cap(sc.chrons) < cfg.Drives {
		grown := make([]slotChronology, cfg.Drives)
		copy(grown, sc.chrons[:cap(sc.chrons)])
		sc.chrons = grown
	}
	sc.chrons = sc.chrons[:cfg.Drives]
	chrons := sc.chrons
	for i := range chrons {
		chrons[i].ops = chrons[i].ops[:0]
		chrons[i].defects = chrons[i].defects[:0]
		buildSlotChronology(cfg, i, r, &chrons[i])
	}

	// Merge every operational failure, tagged with its slot.
	fails := sc.fails[:0]
	for slot := range chrons {
		for _, op := range chrons[slot].ops {
			fails = append(fails, intervalFailure{slot: slot, op: op})
		}
	}
	sc.fails = fails
	sort.Slice(fails, func(i, j int) bool { return fails[i].op.Fail < fails[j].op.Fail })

	var suppressUntil float64
	for _, f := range fails {
		t := f.op.Fail
		if t > cfg.Mission {
			break
		}
		if t < suppressUntil {
			continue
		}
		failedOthers := 0
		defectSlot, defectIdx := -1, -1
		defectStart := math.Inf(1)
		for k := range chrons {
			if k == f.slot {
				continue
			}
			if opFailedAt(chrons[k].ops, t) {
				failedOthers++
				continue
			}
			for di, d := range chrons[k].defects {
				if d.Start <= t && t < d.End && d.Start < defectStart {
					defectStart = d.Start
					defectSlot, defectIdx = k, di
				}
			}
		}
		switch {
		case failedOthers >= cfg.Redundancy:
			buf = append(buf, DDF{Time: t, Cause: CauseOpOp})
			suppressUntil = f.op.RestoreEnd
		case failedOthers == cfg.Redundancy-1 && defectSlot >= 0:
			buf = append(buf, DDF{Time: t, Cause: CauseLdOp})
			suppressUntil = f.op.RestoreEnd
			// The defective drive is repaired with the failed one: its
			// defect ends at the concomitant restore rather than running to
			// its natural scrub time.
			if f.op.RestoreEnd < chrons[defectSlot].defects[defectIdx].End {
				chrons[defectSlot].defects[defectIdx].End = f.op.RestoreEnd
			}
		}
	}
	return buf, nil
}

// opFailedAt reports whether the slot is inside a failure episode at t.
// Episodes are chronological and non-overlapping by construction.
func opFailedAt(ops []opInterval, t float64) bool {
	i := sort.Search(len(ops), func(i int) bool { return ops[i].Fail > t })
	return i > 0 && t < ops[i-1].RestoreEnd
}

// buildSlotChronology lays out one slot's alternating up/down episodes and
// its defect intervals into ch, mirroring the event engine's semantics:
// drive generation g runs from its installation (the previous drive's
// failure time) to its own failure; defects arrive by renewal within that
// window and end at scrub completion or the drive's own failure, whichever
// is first.
func buildSlotChronology(cfg Config, slot int, r *rng.RNG, ch *slotChronology) {
	genStart := 0.0 // installation time of the current drive
	upFrom := 0.0   // operational-clock start of the current drive
	for {
		fail := upFrom + cfg.ttopFor(slot).Sample(r)
		end := fail
		if end > cfg.Mission {
			end = cfg.Mission
		}
		if cfg.Trans.latentEnabled() {
			appendDefects(cfg, r, ch, genStart, end, fail)
		}
		if fail > cfg.Mission {
			break
		}
		restore := fail + cfg.Trans.TTR.Sample(r)
		ch.ops = append(ch.ops, opInterval{Fail: fail, RestoreEnd: restore})
		genStart = fail
		upFrom = restore
		if restore > cfg.Mission {
			// Defects on the replacement during a rebuild that outlives the
			// mission cannot affect any in-mission failure check.
			break
		}
	}
}

// appendDefects renewal-samples defect arrivals on [genStart, windowEnd)
// and records their lifetimes, truncated at driveFail (the drive's own
// failure clears its defects).
func appendDefects(cfg Config, r *rng.RNG, ch *slotChronology, genStart, windowEnd, driveFail float64) {
	t := genStart
	for {
		t = cfg.nextDefect(t, r)
		if t >= windowEnd {
			return
		}
		end := math.Inf(1)
		if cfg.Trans.TTScrub != nil {
			end = t + cfg.Trans.TTScrub.Sample(r)
		}
		if end > driveFail {
			end = driveFail
		}
		ch.defects = append(ch.defects, defectInterval{Start: t, End: end})
	}
}
