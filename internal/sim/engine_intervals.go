package sim

import (
	"math"
	"slices"
	"sort"
	"sync"

	"raidrel/internal/rng"
)

// IntervalEngine is the second, independent implementation of the group
// chronology, patterned directly on the paper's Fig. 5 timing diagram: each
// slot's alternating TTF/TTR sequence and defect intervals are laid out
// first, then the merged failure sequence is swept for DDFs. It must agree
// statistically with EventEngine; the pair cross-validate in tests.
type IntervalEngine struct{}

var (
	_ Engine        = IntervalEngine{}
	_ IntoSimulator = IntervalEngine{}
)

// opInterval is one failure episode of a slot: the drive fails at Fail and
// the replacement is fully restored at RestoreEnd.
type opInterval struct {
	Fail, RestoreEnd float64
}

// defectInterval is one latent defect's lifetime: created at Start,
// corrected (scrub or drive replacement) at End.
type defectInterval struct {
	Start, End float64
}

// slotChronology is a slot's precomputed timeline.
type slotChronology struct {
	ops     []opInterval
	defects []defectInterval
}

// intervalFailure is one operational failure tagged with its slot, for the
// merged fleet-wide sweep.
type intervalFailure struct {
	slot int
	op   opInterval
}

// intervalScratch is the reusable per-worker state of the interval engine:
// per-slot chronologies, the merged failure sequence, and the compiled
// sampler kernels keep their backing arrays across iterations.
type intervalScratch struct {
	chrons []slotChronology
	fails  []intervalFailure
	kern   cfgKernels
}

var intervalScratchPool = sync.Pool{New: func() any { return new(intervalScratch) }}

// Simulate implements Engine, discarding the importance-sampling weight.
func (e IntervalEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	out, _, err := e.SimulateInto(cfg, r, nil)
	return out, err
}

// SimulateInto implements IntoSimulator: one chronology, DDFs appended to
// buf, internal scratch pooled and reused across calls. The returned logW
// is the iteration's importance-sampling log weight (0 when unbiased).
func (IntervalEngine) SimulateInto(cfg Config, r *rng.RNG, buf []DDF) ([]DDF, float64, error) {
	if err := cfg.Validate(); err != nil {
		return buf, 0, err
	}
	if cfg.Spares != nil {
		return buf, 0, errUnsupported("interval", "a finite spare pool")
	}
	if cfg.Topology.Coupled() {
		return buf, 0, errUnsupported("interval", "a coupled component topology")
	}
	sc := intervalScratchPool.Get().(*intervalScratch)
	defer func() {
		sc.kern.release()
		intervalScratchPool.Put(sc)
	}()
	sc.kern.compile(&cfg)
	if cap(sc.chrons) < cfg.Drives {
		grown := make([]slotChronology, cfg.Drives)
		copy(grown, sc.chrons[:cap(sc.chrons)])
		sc.chrons = grown
	}
	sc.chrons = sc.chrons[:cfg.Drives]
	chrons := sc.chrons
	logW := 0.0
	for i := range chrons {
		chrons[i].ops = chrons[i].ops[:0]
		chrons[i].defects = chrons[i].defects[:0]
		logW += buildSlotChronology(&cfg, &sc.kern, i, r, &chrons[i])
	}

	// Merge every operational failure, tagged with its slot.
	fails := sc.fails[:0]
	for slot := range chrons {
		for _, op := range chrons[slot].ops {
			fails = append(fails, intervalFailure{slot: slot, op: op})
		}
	}
	sc.fails = fails
	// slices.SortFunc rather than sort.Slice: the latter builds a
	// reflection-based swapper, one heap allocation per call — the only
	// allocation this engine's hot path had left.
	slices.SortFunc(fails, func(a, b intervalFailure) int {
		switch {
		case a.op.Fail < b.op.Fail:
			return -1
		case a.op.Fail > b.op.Fail:
			return 1
		default:
			return 0
		}
	})

	var suppressUntil float64
	for _, f := range fails {
		t := f.op.Fail
		if t > cfg.Mission {
			break
		}
		if t < suppressUntil {
			continue
		}
		failedOthers := 0
		defectSlot, defectIdx := -1, -1
		defectStart := math.Inf(1)
		for k := range chrons {
			if k == f.slot {
				continue
			}
			if opFailedAt(chrons[k].ops, t) {
				failedOthers++
				continue
			}
			for di, d := range chrons[k].defects {
				if d.Start <= t && t < d.End && d.Start < defectStart {
					defectStart = d.Start
					defectSlot, defectIdx = k, di
				}
			}
		}
		switch {
		case failedOthers >= cfg.Redundancy:
			buf = append(buf, DDF{Time: t, Cause: CauseOpOp})
			suppressUntil = f.op.RestoreEnd
		case failedOthers == cfg.Redundancy-1 && defectSlot >= 0:
			buf = append(buf, DDF{Time: t, Cause: CauseLdOp})
			suppressUntil = f.op.RestoreEnd
			// The defective drive is repaired with the failed one: its
			// defect ends at the concomitant restore rather than running to
			// its natural scrub time.
			if f.op.RestoreEnd < chrons[defectSlot].defects[defectIdx].End {
				chrons[defectSlot].defects[defectIdx].End = f.op.RestoreEnd
			}
		}
	}
	return buf, logW, nil
}

// opFailedAt reports whether the slot is inside a failure episode at t.
// Episodes are chronological and non-overlapping by construction.
func opFailedAt(ops []opInterval, t float64) bool {
	i := sort.Search(len(ops), func(i int) bool { return ops[i].Fail > t })
	return i > 0 && t < ops[i-1].RestoreEnd
}

// buildSlotChronology lays out one slot's alternating up/down episodes and
// its defect intervals into ch, mirroring the event engine's semantics:
// drive generation g runs from its installation (the previous drive's
// failure time) to its own failure; defects arrive by renewal within that
// window and end at scrub completion or the drive's own failure, whichever
// is first. Returns the slot's importance-sampling log weight.
//
// Under bias the two engines censor defect chains at different horizons
// (this engine at the generation window, the event engine at the mission),
// so per-iteration weights differ between engines even on the same stream;
// both weightings are valid for their own chronology construction and the
// weighted estimates agree statistically.
func buildSlotChronology(cfg *Config, kern *cfgKernels, slot int, r *rng.RNG, ch *slotChronology) float64 {
	logW := 0.0
	genStart := 0.0 // installation time of the current drive
	upFrom := 0.0   // operational-clock start of the current drive
	for {
		// Under bias the draw is censored at the residual mission: a drive
		// whose failure lands past the mission contributes no further
		// in-mission episodes, matching the event engine's discard boundary.
		dt, logLR := kern.drawTTOp(cfg, slot, upFrom, r)
		logW += logLR
		fail := upFrom + dt
		end := fail
		if end > cfg.Mission {
			end = cfg.Mission
		}
		if cfg.Trans.latentEnabled() {
			logW += appendDefects(cfg, kern, r, ch, genStart, end, fail)
		}
		if fail > cfg.Mission {
			break
		}
		restore := fail + kern.ttr.Draw(r)
		ch.ops = append(ch.ops, opInterval{Fail: fail, RestoreEnd: restore})
		genStart = fail
		upFrom = restore
		if restore > cfg.Mission {
			// Defects on the replacement during a rebuild that outlives the
			// mission cannot affect any in-mission failure check.
			break
		}
	}
	return logW
}

// appendDefects renewal-samples defect arrivals on [genStart, windowEnd)
// and records their lifetimes, truncated at driveFail (the drive's own
// failure clears its defects). Returns the chain's importance-sampling
// log weight; biased arrivals are censored at windowEnd, the boundary
// past which the chain stops.
func appendDefects(cfg *Config, kern *cfgKernels, r *rng.RNG, ch *slotChronology, genStart, windowEnd, driveFail float64) float64 {
	logW := 0.0
	t := genStart
	if kern.plainTTLd {
		// The dominant configuration — plain renewal defects — resolved
		// once, keeping nextDefect's process dispatch out of the arrival
		// loop. Draw-for-draw identical to the generic path below.
		hasScrub := cfg.Trans.TTScrub != nil
		for {
			t += kern.ttld.Draw(r)
			if t >= windowEnd {
				return 0
			}
			end := math.Inf(1)
			if hasScrub {
				end = t + kern.scrub.Draw(r)
			}
			if end > driveFail {
				end = driveFail
			}
			ch.defects = append(ch.defects, defectInterval{Start: t, End: end})
		}
	}
	for {
		next, logLR := kern.nextDefect(cfg, t, windowEnd, r)
		logW += logLR
		t = next
		if t >= windowEnd {
			return logW
		}
		end := math.Inf(1)
		if cfg.Trans.TTScrub != nil {
			end = t + kern.scrub.Draw(r)
		}
		if end > driveFail {
			end = driveFail
		}
		ch.defects = append(ch.defects, defectInterval{Start: t, End: end})
	}
}
