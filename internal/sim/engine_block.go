package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// BlockEngine is the batched structure-of-arrays implementation of the
// interval chronology. It consumes the RNG through a prefetched uniform
// column — one bulk rng.Uint64s refill ahead of a pre-logged exponential
// frontier — and runs the compiled kernel transforms as flat array math,
// while producing chronologies bit-identical to IntervalEngine: the same
// stream yields the same DDFs and the same log weight, draw for draw.
//
// Two lazy-transform shortcuts keep the per-iteration math sublinear in the
// draw count without breaking that identity:
//
//   - A first-generation operational draw whose exponential variate lies
//     certainly above the slot's mission hazard H_s(M) (dist.CompareHazard,
//     guard-banded) is substituted with +Inf instead of being transformed.
//     Any value strictly above the mission is output-equivalent there: the
//     slot loop breaks without appending an episode, the defect window is
//     clipped to the mission either way, and a defect end truncated by the
//     drive failure differs only beyond the mission, where no query ever
//     looks. Under bias the censored log ratio (θ-1)·H(M) is precomputed
//     per slot, so the skipped draw's weight factor is still bit-exact.
//   - Scrub completions are kept in the exponential domain: a defect stores
//     its scrub variate and is tested for liveness with the banded
//     dist.CompareExp against the elapsed time, falling back to the exact
//     transform (memoized) only inside the guard band.
//
// The engine requires every configured transition distribution to compile
// to a specialized kernel (dist.Kernel.Compiled — Weibull or Exponential,
// i.e. everything the paper's model uses); generic scripted distributions
// and finite spare pools are rejected, as is the interval engine's spare
// restriction. The NHPP defect process is supported through the same
// column.
//
// Like the scalar engines it implements Engine and IntoSimulator for
// one-group use; the runner's block path drives the pooled scratch
// directly, simulating a whole block of groups per scratch acquisition,
// with the variance-reduction hooks (antithetic pairing, stratified first
// draw, control-variate indicator) applied per iteration.
//
// The column prefetches uniforms, so the generator is advanced further
// than the draws consumed; callers must not interleave other draws on the
// same generator mid-iteration. Every runner path reseeds per iteration
// (SeedStream), which makes the overdraw unobservable.
type BlockEngine struct {
	// Block is the preferred iterations-per-block for the runner's batched
	// path (0 = the configuration's VR block size, or DefaultVRBlock).
	Block int
}

var (
	_ Engine        = BlockEngine{}
	_ IntoSimulator = BlockEngine{}
)

const (
	// colChunk is the uniforms fetched per bulk RNG refill: covers the
	// ~170-draw base-case iteration in one fill most of the time.
	colChunk = 192
	// colStride is the exponentials pre-logged per frontier advance; a
	// short stride keeps the transform from running far past the draws a
	// chronology actually consumes.
	colStride = 16
)

// drawCol is the prefetched draw column: raw uniforms filled in bulk, an
// exponential frontier logged in strides just ahead of consumption, and
// the stratification override for the iteration's first accepted uniform.
type drawCol struct {
	r   *rng.RNG
	pos int // next entry to consume
	n   int // filled entries
	lg  int // pre-log frontier: e[0:lg] is valid
	// When strataK > 0 the next accepted (nonzero) uniform u is replaced
	// by (strataJ + u)/strataK before the exponential transform — the
	// within-block stratification of the first operational-failure draw.
	strataJ, strataK float64
	u                [colChunk]uint64
	e                [colChunk]float64
}

// reset binds the column to a generator for one iteration, dropping any
// prefetched tail (the runner reseeds per iteration) and arming stratum j
// of k (k = 0 disables stratification).
func (c *drawCol) reset(r *rng.RNG, j, k int) {
	c.r = r
	c.pos, c.n, c.lg = 0, 0, 0
	c.strataJ, c.strataK = float64(j), float64(k)
}

// refill fetches the next chunk of raw uniforms.
func (c *drawCol) refill() {
	c.r.Uint64s(c.u[:])
	c.pos, c.n, c.lg = 0, colChunk, 0
}

// preLog advances the exponential frontier by one stride: e[i] gets the
// exact ExpFloat64 value -log(u) of its uniform, with u == 0 marked +Inf
// so consumption can skip it (Float64Open's retry, deferred).
func (c *drawCol) preLog() {
	if c.lg < c.pos {
		c.lg = c.pos
	}
	end := c.lg + colStride
	if end > c.n {
		end = c.n
	}
	for i := c.lg; i < end; i++ {
		if u := float64(c.u[i]>>11) / (1 << 53); u > 0 {
			c.e[i] = -math.Log(u)
		} else {
			c.e[i] = math.Inf(1)
		}
	}
	c.lg = end
}

// nextExp returns the next unit-exponential variate, bit-identical to
// rng.ExpFloat64 on the same stream: zero uniforms are skipped exactly as
// Float64Open retries them.
func (c *drawCol) nextExp() float64 {
	for {
		if c.pos == c.n {
			c.refill()
		}
		if c.pos >= c.lg {
			c.preLog()
		}
		i := c.pos
		c.pos++
		if c.strataK > 0 {
			// The armed stratum consumes the raw uniform directly: the
			// pre-logged value is for the unstratified draw.
			u := float64(c.u[i]>>11) / (1 << 53)
			if u == 0 {
				continue
			}
			us := (c.strataJ + u) / c.strataK
			c.strataK = 0
			return -math.Log(us)
		}
		if e := c.e[i]; e != math.Inf(1) {
			return e
		}
	}
}

// nextFloat64 returns the next uniform in [0,1), bit-identical to
// rng.Float64 (no zero-skip) — the NHPP thinning acceptance draw.
func (c *drawCol) nextFloat64() float64 {
	if c.pos == c.n {
		c.refill()
	}
	u := float64(c.u[c.pos]>>11) / (1 << 53)
	c.pos++
	return u
}

// blockDefect is a latent defect with its scrub completion kept lazy: the
// effective end is min(natural scrub end, cap), where cap starts at the
// drive's own failure and may be lowered to a concomitant restore by the
// LdOp repair rule. The natural end is resolved from the stored
// exponential variate only when a liveness query lands inside the
// comparison guard band, and memoized.
type blockDefect struct {
	start    float64
	cap      float64
	e        float64
	end      float64
	resolved bool
	hasScrub bool
}

// blockChronology is a slot's timeline in the block engine's lazy form.
type blockChronology struct {
	ops     []opInterval
	defects []blockDefect
}

// blockScratch is the reusable per-worker state of the block engine: the
// compiled kernels, the draw column, per-slot chronologies, the merged
// failure sequence, and the per-slot acceleration constants (mission
// hazards, censored gen-1 log ratios, the control-variate expectation).
type blockScratch struct {
	kern   cfgKernels
	chrons []blockChronology
	fails  []intervalFailure
	col    drawCol
	// hm[s] = H_s(Mission), the base cumulative mission hazard of slot s's
	// operational-failure distribution — the gen-1 lazy-skip threshold and
	// the control variate's analytic input.
	hm []float64
	// lr1[s] is the censored gen-1 log likelihood ratio (θ-1)·H_s(M),
	// substituted for a provably censored first draw under bias.
	lr1 []float64
	// ez = 1 - exp(-Σ_s H_s(M)): the analytic expectation of the
	// control-variate indicator z = 1{any gen-1 op failure <= Mission}.
	ez       float64
	latent   bool
	hasScrub bool
}

var blockScratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// prep compiles cfg into the scratch and precomputes the acceleration
// state. cfg must already be validated. On error the scratch is left
// released.
func (sc *blockScratch) prep(cfg *Config) error {
	if cfg.Spares != nil {
		return errUnsupported("block", "a finite spare pool")
	}
	if cfg.Topology.Coupled() {
		return errUnsupported("block", "a coupled component topology")
	}
	sc.kern.compile(cfg)
	if err := sc.checkCompiled(cfg); err != nil {
		sc.kern.release()
		return err
	}
	sc.latent = cfg.Trans.latentEnabled()
	sc.hasScrub = cfg.Trans.TTScrub != nil

	if cap(sc.chrons) < cfg.Drives {
		grown := make([]blockChronology, cfg.Drives)
		copy(grown, sc.chrons[:cap(sc.chrons)])
		sc.chrons = grown
	}
	sc.chrons = sc.chrons[:cfg.Drives]
	if cap(sc.hm) < cfg.Drives {
		sc.hm = make([]float64, cfg.Drives)
		sc.lr1 = make([]float64, cfg.Drives)
	}
	sc.hm = sc.hm[:cfg.Drives]
	sc.lr1 = sc.lr1[:cfg.Drives]
	sumH := 0.0
	for s := 0; s < cfg.Drives; s++ {
		if sc.kern.biasOp {
			tk := &sc.kern.ttopTilt[s]
			sc.hm[s] = tk.CumHazard(cfg.Mission)
			sc.lr1[s] = tk.CensoredLogLR(cfg.Mission)
		} else {
			sc.hm[s] = sc.kern.ttop[s].CumHazard(cfg.Mission)
			sc.lr1[s] = 0
		}
		sumH += sc.hm[s]
	}
	sc.ez = -math.Expm1(-sumH)
	return nil
}

// checkCompiled verifies every configured distribution compiled to a
// specialized kernel; the block engine's exp-domain transforms have no
// generic fallback.
func (sc *blockScratch) checkCompiled(cfg *Config) error {
	reject := func(what string) error {
		return fmt.Errorf("sim: the block engine requires compiled (Weibull or Exponential) kernels, but %s does not compile; use IntervalEngine or EventEngine", what)
	}
	if sc.kern.biasOp {
		for i := range sc.kern.ttopTilt {
			if !sc.kern.ttopTilt[i].Compiled() {
				return reject(fmt.Sprintf("slot %d's TTOp distribution", i))
			}
		}
	} else {
		for i := range sc.kern.ttop {
			if !sc.kern.ttop[i].Compiled() {
				return reject(fmt.Sprintf("slot %d's TTOp distribution", i))
			}
		}
	}
	if !sc.kern.ttr.Compiled() {
		return reject("the TTR distribution")
	}
	if cfg.Trans.TTLd != nil {
		if sc.kern.biasLd {
			if !sc.kern.ttldTilt.Compiled() {
				return reject("the TTLd distribution")
			}
		} else if !sc.kern.ttld.Compiled() {
			return reject("the TTLd distribution")
		}
	}
	if cfg.Trans.TTScrub != nil && !sc.kern.scrub.Compiled() {
		return reject("the TTScrub distribution")
	}
	return nil
}

// release drops configuration references so the pooled scratch does not
// pin a caller's state, keeping backing arrays warm.
func (sc *blockScratch) release() {
	sc.kern.release()
	sc.col.r = nil
}

// Simulate implements Engine, discarding the importance-sampling weight.
func (e BlockEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	out, _, err := e.SimulateInto(cfg, r, nil)
	return out, err
}

// SimulateInto implements IntoSimulator: one chronology from r's stream,
// bit-identical to IntervalEngine.SimulateInto — same DDFs, same logW. The
// draw column prefetches, so r ends up advanced past the consumed draws;
// reseed per iteration (as every runner does) rather than chaining draws.
func (e BlockEngine) SimulateInto(cfg Config, r *rng.RNG, buf []DDF) ([]DDF, float64, error) {
	if err := cfg.Validate(); err != nil {
		return buf, 0, err
	}
	sc := blockScratchPool.Get().(*blockScratch)
	if err := sc.prep(&cfg); err != nil {
		blockScratchPool.Put(sc)
		return buf, 0, err
	}
	sc.col.reset(r, 0, 0)
	buf, logW, _ := sc.simulateGroup(&cfg, buf)
	sc.release()
	blockScratchPool.Put(sc)
	return buf, logW, nil
}

// simulateGroup runs one group chronology from the bound column, appending
// DDFs to buf. Returns the extended buf, the iteration's log weight, and
// the control-variate indicator z = 1{any first-generation operational
// failure within the mission}. prep must have succeeded and col been reset.
func (sc *blockScratch) simulateGroup(cfg *Config, buf []DDF) ([]DDF, float64, bool) {
	chrons := sc.chrons
	logW := 0.0
	z := false
	for i := range chrons {
		chrons[i].ops = chrons[i].ops[:0]
		chrons[i].defects = chrons[i].defects[:0]
		lw, zi := sc.buildSlot(cfg, i, &chrons[i])
		logW += lw
		z = z || zi
	}

	// Merge every operational failure, tagged with its slot — the same
	// slot-major append order and comparator as the interval engine, so the
	// sort permutes ties identically.
	fails := sc.fails[:0]
	for slot := range chrons {
		for _, op := range chrons[slot].ops {
			fails = append(fails, intervalFailure{slot: slot, op: op})
		}
	}
	sc.fails = fails
	slices.SortFunc(fails, func(a, b intervalFailure) int {
		switch {
		case a.op.Fail < b.op.Fail:
			return -1
		case a.op.Fail > b.op.Fail:
			return 1
		default:
			return 0
		}
	})

	var suppressUntil float64
	for _, f := range fails {
		t := f.op.Fail
		if t > cfg.Mission {
			break
		}
		if t < suppressUntil {
			continue
		}
		failedOthers := 0
		var defect *blockDefect
		defectStart := math.Inf(1)
		for k := range chrons {
			if k == f.slot {
				continue
			}
			if opFailedAt(chrons[k].ops, t) {
				failedOthers++
				continue
			}
			// Defect starts are ascending within a slot, so the scan can
			// stop at the first start past t (nothing later covers t) or
			// past the best candidate (nothing later beats it), and the
			// first live defect found is the slot's min-start live one —
			// the same winner, under the same strict-< tie rule, as the
			// interval engine's full scan.
			ds := chrons[k].defects
			for di := range ds {
				d := &ds[di]
				if d.start > t || d.start >= defectStart {
					break
				}
				if sc.defectLive(d, t) {
					defectStart = d.start
					defect = d
					break
				}
			}
		}
		switch {
		case failedOthers >= cfg.Redundancy:
			buf = append(buf, DDF{Time: t, Cause: CauseOpOp})
			suppressUntil = f.op.RestoreEnd
		case failedOthers == cfg.Redundancy-1 && defect != nil:
			buf = append(buf, DDF{Time: t, Cause: CauseLdOp})
			suppressUntil = f.op.RestoreEnd
			// The defective drive is repaired with the failed one: lower
			// the lazy end bound to the concomitant restore, which makes
			// the effective end min(natural, cap, restore) — exactly the
			// interval engine's truncation.
			if f.op.RestoreEnd < defect.cap {
				defect.cap = f.op.RestoreEnd
			}
		}
	}
	return buf, logW, z
}

// buildSlot lays out one slot's episodes and defects from the column,
// draw-for-draw identical to buildSlotChronology, with the gen-1 lazy skip
// applied. Returns the slot's log weight and whether its first-generation
// drive failed within the mission.
func (sc *blockScratch) buildSlot(cfg *Config, slot int, ch *blockChronology) (logW float64, z bool) {
	genStart := 0.0 // installation time of the current drive
	upFrom := 0.0   // operational-clock start of the current drive
	gen1 := true
	for {
		dt, logLR := sc.drawTTOp(cfg, slot, upFrom, gen1)
		logW += logLR
		fail := upFrom + dt
		end := fail
		if end > cfg.Mission {
			end = cfg.Mission
		}
		if sc.latent {
			logW += sc.appendDefects(cfg, ch, genStart, end, fail)
		}
		if fail > cfg.Mission {
			break
		}
		if gen1 {
			z = true
		}
		restore := fail + sc.kern.ttr.FromExp(sc.col.nextExp())
		ch.ops = append(ch.ops, opInterval{Fail: fail, RestoreEnd: restore})
		genStart = fail
		upFrom = restore
		gen1 = false
		if restore > cfg.Mission {
			break
		}
	}
	return logW, z
}

// drawTTOp is the column-fed counterpart of cfgKernels.drawTTOp with the
// first-generation hazard-domain skip: when the exponential variate is
// certainly past the slot's mission hazard, +Inf stands in for the
// transformed draw (output-equivalent — see the engine comment) and, under
// bias, the precomputed censored ratio stands in for the weight factor.
func (sc *blockScratch) drawTTOp(cfg *Config, slot int, upFrom float64, gen1 bool) (dt, logLR float64) {
	e := sc.col.nextExp()
	if sc.kern.biasOp {
		tk := &sc.kern.ttopTilt[slot]
		if gen1 && dist.CompareHazard(e/tk.Theta(), sc.hm[slot]) > 0 {
			return math.Inf(1), sc.lr1[slot]
		}
		return tk.DrawLRFromExp(e, cfg.Mission-upFrom)
	}
	if gen1 && dist.CompareHazard(e, sc.hm[slot]) > 0 {
		return math.Inf(1), 0
	}
	return sc.kern.ttop[slot].FromExp(e), 0
}

// appendDefects renewal-samples defect arrivals on [genStart, windowEnd)
// from the column, mirroring the interval engine's appendDefects draw for
// draw; scrub completions stay in the exponential domain.
func (sc *blockScratch) appendDefects(cfg *Config, ch *blockChronology, genStart, windowEnd, driveFail float64) float64 {
	logW := 0.0
	t := genStart
	if sc.kern.plainTTLd {
		for {
			t += sc.kern.ttld.FromExp(sc.col.nextExp())
			if t >= windowEnd {
				return 0
			}
			sc.pushDefect(ch, t, driveFail)
		}
	}
	for {
		next, logLR := sc.nextDefect(cfg, t, windowEnd)
		logW += logLR
		t = next
		if t >= windowEnd {
			return logW
		}
		sc.pushDefect(ch, t, driveFail)
	}
}

// pushDefect records a defect created at t, its scrub variate drawn (in
// stream order) but untransformed.
func (sc *blockScratch) pushDefect(ch *blockChronology, t, driveFail float64) {
	d := blockDefect{start: t, cap: driveFail}
	if sc.hasScrub {
		d.e = sc.col.nextExp()
		d.hasScrub = true
	}
	ch.defects = append(ch.defects, d)
}

// nextDefect is the column-fed counterpart of cfgKernels.nextDefect for
// the non-plain processes (NHPP thinning, tilted renewal).
func (sc *blockScratch) nextDefect(cfg *Config, from, horizon float64) (float64, float64) {
	switch {
	case cfg.Trans.TTLdRate != nil:
		t := from
		for {
			t += sc.col.nextExp() / cfg.Trans.TTLdRateMax
			if t > cfg.Mission {
				return t, 0 // beyond the horizon; caller discards
			}
			rate := cfg.Trans.TTLdRate(t)
			if rate < 0 || rate > cfg.Trans.TTLdRateMax {
				if rate < 0 {
					rate = 0
				} else {
					rate = cfg.Trans.TTLdRateMax
				}
			}
			if sc.col.nextFloat64()*cfg.Trans.TTLdRateMax < rate {
				return t, 0
			}
		}
	case cfg.Trans.TTLd != nil:
		if sc.kern.biasLd {
			dt, logLR := sc.kern.ttldTilt.DrawLRFromExp(sc.col.nextExp(), horizon-from)
			return from + dt, logLR
		}
		return from + sc.kern.ttld.FromExp(sc.col.nextExp()), 0
	default:
		return math.Inf(1), 0
	}
}

// defectLive reports whether the defect covers time t (start <= t already
// checked by the caller): t must be below both the lazy cap and the
// natural scrub end, the latter tested in the exponential domain and
// resolved exactly (and memoized) only inside the guard band.
func (sc *blockScratch) defectLive(d *blockDefect, t float64) bool {
	if t >= d.cap {
		return false
	}
	if d.resolved {
		return t < d.end
	}
	if !d.hasScrub {
		return true // no scrub: the natural end is +Inf
	}
	switch sc.kern.scrub.CompareExp(d.e, t-d.start) {
	case 1:
		return true
	case -1:
		return false
	}
	// Exact fallback: the same start + FromExp(e) the interval engine
	// computes eagerly, so the resolved end is bit-identical to its End.
	d.end = d.start + sc.kern.scrub.FromExp(d.e)
	d.resolved = true
	return t < d.end
}
