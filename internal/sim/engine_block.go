package sim

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"raidrel/internal/analytic"
	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// BlockEngine is the batched structure-of-arrays implementation of the
// interval chronology. It consumes the RNG through a prefetched uniform
// column — one bulk rng.Uint64s refill ahead of a pre-logged exponential
// frontier — and runs the compiled kernel transforms as flat array math,
// while producing chronologies bit-identical to IntervalEngine: the same
// stream yields the same DDFs and the same log weight, draw for draw.
//
// Two lazy-transform shortcuts keep the per-iteration math sublinear in the
// draw count without breaking that identity:
//
//   - An operational draw (any generation) whose exponential variate lies
//     certainly above the slot's mission hazard H_s(M) (dist.CompareHazard,
//     guard-banded) is substituted with +Inf instead of being transformed —
//     H monotone means it is certainly past the remaining mission too.
//     Any value strictly above the mission is output-equivalent there: the
//     slot loop breaks without appending an episode, the defect window is
//     clipped to the mission either way, and a defect end truncated by the
//     drive failure differs only beyond the mission, where no query ever
//     looks. Under bias the censored log ratio (θ-1)·H(M) is precomputed
//     per slot for first generations and computed directly
//     (TiltedKernel.CensoredLogLR, one cumulative hazard instead of
//     quantile + cumulative hazard) for later ones, so the skipped draw's
//     weight factor is still bit-exact.
//   - Scrub completions stay raw uniforms: a defect stores its scrub draw
//     untransformed and resolves the exact end -log(u) -> FromExp (the
//     same value the interval engine computes eagerly, memoized) only on
//     its first liveness query. Defects never queried — the overwhelming
//     majority — never pay the log.
//
// The engine requires every configured transition distribution to compile
// to a specialized kernel (dist.Kernel.Compiled — Weibull or Exponential,
// i.e. everything the paper's model uses); generic scripted distributions
// and finite spare pools are rejected, as is the interval engine's spare
// restriction. The NHPP defect process is supported through the same
// column.
//
// Like the scalar engines it implements Engine and IntoSimulator for
// one-group use; the runner's block path drives the pooled scratch
// directly, simulating a whole block of groups per scratch acquisition,
// with the variance-reduction hooks (antithetic pairing, stratified first
// draw, control-variate indicator) applied per iteration.
//
// The column prefetches uniforms, so the generator is advanced further
// than the draws consumed; callers must not interleave other draws on the
// same generator mid-iteration. Every runner path reseeds per iteration
// (SeedStream), which makes the overdraw unobservable.
type BlockEngine struct {
	// Block is the preferred iterations-per-block for the runner's batched
	// path (0 = the configuration's VR block size, or DefaultVRBlock).
	Block int
}

var (
	_ Engine        = BlockEngine{}
	_ IntoSimulator = BlockEngine{}
)

const (
	// colChunk is the uniforms fetched on the column's first bulk RNG
	// refill: covers the ~170-draw base-case iteration in one fill most of
	// the time.
	colChunk = 192
	// colChunkMore is the refill size after the first: tilted iterations
	// overrun the first chunk by a fraction of it, and a short tail chunk
	// keeps the generator from running far past the draws the chronology
	// actually consumes.
	colChunkMore = 64
)

// drawCol is the prefetched draw column: raw uniforms filled in bulk, the
// exponential transform applied on demand at consumption (so draws whose
// log is never needed — scrub variates resolved lazily — never pay for
// it), and the stratification override for the iteration's first accepted
// uniform.
type drawCol struct {
	r     *rng.RNG
	pos   int // next entry to consume
	n     int // filled entries
	first bool
	// When strataK > 0 the next accepted (nonzero) uniform u is replaced
	// by (strataJ + u)/strataK before the exponential transform — the
	// within-block stratification of the first operational-failure draw.
	strataJ, strataK float64
	u                [colChunk]uint64
}

// reset binds the column to a generator for one iteration, dropping any
// prefetched tail (the runner reseeds per iteration) and arming stratum j
// of k (k = 0 disables stratification).
func (c *drawCol) reset(r *rng.RNG, j, k int) {
	c.r = r
	c.pos, c.n = 0, 0
	c.first = true
	c.strataJ, c.strataK = float64(j), float64(k)
}

// refill fetches the next chunk of raw uniforms: a full column first, then
// short tails. The chunking is invisible to the draw sequence — Uint64s is
// identical to sequential Uint64 calls regardless of slice length.
func (c *drawCol) refill() {
	n := colChunk
	if !c.first {
		n = colChunkMore
	}
	c.first = false
	c.r.Uint64s(c.u[:n])
	c.pos, c.n = 0, n
}

// nextUniform returns the next nonzero uniform in (0,1), bit-identical to
// rng.Float64Open on the same stream: zero uniforms are consumed and
// retried. The exponential transform -log(u) is left to the caller, who
// may never need it. The common case — entry available, nonzero — stays
// small enough to inline; refills and the (2^-53-probability) zero retry
// live in the slow path.
func (c *drawCol) nextUniform() float64 {
	if c.pos < c.n {
		u := float64(c.u[c.pos]>>11) / (1 << 53)
		c.pos++
		if u > 0 {
			return u
		}
	}
	return c.nextUniformSlow()
}

func (c *drawCol) nextUniformSlow() float64 {
	for {
		if c.pos == c.n {
			c.refill()
		}
		u := float64(c.u[c.pos]>>11) / (1 << 53)
		c.pos++
		if u > 0 {
			return u
		}
	}
}

// nextExp returns the next unit-exponential variate, bit-identical to
// rng.ExpFloat64 on the same stream.
func (c *drawCol) nextExp() float64 {
	if c.strataK > 0 {
		return c.nextExpStrata()
	}
	return -math.Log(c.nextUniform())
}

// nextExpStrata is the armed-stratum draw: the raw uniform is remapped
// into stratum strataJ of strataK before the exponential transform.
func (c *drawCol) nextExpStrata() float64 {
	u := (c.strataJ + c.nextUniform()) / c.strataK
	c.strataK = 0
	return -math.Log(u)
}

// nextFloat64 returns the next uniform in [0,1), bit-identical to
// rng.Float64 (no zero-skip) — the NHPP thinning acceptance draw.
func (c *drawCol) nextFloat64() float64 {
	if c.pos == c.n {
		c.refill()
	}
	u := float64(c.u[c.pos]>>11) / (1 << 53)
	c.pos++
	return u
}

// blockDefect is a latent defect with its scrub completion kept lazy: the
// effective end is min(natural scrub end, cap), where cap starts at the
// drive's own failure and may be lowered to a concomitant restore by the
// LdOp repair rule. The scrub draw is stored as its raw uniform — the
// exponential transform -log(u) and the kernel quantile are paid only on
// the first liveness query (memoized); defects never queried never
// transform at all.
type blockDefect struct {
	start float64
	cap   float64
	// ue holds the scrub draw: the raw uniform until the first liveness
	// query logs it (logged), the unit exponential after.
	ue       float64
	end      float64
	logged   bool
	resolved bool
}

// blockChronology is a slot's timeline in the block engine's lazy form.
// scan is the sweep's dead-prefix cursor: defects below it were found dead
// at an earlier (hence smaller, the sweep ascends) query time, and
// liveness is monotone, so they can never answer live again.
type blockChronology struct {
	ops     []opInterval
	defects []blockDefect
	scan    int
}

// blockScratch is the reusable per-worker state of the block engine: the
// compiled kernels, the draw column, per-slot chronologies, the merged
// failure sequence, and the per-slot acceleration constants (mission
// hazards, censored gen-1 log ratios, the control-variate expectation).
type blockScratch struct {
	kern   cfgKernels
	chrons []blockChronology
	fails  []intervalFailure
	col    drawCol
	// hm[s] = H_s(Mission), the base cumulative mission hazard of slot s's
	// operational-failure distribution — the gen-1 lazy-skip threshold and
	// the control variate's analytic input.
	hm []float64
	// lr1[s] is the censored gen-1 log likelihood ratio (θ-1)·H_s(M),
	// substituted for a provably censored first draw under bias.
	lr1 []float64
	// ez is the analytic expectation of the control variate: with the
	// indicator control, 1 - exp(-Σ_s H_s(M)); with the conditional-DDF
	// variate, the analytic.CondDDF quadrature (in [0, drives]).
	ez       float64
	latent   bool
	hasScrub bool
	// cond marks the conditional-DDF variate (VR.CondVariate): z becomes
	// the first-generation kill count κ summed over failing slots, judged
	// against the deterministic condWindow (mean TTR) and the drawn
	// defect states.
	cond       bool
	condWindow float64
	// condKern holds base (untilted) TTOp kernels for the cond quadrature
	// when the run is biased and sc.kern only compiled tilted ones.
	condKern []dist.Kernel
}

var blockScratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// prep compiles cfg into the scratch and precomputes the acceleration
// state. cfg must already be validated. On error the scratch is left
// released.
func (sc *blockScratch) prep(cfg *Config) error {
	if cfg.Spares != nil {
		return errUnsupported("block", "a finite spare pool")
	}
	if cfg.Topology.Coupled() {
		return errUnsupported("block", "a coupled component topology")
	}
	sc.kern.compile(cfg)
	if err := sc.checkCompiled(cfg); err != nil {
		sc.kern.release()
		return err
	}
	sc.latent = cfg.Trans.latentEnabled()
	sc.hasScrub = cfg.Trans.TTScrub != nil

	if cap(sc.chrons) < cfg.Drives {
		grown := make([]blockChronology, cfg.Drives)
		copy(grown, sc.chrons[:cap(sc.chrons)])
		sc.chrons = grown
	}
	sc.chrons = sc.chrons[:cfg.Drives]
	if cap(sc.hm) < cfg.Drives {
		sc.hm = make([]float64, cfg.Drives)
		sc.lr1 = make([]float64, cfg.Drives)
	}
	sc.hm = sc.hm[:cfg.Drives]
	sc.lr1 = sc.lr1[:cfg.Drives]
	sumH := 0.0
	for s := 0; s < cfg.Drives; s++ {
		if sc.kern.biasOp {
			tk := &sc.kern.ttopTilt[s]
			sc.hm[s] = tk.CumHazard(cfg.Mission)
			sc.lr1[s] = tk.CensoredLogLR(cfg.Mission)
		} else {
			sc.hm[s] = sc.kern.ttop[s].CumHazard(cfg.Mission)
			sc.lr1[s] = 0
		}
		sumH += sc.hm[s]
	}
	sc.ez = -math.Expm1(-sumH)
	sc.cond = cfg.VR.CondVariate
	if sc.cond {
		sc.prepCond(cfg)
	}
	return nil
}

// prepCond assembles the analytic.CondDDF model for the conditional-DDF
// variate and overwrites sc.ez with its exact expectation. Runs once per
// prep; the model and its closures are transient (only the scalar results
// are kept), so the pooled scratch pins nothing from cfg.
func (sc *blockScratch) prepCond(cfg *Config) {
	sc.condWindow = cfg.Trans.TTR.Mean()
	base := sc.kern.ttop
	if sc.kern.biasOp {
		// The quadrature needs the base law; under bias only tilted
		// kernels were compiled, so compile untilted ones on the side.
		if cap(sc.condKern) < cfg.Drives {
			sc.condKern = make([]dist.Kernel, cfg.Drives)
		}
		sc.condKern = sc.condKern[:cfg.Drives]
		for i := range sc.condKern {
			sc.condKern[i] = dist.Compile(cfg.ttopFor(i))
		}
		base = sc.condKern
	}
	slots := make([]analytic.CondSlot, cfg.Drives)
	for i := range slots {
		k := &base[i]
		slots[i] = analytic.CondSlot{CumHazard: k.CumHazard, Quantile: k.FromExp}
	}
	model := analytic.CondDDF{
		Mission:   cfg.Mission,
		Window:    sc.condWindow,
		Slots:     slots,
		Identical: cfg.SlotTTOp == nil,
		TKinks:    []float64{sc.condWindow},
	}
	var surv func(float64) float64
	var kinks []float64
	support := math.Inf(1)
	if sc.hasScrub {
		k := sc.kern.scrub
		surv = func(u float64) float64 { return math.Exp(-k.CumHazard(u)) }
		if l, ok := cfg.Trans.TTScrub.(interface{ Location() float64 }); ok && l.Location() > 0 {
			kinks = append(kinks, l.Location())
		}
		// Beyond H = 40 the survival is zero to double precision; the
		// live-defect integral saturates there (the mean scrub life).
		support = k.FromExp(40)
	}
	switch {
	case cfg.Trans.TTLdRate != nil:
		model.LiveMean = analytic.LiveDefectMeanNHPP(cfg.Trans.TTLdRate, cfg.Trans.TTLdRateMax, surv, kinks, support)
	case cfg.Trans.TTLd != nil:
		rate, _ := dist.AsPoissonRate(cfg.Trans.TTLd) // Validate gates on ok
		model.LiveMean = analytic.LiveDefectMean(rate, surv, kinks, support)
	}
	// μ(t) loses smoothness at the scrub kinks and its saturation point;
	// tell the outer quadrature.
	model.TKinks = append(model.TKinks, kinks...)
	if !math.IsInf(support, 1) {
		model.TKinks = append(model.TKinks, support)
	}
	sc.ez = model.EZ()
}

// checkCompiled verifies every configured distribution compiled to a
// specialized kernel; the block engine's exp-domain transforms have no
// generic fallback.
func (sc *blockScratch) checkCompiled(cfg *Config) error {
	reject := func(what string) error {
		return fmt.Errorf("sim: the block engine requires compiled (Weibull or Exponential) kernels, but %s does not compile; use IntervalEngine or EventEngine", what)
	}
	if sc.kern.biasOp {
		for i := range sc.kern.ttopTilt {
			if !sc.kern.ttopTilt[i].Compiled() {
				return reject(fmt.Sprintf("slot %d's TTOp distribution", i))
			}
		}
	} else {
		for i := range sc.kern.ttop {
			if !sc.kern.ttop[i].Compiled() {
				return reject(fmt.Sprintf("slot %d's TTOp distribution", i))
			}
		}
	}
	if !sc.kern.ttr.Compiled() {
		return reject("the TTR distribution")
	}
	if cfg.Trans.TTLd != nil {
		if sc.kern.biasLd {
			if !sc.kern.ttldTilt.Compiled() {
				return reject("the TTLd distribution")
			}
		} else if !sc.kern.ttld.Compiled() {
			return reject("the TTLd distribution")
		}
	}
	if cfg.Trans.TTScrub != nil && !sc.kern.scrub.Compiled() {
		return reject("the TTScrub distribution")
	}
	return nil
}

// release drops configuration references so the pooled scratch does not
// pin a caller's state, keeping backing arrays warm.
func (sc *blockScratch) release() {
	sc.kern.release()
	sc.col.r = nil
	for i := range sc.condKern {
		sc.condKern[i] = dist.Kernel{}
	}
	sc.condKern = sc.condKern[:0]
}

// Simulate implements Engine, discarding the importance-sampling weight.
func (e BlockEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	out, _, err := e.SimulateInto(cfg, r, nil)
	return out, err
}

// SimulateInto implements IntoSimulator: one chronology from r's stream,
// bit-identical to IntervalEngine.SimulateInto — same DDFs, same logW. The
// draw column prefetches, so r ends up advanced past the consumed draws;
// reseed per iteration (as every runner does) rather than chaining draws.
func (e BlockEngine) SimulateInto(cfg Config, r *rng.RNG, buf []DDF) ([]DDF, float64, error) {
	if err := cfg.Validate(); err != nil {
		return buf, 0, err
	}
	sc := blockScratchPool.Get().(*blockScratch)
	if err := sc.prep(&cfg); err != nil {
		blockScratchPool.Put(sc)
		return buf, 0, err
	}
	sc.col.reset(r, 0, 0)
	buf, logW, _ := sc.simulateGroup(&cfg, buf)
	sc.release()
	blockScratchPool.Put(sc)
	return buf, logW, nil
}

// simulateGroup runs one group chronology from the bound column, appending
// DDFs to buf. Returns the extended buf, the iteration's log weight, and
// the control-variate observation z: the indicator 1{any first-generation
// operational failure within the mission}, or the conditional-DDF kill
// count when VR.CondVariate is on. prep must have succeeded and col been
// reset.
func (sc *blockScratch) simulateGroup(cfg *Config, buf []DDF) ([]DDF, float64, float64) {
	chrons := sc.chrons
	logW := 0.0
	z := 0.0
	for i := range chrons {
		chrons[i].ops = chrons[i].ops[:0]
		chrons[i].defects = chrons[i].defects[:0]
		chrons[i].scan = 0
		lw, zi := sc.buildSlot(cfg, i, &chrons[i])
		logW += lw
		if zi {
			z = 1
		}
	}
	if sc.cond {
		// Must run before the sweep: the LdOp concomitant-repair rule
		// lowers defect caps, and the variate is defined on the pristine
		// first-generation draws.
		z = sc.condZ()
	}

	// Merge every operational failure, tagged with its slot — the same
	// slot-major append order and comparator as the interval engine, so the
	// sort permutes ties identically.
	fails := sc.fails[:0]
	for slot := range chrons {
		for _, op := range chrons[slot].ops {
			fails = append(fails, intervalFailure{slot: slot, op: op})
		}
	}
	sc.fails = fails
	slices.SortFunc(fails, func(a, b intervalFailure) int {
		switch {
		case a.op.Fail < b.op.Fail:
			return -1
		case a.op.Fail > b.op.Fail:
			return 1
		default:
			return 0
		}
	})

	var suppressUntil float64
	for _, f := range fails {
		t := f.op.Fail
		if t > cfg.Mission {
			break
		}
		if t < suppressUntil {
			continue
		}
		failedOthers := 0
		var defect *blockDefect
		defectStart := math.Inf(1)
		for k := range chrons {
			if k == f.slot {
				continue
			}
			if blockOpFailedAt(chrons[k].ops, t) {
				failedOthers++
				continue
			}
			// Defect starts are ascending within a slot, so the scan can
			// stop at the first start past t (nothing later covers t) or
			// past the best candidate (nothing later beats it), and the
			// first live defect found is the slot's min-start live one —
			// the same winner, under the same strict-< tie rule, as the
			// interval engine's full scan. The scan starts at the
			// dead-prefix cursor (failures sweep in ascending t and
			// liveness is monotone, so a leading dead defect stays dead)
			// and advances it over newly dead leading defects.
			ch := &chrons[k]
			ds := ch.defects
			for di := ch.scan; di < len(ds); di++ {
				d := &ds[di]
				if d.start > t || d.start >= defectStart {
					break
				}
				if sc.defectLive(d, t) {
					defectStart = d.start
					defect = d
					break
				}
				if di == ch.scan {
					ch.scan = di + 1
				}
			}
		}
		switch {
		case failedOthers >= cfg.Redundancy:
			buf = append(buf, DDF{Time: t, Cause: CauseOpOp})
			suppressUntil = f.op.RestoreEnd
		case failedOthers == cfg.Redundancy-1 && defect != nil:
			buf = append(buf, DDF{Time: t, Cause: CauseLdOp})
			suppressUntil = f.op.RestoreEnd
			// The defective drive is repaired with the failed one: lower
			// the lazy end bound to the concomitant restore, which makes
			// the effective end min(natural, cap, restore) — exactly the
			// interval engine's truncation.
			if f.op.RestoreEnd < defect.cap {
				defect.cap = f.op.RestoreEnd
			}
		}
	}
	return buf, logW, z
}

// condZ evaluates the conditional-DDF variate on the freshly built
// chronologies: for every slot whose first-generation failure T_s lands
// within the mission, count 1 if some mate would kill it — the mate's own
// first-generation failure T_m covers T_s under the deterministic
// mean-rebuild window (T_m ≤ T_s < T_m + W), or the mate is still in its
// first generation (T_m > T_s) with a drawn defect alive at T_s. Judged
// only against first-generation structures, whose joint law the
// analytic.CondDDF quadrature integrates exactly (sc.ez); defect liveness
// reuses the lazily memoized defectLive, so the sweep pays nothing twice.
// Must be called before the sweep mutates defect caps.
func (sc *blockScratch) condZ() float64 {
	chrons := sc.chrons
	w := sc.condWindow
	z := 0.0
	for s := range chrons {
		if len(chrons[s].ops) == 0 {
			continue // first-generation failure censored past the mission
		}
		t := chrons[s].ops[0].Fail
		kill := false
		for m := range chrons {
			if m == s {
				continue
			}
			mc := &chrons[m]
			if len(mc.ops) > 0 && mc.ops[0].Fail <= t {
				if t < mc.ops[0].Fail+w {
					kill = true
					break
				}
				// Restored before the window reached t; its gen-1 defects
				// died with the drive (cap), and gen-2 state is outside
				// the variate's conditioning.
				continue
			}
			// Mate still in generation 1 at t: every defect with start <= t
			// is first-generation (later generations start past T_m > t).
			ds := mc.defects
			for di := range ds {
				d := &ds[di]
				if d.start > t {
					break
				}
				if sc.defectLive(d, t) {
					kill = true
					break
				}
			}
			if kill {
				break
			}
		}
		if kill {
			z++
		}
	}
	return z
}

// blockOpFailedAt is opFailedAt without the binary search: block
// chronologies hold a handful of episodes, so a linear scan with an early
// break beats sort.Search's closure indirection. Episodes are ascending in
// Fail, making the predicates equivalent.
func blockOpFailedAt(ops []opInterval, t float64) bool {
	for i := range ops {
		if ops[i].Fail > t {
			return false
		}
		if t < ops[i].RestoreEnd {
			return true
		}
	}
	return false
}

// buildSlot lays out one slot's episodes and defects from the column,
// draw-for-draw identical to buildSlotChronology, with the gen-1 lazy skip
// applied. Returns the slot's log weight and whether its first-generation
// drive failed within the mission.
func (sc *blockScratch) buildSlot(cfg *Config, slot int, ch *blockChronology) (logW float64, z bool) {
	genStart := 0.0 // installation time of the current drive
	upFrom := 0.0   // operational-clock start of the current drive
	gen1 := true
	for {
		dt, logLR := sc.drawTTOp(cfg, slot, upFrom, gen1)
		logW += logLR
		fail := upFrom + dt
		end := fail
		if end > cfg.Mission {
			end = cfg.Mission
		}
		if sc.latent {
			logW += sc.appendDefects(cfg, ch, genStart, end, fail)
		}
		if fail > cfg.Mission {
			break
		}
		if gen1 {
			z = true
		}
		restore := fail + sc.kern.ttr.FromExp(sc.col.nextExp())
		ch.ops = append(ch.ops, opInterval{Fail: fail, RestoreEnd: restore})
		genStart = fail
		upFrom = restore
		gen1 = false
		if restore > cfg.Mission {
			break
		}
	}
	return logW, z
}

// drawTTOp is the column-fed counterpart of cfgKernels.drawTTOp with the
// hazard-domain censoring skip: when the exponential variate is certainly
// past the slot's full mission hazard it is certainly past the remaining
// mission too (H is monotone, upFrom >= 0), so +Inf stands in for the
// transformed draw (output-equivalent — see the engine comment). Under
// bias the censored log ratio stands in for the weight factor: the
// precomputed (θ-1)·H(M) for a first-generation drive, the same
// CensoredLogLR the full transform would reach for later generations —
// one cumulative hazard instead of a quantile plus a cumulative hazard.
func (sc *blockScratch) drawTTOp(cfg *Config, slot int, upFrom float64, gen1 bool) (dt, logLR float64) {
	e := sc.col.nextExp()
	if sc.kern.biasOp {
		tk := &sc.kern.ttopTilt[slot]
		if dist.CompareHazard(e/tk.Theta(), sc.hm[slot]) > 0 {
			if gen1 {
				return math.Inf(1), sc.lr1[slot]
			}
			return math.Inf(1), tk.CensoredLogLR(cfg.Mission - upFrom)
		}
		return tk.DrawLRFromExp(e, cfg.Mission-upFrom)
	}
	if dist.CompareHazard(e, sc.hm[slot]) > 0 {
		return math.Inf(1), 0
	}
	return sc.kern.ttop[slot].FromExp(e), 0
}

// appendDefects renewal-samples defect arrivals on [genStart, windowEnd)
// from the column, mirroring the interval engine's appendDefects draw for
// draw; scrub completions stay in the exponential domain.
func (sc *blockScratch) appendDefects(cfg *Config, ch *blockChronology, genStart, windowEnd, driveFail float64) float64 {
	logW := 0.0
	t := genStart
	if sc.kern.plainTTLd {
		for {
			t += sc.kern.ttld.FromExp(sc.col.nextExp())
			if t >= windowEnd {
				return 0
			}
			sc.pushDefect(ch, t, driveFail)
		}
	}
	for {
		next, logLR := sc.nextDefect(cfg, t, windowEnd)
		logW += logLR
		t = next
		if t >= windowEnd {
			return logW
		}
		sc.pushDefect(ch, t, driveFail)
	}
}

// pushDefect records a defect created at t, its scrub variate drawn (in
// stream order) but kept as the raw uniform, untransformed.
func (sc *blockScratch) pushDefect(ch *blockChronology, t, driveFail float64) {
	d := blockDefect{start: t, cap: driveFail}
	if sc.hasScrub {
		d.ue = sc.col.nextUniform()
	}
	ch.defects = append(ch.defects, d)
}

// nextDefect is the column-fed counterpart of cfgKernels.nextDefect for
// the non-plain processes (NHPP thinning, tilted renewal).
func (sc *blockScratch) nextDefect(cfg *Config, from, horizon float64) (float64, float64) {
	switch {
	case cfg.Trans.TTLdRate != nil:
		t := from
		for {
			t += sc.col.nextExp() / cfg.Trans.TTLdRateMax
			if t > cfg.Mission {
				return t, 0 // beyond the horizon; caller discards
			}
			rate := cfg.Trans.TTLdRate(t)
			if rate < 0 || rate > cfg.Trans.TTLdRateMax {
				if rate < 0 {
					rate = 0
				} else {
					rate = cfg.Trans.TTLdRateMax
				}
			}
			if sc.col.nextFloat64()*cfg.Trans.TTLdRateMax < rate {
				return t, 0
			}
		}
	case cfg.Trans.TTLd != nil:
		if sc.kern.biasLd {
			dt, logLR := sc.kern.ttldTilt.DrawLRFromExp(sc.col.nextExp(), horizon-from)
			return from + dt, logLR
		}
		return from + sc.kern.ttld.FromExp(sc.col.nextExp()), 0
	default:
		return math.Inf(1), 0
	}
}

// defectLive reports whether the defect covers time t (start <= t already
// checked by the caller): t must be below both the lazy cap and the
// natural scrub end. The first query pays the exponential transform
// -log(u) (rng.ExpFloat64's exact value, memoized in ue); each query then
// tests liveness with the banded dist.CompareExp against the elapsed
// time, falling back to the exact quantile — the same start + FromExp(e)
// the interval engine computes eagerly — only inside the guard band, and
// memoizing it. Defects never queried pay neither transform.
//
// Liveness is monotone: once false for some t it is false for every
// later t, because end and the natural scrub completion are fixed and
// cap only ever decreases (the LdOp concomitant-repair rule). The sweep's
// dead-prefix cursor relies on this.
func (sc *blockScratch) defectLive(d *blockDefect, t float64) bool {
	if t >= d.cap {
		return false
	}
	if d.resolved {
		return t < d.end
	}
	if !sc.hasScrub {
		return true // no scrub: the natural end is +Inf
	}
	if !d.logged {
		d.ue = -math.Log(d.ue)
		d.logged = true
	}
	switch sc.kern.scrub.CompareExp(d.ue, t-d.start) {
	case 1:
		return true
	case -1:
		return false
	}
	d.end = d.start + sc.kern.scrub.FromExp(d.ue)
	d.resolved = true
	return t < d.end
}
