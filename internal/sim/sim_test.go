package sim

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/markov"
	"raidrel/internal/rng"
)

// Heavier-than-paper rates make DDFs frequent enough to validate counts
// cheaply in tests.
func fastConfig() Config {
	return Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp: dist.MustExponential(1e-4), // MTBF 10,000 h
			TTR:  dist.MustExponential(1e-2), // MTTR 100 h
		},
	}
}

func TestConfigValidate(t *testing.T) {
	good := fastConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few drives", func(c *Config) { c.Drives = 1 }},
		{"zero redundancy", func(c *Config) { c.Redundancy = 0 }},
		{"redundancy >= drives", func(c *Config) { c.Redundancy = 8 }},
		{"zero mission", func(c *Config) { c.Mission = 0 }},
		{"infinite mission", func(c *Config) { c.Mission = math.Inf(1) }},
		{"nil TTOp", func(c *Config) { c.Trans.TTOp = nil }},
		{"nil TTR", func(c *Config) { c.Trans.TTR = nil }},
		{"scrub without latent", func(c *Config) {
			c.Trans.TTScrub = dist.MustExponential(1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := fastConfig()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestCauseString(t *testing.T) {
	if CauseOpOp.String() != "op+op" || CauseLdOp.String() != "ld+op" {
		t.Error("cause strings wrong")
	}
	if Cause(99).String() != "cause(99)" {
		t.Error("unknown cause string wrong")
	}
}

// With constant rates and no latent defects, the probability that a group's
// FIRST DDF occurs by time t must match the 3-state Markov chain's
// absorption probability — the one regime where the MTTDL worldview is
// exact.
func TestEventEngineMatchesMarkovAbsorption(t *testing.T) {
	cfg := fastConfig()
	cfg.Mission = 20000
	chain, err := markov.NewRAIDChain(7, 1e-4, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := chain.AbsorptionProbability(markov.RAIDAllGood, cfg.Mission)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 6000
	firstDDF := 0
	for i := 0; i < iters; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(7, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ddfs) > 0 {
			firstDDF++
		}
	}
	gotP := float64(firstDDF) / iters
	// Monte Carlo SE ~ sqrt(p(1-p)/n) ~ 0.006; allow 4 SE.
	if math.Abs(gotP-wantP) > 0.025 {
		t.Errorf("P(DDF by %v) = %v, Markov says %v", cfg.Mission, gotP, wantP)
	}
}

// With exponential distributions everywhere, the probability that a
// group's FIRST data loss happens by time t should track the Fig. 4
// constant-rate Markov chain's absorption probability. The chain ignores
// defect multiplicity and post-restore defect carryover, so rates are
// chosen to keep those second-order effects small and the tolerance
// allows for the residual bias.
func TestLatentChainMatchesMarkovAbsorption(t *testing.T) {
	const (
		lambdaOp = 1e-4
		lambdaLd = 5e-5
		muRest   = 1e-2
		muScrub  = 5e-3
		horizon  = 20000.0
	)
	chain, err := markov.NewFigureFourChain(markov.FigureFourRates{
		N: 7, LambdaOp: lambdaOp, LambdaLd: lambdaLd,
		MuRestore: muRest, MuScrub: muScrub,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := chain.AbsorptionProbability(markov.LDFullyFunctional, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    horizon,
		Trans: Transitions{
			TTOp:    dist.MustExponential(lambdaOp),
			TTR:     dist.MustExponential(muRest),
			TTLd:    dist.MustExponential(lambdaLd),
			TTScrub: dist.MustExponential(muScrub),
		},
	}
	const iters = 8000
	hit := 0
	for i := 0; i < iters; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(314, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ddfs) > 0 {
			hit++
		}
	}
	gotP := float64(hit) / iters
	if math.Abs(gotP-wantP) > 0.05 {
		t.Errorf("P(first loss by %v) = %v, Fig.4 chain says %v", horizon, gotP, wantP)
	}
}

// Redundancy-2 simulation with constant rates must track the double-
// parity Markov chain's absorption probability (sequential repair is the
// approximation: the simulator repairs drives concurrently, so it should
// be at least as reliable as the chain, within tolerance).
func TestRedundancy2MatchesDoubleParityChain(t *testing.T) {
	const (
		lambda  = 5e-4 // hot rates so triple overlaps occur
		mu      = 5e-3
		horizon = 40000.0
	)
	chain, err := markov.NewDoubleParityChain(8, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := chain.AbsorptionProbability(markov.DPAllGood, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Drives:     8,
		Redundancy: 2,
		Mission:    horizon,
		Trans: Transitions{
			TTOp: dist.MustExponential(lambda),
			TTR:  dist.MustExponential(mu),
		},
	}
	const iters = 6000
	hit := 0
	for i := 0; i < iters; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(777, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ddfs) > 0 {
			hit++
		}
	}
	gotP := float64(hit) / iters
	// The simulator's concurrent repairs make it slightly MORE reliable
	// than the single-crew chain; allow that direction generously and the
	// other tightly.
	if gotP > wantP+0.03 || gotP < wantP-0.15 {
		t.Errorf("P(triple loss by %v) = %v, chain says %v", horizon, gotP, wantP)
	}
}

// The interval engine must agree with the event engine statistically.
func TestEnginesCrossValidate(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	cfg.Mission = 30000

	const iters = 4000
	count := func(e Engine, seed uint64) (total, opop, ldop int) {
		for i := 0; i < iters; i++ {
			ddfs, err := e.Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
			for _, d := range ddfs {
				if d.Cause == CauseOpOp {
					opop++
				} else {
					ldop++
				}
			}
		}
		return total, opop, ldop
	}
	evTotal, evOpOp, evLdOp := count(EventEngine{}, 11)
	ivTotal, ivOpOp, ivLdOp := count(IntervalEngine{}, 12)
	if evTotal == 0 || ivTotal == 0 {
		t.Fatal("no DDFs generated; config too mild for the test")
	}
	rel := func(a, b int) float64 {
		return math.Abs(float64(a)-float64(b)) / math.Max(float64(a), float64(b))
	}
	if rel(evTotal, ivTotal) > 0.08 {
		t.Errorf("total DDFs disagree: event=%d interval=%d", evTotal, ivTotal)
	}
	if rel(evLdOp, ivLdOp) > 0.10 {
		t.Errorf("LdOp DDFs disagree: event=%d interval=%d", evLdOp, ivLdOp)
	}
	if rel(evOpOp+1, ivOpOp+1) > 0.25 {
		t.Errorf("OpOp DDFs disagree: event=%d interval=%d", evOpOp, ivOpOp)
	}
}

// Without latent defects every DDF must be OpOp.
func TestNoLatentMeansNoLdOp(t *testing.T) {
	cfg := fastConfig()
	res, err := Run(RunSpec{Config: cfg, Iterations: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDDFs == 0 {
		t.Fatal("expected some DDFs")
	}
	if res.LdOpDDFs != 0 {
		t.Errorf("latent defects disabled but %d LdOp DDFs", res.LdOpDDFs)
	}
	if res.OpOpDDFs != res.TotalDDFs {
		t.Errorf("cause accounting broken: %d op+op of %d total", res.OpOpDDFs, res.TotalDDFs)
	}
}

// With a very high defect rate and no scrubbing, essentially every
// operational failure beyond the earliest hours lands on a group with an
// outstanding defect: DDFs (almost all LdOp) approach the op-failure count.
func TestUnscrubbedDefectsDominate(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(1e-3) // defect every 1,000 h per drive
	res, err := Run(RunSpec{Config: cfg, Iterations: 1500, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Expected op failures per group ~ 8 × λ × mission corrected for
	// downtime; just require DDFs to be a large fraction of that scale.
	expOpFailures := 8 * 1e-4 * 87600.0
	perGroup := float64(res.TotalDDFs) / 1500
	if perGroup < 0.5*expOpFailures {
		t.Errorf("per-group DDFs %v; expected near op-failure count %v", perGroup, expOpFailures)
	}
	if res.LdOpDDFs < res.OpOpDDFs*5 {
		t.Errorf("expected LdOp to dominate: ld=%d op=%d", res.LdOpDDFs, res.OpOpDDFs)
	}
}

// Scrubbing must reduce DDFs monotonically as it gets faster (Fig. 9).
func TestScrubMonotonicity(t *testing.T) {
	base := fastConfig()
	base.Trans.TTLd = dist.MustExponential(1e-3)
	counts := make([]int, 0, 3)
	for _, scrub := range []dist.Distribution{
		nil,
		dist.MustWeibull(3, 336, 6),
		dist.MustWeibull(3, 12, 1),
	} {
		cfg := base
		cfg.Trans.TTScrub = scrub
		res, err := Run(RunSpec{Config: cfg, Iterations: 1200, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.TotalDDFs)
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2]) {
		t.Errorf("DDFs not decreasing with faster scrub: %v", counts)
	}
}

// An operational failure followed by a latent defect is not a DDF: with
// defects so rare they effectively never precede a failure, LdOp counts
// must be (near) zero even though defects do occur during rebuilds.
func TestLdAfterOpIsNotDDF(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(1e-9) // ~0.0007 defects per mission
	res, err := Run(RunSpec{Config: cfg, Iterations: 2000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.LdOpDDFs > 2 {
		t.Errorf("defects are vanishingly rare yet %d LdOp DDFs", res.LdOpDDFs)
	}
}

// RAID 6 (redundancy 2) must suffer orders of magnitude fewer data losses
// than RAID 5 under identical stress — the paper's closing argument.
func TestRaid6Extension(t *testing.T) {
	cfg5 := fastConfig()
	cfg5.Trans.TTLd = dist.MustExponential(5e-4)
	cfg5.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	cfg6 := cfg5
	cfg6.Redundancy = 2

	res5, err := Run(RunSpec{Config: cfg5, Iterations: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Run(RunSpec{Config: cfg6, Iterations: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res5.TotalDDFs < 100 {
		t.Fatalf("RAID5 config too mild: %d DDFs", res5.TotalDDFs)
	}
	// Under this deliberately heavy stress RAID 6's residual losses are
	// dominated by the double-failure-plus-defect path; an order of
	// magnitude improvement is the expected shape.
	if float64(res6.TotalDDFs) > float64(res5.TotalDDFs)/8 {
		t.Errorf("RAID6 losses %d not << RAID5 losses %d", res6.TotalDDFs, res5.TotalDDFs)
	}
}

// Once a DDF occurs another cannot occur until the first restores: DDF
// times within a group must be separated by at least the triggering
// failure's restore time (which is >= the TTR location when TTR has one).
func TestDDFSuppressionSpacing(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTR = dist.MustWeibull(2, 12, 6) // minimum restore 6 h
	cfg.Trans.TTLd = dist.MustExponential(2e-3)
	res, err := Run(RunSpec{Config: cfg, Iterations: 800, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, g := range res.PerGroup {
		for i := 1; i < len(g); i++ {
			pairs++
			if g[i].Time-g[i-1].Time < 6 {
				t.Fatalf("DDFs %v apart; restore floor is 6 h", g[i].Time-g[i-1].Time)
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no multi-DDF groups; config too mild for the test")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 48, 6)
	cfg.Mission = 20000
	run := func(workers int) *RunResult {
		res, err := Run(RunSpec{Config: cfg, Iterations: 500, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(7)
	if a.TotalDDFs != b.TotalDDFs || a.LdOpDDFs != b.LdOpDDFs {
		t.Fatalf("worker count changed results: %d/%d vs %d/%d",
			a.TotalDDFs, a.LdOpDDFs, b.TotalDDFs, b.LdOpDDFs)
	}
	for i := range a.PerGroup {
		if len(a.PerGroup[i]) != len(b.PerGroup[i]) {
			t.Fatalf("group %d differs across worker counts", i)
		}
		for j := range a.PerGroup[i] {
			if a.PerGroup[i][j] != b.PerGroup[i][j] {
				t.Fatalf("group %d event %d differs", i, j)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunSpec{Config: Config{}, Iterations: 1}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(RunSpec{Config: fastConfig(), Iterations: 0}); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestRunResultHelpers(t *testing.T) {
	res := &RunResult{PerGroup: [][]DDF{
		{{Time: 10, Cause: CauseOpOp}, {Time: 50, Cause: CauseLdOp}},
		{},
		{{Time: 30, Cause: CauseLdOp}},
	}}
	ev := res.EventTimes()
	if len(ev) != 3 || len(ev[0]) != 2 || ev[0][1] != 50 || len(ev[1]) != 0 {
		t.Errorf("EventTimes = %v", ev)
	}
	if res.DDFsBefore(30) != 2 {
		t.Errorf("DDFsBefore(30) = %d", res.DDFsBefore(30))
	}
	if res.DDFsBefore(5) != 0 || res.DDFsBefore(100) != 3 {
		t.Error("DDFsBefore edges wrong")
	}
}

// DDF times must lie within the mission and be sorted per group.
func TestChronologyInvariants(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(1e-3)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	for _, engine := range []Engine{EventEngine{}, IntervalEngine{}} {
		for i := 0; i < 500; i++ {
			ddfs, err := engine.Simulate(cfg, rng.ForStream(10, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			prev := 0.0
			for _, d := range ddfs {
				if d.Time < prev {
					t.Fatalf("%T: unsorted DDFs", engine)
				}
				if d.Time < 0 || d.Time > cfg.Mission {
					t.Fatalf("%T: DDF at %v outside mission", engine, d.Time)
				}
				if d.Cause != CauseOpOp && d.Cause != CauseLdOp {
					t.Fatalf("%T: invalid cause %v", engine, d.Cause)
				}
				prev = d.Time
			}
		}
	}
}

// With two drives and redundancy 1, a DDF requires overlapping episodes;
// with astronomically long MTBF no DDFs should ever occur.
func TestQuiescentGroupHasNoDDFs(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp: dist.MustExponential(1e-12),
			TTR:  dist.MustExponential(1),
		},
	}
	res, err := Run(RunSpec{Config: cfg, Iterations: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDDFs != 0 {
		t.Errorf("%d DDFs from a quiescent group", res.TotalDDFs)
	}
}
