package sim

import (
	"math"
	"strings"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/markov"
	"raidrel/internal/rng"
)

func TestTopologyValidate(t *testing.T) {
	exp := dist.MustExponential(1e-5)
	good := func() *Topology {
		return &Topology{Components: []Component{
			{Name: "expander", Drives: []int{0, 1, 2}, Paths: 2, TTOp: exp, TTR: exp},
		}}
	}
	if err := good().Validate(8); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	var nilTopo *Topology
	if err := nilTopo.Validate(8); err != nil {
		t.Fatalf("nil topology rejected: %v", err)
	}
	if nilTopo.Coupled() || (&Topology{}).Coupled() {
		t.Fatal("nil/empty topology must be flat")
	}
	if !good().Coupled() {
		t.Fatal("component topology must report coupled")
	}

	cases := []struct {
		name string
		mut  func(*Topology)
		want string
	}{
		{"no name", func(tp *Topology) { tp.Components[0].Name = "" }, "no name"},
		{"dup name", func(tp *Topology) { tp.Components = append(tp.Components, tp.Components[0]) }, "duplicate"},
		{"no drives", func(tp *Topology) { tp.Components[0].Drives = nil }, "covers no drive"},
		{"slot out of range", func(tp *Topology) { tp.Components[0].Drives = []int{8} }, "outside the group"},
		{"negative slot", func(tp *Topology) { tp.Components[0].Drives = []int{-1} }, "outside the group"},
		{"dup slot", func(tp *Topology) { tp.Components[0].Drives = []int{1, 1} }, "twice"},
		{"negative paths", func(tp *Topology) { tp.Components[0].Paths = -1 }, "negative path"},
		{"no ttop", func(tp *Topology) { tp.Components[0].TTOp = nil }, "TTOp"},
		{"no ttr", func(tp *Topology) { tp.Components[0].TTR = nil }, "TTR"},
	}
	for _, tc := range cases {
		tp := good()
		tc.mut(tp)
		err := tp.Validate(8)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Config-level cross-feature rules.
	cfg := fastConfig()
	cfg.Topology = good()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("coupled config rejected: %v", err)
	}
	cfg.Spares = &SparePolicy{Initial: 1}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "spare pool") {
		t.Errorf("spares+topology: err = %v", err)
	}
	cfg.Spares = nil
	cfg.VR = VR{Antithetic: true}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "variance reduction") {
		t.Errorf("vr+topology: err = %v", err)
	}
}

func TestTopologyStringDeterministic(t *testing.T) {
	var nilTopo *Topology
	if nilTopo.String() != "flat" || (&Topology{}).String() != "flat" {
		t.Fatal("flat topologies must print as \"flat\"")
	}
	mk := func() *Topology {
		return &Topology{Components: []Component{
			{Name: "enc", Drives: []int{0, 1}, TTOp: dist.MustExponential(1e-5), TTR: dist.MustExponential(1e-2)},
			{Name: "exp", Drives: []int{2, 3}, Paths: 2, TTOp: dist.MustExponential(2e-5), TTR: dist.MustExponential(1e-2)},
		}}
	}
	a, b := mk().String(), mk().String()
	if a != b {
		t.Fatalf("String not deterministic:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "enc") || !strings.Contains(a, "paths=2") {
		t.Errorf("String misses structure: %s", a)
	}
	if mk().String() == (&Topology{Components: []Component{
		{Name: "enc", Drives: []int{0, 1}, TTOp: dist.MustExponential(9e-5), TTR: dist.MustExponential(1e-2)},
	}}).String() {
		t.Error("different topologies print identically")
	}
}

// An explicitly flat (component-free) topology must compile down to
// exactly the nil-topology model: same DDF times, causes, and log weights
// per stream, for all three engines, plain and biased.
func TestFlatTopologyBitIdentical(t *testing.T) {
	base := fastConfig()
	base.Trans.TTLd = dist.MustExponential(5e-4)
	base.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	base.Mission = 30000

	biased := base
	biased.Bias = Bias{Op: 4}

	engines := []struct {
		name string
		e    IntoSimulator
	}{
		{"event", EventEngine{}},
		{"interval", IntervalEngine{}},
		{"block", BlockEngine{}},
	}
	for _, cfg := range []Config{base, biased} {
		for _, eng := range engines {
			flat := cfg
			flat.Topology = &Topology{}
			for seed := uint64(0); seed < 25; seed++ {
				a, lwA, errA := eng.e.SimulateInto(cfg, rng.ForStream(42, seed), nil)
				b, lwB, errB := eng.e.SimulateInto(flat, rng.ForStream(42, seed), nil)
				if errA != nil || errB != nil {
					t.Fatalf("%s: errs %v / %v", eng.name, errA, errB)
				}
				if lwA != lwB {
					t.Fatalf("%s seed %d: logW %v != %v", eng.name, seed, lwA, lwB)
				}
				if len(a) != len(b) {
					t.Fatalf("%s seed %d: %v != %v", eng.name, seed, a, b)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s seed %d: event %d: %+v != %+v", eng.name, seed, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// Scripted coupled scenario: a component outage makes the group
// unavailable (one onset event) and pauses the in-flight rebuild, which
// resumes with its remaining hours once the component is repaired.
func TestScriptedComponentOutagePausesRebuild(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Slot 0 fails at 100; slot 1 and all replacements never.
			TTOp: newScripted(100, 5000, 5000),
			TTR:  newScripted(50, 50),
		},
		Topology: &Topology{Components: []Component{{
			Name:   "enclosure",
			Drives: []int{0, 1},
			// The enclosure fails at 120 (mid-rebuild) and is repaired 80 h
			// later, at 200.
			TTOp: newScripted(120, 5000),
			TTR:  newScripted(80),
		}}},
	}
	var tr Trace
	ddfs, err := SimulateTraced(cfg, rng.New(1), &tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 1 || ddfs[0] != (DDF{Time: 120, Cause: CauseUnavail}) {
		t.Fatalf("events = %v, want one unavail onset at 120", ddfs)
	}
	// The rebuild started at 100 with TTR 50; it ran 20 h, was held for the
	// outage 120→200, and completes at 200 + remaining 30 = 230.
	var restores []float64
	for _, e := range tr.Events {
		if e.Kind == TraceOpRestore {
			restores = append(restores, e.Time)
		}
	}
	if len(restores) != 1 || restores[0] != 230 {
		t.Fatalf("restores = %v, want exactly [230]", restores)
	}
	if tr.Count(TraceCompFail) != 1 || tr.Count(TraceCompRestore) != 1 || tr.Count(TraceUnavail) != 1 {
		t.Fatalf("component trace counts wrong: %v", tr.Events)
	}
}

// Scripted coupled scenario: a second drive failure during the outage is a
// real data loss (the platters fail whether or not the expander routes to
// them), recorded on top of the earlier unavailability onset; the DDF
// suppression window stretches to the paused rebuild's eventual end.
func TestScriptedDataLossDuringOutage(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Slot 0 fails at 100, slot 1 at 160 (during the outage).
			TTOp: newScripted(100, 160, 5000, 5000),
			TTR:  newScripted(50, 50),
		},
		Topology: &Topology{Components: []Component{{
			Name:   "enclosure",
			Drives: []int{0, 1},
			TTOp:   newScripted(120, 5000),
			TTR:    newScripted(80),
		}}},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := []DDF{{Time: 120, Cause: CauseUnavail}, {Time: 160, Cause: CauseOpOp}}
	if len(ddfs) != 2 || ddfs[0] != want[0] || ddfs[1] != want[1] {
		t.Fatalf("events = %v, want %v", ddfs, want)
	}
}

// Dual-pathed components only go dark when every path is down: with one of
// two paths failing, nothing happens.
func TestDualPathedComponentSurvivesSinglePathLoss(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			TTOp: newScripted(5000, 5000),
			TTR:  newScripted(50),
		},
		Topology: &Topology{Components: []Component{{
			Name:   "expander",
			Drives: []int{0, 1},
			Paths:  2,
			// Path instances fail at 100 and 400; each repair takes 200 h,
			// so their down intervals [100,300] and [400,600] never overlap
			// and the component never goes fully down.
			TTOp: newScripted(100, 400, 5000, 5000),
			TTR:  newScripted(200, 200),
		}}},
	}
	var tr Trace
	ddfs, err := SimulateTraced(cfg, rng.New(1), &tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 0 {
		t.Fatalf("events = %v, want none (paths never overlap)", ddfs)
	}
	if tr.Count(TraceCompFail) != 2 || tr.Count(TraceUnavail) != 0 {
		t.Fatalf("trace = %v", tr.Events)
	}
}

// With drive failures switched off, the simulated first-unavailability
// probability of a dual-pathed component covering the whole group must
// match the component path chain's absorption probability exactly (both
// processes are the same CTMC).
func TestUnavailMatchesComponentPathChain(t *testing.T) {
	const (
		lambdaC = 2e-4
		muC     = 2e-3
		horizon = 40000.0
	)
	chain, err := markov.NewComponentPathChain(2, lambdaC, muC)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := chain.AbsorptionProbability(0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    horizon,
		Trans: Transitions{
			TTOp: dist.MustExponential(1e-9), // drives effectively never fail
			TTR:  dist.MustExponential(1e-2),
		},
		Topology: &Topology{Components: []Component{{
			Name: "expander", Drives: []int{0, 1, 2, 3, 4, 5, 6, 7}, Paths: 2,
			TTOp: dist.MustExponential(lambdaC),
			TTR:  dist.MustExponential(muC),
		}}},
	}
	res, err := RunSparse(RunSpec{Config: cfg, Iterations: 6000, Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDDFs != 0 {
		t.Fatalf("drive losses with drives disabled: %d", res.TotalDDFs)
	}
	gotP := float64(res.GroupsWithUnavail()) / float64(res.Groups)
	// Monte Carlo SE ~ sqrt(p(1-p)/6000); allow 4 SE.
	se := math.Sqrt(wantP * (1 - wantP) / 6000)
	if math.Abs(gotP-wantP) > 4*se+1e-9 {
		t.Errorf("P(unavail by %v) = %v, path chain says %v (±%v)", horizon, gotP, wantP, 4*se)
	}
}

// With exponential distributions everywhere and one single-path component
// carrying the whole group, the simulated P(≥1 data loss) must match the
// shared-component chain — which is exact here, because the paused
// rebuild's remaining exponential repair time is memoryless. This is the
// cross-check that pins the rebuild-pause coupling, not just the onset
// bookkeeping.
func TestCoupledDDFMatchesSharedComponentChain(t *testing.T) {
	const (
		lambda  = 2e-5
		mu      = 5e-3
		lambdaC = 5e-5
		muC     = 5e-4 // long outages: rebuilds pause for ~2000 h
		horizon = 87600.0
	)
	chain, err := markov.NewSharedComponentChain(7, lambda, mu, lambdaC, muC)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := chain.AbsorptionProbability(markov.SCAllGoodUp, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the coupling must matter — the same group without the shared
	// component loses data measurably less often.
	flat, err := markov.NewRAIDChain(7, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	flatP, err := flat.AbsorptionProbability(markov.RAIDAllGood, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if wantP <= flatP*1.05 {
		t.Fatalf("coupled chain %v barely above flat %v; rates too mild to test the coupling", wantP, flatP)
	}

	cfg := Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    horizon,
		Trans: Transitions{
			TTOp: dist.MustExponential(lambda),
			TTR:  dist.MustExponential(mu),
		},
		Topology: &Topology{Components: []Component{{
			Name: "expander", Drives: []int{0, 1, 2, 3, 4, 5, 6, 7},
			TTOp: dist.MustExponential(lambdaC),
			TTR:  dist.MustExponential(muC),
		}}},
	}
	const iters = 8000
	res, err := RunSparse(RunSpec{Config: cfg, Iterations: iters, Seed: 4242, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	gotP := float64(res.GroupsWithDDF()) / float64(res.Groups)
	se := math.Sqrt(wantP * (1 - wantP) / iters)
	if math.Abs(gotP-wantP) > 4*se {
		t.Errorf("P(loss by %v) = %v, shared-component chain says %v (±%v)", horizon, gotP, wantP, 4*se)
	}
	if res.GroupsWithUnavail() == 0 {
		t.Error("no unavailability episodes at these component rates")
	}
}

// Unavailability onsets must stay out of every loss statistic and in the
// unavailability counters, through tally, merge, and the flat loss index.
func TestSparseResultSeparatesUnavailFromLoss(t *testing.T) {
	var r SparseResult
	r.Observe(0, []DDF{{Time: 10, Cause: CauseUnavail}, {Time: 20, Cause: CauseOpOp}}, 0)
	r.Observe(1, nil, 0)
	r.Observe(2, []DDF{{Time: 5, Cause: CauseUnavail}}, 0)
	if r.TotalDDFs != 1 || r.OpOpDDFs != 1 || r.UnavailEvents != 2 {
		t.Fatalf("tallies: total=%d opop=%d unavail=%d", r.TotalDDFs, r.OpOpDDFs, r.UnavailEvents)
	}
	if got := r.GroupsWithDDF(); got != 1 {
		t.Errorf("GroupsWithDDF = %d, want 1", got)
	}
	if got := r.GroupsWithUnavail(); got != 2 {
		t.Errorf("GroupsWithUnavail = %d, want 2", got)
	}
	if ts := r.Times(); len(ts) != 1 || ts[0] != 20 {
		t.Errorf("loss times = %v, want [20]", ts)
	}
	if n := r.DDFsBefore(15); n != 0 {
		t.Errorf("DDFsBefore(15) = %d, want 0 (onset at 10 is not loss)", n)
	}
	total, opop, ldop := r.WeightedCauseTotals()
	if total != 1 || opop != 1 || ldop != 0 {
		t.Errorf("weighted totals = %v %v %v", total, opop, ldop)
	}
	if w := r.WeightedUnavailTotal(); w != 2 {
		t.Errorf("WeightedUnavailTotal = %v, want 2", w)
	}
	if ws := r.GroupWeights(); len(ws) != 1 {
		t.Errorf("GroupWeights = %v, want one entry", ws)
	}
	if counts := r.GroupCounts(100); len(counts) != 1 || counts[0] != 1 {
		t.Errorf("GroupCounts = %v, want [1]", counts)
	}

	var m SparseResult
	m.Observe(0, []DDF{{Time: 7, Cause: CauseUnavail}}, 0)
	r.Merge(&m)
	if r.UnavailEvents != 3 || r.TotalDDFs != 1 || r.Groups != 4 {
		t.Errorf("after merge: unavail=%d total=%d groups=%d", r.UnavailEvents, r.TotalDDFs, r.Groups)
	}
	r.Tally()
	if r.UnavailEvents != 3 || r.TotalDDFs != 1 {
		t.Errorf("after tally: unavail=%d total=%d", r.UnavailEvents, r.TotalDDFs)
	}
	d := r.Dense()
	if d.UnavailEvents != 3 || d.TotalDDFs != 1 {
		t.Errorf("dense: unavail=%d total=%d", d.UnavailEvents, d.TotalDDFs)
	}
}

// Importance sampling composes with coupled topologies: component draws
// are never tilted (their likelihood-ratio factor is 1), so the weighted
// loss estimate from a biased coupled run must agree with the plain
// coupled run.
func TestCoupledTopologyBiasedAgreesWithPlain(t *testing.T) {
	cfg := Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    20000,
		Trans: Transitions{
			TTOp: dist.MustExponential(3e-5),
			TTR:  dist.MustExponential(5e-3),
		},
		Topology: &Topology{Components: []Component{{
			Name: "expander", Drives: []int{0, 1, 2, 3, 4, 5, 6, 7},
			TTOp: dist.MustExponential(5e-5),
			TTR:  dist.MustExponential(1e-3),
		}}},
	}
	const iters = 20000
	plain, err := RunSparse(RunSpec{Config: cfg, Iterations: iters, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.Bias = Bias{Op: 2}
	biased, err := RunSparse(RunSpec{Config: bcfg, Iterations: iters, Seed: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	pPlain := float64(plain.GroupsWithDDF()) / float64(plain.Groups)
	sum := 0.0
	for _, w := range biased.GroupWeights() {
		sum += w
	}
	pBiased := sum / float64(biased.Groups)
	if pPlain == 0 || pBiased == 0 {
		t.Fatalf("no losses: plain=%v biased=%v", pPlain, pBiased)
	}
	rel := math.Abs(pPlain-pBiased) / pPlain
	if rel > 0.35 {
		t.Errorf("weighted biased estimate %v vs plain %v (rel %v)", pBiased, pPlain, rel)
	}
	if !biased.Weighted() {
		t.Error("biased run reports unweighted")
	}
}

// Satellite: at low (realistic) rates the redundancy-2 DDF probability is
// a rare event; the importance-sampled event-engine estimate must still
// track the Markov prediction. The reference is the parallel-repair chain,
// which is exact for the simulator's per-slot restore process; the classic
// single-crew double-parity chain brackets it from above (serialized
// repairs keep the group degraded for longer). Seed-pinned and
// tolerance-based.
func TestRedundancy2LowRateMatchesDoubleParityChain(t *testing.T) {
	const (
		lambda  = 1e-5 // MTBF 100,000 h — realistic rates
		mu      = 1e-2
		horizon = 20000.0 // short enough that the tilt stays well-conditioned
	)
	exact, err := markov.NewParallelRepairChain(8, 2, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := exact.AbsorptionProbability(0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	crew, err := markov.NewDoubleParityChain(8, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	crewP, err := crew.AbsorptionProbability(markov.DPAllGood, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if wantP >= crewP {
		t.Fatalf("parallel-repair chain %v not below single-crew chain %v", wantP, crewP)
	}

	cfg := Config{
		Drives:     8,
		Redundancy: 2,
		Mission:    horizon,
		Trans: Transitions{
			TTOp: dist.MustExponential(lambda),
			TTR:  dist.MustExponential(mu),
		},
		Bias: Bias{Op: 2},
	}
	const iters = 200000
	res, err := RunSparse(RunSpec{Config: cfg, Iterations: iters, Seed: 99, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range res.GroupWeights() {
		sum += w
	}
	gotP := sum / float64(res.Groups)
	if gotP == 0 {
		t.Fatal("no weighted losses; bias too weak")
	}
	rel := math.Abs(gotP-wantP) / wantP
	if rel > 0.50 {
		t.Errorf("weighted P(triple loss) = %v, exact chain says %v (rel err %v)", gotP, wantP, rel)
	}
}
