package sim

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestFleetValidation(t *testing.T) {
	good := FleetConfig{Groups: 3, Group: fastConfig()}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
	if err := (FleetConfig{Groups: 0, Group: fastConfig()}).Validate(); err == nil {
		t.Error("zero groups accepted")
	}
	bad := fastConfig()
	bad.Spares = &SparePolicy{Initial: 1}
	if err := (FleetConfig{Groups: 2, Group: bad}).Validate(); err == nil {
		t.Error("per-group spares accepted")
	}
	withBadPool := FleetConfig{Groups: 2, Group: fastConfig(),
		SharedSpares: &SparePolicy{Initial: -1}}
	if err := withBadPool.Validate(); err == nil {
		t.Error("invalid shared pool accepted")
	}
}

// A single-group fleet with unlimited spares must match the plain engine
// in expectation (sampling order differs, so compare statistics).
func TestFleetOfOneMatchesEngine(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	const iters = 4000
	single, fleet := 0, 0
	for i := 0; i < iters; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(600, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		single += len(ddfs)
		groups, err := SimulateFleet(FleetConfig{Groups: 1, Group: cfg}, rng.ForStream(601, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		fleet += len(groups[0].DDFs)
	}
	rel := float64(single-fleet) / float64(single)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.08 {
		t.Errorf("fleet-of-one disagrees with engine: %d vs %d", fleet, single)
	}
}

// Groups in a fleet with unlimited spares are independent: K groups yield
// ~K times the single-group DDF count.
func TestFleetScalesLinearlyWithoutSharing(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	count := func(groups, iters int, seed uint64) float64 {
		total := 0
		for i := 0; i < iters; i++ {
			res, err := SimulateFleet(FleetConfig{Groups: groups, Group: cfg}, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			for _, gr := range res {
				total += len(gr.DDFs)
			}
		}
		return float64(total) / float64(iters*groups)
	}
	perGroup1 := count(1, 3000, 610)
	perGroup4 := count(4, 750, 611)
	rel := (perGroup1 - perGroup4) / perGroup1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Errorf("per-group rate changed with fleet size: %v vs %v", perGroup1, perGroup4)
	}
}

// A starved shared pool couples the groups: the fleet suffers more DDFs
// than the same groups with unlimited spares, and a bigger shared pool
// recovers monotonically.
func TestFleetSharedSpareContention(t *testing.T) {
	cfg := fastConfig()
	run := func(pool *SparePolicy) int {
		total := 0
		for i := 0; i < 1200; i++ {
			res, err := SimulateFleet(FleetConfig{
				Groups:       4,
				Group:        cfg,
				SharedSpares: pool,
			}, rng.ForStream(620, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			for _, gr := range res {
				total += len(gr.DDFs)
			}
		}
		return total
	}
	unlimited := run(nil)
	starved := run(&SparePolicy{Initial: 0, ReplenishHours: 500})
	stocked := run(&SparePolicy{Initial: 8, ReplenishHours: 500})
	if starved <= unlimited*2 {
		t.Errorf("starved shared pool should multiply DDFs: %d vs unlimited %d", starved, unlimited)
	}
	if !(unlimited <= stocked && stocked <= starved) {
		t.Errorf("ordering violated: unlimited=%d stocked=%d starved=%d",
			unlimited, stocked, starved)
	}
}

// Cross-group coincidences never create DDFs: with 2 groups of 2 drives
// and one drive failing in each group simultaneously-ish, no DDF arises
// unless the coincidence is within one group.
func TestFleetDDFsAreGroupLocal(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp: dist.MustExponential(5e-4), // hot: overlaps guaranteed
			TTR:  dist.MustExponential(1e-3), // 1,000 h rebuilds
		},
	}
	sawDDF := false
	for i := 0; i < 400; i++ {
		res, err := SimulateFleet(FleetConfig{Groups: 2, Group: cfg}, rng.ForStream(630, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, gr := range res {
			for _, d := range gr.DDFs {
				sawDDF = true
				if d.Cause != CauseOpOp {
					t.Fatalf("no latent defects configured but cause %v", d.Cause)
				}
			}
		}
	}
	if !sawDDF {
		t.Fatal("expected some within-group DDFs at these rates")
	}
	// The same fleet, but each group has 1 drive... not expressible (min 2
	// drives); instead verify chronologies sorted per group.
	res, err := SimulateFleet(FleetConfig{Groups: 3, Group: cfg}, rng.ForStream(631, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range res {
		for j := 1; j < len(gr.DDFs); j++ {
			if gr.DDFs[j].Time < gr.DDFs[j-1].Time {
				t.Fatal("group DDFs unsorted")
			}
		}
	}
}
