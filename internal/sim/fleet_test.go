package sim

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestFleetValidation(t *testing.T) {
	good := FleetConfig{Groups: 3, Group: fastConfig()}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
	if err := (FleetConfig{Groups: 0, Group: fastConfig()}).Validate(); err == nil {
		t.Error("zero groups accepted")
	}
	bad := fastConfig()
	bad.Spares = &SparePolicy{Initial: 1}
	if err := (FleetConfig{Groups: 2, Group: bad}).Validate(); err == nil {
		t.Error("per-group spares accepted")
	}
	withBadPool := FleetConfig{Groups: 2, Group: fastConfig(),
		SharedSpares: &SparePolicy{Initial: -1}}
	if err := withBadPool.Validate(); err == nil {
		t.Error("invalid shared pool accepted")
	}
	if err := (FleetConfig{Groups: 2, Group: fastConfig(), MaxConcurrentRebuilds: -1}).Validate(); err == nil {
		t.Error("negative rebuild cap accepted")
	}
}

// Overflow and absurd-total rejection: Groups*Drives beyond the slot limit
// (or beyond int range entirely) must fail with a descriptive error, never
// wrap or try to allocate.
func TestFleetValidationRejectsOverflow(t *testing.T) {
	cfg := fastConfig()
	huge := FleetConfig{Groups: math.MaxInt/cfg.Drives + 1, Group: cfg}
	if err := huge.Validate(); err == nil {
		t.Error("int-overflowing Groups*Drives accepted")
	}
	absurd := FleetConfig{Groups: maxFleetDrives/cfg.Drives + 1, Group: cfg}
	if err := absurd.Validate(); err == nil {
		t.Error("absurd fleet total accepted")
	}
	// The largest permitted fleet must still validate.
	ok := FleetConfig{Groups: maxFleetDrives / cfg.Drives, Group: cfg}
	if err := ok.Validate(); err != nil {
		t.Errorf("maximum permitted fleet rejected: %v", err)
	}
}

// simulateFleetSeeded is the test shorthand: one chronology, per-group
// streams base..base+Groups-1.
func simulateFleetSeeded(t *testing.T, fc FleetConfig, seed, base uint64) ([]GroupDDFs, FleetStats) {
	t.Helper()
	res, st, err := SimulateFleet(fc, seed, base)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

// With unlimited repair slots and nil shared spares, every fleet group is
// bit-identical to an independent EventEngine run on the same RNG stream:
// the fleet engine's per-group streams and global-seq tie-breaks reproduce
// the single-group chronologies exactly. This is the cross-validation
// property test of the fleet engine's DDF semantics (its drifted
// predecessors disagreed with the engine on defect bookkeeping).
func TestFleetMatchesEngineBitIdentical(t *testing.T) {
	cfgs := map[string]Config{
		"NoDefects": fastConfig(),
	}
	withDefects := fastConfig()
	withDefects.Trans.TTLd = dist.MustExponential(5e-4)
	withDefects.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	cfgs["Scrubbed"] = withDefects
	noScrub := fastConfig()
	noScrub.Trans.TTLd = dist.MustExponential(5e-4)
	cfgs["NoScrub"] = noScrub
	raid6 := fastConfig()
	raid6.Redundancy = 2
	raid6.Trans.TTLd = dist.MustExponential(8e-4)
	raid6.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	cfgs["Raid6"] = raid6

	const (
		seed       = 700
		groups     = 16
		chronStart = 0
		chrons     = 40
	)
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			mismatches, events := 0, 0
			for c := chronStart; c < chrons; c++ {
				base := uint64(c * groups)
				fleet, _ := simulateFleetSeeded(t, FleetConfig{Groups: groups, Group: cfg}, seed, base)
				for g := 0; g < groups; g++ {
					single, err := (EventEngine{}).Simulate(cfg, rng.ForStream(seed, base+uint64(g)))
					if err != nil {
						t.Fatal(err)
					}
					events += len(single)
					if len(single) != len(fleet[g].DDFs) {
						mismatches++
						t.Errorf("chron %d group %d: fleet %d DDFs, engine %d", c, g, len(fleet[g].DDFs), len(single))
						continue
					}
					for j := range single {
						if single[j] != fleet[g].DDFs[j] {
							mismatches++
							t.Errorf("chron %d group %d event %d: fleet %+v, engine %+v", c, g, j, fleet[g].DDFs[j], single[j])
							break
						}
					}
				}
				if mismatches > 5 {
					t.Fatalf("too many mismatches; aborting")
				}
			}
			if events == 0 {
				t.Fatalf("no DDFs in %d groups; bit-identity test is vacuous", chrons*groups)
			}
		})
	}
}

// Groups in a fleet with unlimited spares are independent: K groups yield
// ~K times the single-group DDF count.
func TestFleetScalesLinearlyWithoutSharing(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	count := func(groups, iters int, seed uint64) float64 {
		total := 0
		for i := 0; i < iters; i++ {
			res, _ := simulateFleetSeeded(t, FleetConfig{Groups: groups, Group: cfg}, seed, uint64(i*groups))
			for _, gr := range res {
				total += len(gr.DDFs)
			}
		}
		return float64(total) / float64(iters*groups)
	}
	perGroup1 := count(1, 3000, 610)
	perGroup4 := count(4, 750, 611)
	rel := (perGroup1 - perGroup4) / perGroup1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Errorf("per-group rate changed with fleet size: %v vs %v", perGroup1, perGroup4)
	}
}

// A starved shared pool couples the groups: the fleet suffers more DDFs
// than the same groups with unlimited spares, and a bigger shared pool
// recovers monotonically.
func TestFleetSharedSpareContention(t *testing.T) {
	cfg := fastConfig()
	run := func(pool *SparePolicy) int {
		total := 0
		for i := 0; i < 1200; i++ {
			res, _ := simulateFleetSeeded(t, FleetConfig{
				Groups:       4,
				Group:        cfg,
				SharedSpares: pool,
			}, 620, uint64(i*4))
			for _, gr := range res {
				total += len(gr.DDFs)
			}
		}
		return total
	}
	unlimited := run(nil)
	starved := run(&SparePolicy{Initial: 0, ReplenishHours: 500})
	stocked := run(&SparePolicy{Initial: 8, ReplenishHours: 500})
	if starved <= unlimited*2 {
		t.Errorf("starved shared pool should multiply DDFs: %d vs unlimited %d", starved, unlimited)
	}
	if !(unlimited <= stocked && stocked <= starved) {
		t.Errorf("ordering violated: unlimited=%d stocked=%d starved=%d",
			unlimited, stocked, starved)
	}
}

// Cross-group coincidences never create DDFs: with 2 groups of 2 drives
// and one drive failing in each group simultaneously-ish, no DDF arises
// unless the coincidence is within one group.
func TestFleetDDFsAreGroupLocal(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp: dist.MustExponential(5e-4), // hot: overlaps guaranteed
			TTR:  dist.MustExponential(1e-3), // 1,000 h rebuilds
		},
	}
	sawDDF := false
	for i := 0; i < 400; i++ {
		res, _ := simulateFleetSeeded(t, FleetConfig{Groups: 2, Group: cfg}, 630, uint64(i*2))
		for _, gr := range res {
			for _, d := range gr.DDFs {
				sawDDF = true
				if d.Cause != CauseOpOp {
					t.Fatalf("no latent defects configured but cause %v", d.Cause)
				}
			}
		}
	}
	if !sawDDF {
		t.Fatal("expected some within-group DDFs at these rates")
	}
	res, _ := simulateFleetSeeded(t, FleetConfig{Groups: 3, Group: cfg}, 631, 0)
	for _, gr := range res {
		for j := 1; j < len(gr.DDFs); j++ {
			if gr.DDFs[j].Time < gr.DDFs[j-1].Time {
				t.Fatal("group DDFs unsorted")
			}
		}
	}
}
