package sim

import (
	"reflect"
	"sync"
	"testing"

	"raidrel/internal/rng"
)

// TestRunSparseMatchesSerialSimulate pins the whole streaming pipeline —
// SimulateInto fast path, per-worker scratch reuse, and the in-order
// channel merge — against the simplest possible reference: a serial loop
// calling Engine.Simulate with a fresh RNG per stream.
func TestRunSparseMatchesSerialSimulate(t *testing.T) {
	cfg := fastConfig()
	const n = 300
	want := &SparseResult{}
	for i := 0; i < n; i++ {
		ddfs, err := EventEngine{}.Simulate(cfg, rng.ForStream(99, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		want.Observe(i, ddfs, 0)
	}
	if want.TotalDDFs == 0 {
		t.Fatal("fast config produced no DDFs; test is vacuous")
	}

	got, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 99, Workers: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Groups != want.Groups || !reflect.DeepEqual(got.Events, want.Events) {
		t.Fatal("RunSparse differs from serial per-stream Simulate")
	}
	if got.TotalDDFs != want.TotalDDFs || got.OpOpDDFs != want.OpOpDDFs || got.LdOpDDFs != want.LdOpDDFs {
		t.Fatalf("tallies differ: (%d,%d,%d) vs (%d,%d,%d)",
			got.TotalDDFs, got.OpOpDDFs, got.LdOpDDFs, want.TotalDDFs, want.OpOpDDFs, want.LdOpDDFs)
	}
}

// TestRunSparseWorkerCountInvariance mirrors the dense invariance test on
// the sparse path: the event index must be bit-identical for any worker
// count.
func TestRunSparseWorkerCountInvariance(t *testing.T) {
	base := RunSpec{Config: paperBaseConfig(), Iterations: 400, Seed: 20070625}
	one := base
	one.Workers = 1
	seven := base
	seven.Workers = 7
	r1, err := RunSparse(one)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := RunSparse(seven)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Groups != r7.Groups || !reflect.DeepEqual(r1.Events, r7.Events) {
		t.Fatal("Workers:1 and Workers:7 produced different sparse results")
	}
	if r1.TotalDDFs == 0 {
		t.Error("base case produced no DDFs in 400 groups; invariance test is vacuous")
	}
}

// TestRunCollectObservesInOrder: whatever the worker count, the Collector
// sees iterations 0..n-1 in strictly increasing order.
func TestRunCollectObservesInOrder(t *testing.T) {
	const n = 500
	next := 0
	err := RunCollect(RunSpec{Config: fastConfig(), Iterations: n, Seed: 5, Workers: 7},
		CollectorFunc(func(iteration int, ddfs []DDF, logW float64) {
			if logW != 0 {
				t.Fatalf("iteration %d: unbiased run has nonzero log weight %v", iteration, logW)
			}
			if iteration != next {
				t.Fatalf("observed iteration %d, want %d", iteration, next)
			}
			next++
			for j := 1; j < len(ddfs); j++ {
				if ddfs[j].Time < ddfs[j-1].Time {
					t.Fatalf("iteration %d: events out of chronological order", iteration)
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if next != n {
		t.Fatalf("observed %d iterations, want %d", next, n)
	}
}

// TestSparseDenseMatchesPerStream: Dense() reconstructs exactly the
// per-group slices a store-everything run would hold, with nil (not
// empty) entries for event-free groups.
func TestSparseDenseMatchesPerStream(t *testing.T) {
	cfg := fastConfig()
	const n = 200
	sparse, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense := sparse.Dense()
	if len(dense.PerGroup) != n {
		t.Fatalf("dense has %d groups, want %d", len(dense.PerGroup), n)
	}
	for i := 0; i < n; i++ {
		want, err := EventEngine{}.Simulate(cfg, rng.ForStream(3, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dense.PerGroup[i], want) {
			t.Fatalf("group %d: dense %v != engine %v", i, dense.PerGroup[i], want)
		}
	}
	if dense.TotalDDFs != sparse.TotalDDFs {
		t.Fatal("dense tally differs")
	}
}

// TestSparseMergeComposition mirrors the dense offset-composition test:
// [0,k) merged with [k,n) run at Offset k equals a single [0,n) run.
func TestSparseMergeComposition(t *testing.T) {
	cfg := fastConfig()
	const n, k = 300, 110
	whole, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	head, err := RunSparse(RunSpec{Config: cfg, Iterations: k, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Force the flat-times cache to check Merge invalidates it.
	before := head.DDFsBefore(cfg.Mission)
	tail, err := RunSparse(RunSpec{Config: cfg, Iterations: n - k, Seed: 7, Offset: k, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	head.Merge(tail)
	if head.Groups != n {
		t.Fatalf("merged %d groups, want %d", head.Groups, n)
	}
	if !reflect.DeepEqual(head.Events, whole.Events) {
		t.Fatal("offset-batched sparse run differs from single run")
	}
	if got := head.DDFsBefore(cfg.Mission); got != before+tail.TotalDDFs {
		t.Errorf("post-merge DDFsBefore = %d, want %d", got, before+tail.TotalDDFs)
	}
}

func TestSparseResultHelpers(t *testing.T) {
	r := &SparseResult{}
	r.Observe(0, nil, 0)
	r.Observe(1, []DDF{{Time: 50, Cause: CauseOpOp}, {Time: 60, Cause: CauseLdOp}}, 0)
	r.Observe(2, nil, 0)
	r.Observe(3, []DDF{{Time: 10, Cause: CauseLdOp}}, 0)
	r.Observe(4, nil, 0)

	if r.Groups != 5 {
		t.Errorf("Groups = %d, want 5", r.Groups)
	}
	if r.TotalDDFs != 3 || r.OpOpDDFs != 1 || r.LdOpDDFs != 2 {
		t.Errorf("tallies (%d,%d,%d), want (3,1,2)", r.TotalDDFs, r.OpOpDDFs, r.LdOpDDFs)
	}
	if k := r.GroupsWithDDF(); k != 2 {
		t.Errorf("GroupsWithDDF = %d, want 2", k)
	}
	if ts := r.Times(); !reflect.DeepEqual(ts, []float64{10, 50, 60}) {
		t.Errorf("Times = %v", ts)
	}
	if r.DDFsBefore(55) != 2 || r.DDFsBefore(5) != 0 || r.DDFsBefore(100) != 3 {
		t.Error("DDFsBefore wrong")
	}
	if got := r.GroupCounts(55); !reflect.DeepEqual(got, []float64{1, 1}) {
		t.Errorf("GroupCounts(55) = %v, want [1 1]", got)
	}
	if got := r.GroupCounts(100); !reflect.DeepEqual(got, []float64{2, 1}) {
		t.Errorf("GroupCounts(100) = %v, want [2 1]", got)
	}
	if got := r.GroupCounts(5); got != nil {
		t.Errorf("GroupCounts(5) = %v, want nil", got)
	}

	// Tally from raw events (the checkpoint-restore path).
	restored := &SparseResult{Groups: r.Groups, Events: r.Events}
	restored.Tally()
	if restored.TotalDDFs != 3 || restored.OpOpDDFs != 1 || restored.LdOpDDFs != 2 {
		t.Error("Tally from events wrong")
	}

	dense := r.Dense()
	if len(dense.PerGroup) != 5 || dense.PerGroup[0] != nil || dense.PerGroup[2] != nil || dense.PerGroup[4] != nil {
		t.Error("Dense materialized empty groups as non-nil")
	}
	if !reflect.DeepEqual(dense.PerGroup[1], []DDF{{Time: 50, Cause: CauseOpOp}, {Time: 60, Cause: CauseLdOp}}) {
		t.Error("Dense group 1 wrong")
	}
}

// Regression test for the cache-invalidation race: a live progress reader
// querying a SparseResult while a campaign keeps accumulating must be
// safe. The original code rebuilt the flat-times cache under a sync.Once
// that Observe reassigned concurrently — a data race the -race detector
// flags; the mutex version must stay silent.
func TestSparseResultConcurrentAccess(t *testing.T) {
	r := &SparseResult{}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			var ddfs []DDF
			if i%3 == 0 {
				ddfs = []DDF{{Time: float64(i % 100), Cause: CauseOpOp}}
			}
			r.Observe(i, ddfs, 0)
			if i%50 == 0 {
				other := &SparseResult{}
				other.Observe(0, []DDF{{Time: 1, Cause: CauseLdOp}}, 0.5)
				r.Merge(other)
			}
		}
	}()
	for j := 0; j < 2000; j++ {
		r.Times()
		r.TimesAndWeights()
		r.DDFsBefore(50)
		r.GroupsWithDDF()
		r.GroupWeights()
		r.GroupCounts(75)
		r.WeightedCauseTotals()
		r.Weighted()
	}
	close(done)
	wg.Wait()
}
