package sim

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestSlotTTOpValidation(t *testing.T) {
	cfg := fastConfig()
	cfg.SlotTTOp = make([]dist.Distribution, 3) // wrong length
	if err := cfg.Validate(); err == nil {
		t.Error("mismatched SlotTTOp length accepted")
	}
	cfg.SlotTTOp = make([]dist.Distribution, cfg.Drives) // all nil: fall back
	if err := cfg.Validate(); err != nil {
		t.Errorf("nil-entry overrides rejected: %v", err)
	}
}

// A group whose slots all override to distribution D must behave exactly
// like a group whose shared TTOp is D.
func TestSlotOverridesEquivalentToShared(t *testing.T) {
	shared := fastConfig()
	shared.Trans.TTOp = dist.MustExponential(2e-4)

	overridden := fastConfig() // base TTOp stays 1e-4 but is fully shadowed
	overridden.SlotTTOp = make([]dist.Distribution, overridden.Drives)
	for i := range overridden.SlotTTOp {
		overridden.SlotTTOp[i] = dist.MustExponential(2e-4)
	}

	count := func(cfg Config) int {
		total := 0
		for i := 0; i < 2000; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(77, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	a, b := count(shared), count(overridden)
	if a != b {
		t.Fatalf("identical sampling paths diverged: shared=%d overridden=%d", a, b)
	}
}

// Mixing one frail vintage into a healthy group raises the DDF rate above
// the all-healthy group and below the all-frail group.
func TestMixedVintageBracketing(t *testing.T) {
	healthy := dist.MustExponential(5e-5)
	frail := dist.MustExponential(5e-4)

	run := func(slotDist func(i int) dist.Distribution) int {
		cfg := fastConfig()
		cfg.Trans.TTOp = healthy
		cfg.SlotTTOp = make([]dist.Distribution, cfg.Drives)
		for i := range cfg.SlotTTOp {
			cfg.SlotTTOp[i] = slotDist(i)
		}
		total := 0
		for i := 0; i < 3000; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(88, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	allHealthy := run(func(int) dist.Distribution { return healthy })
	allFrail := run(func(int) dist.Distribution { return frail })
	mixed := run(func(i int) dist.Distribution {
		if i < 4 {
			return frail
		}
		return healthy
	})
	if !(allHealthy < mixed && mixed < allFrail) {
		t.Errorf("bracketing violated: healthy=%d mixed=%d frail=%d",
			allHealthy, mixed, allFrail)
	}
}

// Both engines must agree under heterogeneous slots too.
func TestMixedVintageEnginesAgree(t *testing.T) {
	cfg := fastConfig()
	cfg.Mission = 30000
	cfg.SlotTTOp = make([]dist.Distribution, cfg.Drives)
	for i := range cfg.SlotTTOp {
		if i%2 == 0 {
			cfg.SlotTTOp[i] = dist.MustWeibull(1.4873, 7.5012e4, 0)
		} else {
			cfg.SlotTTOp[i] = dist.MustWeibull(1.0987, 4.5444e5, 0)
		}
	}
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	count := func(e Engine, seed uint64) int {
		total := 0
		for i := 0; i < 4000; i++ {
			ddfs, err := e.Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	a := count(EventEngine{}, 90)
	b := count(IntervalEngine{}, 91)
	if a == 0 || b == 0 {
		t.Fatal("no DDFs; config too mild")
	}
	rel := float64(a-b) / float64(a)
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.1 {
		t.Errorf("engines disagree on mixed vintages: %d vs %d", a, b)
	}
}
