package sim

import (
	"strings"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// The full feature × engine support matrix, enforced uniformly: every
// inexpressible combination is rejected — by EngineSupports, by the
// runner, and by the engine's own SimulateInto — with a descriptive error;
// every expressible one runs.
func TestEngineFeatureMatrix(t *testing.T) {
	topo := func() *Topology {
		return &Topology{Components: []Component{{
			Name: "enc", Drives: []int{0, 1},
			TTOp: dist.MustExponential(1e-5),
			TTR:  dist.MustExponential(1e-3),
		}}}
	}
	features := []struct {
		name string
		mut  func(*Config)
	}{
		{"plain", func(c *Config) {}},
		{"bias", func(c *Config) { c.Bias = Bias{Op: 4} }},
		{"spares", func(c *Config) { c.Spares = &SparePolicy{Initial: 1, ReplenishHours: 24} }},
		{"topology", func(c *Config) { c.Topology = topo() }},
		{"vr", func(c *Config) { c.VR = VR{Antithetic: true} }},
		{"bias+topology", func(c *Config) { c.Bias = Bias{Op: 4}; c.Topology = topo() }},
	}
	engines := []struct {
		name string
		e    Engine
	}{
		{"event", nil}, // nil defaults to EventEngine
		{"event-explicit", EventEngine{}},
		{"interval", IntervalEngine{}},
		{"block", BlockEngine{}},
	}
	// want[feature][engine] is the required error substring; "" means the
	// combination must be accepted.
	want := map[string]map[string]string{
		"plain":    {"event": "", "event-explicit": "", "interval": "", "block": ""},
		"bias":     {"event": "", "event-explicit": "", "interval": "", "block": ""},
		"spares":   {"event": "", "event-explicit": "", "interval": "finite spare pool", "block": "finite spare pool"},
		"topology": {"event": "", "event-explicit": "", "interval": "coupled component topology", "block": "coupled component topology"},
		"vr": {
			"event": "variance reduction requires the block engine", "event-explicit": "variance reduction requires the block engine",
			"interval": "variance reduction requires the block engine", "block": "",
		},
		"bias+topology": {"event": "", "event-explicit": "", "interval": "coupled component topology", "block": "coupled component topology"},
	}

	for _, f := range features {
		for _, e := range engines {
			cfg := fastConfig()
			cfg.Mission = 2000 // keep the accepted runs cheap
			f.mut(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("%s: config invalid before engine choice: %v", f.name, err)
			}
			wantSub := want[f.name][e.name]

			gateErr := EngineSupports(e.e, cfg)
			runErr := RunCollect(RunSpec{Config: cfg, Iterations: 8, Seed: 1, Workers: 2, Engine: e.e},
				CollectorFunc(func(int, []DDF, float64) {}))
			for which, err := range map[string]error{"EngineSupports": gateErr, "RunCollect": runErr} {
				if wantSub == "" {
					if err != nil {
						t.Errorf("%s × %s: %s rejected expressible combination: %v", f.name, e.name, which, err)
					}
				} else if err == nil || !strings.Contains(err.Error(), wantSub) {
					t.Errorf("%s × %s: %s = %v, want substring %q", f.name, e.name, which, err, wantSub)
				}
			}

			// The engines' own SimulateInto entry points agree with the
			// gate for their per-slot rows (VR is a runner-level scheme the
			// engines never see, so it is exempt here).
			if f.name == "vr" {
				continue
			}
			var into IntoSimulator
			switch e.e.(type) {
			case IntervalEngine:
				into = IntervalEngine{}
			case BlockEngine:
				into = BlockEngine{}
			default:
				continue
			}
			_, _, err := into.SimulateInto(cfg, rng.New(7), nil)
			if wantSub == "" {
				if err != nil {
					t.Errorf("%s × %s: SimulateInto rejected expressible combination: %v", f.name, e.name, err)
				}
			} else if err == nil || !strings.Contains(err.Error(), wantSub) {
				t.Errorf("%s × %s: SimulateInto = %v, want substring %q", f.name, e.name, err, wantSub)
			}
		}
	}

	// Spares + coupled topology is inexpressible on any engine and dies at
	// Validate.
	cfg := fastConfig()
	cfg.Spares = &SparePolicy{Initial: 1}
	cfg.Topology = topo()
	if err := cfg.Validate(); err == nil {
		t.Error("spares+topology passed Validate")
	}
}
