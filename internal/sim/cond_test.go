package sim

import (
	"math"
	"reflect"
	"testing"

	"raidrel/internal/dist"
)

// condBaseConfig is the paper's scrubbed base case — the configuration the
// conditional-DDF variate exists for: scrubbing erases defect persistence,
// so the gen-1 indicator control is powerless and nearly all variance is
// the defect-coincidence coin flip the cond variate conditions on.
func condBaseConfig() Config {
	return Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp:    dist.MustWeibull(1.12, 461386, 0),
			TTR:     dist.MustWeibull(2, 12, 6),
			TTLd:    dist.MustWeibull(1, 9259, 0),
			TTScrub: dist.MustWeibull(3, 168, 6),
		},
	}
}

// condRun runs iterations of the block engine with the cond variate on and
// returns the result (with VR tallies) for inspection.
func condRun(t *testing.T, cfg Config, iters int, seed uint64) *SparseResult {
	t.Helper()
	cfg.VR = VR{CondVariate: true, BlockSize: 256}
	res := &SparseResult{}
	if err := RunCollect(RunSpec{
		Config: cfg, Iterations: iters, Seed: seed, Workers: 4,
		Engine: BlockEngine{},
	}, res); err != nil {
		t.Fatal(err)
	}
	if res.VR == nil || len(res.VR.Blocks) == 0 {
		t.Fatal("cond run produced no VR tallies")
	}
	return res
}

// condMoments extracts the weighted mean of the variate and of the DDF
// indicator plus their per-iteration tallies from the block sums.
func condMoments(res *SparseResult) (n int, meanY, meanZ float64) {
	var sy, sz float64
	for _, b := range res.VR.Blocks {
		sy += b.Y
		sz += b.Z
		n += b.N
	}
	return n, sy / float64(n), sz / float64(n)
}

// TestCondVariateUnbiasedPlain checks the variate's defining property on
// the scrubbed base case without importance sampling: the sample mean of z
// must match the analytic expectation EZ, and the DDF estimate must be
// unaffected by computing it (same streams, same events).
func TestCondVariateUnbiasedPlain(t *testing.T) {
	const iters = 1 << 16
	res := condRun(t, condBaseConfig(), iters, 11)
	n, meanY, meanZ := condMoments(res)
	if n != iters {
		t.Fatalf("tallied %d iterations, want %d", n, iters)
	}
	ez := res.VR.EZ
	if !(ez > 0) || ez > float64(condBaseConfig().Drives) {
		t.Fatalf("EZ = %v outside (0, drives]", ez)
	}
	// z is a per-iteration count in [0, drives] with variance well under
	// drives²; a 5σ band at this n is far below the tolerance used.
	se := math.Sqrt(ez * (1 + ez) / float64(n)) // crude overestimate of sd(z̄)
	if d := math.Abs(meanZ - ez); d > 6*se+1e-3 {
		t.Errorf("mean z = %v vs analytic EZ = %v (Δ=%v, allowed %v)", meanZ, ez, d, 6*se+1e-3)
	}
	// The variate must correlate with the DDF indicator — that is its
	// whole point in this regime. Anything below ~0.5 would mean the
	// conditioning missed the dominant loss path.
	var acc struct{ syy, szz, syz, my, mz float64 }
	acc.my, acc.mz = meanY, meanZ
	for _, b := range res.VR.Blocks {
		y := b.Y/float64(b.N) - acc.my
		z := b.Z/float64(b.N) - acc.mz
		acc.syy += y * y
		acc.szz += z * z
		acc.syz += y * z
	}
	r2 := acc.syz * acc.syz / (acc.syy * acc.szz)
	t.Logf("p̂=%v EZ=%v z̄=%v block-mean r²=%.3f (cv factor %.1f×)", meanY, ez, meanZ, r2, 1/(1-r2))
	if r2 < 0.5 {
		t.Errorf("block-mean r² = %.3f, want >= 0.5 — the cond variate lost its correlation", r2)
	}
}

// TestCondVariateUnbiasedTilted repeats the check under a θ-tilt: the
// LR-weighted mean of z must still match the untilted analytic EZ, because
// the full-path likelihood ratio makes every weighted functional of the
// drawn chronology base-measure unbiased.
func TestCondVariateUnbiasedTilted(t *testing.T) {
	const iters = 1 << 16
	cfg := condBaseConfig()
	cfg.Bias.Op = 4
	res := condRun(t, cfg, iters, 12)
	n, meanY, meanZ := condMoments(res)
	ez := res.VR.EZ
	// Weighted observations are heavier-tailed; allow a wider band.
	if d := math.Abs(meanZ - ez); d > 0.05*ez+5e-3 {
		t.Errorf("weighted mean z = %v vs analytic EZ = %v (Δ=%v)", meanZ, ez, d)
	}
	if !(meanY > 0) {
		t.Error("tilted run saw no weighted DDF mass")
	}
	t.Logf("tilted: n=%d p̂=%v EZ=%v z̄=%v", n, meanY, ez, meanZ)
}

// TestCondVariatePreservesEventStream pins the variate's zero-interference
// guarantee: with only CondVariate on (no antithetic pairing, no
// stratification) the stream mapping is untouched, so the observed event
// stream must be bit-identical to the plain interval-engine run — the
// variate reads the drawn chronology, never redraws it.
func TestCondVariatePreservesEventStream(t *testing.T) {
	const iters = 4096
	for _, seed := range []uint64{1, 7, 42} {
		cfg := condBaseConfig()
		ref := &SparseResult{}
		if err := RunCollect(RunSpec{
			Config: cfg, Iterations: iters, Seed: seed, Workers: 3,
			Engine: IntervalEngine{},
		}, ref); err != nil {
			t.Fatal(err)
		}
		got := condRun(t, cfg, iters, seed)
		if !reflect.DeepEqual(got.Events, ref.Events) {
			t.Fatalf("seed %d: cond-variate block events differ from interval engine's", seed)
		}
	}
}

// TestCondVariateValidation covers the configuration gates: both controls
// at once, and a non-memoryless renewal defect process.
func TestCondVariateValidation(t *testing.T) {
	cfg := condBaseConfig()
	cfg.VR = VR{ControlVariate: true, CondVariate: true}
	if err := cfg.Validate(); err == nil {
		t.Error("both controls at once validated")
	}
	cfg = condBaseConfig()
	cfg.VR = VR{CondVariate: true}
	cfg.Trans.TTLd = dist.MustWeibull(2, 9259, 0) // not memoryless
	if err := cfg.Validate(); err == nil {
		t.Error("cond variate with a non-memoryless TTLd validated")
	}
	cfg.Trans.TTLd = dist.MustExponential(1.0 / 9259)
	if err := cfg.Validate(); err != nil {
		t.Errorf("cond variate with exponential TTLd rejected: %v", err)
	}
}

// TestCondVariateNoDefects exercises the pure second-failure-in-window
// reduction of the variate: without a defect process, EZ collapses to the
// window-coincidence integral and z to the window-kill count, both still
// matching.
func TestCondVariateNoDefects(t *testing.T) {
	cfg := Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    87600,
		Trans: Transitions{
			TTOp: dist.MustExponential(2.5e-5),
			TTR:  dist.MustExponential(1.0 / 100), // long repairs: window kills measurable
		},
	}
	const iters = 1 << 16
	res := condRun(t, cfg, iters, 3)
	n, _, meanZ := condMoments(res)
	ez := res.VR.EZ
	se := math.Sqrt(ez * (1 + ez) / float64(n))
	if d := math.Abs(meanZ - ez); d > 6*se+1e-3 {
		t.Errorf("no-defect mean z = %v vs analytic EZ = %v (Δ=%v)", meanZ, ez, d)
	}
}
