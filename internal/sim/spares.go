package sim

import (
	"fmt"
	"math"
)

// SparePolicy models a finite spare-drive pool. The paper's state diagram
// assumes "a spare HDD is available" at every failure; with a finite pool
// a failed drive must wait for a replacement to arrive before its rebuild
// can start, stretching the exposure window in exactly the way long
// logistics chains do in practice.
//
// Semantics: the shelf starts with Initial spares. Every failure
// immediately places a replacement order that arrives ReplenishHours
// later. If a spare is in stock the rebuild starts at the failure instant;
// otherwise it starts when the earliest outstanding order arrives. The
// sampled TTR then runs from the rebuild start.
type SparePolicy struct {
	Initial        int     `json:"initial"`
	ReplenishHours float64 `json:"replenish_hours,omitempty"`
}

// Validate checks the policy.
func (p *SparePolicy) Validate() error {
	if p == nil {
		return nil
	}
	if p.Initial < 0 {
		return fmt.Errorf("sim: spare pool cannot start negative (%d)", p.Initial)
	}
	if !(p.ReplenishHours >= 0) || math.IsInf(p.ReplenishHours, 0) {
		return fmt.Errorf("sim: invalid replenish time %v", p.ReplenishHours)
	}
	return nil
}

// sparePool is the engine-side state of a SparePolicy. Consumed orders
// advance a head index instead of re-slicing the front, so the backing
// array survives reset and a pooled engine's steady-state failures
// allocate nothing once the array has grown to the chronology's order
// depth.
type sparePool struct {
	policy *SparePolicy
	stock  int
	orders []float64 // arrival times of outstanding orders, ascending
	head   int       // orders[:head] have been consumed
}

// newSparePool returns engine state, or nil for the infinite-spares
// default.
func newSparePool(p *SparePolicy) *sparePool {
	if p == nil {
		return nil
	}
	return &sparePool{policy: p, stock: p.Initial}
}

// reset re-arms the pool for a new chronology under policy p (which may be
// nil: every rebuildStart then returns its argument), keeping the orders
// backing array.
func (s *sparePool) reset(p *SparePolicy) {
	s.policy = p
	s.stock = 0
	if p != nil {
		s.stock = p.Initial
	}
	s.orders = s.orders[:0]
	s.head = 0
}

// rebuildStart registers a failure at time t and returns when its rebuild
// can begin.
func (s *sparePool) rebuildStart(t float64) float64 {
	if s == nil || s.policy == nil {
		return t
	}
	// Materialize orders that have arrived by now.
	for s.head < len(s.orders) && s.orders[s.head] <= t {
		s.stock++
		s.head++
	}
	if s.head == len(s.orders) {
		// Fully drained: rewind so the backing array is reused.
		s.orders = s.orders[:0]
		s.head = 0
	}
	// Place the replacement order for this failure. Orders share a fixed
	// lead time and failures are processed in time order, so the slice
	// stays sorted. Simultaneous failures append in processing order:
	// each claims its own order, so ties neither lose nor double-count a
	// replenishment.
	s.orders = append(s.orders, t+s.policy.ReplenishHours)
	if s.stock > 0 {
		s.stock--
		return t
	}
	// Claim the earliest outstanding order.
	start := s.orders[s.head]
	s.head++
	return start
}
