package sim

import (
	"math"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// cfgKernels is a Config's transition distributions compiled to sampler
// kernels (dist.Compile): per-draw constants precomputed, dispatch
// devirtualized, and — under bias — the θ-tilt fused with the
// likelihood-ratio bookkeeping. Both engines compile the configuration
// into their pooled scratch at the top of every run; compilation is a
// handful of type switches (no allocation once the per-slot slices have
// warmed up), which is noise next to one group chronology, and keeping it
// inside the engines means the public Engine/IntoSimulator contracts and
// every caller stay unchanged.
//
// Kernel draws are bit-identical to the interface draws they replace
// (dist.Kernel's contract), so engines may mix kernel and interface paths
// — the traced run, scripted test distributions, checkpoint resume — and
// still reproduce the same chronology from the same stream.
type cfgKernels struct {
	ttop     []dist.Kernel       // per slot; honours SlotTTOp overrides
	ttopTilt []dist.TiltedKernel // per slot, compiled when Bias.Op is active
	ttr      dist.Kernel
	ttld     dist.Kernel
	ttldTilt dist.TiltedKernel
	scrub    dist.Kernel
	biasOp   bool
	biasLd   bool
	// plainTTLd marks the dominant defect configuration — homogeneous
	// renewal process, no tilt — so the hot loops can draw straight from
	// the ttld kernel without re-dispatching on the process type at every
	// arrival.
	plainTTLd bool
}

// compile resolves cfg's distributions into kernels, reusing the per-slot
// backing arrays across runs. cfg must already be validated.
func (k *cfgKernels) compile(cfg *Config) {
	k.biasOp = cfg.Bias.opEnabled()
	k.biasLd = cfg.Bias.ldEnabled()

	if k.biasOp {
		if cap(k.ttopTilt) < cfg.Drives {
			k.ttopTilt = make([]dist.TiltedKernel, cfg.Drives)
		}
		k.ttopTilt = k.ttopTilt[:cfg.Drives]
		for i := range k.ttopTilt {
			k.ttopTilt[i] = dist.CompileTilted(cfg.ttopFor(i), cfg.Bias.Op)
		}
	} else {
		if cap(k.ttop) < cfg.Drives {
			k.ttop = make([]dist.Kernel, cfg.Drives)
		}
		k.ttop = k.ttop[:cfg.Drives]
		for i := range k.ttop {
			k.ttop[i] = dist.Compile(cfg.ttopFor(i))
		}
	}

	k.ttr = dist.Compile(cfg.Trans.TTR)
	k.plainTTLd = cfg.Trans.TTLd != nil && !k.biasLd
	if cfg.Trans.TTLd != nil {
		if k.biasLd {
			k.ttldTilt = dist.CompileTilted(cfg.Trans.TTLd, cfg.Bias.Ld)
		} else {
			k.ttld = dist.Compile(cfg.Trans.TTLd)
		}
	}
	if cfg.Trans.TTScrub != nil {
		k.scrub = dist.Compile(cfg.Trans.TTScrub)
	}
}

// release drops the distribution references the kernels retain, keeping
// the per-slot backing arrays for the next run. Pooled scratch must not
// pin a caller's configuration beyond its SimulateInto call.
func (k *cfgKernels) release() {
	for i := range k.ttop {
		k.ttop[i] = dist.Kernel{}
	}
	for i := range k.ttopTilt {
		k.ttopTilt[i] = dist.TiltedKernel{}
	}
	k.ttop = k.ttop[:0]
	k.ttopTilt = k.ttopTilt[:0]
	k.ttr = dist.Kernel{}
	k.ttld = dist.Kernel{}
	k.ttldTilt = dist.TiltedKernel{}
	k.scrub = dist.Kernel{}
}

// drawTTOp samples a slot's next operational-failure delay measured from
// `from`, returning the delay and (under bias) the draw's log likelihood
// ratio, censored at the residual mission: the caller discards events
// past cfg.Mission, so a draw landing beyond it must carry the censored
// survival-mass ratio to keep the weight bounded.
func (k *cfgKernels) drawTTOp(cfg *Config, slot int, from float64, r *rng.RNG) (dt, logLR float64) {
	if k.biasOp {
		return k.ttopTilt[slot].DrawLR(cfg.Mission-from, r)
	}
	return k.ttop[slot].Draw(r), 0
}

// nextDefect returns the absolute time of the next latent-defect arrival
// after `from`, or +Inf when the defect process is disabled, together
// with the draw's importance-sampling log likelihood ratio (0 unless
// Bias.Ld is active). The homogeneous case renewal-samples TTLd through
// the compiled kernel — tilted and censored at `horizon`, the time beyond
// which the caller discards the arrival; the NHPP case thins a Poisson
// stream at TTLdRateMax against the instantaneous rate.
func (k *cfgKernels) nextDefect(cfg *Config, from, horizon float64, r *rng.RNG) (float64, float64) {
	switch {
	case cfg.Trans.TTLdRate != nil:
		t := from
		for {
			t += r.ExpFloat64() / cfg.Trans.TTLdRateMax
			if t > cfg.Mission {
				return t, 0 // beyond the horizon; caller discards
			}
			rate := cfg.Trans.TTLdRate(t)
			if rate < 0 || rate > cfg.Trans.TTLdRateMax {
				// A misbehaving rate function would silently bias the
				// process; clamp to the declared bound.
				if rate < 0 {
					rate = 0
				} else {
					rate = cfg.Trans.TTLdRateMax
				}
			}
			if r.Float64()*cfg.Trans.TTLdRateMax < rate {
				return t, 0
			}
		}
	case cfg.Trans.TTLd != nil:
		if k.biasLd {
			dt, logLR := k.ttldTilt.DrawLR(horizon-from, r)
			return from + dt, logLR
		}
		return from + k.ttld.Draw(r), 0
	default:
		return math.Inf(1), 0
	}
}
