package sim

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// scriptedDist returns preset values in order, then repeats its final
// value. It lets tests pin the engine's exact event algebra the way the
// paper's Fig. 5 walks through a concrete timing diagram.
type scriptedDist struct {
	values []float64
	next   *int
}

var _ dist.Distribution = scriptedDist{}

func newScripted(values ...float64) scriptedDist {
	i := 0
	return scriptedDist{values: values, next: &i}
}

func (s scriptedDist) Sample(*rng.RNG) float64 {
	i := *s.next
	if i >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	*s.next = i + 1
	return s.values[i]
}

func (s scriptedDist) PDF(float64) float64      { return 0 }
func (s scriptedDist) CDF(float64) float64      { return 0 }
func (s scriptedDist) Quantile(float64) float64 { return 0 }
func (s scriptedDist) Mean() float64            { return 0 }
func (s scriptedDist) Variance() float64        { return 0 }

// The event engine's sampling order is fixed: at t=0 it draws TTOp for
// slots 0..n-1 then TTLd for slots 0..n-1 (when enabled); afterwards each
// event draws in processing order. The scripted scenarios below exploit
// that to stage the paper's Fig. 5 situations exactly.

// Scenario 1: an operational failure lands while another drive carries an
// uncorrected defect — one LdOp DDF at exactly the failure instant.
func TestScriptedLdOpDDF(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Slot 0 fails at 100; slot 1 never (within mission).
			TTOp: newScripted(100, 5000, 5000),
			// The restore for slot 0's failure takes 20 h.
			TTR: newScripted(20),
			// Defect arrivals: slot 0 gets one at 400 (after its failure the
			// schedule restarts; values consumed in order), slot 1 at 60.
			TTLd: newScripted(400, 60, 5000, 5000, 5000),
			// The defect would be scrubbed 200 h after creation — too late.
			TTScrub: newScripted(200, 200, 200),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 1 {
		t.Fatalf("DDFs = %v, want exactly one", ddfs)
	}
	if ddfs[0].Time != 100 || ddfs[0].Cause != CauseLdOp {
		t.Fatalf("DDF = %+v, want {100 ld+op}", ddfs[0])
	}
}

// Scenario 2: the same geometry but the scrub completes first — no DDF.
// "Latent defects are corrected ... data integrity preserved."
func TestScriptedScrubBeatsFailure(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			TTOp:    newScripted(100, 5000, 5000),
			TTR:     newScripted(20),
			TTLd:    newScripted(400, 60, 5000, 5000, 5000),
			TTScrub: newScripted(30, 200, 200), // corrected at 90, failure at 100
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 0 {
		t.Fatalf("DDFs = %v, want none (scrub finished at 90)", ddfs)
	}
}

// Scenario 3: defect created AFTER the failure is not a DDF ("a latent
// defect followed by an operational failure results in a DDF" — but not
// the reverse).
func TestScriptedDefectAfterFailureNoDDF(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			TTOp: newScripted(100, 5000, 5000),
			TTR:  newScripted(20),
			// Slot 1's defect arrives at 110 — during slot 0's rebuild.
			TTLd:    newScripted(400, 110, 5000, 5000, 5000),
			TTScrub: newScripted(200, 200, 200),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 0 {
		t.Fatalf("DDFs = %v, want none (defect postdates the failure)", ddfs)
	}
}

// Scenario 4: two overlapping operational failures are an OpOp DDF at the
// second failure's instant; after both restore, a third overlap repeats.
func TestScriptedOpOpDDF(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Slot 0 fails at 100 (restore 100+50=150); slot 1 fails at 120,
			// inside the window -> DDF at 120.
			TTOp: newScripted(100, 120, 5000, 5000),
			TTR:  newScripted(50, 50),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 1 || ddfs[0].Time != 120 || ddfs[0].Cause != CauseOpOp {
		t.Fatalf("DDFs = %v, want [{120 op+op}]", ddfs)
	}
}

// Scenario 5: suppression — a third failure inside the DDF's restore
// window is not a second DDF ("Once a DDF has occurred, a subsequent one
// cannot occur until the first is restored").
func TestScriptedSuppression(t *testing.T) {
	cfg := Config{
		Drives:     3,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Failures at 100 (slot 0), 120 (slot 1), 130 (slot 2).
			// The 120 failure is the DDF (restore 120+100=220); the 130
			// failure falls inside [120, 220) and must be suppressed.
			TTOp: newScripted(100, 120, 130, 5000, 5000, 5000),
			TTR:  newScripted(100, 100, 100),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 1 || ddfs[0].Time != 120 {
		t.Fatalf("DDFs = %v, want only the 120 event", ddfs)
	}
}

// Scenario 6: the drive's own defect does not make its own failure a DDF
// ("Op failure must be a different HDD than the one with a Ld").
func TestScriptedOwnDefectNotDDF(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			TTOp: newScripted(100, 5000, 5000),
			TTR:  newScripted(20),
			// The defect lands on slot 0 itself at 60; slot 1 stays clean.
			TTLd:    newScripted(60, 400, 5000, 5000, 5000),
			TTScrub: newScripted(200, 200, 200),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 0 {
		t.Fatalf("DDFs = %v, want none (defect on the failing drive itself)", ddfs)
	}
}

// Scenario 7: the DDF's concomitant repair clears the involved defect —
// a fourth event soon after the restore does NOT see it again ("the TTR
// for the failure is the same as the concomitant operational failure").
func TestScriptedConcomitantRepairClearsDefect(t *testing.T) {
	cfg := Config{
		Drives:     2,
		Redundancy: 1,
		Mission:    1000,
		Trans: Transitions{
			// Slot 0 fails at 100 (LdOp DDF), restores at 120; then slot 0
			// fails AGAIN at 120+30=150. Without the concomitant repair the
			// slot-1 defect (natural scrub at 60+500=560) would trigger a
			// second DDF at 150.
			TTOp:    newScripted(100, 5000, 30, 5000, 5000),
			TTR:     newScripted(20, 20),
			TTLd:    newScripted(400, 60, 5000, 5000, 5000, 5000),
			TTScrub: newScripted(500, 500, 500),
		},
	}
	ddfs, err := (EventEngine{}).Simulate(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ddfs) != 1 || ddfs[0].Time != 100 || ddfs[0].Cause != CauseLdOp {
		t.Fatalf("DDFs = %v, want only {100 ld+op}: the concomitant repair must clear the defect", ddfs)
	}
}
