package sim

import "fmt"

// Engine feature support matrix. Config.Validate accepts every expressible
// configuration; whether a given engine can execute it is a separate,
// per-engine question answered here, uniformly, so the runner, the service
// layer, and direct engine callers all reject inexpressible combinations
// with the same descriptive errors:
//
//	feature              event  interval  block
//	bias (IntoSimulator)   ✓       ✓        ✓
//	finite spares          ✓       –        –
//	coupled topology       ✓       –        –
//	variance reduction     –       –        ✓
//
// The per-slot engines precompute each slot's chronology independently, so
// anything that couples the slots — a shared spare pool, a shared
// component — is event-engine-only; the variance-reduction schemes are
// defined over block-mean tallies only the block engine produces.

// engineName returns the human name used in gating errors.
func engineName(e Engine) string {
	switch e.(type) {
	case nil, EventEngine:
		return "event"
	case IntervalEngine:
		return "interval"
	case BlockEngine:
		return "block"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// errUnsupported formats the uniform per-slot-engine rejection.
func errUnsupported(engine, feature string) error {
	return fmt.Errorf("sim: the %s engine cannot model %s (slots are precomputed independently); use EventEngine", engine, feature)
}

// errVRNeedsBlock is the uniform rejection of VR off the block engine.
func errVRNeedsBlock() error {
	return fmt.Errorf("sim: variance reduction requires the block engine (set Engine: BlockEngine{})")
}

// EngineSupports reports whether engine (nil meaning the default
// EventEngine) can execute cfg, returning a descriptive error naming the
// unsupported feature otherwise. The runner calls it before dispatching;
// each engine's SimulateInto also enforces its own rows, so direct callers
// get the same errors.
func EngineSupports(engine Engine, cfg Config) error {
	if engine == nil {
		engine = EventEngine{}
	}
	name := engineName(engine)
	perSlot := false
	switch engine.(type) {
	case IntervalEngine, BlockEngine:
		perSlot = true
	}
	if perSlot {
		if cfg.Spares != nil {
			return errUnsupported(name, "a finite spare pool")
		}
		if cfg.Topology.Coupled() {
			return errUnsupported(name, "a coupled component topology")
		}
	}
	if cfg.VR.Enabled() {
		if _, ok := engine.(BlockEngine); !ok {
			return errVRNeedsBlock()
		}
	}
	if cfg.Bias.Enabled() {
		if _, ok := engine.(IntoSimulator); !ok {
			// Engine.Simulate has no channel for the likelihood-ratio
			// weight; silently running it biased would corrupt the estimate.
			return fmt.Errorf("sim: importance sampling requires an engine implementing IntoSimulator (weights would be lost)")
		}
	}
	return nil
}
