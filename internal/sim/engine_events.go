package sim

import (
	"container/heap"
	"math"

	"raidrel/internal/rng"
)

// EventEngine simulates a RAID-group chronology with a discrete-event
// queue. It is the reference implementation of the DDF semantics; the
// IntervalEngine cross-validates it.
type EventEngine struct{}

var _ Engine = EventEngine{}

// slotState is the mutable per-drive-slot state of the event engine.
type slotState struct {
	failed     bool
	restoreEnd float64
	gen        int
	defects    map[int64]float64 // defect id -> creation time, current drive only
}

// Simulate implements Engine.
func (EventEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	return simulateEvents(cfg, r, nil)
}

// SimulateTraced runs one chronology while streaming every event (drive
// failures, restores, defect creations and corrections, DDFs) to obs in
// time order. Pass a *Trace to record the full Fig.-5-style timeline.
func SimulateTraced(cfg Config, r *rng.RNG, obs Observer) ([]DDF, error) {
	return simulateEvents(cfg, r, obs)
}

func simulateEvents(cfg Config, r *rng.RNG, obs Observer) ([]DDF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	emit := func(e TraceEvent) {
		if obs != nil {
			obs.Observe(e)
		}
	}
	slots := make([]slotState, cfg.Drives)
	for i := range slots {
		slots[i].defects = make(map[int64]float64, 4)
	}
	spares := newSparePool(cfg.Spares)
	var (
		q             eventQueue
		seq, defectID int64
		ddfs          []DDF
		suppressUntil float64
	)
	push := func(t float64, kind eventKind, slot, gen int, id int64, arg float64) {
		if t > cfg.Mission {
			return
		}
		seq++
		heap.Push(&q, &event{time: t, seq: seq, kind: kind, slot: slot, gen: gen, id: id, arg: arg})
	}
	scheduleOpFail := func(slot int, from float64) {
		push(from+cfg.ttopFor(slot).Sample(r), evOpFail, slot, slots[slot].gen, 0, 0)
	}
	scheduleDefect := func(slot int, from float64) {
		if !cfg.Trans.latentEnabled() {
			return
		}
		push(cfg.nextDefect(from, r), evDefectArrive, slot, slots[slot].gen, 0, 0)
	}
	for i := 0; i < cfg.Drives; i++ {
		scheduleOpFail(i, 0)
		scheduleDefect(i, 0)
	}

	for q.Len() > 0 {
		ev, ok := heap.Pop(&q).(*event)
		if !ok {
			break
		}
		if ev.time > cfg.Mission {
			break
		}
		s := &slots[ev.slot]
		switch ev.kind {
		case evOpFail:
			if ev.gen != s.gen {
				continue
			}
			// DDF determination happens at the instant of the failure,
			// before this slot's state changes.
			failedOthers, defectSlot := 0, -1
			defectStart := math.Inf(1)
			for k := range slots {
				if k == ev.slot {
					continue
				}
				o := &slots[k]
				switch {
				case o.failed:
					failedOthers++
				case len(o.defects) > 0:
					for _, start := range o.defects {
						if start < defectStart {
							defectStart = start
							defectSlot = k
						}
					}
				}
			}
			emit(TraceEvent{Time: ev.time, Kind: TraceOpFail, Slot: ev.slot})
			// The failure itself: old drive out, replacement in; its data
			// (and latent defects) are gone, and defect generation on the
			// replacement starts immediately (write errors during rebuild
			// are possible but do not themselves constitute a DDF).
			s.failed = true
			s.gen++
			clear(s.defects)
			// With a finite pool the rebuild waits for a spare to arrive.
			s.restoreEnd = spares.rebuildStart(ev.time) + cfg.Trans.TTR.Sample(r)
			push(s.restoreEnd, evOpRestore, ev.slot, s.gen, 0, 0)
			scheduleDefect(ev.slot, ev.time)

			if ev.time < suppressUntil {
				// A DDF is already outstanding; no new one until restored.
				continue
			}
			losses := failedOthers
			hasDefect := defectSlot >= 0
			switch {
			case losses >= cfg.Redundancy:
				ddfs = append(ddfs, DDF{Time: ev.time, Cause: CauseOpOp})
				suppressUntil = s.restoreEnd
				emit(TraceEvent{Time: ev.time, Kind: TraceDDF, Slot: ev.slot, Cause: CauseOpOp})
			case losses == cfg.Redundancy-1 && hasDefect:
				ddfs = append(ddfs, DDF{Time: ev.time, Cause: CauseLdOp})
				suppressUntil = s.restoreEnd
				emit(TraceEvent{Time: ev.time, Kind: TraceDDF, Slot: ev.slot, Cause: CauseLdOp})
				// The defective drive is repaired together with the failed
				// one: its pre-existing defects clear at the same restore.
				push(s.restoreEnd, evTruncateDefects, defectSlot, slots[defectSlot].gen, 0, ev.time)
			}

		case evOpRestore:
			if ev.gen != s.gen {
				continue
			}
			s.failed = false
			emit(TraceEvent{Time: ev.time, Kind: TraceOpRestore, Slot: ev.slot})
			// The replacement's operational life is measured from restore
			// completion (the paper's alternating TTF/TTR chronology).
			scheduleOpFail(ev.slot, ev.time)

		case evDefectArrive:
			if ev.gen != s.gen {
				continue
			}
			defectID++
			s.defects[defectID] = ev.time
			emit(TraceEvent{Time: ev.time, Kind: TraceDefect, Slot: ev.slot})
			if cfg.Trans.TTScrub != nil {
				push(ev.time+cfg.Trans.TTScrub.Sample(r), evDefectClear, ev.slot, s.gen, defectID, 0)
			}
			scheduleDefect(ev.slot, ev.time)

		case evDefectClear:
			if ev.gen != s.gen {
				continue
			}
			if _, ok := s.defects[ev.id]; ok {
				delete(s.defects, ev.id)
				emit(TraceEvent{Time: ev.time, Kind: TraceScrub, Slot: ev.slot})
			}

		case evTruncateDefects:
			if ev.gen != s.gen {
				continue
			}
			for id, start := range s.defects {
				if start <= ev.arg {
					delete(s.defects, id)
					emit(TraceEvent{Time: ev.time, Kind: TraceScrub, Slot: ev.slot})
				}
			}
		}
	}
	return ddfs, nil
}
