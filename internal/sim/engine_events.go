package sim

import (
	"math"
	"sync"

	"raidrel/internal/rng"
)

// EventEngine simulates a RAID-group chronology with a discrete-event
// queue. It is the reference implementation of the DDF semantics; the
// IntervalEngine cross-validates it.
type EventEngine struct{}

var (
	_ Engine        = EventEngine{}
	_ IntoSimulator = EventEngine{}
)

// defectRec is one latent defect on a drive, in creation order. The
// untraced engine never queues the defect's scrub-correction event:
// end/clearSeq capture when (and with what tie-break rank) that event
// would have fired, and liveness is checked lazily at DDF determination —
// see defectLive. Traced runs still queue the correction so observers see
// it in time order; the lazy predicate is consistent with eager removal,
// so both paths decide every DDF identically.
type defectRec struct {
	id       int64
	start    float64
	end      float64 // scrub-correction time; +Inf when never scrubbed
	clearSeq int64   // seq the correction event holds (or would hold)
}

// defectLive reports whether the defect is uncorrected at the instant an
// event with sequence number seq occurs at time t. The tie-break term
// reproduces the eager queue's behaviour exactly: at t == end the defect
// is live only for events that would have popped before the correction.
func defectLive(d *defectRec, t float64, seq int64) bool {
	return t < d.end || (t == d.end && seq < d.clearSeq)
}

// slotState is the mutable per-drive-slot state of the event engine.
type slotState struct {
	failed     bool
	restoreEnd float64
	gen        int32
	defects    []defectRec // live defects of the current drive, creation order
}

// removeDefect deletes the defect with the given id, preserving creation
// order, and reports whether it was present.
func (s *slotState) removeDefect(id int64) bool {
	for i := range s.defects {
		if s.defects[i].id == id {
			s.defects = append(s.defects[:i], s.defects[i+1:]...)
			return true
		}
	}
	return false
}

// eventSim is the reusable scratch state of one event-engine simulation:
// the event queue's backing array, per-slot state (including each slot's
// defect list), and the output buffer all persist across iterations, so a
// warmed-up Monte Carlo worker runs event-free chronologies — the
// overwhelming majority in the paper's rare-event regime — without a
// single heap allocation.
type eventSim struct {
	cfg    Config
	r      *rng.RNG
	obs    Observer
	spares *sparePool
	// kern holds cfg's transition distributions compiled to sampler
	// kernels; every hot-loop draw goes through it instead of the
	// Distribution interface.
	kern cfgKernels

	slots         []slotState
	q             eventQueue
	seq, defectID int64
	suppressUntil float64
	ddfs          []DDF
	// tp holds the compiled component topology; tp.topo stays nil for
	// flat configurations, which then take none of the coupled branches.
	tp topoScratch
	// logW accumulates the iteration's importance-sampling log
	// likelihood ratio; stays exactly 0 when cfg.Bias is disabled.
	logW float64
}

// eventSimPool recycles scratch across SimulateInto calls so that
// concurrent workers each converge on their own warmed-up state.
var eventSimPool = sync.Pool{New: func() any { return new(eventSim) }}

// Simulate implements Engine, discarding the importance-sampling weight.
func (e EventEngine) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) {
	out, _, err := e.SimulateInto(cfg, r, nil)
	return out, err
}

// SimulateInto implements IntoSimulator: it runs one chronology appending
// the DDFs to buf (which may be nil) and returns the extended slice plus
// the iteration's log likelihood-ratio weight. The engine's internal
// scratch — event queue, slot state, defect lists — is pooled and reused,
// so the steady-state per-iteration cost of an event-free chronology is
// zero allocations.
func (EventEngine) SimulateInto(cfg Config, r *rng.RNG, buf []DDF) ([]DDF, float64, error) {
	s := eventSimPool.Get().(*eventSim)
	out, logW, err := s.run(cfg, r, nil, buf)
	s.release()
	eventSimPool.Put(s)
	return out, logW, err
}

// SimulateTraced runs one chronology while streaming every event (drive
// failures, restores, defect creations and corrections, DDFs) to obs in
// time order. Pass a *Trace to record the full Fig.-5-style timeline. The
// importance-sampling weight is discarded; tracing is a debugging aid, not
// an estimation path.
func SimulateTraced(cfg Config, r *rng.RNG, obs Observer) ([]DDF, error) {
	s := eventSimPool.Get().(*eventSim)
	out, _, err := s.run(cfg, r, obs, nil)
	s.release()
	eventSimPool.Put(s)
	return out, err
}

// release drops references the scratch must not retain between runs (the
// caller's RNG, observer, buffer, and the distributions inside cfg and
// the compiled kernels) while keeping the reusable backing arrays.
func (s *eventSim) release() {
	s.cfg = Config{}
	s.r, s.obs, s.spares, s.ddfs = nil, nil, nil, nil
	s.kern.release()
	s.tp.release()
}

func (s *eventSim) emit(e TraceEvent) {
	if s.obs != nil {
		s.obs.Observe(e)
	}
}

// push schedules an event, discarding anything beyond the mission horizon.
func (s *eventSim) push(t float64, kind eventKind, slot, gen int32, id int64, arg float64) {
	if t > s.cfg.Mission {
		return
	}
	s.seq++
	s.q.push(event{time: t, seq: s.seq, kind: kind, slot: slot, gen: gen, id: id, arg: arg})
}

func (s *eventSim) scheduleOpFail(slot int, from float64) {
	// Under bias the likelihood ratio is censored at the residual
	// mission: push discards from+dt > Mission, i.e. dt > Mission-from.
	dt, logLR := s.kern.drawTTOp(&s.cfg, slot, from, s.r)
	s.logW += logLR
	s.push(from+dt, evOpFail, int32(slot), s.slots[slot].gen, 0, 0)
}

func (s *eventSim) scheduleDefect(slot int, from float64) {
	if s.kern.plainTTLd {
		// Plain renewal defects: skip nextDefect's process dispatch and
		// the always-zero likelihood-ratio bookkeeping.
		s.push(from+s.kern.ttld.Draw(s.r), evDefectArrive, int32(slot), s.slots[slot].gen, 0, 0)
		return
	}
	if !s.cfg.Trans.latentEnabled() {
		return
	}
	t, logLR := s.kern.nextDefect(&s.cfg, from, s.cfg.Mission, s.r)
	s.logW += logLR
	s.push(t, evDefectArrive, int32(slot), s.slots[slot].gen, 0, 0)
}

// run executes one chronology, appending DDFs to buf and accumulating the
// iteration's importance-sampling log weight.
func (s *eventSim) run(cfg Config, r *rng.RNG, obs Observer, buf []DDF) ([]DDF, float64, error) {
	if err := cfg.Validate(); err != nil {
		return buf, 0, err
	}
	s.cfg, s.r, s.obs = cfg, r, obs
	s.kern.compile(&s.cfg)
	if cap(s.slots) < cfg.Drives {
		s.slots = make([]slotState, cfg.Drives)
	} else {
		s.slots = s.slots[:cfg.Drives]
	}
	for i := range s.slots {
		sl := &s.slots[i]
		sl.failed, sl.restoreEnd, sl.gen = false, 0, 0
		sl.defects = sl.defects[:0]
	}
	s.q.reset()
	s.seq, s.defectID, s.suppressUntil = 0, 0, 0
	s.logW = 0
	s.spares = newSparePool(cfg.Spares) // nil (no allocation) for the default infinite pool
	s.tp.attach(&cfg)
	s.ddfs = buf

	for i := 0; i < cfg.Drives; i++ {
		s.scheduleOpFail(i, 0)
		s.scheduleDefect(i, 0)
	}
	if s.tp.topo != nil {
		// Component path instances schedule after every drive slot, so the
		// drive draws (and their stream positions) match the flat model's
		// exactly; component draws are never tilted under bias.
		for inst := range s.tp.instComp {
			c := s.tp.instComp[inst]
			s.push(s.tp.ttopK[c].Draw(r), evCompFail, int32(inst), 0, 0, 0)
		}
	}

	for s.q.Len() > 0 {
		ev := s.q.pop()
		if ev.time > cfg.Mission {
			break
		}
		evSlot := int(ev.slot)
		if ev.kind == evCompFail || ev.kind == evCompRestore {
			// Component events index path instances, not drive slots.
			s.handleComp(ev)
			continue
		}
		sl := &s.slots[evSlot]
		switch ev.kind {
		case evOpFail:
			if ev.gen != sl.gen {
				continue
			}
			// DDF determination happens at the instant of the failure,
			// before this slot's state changes.
			failedOthers, defectSlot := 0, -1
			defectStart := math.Inf(1)
			for k := range s.slots {
				if k == evSlot {
					continue
				}
				o := &s.slots[k]
				switch {
				case o.failed:
					failedOthers++
				case len(o.defects) > 0:
					for i := range o.defects {
						d := &o.defects[i]
						if d.start < defectStart && defectLive(d, ev.time, ev.seq) {
							defectStart = d.start
							defectSlot = k
						}
					}
				}
			}
			s.emit(TraceEvent{Time: ev.time, Kind: TraceOpFail, Slot: evSlot})
			// The failure itself: old drive out, replacement in; its data
			// (and latent defects) are gone, and defect generation on the
			// replacement starts immediately (write errors during rebuild
			// are possible but do not themselves constitute a DDF).
			sl.failed = true
			sl.gen++
			sl.defects = sl.defects[:0]
			// With a finite pool the rebuild waits for a spare to arrive.
			rebuildFrom := s.spares.rebuildStart(ev.time)
			ttr := s.kern.ttr.Draw(r)
			if s.tp.topo != nil && s.tp.inacc[evSlot] > 0 {
				// The slot is inaccessible: the rebuild is held (full TTR
				// pending) until a covering component repair restores
				// access. The TTR is drawn regardless, keeping the stream
				// positions of every later draw unchanged.
				s.tp.paused[evSlot] = true
				s.tp.pending[evSlot] = ttr
				sl.restoreEnd = math.Inf(1)
			} else {
				sl.restoreEnd = rebuildFrom + ttr
				s.push(sl.restoreEnd, evOpRestore, ev.slot, sl.gen, s.restoreSeq(evSlot), 0)
			}
			s.scheduleDefect(evSlot, ev.time)

			lossRecorded := false
			if ev.time >= s.suppressUntil {
				losses := failedOthers
				hasDefect := defectSlot >= 0
				switch {
				case losses >= cfg.Redundancy:
					s.ddfs = append(s.ddfs, DDF{Time: ev.time, Cause: CauseOpOp})
					s.suppressUntil = sl.restoreEnd
					s.emit(TraceEvent{Time: ev.time, Kind: TraceDDF, Slot: evSlot, Cause: CauseOpOp})
					lossRecorded = true
				case losses == cfg.Redundancy-1 && hasDefect:
					s.ddfs = append(s.ddfs, DDF{Time: ev.time, Cause: CauseLdOp})
					s.suppressUntil = sl.restoreEnd
					s.emit(TraceEvent{Time: ev.time, Kind: TraceDDF, Slot: evSlot, Cause: CauseLdOp})
					lossRecorded = true
					// The defective drive is repaired together with the failed
					// one: its pre-existing defects clear at the same restore.
					// (If the failed slot's rebuild is held by a component
					// outage, restoreEnd is +Inf and the concomitant repair is
					// skipped — the defect waits for its natural scrub.)
					s.push(sl.restoreEnd, evTruncateDefects, int32(defectSlot), s.slots[defectSlot].gen, 0, ev.time)
				}
				if lossRecorded && s.tp.topo != nil {
					s.tp.suppressSlot = evSlot
				}
			}
			if s.tp.topo != nil {
				s.noteAvail(ev.time, lossRecorded)
			}

		case evOpRestore:
			if ev.gen != sl.gen {
				continue
			}
			if s.tp.topo != nil && ev.id != s.tp.restoreID[evSlot] {
				// This rebuild was paused by a component outage after the
				// event was queued; its resumption is (or will be)
				// rescheduled under a fresh restore id.
				continue
			}
			sl.failed = false
			s.emit(TraceEvent{Time: ev.time, Kind: TraceOpRestore, Slot: evSlot})
			// The replacement's operational life is measured from restore
			// completion (the paper's alternating TTF/TTR chronology).
			s.scheduleOpFail(evSlot, ev.time)
			if s.tp.topo != nil {
				s.noteAvail(ev.time, false)
			}

		case evDefectArrive:
			if ev.gen != sl.gen {
				continue
			}
			s.defectID++
			s.emit(TraceEvent{Time: ev.time, Kind: TraceDefect, Slot: evSlot})
			end, clearSeq := math.Inf(1), int64(math.MaxInt64)
			if cfg.Trans.TTScrub != nil {
				end = ev.time + s.kern.scrub.Draw(r)
				if end <= cfg.Mission {
					if s.obs != nil {
						// Traced runs queue the correction so the observer
						// sees TraceScrub in time order.
						s.push(end, evDefectClear, ev.slot, sl.gen, s.defectID, 0)
					} else {
						// Phantom correction: consume the seq the queued
						// event would have held, so every later event's
						// tie-break rank — and therefore pop order on exact
						// time ties — matches the traced path bit for bit.
						s.seq++
					}
					clearSeq = s.seq
				}
			}
			sl.defects = append(sl.defects, defectRec{id: s.defectID, start: ev.time, end: end, clearSeq: clearSeq})
			s.scheduleDefect(evSlot, ev.time)

		case evDefectClear:
			if ev.gen != sl.gen {
				continue
			}
			if sl.removeDefect(ev.id) {
				s.emit(TraceEvent{Time: ev.time, Kind: TraceScrub, Slot: evSlot})
			}

		case evTruncateDefects:
			if ev.gen != sl.gen {
				continue
			}
			kept := sl.defects[:0]
			for _, d := range sl.defects {
				if d.start <= ev.arg {
					s.emit(TraceEvent{Time: ev.time, Kind: TraceScrub, Slot: evSlot})
				} else {
					kept = append(kept, d)
				}
			}
			sl.defects = kept
		}
	}
	// Every tilted draw contributes to logW, including those later voided
	// by generation checks or left pending at mission end: the weight of a
	// sequentially sampled path is the product over all draws actually
	// made under the biased measure (the draws define the path's density,
	// whether or not the chronology ends up using them).
	return s.ddfs, s.logW, nil
}

// restoreSeq returns the id a slot's restore event must carry to stay
// valid; always 0 in flat runs, where pauses cannot invalidate restores.
func (s *eventSim) restoreSeq(slot int) int64 {
	if s.tp.topo == nil {
		return 0
	}
	return s.tp.restoreID[slot]
}

// handleComp processes a component path instance's failure or repair.
// Instances alternate between service and repair like drives do; the
// covered slots flip accessibility only when the whole component — all of
// its path instances — is down.
func (s *eventSim) handleComp(ev event) {
	tp := &s.tp
	switch ev.kind {
	case evCompFail:
		comp, nowDown := tp.compFail(int(ev.slot))
		s.emit(TraceEvent{Time: ev.time, Kind: TraceCompFail, Slot: comp})
		s.push(ev.time+tp.ttrK[comp].Draw(s.r), evCompRestore, ev.slot, 0, 0, 0)
		if !nowDown {
			return
		}
		for _, d := range tp.topo.Components[comp].Drives {
			tp.inacc[d]++
			if tp.inacc[d] != 1 {
				continue
			}
			dsl := &s.slots[d]
			if tp.pauseSlot(dsl, d, ev.time) && tp.suppressSlot == d && ev.time < s.suppressUntil {
				// The paused rebuild is the one ending the current DDF
				// suppression window; it now ends when the rebuild
				// eventually resumes and completes.
				s.suppressUntil = math.Inf(1)
			}
		}
		s.noteAvail(ev.time, false)

	case evCompRestore:
		comp, wasDown := tp.compRestore(int(ev.slot))
		s.emit(TraceEvent{Time: ev.time, Kind: TraceCompRestore, Slot: comp})
		s.push(ev.time+tp.ttopK[comp].Draw(s.r), evCompFail, ev.slot, 0, 0, 0)
		if !wasDown {
			return
		}
		for _, d := range tp.topo.Components[comp].Drives {
			tp.inacc[d]--
			if tp.inacc[d] != 0 || !tp.paused[d] {
				continue
			}
			// Access restored: the held rebuild resumes with its pending
			// repair hours.
			dsl := &s.slots[d]
			tp.paused[d] = false
			dsl.restoreEnd = ev.time + tp.pending[d]
			s.push(dsl.restoreEnd, evOpRestore, int32(d), dsl.gen, tp.restoreID[d], 0)
			if tp.suppressSlot == d && math.IsInf(s.suppressUntil, 1) {
				s.suppressUntil = dsl.restoreEnd
			}
		}
		s.noteAvail(ev.time, false)
	}
}

// noteAvail re-evaluates group availability after a state change at time
// t: the group is unavailable while more slots than the redundancy covers
// are lost, to operational failure or component inaccessibility. The
// available→unavailable transition records a CauseUnavail onset when a
// component-inaccessible slot is involved — unless the same instant
// already recorded a data loss, which dominates. Episodes end (and the
// next onset becomes recordable) when the lost count drops back within the
// redundancy.
func (s *eventSim) noteAvail(t float64, lossRecorded bool) {
	tp := &s.tp
	lost, compInvolved := tp.lost(s.slots)
	if lost <= s.cfg.Redundancy {
		tp.unavailable = false
		return
	}
	if tp.unavailable {
		return
	}
	tp.unavailable = true
	if compInvolved && !lossRecorded {
		s.ddfs = append(s.ddfs, DDF{Time: t, Cause: CauseUnavail})
		s.emit(TraceEvent{Time: t, Kind: TraceUnavail, Slot: -1})
	}
}
