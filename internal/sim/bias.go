package sim

import (
	"fmt"
	"math"
)

// Bias configures failure-biased importance sampling (Greenan's standard
// rare-event fix, arXiv:1310.4702 §6): during sampling, selected hazards
// are scaled up by a factor θ so DDFs become orders of magnitude more
// frequent, and every iteration carries a likelihood-ratio weight
// W = Π f(x)/g(x) that keeps the weighted estimator unbiased.
//
// A factor of 0 or 1 leaves that process unbiased (plain Monte Carlo).
type Bias struct {
	// Op scales the operational-failure (TTOp) hazard. This is the
	// effective lever: a DDF needs an operational failure inside another
	// failure's restore window (rate ∝ θ²) or on top of a latent defect
	// (rate ∝ θ), and operational failures are genuinely rare over a
	// mission, so the weights stay well-behaved.
	Op float64 `json:"op,omitempty"`
	// Ld scales the renewal latent-defect (TTLd) hazard. Use cautiously:
	// at the paper's parameters defects are not rare (≈9.5 arrivals per
	// drive-mission), so tilting them inflates weight variance
	// exponentially in the arrival count and usually hurts. Unsupported
	// for the NHPP defect process (TTLdRate).
	Ld float64 `json:"ld,omitempty"`
}

// Enabled reports whether any hazard is tilted.
func (b Bias) Enabled() bool { return b.opEnabled() || b.ldEnabled() }

func (b Bias) opEnabled() bool { return b.Op != 0 && b.Op != 1 }
func (b Bias) ldEnabled() bool { return b.Ld != 0 && b.Ld != 1 }

// validate checks the factors in isolation; cross-field rules (NHPP
// exclusion) live in Config.Validate.
func (b Bias) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"op", b.Op}, {"ld", b.Ld}} {
		if f.v == 0 {
			continue
		}
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			return fmt.Errorf("sim: %s bias factor must be positive and finite, got %v", f.name, f.v)
		}
	}
	return nil
}

// The tilted draws themselves live in the compiled-kernel layer: both
// engines resolve their tilted distributions to dist.TiltedKernel values
// (see kernels.go), whose DrawLR fuses the hazard-scaled draw with the
// per-draw log likelihood ratio, censored at each engine's discard
// horizon. Censoring is what keeps every weight factor bounded — the
// uncensored per-draw ratio has unbounded second moment for theta >= 2,
// which would make the weighted estimator's variance infinite.
