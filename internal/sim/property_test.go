package sim

import (
	"math"
	"testing"
	"testing/quick"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// propertyConfig derives a random-but-valid configuration from fuzz input.
func propertyConfig(drives uint8, opMean, ttrMean, ldMean, scrubMean float64, scrubOn bool) Config {
	nd := 2 + int(drives%12) // 2..13 drives
	clampMean := func(v, lo, hi float64) float64 {
		v = math.Abs(v)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	cfg := Config{
		Drives:     nd,
		Redundancy: 1,
		Mission:    50000,
		Trans: Transitions{
			TTOp: dist.MustExponential(1 / clampMean(opMean, 2000, 1e6)),
			TTR:  dist.MustExponential(1 / clampMean(ttrMean, 1, 500)),
			TTLd: dist.MustExponential(1 / clampMean(ldMean, 200, 1e6)),
		},
	}
	if scrubOn {
		cfg.Trans.TTScrub = dist.MustExponential(1 / clampMean(scrubMean, 1, 5000))
	}
	return cfg
}

// Invariants that must hold for every configuration and every seed, on
// both engines: events sorted, within mission, valid causes, and spacing
// at least the restore floor when one exists.
func TestPropertyEngineInvariants(t *testing.T) {
	check := func(drives uint8, opMean, ttrMean, ldMean, scrubMean float64, scrubOn bool, seed uint64) bool {
		cfg := propertyConfig(drives, opMean, ttrMean, ldMean, scrubMean, scrubOn)
		for _, engine := range []Engine{EventEngine{}, IntervalEngine{}} {
			ddfs, err := engine.Simulate(cfg, rng.ForStream(seed, 0))
			if err != nil {
				return false
			}
			prev := 0.0
			for _, d := range ddfs {
				if d.Time < prev || d.Time > cfg.Mission {
					return false
				}
				if d.Cause != CauseOpOp && d.Cause != CauseLdOp {
					return false
				}
				prev = d.Time
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The DDF count of a group can never exceed its operational-failure
// count: every DDF is triggered by an operational failure, and
// suppression only removes candidates. Verified against an instrumented
// upper bound: with rate λ per drive the op failures over the mission are
// Poisson-bounded; we simply compare against an engine-independent count
// of failures obtained from a no-latent run... simpler and exact: a DDF
// sequence must be no denser than one per restore floor when TTR has a
// location.
func TestPropertyDDFsRespectRestoreFloor(t *testing.T) {
	check := func(seed uint64, floorRaw float64) bool {
		floor := 1 + math.Abs(floorRaw)
		if math.IsNaN(floor) || math.IsInf(floor, 0) || floor > 48 {
			floor = 7
		}
		cfg := Config{
			Drives:     8,
			Redundancy: 1,
			Mission:    87600,
			Trans: Transitions{
				TTOp: dist.MustExponential(1e-4),
				TTR:  dist.MustWeibull(2, floor*2, floor),
				TTLd: dist.MustExponential(1e-3),
			},
		}
		for _, engine := range []Engine{EventEngine{}, IntervalEngine{}} {
			ddfs, err := engine.Simulate(cfg, rng.ForStream(seed, 1))
			if err != nil {
				return false
			}
			for i := 1; i < len(ddfs); i++ {
				if ddfs[i].Time-ddfs[i-1].Time < floor {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Raising the defect rate (with everything else fixed, including the op
// failure sampling stream) can only increase or hold the expected DDF
// count — monotonicity in the latent process.
func TestPropertyDefectRateMonotonicity(t *testing.T) {
	run := func(ldRate float64, seed uint64) int {
		cfg := Config{
			Drives:     8,
			Redundancy: 1,
			Mission:    87600,
			Trans: Transitions{
				TTOp: dist.MustExponential(1e-4),
				TTR:  dist.MustExponential(1e-2),
				TTLd: dist.MustExponential(ldRate),
			},
		}
		total := 0
		for i := 0; i < 800; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(seed, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	rates := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	prev := -1
	for _, rate := range rates {
		got := run(rate, 123)
		if got < prev {
			t.Fatalf("DDFs decreased when defect rate rose to %v: %d < %d", rate, got, prev)
		}
		prev = got
	}
}

// The expected DDF count is monotone in the mission length. (Individual
// sample paths are NOT nested across horizons — the horizon changes how
// many variates each slot consumes — so the property is statistical.)
func TestPropertyMissionMonotonicity(t *testing.T) {
	run := func(mission float64) int {
		cfg := Config{
			Drives:     8,
			Redundancy: 1,
			Mission:    mission,
			Trans: Transitions{
				TTOp: dist.MustExponential(1e-4),
				TTR:  dist.MustExponential(1e-2),
				TTLd: dist.MustExponential(1e-3),
			},
		}
		total := 0
		for i := 0; i < 1500; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(55, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	prev := -1
	for _, mission := range []float64{10000, 30000, 60000, 87600} {
		got := run(mission)
		if got < prev {
			t.Fatalf("DDFs decreased when mission grew to %v: %d < %d", mission, got, prev)
		}
		prev = got
	}
}
