package sim

import (
	"fmt"
	"math"
	"sort"

	"raidrel/internal/rng"
)

// FleetConfig describes several RAID groups operated together — a shelf
// or rack — optionally drawing replacements from one shared spare pool.
// Groups are otherwise independent: a DDF requires coincident events
// within one group.
type FleetConfig struct {
	// Groups is the number of RAID groups.
	Groups int
	// Group is the per-group configuration. Its own Spares field must be
	// nil; sparing is fleet-level here.
	Group Config
	// SharedSpares optionally bounds the fleet-wide spare pool; nil means
	// a spare is always available.
	SharedSpares *SparePolicy
}

// Validate checks the fleet description.
func (f FleetConfig) Validate() error {
	if f.Groups < 1 {
		return fmt.Errorf("sim: fleet needs >= 1 group, got %d", f.Groups)
	}
	if f.Group.Spares != nil {
		return fmt.Errorf("sim: fleet groups must not carry their own spare pools; use SharedSpares")
	}
	if f.Group.Bias.Enabled() {
		return fmt.Errorf("sim: fleet simulation does not support importance sampling (no weight channel in its output)")
	}
	if f.Group.Topology.Coupled() {
		return fmt.Errorf("sim: fleet simulation does not support coupled component topologies; use EventEngine on a single group")
	}
	if err := f.Group.Validate(); err != nil {
		return err
	}
	return f.SharedSpares.Validate()
}

// GroupDDFs is one group's data-loss events within a fleet chronology.
type GroupDDFs struct {
	Group int
	DDFs  []DDF
}

// SimulateFleet runs one chronology of the whole fleet. All groups share
// the clock and (when configured) the spare pool, so a failure burst in
// one group can starve another group's rebuild — the coupling a per-group
// model cannot express.
func SimulateFleet(cfg FleetConfig, r *rng.RNG) ([]GroupDDFs, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Group
	type slotRef struct{ group, slot int }
	total := cfg.Groups * g.Drives
	refOf := func(global int) slotRef { return slotRef{group: global / g.Drives, slot: global % g.Drives} }

	slots := make([]slotState, total)
	spares := newSparePool(cfg.SharedSpares)
	var kern cfgKernels
	kern.compile(&g)
	var (
		q             eventQueue
		seq, defectID int64
		out           = make([][]DDF, cfg.Groups)
		suppressUntil = make([]float64, cfg.Groups)
	)
	push := func(t float64, kind eventKind, slot, gen int32, id int64, arg float64) {
		if t > g.Mission {
			return
		}
		seq++
		q.push(event{time: t, seq: seq, kind: kind, slot: slot, gen: gen, id: id, arg: arg})
	}
	scheduleOpFail := func(slot int, from float64) {
		push(from+g.ttopFor(refOf(slot).slot).Sample(r), evOpFail, int32(slot), slots[slot].gen, 0, 0)
	}
	scheduleDefect := func(slot int, from float64) {
		if !g.Trans.latentEnabled() {
			return
		}
		// Bias is rejected by Validate, so the log ratio is always 0 here.
		t, _ := kern.nextDefect(&g, from, g.Mission, r)
		push(t, evDefectArrive, int32(slot), slots[slot].gen, 0, 0)
	}
	for i := 0; i < total; i++ {
		scheduleOpFail(i, 0)
		scheduleDefect(i, 0)
	}

	for q.Len() > 0 {
		ev := q.pop()
		if ev.time > g.Mission {
			break
		}
		evSlot := int(ev.slot)
		s := &slots[evSlot]
		ref := refOf(evSlot)
		switch ev.kind {
		case evOpFail:
			if ev.gen != s.gen {
				continue
			}
			failedOthers, defectSlot := 0, -1
			defectStart := math.Inf(1)
			base := ref.group * g.Drives
			for k := base; k < base+g.Drives; k++ {
				if k == evSlot {
					continue
				}
				o := &slots[k]
				switch {
				case o.failed:
					failedOthers++
				case len(o.defects) > 0:
					for _, d := range o.defects {
						if d.start < defectStart {
							defectStart = d.start
							defectSlot = k
						}
					}
				}
			}
			s.failed = true
			s.gen++
			s.defects = s.defects[:0]
			s.restoreEnd = spares.rebuildStart(ev.time) + g.Trans.TTR.Sample(r)
			push(s.restoreEnd, evOpRestore, ev.slot, s.gen, 0, 0)
			scheduleDefect(evSlot, ev.time)
			if ev.time < suppressUntil[ref.group] {
				continue
			}
			switch {
			case failedOthers >= g.Redundancy:
				out[ref.group] = append(out[ref.group], DDF{Time: ev.time, Cause: CauseOpOp})
				suppressUntil[ref.group] = s.restoreEnd
			case failedOthers == g.Redundancy-1 && defectSlot >= 0:
				out[ref.group] = append(out[ref.group], DDF{Time: ev.time, Cause: CauseLdOp})
				suppressUntil[ref.group] = s.restoreEnd
				push(s.restoreEnd, evTruncateDefects, int32(defectSlot), slots[defectSlot].gen, 0, ev.time)
			}

		case evOpRestore:
			if ev.gen != s.gen {
				continue
			}
			s.failed = false
			scheduleOpFail(evSlot, ev.time)

		case evDefectArrive:
			if ev.gen != s.gen {
				continue
			}
			defectID++
			s.defects = append(s.defects, defectRec{id: defectID, start: ev.time})
			if g.Trans.TTScrub != nil {
				push(ev.time+g.Trans.TTScrub.Sample(r), evDefectClear, ev.slot, s.gen, defectID, 0)
			}
			scheduleDefect(evSlot, ev.time)

		case evDefectClear:
			if ev.gen != s.gen {
				continue
			}
			s.removeDefect(ev.id)

		case evTruncateDefects:
			if ev.gen != s.gen {
				continue
			}
			kept := s.defects[:0]
			for _, d := range s.defects {
				if d.start > ev.arg {
					kept = append(kept, d)
				}
			}
			s.defects = kept
		}
	}
	result := make([]GroupDDFs, cfg.Groups)
	for i := range result {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a].Time < out[i][b].Time })
		result[i] = GroupDDFs{Group: i, DDFs: out[i]}
	}
	return result, nil
}
