package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"raidrel/internal/rng"
)

// maxFleetDrives bounds Groups*Drives: beyond ~10⁸ drive slots the
// per-slot state alone exceeds any sensible memory budget, so larger
// products are configuration errors (typos, unit confusion), not
// workloads.
const maxFleetDrives = 1 << 27

// FleetOptions is the fleet-level configuration carried alongside a group
// Config by the runner, campaigns, and the service layer: how many groups
// share one chronology, the shared spare pool, and the repair-bandwidth
// bound. The JSON form is the wire/checkpoint representation.
type FleetOptions struct {
	// Groups is the number of RAID groups operated together.
	Groups int `json:"groups"`
	// SharedSpares optionally bounds the fleet-wide spare pool; nil means
	// a spare is always available.
	SharedSpares *SparePolicy `json:"shared_spares,omitempty"`
	// MaxConcurrentRebuilds caps how many rebuilds run at once across the
	// whole fleet — the shared repair-bandwidth bound. 0 means unlimited
	// (every rebuild starts as soon as its spare is available). Queued
	// rebuilds wait in the heal queue, most-degraded group first.
	MaxConcurrentRebuilds int `json:"max_concurrent_rebuilds,omitempty"`
}

// Config combines the options with a per-group configuration.
func (o *FleetOptions) Config(group Config) FleetConfig {
	if o == nil {
		return FleetConfig{Groups: 1, Group: group}
	}
	return FleetConfig{
		Groups:                o.Groups,
		Group:                 group,
		SharedSpares:          o.SharedSpares,
		MaxConcurrentRebuilds: o.MaxConcurrentRebuilds,
	}
}

// FleetConfig describes several RAID groups operated together — a shelf,
// rack, or data-center fleet — coupled through shared repair resources: an
// optional fleet-wide spare pool and an optional bound on concurrent
// rebuilds. Groups are otherwise independent: a DDF requires coincident
// events within one group.
type FleetConfig struct {
	// Groups is the number of RAID groups.
	Groups int
	// Group is the per-group configuration. Its own Spares field must be
	// nil; sparing is fleet-level here.
	Group Config
	// SharedSpares optionally bounds the fleet-wide spare pool; nil means
	// a spare is always available.
	SharedSpares *SparePolicy
	// MaxConcurrentRebuilds caps concurrent rebuilds fleet-wide; 0 means
	// unlimited. When the cap binds, waiting rebuilds are granted to the
	// most-degraded group first (failed-drive count, then oldest failure).
	MaxConcurrentRebuilds int
}

// Validate checks the fleet description.
func (f FleetConfig) Validate() error {
	if f.Groups < 1 {
		return fmt.Errorf("sim: fleet needs >= 1 group, got %d", f.Groups)
	}
	if f.MaxConcurrentRebuilds < 0 {
		return fmt.Errorf("sim: fleet max concurrent rebuilds must be >= 0 (0 = unlimited), got %d", f.MaxConcurrentRebuilds)
	}
	if f.Group.Spares != nil {
		return fmt.Errorf("sim: fleet groups must not carry their own spare pools; use SharedSpares")
	}
	if f.Group.Bias.Enabled() {
		return fmt.Errorf("sim: fleet simulation does not support importance sampling (no weight channel in its output)")
	}
	if f.Group.VR.Enabled() {
		return fmt.Errorf("sim: fleet simulation does not support variance reduction; it runs on the fleet event engine only")
	}
	if f.Group.Topology.Coupled() {
		return fmt.Errorf("sim: fleet simulation does not support coupled component topologies; use EventEngine on a single group")
	}
	if err := f.Group.Validate(); err != nil {
		return err
	}
	// Guard the total slot count before anything sizes state off it: an
	// int overflow would wrap silently, and an absurd product would OOM
	// long before the first event.
	if f.Groups > math.MaxInt/f.Group.Drives {
		return fmt.Errorf("sim: fleet size overflows: %d groups x %d drives exceeds the addressable slot count", f.Groups, f.Group.Drives)
	}
	if total := f.Groups * f.Group.Drives; total > maxFleetDrives {
		return fmt.Errorf("sim: fleet of %d groups x %d drives = %d slots exceeds the %d-slot limit; shard the fleet across chronologies instead", f.Groups, f.Group.Drives, total, maxFleetDrives)
	}
	return f.SharedSpares.Validate()
}

// FleetStats is the heal-backlog telemetry of one fleet chronology — the
// first-class output alongside the per-group DDFs. A rebuild request is
// "queued" from the failure instant until its rebuild starts (covering
// both spare-pool waits and repair-slot waits), so the conservation
// invariant Failures == Rebuilds + ActiveAtEnd + QueuedAtEnd holds at
// mission end.
type FleetStats struct {
	// Failures counts drive failures within the mission.
	Failures int
	// Rebuilds counts rebuilds completed within the mission.
	Rebuilds int
	// ActiveAtEnd is the number of rebuilds still running at mission end.
	ActiveAtEnd int
	// QueuedAtEnd is the number of failures still waiting (for a spare or
	// a repair slot) at mission end.
	QueuedAtEnd int
	// Waited counts rebuilds that spent any time queued before starting.
	Waited int
	// TotalWaitHours sums every rebuild's failure-to-start wait.
	TotalWaitHours float64
	// MaxWaitHours is the longest single failure-to-start wait.
	MaxWaitHours float64
	// MaxQueueDepth is the peak number of simultaneously waiting failures.
	MaxQueueDepth int
	// MeanQueueDepth is the time-averaged queue depth over the mission.
	MeanQueueDepth float64
	// MaxExposureHours is the longest any group stayed degraded (>= 1
	// failed drive) — the fleet's worst exposure window.
	MaxExposureHours float64
	// GroupWaitHours, when pre-sized to Groups by the caller, accumulates
	// each group's total rebuild wait hours; left untouched otherwise so
	// million-group callers pay nothing for it.
	GroupWaitHours []float64
}

// GroupDDFs is one group's data-loss events within a fleet chronology.
type GroupDDFs struct {
	Group int
	DDFs  []DDF
}

// healReq is one waiting rebuild in the heal queue. Ordering is
// most-degraded group first (level = the group's failed-drive count,
// descending), then oldest failure, then enqueue order. gen implements
// lazy deletion: a group's level change re-pushes its waiting requests
// under a bumped gen, leaving the stale entries to be skipped at pop.
type healReq struct {
	failTime float64
	seq      int64
	slot     int32
	gen      int32
	level    int32
}

// healBefore orders the heal heap: higher degradation first, then earlier
// failure, then earlier enqueue. (failTime, seq) is a total order within a
// run, so pop order is deterministic.
func healBefore(a, b *healReq) bool {
	if a.level != b.level {
		return a.level > b.level
	}
	if a.failTime != b.failTime {
		return a.failTime < b.failTime
	}
	return a.seq < b.seq
}

// healHeap is a value-based binary heap of healReq, built like eventQueue
// (hole sifts, reusable backing array, zero steady-state allocation).
type healHeap struct {
	hs []healReq
}

func (h *healHeap) reset() { h.hs = h.hs[:0] }

func (h *healHeap) Len() int { return len(h.hs) }

func (h *healHeap) push(e healReq) {
	h.hs = append(h.hs, e)
	hs := h.hs
	i := len(hs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !healBefore(&e, &hs[parent]) {
			break
		}
		hs[i] = hs[parent]
		i = parent
	}
	hs[i] = e
}

func (h *healHeap) pop() healReq {
	hs := h.hs
	top := hs[0]
	n := len(hs) - 1
	last := hs[n]
	h.hs = hs[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && healBefore(&hs[r], &hs[c]) {
			c = r
		}
		if !healBefore(&hs[c], &last) {
			break
		}
		hs[i] = hs[c]
		i = c
	}
	if n > 0 {
		hs[i] = last
	}
	return top
}

// fleetSlot is the per-drive-slot state of the fleet engine: the event
// engine's slotState plus the repair-server bookkeeping (when the slot
// failed, the TTR drawn at failure, and its heal-queue membership).
type fleetSlot struct {
	slotState
	failTime float64
	ttr      float64
	queueSeq int64
	queueGen int32
	queued   bool
}

// fleetSim is the pooled scratch of one fleet chronology. Every slice is
// sized to the fleet once and reused, so a warmed-up worker runs
// chronologies — even 10⁵–10⁶-group ones — with zero steady-state heap
// allocations when no group produces a DDF.
type fleetSim struct {
	cfg  FleetConfig
	g    Config
	kern cfgKernels

	rngs  []rng.RNG // one independent stream per group
	slots []fleetSlot
	q     eventQueue

	// Per-group state.
	failedCount   []int32   // failed drives right now
	queuedCount   []int32   // heal-queue members right now
	suppressUntil []float64 // DDF suppression window end
	suppressSlot  []int32   // global slot whose rebuild ends the window
	degradedSince []float64 // start of the current degradation episode

	// Repair server.
	heap    healHeap
	spares  sparePool
	active  int
	depth   int
	depthT  float64
	depthI  float64 // ∫ depth dt
	reqSeq  int64
	seq     int64
	defects int64 // defect id counter

	// Backlog accumulators (copied into FleetStats at the end).
	failures, rebuilds, waited, maxDepth int
	totalWait, maxWait, maxExposure      float64
	groupWait                            []float64 // caller's buffer or nil

	// Sparse DDF accumulation: (group, DDF) pairs in event order, sorted
	// by group for the visit pass. All reused.
	evGroup  []int32
	evDDF    []DDF
	evIdx    []int32
	evSort   evIdxSort
	visitBuf []DDF
}

// evIdxSort orders the event-index permutation by (group, original
// position) — equivalent to a stable sort by group, because events were
// appended in time order. A persistent sort.Interface value keeps large
// chronologies free of the sort.SliceStable closure allocations.
type evIdxSort struct {
	groups []int32
	idx    []int32
}

func (s *evIdxSort) Len() int { return len(s.idx) }
func (s *evIdxSort) Less(a, b int) bool {
	ga, gb := s.groups[s.idx[a]], s.groups[s.idx[b]]
	if ga != gb {
		return ga < gb
	}
	return s.idx[a] < s.idx[b]
}
func (s *evIdxSort) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

var fleetSimPool = sync.Pool{New: func() any { return new(fleetSim) }}

// release drops the references the scratch must not retain between runs
// (the configuration's distributions, the caller's wait buffer) while
// keeping every reusable backing array.
func (s *fleetSim) release() {
	s.cfg = FleetConfig{}
	s.g = Config{}
	s.kern.release()
	s.spares.reset(nil)
	s.groupWait = nil
	for i := range s.evDDF {
		s.evDDF[i] = DDF{}
	}
}

func (s *fleetSim) limited() bool { return s.cfg.MaxConcurrentRebuilds > 0 }

// pushEv schedules an event, discarding anything beyond the mission
// horizon — exactly the event engine's push, sharing one global seq across
// groups. Within a group the relative seq order matches a single-group
// run's, which is what keeps uncontended fleet groups bit-identical to
// independent EventEngine chronologies.
func (s *fleetSim) pushEv(t float64, kind eventKind, slot, gen int32, id int64, arg float64) {
	if t > s.g.Mission {
		return
	}
	s.seq++
	s.q.push(event{time: t, seq: s.seq, kind: kind, slot: slot, gen: gen, id: id, arg: arg})
}

func (s *fleetSim) scheduleOpFail(slot int, from float64, r *rng.RNG) {
	// Bias is rejected by Validate, so the per-slot kernels are always the
	// plain (untilted) ones — bit-identical to the event engine's draws.
	dt := s.kern.ttop[slot%s.g.Drives].Draw(r)
	s.pushEv(from+dt, evOpFail, int32(slot), s.slots[slot].gen, 0, 0)
}

func (s *fleetSim) scheduleDefect(slot int, from float64, r *rng.RNG) {
	if s.kern.plainTTLd {
		s.pushEv(from+s.kern.ttld.Draw(r), evDefectArrive, int32(slot), s.slots[slot].gen, 0, 0)
		return
	}
	if !s.g.Trans.latentEnabled() {
		return
	}
	// Bias is rejected by Validate, so the log ratio is always 0 here.
	t, _ := s.kern.nextDefect(&s.g, from, s.g.Mission, r)
	s.pushEv(t, evDefectArrive, int32(slot), s.slots[slot].gen, 0, 0)
}

// noteDepth advances the queue-depth time integral to t, then applies
// delta.
func (s *fleetSim) noteDepth(t float64, delta int) {
	s.depthI += float64(s.depth) * (t - s.depthT)
	s.depthT = t
	s.depth += delta
	if s.depth > s.maxDepth {
		s.maxDepth = s.depth
	}
}

// admit routes a spare-backed failed slot into the repair server at time
// t: start immediately when a rebuild slot is free, otherwise join the
// heal queue keyed by the group's current degradation level.
func (s *fleetSim) admit(slot int, t float64) {
	if s.limited() && s.active >= s.cfg.MaxConcurrentRebuilds {
		sl := &s.slots[slot]
		sl.queued = true
		s.reqSeq++
		sl.queueSeq = s.reqSeq
		g := slot / s.g.Drives
		s.queuedCount[g]++
		s.heap.push(healReq{
			level:    s.failedCount[g],
			failTime: sl.failTime,
			seq:      sl.queueSeq,
			slot:     int32(slot),
			gen:      sl.queueGen,
		})
		return
	}
	s.startRebuild(slot, t)
}

// startRebuild occupies a repair slot for the failed drive at time t and
// schedules its restore. The TTR was drawn at failure time (keeping the
// per-group RNG stream layout independent of contention); the rebuild runs
// its full TTR from the start instant.
func (s *fleetSim) startRebuild(slot int, t float64) {
	sl := &s.slots[slot]
	g := slot / s.g.Drives
	s.active++
	if wait := t - sl.failTime; wait > 0 {
		s.waited++
		s.totalWait += wait
		if wait > s.maxWait {
			s.maxWait = wait
		}
		if s.groupWait != nil {
			s.groupWait[g] += wait
		}
	}
	s.noteDepth(t, -1)
	sl.restoreEnd = t + sl.ttr
	s.pushEv(sl.restoreEnd, evOpRestore, int32(slot), sl.gen, 0, 0)
	if s.suppressSlot[g] == int32(slot) && math.IsInf(s.suppressUntil[g], 1) {
		// This rebuild ends a DDF suppression window that was left open
		// because the rebuild had not started yet (the fleet analogue of a
		// topology-paused rebuild resuming).
		s.suppressUntil[g] = sl.restoreEnd
	}
}

// grantNext hands freed repair slots to the highest-priority waiting
// rebuilds, skipping stale heap entries (lazy deletion).
func (s *fleetSim) grantNext(t float64) {
	for s.active < s.cfg.MaxConcurrentRebuilds && s.heap.Len() > 0 {
		req := s.heap.pop()
		sl := &s.slots[req.slot]
		if !sl.queued || req.gen != sl.queueGen {
			continue
		}
		sl.queued = false
		sl.queueGen++
		s.queuedCount[int(req.slot)/s.g.Drives]--
		s.startRebuild(int(req.slot), t)
	}
}

// requeueGroup re-keys group g's waiting rebuilds after its degradation
// level changed: each gets a fresh heap entry at the new level (same
// failTime and enqueue seq), and the old entry dies by gen mismatch.
func (s *fleetSim) requeueGroup(g int) {
	if s.queuedCount[g] == 0 {
		return
	}
	base := g * s.g.Drives
	for k := base; k < base+s.g.Drives; k++ {
		sl := &s.slots[k]
		if !sl.queued {
			continue
		}
		sl.queueGen++
		s.heap.push(healReq{
			level:    s.failedCount[g],
			failTime: sl.failTime,
			seq:      sl.queueSeq,
			slot:     int32(k),
			gen:      sl.queueGen,
		})
	}
}

// recordDDF appends one group-tagged data-loss event.
func (s *fleetSim) recordDDF(g int, t float64, cause Cause) {
	s.evGroup = append(s.evGroup, int32(g))
	s.evDDF = append(s.evDDF, DDF{Time: t, Cause: cause})
}

// resize prepares the scratch for a fleet of the given group count and
// group size, reusing backing arrays whenever they are large enough.
func (s *fleetSim) resize(groups, drives int) {
	total := groups * drives
	if cap(s.slots) < total {
		s.slots = make([]fleetSlot, total)
	}
	s.slots = s.slots[:total]
	for i := range s.slots {
		sl := &s.slots[i]
		sl.failed, sl.restoreEnd, sl.gen = false, 0, 0
		sl.defects = sl.defects[:0]
		sl.failTime, sl.ttr = 0, 0
		sl.queueSeq, sl.queueGen, sl.queued = 0, 0, false
	}
	if cap(s.rngs) < groups {
		s.rngs = make([]rng.RNG, groups)
	}
	s.rngs = s.rngs[:groups]
	if cap(s.failedCount) < groups {
		s.failedCount = make([]int32, groups)
		s.queuedCount = make([]int32, groups)
		s.suppressUntil = make([]float64, groups)
		s.suppressSlot = make([]int32, groups)
		s.degradedSince = make([]float64, groups)
	}
	s.failedCount = s.failedCount[:groups]
	s.queuedCount = s.queuedCount[:groups]
	s.suppressUntil = s.suppressUntil[:groups]
	s.suppressSlot = s.suppressSlot[:groups]
	s.degradedSince = s.degradedSince[:groups]
	for g := 0; g < groups; g++ {
		s.failedCount[g], s.queuedCount[g] = 0, 0
		s.suppressUntil[g], s.suppressSlot[g], s.degradedSince[g] = 0, -1, 0
	}
	s.q.reset()
	s.heap.reset()
	s.seq, s.reqSeq, s.defects = 0, 0, 0
	s.active, s.depth, s.maxDepth = 0, 0, 0
	s.depthT, s.depthI = 0, 0
	s.failures, s.rebuilds, s.waited = 0, 0, 0
	s.totalWait, s.maxWait, s.maxExposure = 0, 0, 0
	s.evGroup = s.evGroup[:0]
	s.evDDF = s.evDDF[:0]
}

// SimulateFleetInto runs one chronology of the whole fleet. Group g draws
// every sample from its own RNG stream baseStream+g of seed — the same
// stream iteration Offset+i uses in the scalar runner — so with unlimited
// repair slots and nil shared spares each group's chronology is
// bit-identical to an independent EventEngine run on that stream. Shared
// spares or a finite MaxConcurrentRebuilds couple the groups through the
// repair server: a failure burst in one group can starve another group's
// rebuild, stretching its exposure window.
//
// visit is called once per event-bearing group, in ascending group order,
// with that group's DDFs in chronological order. The slice is scratch
// backing reused across calls: callers must copy anything they keep.
// Event-free groups (the overwhelming majority in the rare-event regime)
// get no call. st, when non-nil, receives the chronology's heal-backlog
// statistics; pre-size st.GroupWaitHours to cfg.Groups to also collect
// per-group wait hours.
func SimulateFleetInto(cfg FleetConfig, seed, baseStream uint64, visit func(group int, ddfs []DDF), st *FleetStats) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s := fleetSimPool.Get().(*fleetSim)
	s.cfg, s.g = cfg, cfg.Group
	s.kern.compile(&s.g)
	s.resize(cfg.Groups, s.g.Drives)
	s.spares.reset(cfg.SharedSpares)
	if st != nil && len(st.GroupWaitHours) == cfg.Groups {
		s.groupWait = st.GroupWaitHours
		for g := range s.groupWait {
			s.groupWait[g] = 0
		}
	}
	s.run(seed, baseStream)
	if st != nil {
		gw := st.GroupWaitHours
		*st = FleetStats{
			Failures:         s.failures,
			Rebuilds:         s.rebuilds,
			ActiveAtEnd:      s.active,
			QueuedAtEnd:      s.depth,
			Waited:           s.waited,
			TotalWaitHours:   s.totalWait,
			MaxWaitHours:     s.maxWait,
			MaxQueueDepth:    s.maxDepth,
			MeanQueueDepth:   s.depthI / s.g.Mission,
			MaxExposureHours: s.maxExposure,
			GroupWaitHours:   gw,
		}
	}
	if visit != nil {
		s.visitEvents(visit)
	}
	s.release()
	fleetSimPool.Put(s)
	return nil
}

// run executes the event loop. The per-event semantics mirror
// eventSim.run exactly (lazy defect liveness, phantom scrub seqs, DDF
// suppression windows); the differences are per-group RNG streams and the
// repair server between a failure and its restore.
func (s *fleetSim) run(seed, baseStream uint64) {
	g := &s.g
	drives := g.Drives
	for grp := 0; grp < s.cfg.Groups; grp++ {
		r := &s.rngs[grp]
		r.SeedStream(seed, baseStream+uint64(grp))
		base := grp * drives
		for j := 0; j < drives; j++ {
			s.scheduleOpFail(base+j, 0, r)
			s.scheduleDefect(base+j, 0, r)
		}
	}

	for s.q.Len() > 0 {
		ev := s.q.pop()
		if ev.time > g.Mission {
			break
		}
		evSlot := int(ev.slot)
		sl := &s.slots[evSlot]
		grp := evSlot / drives
		r := &s.rngs[grp]
		switch ev.kind {
		case evOpFail:
			if ev.gen != sl.gen {
				continue
			}
			// DDF determination happens at the instant of the failure,
			// before this slot's state changes — the event engine's scan,
			// restricted to the group.
			failedOthers, defectSlot := 0, -1
			defectStart := math.Inf(1)
			base := grp * drives
			for k := base; k < base+drives; k++ {
				if k == evSlot {
					continue
				}
				o := &s.slots[k]
				switch {
				case o.failed:
					failedOthers++
				case len(o.defects) > 0:
					for i := range o.defects {
						d := &o.defects[i]
						if d.start < defectStart && defectLive(d, ev.time, ev.seq) {
							defectStart = d.start
							defectSlot = k
						}
					}
				}
			}
			sl.failed = true
			sl.gen++
			sl.defects = sl.defects[:0]
			sl.failTime = ev.time
			s.failures++
			s.noteDepth(ev.time, +1)
			s.failedCount[grp]++
			if s.failedCount[grp] == 1 {
				s.degradedSince[grp] = ev.time
			}
			// The group got more degraded: promote its waiting rebuilds.
			s.requeueGroup(grp)
			// Draw order matches the event engine: spare availability
			// first (no draw), then the TTR, then the replacement's defect
			// process — so contention never shifts a group's stream.
			rebuildFrom := s.spares.rebuildStart(ev.time)
			sl.ttr = s.kern.ttr.Draw(r)
			sl.restoreEnd = math.Inf(1)
			if rebuildFrom > ev.time {
				s.pushEv(rebuildFrom, evFleetSpare, ev.slot, sl.gen, 0, 0)
			} else {
				s.admit(evSlot, ev.time)
			}
			s.scheduleDefect(evSlot, ev.time, r)

			if ev.time >= s.suppressUntil[grp] {
				switch {
				case failedOthers >= g.Redundancy:
					s.recordDDF(grp, ev.time, CauseOpOp)
					s.suppressUntil[grp] = sl.restoreEnd
					s.suppressSlot[grp] = ev.slot
				case failedOthers == g.Redundancy-1 && defectSlot >= 0:
					s.recordDDF(grp, ev.time, CauseLdOp)
					s.suppressUntil[grp] = sl.restoreEnd
					s.suppressSlot[grp] = ev.slot
					// The defective drive is repaired together with the
					// failed one. If this rebuild is still waiting for a
					// spare or repair slot, restoreEnd is +Inf and the push
					// is discarded: the defect waits for its natural scrub,
					// exactly like the event engine's component-paused case.
					s.pushEv(sl.restoreEnd, evTruncateDefects, int32(defectSlot), s.slots[defectSlot].gen, 0, ev.time)
				}
			}

		case evOpRestore:
			if ev.gen != sl.gen {
				continue
			}
			sl.failed = false
			s.rebuilds++
			s.failedCount[grp]--
			if s.failedCount[grp] == 0 {
				if dur := ev.time - s.degradedSince[grp]; dur > s.maxExposure {
					s.maxExposure = dur
				}
			}
			s.scheduleOpFail(evSlot, ev.time, r)
			s.active--
			if s.limited() {
				// The group got less degraded: re-key its waiting rebuilds
				// before handing out the freed slot.
				s.requeueGroup(grp)
				s.grantNext(ev.time)
			}

		case evFleetSpare:
			if ev.gen != sl.gen {
				continue
			}
			s.admit(evSlot, ev.time)

		case evDefectArrive:
			if ev.gen != sl.gen {
				continue
			}
			s.defects++
			end, clearSeq := math.Inf(1), int64(math.MaxInt64)
			if g.Trans.TTScrub != nil {
				end = ev.time + s.kern.scrub.Draw(r)
				if end <= g.Mission {
					// Phantom correction, as in the untraced event engine:
					// consume the seq the queued clear event would have
					// held, so tie-break ranks match bit for bit.
					s.seq++
					clearSeq = s.seq
				}
			}
			// Compact defects that can never be live again (ended at or
			// before now): every future event has time >= ev.time and seq
			// beyond any already-assigned clearSeq, so defectLive is false
			// for them forever. Keeps per-slot lists short over a long
			// mission without perturbing any DDF decision.
			kept := sl.defects[:0]
			for i := range sl.defects {
				if sl.defects[i].end > ev.time {
					kept = append(kept, sl.defects[i])
				}
			}
			sl.defects = kept
			sl.defects = append(sl.defects, defectRec{id: s.defects, start: ev.time, end: end, clearSeq: clearSeq})
			s.scheduleDefect(evSlot, ev.time, r)

		case evTruncateDefects:
			if ev.gen != sl.gen {
				continue
			}
			kept := sl.defects[:0]
			for _, d := range sl.defects {
				if d.start > ev.arg {
					kept = append(kept, d)
				}
			}
			sl.defects = kept
		}
	}

	// Close the open accounting windows at mission end.
	s.noteDepth(g.Mission, 0)
	for grp := 0; grp < s.cfg.Groups; grp++ {
		if s.failedCount[grp] > 0 {
			if dur := g.Mission - s.degradedSince[grp]; dur > s.maxExposure {
				s.maxExposure = dur
			}
		}
	}
}

// visitEvents delivers the recorded DDFs group by group, ascending, each
// group's events in chronological order. The per-group slices alias the
// reused visit buffer.
func (s *fleetSim) visitEvents(visit func(group int, ddfs []DDF)) {
	n := len(s.evGroup)
	if n == 0 {
		return
	}
	idx := s.evIdx[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, int32(i))
	}
	s.evIdx = idx
	if n <= 32 {
		// Stable insertion sort by group; events were appended in time
		// order, so within-group order survives.
		for i := 1; i < n; i++ {
			v := idx[i]
			gv := s.evGroup[v]
			j := i - 1
			for ; j >= 0 && s.evGroup[idx[j]] > gv; j-- {
				idx[j+1] = idx[j]
			}
			idx[j+1] = v
		}
	} else {
		s.evSort.groups, s.evSort.idx = s.evGroup, idx
		sort.Sort(&s.evSort)
		s.evSort.groups, s.evSort.idx = nil, nil
	}
	buf := s.visitBuf[:0]
	for i := 0; i < n; {
		grp := s.evGroup[idx[i]]
		buf = buf[:0]
		j := i
		for ; j < n && s.evGroup[idx[j]] == grp; j++ {
			buf = append(buf, s.evDDF[idx[j]])
		}
		visit(int(grp), buf)
		i = j
	}
	s.visitBuf = buf[:0]
}

// SimulateFleet runs one fleet chronology and materializes every group's
// DDF list plus the heal-backlog statistics (including per-group wait
// hours). Group g draws from RNG stream baseStream+g of seed; see
// SimulateFleetInto for the coupling semantics. Prefer SimulateFleetInto
// for large fleets — this convenience wrapper allocates O(Groups).
func SimulateFleet(cfg FleetConfig, seed, baseStream uint64) ([]GroupDDFs, FleetStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, FleetStats{}, err
	}
	result := make([]GroupDDFs, cfg.Groups)
	for i := range result {
		result[i].Group = i
	}
	st := FleetStats{GroupWaitHours: make([]float64, cfg.Groups)}
	err := SimulateFleetInto(cfg, seed, baseStream, func(g int, ddfs []DDF) {
		cp := make([]DDF, len(ddfs))
		copy(cp, ddfs)
		result[g].DDFs = cp
	}, &st)
	if err != nil {
		return nil, FleetStats{}, err
	}
	return result, st, nil
}
