package sim

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func tracedConfig() Config {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	return cfg
}

func TestTraceKindStrings(t *testing.T) {
	cases := map[TraceKind]string{
		TraceOpFail:    "op-fail",
		TraceOpRestore: "restore",
		TraceDefect:    "defect",
		TraceScrub:     "scrub",
		TraceDDF:       "DDF",
		TraceKind(42):  "TraceKind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Tracing must not change the simulation: DDFs from SimulateTraced equal
// those from Simulate for the same stream.
func TestTracingIsPassive(t *testing.T) {
	cfg := tracedConfig()
	for i := 0; i < 200; i++ {
		plain, err := (EventEngine{}).Simulate(cfg, rng.ForStream(400, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		var trace Trace
		traced, err := SimulateTraced(cfg, rng.ForStream(400, uint64(i)), &trace)
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(traced) {
			t.Fatalf("iteration %d: %d vs %d DDFs", i, len(plain), len(traced))
		}
		for j := range plain {
			if plain[j] != traced[j] {
				t.Fatalf("iteration %d event %d differs", i, j)
			}
		}
		if trace.Count(TraceDDF) != len(plain) {
			t.Fatalf("trace recorded %d DDFs, engine returned %d",
				trace.Count(TraceDDF), len(plain))
		}
	}
}

// Structural invariants of the event stream.
func TestTraceInvariants(t *testing.T) {
	cfg := tracedConfig()
	for i := 0; i < 300; i++ {
		var trace Trace
		if _, err := SimulateTraced(cfg, rng.ForStream(401, uint64(i)), &trace); err != nil {
			t.Fatal(err)
		}
		prev := 0.0
		down := make(map[int]bool)
		defects := make(map[int]int)
		for _, e := range trace.Events {
			if e.Time < prev {
				t.Fatalf("iteration %d: events out of order", i)
			}
			prev = e.Time
			switch e.Kind {
			case TraceOpFail:
				if down[e.Slot] {
					t.Fatalf("iteration %d: slot %d failed while down", i, e.Slot)
				}
				down[e.Slot] = true
				defects[e.Slot] = 0 // dead drive's defects die with it
			case TraceOpRestore:
				if !down[e.Slot] {
					t.Fatalf("iteration %d: slot %d restored while up", i, e.Slot)
				}
				down[e.Slot] = false
			case TraceDefect:
				defects[e.Slot]++
			case TraceScrub:
				if defects[e.Slot] == 0 {
					t.Fatalf("iteration %d: slot %d scrubbed with no defect", i, e.Slot)
				}
				defects[e.Slot]--
			case TraceDDF:
				if e.Cause != CauseOpOp && e.Cause != CauseLdOp {
					t.Fatalf("iteration %d: DDF with cause %v", i, e.Cause)
				}
			}
		}
	}
}

func TestTraceSlotEvents(t *testing.T) {
	trace := &Trace{}
	trace.Observe(TraceEvent{Time: 1, Kind: TraceDefect, Slot: 2})
	trace.Observe(TraceEvent{Time: 2, Kind: TraceOpFail, Slot: 1})
	trace.Observe(TraceEvent{Time: 3, Kind: TraceScrub, Slot: 2})
	got := trace.SlotEvents(2)
	if len(got) != 2 || got[0].Kind != TraceDefect || got[1].Kind != TraceScrub {
		t.Errorf("SlotEvents = %+v", got)
	}
	if trace.Count(TraceOpFail) != 1 {
		t.Error("Count wrong")
	}
}

// Every DDF in the trace coincides with an op-fail event at the same time
// on the same slot — DDFs are always triggered by operational failures.
func TestTraceDDFCoincidesWithOpFail(t *testing.T) {
	cfg := tracedConfig()
	for i := 0; i < 300; i++ {
		var trace Trace
		if _, err := SimulateTraced(cfg, rng.ForStream(402, uint64(i)), &trace); err != nil {
			t.Fatal(err)
		}
		for j, e := range trace.Events {
			if e.Kind != TraceDDF {
				continue
			}
			// The emitting order puts the op-fail immediately before its DDF.
			found := false
			for k := j - 1; k >= 0 && trace.Events[k].Time == e.Time; k-- {
				if trace.Events[k].Kind == TraceOpFail && trace.Events[k].Slot == e.Slot {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("iteration %d: DDF at %v without coincident op-fail", i, e.Time)
			}
		}
	}
}
