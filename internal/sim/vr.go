package sim

// This file defines the variance-reduction (VR) configuration and the
// per-block tallies it produces. The techniques stack multiplicatively
// with importance sampling (Bias): the tilt makes DDFs common, and the
// block-level schemes below then squeeze the variance of the now-frequent
// weighted observations.
//
//   - Antithetic stream pairs: iterations 2j and 2j+1 share RNG stream j,
//     the odd member drawing the bitwise-complemented outputs (u ↦ ~u at
//     the 64-bit layer, i.e. u' ~ 1-u for every derived uniform). Pair
//     members are negatively correlated, so the pair mean has less than
//     half the single-draw variance.
//   - Stratified first-failure quantile: within each block, iteration
//     (pair) k overrides the first uniform consumed — the one driving slot
//     0's first operational-failure draw — with (k + u)/K, forcing one
//     sample per stratum of that quantile per block and removing the
//     between-stratum variance of the dominant input dimension.
//   - Analytic control variate: each iteration also reports the indicator
//     z = 1{any first-generation operational failure within the mission},
//     whose expectation EZ = 1 - exp(-Σ_s H_s(M)) is known in closed form
//     from the compiled kernels. The estimator subtracts c·(z̄ - EZ) with
//     the optimal c fitted online (stats.CVAccum).
//   - Conditional-DDF variate (cond): z counts the first-generation
//     failures whose drawn mate state would kill them — a mate failed
//     within the mean-rebuild window or carrying a live drawn defect —
//     with EZ the exact analytic.CondDDF quadrature over the Poisson
//     defect process. Strong exactly where the indicator variate is weak:
//     the scrubbed regime, where defects do not persist and almost all
//     variance is the defect-coincidence coin flip.
//
// All three act strictly within a block of BlockSize consecutive
// iterations, so block sums are iid observations: the campaign CI is a
// normal interval over block means, checkpoints serialize completed blocks
// verbatim, and resume is bit-exact by construction.

import "fmt"

// DefaultVRBlock is the block size used when VR is enabled without an
// explicit BlockSize: large enough for stable within-block stratification,
// small enough that a campaign accumulates many iid block means quickly.
const DefaultVRBlock = 256

// VR configures variance reduction for block-engine runs. The zero value
// disables every technique (plain Monte Carlo); BlockSize alone does not
// change results — bit-identity with the scalar engines holds whenever
// Enabled() is false — it only sets the batching granularity.
type VR struct {
	// Antithetic pairs iterations (2j, 2j+1) on RNG stream j with
	// complementary uniforms.
	Antithetic bool `json:"antithetic,omitempty"`
	// Stratify spreads each block's iterations (pairs, when Antithetic)
	// across equi-probable strata of the first operational-failure draw.
	Stratify bool `json:"stratify,omitempty"`
	// ControlVariate subtracts the analytic first-generation-failure
	// indicator with an online-fitted coefficient.
	ControlVariate bool `json:"control_variate,omitempty"`
	// CondVariate replaces the indicator control with the conditional-DDF
	// variate: the first-generation kill count z = Σ_s 1{T_s ≤ M}·κ_s,
	// evaluated from the drawn failure times and defect states, whose
	// exact expectation is the analytic.CondDDF quadrature (DESIGN.md
	// §12). It predicts the DDF indicator even when scrubbing erases
	// defect persistence — the regime where the plain indicator variate
	// is powerless. Mutually exclusive with ControlVariate; requires a
	// memoryless defect process (exponential TTLd or an NHPP rate).
	CondVariate bool `json:"cond_variate,omitempty"`
	// BlockSize is the iterations per VR block (0 = DefaultVRBlock). Must
	// be even when Antithetic is on.
	BlockSize int `json:"block_size,omitempty"`
}

// Enabled reports whether any variance-reduction technique is on. A bare
// BlockSize does not count: it changes scheduling, not the estimator.
func (v VR) Enabled() bool { return v.Antithetic || v.Stratify || v.ControlVariate || v.CondVariate }

// AnyControl reports whether either control-variate flavour is active —
// the paths that fit a coefficient and need the analytic expectation EZ.
func (v VR) AnyControl() bool { return v.ControlVariate || v.CondVariate }

// EffectiveBlock returns the block size actually used: BlockSize, or
// DefaultVRBlock when unset. Campaign-level schedulers align batches and
// shard offsets to multiples of this.
func (v VR) EffectiveBlock() int {
	if v.BlockSize > 0 {
		return v.BlockSize
	}
	return DefaultVRBlock
}

// validate checks the VR knobs in isolation.
func (v VR) validate() error {
	if v.BlockSize < 0 {
		return fmt.Errorf("sim: VR block size %d negative", v.BlockSize)
	}
	if v.Antithetic && v.EffectiveBlock()%2 != 0 {
		return fmt.Errorf("sim: antithetic pairing needs an even VR block size, got %d", v.EffectiveBlock())
	}
	if v.ControlVariate && v.CondVariate {
		return fmt.Errorf("sim: ControlVariate and CondVariate are mutually exclusive — pick one control")
	}
	return nil
}

// stream maps a global iteration index to its RNG stream and antithetic
// flag: with antithetic pairing, iterations 2j and 2j+1 both draw stream j,
// the odd member complemented. The map depends only on the global index, so
// results are invariant to worker count, batching, and resume points.
func (v VR) stream(global int) (stream uint64, anti bool) {
	if v.Antithetic {
		return uint64(global / 2), global%2 == 1
	}
	return uint64(global), false
}

// stratum returns the stratum index and stratum count for a global
// iteration, or (0, 0) when stratification is off. Antithetic pair members
// share a stratum (the complemented uniform folds into the same subcell).
func (v VR) stratum(global int) (j, k int) {
	if !v.Stratify {
		return 0, 0
	}
	b := v.EffectiveBlock()
	if v.Antithetic {
		return (global / 2) % (b / 2), b / 2
	}
	return global % b, b
}

// VRBlock is one completed block's tallies: plain sums, so blocks merge,
// serialize, and resume exactly.
type VRBlock struct {
	// Y is the sum of per-iteration observations y_i = w_i·1{group i had a
	// DDF} (w_i = 1 unbiased); Z the sum of the weighted control-variate
	// indicators z_i.
	Y float64 `json:"y"`
	Z float64 `json:"z,omitempty"`
	// Y2 is Σ y_i² — the naive (unblocked) variance diagnostic.
	Y2 float64 `json:"y2,omitempty"`
	// C is Σ y_even·y_odd over the block's antithetic pairs and P counts
	// them — the pair-level tally behind the negative-correlation
	// diagnostic.
	C float64 `json:"c,omitempty"`
	P int     `json:"p,omitempty"`
	// N is the number of iterations in the block (== BlockSize except for
	// clipped edge blocks of unaligned runs).
	N int `json:"n"`
}

// VRTally accumulates a run's variance-reduction state: the per-block sums
// plus the analytic control-variate expectation. It rides on SparseResult,
// merges in offset order like the event index, and is what campaign
// checkpoints persist for bit-exact resume.
type VRTally struct {
	// BlockSize is the block length the sums were accumulated under.
	BlockSize int
	// EZ is the analytic expectation of the control variate under the true
	// (untilted) measure: in [0, 1] for the indicator variate, in
	// [0, drives] for the conditional-DDF count.
	EZ float64
	// Blocks holds every completed (or edge-clipped) block in iteration
	// order.
	Blocks []VRBlock
}

// merge appends another tally's blocks; both sides must come from the same
// configuration (equal block size and EZ), which every runner/campaign path
// guarantees by construction.
func (t *VRTally) merge(o *VRTally) {
	if t.BlockSize == 0 {
		t.BlockSize, t.EZ = o.BlockSize, o.EZ
	}
	t.Blocks = append(t.Blocks, o.Blocks...)
}

// Iterations returns the total iteration count across blocks.
func (t *VRTally) Iterations() int {
	n := 0
	for _, b := range t.Blocks {
		n += b.N
	}
	return n
}

// Pairs returns the total antithetic pair count across blocks.
func (t *VRTally) Pairs() int {
	n := 0
	for _, b := range t.Blocks {
		n += b.P
	}
	return n
}

// VRBlockObserver is implemented by collectors that want the block-level
// variance-reduction tallies alongside the per-iteration Observe stream.
// The runner calls it once per block, in block order, after the block's
// iterations have been observed; blockSize and ez are constant over a run.
type VRBlockObserver interface {
	ObserveVRBlock(blockSize int, ez float64, b VRBlock)
}
