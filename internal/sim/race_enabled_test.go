//go:build race

package sim

// raceEnabled reports whether the race detector is active. Race
// instrumentation allocates on paths that are allocation-free in normal
// builds, so the strict zero-alloc guards skip themselves under -race
// (the CI race job covers correctness; the plain job gates allocations).
const raceEnabled = true
