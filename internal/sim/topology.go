package sim

import (
	"fmt"
	"math"
	"strings"

	"raidrel/internal/dist"
)

// Component is one shared, non-drive part of a RAID group — an enclosure,
// expander, or controller — whose failure renders every covered drive slot
// simultaneously inaccessible. Components carry their own operational-
// failure and repair distributions and alternate between up and down like
// drives do, but a component failure is *not* data loss: the drives come
// back when the component is repaired. While a covering component is down,
// a covered drive cannot serve reads and an in-flight rebuild of a covered
// slot makes no progress (it resumes, with its remaining repair time, when
// access is restored) — that paused-rebuild window is how shared hardware
// stretches the DDF exposure window.
type Component struct {
	// Name identifies the component in errors, traces, and fingerprints.
	Name string
	// Drives lists the drive slots (0-based) the component carries. A
	// slot is inaccessible while any covering component is down.
	Drives []int
	// Paths is the number of redundant instances of the component (dual
	// porting, paired expanders): the component is down only while all
	// Paths instances are simultaneously failed. 0 means 1.
	Paths int
	// TTOp is one instance's time to failure, measured from (re)entry
	// into service. TTR is one instance's repair time.
	TTOp dist.Distribution
	TTR  dist.Distribution
}

// paths returns the effective path count (Paths, defaulting to 1).
func (c Component) paths() int {
	if c.Paths <= 0 {
		return 1
	}
	return c.Paths
}

// Topology describes the shared-component structure of a RAID group. The
// zero value (and nil) is the flat, drive-only topology the paper models:
// no shared hardware, every slot independent. A topology with components
// couples the slots and is supported by the event engine only — like
// Spares, the coupling cannot be expressed by the per-slot precomputed
// engines.
type Topology struct {
	Components []Component
}

// Coupled reports whether the topology actually couples drive slots — i.e.
// whether it carries any components. A nil or empty topology is flat and
// compiles down to exactly the per-drive model.
func (t *Topology) Coupled() bool {
	return t != nil && len(t.Components) > 0
}

// Validate checks the topology against a group of the given size.
func (t *Topology) Validate(drives int) error {
	if !t.Coupled() {
		return nil
	}
	seen := make(map[string]bool, len(t.Components))
	for i, c := range t.Components {
		if c.Name == "" {
			return fmt.Errorf("sim: topology component %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("sim: duplicate topology component name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Paths < 0 {
			return fmt.Errorf("sim: component %q has negative path count %d", c.Name, c.Paths)
		}
		if len(c.Drives) == 0 {
			return fmt.Errorf("sim: component %q covers no drive slots", c.Name)
		}
		cov := make(map[int]bool, len(c.Drives))
		for _, d := range c.Drives {
			if d < 0 || d >= drives {
				return fmt.Errorf("sim: component %q covers slot %d, outside the group's %d drives", c.Name, d, drives)
			}
			if cov[d] {
				return fmt.Errorf("sim: component %q covers slot %d twice", c.Name, d)
			}
			cov[d] = true
		}
		if c.TTOp == nil {
			return fmt.Errorf("sim: component %q needs a TTOp distribution", c.Name)
		}
		if c.TTR == nil {
			return fmt.Errorf("sim: component %q needs a TTR distribution", c.Name)
		}
	}
	return nil
}

// String renders the topology deterministically — the campaign fingerprint
// hashes it, so two specs describing the same coupled topology must print
// identically.
func (t *Topology) String() string {
	if !t.Coupled() {
		return "flat"
	}
	var b strings.Builder
	for i, c := range t.Components {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s{paths=%d,drives=%v,ttop=%v,ttr=%v}", c.Name, c.paths(), c.Drives, c.TTOp, c.TTR)
	}
	return b.String()
}

// topoScratch is the event engine's reusable per-run component state. All
// slices persist across iterations; attach resizes and zeroes them. When
// the configuration is flat, topo stays nil and the engine's hot loop pays
// a single pointer check per availability-relevant event.
type topoScratch struct {
	topo *Topology

	// Compiled per-component sampler kernels. Component draws are never
	// tilted under Bias: their likelihood-ratio factor is exactly 1, so
	// importance-sampled runs remain unbiased with coupled topologies.
	ttopK, ttrK []dist.Kernel

	// instComp maps a path-instance index to its component. Instances are
	// numbered component-major: component c's instances occupy
	// [instBase(c), instBase(c)+paths).
	instComp []int32
	// down counts each component's currently failed path instances; the
	// component is down while down[c] == paths(c).
	down []int32

	// inacc counts, per drive slot, the fully-down components covering it.
	inacc []int32
	// paused marks slots whose rebuild is held because the slot is
	// inaccessible; pending holds the remaining repair hours to run once
	// access returns.
	paused  []bool
	pending []float64
	// restoreID invalidates a slot's queued restore event when a pause
	// cancels it mid-rebuild: the event carries the id it was scheduled
	// with and is dropped if the slot's current id moved on.
	restoreID []int64

	// unavailable tracks whether the group is currently in a
	// data-unavailability episode (more than Redundancy slots lost, to
	// failure or inaccessibility); onset events are recorded only on the
	// available→unavailable transition.
	unavailable bool
	// suppressSlot is the slot whose pending restore ends the current DDF
	// suppression window, or -1. It is only needed under coupling, where a
	// pause can move that restore after the suppression time was recorded.
	suppressSlot int
}

// attach compiles cfg's topology into the scratch. Flat configurations
// leave topo nil and cost nothing per event.
func (tp *topoScratch) attach(cfg *Config) {
	if !cfg.Topology.Coupled() {
		tp.topo = nil
		return
	}
	t := cfg.Topology
	tp.topo = t
	nc := len(t.Components)
	if cap(tp.ttopK) < nc {
		tp.ttopK = make([]dist.Kernel, nc)
		tp.ttrK = make([]dist.Kernel, nc)
		tp.down = make([]int32, nc)
	}
	tp.ttopK, tp.ttrK, tp.down = tp.ttopK[:nc], tp.ttrK[:nc], tp.down[:nc]
	ni := 0
	for c, comp := range t.Components {
		tp.ttopK[c] = dist.Compile(comp.TTOp)
		tp.ttrK[c] = dist.Compile(comp.TTR)
		tp.down[c] = 0
		ni += comp.paths()
	}
	if cap(tp.instComp) < ni {
		tp.instComp = make([]int32, ni)
	}
	tp.instComp = tp.instComp[:ni]
	i := 0
	for c, comp := range t.Components {
		for p := 0; p < comp.paths(); p++ {
			tp.instComp[i] = int32(c)
			i++
		}
	}
	n := cfg.Drives
	if cap(tp.inacc) < n {
		tp.inacc = make([]int32, n)
		tp.paused = make([]bool, n)
		tp.pending = make([]float64, n)
		tp.restoreID = make([]int64, n)
	}
	tp.inacc, tp.paused = tp.inacc[:n], tp.paused[:n]
	tp.pending, tp.restoreID = tp.pending[:n], tp.restoreID[:n]
	for s := 0; s < n; s++ {
		tp.inacc[s], tp.paused[s], tp.pending[s], tp.restoreID[s] = 0, false, 0, 0
	}
	tp.unavailable = false
	tp.suppressSlot = -1
}

// release drops distribution references (pooled scratch must not pin a
// caller's configuration), keeping the backing arrays.
func (tp *topoScratch) release() {
	tp.topo = nil
	for i := range tp.ttopK {
		tp.ttopK[i] = dist.Kernel{}
		tp.ttrK[i] = dist.Kernel{}
	}
}

// compFail processes one path instance's failure at time t, returning
// whether its component just went fully down.
func (tp *topoScratch) compFail(inst int) (comp int, nowDown bool) {
	comp = int(tp.instComp[inst])
	tp.down[comp]++
	return comp, int(tp.down[comp]) == tp.topo.Components[comp].paths()
}

// compRestore processes one path instance's repair, returning whether its
// component just came back up (was fully down).
func (tp *topoScratch) compRestore(inst int) (comp int, wasDown bool) {
	comp = int(tp.instComp[inst])
	wasDown = int(tp.down[comp]) == tp.topo.Components[comp].paths()
	tp.down[comp]--
	return comp, wasDown
}

// lost counts the slots currently lost to the group — operationally failed
// or (component-)inaccessible — and whether any non-failed slot is lost to
// inaccessibility alone (the marker of a component-caused episode).
func (tp *topoScratch) lost(slots []slotState) (lost int, compInvolved bool) {
	for i := range slots {
		switch {
		case slots[i].failed:
			lost++
		case tp.inacc[i] > 0:
			lost++
			compInvolved = true
		}
	}
	return lost, compInvolved
}

// pauseSlot holds an in-flight rebuild of slot when it becomes
// inaccessible at time t: the queued restore is invalidated and the
// remaining repair hours are kept to resume from. Reports whether a
// rebuild was actually paused.
func (tp *topoScratch) pauseSlot(sl *slotState, slot int, t float64) bool {
	if !sl.failed || tp.paused[slot] {
		return false
	}
	tp.paused[slot] = true
	tp.pending[slot] = sl.restoreEnd - t
	if tp.pending[slot] < 0 {
		tp.pending[slot] = 0
	}
	tp.restoreID[slot]++
	sl.restoreEnd = math.Inf(1)
	return true
}
