// Package sim implements the paper's sequential Monte Carlo simulation of
// an N+1 RAID group (§5). Each iteration simulates one group's chronology
// over the mission: every drive slot carries its own time-to-operational-
// failure, time-to-restore, time-to-latent-defect, and time-to-scrub
// distributions; the engine detects double-disk failures (DDFs) under the
// paper's ordering rules:
//
//   - two overlapping operational failures are a DDF;
//   - an operational failure while another drive carries an uncorrected
//     latent defect is a DDF (defect first, failure second);
//   - an operational failure followed by a latent defect is NOT a DDF,
//     nor are multiple coexisting latent defects;
//   - once a DDF occurs, another cannot occur until the first is restored;
//   - a DDF involving a defective drive clears that defect at the same
//     restore time as the concomitant operational failure.
//
// Two independent engines implement the same semantics — an event-queue
// engine and a per-slot interval engine patterned on the paper's Fig. 5
// timing diagram — and cross-validate each other in tests.
package sim

import (
	"fmt"
	"math"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// Cause discriminates the two double-disk-failure scenarios.
type Cause int

const (
	// CauseOpOp is two simultaneous operational failures.
	CauseOpOp Cause = iota + 1
	// CauseLdOp is an operational failure striking while another drive
	// carries an uncorrected latent defect.
	CauseLdOp
	// CauseUnavail marks the onset of a data-unavailability episode: more
	// drive slots than the redundancy covers are simultaneously lost, with
	// at least one lost to a shared-component failure rather than a drive
	// failure. Unlike the DDF causes it is not data loss — the data comes
	// back when the component is repaired — so every loss statistic
	// (TotalDDFs, cause splits, the campaign CI) excludes it. Only coupled
	// topologies produce it.
	CauseUnavail
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseOpOp:
		return "op+op"
	case CauseLdOp:
		return "ld+op"
	case CauseUnavail:
		return "unavail"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// DDF is one double-disk-failure event in a group chronology.
type DDF struct {
	Time  float64 // hours into the mission
	Cause Cause
}

// Transitions bundles the four per-drive distributions of the paper's
// Fig. 4. TTLd may be nil to disable latent defects entirely (the Fig. 6
// variants); TTScrub may be nil to model a system that never scrubs (the
// "no scrub" rows of Table 3).
type Transitions struct {
	TTOp    dist.Distribution // time to operational failure of a (new) drive
	TTR     dist.Distribution // time to restore an operational failure
	TTLd    dist.Distribution // time to the next latent defect on a drive
	TTScrub dist.Distribution // time from defect creation to scrub correction

	// TTLdRate optionally replaces TTLd with a non-homogeneous Poisson
	// defect process: arrivals occur with instantaneous rate TTLdRate(t)
	// defects per drive-hour, t in system time. This models §6.3's usage
	// dependence dynamically — duty-cycled workloads corrupt data faster
	// during busy periods. Sampled by thinning against TTLdRateMax, which
	// must bound the rate over the mission.
	TTLdRate    func(t float64) float64
	TTLdRateMax float64
}

// latentEnabled reports whether any defect process is configured.
func (t Transitions) latentEnabled() bool {
	return t.TTLd != nil || t.TTLdRate != nil
}

// Config describes one simulated RAID group.
type Config struct {
	// Drives is the total number of drives in the group (the paper's N+1).
	Drives int
	// Redundancy is the number of simultaneous drive losses the group
	// tolerates: 1 for RAID 4/5 (the paper's subject), 2 for the RAID 6
	// extension the paper's conclusion anticipates.
	Redundancy int
	// Mission is the simulated horizon in hours (the paper uses 87,600).
	Mission float64
	// Trans are the per-drive transition distributions.
	Trans Transitions
	// SlotTTOp optionally overrides the operational-failure distribution
	// per drive slot — groups assembled from mixed manufacturing vintages
	// (Fig. 2) have genuinely heterogeneous drives. When non-nil its
	// length must equal Drives; nil entries fall back to Trans.TTOp.
	SlotTTOp []dist.Distribution
	// Spares optionally bounds the spare-drive pool; nil means a spare is
	// always on hand (the paper's assumption). Only the event engine
	// supports finite spares: the pool couples the drive slots, which the
	// per-slot interval engine cannot express.
	Spares *SparePolicy
	// Topology optionally couples the drive slots through shared
	// components (enclosures, expanders, controllers): a component failure
	// renders every covered slot inaccessible — pausing in-flight rebuilds
	// — until the component is repaired, and sustained inaccessibility
	// beyond the redundancy is recorded as a CauseUnavail onset event. A
	// nil (or component-free) topology is the flat per-drive model and
	// changes nothing; coupled topologies run on the event engine only.
	Topology *Topology
	// Bias optionally turns on failure-biased importance sampling: hazards
	// are scaled up during sampling and each iteration carries a
	// likelihood-ratio weight so the weighted estimator stays unbiased.
	// The zero value is plain (unbiased) Monte Carlo.
	Bias Bias
	// VR optionally turns on block-level variance reduction — antithetic
	// stream pairs, stratified first-failure draws, and/or the analytic
	// control variate — stacking multiplicatively with Bias. Requires the
	// block engine (BlockEngine); the runner enforces this. The zero value
	// is plain independent sampling.
	VR VR
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Drives < 2 {
		return fmt.Errorf("sim: need >= 2 drives, got %d", c.Drives)
	}
	if c.Redundancy < 1 || c.Redundancy >= c.Drives {
		return fmt.Errorf("sim: redundancy %d invalid for %d drives", c.Redundancy, c.Drives)
	}
	if !(c.Mission > 0) || math.IsInf(c.Mission, 0) {
		return fmt.Errorf("sim: mission must be positive and finite, got %v", c.Mission)
	}
	if c.Trans.TTOp == nil {
		return fmt.Errorf("sim: TTOp distribution is required")
	}
	if c.Trans.TTR == nil {
		return fmt.Errorf("sim: TTR distribution is required")
	}
	if c.Trans.TTScrub != nil && !c.Trans.latentEnabled() {
		return fmt.Errorf("sim: TTScrub set but latent defects disabled (TTLd nil)")
	}
	if c.Trans.TTLd != nil && c.Trans.TTLdRate != nil {
		return fmt.Errorf("sim: TTLd and TTLdRate are mutually exclusive")
	}
	if c.Trans.TTLdRate != nil && !(c.Trans.TTLdRateMax > 0) {
		return fmt.Errorf("sim: TTLdRate needs a positive TTLdRateMax bound")
	}
	if c.Trans.TTLdRate == nil && c.Trans.TTLdRateMax != 0 {
		return fmt.Errorf("sim: TTLdRateMax set without TTLdRate")
	}
	if c.SlotTTOp != nil && len(c.SlotTTOp) != c.Drives {
		return fmt.Errorf("sim: %d slot TTOp overrides for %d drives", len(c.SlotTTOp), c.Drives)
	}
	if err := c.Spares.Validate(); err != nil {
		return err
	}
	if err := c.Topology.Validate(c.Drives); err != nil {
		return err
	}
	if c.Topology.Coupled() && c.Spares != nil {
		return fmt.Errorf("sim: a finite spare pool cannot be combined with a coupled component topology")
	}
	if c.Topology.Coupled() && c.VR.Enabled() {
		return fmt.Errorf("sim: variance reduction requires the block engine, which cannot run a coupled component topology; use the event engine without VR")
	}
	if err := c.Bias.validate(); err != nil {
		return err
	}
	if err := c.VR.validate(); err != nil {
		return err
	}
	if c.Bias.ldEnabled() && c.Trans.TTLd == nil {
		if c.Trans.TTLdRate != nil {
			return fmt.Errorf("sim: latent-defect bias is unsupported for the NHPP defect process (TTLdRate)")
		}
		return fmt.Errorf("sim: latent-defect bias set but latent defects disabled (TTLd nil)")
	}
	if c.VR.CondVariate && c.Trans.TTLd != nil {
		// The cond variate's analytic expectation integrates a
		// Poisson-thinned live-defect count; a non-memoryless renewal
		// defect process would silently bias EZ.
		if _, ok := dist.AsPoissonRate(c.Trans.TTLd); !ok {
			return fmt.Errorf("sim: the conditional-DDF variate requires a memoryless defect process (exponential TTLd or an NHPP TTLdRate), got TTLd %v", c.Trans.TTLd)
		}
	}
	return nil
}

// ttopFor returns the operational-failure distribution for a slot,
// honouring per-slot overrides.
func (c Config) ttopFor(slot int) dist.Distribution {
	if c.SlotTTOp != nil && c.SlotTTOp[slot] != nil {
		return c.SlotTTOp[slot]
	}
	return c.Trans.TTOp
}

// Engine simulates one RAID-group chronology and returns its DDF events.
//
// Simulate discards the iteration's importance-sampling weight; runs with
// cfg.Bias enabled must go through IntoSimulator (the runner enforces
// this) so the weight reaches the estimator.
type Engine interface {
	// Simulate runs one iteration of the group chronology using r and
	// returns the DDFs in chronological order.
	Simulate(cfg Config, r *rng.RNG) ([]DDF, error)
}

// IntoSimulator is the allocation-free fast path of an Engine: it appends
// the chronology's DDFs to buf (which may be nil) and returns the extended
// slice, reusing internal scratch between calls. In the paper's rare-event
// regime almost every iteration returns len(buf) unchanged, so a runner
// that reuses one buffer per worker simulates in a zero-allocation steady
// state. Engines that implement it must produce bit-identical results to
// their Simulate method.
//
// logW is the iteration's importance-sampling log likelihood-ratio weight,
// the sum of ln(f/g) over every variate drawn from a tilted distribution;
// exactly 0 when cfg.Bias is disabled.
type IntoSimulator interface {
	SimulateInto(cfg Config, r *rng.RNG, buf []DDF) (out []DDF, logW float64, err error)
}
