package sim

import (
	"math"
	"reflect"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// blockIdentityConfigs covers every draw path the block engine specializes:
// the paper's base case (general-β TTOp with the lazy gen-1 skip, lazy
// β = 3 scrub ends), exponential transitions with frequent events (heavy
// sweep/suppression/concomitant-repair traffic), latent defects without
// scrub, per-slot overrides, the NHPP defect process, and the θ-tilted
// variants with their censored-weight bookkeeping.
func blockIdentityConfigs() map[string]Config {
	fastLatent := fastConfig()
	fastLatent.Trans.TTLd = dist.MustExponential(1e-4)
	fastLatent.Trans.TTScrub = dist.MustExponential(1e-2)

	noScrub := fastConfig()
	noScrub.Trans.TTLd = dist.MustExponential(1e-4)

	mixed := paperBaseConfig()
	mixed.SlotTTOp = make([]dist.Distribution, mixed.Drives)
	mixed.SlotTTOp[0] = dist.MustWeibull(1.12, 200000, 0)
	mixed.SlotTTOp[3] = dist.MustExponential(1e-5)

	nhpp := fastConfig()
	nhpp.Trans.TTLdRate = func(t float64) float64 { return 1e-4 * (1 + 0.5*math.Sin(t/1000)) }
	nhpp.Trans.TTLdRateMax = 1.5e-4
	nhpp.Trans.TTScrub = dist.MustExponential(1e-2)

	biased := paperBaseConfig()
	biased.Bias.Op = 8

	biasedBoth := paperBaseConfig()
	biasedBoth.Bias.Op = 4
	biasedBoth.Bias.Ld = 3

	return map[string]Config{
		"paper base case": paperBaseConfig(),
		"fast latent":     fastLatent,
		"no scrub":        noScrub,
		"mixed vintage":   mixed,
		"nhpp":            nhpp,
		"biased op":       biased,
		"biased op+ld":    biasedBoth,
	}
}

// TestBlockEngineBitIdentity is the block engine's core contract: on the
// same RNG stream it must reproduce the interval engine's output exactly —
// every DDF time and cause and the log weight, bit for bit — across a seed
// grid, for both plain and θ-tilted sampling. This is what lets campaigns
// switch engines (or resume a scalar checkpoint under the block engine)
// without perturbing a single result.
func TestBlockEngineBitIdentity(t *testing.T) {
	for name, cfg := range blockIdentityConfigs() {
		t.Run(name, func(t *testing.T) {
			var ra, rb rng.RNG
			var bufA, bufB []DDF
			events := 0
			for stream := uint64(0); stream < 2000; stream++ {
				ra.SeedStream(42, stream)
				rb.SeedStream(42, stream)
				var lwA, lwB float64
				var err error
				bufA, lwA, err = IntervalEngine{}.SimulateInto(cfg, &ra, bufA[:0])
				if err != nil {
					t.Fatal(err)
				}
				bufB, lwB, err = BlockEngine{}.SimulateInto(cfg, &rb, bufB[:0])
				if err != nil {
					t.Fatal(err)
				}
				if len(bufA) != len(bufB) {
					t.Fatalf("stream %d: interval %d events, block %d events", stream, len(bufA), len(bufB))
				}
				for i := range bufA {
					if math.Float64bits(bufA[i].Time) != math.Float64bits(bufB[i].Time) || bufA[i].Cause != bufB[i].Cause {
						t.Fatalf("stream %d event %d: interval %+v, block %+v", stream, i, bufA[i], bufB[i])
					}
				}
				if math.Float64bits(lwA) != math.Float64bits(lwB) {
					t.Fatalf("stream %d: interval logW %v, block logW %v", stream, lwA, lwB)
				}
				events += len(bufA)
			}
			if events == 0 && name != "paper base case" && name != "biased op" && name != "biased op+ld" && name != "mixed vintage" {
				t.Errorf("no events in 2000 streams; identity test is vacuous")
			}
		})
	}
}

// TestBlockRunnerMatchesScalar: the runner's batched block path must
// observe exactly the scalar path's stream — same groups, same events,
// same weights — including with unaligned offsets (clipped edge blocks)
// and multiple workers.
func TestBlockRunnerMatchesScalar(t *testing.T) {
	for name, cfg := range blockIdentityConfigs() {
		t.Run(name, func(t *testing.T) {
			want, err := RunSparse(RunSpec{Config: cfg, Iterations: 500, Seed: 99, Engine: IntervalEngine{}, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range []RunSpec{
				{Config: cfg, Iterations: 500, Seed: 99, Engine: BlockEngine{}, Workers: 1},
				{Config: cfg, Iterations: 500, Seed: 99, Engine: BlockEngine{Block: 64}, Workers: 3},
				{Config: cfg, Iterations: 500, Seed: 99, Engine: BlockEngine{Block: 7}, Workers: 4},
			} {
				got, err := RunSparse(spec)
				if err != nil {
					t.Fatal(err)
				}
				if got.Groups != want.Groups || !reflect.DeepEqual(got.Events, want.Events) {
					t.Fatalf("Block:%d Workers:%d: block-path events differ from scalar path",
						spec.Engine.(BlockEngine).Block, spec.Workers)
				}
				if got.VR != nil {
					t.Fatal("VR tallies attached to a VR-disabled run")
				}
			}

			// Unaligned offset: [0,n) must equal [0,k) ++ [k,n) with k not a
			// block multiple, so edge blocks clip correctly.
			const n, k = 500, 137
			head, err := RunSparse(RunSpec{Config: cfg, Iterations: k, Seed: 99, Engine: BlockEngine{Block: 64}})
			if err != nil {
				t.Fatal(err)
			}
			tail, err := RunSparse(RunSpec{Config: cfg, Iterations: n - k, Seed: 99, Offset: k, Engine: BlockEngine{Block: 64}, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			head.Merge(tail)
			if head.Groups != want.Groups || !reflect.DeepEqual(head.Events, want.Events) {
				t.Fatal("offset-split block runs differ from the whole run")
			}
		})
	}
}

// TestBlockEngineRejections: configurations outside the block engine's
// compiled-kernel domain must be refused, not silently mis-simulated.
func TestBlockEngineRejections(t *testing.T) {
	spares := fastConfig()
	one := 1
	spares.Spares = &SparePolicy{Initial: one}
	var r rng.RNG
	r.SeedStream(1, 0)
	if _, _, err := (BlockEngine{}).SimulateInto(spares, &r, nil); err == nil {
		t.Error("finite spare pool accepted")
	}

	generic := fastConfig()
	generic.Trans.TTR = newScripted(5)
	r.SeedStream(1, 0)
	if _, _, err := (BlockEngine{}).SimulateInto(generic, &r, nil); err == nil {
		t.Error("generic (scripted) kernel accepted")
	}

	vrScalar := fastConfig()
	vrScalar.VR.Antithetic = true
	if _, err := RunSparse(RunSpec{Config: vrScalar, Iterations: 10, Seed: 1, Engine: IntervalEngine{}}); err == nil {
		t.Error("VR run through a scalar engine accepted")
	}
}

// TestVRStreamMapping pins the global-index → (stream, antithetic,
// stratum) maps the worker-invariance and resume guarantees rest on.
func TestVRStreamMapping(t *testing.T) {
	v := VR{Antithetic: true, Stratify: true, BlockSize: 8}
	for g, want := range []struct {
		stream uint64
		anti   bool
		j, k   int
	}{
		{0, false, 0, 4}, {0, true, 0, 4},
		{1, false, 1, 4}, {1, true, 1, 4},
		{2, false, 2, 4}, {2, true, 2, 4},
		{3, false, 3, 4}, {3, true, 3, 4},
		{4, false, 0, 4}, {4, true, 0, 4},
	} {
		stream, anti := v.stream(g)
		j, k := v.stratum(g)
		if stream != want.stream || anti != want.anti || j != want.j || k != want.k {
			t.Fatalf("g=%d: got (%d,%v,%d,%d), want %+v", g, stream, anti, j, k, want)
		}
	}
	plain := VR{}
	if s, a := plain.stream(7); s != 7 || a {
		t.Fatal("plain stream map must be the identity")
	}
	if j, k := plain.stratum(7); j != 0 || k != 0 {
		t.Fatal("plain stratum map must be disabled")
	}
}

// TestAntitheticNegativeCorrelation is the statistical sanity check behind
// the antithetic scheme: complementing the uniform stream must
// anti-correlate the pair's DDF indicators, so the mean pair product sits
// below the squared mean — strictly, at a sample size where a positive or
// zero correlation would be a clear implementation bug.
func TestAntitheticNegativeCorrelation(t *testing.T) {
	// fastConfig's ~99% DDF probability leaves no variance to reduce; a
	// 3× longer MTBF puts the rate near 35%, where the pairing bites.
	cfg := fastConfig()
	cfg.Trans.TTOp = dist.MustExponential(1.0 / 30000)
	cfg.VR = VR{Antithetic: true, BlockSize: 64}
	run, err := RunSparse(RunSpec{Config: cfg, Iterations: 8192, Seed: 5, Engine: BlockEngine{}})
	if err != nil {
		t.Fatal(err)
	}
	if run.VR == nil {
		t.Fatal("VR run produced no tallies")
	}
	var sumY, sumC float64
	var n, pairs int
	for _, b := range run.VR.Blocks {
		sumY += b.Y
		sumC += b.C
		n += b.N
		pairs += b.P
	}
	if n != 8192 || pairs != 4096 {
		t.Fatalf("tallies cover %d iterations / %d pairs, want 8192 / 4096", n, pairs)
	}
	mean := sumY / float64(n)
	pairMean := sumC / float64(pairs)
	if mean == 0 {
		t.Fatal("no events; correlation test is vacuous")
	}
	if cov := pairMean - mean*mean; cov >= 0 {
		t.Fatalf("antithetic pair covariance %v is not negative (mean %v, pair mean %v)", cov, mean, pairMean)
	}
}

// TestBlockRunnerWorkerInvarianceVR: with the full VR stack plus
// importance sampling, results (events, weights, and block tallies) must
// be bit-identical for any worker count — the guarantee that makes VR
// campaigns checkpointable. Run under -race this also exercises the block
// path's concurrency.
func TestBlockRunnerWorkerInvarianceVR(t *testing.T) {
	cfg := paperBaseConfig()
	cfg.Bias.Op = 8
	cfg.VR = VR{Antithetic: true, Stratify: true, ControlVariate: true, BlockSize: 128}
	run := func(workers int) *SparseResult {
		t.Helper()
		res, err := RunSparse(RunSpec{Config: cfg, Iterations: 1024, Seed: 77, Engine: BlockEngine{}, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, five := run(1), run(5)
	if !reflect.DeepEqual(one.Events, five.Events) {
		t.Fatal("worker counts produced different events under VR")
	}
	if one.VR == nil || five.VR == nil || !reflect.DeepEqual(one.VR, five.VR) {
		t.Fatal("worker counts produced different VR tallies")
	}
	if len(one.VR.Blocks) != 1024/128 {
		t.Fatalf("got %d blocks, want %d", len(one.VR.Blocks), 1024/128)
	}
	if one.VR.EZ <= 0 || one.VR.EZ >= 1 {
		t.Fatalf("EZ = %v out of (0,1)", one.VR.EZ)
	}
	if one.TotalDDFs == 0 {
		t.Error("biased VR run produced no events; invariance test is vacuous")
	}
}

// TestStratifiedMeanUnbiased: stratifying the first draw must leave the
// estimator's expectation unchanged — compare a stratified run's event
// rate against the plain rate at a tolerance a few standard errors wide.
func TestStratifiedMeanUnbiased(t *testing.T) {
	cfg := fastConfig()
	const iters = 16384
	plain, err := RunSparse(RunSpec{Config: cfg, Iterations: iters, Seed: 11, Engine: BlockEngine{}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.VR = VR{Stratify: true, BlockSize: 128}
	strat, err := RunSparse(RunSpec{Config: cfg, Iterations: iters, Seed: 12, Engine: BlockEngine{}})
	if err != nil {
		t.Fatal(err)
	}
	p := float64(plain.GroupsWithDDF()) / iters
	q := float64(strat.GroupsWithDDF()) / iters
	se := math.Sqrt(2 * p * (1 - p) / iters)
	if diff := math.Abs(p - q); diff > 6*se {
		t.Fatalf("stratified rate %v vs plain %v differs by %v (> 6 s.e. %v)", q, p, diff, 6*se)
	}
}
