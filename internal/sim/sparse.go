package sim

import (
	"sort"
	"sync"
)

// Collector receives simulated chronologies as a stream. The runner calls
// Observe exactly once per iteration, in strictly increasing iteration
// order (0-based within the run), regardless of how many workers simulate
// concurrently — so a Collector needs no locking and sees the same
// sequence a serial loop would produce. ddfs is in chronological order and
// may be nil for the (overwhelmingly common) event-free group; the slice
// is owned by the collector after the call.
type Collector interface {
	Observe(iteration int, ddfs []DDF)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(iteration int, ddfs []DDF)

// Observe implements Collector.
func (f CollectorFunc) Observe(iteration int, ddfs []DDF) { f(iteration, ddfs) }

// GroupEvent is one DDF tagged with the group (iteration) it occurred in.
type GroupEvent struct {
	Group int
	DDF
}

// SparseResult aggregates a Monte Carlo campaign storing only the groups
// that produced events: at the paper's headline rate (0.27 DDFs per 1,000
// groups per 10 years) over 99.9% of groups are empty, so the sparse form
// costs O(events) memory where RunResult's PerGroup costs O(iterations).
// It implements Collector, accumulating directly from the runner.
//
// Invariant: Events is sorted by (Group, Time). The runner's in-order
// Observe stream and Merge both preserve it; code assembling a
// SparseResult by hand must too.
type SparseResult struct {
	// Groups is the total number of simulated groups, including the empty
	// ones that contribute no Events entries.
	Groups int
	// Events holds every DDF across all groups, sorted by (Group, Time).
	Events []GroupEvent
	// TotalDDFs is the total event count across groups.
	TotalDDFs int
	// OpOpDDFs and LdOpDDFs split the total by cause.
	OpOpDDFs, LdOpDDFs int

	// flatTimes caches the sorted flat event-time slice behind DDFsBefore
	// and Times.
	flatOnce  sync.Once
	flatTimes []float64
}

var _ Collector = (*SparseResult)(nil)

// Observe implements Collector: it records iteration's events and counts
// the group whether or not it produced any.
func (r *SparseResult) Observe(iteration int, ddfs []DDF) {
	if iteration >= r.Groups {
		r.Groups = iteration + 1
	}
	if len(ddfs) == 0 {
		return
	}
	for _, d := range ddfs {
		r.Events = append(r.Events, GroupEvent{Group: iteration, DDF: d})
		r.tallyOne(d.Cause)
	}
	r.invalidate()
}

func (r *SparseResult) tallyOne(c Cause) {
	r.TotalDDFs++
	switch c {
	case CauseOpOp:
		r.OpOpDDFs++
	case CauseLdOp:
		r.LdOpDDFs++
	}
}

func (r *SparseResult) invalidate() {
	r.flatOnce = sync.Once{}
	r.flatTimes = nil
}

// Tally recomputes the aggregate counts from Events — for results
// assembled by hand, e.g. restored from a campaign checkpoint.
func (r *SparseResult) Tally() {
	r.TotalDDFs, r.OpOpDDFs, r.LdOpDDFs = 0, 0, 0
	for _, e := range r.Events {
		r.tallyOne(e.Cause)
	}
}

// Merge appends another result's groups after r's and retallies: merging
// runs [0,k) and [k,n) (the latter simulated with Offset k) yields exactly
// the result of a single n-iteration run. The other result's group indices
// are shifted by r.Groups.
func (r *SparseResult) Merge(other *SparseResult) {
	base := r.Groups
	for _, e := range other.Events {
		e.Group += base
		r.Events = append(r.Events, e)
	}
	r.Groups += other.Groups
	r.TotalDDFs += other.TotalDDFs
	r.OpOpDDFs += other.OpOpDDFs
	r.LdOpDDFs += other.LdOpDDFs
	r.invalidate()
}

// Times returns all event times across groups, ascending, built once and
// cached. Events must not be mutated after the first call. The slice is
// shared; callers must not modify it.
func (r *SparseResult) Times() []float64 {
	r.flatOnce.Do(func() {
		ts := make([]float64, len(r.Events))
		for i, e := range r.Events {
			ts[i] = e.Time
		}
		sort.Float64s(ts)
		r.flatTimes = ts
	})
	return r.flatTimes
}

// DDFsBefore counts events at or before t across all groups — a binary
// search over the cached flat times, O(log E) after the first call.
func (r *SparseResult) DDFsBefore(t float64) int {
	ts := r.Times()
	// First index with ts[i] > t == count of events at or before t.
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// GroupsWithDDF counts the groups that produced at least one event — the
// Bernoulli numerator of the campaign stopping rule — in one pass over the
// sparse index, never touching the empty groups.
func (r *SparseResult) GroupsWithDDF() int {
	n := 0
	for i, e := range r.Events {
		if i == 0 || e.Group != r.Events[i-1].Group {
			n++
		}
	}
	return n
}

// GroupCounts returns, for each group with at least one event at or before
// t, that group's event count. The implied remaining Groups-len(counts)
// groups all count zero. Cost is O(events), independent of Groups.
func (r *SparseResult) GroupCounts(t float64) []float64 {
	var counts []float64
	cur, n := -1, 0
	flush := func() {
		if cur >= 0 && n > 0 {
			counts = append(counts, float64(n))
		}
	}
	for _, e := range r.Events {
		if e.Group != cur {
			flush()
			cur, n = e.Group, 0
		}
		if e.Time <= t {
			n++
		}
	}
	flush()
	return counts
}

// Dense materializes the sparse result as a RunResult, the store-everything
// representation with one PerGroup entry per iteration. Groups without
// events get a nil slice, matching what engines return for an event-free
// chronology.
func (r *SparseResult) Dense() *RunResult {
	out := &RunResult{
		PerGroup:  make([][]DDF, r.Groups),
		TotalDDFs: r.TotalDDFs,
		OpOpDDFs:  r.OpOpDDFs,
		LdOpDDFs:  r.LdOpDDFs,
	}
	for i := 0; i < len(r.Events); {
		g := r.Events[i].Group
		j := i
		for j < len(r.Events) && r.Events[j].Group == g {
			j++
		}
		ddfs := make([]DDF, j-i)
		for k := i; k < j; k++ {
			ddfs[k-i] = r.Events[k].DDF
		}
		out.PerGroup[g] = ddfs
		i = j
	}
	return out
}
