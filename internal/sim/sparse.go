package sim

import (
	"math"
	"sort"
	"sync"
)

// Collector receives simulated chronologies as a stream. The runner calls
// Observe exactly once per iteration, in strictly increasing iteration
// order (0-based within the run), regardless of how many workers simulate
// concurrently — so a Collector needs no locking and sees the same
// sequence a serial loop would produce. ddfs is in chronological order and
// may be nil for the (overwhelmingly common) event-free group; the slice
// is only valid for the duration of the call — the batched runner paths
// hand out views into pooled arenas — so a collector that retains events
// must copy them (SparseResult does). logW is the iteration's
// importance-sampling log weight, exactly 0 for unbiased runs.
type Collector interface {
	Observe(iteration int, ddfs []DDF, logW float64)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(iteration int, ddfs []DDF, logW float64)

// Observe implements Collector.
func (f CollectorFunc) Observe(iteration int, ddfs []DDF, logW float64) { f(iteration, ddfs, logW) }

// GroupEvent is one DDF tagged with the group (iteration) it occurred in.
type GroupEvent struct {
	Group int
	// LogW is the group's importance-sampling log likelihood-ratio weight,
	// shared by every event of the group; exactly 0 for unbiased runs.
	LogW float64
	DDF
}

// SparseResult aggregates a Monte Carlo campaign storing only the groups
// that produced events: at the paper's headline rate (0.27 DDFs per 1,000
// groups per 10 years) over 99.9% of groups are empty, so the sparse form
// costs O(events) memory where RunResult's PerGroup costs O(iterations).
// It implements Collector, accumulating directly from the runner.
//
// Invariant: Events is sorted by (Group, Time), with one LogW per group
// repeated on each of its events. The runner's in-order Observe stream and
// Merge both preserve it; code assembling a SparseResult by hand must too.
//
// Methods are safe for concurrent use: a single mutex serializes
// accumulation (Observe, Merge, Tally) against queries, so a live progress
// reader may call Times or DDFsBefore while a campaign is still observing.
// Direct field access is only safe once accumulation has quiesced.
type SparseResult struct {
	// Groups is the total number of simulated groups, including the empty
	// ones that contribute no Events entries.
	Groups int
	// Events holds every DDF across all groups, sorted by (Group, Time).
	Events []GroupEvent
	// TotalDDFs is the total data-loss event count across groups.
	// Unavailability onsets (CauseUnavail) are counted separately in
	// UnavailEvents and excluded from every loss statistic.
	TotalDDFs int
	// OpOpDDFs and LdOpDDFs split the total by cause.
	OpOpDDFs, LdOpDDFs int
	// UnavailEvents counts data-unavailability onset events (coupled
	// topologies only; always 0 for flat runs).
	UnavailEvents int
	// VR holds the block-level variance-reduction tallies when the run used
	// VR-enabled block simulation; nil otherwise. Blocks are in iteration
	// order, matching the Events index.
	VR *VRTally
	// Fleet holds the aggregated heal-backlog tallies when the run
	// simulated fleet chronologies (RunSpec.Fleet); nil otherwise.
	Fleet *FleetTally

	// mu guards every field. The per-iteration Observe cost is one
	// uncontended lock/unlock — noise next to a chronology simulation —
	// and the hot event-free path allocates nothing.
	mu sync.Mutex
	// flatTimes caches the sorted flat event-time slice behind DDFsBefore
	// and Times; flatWeights, parallel to it, holds each event's weight
	// exp(LogW) and is built only for weighted results.
	flatTimes   []float64
	flatWeights []float64
}

var _ Collector = (*SparseResult)(nil)

// Observe implements Collector: it records iteration's events and counts
// the group whether or not it produced any. The log weight of an
// event-free group is dropped — every estimator this result feeds
// (Bernoulli numerator, MCF, cause split) sums weights over event groups
// only, with empty groups contributing exact zeros.
func (r *SparseResult) Observe(iteration int, ddfs []DDF, logW float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if iteration >= r.Groups {
		r.Groups = iteration + 1
	}
	if len(ddfs) == 0 {
		return
	}
	if need := len(r.Events) + len(ddfs); need > cap(r.Events) {
		// Grow by doubling explicitly: Go's built-in append falls to a
		// 1.25× growth rate for large slices, which over a long campaign
		// allocates ~5× the final slice size in dead intermediate copies —
		// the dominant bytes/op of a batched run. Doubling caps the total
		// allocation at ~2× final size.
		newCap := 2 * cap(r.Events)
		if newCap < need {
			newCap = need
		}
		if newCap < 64 {
			newCap = 64
		}
		grown := make([]GroupEvent, len(r.Events), newCap)
		copy(grown, r.Events)
		r.Events = grown
	}
	for _, d := range ddfs {
		r.Events = append(r.Events, GroupEvent{Group: iteration, LogW: logW, DDF: d})
		r.tallyOne(d.Cause)
	}
	r.invalidateLocked()
}

// FleetObserver is implemented by collectors that want each fleet
// chronology's heal-backlog statistics alongside the per-group DDF stream.
// The runner calls it once per chronology, in chronology order, after that
// chronology's groups have been observed.
type FleetObserver interface {
	ObserveFleetChronology(groups int, st FleetStats)
}

// FleetTally aggregates heal-backlog statistics across the fleet
// chronologies of a run: sums for the extensive quantities, maxima for
// the worst-case ones. The JSON form is the checkpoint/wire
// representation.
type FleetTally struct {
	// Chronologies counts fleet chronologies tallied; GroupsPer is the
	// fleet size each simulated.
	Chronologies int `json:"chronologies"`
	GroupsPer    int `json:"groups_per_chronology"`
	// Failures, Rebuilds, Waited, ActiveAtEnd, and QueuedAtEnd sum the
	// per-chronology counts (see FleetStats); the conservation invariant
	// Failures == Rebuilds + ActiveAtEnd + QueuedAtEnd survives summation.
	Failures    int `json:"failures"`
	Rebuilds    int `json:"rebuilds"`
	Waited      int `json:"waited"`
	ActiveAtEnd int `json:"active_at_end"`
	QueuedAtEnd int `json:"queued_at_end"`
	// TotalWaitHours sums every rebuild's failure-to-start wait across
	// chronologies; MaxWaitHours and MaxQueueDepth are the worst single
	// wait and peak queue depth seen in any chronology.
	TotalWaitHours float64 `json:"total_wait_hours"`
	MaxWaitHours   float64 `json:"max_wait_hours"`
	MaxQueueDepth  int     `json:"max_queue_depth"`
	// MeanDepthSum sums the per-chronology time-averaged queue depths;
	// divide by Chronologies (MeanQueueDepth) for the run average.
	MeanDepthSum float64 `json:"mean_depth_sum"`
	// MaxExposureHours is the longest degradation episode of any group in
	// any chronology.
	MaxExposureHours float64 `json:"max_exposure_hours"`
}

// add folds one chronology's statistics into the tally.
func (t *FleetTally) add(groups int, st FleetStats) {
	t.Chronologies++
	t.GroupsPer = groups
	t.Failures += st.Failures
	t.Rebuilds += st.Rebuilds
	t.Waited += st.Waited
	t.ActiveAtEnd += st.ActiveAtEnd
	t.QueuedAtEnd += st.QueuedAtEnd
	t.TotalWaitHours += st.TotalWaitHours
	if st.MaxWaitHours > t.MaxWaitHours {
		t.MaxWaitHours = st.MaxWaitHours
	}
	if st.MaxQueueDepth > t.MaxQueueDepth {
		t.MaxQueueDepth = st.MaxQueueDepth
	}
	t.MeanDepthSum += st.MeanQueueDepth
	if st.MaxExposureHours > t.MaxExposureHours {
		t.MaxExposureHours = st.MaxExposureHours
	}
}

// merge folds another tally in, preserving the same invariants Merge
// gives the event stream: tallying runs [0,k) and [k,n) separately and
// merging equals tallying [0,n) at once.
func (t *FleetTally) merge(o *FleetTally) {
	t.Chronologies += o.Chronologies
	if o.GroupsPer != 0 {
		t.GroupsPer = o.GroupsPer
	}
	t.Failures += o.Failures
	t.Rebuilds += o.Rebuilds
	t.Waited += o.Waited
	t.ActiveAtEnd += o.ActiveAtEnd
	t.QueuedAtEnd += o.QueuedAtEnd
	t.TotalWaitHours += o.TotalWaitHours
	if o.MaxWaitHours > t.MaxWaitHours {
		t.MaxWaitHours = o.MaxWaitHours
	}
	if o.MaxQueueDepth > t.MaxQueueDepth {
		t.MaxQueueDepth = o.MaxQueueDepth
	}
	t.MeanDepthSum += o.MeanDepthSum
	if o.MaxExposureHours > t.MaxExposureHours {
		t.MaxExposureHours = o.MaxExposureHours
	}
}

// MeanQueueDepth is the run-average time-averaged heal-queue depth.
func (t *FleetTally) MeanQueueDepth() float64 {
	if t.Chronologies == 0 {
		return 0
	}
	return t.MeanDepthSum / float64(t.Chronologies)
}

// MeanWaitHours is the average failure-to-rebuild-start wait per failure.
func (t *FleetTally) MeanWaitHours() float64 {
	if t.Failures == 0 {
		return 0
	}
	return t.TotalWaitHours / float64(t.Failures)
}

// ObserveFleetChronology implements FleetObserver, accumulating the
// chronology into the Fleet tally.
func (r *SparseResult) ObserveFleetChronology(groups int, st FleetStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Fleet == nil {
		r.Fleet = &FleetTally{}
	}
	r.Fleet.add(groups, st)
}

// ObserveVRBlock implements VRBlockObserver: it appends one completed
// variance-reduction block's tallies, in block order.
func (r *SparseResult) ObserveVRBlock(blockSize int, ez float64, b VRBlock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.VR == nil {
		r.VR = &VRTally{BlockSize: blockSize, EZ: ez}
	}
	r.VR.Blocks = append(r.VR.Blocks, b)
}

func (r *SparseResult) tallyOne(c Cause) {
	if c == CauseUnavail {
		r.UnavailEvents++
		return
	}
	r.TotalDDFs++
	switch c {
	case CauseOpOp:
		r.OpOpDDFs++
	case CauseLdOp:
		r.LdOpDDFs++
	}
}

// invalidateLocked drops the derived caches; r.mu must be held.
func (r *SparseResult) invalidateLocked() {
	r.flatTimes = nil
	r.flatWeights = nil
}

// Tally recomputes the aggregate counts from Events — for results
// assembled by hand, e.g. restored from a campaign checkpoint.
func (r *SparseResult) Tally() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.TotalDDFs, r.OpOpDDFs, r.LdOpDDFs, r.UnavailEvents = 0, 0, 0, 0
	for _, e := range r.Events {
		r.tallyOne(e.Cause)
	}
	r.invalidateLocked()
}

// Merge appends another result's groups after r's and retallies: merging
// runs [0,k) and [k,n) (the latter simulated with Offset k) yields exactly
// the result of a single n-iteration run. The other result's group indices
// are shifted by r.Groups. The other result must be quiescent for the
// duration of the call.
func (r *SparseResult) Merge(other *SparseResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	base := r.Groups
	for _, e := range other.Events {
		e.Group += base
		r.Events = append(r.Events, e)
	}
	r.Groups += other.Groups
	r.TotalDDFs += other.TotalDDFs
	r.OpOpDDFs += other.OpOpDDFs
	r.LdOpDDFs += other.LdOpDDFs
	r.UnavailEvents += other.UnavailEvents
	if other.VR != nil {
		if r.VR == nil {
			r.VR = &VRTally{BlockSize: other.VR.BlockSize, EZ: other.VR.EZ}
		}
		r.VR.merge(other.VR)
	}
	if other.Fleet != nil {
		if r.Fleet == nil {
			r.Fleet = &FleetTally{}
		}
		r.Fleet.merge(other.Fleet)
	}
	r.invalidateLocked()
}

// Weighted reports whether any group carries a non-unit importance-sampling
// weight — i.e. whether the run was biased and the weighted estimators
// differ from the plain counts.
func (r *SparseResult) Weighted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.Events {
		if e.LogW != 0 {
			return true
		}
	}
	return false
}

// flatLocked builds (if stale) and returns the time-sorted event times
// and, for weighted results, the parallel per-event weights (nil
// otherwise). r.mu must be held.
func (r *SparseResult) flatLocked() ([]float64, []float64) {
	if r.flatTimes == nil {
		// The flat index feeds the loss curve (MCF, DDFsBefore);
		// unavailability onsets are not data loss and stay out of it.
		idx := make([]int, 0, len(r.Events))
		weighted := false
		for i, e := range r.Events {
			if e.Cause == CauseUnavail {
				continue
			}
			idx = append(idx, i)
			weighted = weighted || e.LogW != 0
		}
		sort.Slice(idx, func(a, b int) bool { return r.Events[idx[a]].Time < r.Events[idx[b]].Time })
		ts := make([]float64, len(idx))
		for i, j := range idx {
			ts[i] = r.Events[j].Time
		}
		r.flatTimes = ts
		r.flatWeights = nil
		if weighted {
			ws := make([]float64, len(idx))
			for i, j := range idx {
				ws[i] = math.Exp(r.Events[j].LogW)
			}
			r.flatWeights = ws
		}
	}
	return r.flatTimes, r.flatWeights
}

// Times returns all event times across groups, ascending, built once and
// cached. The slice is shared and must be treated as immutable; it remains
// valid (as a stale snapshot) if the result keeps accumulating.
func (r *SparseResult) Times() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, _ := r.flatLocked()
	return ts
}

// TimesAndWeights returns all event times across groups, ascending, with
// each event's importance-sampling weight exp(LogW) in the parallel second
// slice — the inputs of the weighted MCF. The weight slice is nil for
// unbiased results (every weight 1). Both slices are shared; callers must
// not modify them.
func (r *SparseResult) TimesAndWeights() ([]float64, []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flatLocked()
}

// DDFsBefore counts events at or before t across all groups — a binary
// search over the cached flat times, O(log E) after the first call.
func (r *SparseResult) DDFsBefore(t float64) int {
	ts := r.Times()
	// First index with ts[i] > t == count of events at or before t.
	return sort.Search(len(ts), func(i int) bool { return ts[i] > t })
}

// GroupsWithDDF counts the groups that produced at least one data-loss
// event — the Bernoulli numerator of the campaign stopping rule — in one
// pass over the sparse index, never touching the empty groups.
// Unavailability-only groups do not count.
func (r *SparseResult) GroupsWithDDF() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, last := 0, -1
	for _, e := range r.Events {
		if e.Cause == CauseUnavail {
			continue
		}
		if e.Group != last {
			n++
			last = e.Group
		}
	}
	return n
}

// GroupsWithUnavail counts the groups that entered at least one
// data-unavailability episode. Always 0 for flat runs.
func (r *SparseResult) GroupsWithUnavail() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, last := 0, -1
	for _, e := range r.Events {
		if e.Cause != CauseUnavail {
			continue
		}
		if e.Group != last {
			n++
			last = e.Group
		}
	}
	return n
}

// WeightedUnavailTotal returns the importance-weighted unavailability
// onset-event total: each onset counts its group's weight exp(LogW), the
// plain count for unbiased runs.
func (r *SparseResult) WeightedUnavailTotal() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0.0
	for _, e := range r.Events {
		if e.Cause == CauseUnavail {
			total += math.Exp(e.LogW)
		}
	}
	return total
}

// GroupWeights returns each event-bearing group's importance-sampling
// weight exp(LogW), in group order — the nonzero observations of the
// weighted estimator p̂ = (1/n)·ΣW over groups with a DDF (every empty
// group contributes an exact zero). For an unbiased result this is a slice
// of ones.
func (r *SparseResult) GroupWeights() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ws []float64
	last := -1
	for _, e := range r.Events {
		if e.Cause == CauseUnavail {
			continue
		}
		if e.Group != last {
			ws = append(ws, math.Exp(e.LogW))
			last = e.Group
		}
	}
	return ws
}

// GroupCounts returns, for each group with at least one event at or before
// t, that group's weighted event count — the raw count times the group's
// importance-sampling weight, which is the raw count itself for unbiased
// runs (weight exactly 1). The implied remaining Groups-len(counts) groups
// all count zero. Cost is O(events), independent of Groups.
func (r *SparseResult) GroupCounts(t float64) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var counts []float64
	cur, n := -1, 0
	w := 1.0
	flush := func() {
		if cur >= 0 && n > 0 {
			counts = append(counts, float64(n)*w)
		}
	}
	for _, e := range r.Events {
		if e.Group != cur {
			flush()
			cur, n = e.Group, 0
			w = math.Exp(e.LogW)
		}
		if e.Cause != CauseUnavail && e.Time <= t {
			n++
		}
	}
	flush()
	return counts
}

// WeightedCauseTotals returns the importance-weighted event totals overall
// and split by cause: each event counts its group's weight exp(LogW). For
// an unbiased result the sums of exact 1.0s equal the integer tallies.
func (r *SparseResult) WeightedCauseTotals() (total, opop, ldop float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.Events {
		if e.Cause == CauseUnavail {
			continue
		}
		w := math.Exp(e.LogW)
		total += w
		switch e.Cause {
		case CauseOpOp:
			opop += w
		case CauseLdOp:
			ldop += w
		}
	}
	return total, opop, ldop
}

// Dense materializes the sparse result as a RunResult, the store-everything
// representation with one PerGroup entry per iteration. Groups without
// events get a nil slice, matching what engines return for an event-free
// chronology. Importance-sampling weights do not survive the conversion;
// Dense exists for the unbiased compatibility path.
func (r *SparseResult) Dense() *RunResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &RunResult{
		PerGroup:      make([][]DDF, r.Groups),
		TotalDDFs:     r.TotalDDFs,
		OpOpDDFs:      r.OpOpDDFs,
		LdOpDDFs:      r.LdOpDDFs,
		UnavailEvents: r.UnavailEvents,
	}
	for i := 0; i < len(r.Events); {
		g := r.Events[i].Group
		j := i
		for j < len(r.Events) && r.Events[j].Group == g {
			j++
		}
		ddfs := make([]DDF, j-i)
		for k := i; k < j; k++ {
			ddfs[k-i] = r.Events[k].DDF
		}
		out.PerGroup[g] = ddfs
		i = j
	}
	return out
}
