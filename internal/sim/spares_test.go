package sim

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestSparePolicyValidate(t *testing.T) {
	var nilPolicy *SparePolicy
	if err := nilPolicy.Validate(); err != nil {
		t.Errorf("nil policy invalid: %v", err)
	}
	if err := (&SparePolicy{Initial: -1}).Validate(); err == nil {
		t.Error("negative stock accepted")
	}
	if err := (&SparePolicy{ReplenishHours: -5}).Validate(); err == nil {
		t.Error("negative replenish accepted")
	}
	if err := (&SparePolicy{ReplenishHours: math.Inf(1)}).Validate(); err == nil {
		t.Error("infinite replenish accepted")
	}
	if err := (&SparePolicy{Initial: 2, ReplenishHours: 72}).Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
}

// Unit-level pool semantics.
func TestSparePoolMechanics(t *testing.T) {
	pool := newSparePool(&SparePolicy{Initial: 1, ReplenishHours: 100})
	// First failure: stock available, rebuild starts immediately; an order
	// is placed for t=110.
	if got := pool.rebuildStart(10); got != 10 {
		t.Fatalf("start = %v, want 10", got)
	}
	// Second failure at 20: no stock, earliest order arrives at 110.
	if got := pool.rebuildStart(20); got != 110 {
		t.Fatalf("start = %v, want 110", got)
	}
	// Third failure at 300: the order placed at 20 arrived at 120, back in
	// stock.
	if got := pool.rebuildStart(300); got != 300 {
		t.Fatalf("start = %v, want 300", got)
	}
	// Nil pool never delays.
	var unlimited *sparePool
	if got := unlimited.rebuildStart(42); got != 42 {
		t.Fatalf("nil pool start = %v", got)
	}
}

// A huge spare pool must reproduce the infinite-spares baseline exactly
// (same sampling paths).
func TestAmpleSparesMatchBaseline(t *testing.T) {
	base := fastConfig()
	withPool := base
	withPool.Spares = &SparePolicy{Initial: 10000, ReplenishHours: 1e6}
	for i := 0; i < 500; i++ {
		a, err := (EventEngine{}).Simulate(base, rng.ForStream(500, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := (EventEngine{}).Simulate(withPool, rng.ForStream(500, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("iteration %d: %d vs %d DDFs", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("iteration %d: event %d differs", i, j)
			}
		}
	}
}

// Starving the spare pool lengthens exposure windows and must increase
// DDFs; more initial stock must help monotonically.
func TestSpareStarvationIncreasesDDFs(t *testing.T) {
	count := func(policy *SparePolicy) int {
		cfg := fastConfig()
		cfg.Spares = policy
		total := 0
		for i := 0; i < 3000; i++ {
			ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(501, uint64(i)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ddfs)
		}
		return total
	}
	unlimited := count(nil)
	starved := count(&SparePolicy{Initial: 0, ReplenishHours: 500})
	stocked := count(&SparePolicy{Initial: 2, ReplenishHours: 500})
	if starved <= unlimited*3 {
		t.Errorf("500 h spare waits should multiply DDFs: starved=%d unlimited=%d",
			starved, unlimited)
	}
	if !(unlimited <= stocked && stocked <= starved) {
		t.Errorf("ordering violated: unlimited=%d stocked=%d starved=%d",
			unlimited, stocked, starved)
	}
}

// Zero replenish time is indistinguishable from unlimited spares in
// expectation (rebuild never waits).
func TestInstantReplenishEquivalent(t *testing.T) {
	cfg := fastConfig()
	cfg.Spares = &SparePolicy{Initial: 0, ReplenishHours: 0}
	total := 0
	for i := 0; i < 2000; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(502, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		total += len(ddfs)
	}
	base := 0
	cfg.Spares = nil
	for i := 0; i < 2000; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(502, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		base += len(ddfs)
	}
	if total != base {
		t.Errorf("instant replenish changed results: %d vs %d", total, base)
	}
}

func TestIntervalEngineRejectsSpares(t *testing.T) {
	cfg := fastConfig()
	cfg.Spares = &SparePolicy{Initial: 1, ReplenishHours: 10}
	if _, err := (IntervalEngine{}).Simulate(cfg, rng.New(1)); err == nil {
		t.Error("interval engine accepted a finite spare pool")
	}
	// But the runner with the default (event) engine accepts it.
	if _, err := Run(RunSpec{Config: cfg, Iterations: 50, Seed: 1}); err != nil {
		t.Errorf("event-engine run rejected spares: %v", err)
	}
}

// DDF spacing still respects suppression with delayed rebuild starts, and
// all invariants hold under spare starvation.
func TestSpareChronologyInvariants(t *testing.T) {
	cfg := fastConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-4)
	cfg.Trans.TTScrub = dist.MustWeibull(3, 168, 6)
	cfg.Spares = &SparePolicy{Initial: 1, ReplenishHours: 300}
	for i := 0; i < 400; i++ {
		ddfs, err := (EventEngine{}).Simulate(cfg, rng.ForStream(503, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, d := range ddfs {
			if d.Time <= prev {
				t.Fatal("unsorted or duplicate DDF times")
			}
			if d.Time < 0 || d.Time > cfg.Mission {
				t.Fatalf("DDF at %v outside mission", d.Time)
			}
			prev = d.Time
		}
	}
}
