package sim

import (
	"math"
	"reflect"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// rareConfig is a constant-rate, no-latent-defect configuration with a
// per-group DDF probability of a few per thousand — rare enough that
// importance sampling visibly helps, common enough that an unbiased
// reference estimate is still affordable in a test.
func rareConfig() Config {
	return Config{
		Drives:     8,
		Redundancy: 1,
		Mission:    8760,
		Trans: Transitions{
			TTOp: dist.MustExponential(1e-5), // MTBF 100,000 h
			TTR:  dist.MustExponential(1e-2), // MTTR 100 h
		},
	}
}

func TestBiasValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"zero value", func(c *Config) {}, true},
		{"op factor 1 is off", func(c *Config) { c.Bias.Op = 1 }, true},
		{"op factor 4", func(c *Config) { c.Bias.Op = 4 }, true},
		{"op factor below 1", func(c *Config) { c.Bias.Op = 0.5 }, true},
		{"negative op factor", func(c *Config) { c.Bias.Op = -2 }, false},
		{"NaN op factor", func(c *Config) { c.Bias.Op = math.NaN() }, false},
		{"infinite op factor", func(c *Config) { c.Bias.Op = math.Inf(1) }, false},
		{"negative ld factor", func(c *Config) { c.Bias.Ld = -1 }, false},
		{"ld bias without latent defects", func(c *Config) { c.Bias.Ld = 3 }, false},
		{"ld bias with renewal defects", func(c *Config) {
			c.Bias.Ld = 3
			c.Trans.TTLd = dist.MustExponential(1e-4)
		}, true},
		{"ld bias with NHPP defects", func(c *Config) {
			c.Bias.Ld = 3
			c.Trans.TTLdRate = func(t float64) float64 { return 1e-4 }
			c.Trans.TTLdRateMax = 1e-4
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := rareConfig()
			tc.mutate(&c)
			err := c.Validate()
			if tc.ok && err != nil {
				t.Errorf("valid config rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// simulateOnly hides an engine's IntoSimulator fast path, leaving only the
// weight-discarding Simulate method.
type simulateOnly struct{ e Engine }

func (s simulateOnly) Simulate(cfg Config, r *rng.RNG) ([]DDF, error) { return s.e.Simulate(cfg, r) }

// A biased run through an engine without a weight channel would silently
// drop every likelihood ratio; the runner must refuse it.
func TestBiasRequiresIntoSimulator(t *testing.T) {
	cfg := rareConfig()
	cfg.Bias.Op = 4
	_, err := RunSparse(RunSpec{
		Config:     cfg,
		Iterations: 10,
		Seed:       1,
		Engine:     simulateOnly{EventEngine{}},
	})
	if err == nil {
		t.Fatal("biased run through a Simulate-only engine accepted")
	}
	// The same engine is fine unbiased.
	cfg.Bias = Bias{}
	if _, err := RunSparse(RunSpec{Config: cfg, Iterations: 10, Seed: 1, Engine: simulateOnly{EventEngine{}}}); err != nil {
		t.Fatalf("unbiased Simulate-only run rejected: %v", err)
	}
}

// A bias factor of exactly 1 (or 0) must take the plain Monte Carlo path
// bit for bit: same events, all log weights exactly zero.
func TestBiasFactorOneIsPlainMonteCarlo(t *testing.T) {
	run := func(b Bias) *SparseResult {
		cfg := fastConfig()
		cfg.Bias = b
		res, err := RunSparse(RunSpec{Config: cfg, Iterations: 500, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(Bias{})
	one := run(Bias{Op: 1, Ld: 1})
	if !reflect.DeepEqual(plain.Events, one.Events) {
		t.Error("Bias{Op:1, Ld:1} events differ from plain run")
	}
	if plain.Weighted() || one.Weighted() {
		t.Error("unbiased run reports non-unit weights")
	}
	for _, e := range plain.Events {
		if e.LogW != 0 {
			t.Fatalf("unbiased event carries log weight %v", e.LogW)
		}
	}
}

// Worker count must not change a biased run's events or weights: stream i
// always drives iteration i, and the merger reassembles in order.
func TestBiasedWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *SparseResult {
		cfg := fastConfig()
		cfg.Bias.Op = 2
		res, err := RunSparse(RunSpec{Config: cfg, Iterations: 1500, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(7)
	if serial.Groups != parallel.Groups || serial.TotalDDFs != parallel.TotalDDFs {
		t.Fatalf("totals differ: serial %d/%d, parallel %d/%d",
			serial.Groups, serial.TotalDDFs, parallel.Groups, parallel.TotalDDFs)
	}
	if !reflect.DeepEqual(serial.Events, parallel.Events) {
		t.Error("biased events (incl. weights) differ across worker counts")
	}
	if !serial.Weighted() {
		t.Error("biased run carries no weights")
	}
}

// weightedPhat is the likelihood-ratio estimate of the per-group DDF
// probability: mean of exp(logW) over event groups with implied zeros.
func weightedPhat(res *SparseResult) float64 {
	sum := 0.0
	for _, w := range res.GroupWeights() {
		sum += w
	}
	return sum / float64(res.Groups)
}

// The tentpole's correctness core at the engine level: the importance-
// sampled estimator must agree with plain Monte Carlo, and both engines
// must agree with each other under bias, despite their different censoring
// horizons producing different per-iteration weights.
func TestBiasedEstimatorAgreesWithPlain(t *testing.T) {
	cfg := rareConfig()
	const n = 30000

	plain, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pPlain := float64(plain.GroupsWithDDF()) / float64(plain.Groups)
	if plain.GroupsWithDDF() < 20 {
		t.Fatalf("reference run too sparse (%d event groups); raise n", plain.GroupsWithDDF())
	}

	biased := cfg
	biased.Bias.Op = 4
	for _, tc := range []struct {
		name   string
		engine Engine
	}{
		{"event engine", EventEngine{}},
		{"interval engine", IntervalEngine{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunSparse(RunSpec{Config: biased, Iterations: n / 3, Seed: 9, Engine: tc.engine})
			if err != nil {
				t.Fatal(err)
			}
			if res.GroupsWithDDF() <= plain.GroupsWithDDF()/3 {
				t.Errorf("bias ineffective: %d event groups in %d iters vs %d in %d unbiased",
					res.GroupsWithDDF(), res.Groups, plain.GroupsWithDDF(), plain.Groups)
			}
			pw := weightedPhat(res)
			// Both estimates carry Monte Carlo noise of a few percent at
			// these sizes; 25% relative disagreement would be > 5 SE.
			if rel := math.Abs(pw-pPlain) / pPlain; rel > 0.25 {
				t.Errorf("weighted estimate %v vs plain %v (relative gap %.2f)", pw, pPlain, rel)
			}
		})
	}
}

// Latent-defect biasing must flow the TTLd likelihood ratios through the
// estimator too: with a mild tilt the weighted estimate still matches the
// plain one.
func TestBiasedLatentDefectsAgreeWithPlain(t *testing.T) {
	cfg := rareConfig()
	cfg.Trans.TTLd = dist.MustExponential(5e-5)
	cfg.Trans.TTScrub = dist.MustExponential(1e-3)
	const n = 20000

	plain, err := RunSparse(RunSpec{Config: cfg, Iterations: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pPlain := float64(plain.GroupsWithDDF()) / float64(plain.Groups)
	if plain.GroupsWithDDF() < 20 {
		t.Fatalf("reference run too sparse (%d event groups)", plain.GroupsWithDDF())
	}

	biased := cfg
	biased.Bias = Bias{Op: 2, Ld: 1.3}
	res, err := RunSparse(RunSpec{Config: biased, Iterations: n, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	pw := weightedPhat(res)
	if rel := math.Abs(pw-pPlain) / pPlain; rel > 0.3 {
		t.Errorf("weighted estimate %v vs plain %v (relative gap %.2f)", pw, pPlain, rel)
	}
}
