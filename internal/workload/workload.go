// Package workload models the IO usage that drives latent-defect creation.
// The paper's §6.3 derives the hourly data-corruption rate as the product
// of a read-error rate (errors per byte, measured across NetApp fleet
// studies) and an hourly read volume; Table 1 tabulates the grid. This
// package reproduces that derivation and turns any cell of it into the
// TTLd distribution scale the simulator consumes.
package workload

import (
	"fmt"
	"math"
)

// Fleet-study read-error rates from §6.3, in errors per byte read.
const (
	// RERLow is the 63,000-drive five-month study (8e-15 err/B).
	RERLow = 8.0e-15
	// RERMedium is the 282,000-drive 2004 study (8e-14 err/B).
	RERMedium = 8.0e-14
	// RERHigh is the 66,800-drive study (3.2e-13 err/B).
	RERHigh = 3.2e-13
)

// Hourly read volumes from §6.3, bytes per hour per drive.
const (
	// ReadRateLow is 1.35e9 B/h (the paper's low bound, ~2.7e11 B/day
	// fleet measurement scaled down).
	ReadRateLow = 1.35e9
	// ReadRateHigh is 1.35e10 B/h.
	ReadRateHigh = 1.35e10
)

// DefectRate returns latent-defect arrivals per hour for a drive reading
// bytesPerHour at the given read-error rate.
func DefectRate(errorsPerByte, bytesPerHour float64) (float64, error) {
	if !(errorsPerByte > 0) || math.IsInf(errorsPerByte, 0) {
		return 0, fmt.Errorf("workload: errors/byte must be positive, got %v", errorsPerByte)
	}
	if !(bytesPerHour > 0) || math.IsInf(bytesPerHour, 0) {
		return 0, fmt.Errorf("workload: bytes/hour must be positive, got %v", bytesPerHour)
	}
	return errorsPerByte * bytesPerHour, nil
}

// MeanTimeToDefect returns the TTLd characteristic life (hours) implied by
// the rate: with the paper's β = 1 the process is Poisson and the scale is
// the reciprocal rate.
func MeanTimeToDefect(errorsPerByte, bytesPerHour float64) (float64, error) {
	rate, err := DefectRate(errorsPerByte, bytesPerHour)
	if err != nil {
		return 0, err
	}
	return 1 / rate, nil
}

// RateCell is one entry of Table 1.
type RateCell struct {
	RERName       string
	RER           float64 // errors per byte
	ReadRateName  string
	BytesPerHour  float64
	ErrorsPerHour float64
}

// Table1 reproduces the paper's Table 1 grid: three read-error rates by
// two hourly read volumes, in row-major order (low/medium/high RER × low/
// high read rate).
func Table1() []RateCell {
	rers := []struct {
		name string
		v    float64
	}{
		{"low", RERLow}, {"medium", RERMedium}, {"high", RERHigh},
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"low", ReadRateLow}, {"high", ReadRateHigh},
	}
	out := make([]RateCell, 0, len(rers)*len(rates))
	for _, rer := range rers {
		for _, rr := range rates {
			out = append(out, RateCell{
				RERName:       rer.name,
				RER:           rer.v,
				ReadRateName:  rr.name,
				BytesPerHour:  rr.v,
				ErrorsPerHour: rer.v * rr.v,
			})
		}
	}
	return out
}

// BaseCaseCell returns the Table 1 cell the base case uses (medium RER at
// the low read volume: 1.08e-4 errors per hour).
func BaseCaseCell() RateCell {
	return RateCell{
		RERName:       "medium",
		RER:           RERMedium,
		ReadRateName:  "low",
		BytesPerHour:  ReadRateLow,
		ErrorsPerHour: RERMedium * ReadRateLow,
	}
}

// Profile describes a sustained IO mix for rebuild/scrub interference
// calculations.
type Profile struct {
	Name            string
	BytesPerHour    float64 // read volume driving corruption
	ForegroundShare float64 // fraction of bandwidth consumed by user IO
}

// DutyCycle describes a periodic busy/idle IO pattern: BusyHours of
// BusyBytesPerHour followed by (PeriodHours - BusyHours) of
// IdleBytesPerHour, repeating. §6.3 makes corruption usage-dependent;
// a duty cycle makes that dependence dynamic within the mission.
type DutyCycle struct {
	PeriodHours      float64
	BusyHours        float64
	BusyBytesPerHour float64
	IdleBytesPerHour float64
}

// Validate checks the cycle.
func (d DutyCycle) Validate() error {
	if !(d.PeriodHours > 0) || math.IsInf(d.PeriodHours, 0) {
		return fmt.Errorf("workload: invalid period %v", d.PeriodHours)
	}
	if d.BusyHours < 0 || d.BusyHours > d.PeriodHours {
		return fmt.Errorf("workload: busy hours %v outside [0, %v]", d.BusyHours, d.PeriodHours)
	}
	if !(d.BusyBytesPerHour > 0) || !(d.IdleBytesPerHour >= 0) {
		return fmt.Errorf("workload: invalid volumes busy=%v idle=%v", d.BusyBytesPerHour, d.IdleBytesPerHour)
	}
	return nil
}

// DefectRateFunc returns the instantaneous latent-defect rate function
// rate(t) = RER × bytes/hour(t) plus its upper bound, ready for the
// simulator's non-homogeneous defect process.
func (d DutyCycle) DefectRateFunc(errorsPerByte float64) (fn func(t float64) float64, max float64, err error) {
	if err := d.Validate(); err != nil {
		return nil, 0, err
	}
	if !(errorsPerByte > 0) || math.IsInf(errorsPerByte, 0) {
		return nil, 0, fmt.Errorf("workload: errors/byte must be positive, got %v", errorsPerByte)
	}
	busyRate := errorsPerByte * d.BusyBytesPerHour
	idleRate := errorsPerByte * d.IdleBytesPerHour
	fn = func(t float64) float64 {
		phase := math.Mod(t, d.PeriodHours)
		if phase < 0 {
			phase += d.PeriodHours
		}
		if phase < d.BusyHours {
			return busyRate
		}
		return idleRate
	}
	return fn, math.Max(busyRate, idleRate), nil
}

// MeanRate returns the cycle's time-averaged defect rate.
func (d DutyCycle) MeanRate(errorsPerByte float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if !(errorsPerByte > 0) || math.IsInf(errorsPerByte, 0) {
		return 0, fmt.Errorf("workload: errors/byte must be positive, got %v", errorsPerByte)
	}
	busy := d.BusyHours / d.PeriodHours
	return errorsPerByte * (busy*d.BusyBytesPerHour + (1-busy)*d.IdleBytesPerHour), nil
}

// Standard profiles used by the examples.
var (
	// Archive is a mostly idle cold-storage system.
	Archive = Profile{Name: "archive", BytesPerHour: 1.35e8, ForegroundShare: 0.05}
	// Nearline matches the paper's low read volume.
	Nearline = Profile{Name: "nearline", BytesPerHour: ReadRateLow, ForegroundShare: 0.25}
	// Transactional matches the paper's high read volume.
	Transactional = Profile{Name: "transactional", BytesPerHour: ReadRateHigh, ForegroundShare: 0.60}
)
