package workload

import (
	"math"
	"testing"
)

func TestDefectRate(t *testing.T) {
	rate, err := DefectRate(RERMedium, ReadRateLow)
	if err != nil {
		t.Fatal(err)
	}
	// The base-case cell: 8e-14 × 1.35e9 = 1.08e-4 errors/hour.
	if math.Abs(rate-1.08e-4) > 1e-9 {
		t.Errorf("rate = %v, want 1.08e-4", rate)
	}
	if _, err := DefectRate(0, 1); err == nil {
		t.Error("zero RER accepted")
	}
	if _, err := DefectRate(1, math.Inf(1)); err == nil {
		t.Error("infinite read rate accepted")
	}
}

func TestMeanTimeToDefect(t *testing.T) {
	mt, err := MeanTimeToDefect(RERMedium, ReadRateLow)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mt-9259.26) > 0.1 {
		t.Errorf("mean time = %v, want ~9259", mt)
	}
	if _, err := MeanTimeToDefect(-1, 1); err == nil {
		t.Error("negative RER accepted")
	}
}

// Table 1 reproduces the paper's six-cell grid exactly.
func TestTable1Grid(t *testing.T) {
	cells := Table1()
	if len(cells) != 6 {
		t.Fatalf("%d cells", len(cells))
	}
	want := []struct {
		rer, read string
		rate      float64
	}{
		{"low", "low", 1.08e-5},
		{"low", "high", 1.08e-4},
		{"medium", "low", 1.08e-4},
		{"medium", "high", 1.08e-3},
		{"high", "low", 4.32e-4},
		{"high", "high", 4.32e-3},
	}
	for i, w := range want {
		c := cells[i]
		if c.RERName != w.rer || c.ReadRateName != w.read {
			t.Errorf("cell %d = %s/%s, want %s/%s", i, c.RERName, c.ReadRateName, w.rer, w.read)
		}
		if math.Abs(c.ErrorsPerHour-w.rate)/w.rate > 1e-9 {
			t.Errorf("cell %d rate = %v, want %v", i, c.ErrorsPerHour, w.rate)
		}
	}
}

func TestBaseCaseCell(t *testing.T) {
	c := BaseCaseCell()
	if c.RERName != "medium" || c.ReadRateName != "low" {
		t.Errorf("base cell = %s/%s", c.RERName, c.ReadRateName)
	}
	if math.Abs(c.ErrorsPerHour-1.08e-4) > 1e-9 {
		t.Errorf("base rate = %v", c.ErrorsPerHour)
	}
}

func TestDutyCycle(t *testing.T) {
	d := DutyCycle{PeriodHours: 168, BusyHours: 48, BusyBytesPerHour: 1.35e10, IdleBytesPerHour: 1.35e9}
	fn, max, err := d.DefectRateFunc(RERMedium)
	if err != nil {
		t.Fatal(err)
	}
	busyRate := RERMedium * 1.35e10
	idleRate := RERMedium * 1.35e9
	if max != busyRate {
		t.Errorf("max = %v, want %v", max, busyRate)
	}
	// Inside the busy window.
	if got := fn(10); got != busyRate {
		t.Errorf("fn(10) = %v, want busy %v", got, busyRate)
	}
	// Inside the idle window, and periodic.
	if got := fn(100); got != idleRate {
		t.Errorf("fn(100) = %v, want idle %v", got, idleRate)
	}
	if fn(10+168) != fn(10) || fn(100+336) != fn(100) {
		t.Error("rate not periodic")
	}
	mean, err := d.MeanRate(RERMedium)
	if err != nil {
		t.Fatal(err)
	}
	want := (48*busyRate + 120*idleRate) / 168
	if math.Abs(mean-want)/want > 1e-12 {
		t.Errorf("mean rate = %v, want %v", mean, want)
	}
}

func TestDutyCycleValidation(t *testing.T) {
	bad := []DutyCycle{
		{PeriodHours: 0, BusyHours: 0, BusyBytesPerHour: 1},
		{PeriodHours: 10, BusyHours: 11, BusyBytesPerHour: 1},
		{PeriodHours: 10, BusyHours: 5, BusyBytesPerHour: 0},
		{PeriodHours: 10, BusyHours: 5, BusyBytesPerHour: 1, IdleBytesPerHour: -1},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := DutyCycle{PeriodHours: 10, BusyHours: 5, BusyBytesPerHour: 1}
	if _, _, err := good.DefectRateFunc(0); err == nil {
		t.Error("zero RER accepted")
	}
	if _, err := good.MeanRate(-1); err == nil {
		t.Error("negative RER accepted")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, p := range []Profile{Archive, Nearline, Transactional} {
		if p.Name == "" || p.BytesPerHour <= 0 {
			t.Errorf("profile %+v malformed", p)
		}
		if p.ForegroundShare < 0 || p.ForegroundShare >= 1 {
			t.Errorf("profile %s share %v", p.Name, p.ForegroundShare)
		}
	}
	if !(Archive.BytesPerHour < Nearline.BytesPerHour &&
		Nearline.BytesPerHour < Transactional.BytesPerHour) {
		t.Error("profile read volumes not ordered")
	}
}
