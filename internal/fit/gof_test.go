package fit

import (
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestKSDistanceValidation(t *testing.T) {
	if _, err := KSDistance([]Observation{{Time: 1}, {Time: 2}}, nil); err == nil {
		t.Error("nil distribution accepted")
	}
	if _, err := KSDistance(nil, dist.MustExponential(1)); err == nil {
		t.Error("empty data accepted")
	}
}

func TestKSDistancePerfectFit(t *testing.T) {
	// Data placed exactly at the quantiles of the candidate give a small
	// distance; data from a very different distribution give a large one.
	w := dist.MustWeibull(1.5, 1000, 0)
	obs := make([]Observation, 199)
	for i := range obs {
		p := float64(i+1) / 200
		obs[i] = Observation{Time: w.Quantile(p)}
	}
	d, err := KSDistance(obs, w)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.02 {
		t.Errorf("quantile-placed data distance %v, want ~0", d)
	}
	far, err := KSDistance(obs, dist.MustWeibull(1.5, 100000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if far < 0.5 {
		t.Errorf("mismatched distribution distance %v, want large", far)
	}
}

func TestWeibullGoFValidation(t *testing.T) {
	r := rng.New(1)
	obs := []Observation{{Time: 1}, {Time: 2}, {Time: 3}}
	if _, err := WeibullGoF(obs, 5, r); err == nil {
		t.Error("too few replicates accepted")
	}
	if _, err := WeibullGoF(obs, 100, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

// A genuine Weibull sample should not be rejected.
func TestGoFAcceptsTrueWeibull(t *testing.T) {
	r := rng.New(201)
	w := dist.MustWeibull(0.9, 4e5, 0)
	obs := drawObservations(w, 2000, 30000, r)
	res, err := WeibullGoF(obs, 99, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejects(0.01) {
		t.Errorf("true Weibull rejected: p = %v, D = %v", res.PValue, res.Distance)
	}
	if res.Replicates < 50 {
		t.Errorf("only %d usable replicates", res.Replicates)
	}
}

// The paper's HDD #2 signature (competing wear-out) must be firmly
// rejected — the quantitative version of "the data plot bends upwards".
func TestGoFRejectsMechanismChange(t *testing.T) {
	r := rng.New(202)
	c := dist.MustCompetingRisks([]dist.Distribution{
		dist.MustWeibull(0.95, 6e5, 0),
		dist.MustWeibull(3.6, 3e4, 0),
	})
	obs := drawObservations(c, 2000, 30000, r)
	res, err := WeibullGoF(obs, 99, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.05) {
		t.Errorf("mechanism-change population not rejected: p = %v", res.PValue)
	}
}

// The full HDD #3 structure — defective sub-population mixture plus a
// competing wear-out risk, giving two inflections — is also rejected.
// (A windowed mixture alone can masquerade as a single Weibull; the
// paper's HDD #3 needed both effects to bend visibly, and so does the
// test.)
func TestGoFRejectsMixturePlusWearout(t *testing.T) {
	r := rng.New(203)
	mixed := dist.MustMixture([]dist.Distribution{
		dist.MustWeibull(0.6, 2.5e4, 0),
		dist.MustWeibull(1.0, 1.2e6, 0),
	}, []float64{0.05, 0.95})
	hdd3 := dist.MustCompetingRisks([]dist.Distribution{
		mixed,
		dist.MustWeibull(4.0, 4.0e4, 0),
	})
	obs := drawObservations(hdd3, 3000, 30000, r)
	res, err := WeibullGoF(obs, 99, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.05) {
		t.Errorf("HDD#3-style population not rejected: p = %v", res.PValue)
	}
}
