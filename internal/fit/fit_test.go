package fit

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func drawObservations(d dist.Distribution, n int, censorAt float64, r *rng.RNG) []Observation {
	obs := make([]Observation, n)
	for i := range obs {
		t := d.Sample(r)
		if censorAt > 0 && t > censorAt {
			obs[i] = Observation{Time: censorAt, Censored: true}
		} else {
			obs[i] = Observation{Time: t}
		}
	}
	return obs
}

func TestValidation(t *testing.T) {
	if _, err := MedianRankRegression(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := MLE([]Observation{{Time: 1}}); err == nil {
		t.Error("single failure accepted")
	}
	if _, err := ProbabilityPlot([]Observation{{Time: -1}, {Time: 2}}); err == nil {
		t.Error("negative time accepted")
	}
	allCensored := []Observation{{Time: 1, Censored: true}, {Time: 2, Censored: true}}
	if _, err := MLE(allCensored); err == nil {
		t.Error("all-censored dataset accepted")
	}
}

func TestProbabilityPlotUncensoredRanks(t *testing.T) {
	obs := []Observation{{Time: 10}, {Time: 30}, {Time: 20}}
	pts, err := ProbabilityPlot(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Benard ranks for n=3: (i-0.3)/3.4.
	want := []float64{0.7 / 3.4, 1.7 / 3.4, 2.7 / 3.4}
	for i, w := range want {
		if math.Abs(pts[i].MedianRank-w) > 1e-12 {
			t.Errorf("rank %d = %v, want %v", i, pts[i].MedianRank, w)
		}
	}
	if pts[0].Time != 10 || pts[1].Time != 20 || pts[2].Time != 30 {
		t.Error("points not sorted by time")
	}
}

func TestProbabilityPlotCensoringInflatesRanks(t *testing.T) {
	// A suspension between failures pushes later median ranks upward
	// relative to the uncensored spacing.
	withSusp := []Observation{{Time: 10}, {Time: 15, Censored: true}, {Time: 20}}
	without := []Observation{{Time: 10}, {Time: 20}}
	a, err := ProbabilityPlot(withSusp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProbabilityPlot(without)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 2 || len(b) != 2 {
		t.Fatal("wrong point counts")
	}
	// Second failure of the suspended set: adjusted rank = 1 + (3+1-1)/(3+1-2) = 2.5
	// → median rank (2.5-0.3)/3.4.
	if math.Abs(a[1].MedianRank-2.2/3.4) > 1e-12 {
		t.Errorf("adjusted rank = %v, want %v", a[1].MedianRank, 2.2/3.4)
	}
}

func TestMRRRecoversKnownWeibull(t *testing.T) {
	r := rng.New(101)
	w := dist.MustWeibull(1.12, 461386, 0)
	obs := drawObservations(w, 2000, 0, r)
	p, err := MedianRankRegression(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Shape-1.12) > 0.06 {
		t.Errorf("shape = %v, want ~1.12", p.Shape)
	}
	if math.Abs(p.Scale-461386)/461386 > 0.05 {
		t.Errorf("scale = %v, want ~461386", p.Scale)
	}
	if p.R2 < 0.98 {
		t.Errorf("R² = %v for a true Weibull sample", p.R2)
	}
}

func TestMLERecoversKnownWeibull(t *testing.T) {
	r := rng.New(102)
	w := dist.MustWeibull(2.0, 1000, 0)
	obs := drawObservations(w, 2000, 0, r)
	p, err := MLE(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Shape-2.0) > 0.1 {
		t.Errorf("shape = %v, want ~2.0", p.Shape)
	}
	if math.Abs(p.Scale-1000)/1000 > 0.03 {
		t.Errorf("scale = %v, want ~1000", p.Scale)
	}
}

// Fig. 2's vintages are heavily censored (e.g. F=992 of 24,056 units). MLE
// must recover parameters from ~96% suspensions.
func TestMLEHeavilyCensoredVintage(t *testing.T) {
	r := rng.New(103)
	w := dist.MustWeibull(1.2162, 1.2566e5, 0)
	// Censor at 6,000 hours like the paper's field window.
	obs := drawObservations(w, 24000, 6000, r)
	failures := 0
	for _, o := range obs {
		if !o.Censored {
			failures++
		}
	}
	if failures < 200 || failures > 2500 {
		t.Fatalf("unexpected failure count %d for this censoring", failures)
	}
	p, err := MLE(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Shape-1.2162) > 0.12 {
		t.Errorf("shape = %v, want ~1.22", p.Shape)
	}
	// Scale is extrapolated far beyond the window; allow 25%.
	if math.Abs(p.Scale-1.2566e5)/1.2566e5 > 0.25 {
		t.Errorf("scale = %v, want ~1.26e5", p.Scale)
	}
}

func TestMLEDegenerateData(t *testing.T) {
	obs := []Observation{{Time: 5}, {Time: 5}, {Time: 5}}
	if _, err := MLE(obs); err == nil {
		t.Error("identical failure times should not fit")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	l, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R² = %v", l.R2)
	}
}

func TestLinearFitValidation(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("zero-variance x accepted")
	}
}

func TestKaplanMeierTextbook(t *testing.T) {
	// Classic example: failures at 6 (3 of them), 7, 10, 13, 16, 22, 23;
	// censorings at 6, 9, 10, 11, 17, 19, 20, 25, 32, 32, 34, 35 (n=21,
	// the Freireich 6-MP arm).
	obs := []Observation{
		{Time: 6}, {Time: 6}, {Time: 6}, {Time: 6, Censored: true},
		{Time: 7}, {Time: 9, Censored: true}, {Time: 10}, {Time: 10, Censored: true},
		{Time: 11, Censored: true}, {Time: 13}, {Time: 16}, {Time: 17, Censored: true},
		{Time: 19, Censored: true}, {Time: 20, Censored: true}, {Time: 22}, {Time: 23},
		{Time: 25, Censored: true}, {Time: 32, Censored: true}, {Time: 32, Censored: true},
		{Time: 34, Censored: true}, {Time: 35, Censored: true},
	}
	km, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// Published values: S(6)=0.857, S(7)=0.807, S(10)=0.753, S(13)=0.690,
	// S(16)=0.627, S(22)=0.538, S(23)=0.448.
	want := map[float64]float64{6: 0.857, 7: 0.807, 10: 0.753, 13: 0.690, 16: 0.627, 22: 0.538, 23: 0.448}
	for _, p := range km {
		if w, ok := want[p.Time]; ok {
			if math.Abs(p.Survival-w) > 0.001 {
				t.Errorf("S(%v) = %v, want %v", p.Time, p.Survival, w)
			}
		}
	}
	if SurvivalAt(km, 5) != 1 {
		t.Error("S before first failure should be 1")
	}
	if math.Abs(SurvivalAt(km, 12)-0.753) > 0.001 {
		t.Errorf("step lookup wrong: %v", SurvivalAt(km, 12))
	}
}

func TestKaplanMeierValidation(t *testing.T) {
	if _, err := KaplanMeier(nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := KaplanMeier([]Observation{{Time: 0}}); err == nil {
		t.Error("zero time accepted")
	}
}

func TestKaplanMeierMatchesECDFUncensored(t *testing.T) {
	// Without censoring KM reduces to 1 - ECDF.
	obs := []Observation{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	km, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range km {
		want := 1 - float64(i+1)/4
		if math.Abs(p.Survival-want) > 1e-12 {
			t.Errorf("S(%v) = %v, want %v", p.Time, p.Survival, want)
		}
	}
}

func TestChangepointDetectsMixedMechanisms(t *testing.T) {
	// Build an HDD#2-style population: early mechanism Weibull(0.9, 8e5),
	// late wear-out takes over via competing risk Weibull(3.5, 2.5e4).
	r := rng.New(104)
	c := dist.MustCompetingRisks([]dist.Distribution{
		dist.MustWeibull(0.9, 8e5, 0),
		dist.MustWeibull(3.5, 2.5e4, 0),
	})
	obs := drawObservations(c, 3000, 40000, r)
	pts, err := ProbabilityPlot(obs)
	if err != nil {
		t.Fatal(err)
	}
	split, left, right, err := Changepoint(pts)
	if err != nil {
		t.Fatal(err)
	}
	if split <= 0 || split >= len(pts) {
		t.Fatalf("split = %d of %d", split, len(pts))
	}
	// The late segment must be markedly steeper (wear-out slope > early
	// infant-mortality slope).
	if right.Slope <= left.Slope*1.5 {
		t.Errorf("late slope %v not steeper than early slope %v", right.Slope, left.Slope)
	}
}

func TestChangepointValidation(t *testing.T) {
	if _, _, _, err := Changepoint(make([]PlotPoint, 4)); err == nil {
		t.Error("too-few points accepted")
	}
}

// A single-mechanism Weibull population should plot nearly linearly
// (HDD #1 in Fig. 1). With heavy censoring only the extreme lower tail is
// observed, where rank regression is biased low for β < 1 — MLE is the
// estimator that stays accurate there, which is why both exist.
func TestSingleMechanismNearlyLinear(t *testing.T) {
	r := rng.New(106)
	w := dist.MustWeibull(0.9, 5e5, 0)
	obs := drawObservations(w, 20000, 30000, r)
	p, err := MedianRankRegression(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.R2 < 0.95 {
		t.Errorf("pure Weibull plot R² = %v, want > 0.95", p.R2)
	}
	mle, err := MLE(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mle.Shape-0.9) > 0.05 {
		t.Errorf("MLE shape = %v, want ~0.9", mle.Shape)
	}
	// Document the known MRR low-tail bias: it must not exceed MLE's fit.
	if p.Shape > mle.Shape+0.05 {
		t.Errorf("expected MRR shape (%v) at or below MLE shape (%v) under heavy censoring",
			p.Shape, mle.Shape)
	}
}
