package fit

import (
	"fmt"
	"math"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// KSDistance computes a Kolmogorov-Smirnov style distance between a
// (possibly censored) dataset and a candidate lifetime distribution: the
// maximum gap between the Johnson/Benard median-rank empirical CDF and
// the candidate CDF at the failure times. It is the quantitative version
// of eyeballing a probability plot for straightness.
func KSDistance(obs []Observation, d dist.Distribution) (float64, error) {
	if d == nil {
		return 0, fmt.Errorf("fit: nil distribution")
	}
	points, err := ProbabilityPlot(obs)
	if err != nil {
		return 0, err
	}
	var max float64
	for _, p := range points {
		if gap := math.Abs(p.MedianRank - d.CDF(p.Time)); gap > max {
			max = gap
		}
	}
	return max, nil
}

// GoFResult is the outcome of a parametric-bootstrap goodness-of-fit
// test.
type GoFResult struct {
	// Fit is the censored MLE Weibull fit being judged.
	Fit Params
	// Distance is the KS distance between data and fit.
	Distance float64
	// PValue estimates P(distance >= Distance | data truly Weibull),
	// accounting for parameter estimation Lilliefors-style: each bootstrap
	// replicate is refitted before its distance is measured.
	PValue float64
	// Replicates is the number of bootstrap samples used.
	Replicates int
}

// Rejects reports whether the Weibull hypothesis is rejected at the given
// significance level (e.g. 0.05).
func (g GoFResult) Rejects(alpha float64) bool { return g.PValue < alpha }

// WeibullGoF tests whether the dataset is consistent with a single
// two-parameter Weibull. Censoring is treated as type-I (all suspensions
// share the observation window), which matches field-return datasets; the
// bootstrap replicates reuse the dataset's own censoring window and size.
func WeibullGoF(obs []Observation, replicates int, r *rng.RNG) (GoFResult, error) {
	if replicates < 19 {
		return GoFResult{}, fmt.Errorf("fit: need >= 19 bootstrap replicates, got %d", replicates)
	}
	if r == nil {
		return GoFResult{}, fmt.Errorf("fit: nil RNG")
	}
	fitted, err := MLE(obs)
	if err != nil {
		return GoFResult{}, err
	}
	w, err := dist.NewWeibull(fitted.Shape, fitted.Scale, 0)
	if err != nil {
		return GoFResult{}, err
	}
	observed, err := KSDistance(obs, w)
	if err != nil {
		return GoFResult{}, err
	}
	// Censoring window: the latest suspension time, +Inf when uncensored.
	window := math.Inf(1)
	for _, o := range obs {
		if o.Censored && (math.IsInf(window, 1) || o.Time > window) {
			window = o.Time
		}
	}
	exceed := 0
	valid := 0
	synthetic := make([]Observation, len(obs))
	for b := 0; b < replicates; b++ {
		for i := range synthetic {
			t := w.Sample(r)
			if t > window {
				synthetic[i] = Observation{Time: window, Censored: true}
			} else {
				synthetic[i] = Observation{Time: t}
			}
		}
		refit, err := MLE(synthetic)
		if err != nil {
			continue // degenerate replicate (e.g. < 2 failures)
		}
		wb, err := dist.NewWeibull(refit.Shape, refit.Scale, 0)
		if err != nil {
			continue
		}
		db, err := KSDistance(synthetic, wb)
		if err != nil {
			continue
		}
		valid++
		if db >= observed {
			exceed++
		}
	}
	if valid < replicates/2 {
		return GoFResult{}, fmt.Errorf("fit: only %d of %d bootstrap replicates were usable", valid, replicates)
	}
	// The +1 correction keeps the p-value away from an impossible zero.
	return GoFResult{
		Fit:        fitted,
		Distance:   observed,
		PValue:     (float64(exceed) + 1) / (float64(valid) + 1),
		Replicates: valid,
	}, nil
}
