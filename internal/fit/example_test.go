package fit_test

import (
	"fmt"

	"raidrel/internal/dist"
	"raidrel/internal/fit"
	"raidrel/internal/rng"
)

// ExampleMLE fits a heavily censored field population like the paper's
// Fig. 2 vintages.
func ExampleMLE() {
	// A synthetic vintage: true β = 1.2162, η = 125,660 h, observed for
	// 10,000 hours (so ~96% of units are suspensions).
	truth := dist.MustWeibull(1.2162, 1.2566e5, 0)
	r := rng.New(42)
	obs := make([]fit.Observation, 24000)
	for i := range obs {
		t := truth.Sample(r)
		if t > 10000 {
			obs[i] = fit.Observation{Time: 10000, Censored: true}
		} else {
			obs[i] = fit.Observation{Time: t}
		}
	}
	params, err := fit.MLE(obs)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("recovered shape within 10%%: %v\n", params.Shape > 1.09 && params.Shape < 1.34)
	fmt.Printf("recovered scale within 25%%: %v\n", params.Scale > 0.94e5 && params.Scale < 1.57e5)
	// Output:
	// recovered shape within 10%: true
	// recovered scale within 25%: true
}

// ExampleWeibullGoF tests whether field data is consistent with a single
// Weibull — the quantitative form of the paper's Fig. 1 verdicts.
func ExampleWeibullGoF() {
	r := rng.New(7)
	// A two-mechanism population (early-life + wear-out), like HDD #2.
	life := dist.MustCompetingRisks([]dist.Distribution{
		dist.MustWeibull(0.95, 6e5, 0),
		dist.MustWeibull(3.6, 3e4, 0),
	})
	obs := make([]fit.Observation, 2000)
	for i := range obs {
		t := life.Sample(r)
		if t > 30000 {
			obs[i] = fit.Observation{Time: 30000, Censored: true}
		} else {
			obs[i] = fit.Observation{Time: t}
		}
	}
	res, err := fit.WeibullGoF(obs, 99, r)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("single-Weibull hypothesis rejected:", res.Rejects(0.05))
	// Output:
	// single-Weibull hypothesis rejected: true
}
