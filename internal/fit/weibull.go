// Package fit implements the life-data analysis used to produce the
// paper's Figs. 1-2: Weibull probability plotting with median ranks
// (Benard's approximation, Johnson rank adjustment for suspensions),
// median-rank regression, censored maximum-likelihood estimation, and
// Kaplan-Meier survival estimation. These are the tools that turn field
// returns (times to failure plus survivors) into the (β, η) parameters the
// simulator consumes.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Observation is one unit's time on test: a failure at Time or a suspension
// (still-running unit, right-censored) at Time.
type Observation struct {
	Time     float64
	Censored bool // true = suspension (unit survived past Time)
}

// ErrInsufficientFailures is returned when a dataset has fewer than two
// failures, which is the minimum for any two-parameter fit.
var ErrInsufficientFailures = errors.New("fit: need at least 2 failures")

func validate(obs []Observation) (failures int, err error) {
	for i, o := range obs {
		if !(o.Time > 0) || math.IsInf(o.Time, 0) {
			return 0, fmt.Errorf("fit: observation %d has invalid time %v", i, o.Time)
		}
		if !o.Censored {
			failures++
		}
	}
	if failures < 2 {
		return failures, ErrInsufficientFailures
	}
	return failures, nil
}

// PlotPoint is one point of a Weibull probability plot: in the transformed
// coordinates (X = ln t, Y = ln(-ln(1-F))) a two-parameter Weibull sample
// falls on a straight line with slope β.
type PlotPoint struct {
	Time       float64 // failure time
	MedianRank float64 // Benard median rank estimate of F(Time)
	X, Y       float64 // transformed plotting coordinates
}

// ProbabilityPlot computes Weibull plot points from a (possibly censored)
// dataset using Johnson's adjusted ranks and Benard's approximation,
// exactly the construction behind the paper's Figs. 1 and 2.
func ProbabilityPlot(obs []Observation) ([]PlotPoint, error) {
	if _, err := validate(obs); err != nil {
		return nil, err
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	n := float64(len(sorted))
	points := make([]PlotPoint, 0, len(sorted))
	prevRank := 0.0
	for i, o := range sorted {
		if o.Censored {
			continue
		}
		// Johnson rank increment: suspensions before this failure inflate
		// the spacing of subsequent ranks.
		increment := (n + 1 - prevRank) / (n + 1 - float64(i))
		rank := prevRank + increment
		prevRank = rank
		// Benard's approximation to the median rank.
		f := (rank - 0.3) / (n + 0.4)
		points = append(points, PlotPoint{
			Time:       o.Time,
			MedianRank: f,
			X:          math.Log(o.Time),
			Y:          math.Log(-math.Log(1 - f)),
		})
	}
	return points, nil
}

// Params is a fitted two-parameter Weibull with a goodness-of-fit measure.
type Params struct {
	Shape float64 // β
	Scale float64 // η
	R2    float64 // coefficient of determination of the probability plot fit
}

// MedianRankRegression fits (β, η) by least squares on the probability-plot
// coordinates, regressing X on Y (the Weibull-analysis convention, which
// weights scatter in time rather than in rank).
func MedianRankRegression(obs []Observation) (Params, error) {
	points, err := ProbabilityPlot(obs)
	if err != nil {
		return Params{}, err
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
		ys[i] = p.Y
	}
	// Regress X on Y: X = a + b Y, then β = 1/b, ln η = a.
	fitLine, err := LinearFit(ys, xs)
	if err != nil {
		return Params{}, fmt.Errorf("fit: regression: %w", err)
	}
	if fitLine.Slope <= 0 {
		return Params{}, fmt.Errorf("fit: non-positive plot slope %v (data not Weibull-orderable)", fitLine.Slope)
	}
	return Params{
		Shape: 1 / fitLine.Slope,
		Scale: math.Exp(fitLine.Intercept),
		R2:    fitLine.R2,
	}, nil
}

// MLE fits (β, η) by maximum likelihood with right-censoring. The profile
// likelihood in β is solved by bisection of its score function; η follows
// in closed form. MLE is the preferred estimator for heavily censored
// vintage data (Fig. 2's populations are >95% suspensions).
func MLE(obs []Observation) (Params, error) {
	r, err := validate(obs)
	if err != nil {
		return Params{}, err
	}
	// Work with times scaled by the maximum so t^β never overflows; the
	// estimator is scale-equivariant, so η is rescaled afterwards.
	var tmax float64
	for _, o := range obs {
		if o.Time > tmax {
			tmax = o.Time
		}
	}
	scaled := make([]Observation, len(obs))
	for i, o := range obs {
		scaled[i] = Observation{Time: o.Time / tmax, Censored: o.Censored}
	}
	// Score function g(β): sum over failures of ln t / r + 1/β −
	// Σ_all t^β ln t / Σ_all t^β. Decreasing in β.
	var sumLogFail float64
	for _, o := range scaled {
		if !o.Censored {
			sumLogFail += math.Log(o.Time)
		}
	}
	meanLogFail := sumLogFail / float64(r)
	score := func(beta float64) float64 {
		var num, den float64
		for _, o := range scaled {
			tb := math.Pow(o.Time, beta)
			num += tb * math.Log(o.Time)
			den += tb
		}
		return meanLogFail + 1/beta - num/den
	}
	lo, hi := 1e-3, 1.0
	for score(hi) > 0 {
		lo = hi
		hi *= 2
		if hi > 1e3 {
			return Params{}, fmt.Errorf("fit: MLE shape search diverged (all failures nearly equal?)")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if score(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	beta := (lo + hi) / 2
	var den float64
	for _, o := range scaled {
		den += math.Pow(o.Time, beta)
	}
	eta := tmax * math.Pow(den/float64(r), 1/beta)
	p := Params{Shape: beta, Scale: eta}
	// Report the probability-plot R² for comparability with MRR.
	if mrr, err := MedianRankRegression(obs); err == nil {
		p.R2 = mrr.R2
	}
	return p, nil
}

// Line is a least-squares straight-line fit y = Intercept + Slope x.
type Line struct {
	Slope, Intercept float64
	R2               float64
}

// LinearFit computes the ordinary least squares line through (x, y).
func LinearFit(x, y []float64) (Line, error) {
	if len(x) != len(y) {
		return Line{}, fmt.Errorf("fit: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Line{}, fmt.Errorf("fit: need >= 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, fmt.Errorf("fit: degenerate x (zero variance)")
	}
	slope := sxy / sxx
	line := Line{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		line.R2 = sxy * sxy / (sxx * syy)
	} else {
		line.R2 = 1
	}
	return line, nil
}
