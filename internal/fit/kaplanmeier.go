package fit

import (
	"fmt"
	"math"
	"sort"
)

// SurvivalPoint is one step of a Kaplan-Meier survival estimate.
type SurvivalPoint struct {
	Time     float64
	Survival float64 // S(Time)
	AtRisk   int     // units at risk just before Time
	Events   int     // failures at Time
}

// KaplanMeier computes the product-limit survival estimate from censored
// observations. It handles ties and censoring at failure times with the
// standard convention (censored units at a failure time remain at risk for
// that failure).
func KaplanMeier(obs []Observation) ([]SurvivalPoint, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("fit: Kaplan-Meier of empty dataset")
	}
	for i, o := range obs {
		if !(o.Time > 0) || math.IsInf(o.Time, 0) {
			return nil, fmt.Errorf("fit: observation %d has invalid time %v", i, o.Time)
		}
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		// Failures sort before censorings at the same time.
		return !sorted[i].Censored && sorted[j].Censored
	})

	var out []SurvivalPoint
	s := 1.0
	atRisk := len(sorted)
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		events, censored := 0, 0
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Censored {
				censored++
			} else {
				events++
			}
			i++
		}
		if events > 0 {
			s *= 1 - float64(events)/float64(atRisk)
			out = append(out, SurvivalPoint{Time: t, Survival: s, AtRisk: atRisk, Events: events})
		}
		atRisk -= events + censored
	}
	return out, nil
}

// SurvivalAt evaluates a Kaplan-Meier step function at t (1 before the first
// failure).
func SurvivalAt(km []SurvivalPoint, t float64) float64 {
	i := sort.Search(len(km), func(i int) bool { return km[i].Time > t })
	if i == 0 {
		return 1
	}
	return km[i-1].Survival
}

// Changepoint locates the most likely single slope change in a probability
// plot by minimizing the total residual sum of squares of a two-segment
// fit. It returns the index (into points) where the second segment begins
// and the two fitted segments. The paper's HDD #2 (Fig. 1) shows exactly
// this signature: "two separate linear sections, denoting two distributions
// dominate at different points in time".
func Changepoint(points []PlotPoint) (split int, left, right Line, err error) {
	// Each segment must hold at least 10% of the points (and no fewer than
	// 3), so a handful of noisy extreme-tail order statistics cannot pass
	// for a regime of their own.
	minSeg := len(points) / 10
	if minSeg < 3 {
		minSeg = 3
	}
	if len(points) < 2*minSeg {
		return 0, Line{}, Line{}, fmt.Errorf("fit: need >= %d points for changepoint, got %d", 2*minSeg, len(points))
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
		ys[i] = p.Y
	}
	best := math.Inf(1)
	for s := minSeg; s <= len(points)-minSeg; s++ {
		l, errL := LinearFit(xs[:s], ys[:s])
		r, errR := LinearFit(xs[s:], ys[s:])
		if errL != nil || errR != nil {
			continue
		}
		rss := segmentRSS(xs[:s], ys[:s], l) + segmentRSS(xs[s:], ys[s:], r)
		if rss < best {
			best, split, left, right = rss, s, l, r
		}
	}
	if math.IsInf(best, 1) {
		return 0, Line{}, Line{}, fmt.Errorf("fit: no valid changepoint split")
	}
	return split, left, right, nil
}

// ChangepointImprovement returns the fraction of the single-line residual
// sum of squares eliminated by the two-segment fit at the given split:
// 0 means no improvement, 1 means the segments fit perfectly. Values
// above ~0.5 indicate genuine multi-regime structure rather than noise.
func ChangepointImprovement(points []PlotPoint, split int, left, right Line) float64 {
	if split <= 0 || split >= len(points) {
		return 0
	}
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
		ys[i] = p.Y
	}
	single, err := LinearFit(xs, ys)
	if err != nil {
		return 0
	}
	baseRSS := segmentRSS(xs, ys, single)
	if baseRSS == 0 {
		return 0
	}
	segRSS := segmentRSS(xs[:split], ys[:split], left) + segmentRSS(xs[split:], ys[split:], right)
	return 1 - segRSS/baseRSS
}

func segmentRSS(x, y []float64, l Line) float64 {
	var rss float64
	for i := range x {
		d := y[i] - (l.Intercept + l.Slope*x[i])
		rss += d * d
	}
	return rss
}
