package service

import (
	"fmt"
	"sort"

	"raidrel/internal/campaign"
	"raidrel/internal/sim"
)

// ShardResult is one completed shard of a sharded campaign, as described
// by its manifest entry: which slice it is, the iteration range it ran,
// the base (unsharded) config fingerprint it belongs to, and the sparse
// result it produced.
type ShardResult struct {
	// Index/Count designate the shard.
	Index, Count int
	// Offset and Iterations are the stream range [Offset, Offset+Iterations)
	// the shard simulated.
	Offset, Iterations int
	// Fingerprint is the unsharded campaign's config fingerprint; all
	// shards of one campaign share it.
	Fingerprint string
	// Run is the shard's result, with group indices local to the shard.
	Run *sim.SparseResult
}

// MergeShards combines k shard results into the exact result of the
// unsharded campaign. Because stream index Offset+i always drives
// iteration Offset+i regardless of process, worker count, or batching,
// concatenating the shard results in offset order is bit-identical to a
// single run over the full range — no statistical merging, an equality.
//
// The manifest is fully validated first: every shard present exactly once,
// all from the same campaign (equal fingerprints and counts), ranges
// contiguous from offset 0, and each result sized to its declared range. A
// gap, overlap, or foreign shard yields an error, never a silently wrong
// merge.
func MergeShards(shards []ShardResult) (*sim.SparseResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("service: merge: no shards")
	}
	n := shards[0].Count
	fp := shards[0].Fingerprint
	if len(shards) != n {
		return nil, fmt.Errorf("service: merge: %d shards of a %d-shard campaign", len(shards), n)
	}
	ordered := make([]ShardResult, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Index < ordered[b].Index })

	next := 0
	for i, sh := range ordered {
		if sh.Count != n {
			return nil, fmt.Errorf("service: merge: shard %d declares %d-way sharding, others %d-way", sh.Index, sh.Count, n)
		}
		if sh.Fingerprint != fp {
			return nil, fmt.Errorf("service: merge: shard %d fingerprint %s does not match %s (different campaign)", sh.Index, sh.Fingerprint, fp)
		}
		if sh.Index != i {
			return nil, fmt.Errorf("service: merge: shard %d missing or duplicated", i)
		}
		if sh.Offset != next {
			return nil, fmt.Errorf("service: merge: shard %d starts at offset %d, want %d (gap or overlap)", sh.Index, sh.Offset, next)
		}
		if sh.Run == nil || sh.Run.Groups != sh.Iterations {
			got := 0
			if sh.Run != nil {
				got = sh.Run.Groups
			}
			return nil, fmt.Errorf("service: merge: shard %d holds %d iterations, manifest says %d", sh.Index, got, sh.Iterations)
		}
		// Variance-reduced shards must agree on the VR block layout and sit
		// on block boundaries, or the concatenated block tallies would not
		// be the single-run tallies. (Mis-sized trailing blocks are legal
		// only on the final shard, where the campaign itself clips.)
		if vr0 := ordered[0].Run.VR; (vr0 != nil) != (sh.Run.VR != nil) {
			return nil, fmt.Errorf("service: merge: shard %d mixes variance-reduced and plain results", sh.Index)
		} else if vr := sh.Run.VR; vr != nil {
			if vr.BlockSize != vr0.BlockSize {
				return nil, fmt.Errorf("service: merge: shard %d uses VR block size %d, others %d", sh.Index, vr.BlockSize, vr0.BlockSize)
			}
			if vr.BlockSize <= 0 || sh.Offset%vr.BlockSize != 0 {
				return nil, fmt.Errorf("service: merge: shard %d starts at offset %d, not a multiple of its VR block size %d", sh.Index, sh.Offset, vr.BlockSize)
			}
			if vr.Iterations() != sh.Run.Groups {
				return nil, fmt.Errorf("service: merge: shard %d VR blocks cover %d of %d iterations", sh.Index, vr.Iterations(), sh.Run.Groups)
			}
		}
		next += sh.Iterations
	}

	merged := &sim.SparseResult{}
	for _, sh := range ordered {
		merged.Merge(sh.Run)
	}
	return merged, nil
}

// MergeJobs merges completed shard jobs into the unsharded campaign's
// result and registers it as a synthetic done job cached under the
// unsharded spec's key — so a later submission of the whole campaign is a
// cache hit served without simulating. Merging the same shards again
// returns the existing merged job (the merge itself is memoized).
func (s *Server) MergeJobs(ids []string) (*Job, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("service: merge: no job ids")
	}
	shards := make([]ShardResult, 0, len(ids))
	var base JobSpec
	for i, id := range ids {
		j, ok := s.Job(id)
		if !ok {
			return nil, fmt.Errorf("service: merge: unknown job %s", id)
		}
		if st := j.State(); st != JobDone {
			return nil, fmt.Errorf("service: merge: job %s is %s, want %s", id, st, JobDone)
		}
		if j.Spec.Shard == nil {
			return nil, fmt.Errorf("service: merge: job %s is not a shard", id)
		}
		if i == 0 {
			base = j.Spec.unsharded()
		}
		// Each shard carries its job's shard-stripped fingerprint; mixed
		// configs therefore fail MergeShards' equality check even before
		// range validation.
		fp, err := j.Spec.unsharded().Fingerprint()
		if err != nil {
			return nil, err
		}
		res, _ := j.Result()
		start, end := j.Spec.Shard.Range(j.Spec.Iterations)
		shards = append(shards, ShardResult{
			Index:       j.Spec.Shard.Index,
			Count:       j.Spec.Shard.Count,
			Offset:      start,
			Iterations:  end - start,
			Fingerprint: fp,
			Run:         res.Run,
		})
	}

	merged, err := MergeShards(shards)
	if err != nil {
		return nil, err
	}
	spec, err := base.campaignSpec()
	if err != nil {
		return nil, err
	}
	result := campaign.Summarize(spec, merged)

	key, err := base.CacheKey()
	if err != nil {
		return nil, err
	}
	fp := shards[0].Fingerprint

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.cache[key]; ok && existing.State() == JobDone {
		s.hits.Add(1)
		return existing, nil
	}
	s.nextSeq++
	now := s.opts.now()
	j := &Job{
		ID:          fmt.Sprintf("j%06d", s.nextSeq),
		Spec:        base,
		Fingerprint: fp,
		CacheKey:    key,
		Merged:      true,
		seq:         s.nextSeq,
		state:       JobDone,
		result:      result,
		submitted:   now,
		started:     now,
		finished:    now,
		done:        make(chan struct{}),
	}
	close(j.done)
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.cache[key] = j
	s.merges.Add(1)
	return j, nil
}
