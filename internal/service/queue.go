package service

import (
	"container/heap"
	"sync"
)

// jobQueue is a blocking priority queue: Pop returns the highest-priority
// queued job, FIFO within a priority level (by submission sequence), and
// blocks while the queue is empty. Close wakes all waiters; a closed empty
// queue pops nil, which is the scheduler workers' exit signal.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a job. Pushing to a closed queue is a programming error
// upstream (Submit refuses while draining) and is silently dropped rather
// than deadlocking a worker.
func (q *jobQueue) Push(j *Job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
}

// Pop blocks until a job is available or the queue is closed; it returns
// nil only when the queue is closed and empty.
func (q *jobQueue) Pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil
	}
	return heap.Pop(&q.heap).(*Job)
}

// Len returns the number of queued jobs.
func (q *jobQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// Close wakes all blocked Pops. Queued jobs may still be popped and are
// handled by the workers' draining check.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// jobHeap orders by (priority desc, sequence asc).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Spec.Priority != h[b].Spec.Priority {
		return h[a].Spec.Priority > h[b].Spec.Priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
