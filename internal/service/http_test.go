package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"raidrel/internal/campaign"
	"raidrel/internal/core"
	"raidrel/internal/markov"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(context.Background())
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantCode, body)
	}
	if v == nil {
		resp.Body.Close()
		return
	}
	decodeJSON(t, resp, v)
}

func waitHTTPDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var doc jobDoc
		getJSON(t, base+"/v1/jobs/"+id, http.StatusOK, &doc)
		switch doc.State {
		case JobDone:
			return
		case JobFailed, JobCanceled:
			t.Fatalf("job %s ended %s: %s", id, doc.State, doc.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, doc.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitResultAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 2, Workers: 2})
	spec := JobSpec{Params: fastParams(), Seed: 81, Iterations: 2000}

	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	var doc jobDoc
	decodeJSON(t, resp, &doc)
	if doc.ID == "" || doc.Fingerprint == "" {
		t.Fatalf("submit doc incomplete: %+v", doc)
	}
	waitHTTPDone(t, ts.URL, doc.ID)

	var res resultDoc
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusOK, &res)
	if res.Iterations != 2000 || res.Fingerprint != doc.Fingerprint {
		t.Fatalf("result doc: %+v", res)
	}
	// The served result is the campaign result, bit for bit.
	cspec, err := spec.campaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), cspec)
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupsWithDDF != want.GroupsWithDDF || res.TotalDDFs != want.Run.TotalDDFs ||
		res.CILo != want.CI.Lo || res.CIHi != want.CI.Hi || len(res.Events) != len(want.Run.Events) {
		t.Fatalf("served result differs from a direct campaign run: %+v", res)
	}
	for i, e := range want.Run.Events {
		got := res.Events[i]
		if got.Group != e.Group || got.Time != e.Time || got.Cause != int(e.Cause) {
			t.Fatalf("event %d: got %+v, want %+v", i, got, e)
		}
	}

	// Identical resubmission: 200 with cached=true, same job ID.
	resp = postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit = %d, want %d", resp.StatusCode, http.StatusOK)
	}
	var hit jobDoc
	decodeJSON(t, resp, &hit)
	if !hit.Cached || hit.ID != doc.ID || hit.State != JobDone {
		t.Fatalf("cached submit doc: %+v", hit)
	}

	var m Metrics
	getJSON(t, ts.URL+"/metrics", http.StatusOK, &m)
	if m.CacheHits != 1 || m.IterationsSimulated != 2000 || m.Completed != 1 {
		t.Fatalf("metrics after cache hit: %+v", m)
	}

	var jobs []jobDoc
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &jobs)
	if len(jobs) != 1 || jobs[0].ID != doc.ID {
		t.Fatalf("job list: %+v", jobs)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 1, Workers: 2})

	// Malformed body, unknown field, and invalid spec are all 400s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"bogus_knob":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", JobSpec{Params: fastParams()})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d", resp.StatusCode)
	}

	getJSON(t, ts.URL+"/v1/jobs/j999999", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/jobs/j999999/result", http.StatusNotFound, nil)

	// Result of a non-terminal job is a 409.
	resp = postJSON(t, ts.URL+"/v1/jobs", longSpec(82))
	var doc jobDoc
	decodeJSON(t, resp, &doc)
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusConflict, nil)

	// DELETE cancels; a second DELETE conflicts; result stays unavailable.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+doc.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", dresp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur jobDoc
		getJSON(t, ts.URL+"/v1/jobs/"+doc.ID, http.StatusOK, &cur)
		if cur.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not canceled, state %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel = %d", dresp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusConflict, nil)
}

// TestHTTPShardMerge drives the sharded workflow purely over the wire:
// submit the k shard jobs, merge them, and check the merged body equals a
// direct unsharded campaign run event for event.
func TestHTTPShardMerge(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 3, Workers: 1})
	base := JobSpec{Params: fastParams(), Seed: 83, Iterations: 1500}
	const k = 3

	ids := make([]string, 0, k)
	for i := 0; i < k; i++ {
		js := base
		js.Shard = &Shard{Index: i, Count: k}
		resp := postJSON(t, ts.URL+"/v1/jobs", js)
		var doc jobDoc
		decodeJSON(t, resp, &doc)
		if doc.Shard == nil || doc.Shard.Index != i {
			t.Fatalf("shard doc: %+v", doc)
		}
		ids = append(ids, doc.ID)
	}
	for _, id := range ids {
		waitHTTPDone(t, ts.URL, id)
	}

	resp := postJSON(t, ts.URL+"/v1/merge", map[string]any{"jobs": ids})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("merge = %d: %s", resp.StatusCode, body)
	}
	var merged resultDoc
	decodeJSON(t, resp, &merged)
	if merged.Reason != "merged" || merged.Iterations != base.Iterations {
		t.Fatalf("merged doc: %+v", merged)
	}

	cspec, err := base.campaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), cspec)
	if err != nil {
		t.Fatal(err)
	}
	gotEvents := make([]eventDoc, 0, len(want.Run.Events))
	for _, e := range want.Run.Events {
		gotEvents = append(gotEvents, eventDoc{Group: e.Group, Time: e.Time, Cause: int(e.Cause), LogW: e.LogW})
	}
	if !reflect.DeepEqual(merged.Events, gotEvents) {
		t.Fatal("merged events differ from the unsharded run")
	}
	if merged.GroupsWithDDF != want.GroupsWithDDF || merged.CILo != want.CI.Lo || merged.CIHi != want.CI.Hi {
		t.Fatalf("merged summary differs: %+v", merged)
	}

	// The whole campaign is now served from the merged cache entry.
	resp = postJSON(t, ts.URL+"/v1/jobs", base)
	var hit jobDoc
	decodeJSON(t, resp, &hit)
	if resp.StatusCode != http.StatusOK || !hit.Cached || !hit.Merged {
		t.Fatalf("unsharded submit after merge: code=%d doc=%+v", resp.StatusCode, hit)
	}

	// Merging a partial shard set is a 400.
	resp = postJSON(t, ts.URL+"/v1/merge", map[string]any{"jobs": ids[:k-1]})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial merge = %d", resp.StatusCode)
	}
}

// TestHTTPStream reads the SSE progress feed: at least one per-batch data
// frame in the Snapshot JSON schema, then the terminal end event.
func TestHTTPStream(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 1, Workers: 2})
	spec := JobSpec{Params: fastParams(), Seed: 84, Iterations: 20_000, BatchSize: 500}
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	var doc jobDoc
	decodeJSON(t, resp, &doc)

	sresp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(sresp.Body) // the stream closes after the end event
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "data: {\"iterations\":") {
		t.Fatalf("no snapshot frames in stream:\n%s", text)
	}
	if !strings.Contains(text, "event: end") || !strings.Contains(text, `{"state":"done"}`) {
		t.Fatalf("stream missing terminal end event:\n%s", text)
	}
	// The final data frame carries the campaign's own completion snapshot.
	if !strings.Contains(text, fmt.Sprintf("\"iterations\":%d", spec.Iterations)) {
		t.Fatalf("stream never reported the final iteration count:\n%s", text)
	}

	// Streaming a finished job replays the last snapshot and ends at once.
	sresp, err = http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: end") {
		t.Fatalf("finished-job stream missing end event:\n%s", body)
	}
}

func TestHTTPHealth(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrent: 1})
	var h struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Draining {
		t.Fatalf("healthz: %+v", h)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &h)
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz while draining: %+v", h)
	}
	// Submissions are refused with 503 once draining.
	resp := postJSON(t, ts.URL+"/v1/jobs", JobSpec{Params: fastParams(), Seed: 1, Iterations: 100})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

// A coupled enclosure topology exercised end-to-end: submitted over HTTP,
// simulated on the event engine, served back with unavailability fields —
// and both the data-loss and unavailability estimates agree with the
// component Markov chains (exact for this all-exponential scenario).
func TestHTTPTopologyJobMatchesComponentChains(t *testing.T) {
	const (
		lambda  = 2e-5 // drive failures, MTBF 50,000 h
		mu      = 5e-3 // drive rebuild, 200 h
		lambdaC = 5e-5 // enclosure failures, MTBF 20,000 h
		muC     = 5e-4 // enclosure repair, 2,000 h — long outages
		horizon = 87600.0
		iters   = 8000
	)
	_, ts := newTestServer(t, Options{MaxConcurrent: 2, Workers: 4})
	spec := JobSpec{
		Params: core.Params{
			GroupSize:    8,
			Redundancy:   1,
			MissionHours: horizon,
			TTOp:         core.WeibullSpec{Scale: 1 / lambda, Shape: 1},
			TTR:          core.WeibullSpec{Scale: 1 / mu, Shape: 1},
			Topology: &core.TopologySpec{Components: []core.ComponentSpec{{
				Name:   "enclosure",
				Drives: []int{0, 1, 2, 3, 4, 5, 6, 7},
				TTOp:   core.WeibullSpec{Scale: 1 / lambdaC, Shape: 1},
				TTR:    core.WeibullSpec{Scale: 1 / muC, Shape: 1},
			}}},
		},
		Seed:       4242,
		Iterations: iters,
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var doc jobDoc
	decodeJSON(t, resp, &doc)
	waitHTTPDone(t, ts.URL, doc.ID)

	var res resultDoc
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusOK, &res)
	if res.Iterations != iters {
		t.Fatalf("result doc: %+v", res)
	}
	if res.UnavailEvents == 0 || res.GroupsWithUnavail == 0 || res.UnavailPer1000 <= 0 {
		t.Fatalf("unavailability fields missing from the wire form: %+v", res)
	}

	// Data loss vs the shared-component chain (rebuilds pause during the
	// outage; exact for exponential rates).
	loss, err := markov.NewSharedComponentChain(7, lambda, mu, lambdaC, muC)
	if err != nil {
		t.Fatal(err)
	}
	wantLoss, err := loss.AbsorptionProbability(markov.SCAllGoodUp, horizon)
	if err != nil {
		t.Fatal(err)
	}
	gotLoss := float64(res.GroupsWithDDF) / float64(res.Iterations)
	if se := math.Sqrt(wantLoss * (1 - wantLoss) / iters); math.Abs(gotLoss-wantLoss) > 4*se {
		t.Errorf("P(loss) = %v, shared-component chain says %v (±%v)", gotLoss, wantLoss, 4*se)
	}

	// Unavailability vs the component path chain: the enclosure covers the
	// whole group, so P(>=1 episode) is its first-outage probability.
	avail, err := markov.NewComponentPathChain(1, lambdaC, muC)
	if err != nil {
		t.Fatal(err)
	}
	wantUn, err := avail.AbsorptionProbability(0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	gotUn := float64(res.GroupsWithUnavail) / float64(res.Iterations)
	if se := math.Sqrt(wantUn * (1 - wantUn) / iters); math.Abs(gotUn-wantUn) > 4*se {
		t.Errorf("P(unavail) = %v, path chain says %v (±%v)", gotUn, wantUn, 4*se)
	}

	// The served events include the onsets with cause 3, and they never
	// leak into the loss counters.
	unavail := 0
	for _, e := range res.Events {
		if e.Cause == 3 {
			unavail++
		}
	}
	if unavail != res.UnavailEvents {
		t.Errorf("wire events carry %d onsets, counter says %d", unavail, res.UnavailEvents)
	}
	if res.TotalDDFs+res.UnavailEvents != len(res.Events) {
		t.Errorf("event counts inconsistent: %d loss + %d unavail != %d events",
			res.TotalDDFs, res.UnavailEvents, len(res.Events))
	}
}
