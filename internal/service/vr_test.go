package service

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"raidrel/internal/campaign"
	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// vrParams is fastParams with the full variance-reduction stack on a
// 64-iteration block.
func vrParams() core.Params {
	p := fastParams()
	p.VR = sim.VR{Antithetic: true, Stratify: true, ControlVariate: true, BlockSize: 64}
	return p
}

// runVRShards mirrors runShards through the block engine, which VR
// requires.
func runVRShards(t *testing.T, spec JobSpec, k int) []ShardResult {
	t.Helper()
	m, err := core.New(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.unsharded().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]ShardResult, 0, k)
	for i := 0; i < k; i++ {
		sh := Shard{Index: i, Count: k}
		start, end := sh.Range(spec.Iterations)
		run, err := sim.RunSparse(sim.RunSpec{
			Config:     m.SimConfig(),
			Iterations: end - start,
			Seed:       spec.Seed,
			Offset:     start,
			Engine:     sim.BlockEngine{},
		})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, ShardResult{
			Index: i, Count: k,
			Offset: start, Iterations: end - start,
			Fingerprint: fp, Run: run,
		})
	}
	return shards
}

// TestMergeShardsVRBitExact: block-aligned VR shards merge to the exact
// unsharded run — events, block tallies, and the summarized CI all equal.
func TestMergeShardsVRBitExact(t *testing.T) {
	spec := JobSpec{Params: vrParams(), Seed: 31, Iterations: 768} // 3 shards × 4 blocks
	m, err := core.New(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunSparse(sim.RunSpec{
		Config: m.SimConfig(), Iterations: spec.Iterations, Seed: spec.Seed, Engine: sim.BlockEngine{},
	})
	if err != nil {
		t.Fatal(err)
	}

	merged, err := MergeShards(runVRShards(t, spec, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Events, want.Events) {
		t.Error("merged events differ from the unsharded run")
	}
	if !reflect.DeepEqual(merged.VR, want.VR) {
		t.Errorf("merged VR tallies differ:\nmerged    %+v\nunsharded %+v", merged.VR, want.VR)
	}

	cspec, err := spec.campaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	got := campaign.Summarize(cspec, merged)
	ref := campaign.Summarize(cspec, want)
	if got.CI != ref.CI || got.VRFactor != ref.VRFactor || got.VRPairs != ref.VRPairs {
		t.Errorf("summaries differ: merged %+v vs unsharded %+v", got, ref)
	}
	if got.VRPairs != spec.Iterations/2 {
		t.Errorf("VRPairs = %d, want %d", got.VRPairs, spec.Iterations/2)
	}
}

// TestMergeShardsVRValidation: the merge must reject shard manifests whose
// VR block layouts cannot concatenate into a single run's tallies.
func TestMergeShardsVRValidation(t *testing.T) {
	spec := JobSpec{Params: vrParams(), Seed: 32, Iterations: 768}
	good := func() []ShardResult { return runVRShards(t, spec, 3) }

	cases := []struct {
		name    string
		mutate  func([]ShardResult) []ShardResult
		errPart string
	}{
		{"mixed vr", func(s []ShardResult) []ShardResult { s[1].Run.VR = nil; return s }, "mixes variance-reduced"},
		{"block size", func(s []ShardResult) []ShardResult { s[1].Run.VR.BlockSize = 32; return s }, "VR block size 32"},
		{"short blocks", func(s []ShardResult) []ShardResult {
			vr := s[1].Run.VR
			vr.Blocks = vr.Blocks[:len(vr.Blocks)-1]
			return s
		}, "cover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeShards(tc.mutate(good()))
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}

	// Shard boundaries that fall inside a VR block (96 is not a multiple
	// of the 64-iteration block) must be rejected.
	misaligned := JobSpec{Params: vrParams(), Seed: 33, Iterations: 288}
	if _, err := MergeShards(runVRShards(t, misaligned, 3)); err == nil {
		t.Error("block-misaligned shard offsets accepted")
	}
}

// TestServerVRJob: a variance-reduced job runs end to end through the
// scheduler; its result document and the server metrics expose the VR
// diagnostics.
func TestServerVRJob(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	defer s.Drain(context.Background())
	spec := JobSpec{Params: vrParams(), Seed: 34, Iterations: 2048, BatchSize: 512}
	j, reused, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("fresh VR spec reported as reused")
	}
	<-j.Done()
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2048 {
		t.Fatalf("ran %d iterations, want 2048", res.Iterations)
	}
	if res.VRPairs != 1024 || res.VRFactor <= 0 {
		t.Errorf("VR diagnostics missing: pairs=%d factor=%v", res.VRPairs, res.VRFactor)
	}

	doc := s.resultDoc(j, res)
	if doc.VRPairs != res.VRPairs || doc.VRFactor != res.VRFactor || doc.VRCoeff != res.VRCoeff {
		t.Errorf("result document dropped VR diagnostics: %+v", doc)
	}
	if mid := (res.CI.Lo + res.CI.Hi) / 2; doc.P != mid {
		t.Errorf("VR result p = %v, want CI midpoint %v", doc.P, mid)
	}

	if m := s.Metrics(); m.VRIterations != 2048 || m.IterationsSimulated != 2048 {
		t.Errorf("metrics count %d VR of %d simulated, want 2048 of 2048", m.VRIterations, m.IterationsSimulated)
	}
}
