package service

import (
	"reflect"
	"strings"
	"testing"

	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// fastParams puts the per-group DDF probability near 3% so small campaigns
// still produce events: exponential TTOp with a 40,000-hour MTBF against
// a 10-hour MTTR over the paper's 10-year mission.
func fastParams() core.Params {
	return core.Params{
		GroupSize:    8,
		Redundancy:   1,
		MissionHours: 87600,
		TTOp:         core.WeibullSpec{Scale: 40000, Shape: 1},
		TTR:          core.WeibullSpec{Scale: 10, Shape: 1},
	}
}

// runShards simulates the k shards of an n-iteration campaign directly
// through the sim layer, returning manifest entries.
func runShards(t *testing.T, spec JobSpec, k int) []ShardResult {
	t.Helper()
	m, err := core.New(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := spec.unsharded().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]ShardResult, 0, k)
	for i := 0; i < k; i++ {
		sh := Shard{Index: i, Count: k}
		start, end := sh.Range(spec.Iterations)
		run, err := sim.RunSparse(sim.RunSpec{
			Config:     m.SimConfig(),
			Iterations: end - start,
			Seed:       spec.Seed,
			Offset:     start,
		})
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, ShardResult{
			Index: i, Count: k,
			Offset: start, Iterations: end - start,
			Fingerprint: fp, Run: run,
		})
	}
	return shards
}

// TestMergeShardsBitExact is the acceptance property: k shards over
// disjoint offset ranges merge to the byte-identical result of one
// unsharded run, whatever order the manifest arrives in.
func TestMergeShardsBitExact(t *testing.T) {
	spec := JobSpec{Params: fastParams(), Seed: 21, Iterations: 1000}
	m, err := core.New(spec.Params)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunSparse(sim.RunSpec{Config: m.SimConfig(), Iterations: spec.Iterations, Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}

	shards := runShards(t, spec, 3)
	// Shuffle the manifest: merge must order by index itself.
	shards[0], shards[2] = shards[2], shards[0]
	merged, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Groups != want.Groups || !reflect.DeepEqual(merged.Events, want.Events) {
		t.Fatal("merged shards differ from the unsharded run")
	}
	if merged.TotalDDFs != want.TotalDDFs || merged.OpOpDDFs != want.OpOpDDFs || merged.LdOpDDFs != want.LdOpDDFs {
		t.Fatal("merged tallies differ from the unsharded run")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	spec := JobSpec{Params: fastParams(), Seed: 22, Iterations: 900}
	good := func() []ShardResult { return runShards(t, spec, 3) }

	cases := []struct {
		name    string
		mutate  func([]ShardResult) []ShardResult
		errPart string
	}{
		{"empty", func(s []ShardResult) []ShardResult { return nil }, "no shards"},
		{"missing shard", func(s []ShardResult) []ShardResult { return s[:2] }, "2 shards of a 3-shard"},
		{"duplicate index", func(s []ShardResult) []ShardResult { s[1] = s[0]; return s }, "missing or duplicated"},
		{"foreign fingerprint", func(s []ShardResult) []ShardResult { s[1].Fingerprint = "deadbeef"; return s }, "different campaign"},
		{"mixed count", func(s []ShardResult) []ShardResult { s[2].Count = 4; return s }, "4-way sharding"},
		{"offset gap", func(s []ShardResult) []ShardResult { s[1].Offset++; return s }, "gap or overlap"},
		{"size mismatch", func(s []ShardResult) []ShardResult { s[1].Iterations--; return s }, "manifest says"},
		{"nil run", func(s []ShardResult) []ShardResult { s[0].Run = nil; return s }, "holds 0 iterations"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeShards(tc.mutate(good()))
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Errorf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

func TestJobSpecValidation(t *testing.T) {
	base := JobSpec{Params: fastParams(), Seed: 1, Iterations: 100}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	noStop := base
	noStop.Iterations = 0
	if noStop.Validate() == nil {
		t.Error("spec without a stopping rule accepted")
	}

	badParams := base
	badParams.Params.GroupSize = 1
	if badParams.Validate() == nil {
		t.Error("invalid model params accepted")
	}

	badShard := base
	badShard.Shard = &Shard{Index: 3, Count: 3}
	if badShard.Validate() == nil {
		t.Error("out-of-range shard index accepted")
	}

	adaptiveShard := base
	adaptiveShard.Shard = &Shard{Index: 0, Count: 2}
	adaptiveShard.TargetRelErr = 0.1
	if adaptiveShard.Validate() == nil {
		t.Error("adaptive sharded job accepted (shard sizes would be data-dependent)")
	}

	emptyShard := base
	emptyShard.Iterations = 2
	emptyShard.Shard = &Shard{Index: 1, Count: 5}
	if emptyShard.Validate() == nil {
		t.Error("empty shard slice accepted")
	}
}

// TestCacheKeyIdentity pins what does and does not participate in the
// result-cache identity.
func TestCacheKeyIdentity(t *testing.T) {
	base := JobSpec{Params: fastParams(), Seed: 1, Iterations: 1000}
	key := func(js JobSpec) string {
		t.Helper()
		k, err := js.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	same := base
	same.Priority = 9 // scheduling hint, not result identity
	if key(same) != key(base) {
		t.Error("priority changed the cache key")
	}
	batched := base
	batched.BatchSize = 77 // fixed-size results are batch-invariant
	if key(batched) != key(base) {
		t.Error("batch size changed a fixed-size job's cache key")
	}

	adaptive := base
	adaptive.TargetRelErr = 0.1
	adaptiveBatched := adaptive
	adaptiveBatched.BatchSize = 77 // adaptive stops at batch boundaries
	if key(adaptiveBatched) == key(adaptive) {
		t.Error("batch size did not change an adaptive job's cache key")
	}

	for name, js := range map[string]JobSpec{
		"seed":       {Params: fastParams(), Seed: 2, Iterations: 1000},
		"iterations": {Params: fastParams(), Seed: 1, Iterations: 2000},
		"shard":      {Params: fastParams(), Seed: 1, Iterations: 1000, Shard: &Shard{Index: 0, Count: 2}},
	} {
		if key(js) == key(base) {
			t.Errorf("%s change did not change the cache key", name)
		}
	}
}
