package service

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"raidrel/internal/campaign"
)

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// longSpec is a job big enough to still be running when the test acts on
// it, small enough to finish within the test timeout if a cancel is missed.
func longSpec(seed uint64) JobSpec {
	return JobSpec{Params: fastParams(), Seed: seed, Iterations: 2_000_000, BatchSize: 500}
}

func TestSubmitCompleteAndCacheHit(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, Workers: 2})
	defer s.Drain(context.Background())

	spec := JobSpec{Params: fastParams(), Seed: 7, Iterations: 2000}
	j, reused, err := s.Submit(spec)
	if err != nil || reused {
		t.Fatalf("Submit: reused=%v err=%v", reused, err)
	}
	waitDone(t, j)
	if st := j.State(); st != JobDone {
		t.Fatalf("state = %s, want %s", st, JobDone)
	}
	res, err := j.Result()
	if err != nil || res == nil {
		t.Fatalf("Result: %v, %v", res, err)
	}
	if res.Iterations != 2000 {
		t.Fatalf("Iterations = %d, want 2000", res.Iterations)
	}
	if got := s.Metrics().IterationsSimulated; got != 2000 {
		t.Fatalf("IterationsSimulated = %d, want 2000", got)
	}

	// The acceptance check: an identical resubmission is served from the
	// cache — same job, zero additional simulation.
	j2, reused, err := s.Submit(spec)
	if err != nil || !reused || j2 != j {
		t.Fatalf("resubmit: job=%v reused=%v err=%v", j2, reused, err)
	}
	m := s.Metrics()
	if m.IterationsSimulated != 2000 {
		t.Fatalf("cache hit re-simulated: IterationsSimulated = %d", m.IterationsSimulated)
	}
	if m.CacheHits != 1 || m.Submitted != 1 {
		t.Fatalf("CacheHits=%d Submitted=%d, want 1, 1", m.CacheHits, m.Submitted)
	}

	// A different seed is a different campaign, not a hit.
	j3, reused, err := s.Submit(JobSpec{Params: fastParams(), Seed: 8, Iterations: 2000})
	if err != nil || reused || j3 == j {
		t.Fatalf("different seed reused the cached job")
	}
	waitDone(t, j3)
}

func TestSubmitInvalidSpec(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	defer s.Drain(context.Background())
	if _, _, err := s.Submit(JobSpec{Params: fastParams()}); err == nil {
		t.Fatal("spec without a stopping rule accepted")
	}
}

func TestSingleFlightCoalesce(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, Workers: 2})
	defer s.Drain(context.Background())

	spec := longSpec(11)
	j1, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j2, reused, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reused || j2 != j1 {
		t.Fatalf("identical in-flight spec was not coalesced (reused=%v)", reused)
	}
	if m := s.Metrics(); m.Coalesced != 1 || m.Submitted != 1 {
		t.Fatalf("Coalesced=%d Submitted=%d, want 1, 1", m.Coalesced, m.Submitted)
	}
	if err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
}

func TestConcurrentCampaigns(t *testing.T) {
	s := New(Options{MaxConcurrent: 2, Workers: 1})
	defer s.Drain(context.Background())

	a, _, err := s.Submit(longSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Submit(longSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "two campaigns running", func() bool { return s.Metrics().Running == 2 })

	for _, j := range []*Job{a, b} {
		if err := s.Cancel(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	waitDone(t, a)
	waitDone(t, b)
}

func TestPriorityOrdering(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, Workers: 2})
	defer s.Drain(context.Background())

	blocker, _, err := s.Submit(longSpec(41))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "blocker running", func() bool { return blocker.State() == JobRunning })

	low, _, err := s.Submit(JobSpec{Params: fastParams(), Seed: 42, Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	high, _, err := s.Submit(JobSpec{Params: fastParams(), Seed: 43, Iterations: 200, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, low)
	waitDone(t, high)

	started := func(j *Job) time.Time {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.started
	}
	if !started(high).Before(started(low)) {
		t.Fatalf("priority 5 job started at %v, after priority 0 job at %v",
			started(high), started(low))
	}
}

func TestCancelLifecycle(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, Workers: 2})
	defer s.Drain(context.Background())

	running, _, err := s.Submit(longSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool { return running.State() == JobRunning })

	queued, _, err := s.Submit(longSpec(52))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != JobCanceled {
		t.Fatalf("queued job state = %s after cancel, want %s", st, JobCanceled)
	}

	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, running)
	if st := running.State(); st != JobCanceled {
		t.Fatalf("running job state = %s after cancel, want %s", st, JobCanceled)
	}
	// A canceled running job keeps its partial result for inspection.
	if res, _ := running.Result(); res == nil || res.Reason != campaign.StopCancelled {
		t.Fatalf("canceled job result = %+v, want a partial StopCancelled result", res)
	}
	if err := s.Cancel(running.ID); err == nil {
		t.Fatal("cancel of a terminal job succeeded")
	}
	if _, ok := s.Job("j999999"); ok {
		t.Fatal("lookup of unknown job succeeded")
	}
	if err := s.Cancel("j999999"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
}

// TestDrainCheckpointsAndResume is the SIGTERM acceptance path: a drain
// stops the in-flight campaign at a batch boundary with its checkpoint
// current, and a fresh server sharing the checkpoint directory finishes
// the campaign from there — with the two processes together simulating
// exactly the campaign's iteration count, and the final result identical
// to an uninterrupted run.
func TestDrainCheckpointsAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Params: fastParams(), Seed: 61, Iterations: 200_000, BatchSize: 500}

	s1 := New(Options{MaxConcurrent: 1, Workers: 2, CheckpointDir: dir})
	j1, _, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for at least one completed batch so there is work to lose.
	ch := j1.Subscribe()
	select {
	case <-ch:
	case <-time.After(30 * time.Second):
		t.Fatal("no progress before drain")
	}
	j1.Unsubscribe(ch)

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := j1.State(); st != JobCanceled {
		t.Fatalf("drained job state = %s, want %s", st, JobCanceled)
	}
	res1, _ := j1.Result()
	if res1 == nil || res1.Iterations <= 0 || res1.Iterations >= spec.Iterations {
		t.Fatalf("drained job completed %v iterations, want partial progress", res1)
	}
	ckpt := filepath.Join(dir, checkpointName(j1.CacheKey))
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
	if _, _, err := s1.Submit(spec); err == nil {
		t.Fatal("submit accepted while draining")
	}
	if !s1.Metrics().Draining {
		t.Fatal("metrics do not report draining")
	}

	// "Restart": a new server over the same checkpoint directory resumes
	// the resubmitted spec instead of starting over.
	s2 := New(Options{MaxConcurrent: 1, Workers: 2, CheckpointDir: dir})
	defer s2.Drain(context.Background())
	j2, reused, err := s2.Submit(spec)
	if err != nil || reused {
		t.Fatalf("resubmit after restart: reused=%v err=%v", reused, err)
	}
	waitDone(t, j2)
	res2, err := j2.Result()
	if err != nil || res2 == nil {
		t.Fatalf("resumed job failed: %v", err)
	}
	if res2.ResumedFrom != res1.Iterations {
		t.Fatalf("resumed from %d, want the drained job's %d", res2.ResumedFrom, res1.Iterations)
	}
	if res2.Iterations != spec.Iterations {
		t.Fatalf("resumed job completed %d iterations, want %d", res2.Iterations, spec.Iterations)
	}
	// No iteration simulated twice, none lost.
	total := s1.Metrics().IterationsSimulated + s2.Metrics().IterationsSimulated
	if total != uint64(spec.Iterations) {
		t.Fatalf("the two processes simulated %d iterations together, want exactly %d", total, spec.Iterations)
	}

	// And the stitched-together campaign is the uninterrupted campaign.
	cspec, err := spec.campaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), cspec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Run.Events, want.Run.Events) || res2.GroupsWithDDF != want.GroupsWithDDF {
		t.Fatal("resumed result differs from an uninterrupted run")
	}
}

// TestServerShardMerge covers the scale-out path end to end at the Server
// level: shard jobs run concurrently, MergeJobs reproduces the unsharded
// campaign bit-exactly, and the merged result is cached under the
// unsharded spec so submitting the whole campaign afterwards is a cache
// hit served without simulating.
func TestServerShardMerge(t *testing.T) {
	s := New(Options{MaxConcurrent: 3, Workers: 1})
	defer s.Drain(context.Background())

	base := JobSpec{Params: fastParams(), Seed: 71, Iterations: 3000}
	const k = 3
	ids := make([]string, 0, k)
	jobs := make([]*Job, 0, k)
	for i := 0; i < k; i++ {
		js := base
		js.Shard = &Shard{Index: i, Count: k}
		j, reused, err := s.Submit(js)
		if err != nil || reused {
			t.Fatalf("shard %d: reused=%v err=%v", i, reused, err)
		}
		ids = append(ids, j.ID)
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitDone(t, j)
		if st := j.State(); st != JobDone {
			t.Fatalf("shard job %s ended %s", j.ID, st)
		}
	}
	if got := s.Metrics().IterationsSimulated; got != uint64(base.Iterations) {
		t.Fatalf("shards simulated %d iterations, want %d", got, base.Iterations)
	}

	merged, err := s.MergeJobs(ids)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Merged || merged.State() != JobDone {
		t.Fatalf("merged job: Merged=%v state=%s", merged.Merged, merged.State())
	}
	mres, _ := merged.Result()

	cspec, err := base.campaignSpec()
	if err != nil {
		t.Fatal(err)
	}
	want, err := campaign.Run(context.Background(), cspec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mres.Run.Events, want.Run.Events) {
		t.Fatal("merged shard events differ from the unsharded run")
	}
	if mres.GroupsWithDDF != want.GroupsWithDDF || mres.CI != want.CI || mres.RelErr != want.RelErr {
		t.Fatalf("merged summary %+v differs from unsharded %+v", mres, want)
	}

	// Merging the same shards again returns the same cached job.
	again, err := s.MergeJobs(ids)
	if err != nil || again != merged {
		t.Fatalf("repeat merge: job=%v err=%v", again, err)
	}

	// Submitting the whole campaign is now a cache hit on the merged job.
	whole, reused, err := s.Submit(base)
	if err != nil || !reused || whole != merged {
		t.Fatalf("unsharded submit after merge: reused=%v job=%v err=%v", reused, whole, err)
	}
	if got := s.Metrics().IterationsSimulated; got != uint64(base.Iterations) {
		t.Fatalf("cache hit after merge re-simulated: %d iterations", got)
	}

	// Merge rejects non-shard and unfinished inputs.
	if _, err := s.MergeJobs([]string{whole.ID}); err == nil {
		t.Fatal("merge of a non-shard job succeeded")
	}
	if _, err := s.MergeJobs(nil); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
	if _, err := s.MergeJobs([]string{"j999999"}); err == nil {
		t.Fatal("merge of an unknown job succeeded")
	}
	if _, err := s.MergeJobs(ids[:k-1]); err == nil {
		t.Fatal("merge of an incomplete shard set succeeded")
	}
}
