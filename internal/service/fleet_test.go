package service

import (
	"net/http"
	"testing"

	"raidrel/internal/core"
	"raidrel/internal/sim"
)

// fleetParams couples fastParams groups into 8-group fleets on a single
// repair crew, with a slow enough restore that the crew contends.
func fleetParams() core.Params {
	p := fastParams()
	p.TTR = core.WeibullSpec{Scale: 100, Shape: 1}
	p.Fleet = &sim.FleetOptions{Groups: 8, MaxConcurrentRebuilds: 1}
	return p
}

// A fleet job survives the full wire round trip: the params decode, the
// campaign runs the fleet engine, and the result document carries the
// heal-backlog tally.
func TestHTTPFleetJob(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 2, Workers: 2})
	spec := JobSpec{Params: fleetParams(), Seed: 7, Iterations: 1600}

	resp := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want %d", resp.StatusCode, http.StatusAccepted)
	}
	var doc jobDoc
	decodeJSON(t, resp, &doc)
	waitHTTPDone(t, ts.URL, doc.ID)

	var res resultDoc
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusOK, &res)
	f := res.Fleet
	if f == nil {
		t.Fatal("fleet job result carries no fleet tally")
	}
	if f.Chronologies != 200 || f.GroupsPer != 8 {
		t.Fatalf("tally shape %+v for 1600 iterations of 8-group fleets", f)
	}
	if f.Failures != f.Rebuilds+f.ActiveAtEnd+f.QueuedAtEnd {
		t.Fatalf("tally conservation violated on the wire: %+v", f)
	}
	if f.Waited == 0 {
		t.Fatal("single-crew fleet accrued no waits; wire test is vacuous")
	}

	// A scalar job of the same params must keep the legacy wire form:
	// no fleet section at all.
	scalar := JobSpec{Params: fastParams(), Seed: 7, Iterations: 200}
	resp = postJSON(t, ts.URL+"/v1/jobs", scalar)
	decodeJSON(t, resp, &doc)
	waitHTTPDone(t, ts.URL, doc.ID)
	var plain resultDoc
	getJSON(t, ts.URL+"/v1/jobs/"+doc.ID+"/result", http.StatusOK, &plain)
	if plain.Fleet != nil {
		t.Fatalf("scalar job result grew a fleet tally: %+v", plain.Fleet)
	}
}

// Fleet membership and its knobs are part of the job identity: same
// params with different fleet coupling must neither share fingerprints
// nor hit each other's cache entries.
func TestFleetJobIdentity(t *testing.T) {
	scalar := JobSpec{Params: fastParams(), Seed: 3, Iterations: 160}
	fleet := JobSpec{Params: fleetParams(), Seed: 3, Iterations: 160}
	fleet.Params.TTR = scalar.Params.TTR // isolate the fleet knob
	fpScalar, err := scalar.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpFleet, err := fleet.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpScalar == fpFleet {
		t.Error("fleet coupling did not change the job fingerprint")
	}
	crews := fleet
	crews.Params.Fleet = &sim.FleetOptions{Groups: 8, MaxConcurrentRebuilds: 2}
	fpCrews, err := crews.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpCrews == fpFleet {
		t.Error("repair-slot change did not change the job fingerprint")
	}
}
