package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"raidrel/internal/campaign"
	"raidrel/internal/sim"
)

// Handler returns raidreld's HTTP/JSON API:
//
//	POST   /v1/jobs            submit a JobSpec; identical specs coalesce
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}        job status + latest progress
//	GET    /v1/jobs/{id}/result final result (events included)
//	GET    /v1/jobs/{id}/stream live progress, one SSE frame per batch
//	DELETE /v1/jobs/{id}        cancel (checkpoint stays current)
//	POST   /v1/merge           merge completed shard jobs exactly
//	GET    /healthz            liveness + drain state
//	GET    /metrics            counter snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/merge", s.handleMerge)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// jobDoc is the wire view of a job's status.
type jobDoc struct {
	ID          string             `json:"id"`
	State       JobState           `json:"state"`
	Fingerprint string             `json:"fingerprint"`
	Priority    int                `json:"priority,omitempty"`
	Shard       *Shard             `json:"shard,omitempty"`
	Merged      bool               `json:"merged,omitempty"`
	Cached      bool               `json:"cached,omitempty"`
	Coalesced   bool               `json:"coalesced,omitempty"`
	SubmittedAt string             `json:"submitted_at,omitempty"`
	StartedAt   string             `json:"started_at,omitempty"`
	FinishedAt  string             `json:"finished_at,omitempty"`
	Progress    *campaign.Snapshot `json:"progress,omitempty"`
	Error       string             `json:"error,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Server) jobDoc(j *Job) jobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := jobDoc{
		ID:          j.ID,
		State:       j.state,
		Fingerprint: j.Fingerprint,
		Priority:    j.Spec.Priority,
		Shard:       j.Spec.Shard,
		Merged:      j.Merged,
		SubmittedAt: stamp(j.submitted),
		StartedAt:   stamp(j.started),
		FinishedAt:  stamp(j.finished),
	}
	if j.hasSnap {
		snap := j.last
		doc.Progress = &snap
	}
	if j.err != nil {
		doc.Error = j.err.Error()
	}
	return doc
}

// eventDoc is one DDF in the result body, in the checkpoint file's flat
// key scheme: group, time, cause, and (when importance sampling) the
// group's log likelihood-ratio weight.
type eventDoc struct {
	Group int     `json:"g"`
	Time  float64 `json:"t"`
	Cause int     `json:"c"`
	LogW  float64 `json:"lw,omitempty"`
}

// resultDoc is the wire view of a finished campaign.
type resultDoc struct {
	ID            string `json:"id"`
	Fingerprint   string `json:"fingerprint"`
	Iterations    int    `json:"iterations"`
	ResumedFrom   int    `json:"resumed_from,omitempty"`
	Batches       int    `json:"batches,omitempty"`
	GroupsWithDDF int    `json:"groups_with_ddf"`
	TotalDDFs     int    `json:"ddfs"`
	OpOpDDFs      int    `json:"ddfs_op_op"`
	LdOpDDFs      int    `json:"ddfs_ld_op"`
	// Unavailability statistics of coupled-topology campaigns: onset
	// events, groups with at least one episode, and the onset rate per
	// 1,000 groups. All omitted for flat campaigns, keeping the legacy
	// wire form byte-identical.
	UnavailEvents     int     `json:"unavail,omitempty"`
	GroupsWithUnavail int     `json:"groups_with_unavail,omitempty"`
	UnavailPer1000    float64 `json:"unavail_per_1000_groups,omitempty"`
	// Fleet carries the heal-backlog tally of fleet campaigns (coupled
	// groups sharing spares and repair bandwidth); omitted for
	// independent-group campaigns, keeping the legacy wire form intact.
	Fleet      *sim.FleetTally `json:"fleet,omitempty"`
	P          float64         `json:"p"`
	CILo       float64         `json:"ci_lo"`
	CIHi       float64         `json:"ci_hi"`
	Confidence float64         `json:"confidence"`
	RelErr     *float64        `json:"rel_err,omitempty"`
	ESS        float64         `json:"ess,omitempty"`
	VRPairs    int             `json:"vr_pairs,omitempty"`
	VRCoeff    float64         `json:"vr_coeff,omitempty"`
	VRFactor   float64         `json:"vr_factor,omitempty"`
	// VRBreakdown attributes vr_factor to the individual techniques;
	// omitted until measurable or when VR is off.
	VRBreakdown *campaign.VRBreakdown `json:"vr_breakdown,omitempty"`
	DDFsPer1000 float64               `json:"ddfs_per_1000_groups"`
	Reason      string                `json:"reason"`
	ElapsedS    float64               `json:"elapsed_s"`
	Events      []eventDoc            `json:"events"`
}

func (s *Server) resultDoc(j *Job, res *campaign.Result) resultDoc {
	doc := resultDoc{
		ID:            j.ID,
		Fingerprint:   j.Fingerprint,
		Iterations:    res.Iterations,
		ResumedFrom:   res.ResumedFrom,
		Batches:       res.Batches,
		GroupsWithDDF: res.GroupsWithDDF,
		Confidence:    res.CI.Level,
		CILo:          res.CI.Lo,
		CIHi:          res.CI.Hi,
		ESS:           res.ESS,
		VRPairs:       res.VRPairs,
		VRCoeff:       res.VRCoeff,
		VRFactor:      res.VRFactor,
		VRBreakdown:   res.VRByVariate,
		Reason:        res.Reason.String(),
		ElapsedS:      res.Elapsed.Seconds(),
	}
	if j.Merged {
		doc.Reason = "merged"
	}
	if res.ESS > 0 || res.VRFactor > 0 {
		// Weighted or variance-reduced estimate: the midpoint of the
		// symmetric normal CI, not the raw event fraction.
		doc.P = (res.CI.Lo + res.CI.Hi) / 2
	} else if res.Iterations > 0 {
		doc.P = float64(res.GroupsWithDDF) / float64(res.Iterations)
	}
	if !math.IsInf(res.RelErr, 1) {
		relErr := res.RelErr
		doc.RelErr = &relErr
	}
	if run := res.Run; run != nil {
		doc.TotalDDFs = run.TotalDDFs
		doc.OpOpDDFs = run.OpOpDDFs
		doc.LdOpDDFs = run.LdOpDDFs
		doc.UnavailEvents = run.UnavailEvents
		doc.GroupsWithUnavail = run.GroupsWithUnavail()
		if run.Fleet != nil {
			fleet := *run.Fleet
			doc.Fleet = &fleet
		}
		if res.Iterations > 0 {
			total, _, _ := run.WeightedCauseTotals()
			doc.DDFsPer1000 = total * 1000 / float64(res.Iterations)
			doc.UnavailPer1000 = run.WeightedUnavailTotal() * 1000 / float64(res.Iterations)
		}
		doc.Events = make([]eventDoc, 0, len(run.Events))
		for _, e := range run.Events {
			doc.Events = append(doc.Events, eventDoc{Group: e.Group, Time: e.Time, Cause: int(e.Cause), LogW: e.LogW})
		}
	}
	return doc
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, reused, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	doc := s.jobDoc(j)
	code := http.StatusAccepted
	if reused {
		if doc.State == JobDone {
			doc.Cached = true
			code = http.StatusOK
		} else {
			doc.Coalesced = true
		}
	}
	writeJSON(w, code, doc)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	docs := make([]jobDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, s.jobDoc(j))
	}
	writeJSON(w, http.StatusOK, docs)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobDoc(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
		return
	}
	res, err := j.Result()
	switch j.State() {
	case JobDone:
		writeJSON(w, http.StatusOK, s.resultDoc(j, res))
	case JobFailed:
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("job %s failed: %v", j.ID, err))
	default:
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s is %s, result not available", j.ID, j.State()))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %s", id))
		return
	}
	if err := s.Cancel(id); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, s.jobDoc(j))
}

// handleStream serves live campaign progress as Server-Sent Events: one
// `data:` frame per batch in the campaign.Snapshot JSON schema (the same
// line format as raidsim -progress=json), then a terminal `event: end`
// frame carrying the job's final state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %s", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := j.Subscribe()
	defer j.Unsubscribe(ch)

	frame := func(snap campaign.Snapshot) bool {
		data, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		return true
	}
	for {
		select {
		case snap := <-ch:
			if !frame(snap) {
				return
			}
		case <-j.Done():
			// Flush any frames published before the job went terminal,
			// then send the end event.
			for {
				select {
				case snap := <-ch:
					if !frame(snap) {
						return
					}
					continue
				default:
				}
				break
			}
			fmt.Fprintf(w, "event: end\ndata: {\"state\":%q}\n\n", j.State())
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// mergeRequest is the body of POST /v1/merge.
type mergeRequest struct {
	// Jobs lists the completed shard jobs to merge, in any order.
	Jobs []string `json:"jobs"`
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad merge request: %w", err))
		return
	}
	j, err := s.MergeJobs(req.Jobs)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, _ := j.Result()
	writeJSON(w, http.StatusOK, s.resultDoc(j, res))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	status := "ok"
	if m.Draining {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"draining": m.Draining,
		"running":  m.Running,
		"queued":   m.QueueDepth,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
