// Package service is raidreld's scale-out layer: a job model, a priority
// queue, a concurrent-campaign scheduler over a shared worker pool, a
// fingerprint-keyed result cache with single-flight dedup, and exact shard
// merging. The paper's DDF estimates are expensive Monte Carlo campaigns
// over a small, heavily repeated space of RAID configurations — exactly
// the shape that should be simulated once and then served from memory: a
// million users asking about the same few thousand configs hit memoized
// confidence intervals, not the engines.
//
// Everything leans on guarantees the lower layers already provide:
// campaigns are bit-exact for any worker count and batch size, stream
// offsets compose (`sim.RunSpec.Offset`), checkpoints survive kills, and
// the Progress sink is pluggable — so the service adds coordination, not
// new numerics.
package service

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"raidrel/internal/campaign"
	"raidrel/internal/core"
)

// Shard designates one slice of a sharded campaign: shard Index of Count
// runs iteration range [Index·N/Count, (Index+1)·N/Count) of an
// N-iteration campaign via the campaign stream offset. Shards are fixed
// size by construction — adaptive stopping would make the slice boundaries
// depend on observed data, and exact merging requires the union of shard
// ranges to be the iteration set an unsharded run would simulate.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Range returns the shard's [start, end) iteration range of an
// n-iteration campaign.
func (s Shard) Range(n int) (start, end int) {
	return s.Index * n / s.Count, (s.Index + 1) * n / s.Count
}

// JobSpec is the wire form of a campaign request. Params is the full model
// parameterization (the paper's Table 2 plus structural knobs); the rest
// steers the campaign itself. Exactly the knobs that change the simulated
// result participate in the cache identity — see CacheKey.
type JobSpec struct {
	// Params parameterizes the reliability model.
	Params core.Params `json:"params"`
	// Seed is the campaign RNG seed.
	Seed uint64 `json:"seed"`
	// Iterations is the fixed iteration budget; for sharded jobs it is the
	// total campaign size N that the shards slice up.
	Iterations int `json:"iterations,omitempty"`
	// TargetRelErr stops the campaign adaptively at this CI relative
	// half-width (0 disables; incompatible with sharding).
	TargetRelErr float64 `json:"target_rel_err,omitempty"`
	// Confidence is the CI level (0 = 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// BatchSize is iterations per campaign batch (0 = default). It only
	// affects results for adaptive jobs, where stopping is evaluated at
	// batch boundaries.
	BatchSize int `json:"batch,omitempty"`
	// MaxDurationS is a wall-clock budget in seconds (0 = unlimited;
	// incompatible with sharding — shard sizes must be deterministic).
	MaxDurationS float64 `json:"max_duration_s,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a level.
	Priority int `json:"priority,omitempty"`
	// Shard, when set, makes this job one fixed-size slice of a sharded
	// campaign.
	Shard *Shard `json:"shard,omitempty"`
}

// campaignSpec lowers the job to a runnable campaign spec. The returned
// spec has no checkpoint, progress, or worker settings — the scheduler
// fills those in.
func (js JobSpec) campaignSpec() (campaign.Spec, error) {
	m, err := core.New(js.Params)
	if err != nil {
		return campaign.Spec{}, err
	}
	spec := campaign.Spec{
		Config:        m.SimConfig(),
		Seed:          js.Seed,
		BatchSize:     js.BatchSize,
		TargetRelErr:  js.TargetRelErr,
		Confidence:    js.Confidence,
		MaxIterations: js.Iterations,
		MaxDuration:   time.Duration(js.MaxDurationS * float64(time.Second)),
		Fleet:         js.Params.Fleet,
	}
	if js.Shard != nil {
		start, end := js.Shard.Range(js.Iterations)
		spec.Offset = start
		spec.MaxIterations = end - start
	}
	return spec, nil
}

// Validate rejects specs that could not run or could not merge.
func (js JobSpec) Validate() error {
	if s := js.Shard; s != nil {
		if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
			return fmt.Errorf("service: shard %d/%d invalid", s.Index, s.Count)
		}
		if js.Iterations <= 0 {
			return fmt.Errorf("service: sharded job needs a positive total iteration count")
		}
		if js.TargetRelErr != 0 || js.MaxDurationS != 0 {
			return fmt.Errorf("service: sharded jobs must be fixed size (no target_rel_err or max_duration_s): shard boundaries depend on them")
		}
		if start, end := s.Range(js.Iterations); end <= start {
			return fmt.Errorf("service: shard %d/%d of %d iterations is empty", s.Index, s.Count, js.Iterations)
		}
	}
	spec, err := js.campaignSpec()
	if err != nil {
		return err
	}
	return spec.Validate()
}

// Fingerprint is the campaign config identity — the same digest the
// checkpoint layer embeds — including the shard offset for shard jobs.
func (js JobSpec) Fingerprint() (string, error) {
	spec, err := js.campaignSpec()
	if err != nil {
		return "", err
	}
	return spec.Fingerprint(), nil
}

// CacheKey is the result-cache identity: the config fingerprint plus every
// knob that changes what the campaign computes. Fixed-size jobs are
// bit-exact for any batch size and worker count, so neither participates;
// adaptive jobs evaluate their stopping rule at batch boundaries, so for
// them the batch size does. Two requests with equal keys receive the same
// answer, simulated at most once.
func (js JobSpec) CacheKey() (string, error) {
	fp, err := js.Fingerprint()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s|iters=%d;target=%g;conf=%g;maxdur=%g",
		fp, js.Iterations, js.TargetRelErr, js.Confidence, js.MaxDurationS)
	if js.TargetRelErr != 0 {
		fmt.Fprintf(&b, ";batch=%d", js.BatchSize)
	}
	if js.Shard != nil {
		fmt.Fprintf(&b, "|shard=%d/%d", js.Shard.Index, js.Shard.Count)
	}
	return b.String(), nil
}

// unsharded returns the job the whole campaign would be: the same spec
// with the shard designation removed. Merged shard results are cached
// under this spec's key, so a later unsharded submission of the same
// campaign is a cache hit.
func (js JobSpec) unsharded() JobSpec {
	js.Shard = nil
	return js
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued: accepted, waiting for a scheduler slot.
	JobQueued JobState = "queued"
	// JobRunning: a scheduler slot is simulating the campaign.
	JobRunning JobState = "running"
	// JobDone: finished; the result is cached and served from memory.
	JobDone JobState = "done"
	// JobFailed: the campaign returned an error.
	JobFailed JobState = "failed"
	// JobCanceled: canceled by request or server drain. A partial result
	// and a current checkpoint may exist; resubmitting the same spec
	// resumes from the checkpoint.
	JobCanceled JobState = "canceled"
)

// Job is one tracked campaign. The scheduler owns the lifecycle; HTTP
// handlers and progress subscribers only read through the accessor
// methods.
type Job struct {
	// ID is the server-assigned handle.
	ID string
	// Spec is the submitted request.
	Spec JobSpec
	// Fingerprint is the campaign config identity (shard-aware).
	Fingerprint string
	// CacheKey is the result-cache identity.
	CacheKey string
	// Merged marks a job materialized by a shard merge rather than
	// simulated.
	Merged bool

	seq int // submission order, the FIFO tiebreak within a priority level

	mu        sync.Mutex
	state     JobState
	last      campaign.Snapshot
	hasSnap   bool
	subs      map[chan campaign.Snapshot]struct{}
	result    *campaign.Result
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    func()

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// State returns the lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the campaign result and error; the result is non-nil for
// done jobs and for canceled jobs that completed at least one batch.
func (j *Job) Result() (*campaign.Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Progress returns the latest telemetry snapshot, if any arrived yet.
func (j *Job) Progress() (campaign.Snapshot, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.last, j.hasSnap
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// publish records a telemetry snapshot and fans it out to subscribers.
// Slow subscribers lose intermediate frames (their channel buffer fills;
// telemetry must never stall the campaign) but always observe the latest
// state on their next read and the terminal state via Done.
func (j *Job) publish(s campaign.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.last = s
	j.hasSnap = true
	for ch := range j.subs {
		select {
		case ch <- s:
		default:
		}
	}
}

// Subscribe registers a progress listener and replays the latest snapshot
// so late subscribers start current. The caller must Unsubscribe.
func (j *Job) Subscribe() <-chan campaign.Snapshot {
	ch := make(chan campaign.Snapshot, 16)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.subs == nil {
		j.subs = make(map[chan campaign.Snapshot]struct{})
	}
	j.subs[ch] = struct{}{}
	if j.hasSnap {
		ch <- j.last
	}
	return ch
}

// Unsubscribe removes a listener registered by Subscribe.
func (j *Job) Unsubscribe(ch <-chan campaign.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for c := range j.subs {
		if c == ch {
			delete(j.subs, c)
			close(c)
			return
		}
	}
}

// finish moves the job to a terminal state; later calls are no-ops.
// Caller must not hold j.mu.
func (j *Job) finish(state JobState, res *campaign.Result, err error, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return // already terminal
	default:
	}
	j.state = state
	if res != nil {
		j.result = res
	}
	j.err = err
	j.finished = now
	close(j.done)
}
