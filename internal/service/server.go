package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"raidrel/internal/campaign"
)

// Options configures a Server.
type Options struct {
	// MaxConcurrent is the number of campaigns simulated at once — the
	// scheduler's slot count (0 = DefaultMaxConcurrent). Each running
	// campaign additionally parallelizes its batches over Workers.
	MaxConcurrent int
	// Workers is the per-campaign sim parallelism (0 = GOMAXPROCS). With
	// several concurrent campaigns, bound it so campaigns share the
	// machine instead of each grabbing every core.
	Workers int
	// CheckpointDir, when non-empty, gives every job a checkpoint file
	// named by its cache key. In-flight campaigns checkpoint after each
	// batch, a drain leaves them resumable, and a restarted server resumes
	// a resubmitted spec from where the previous process stopped.
	CheckpointDir string

	// now is a test hook for the clock.
	now func() time.Time
}

// DefaultMaxConcurrent is the scheduler slot count when Options leaves it 0.
const DefaultMaxConcurrent = 4

// ErrDraining is returned by Submit once a drain has started.
var ErrDraining = errors.New("service: server is draining")

// Metrics is a point-in-time counter snapshot, the body of GET /metrics.
type Metrics struct {
	// Submitted counts accepted jobs (cache hits and coalesced submissions
	// excluded — those attach to an existing job).
	Submitted uint64 `json:"jobs_submitted"`
	// Completed, Failed, Canceled count terminal states of executed jobs.
	Completed uint64 `json:"jobs_completed"`
	Failed    uint64 `json:"jobs_failed"`
	Canceled  uint64 `json:"jobs_canceled"`
	// CacheHits counts submissions served from a completed job's memoized
	// result; Coalesced counts submissions attached to an identical job
	// still queued or running (single-flight dedup).
	CacheHits uint64 `json:"cache_hits"`
	Coalesced uint64 `json:"coalesced"`
	// Merges counts shard-merge operations.
	Merges uint64 `json:"merges"`
	// IterationsSimulated is the total group chronologies actually
	// simulated by this process — the denominator of the cache's value: a
	// cache hit leaves it unchanged.
	IterationsSimulated uint64 `json:"iterations_simulated"`
	// VRIterations is the subset of IterationsSimulated run under the
	// variance-reduction stack (block engine with antithetic, stratified,
	// or control-variate estimation).
	VRIterations uint64 `json:"vr_iterations,omitempty"`
	// VRBreakdownLast is the per-variate factor attribution of the most
	// recently finished variance-reduced campaign — a liveness gauge for
	// dashboards watching whether each technique still earns its keep.
	// Omitted until a VR campaign completes with a measurable factor.
	VRBreakdownLast *campaign.VRBreakdown `json:"vr_breakdown_last,omitempty"`
	// QueueDepth and Running describe the scheduler's current load.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
	// Jobs is the number of tracked jobs.
	Jobs int `json:"jobs"`
	// Draining reports whether a graceful shutdown is in progress.
	Draining bool `json:"draining"`
}

// Server schedules campaign jobs over a bounded pool of concurrent
// campaign slots, memoizes results by cache key, and drains gracefully:
// on Drain every in-flight campaign is cancelled at its next batch
// boundary with its checkpoint current, so nothing simulated is lost.
type Server struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	queue  *jobQueue
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for listings
	cache    map[string]*Job
	nextSeq  int
	draining bool
	vrLast   *campaign.VRBreakdown // latest completed VR campaign's attribution

	running                                                         atomic.Int64
	submitted, completed, failed, canceled, hits, coalesced, merges atomic.Uint64
	iterations, vrIterations                                        atomic.Uint64
}

// New starts a Server with MaxConcurrent scheduler workers.
func New(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = DefaultMaxConcurrent
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		queue:  newJobQueue(),
		jobs:   make(map[string]*Job),
		cache:  make(map[string]*Job),
	}
	for i := 0; i < opts.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates the spec and returns its job. If an identical spec
// (equal cache key) is already tracked and has not failed or been
// canceled, that job is returned instead of enqueueing a duplicate:
// completed jobs serve their memoized result (reused=true, a cache hit),
// and queued or running jobs coalesce the new submission onto the
// in-flight simulation (reused=true, single-flight).
func (s *Server) Submit(spec JobSpec) (job *Job, reused bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	fp, err := spec.Fingerprint()
	if err != nil {
		return nil, false, err
	}
	key, err := spec.CacheKey()
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if j, ok := s.cache[key]; ok {
		switch j.State() {
		case JobDone:
			s.hits.Add(1)
			return j, true, nil
		case JobQueued, JobRunning:
			s.coalesced.Add(1)
			return j, true, nil
		}
		// Failed or canceled: fall through and replace the entry. A
		// canceled job's checkpoint (if any) makes the rerun a resume.
	}

	s.nextSeq++
	j := &Job{
		ID:          fmt.Sprintf("j%06d", s.nextSeq),
		Spec:        spec,
		Fingerprint: fp,
		CacheKey:    key,
		seq:         s.nextSeq,
		state:       JobQueued,
		submitted:   s.opts.now(),
		done:        make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.cache[key] = j
	s.submitted.Add(1)
	s.queue.Push(j)
	return j, false, nil
}

// Job looks up a tracked job.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}

// Cancel stops a job: queued jobs are canceled immediately, running jobs
// at their next batch boundary (with the checkpoint current). Terminal
// jobs return an error.
func (s *Server) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("service: unknown job %s", id)
	}
	j.mu.Lock()
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	switch state {
	case JobQueued:
		j.finish(JobCanceled, nil, nil, s.opts.now())
		s.canceled.Add(1)
		s.evict(j)
		return nil
	case JobRunning:
		// The campaign observes the context at its next batch boundary;
		// the worker does the terminal bookkeeping.
		cancel()
		return nil
	default:
		return fmt.Errorf("service: job %s already %s", id, state)
	}
}

// Drain initiates graceful shutdown: no new submissions, queued jobs are
// canceled, and every running campaign is cancelled — each stops at its
// next batch boundary having just written its checkpoint, so all
// in-flight work is resumable by a later process. Drain blocks until the
// workers have quiesced or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	s.queue.Close()
	// Every job context derives from s.ctx, so one cancel reaches all
	// running campaigns — including any that slip into Running while the
	// drain is starting.
	s.cancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Metrics snapshots the counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	jobs, draining, vrLast := len(s.jobs), s.draining, s.vrLast
	s.mu.Unlock()
	return Metrics{
		VRBreakdownLast:     vrLast,
		Submitted:           s.submitted.Load(),
		Completed:           s.completed.Load(),
		Failed:              s.failed.Load(),
		Canceled:            s.canceled.Load(),
		CacheHits:           s.hits.Load(),
		Coalesced:           s.coalesced.Load(),
		Merges:              s.merges.Load(),
		IterationsSimulated: s.iterations.Load(),
		VRIterations:        s.vrIterations.Load(),
		QueueDepth:          s.queue.Len(),
		Running:             int(s.running.Load()),
		Jobs:                jobs,
		Draining:            draining,
	}
}

// worker is one scheduler slot: it pops jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.queue.Pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one campaign end to end.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	j.mu.Lock()
	if j.state != JobQueued {
		// Canceled while queued.
		j.mu.Unlock()
		return
	}
	if draining {
		// Popped after a drain started: never simulated, just canceled.
		j.mu.Unlock()
		j.finish(JobCanceled, nil, nil, s.opts.now())
		s.canceled.Add(1)
		s.evict(j)
		return
	}
	j.state = JobRunning
	j.started = s.opts.now()
	j.cancel = cancel
	j.mu.Unlock()

	spec, err := j.Spec.campaignSpec()
	if err != nil {
		// Unreachable after Submit validation, but never let a bad spec
		// take down a worker.
		j.finish(JobFailed, nil, err, s.opts.now())
		s.failed.Add(1)
		s.evict(j)
		return
	}
	spec.Workers = s.opts.Workers
	spec.Progress = campaign.ProgressFunc(j.publish)
	if dir := s.opts.CheckpointDir; dir != "" {
		path := filepath.Join(dir, checkpointName(j.CacheKey))
		spec.Checkpoint = path
		if _, err := os.Stat(path); err == nil {
			// A previous process (or a canceled run) left a checkpoint for
			// this exact spec: continue it instead of starting over.
			spec.Resume = path
		}
	}

	s.running.Add(1)
	res, err := campaign.Run(ctx, spec)
	s.running.Add(-1)
	now := s.opts.now()
	count := func() {
		n := uint64(res.Iterations - res.ResumedFrom)
		s.iterations.Add(n)
		if spec.Config.VR.Enabled() {
			s.vrIterations.Add(n)
		}
		if res.VRByVariate != nil {
			s.mu.Lock()
			s.vrLast = res.VRByVariate
			s.mu.Unlock()
		}
	}
	switch {
	case err != nil:
		j.finish(JobFailed, nil, err, now)
		s.failed.Add(1)
		s.evict(j)
	case res.Reason == campaign.StopCancelled:
		// Canceled or drained: keep the partial result for inspection,
		// count the work actually done, and evict so a resubmission
		// re-enqueues (resuming from the checkpoint just written).
		count()
		j.finish(JobCanceled, res, nil, now)
		s.canceled.Add(1)
		s.evict(j)
	default:
		count()
		j.finish(JobDone, res, nil, now)
		s.completed.Add(1)
	}
}

// evict removes a job's cache entry if it still owns it.
func (s *Server) evict(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache[j.CacheKey] == j {
		delete(s.cache, j.CacheKey)
	}
}

// checkpointName maps a cache key to a filesystem-safe checkpoint file.
func checkpointName(cacheKey string) string {
	h := fnv.New64a()
	h.Write([]byte(cacheKey))
	return fmt.Sprintf("%016x.ckpt.json", h.Sum64())
}
