package field

import (
	"math"
	"testing"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

func TestPopulationValidate(t *testing.T) {
	good := HDD1()
	if err := good.Validate(); err != nil {
		t.Fatalf("catalog population invalid: %v", err)
	}
	cases := []Population{
		{Name: "no life", Units: 10, ObservationHours: 100},
		{Name: "one unit", Life: dist.MustExponential(1), Units: 1, ObservationHours: 100},
		{Name: "no window", Life: dist.MustExponential(1), Units: 10},
		{Name: "inf window", Life: dist.MustExponential(1), Units: 10, ObservationHours: math.Inf(1)},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s accepted", p.Name)
		}
	}
}

func TestObserveCensorsAtWindow(t *testing.T) {
	p := Population{
		Name:             "test",
		Life:             dist.MustExponential(1.0 / 1000),
		Units:            5000,
		ObservationHours: 693, // median of Exp(1/1000) is ~693: ~half censored
	}
	obs, err := p.Observe(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5000 {
		t.Fatalf("%d observations", len(obs))
	}
	censored := 0
	for _, o := range obs {
		if o.Censored {
			censored++
			if o.Time != 693 {
				t.Fatalf("censored at %v, want window 693", o.Time)
			}
		} else if o.Time > 693 {
			t.Fatalf("failure at %v beyond window", o.Time)
		}
	}
	frac := float64(censored) / 5000
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("censored fraction %v, want ~0.5", frac)
	}
}

func TestObserveInvalidPopulation(t *testing.T) {
	p := Population{Name: "bad", Units: 0}
	if _, err := p.Observe(rng.New(1)); err == nil {
		t.Error("invalid population observed")
	}
}

// The three Fig. 1 archetypes must produce their signature hazard shapes.
func TestArchetypeShapes(t *testing.T) {
	// HDD1: decreasing hazard throughout the window.
	h1 := HDD1().Life
	if dist.Hazard(h1, 20000) >= dist.Hazard(h1, 1000) {
		t.Error("HDD1 hazard should decrease")
	}
	// HDD2: hazard turns up late (wear-out overtakes).
	h2 := HDD2().Life
	if dist.Hazard(h2, 25000) <= dist.Hazard(h2, 5000) {
		t.Error("HDD2 hazard should turn up late")
	}
	// HDD3: non-monotone — falls early (mixture burns off), rises late
	// (competing wear-out).
	h3 := HDD3().Life
	early := dist.Hazard(h3, 500)
	mid := dist.Hazard(h3, 10000)
	late := dist.Hazard(h3, 30000)
	if !(mid < early) {
		t.Errorf("HDD3 hazard should fall early: %v !< %v", mid, early)
	}
	if !(late > mid) {
		t.Errorf("HDD3 hazard should rise late: %v !> %v", late, mid)
	}
}

func TestPaperVintages(t *testing.T) {
	vs := PaperVintages()
	if len(vs) != 3 {
		t.Fatalf("%d vintages", len(vs))
	}
	// β strictly increasing, η strictly decreasing (the paper's Fig. 2).
	for i := 1; i < 3; i++ {
		if vs[i].Shape <= vs[i-1].Shape {
			t.Error("vintage shapes not increasing")
		}
		if vs[i].Scale >= vs[i-1].Scale {
			t.Error("vintage scales not decreasing")
		}
	}
	// Units match the paper's F+S counts.
	if vs[0].Units != 10631 || vs[1].Units != 24056 || vs[2].Units != 23834 {
		t.Errorf("units = %d/%d/%d", vs[0].Units, vs[1].Units, vs[2].Units)
	}
	// Populations over a 10,000-hour window produce failure counts in the
	// ballpark of the paper's (198/992/921).
	r := rng.New(9)
	wantF := []int{198, 992, 921}
	for i, v := range vs {
		obs, err := v.Population(10000).Observe(r)
		if err != nil {
			t.Fatal(err)
		}
		failures := 0
		for _, o := range obs {
			if !o.Censored {
				failures++
			}
		}
		lo, hi := wantF[i]*6/10, wantF[i]*15/10
		if failures < lo || failures > hi {
			t.Errorf("vintage %d: %d failures, paper had %d", i+1, failures, wantF[i])
		}
	}
}
