// Package field generates synthetic drive field-return populations with
// the structures the paper's Figs. 1-2 exhibit: pure Weibull populations,
// mechanism changes (competing risks), sub-population mixtures, and
// manufacturing vintages with different (β, η), all observed under
// right-censoring like real field windows. The paper's actual datasets are
// proprietary NetApp returns; these generators reproduce their *shapes* so
// the plotting and fitting pipeline can be exercised end to end (see
// DESIGN.md, substitutions).
package field

import (
	"fmt"
	"math"

	"raidrel/internal/dist"
	"raidrel/internal/fit"
	"raidrel/internal/rng"
)

// Population describes a synthetic drive population on test.
type Population struct {
	Name string
	// Life is the true time-to-failure distribution.
	Life dist.Distribution
	// Units is the population size.
	Units int
	// ObservationHours right-censors units still alive at this age.
	ObservationHours float64
}

// Validate checks the population description.
func (p Population) Validate() error {
	if p.Life == nil {
		return fmt.Errorf("field: population %q has no life distribution", p.Name)
	}
	if p.Units < 2 {
		return fmt.Errorf("field: population %q needs >= 2 units, got %d", p.Name, p.Units)
	}
	if !(p.ObservationHours > 0) || math.IsInf(p.ObservationHours, 0) {
		return fmt.Errorf("field: population %q has invalid window %v", p.Name, p.ObservationHours)
	}
	return nil
}

// Observe draws the population's field record: every unit runs until it
// fails or the observation window closes.
func (p Population) Observe(r *rng.RNG) ([]fit.Observation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	obs := make([]fit.Observation, p.Units)
	for i := range obs {
		t := p.Life.Sample(r)
		if t > p.ObservationHours {
			obs[i] = fit.Observation{Time: p.ObservationHours, Censored: true}
		} else {
			obs[i] = fit.Observation{Time: t, Censored: false}
		}
	}
	return obs, nil
}

// HDD1 reproduces Fig. 1's HDD #1: a clean single-mechanism population
// with a slightly decreasing hazard (β = 0.9) that plots as a straight
// line on Weibull paper.
func HDD1() Population {
	return Population{
		Name:             "HDD #1 (pure Weibull, β=0.9)",
		Life:             dist.MustWeibull(0.9, 4.0e5, 0),
		Units:            12000,
		ObservationHours: 30000,
	}
}

// HDD2 reproduces Fig. 1's HDD #2: two linear sections with an upturn
// after ~10,000 hours — a second failure mechanism (wear-out) overtakes
// the first, modeled as competing risks.
func HDD2() Population {
	return Population{
		Name: "HDD #2 (mechanism change after ~10kh)",
		Life: dist.MustCompetingRisks([]dist.Distribution{
			dist.MustWeibull(0.95, 6.0e5, 0), // early-life mechanism
			dist.MustWeibull(3.6, 3.0e4, 0),  // wear-out taking over late
		}),
		Units:            15000,
		ObservationHours: 30000,
	}
}

// HDD3 reproduces Fig. 1's HDD #3: two inflection points — an early
// decrease from a defective sub-population (mixture) and a late increase
// from a competing wear-out risk affecting everyone.
func HDD3() Population {
	weak := dist.MustWeibull(0.6, 2.5e4, 0) // contaminated sub-population
	strong := dist.MustWeibull(1.0, 1.2e6, 0)
	wearout := dist.MustWeibull(4.0, 4.0e4, 0)
	mixed := dist.MustMixture([]dist.Distribution{weak, strong}, []float64{0.05, 0.95})
	return Population{
		Name:             "HDD #3 (mixture + competing risks)",
		Life:             dist.MustCompetingRisks([]dist.Distribution{mixed, wearout}),
		Units:            15000,
		ObservationHours: 30000,
	}
}

// Vintage describes one manufacturing vintage of Fig. 2, parameterized by
// the fits the paper quotes (β, η) and the field exposure that produced
// its failure/suspension counts.
type Vintage struct {
	Name  string
	Shape float64
	Scale float64
	Units int
}

// PaperVintages returns the three vintages of Fig. 2 with the paper's
// quoted parameters and population sizes (F+S counts).
func PaperVintages() []Vintage {
	return []Vintage{
		{Name: "vintage 1", Shape: 1.0987, Scale: 4.5444e5, Units: 198 + 10433},
		{Name: "vintage 2", Shape: 1.2162, Scale: 1.2566e5, Units: 992 + 23064},
		{Name: "vintage 3", Shape: 1.4873, Scale: 7.5012e4, Units: 921 + 22913},
	}
}

// Population converts a vintage into an observable population over the
// given field window.
func (v Vintage) Population(windowHours float64) Population {
	return Population{
		Name:             v.Name,
		Life:             dist.MustWeibull(v.Shape, v.Scale, 0),
		Units:            v.Units,
		ObservationHours: windowHours,
	}
}
