package raid

import (
	"bytes"
	"errors"
	"testing"

	"raidrel/internal/rng"
)

func fillStripes(t *testing.T, a *Array, seed uint64) [][][]byte {
	t.Helper()
	r := rng.New(seed)
	all := make([][][]byte, a.StripeSets())
	for set := 0; set < a.StripeSets(); set++ {
		data := make([][]byte, a.DataBlocksPerSet())
		for i := range data {
			blk := make([]byte, a.blockSize)
			for j := range blk {
				blk[j] = byte(r.Intn(256))
			}
			data[i] = blk
		}
		if err := a.WriteStripe(set, data); err != nil {
			t.Fatalf("write set %d: %v", set, err)
		}
		all[set] = data
	}
	return all
}

func checkData(t *testing.T, a *Array, want [][][]byte) {
	t.Helper()
	for set := range want {
		got, err := a.ReadStripe(set)
		if err != nil {
			t.Fatalf("read set %d: %v", set, err)
		}
		for i := range want[set] {
			if !bytes.Equal(got[i], want[set][i]) {
				t.Fatalf("set %d block %d corrupted", set, i)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		level              Level
		disks, sets, block int
	}{
		{RAID5, 2, 4, 64}, // too few disks
		{RAID5, 8, 0, 64}, // no stripes
		{RAID5, 8, 4, 0},  // no block size
		{RAID6, 7, 4, 64}, // p = 6 not prime
		{RAID6, 3, 4, 64}, // p = 2 too small
		{Level(9), 8, 4, 64},
	}
	for _, c := range cases {
		if _, err := New(c.level, c.disks, c.sets, c.block); err == nil {
			t.Errorf("New(%v, %d, %d, %d) accepted", c.level, c.disks, c.sets, c.block)
		}
	}
	if _, err := New(RAID6, 8, 4, 64); err != nil { // p = 7 prime: the paper's 8-drive group
		t.Errorf("8-disk RDP rejected: %v", err)
	}
}

func TestLevelString(t *testing.T) {
	if RAID4.String() != "RAID4" || RAID5.String() != "RAID5" || RAID6.String() != "RAID6-RDP" {
		t.Error("level strings wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, level := range []Level{RAID4, RAID5, RAID6} {
		a, err := New(level, 8, 6, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := fillStripes(t, a, 1)
		checkData(t, a, want)
	}
}

func TestWriteValidation(t *testing.T) {
	a, err := New(RAID5, 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteStripe(5, nil); err == nil {
		t.Error("bad set accepted")
	}
	if err := a.WriteStripe(0, make([][]byte, 3)); err == nil {
		t.Error("wrong block count accepted")
	}
	data := make([][]byte, a.DataBlocksPerSet())
	for i := range data {
		data[i] = make([]byte, 63)
	}
	if err := a.WriteStripe(0, data); err == nil {
		t.Error("wrong block size accepted")
	}
}

func TestSingleDiskFailureRecovery(t *testing.T) {
	for _, level := range []Level{RAID4, RAID5, RAID6} {
		a, err := New(level, 8, 5, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := fillStripes(t, a, 2)
		for d := 0; d < a.Disks(); d++ {
			if err := a.FailDisk(d); err != nil {
				t.Fatal(err)
			}
			// Degraded reads reconstruct through parity.
			checkData(t, a, want)
			rep, err := a.ReplaceDisk(d)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.LostSets) != 0 {
				t.Fatalf("%v: clean rebuild of disk %d lost sets %v", level, d, rep.LostSets)
			}
			checkData(t, a, want)
		}
	}
}

func TestDoubleDiskFailureRAID5Loses(t *testing.T) {
	a, err := New(RAID5, 8, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	fillStripes(t, a, 3)
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	_, err = a.ReadStripe(0)
	var unrec *UnrecoverableError
	if !errors.As(err, &unrec) {
		t.Fatalf("double failure read err = %v, want UnrecoverableError", err)
	}
	if unrec.Set != 0 {
		t.Errorf("unrecoverable set = %d", unrec.Set)
	}
}

// RDP survives every pair of whole-disk losses — exhaustive over all
// (p+1 choose 2) pairs for p = 7 (8 disks, the paper's group size).
func TestRDPAllDoubleFailuresRecover(t *testing.T) {
	for x := 0; x < 8; x++ {
		for y := x + 1; y < 8; y++ {
			a, err := New(RAID6, 8, 3, 64)
			if err != nil {
				t.Fatal(err)
			}
			want := fillStripes(t, a, uint64(100+x*8+y))
			if err := a.FailDisk(x); err != nil {
				t.Fatal(err)
			}
			if err := a.FailDisk(y); err != nil {
				t.Fatal(err)
			}
			checkData(t, a, want) // degraded double-failure read
			rep1, err := a.ReplaceDisk(x)
			if err != nil {
				t.Fatalf("replace %d (with %d failed): %v", x, y, err)
			}
			if len(rep1.LostSets) != 0 {
				t.Fatalf("pair (%d,%d): lost sets %v", x, y, rep1.LostSets)
			}
			rep2, err := a.ReplaceDisk(y)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.LostSets) != 0 {
				t.Fatalf("pair (%d,%d): lost sets %v on second rebuild", x, y, rep2.LostSets)
			}
			checkData(t, a, want)
		}
	}
}

// Exhaustive double-failure coverage for other legal RDP sizes.
func TestRDPOtherPrimes(t *testing.T) {
	for _, disks := range []int{6, 12} { // p = 5, 11
		for x := 0; x < disks; x++ {
			for y := x + 1; y < disks; y++ {
				a, err := New(RAID6, disks, 1, 16)
				if err != nil {
					t.Fatal(err)
				}
				want := fillStripes(t, a, uint64(7000+disks*100+x*16+y))
				if err := a.FailDisk(x); err != nil {
					t.Fatal(err)
				}
				if err := a.FailDisk(y); err != nil {
					t.Fatal(err)
				}
				checkData(t, a, want)
			}
		}
	}
}

// The headline physical scenario: a latent defect on a surviving drive
// makes a RAID5 rebuild lose exactly the affected stripe set — but only
// that one — while RAID6 survives, and scrubbing first prevents the loss
// entirely.
func TestLatentDefectPlusFailure(t *testing.T) {
	t.Run("raid5 loses the stripe", func(t *testing.T) {
		a, err := New(RAID5, 8, 5, 64)
		if err != nil {
			t.Fatal(err)
		}
		fillStripes(t, a, 4)
		if err := a.CorruptBlock(2, 3, 0); err != nil { // latent defect on disk 2, set 3
			t.Fatal(err)
		}
		if err := a.FailDisk(5); err != nil { // unrelated drive dies
			t.Fatal(err)
		}
		rep, err := a.ReplaceDisk(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSets) != 1 || rep.LostSets[0] != 3 {
			t.Fatalf("lost sets = %v, want [3]", rep.LostSets)
		}
	})
	t.Run("scrub first saves it", func(t *testing.T) {
		a, err := New(RAID5, 8, 5, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := fillStripes(t, a, 4)
		if err := a.CorruptBlock(2, 3, 0); err != nil {
			t.Fatal(err)
		}
		scrub, err := a.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if scrub.RepairedBlocks != 1 || len(scrub.UnrecoverableSets) != 0 {
			t.Fatalf("scrub report = %+v", scrub)
		}
		if err := a.FailDisk(5); err != nil {
			t.Fatal(err)
		}
		rep, err := a.ReplaceDisk(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSets) != 0 {
			t.Fatalf("lost sets after scrub = %v", rep.LostSets)
		}
		checkData(t, a, want)
	})
	t.Run("raid6 survives without scrubbing", func(t *testing.T) {
		a, err := New(RAID6, 8, 5, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := fillStripes(t, a, 4)
		if err := a.CorruptBlock(2, 3, 0); err != nil {
			t.Fatal(err)
		}
		if err := a.FailDisk(5); err != nil {
			t.Fatal(err)
		}
		rep, err := a.ReplaceDisk(5)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.LostSets) != 0 {
			t.Fatalf("RAID6 lost sets = %v", rep.LostSets)
		}
		checkData(t, a, want)
	})
}

func TestScrubRepairsScatteredCorruption(t *testing.T) {
	a, err := New(RAID5, 8, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fillStripes(t, a, 5)
	// One corruption per set on different disks: all recoverable.
	for set := 0; set < 10; set++ {
		if err := a.CorruptBlock(set%8, set, 0); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairedBlocks != 10 {
		t.Errorf("repaired %d, want 10", rep.RepairedBlocks)
	}
	if len(rep.UnrecoverableSets) != 0 {
		t.Errorf("unrecoverable: %v", rep.UnrecoverableSets)
	}
	checkData(t, a, want)
	if err := a.VerifyAll(); err != nil {
		t.Errorf("VerifyAll after scrub: %v", err)
	}
}

func TestScrubReportsDoubleCorruption(t *testing.T) {
	a, err := New(RAID5, 8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	fillStripes(t, a, 6)
	// Two corruptions in the same (single-row) stripe beat single parity.
	if err := a.CorruptBlock(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.CorruptBlock(3, 2, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UnrecoverableSets) != 1 || rep.UnrecoverableSets[0] != 2 {
		t.Fatalf("unrecoverable = %v, want [2]", rep.UnrecoverableSets)
	}
	// RAID6 shrugs off the same double corruption.
	b, err := New(RAID6, 8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fillStripes(t, b, 6)
	if err := b.CorruptBlock(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CorruptBlock(3, 2, 0); err != nil {
		t.Fatal(err)
	}
	rep6, err := b.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep6.RepairedBlocks != 2 || len(rep6.UnrecoverableSets) != 0 {
		t.Fatalf("RAID6 scrub = %+v", rep6)
	}
	checkData(t, b, want)
}

func TestMaintenanceValidation(t *testing.T) {
	a, err := New(RAID5, 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(99); err == nil {
		t.Error("bad disk accepted")
	}
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(2); err == nil {
		t.Error("double-fail accepted")
	}
	if got := a.FailedDisks(); len(got) != 1 || got[0] != 2 {
		t.Errorf("FailedDisks = %v", got)
	}
	if _, err := a.ReplaceDisk(3); err == nil {
		t.Error("replacing healthy disk accepted")
	}
	if err := a.CorruptBlock(2, 0, 0); err == nil {
		t.Error("corrupting failed disk accepted")
	}
	if err := a.CorruptBlock(0, 0, 5); err == nil {
		t.Error("bad row accepted")
	}
	data := make([][]byte, a.DataBlocksPerSet())
	for i := range data {
		data[i] = make([]byte, 64)
	}
	if err := a.WriteStripe(0, data); err == nil {
		t.Error("degraded write accepted")
	}
}

func TestGeometryAccessors(t *testing.T) {
	a, err := New(RAID6, 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Level() != RAID6 || a.Disks() != 8 || a.StripeSets() != 2 {
		t.Error("accessors wrong")
	}
	if a.DataBlocksPerSet() != 36 { // (p-1)^2 with p=7
		t.Errorf("DataBlocksPerSet = %d", a.DataBlocksPerSet())
	}
	if a.Redundancy() != 2 {
		t.Errorf("Redundancy = %d", a.Redundancy())
	}
	b, _ := New(RAID5, 8, 2, 64)
	if b.DataBlocksPerSet() != 7 || b.Redundancy() != 1 {
		t.Error("RAID5 geometry wrong")
	}
}

// RAID5 parity rotates: the parity disk differs across consecutive sets.
func TestRAID5ParityRotation(t *testing.T) {
	a, err := New(RAID5, 4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for set := 0; set < 8; set++ {
		seen[a.parityDisk(set)] = true
	}
	if len(seen) != 4 {
		t.Errorf("parity visited %d disks, want 4", len(seen))
	}
	b, _ := New(RAID4, 4, 8, 16)
	for set := 0; set < 8; set++ {
		if b.parityDisk(set) != 3 {
			t.Error("RAID4 parity should be fixed on the last disk")
		}
	}
}
