package raid

import (
	"fmt"
)

// WriteStripe writes one stripe set of user data and its parity. data must
// contain exactly DataBlocksPerSet blocks of the array's block size. For
// RAID6 the blocks fill the (p-1)×(p-1) data matrix in row-major order.
func (a *Array) WriteStripe(set int, data [][]byte) error {
	if err := a.checkSet(set); err != nil {
		return err
	}
	if len(data) != a.DataBlocksPerSet() {
		return fmt.Errorf("raid: stripe set needs %d blocks, got %d", a.DataBlocksPerSet(), len(data))
	}
	for i, blk := range data {
		if len(blk) != a.blockSize {
			return fmt.Errorf("raid: block %d has %d bytes, want %d", i, len(blk), a.blockSize)
		}
	}
	for d := range a.disks {
		if a.disks[d].failed {
			return fmt.Errorf("raid: cannot write with disk %d failed (degraded writes unsupported)", d)
		}
	}
	switch a.level {
	case RAID6:
		return a.writeStripeRDP(set, data)
	case RAID6RS:
		return a.writeStripeRS(set, data)
	default:
		return a.writeStripeXOR(set, data)
	}
}

// writeStripeXOR writes a single-row stripe with XOR parity.
func (a *Array) writeStripeXOR(set int, data [][]byte) error {
	parity := make([]byte, a.blockSize)
	for i, d := range a.dataDisks(set) {
		a.writeRaw(d, set, 0, data[i])
		xorInto(parity, data[i])
	}
	a.writeRaw(a.parityDisk(set), set, 0, parity)
	return nil
}

// writeStripeRDP writes a p-1 row stripe set with row and diagonal parity.
//
// Geometry: columns 0..p-2 hold data, column p-1 holds row parity, column
// p holds diagonal parity. With a virtual all-zero row p-1, diagonal d
// (0 <= d <= p-1) collects the cells (r, c) of columns 0..p-1 with
// (r + c) mod p == d; diagonals 0..p-2 are stored on the diagonal-parity
// disk (row d), and diagonal p-1 is the unstored "missing" diagonal.
func (a *Array) writeStripeRDP(set int, data [][]byte) error {
	p := a.prime
	rows := p - 1
	// Write data and accumulate row parity.
	rowParity := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		rowParity[r] = make([]byte, a.blockSize)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < p-1; c++ {
			blk := data[r*(p-1)+c]
			a.writeRaw(c, set, r, blk)
			xorInto(rowParity[r], blk)
		}
	}
	for r := 0; r < rows; r++ {
		a.writeRaw(p-1, set, r, rowParity[r])
	}
	// Diagonal parity over columns 0..p-1 (data + row parity).
	for d := 0; d < p-1; d++ {
		diag := make([]byte, a.blockSize)
		for c := 0; c <= p-1; c++ {
			r := ((d-c)%p + p) % p
			if r >= rows {
				continue // virtual zero row
			}
			cell, ok := a.readRaw(c, set, r)
			if !ok {
				return fmt.Errorf("raid: internal: freshly written cell (%d,%d) unreadable", r, c)
			}
			xorInto(diag, cell)
		}
		a.writeRaw(p, set, d, diag)
	}
	return nil
}

// ReadStripe returns the user data of a stripe set, reconstructing through
// parity when disks are failed or blocks are silently corrupt. It returns
// an error if the stripe has lost more blocks than the redundancy covers —
// the block-level double-disk failure.
func (a *Array) ReadStripe(set int) ([][]byte, error) {
	if err := a.checkSet(set); err != nil {
		return nil, err
	}
	cells, err := a.recoverSet(set)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, a.DataBlocksPerSet())
	switch a.level {
	case RAID6:
		p := a.prime
		for r := 0; r < p-1; r++ {
			for c := 0; c < p-1; c++ {
				out = append(out, cells[r][c])
			}
		}
	default: // RAID4/5 and RAID6-RS: dataDisks gives the logical order
		for _, d := range a.dataDisks(set) {
			out = append(out, cells[0][d])
		}
	}
	return out, nil
}

// UnrecoverableError reports stripe data loss: more blocks missing than
// parity can reconstruct. This is the physical manifestation of a DDF.
type UnrecoverableError struct {
	Set  int
	Rows []int // affected rows within the set
}

// Error implements error.
func (e *UnrecoverableError) Error() string {
	return fmt.Sprintf("raid: stripe set %d unrecoverable (rows %v)", e.Set, e.Rows)
}

// recoverSet returns the full cell matrix [row][column] of a stripe set
// with erasures reconstructed, or an UnrecoverableError.
func (a *Array) recoverSet(set int) ([][][]byte, error) {
	rows := a.rowsPerSet()
	cols := len(a.disks)
	cells := make([][][]byte, rows)
	missing := make([][]bool, rows)
	for r := 0; r < rows; r++ {
		cells[r] = make([][]byte, cols)
		missing[r] = make([]bool, cols)
		for c := 0; c < cols; c++ {
			payload, ok := a.readRaw(c, set, r)
			if ok {
				cells[r][c] = clone(payload)
			} else {
				cells[r][c] = make([]byte, a.blockSize)
				missing[r][c] = true
			}
		}
	}
	switch a.level {
	case RAID6:
		if err := a.solveRDP(set, cells, missing); err != nil {
			return nil, err
		}
	case RAID6RS:
		if err := a.solveRS(set, cells, missing); err != nil {
			return nil, err
		}
	default:
		var lost []int
		for r := 0; r < rows; r++ {
			n := 0
			for c := 0; c < cols; c++ {
				if missing[r][c] {
					n++
				}
			}
			switch {
			case n == 0:
			case n == 1:
				// XOR of all surviving cells reconstructs the lone loss.
				idx := -1
				rec := make([]byte, a.blockSize)
				for c := 0; c < cols; c++ {
					if missing[r][c] {
						idx = c
						continue
					}
					xorInto(rec, cells[r][c])
				}
				cells[r][idx] = rec
				missing[r][idx] = false
			default:
				lost = append(lost, r)
			}
		}
		if lost != nil {
			return nil, &UnrecoverableError{Set: set, Rows: lost}
		}
	}
	return cells, nil
}

// solveRDP reconstructs missing cells of an RDP stripe set by constraint
// propagation: any row or stored diagonal with exactly one missing cell
// determines it; iterate to fixpoint. Corbett et al. prove two lost
// columns always converge for prime p; the iterative solver also handles
// scattered block corruption up to the same budget per chain.
func (a *Array) solveRDP(set int, cells [][][]byte, missing [][]bool) error {
	p := a.prime
	rows := p - 1
	for {
		progress := false
		// Rows: columns 0..p-1 XOR to zero (row parity definition).
		for r := 0; r < rows; r++ {
			idx, n := -1, 0
			for c := 0; c <= p-1; c++ {
				if missing[r][c] {
					idx, n = c, n+1
				}
			}
			if n == 1 {
				rec := make([]byte, a.blockSize)
				for c := 0; c <= p-1; c++ {
					if c != idx {
						xorInto(rec, cells[r][c])
					}
				}
				cells[r][idx] = rec
				missing[r][idx] = false
				progress = true
			}
		}
		// Stored diagonals: diagonal parity cell XOR member cells == 0.
		for d := 0; d < p-1; d++ {
			type cell struct{ r, c int }
			idx := cell{-1, -1}
			n := 0
			if missing[d][p] {
				idx, n = cell{d, p}, n+1
			}
			for c := 0; c <= p-1; c++ {
				r := ((d-c)%p + p) % p
				if r >= rows {
					continue
				}
				if missing[r][c] {
					idx, n = cell{r, c}, n+1
				}
			}
			if n == 1 {
				rec := make([]byte, a.blockSize)
				if !(idx.r == d && idx.c == p) {
					xorInto(rec, cells[d][p])
				}
				for c := 0; c <= p-1; c++ {
					r := ((d-c)%p + p) % p
					if r >= rows || (r == idx.r && c == idx.c) {
						continue
					}
					xorInto(rec, cells[r][c])
				}
				cells[idx.r][idx.c] = rec
				missing[idx.r][idx.c] = false
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	var lost []int
	for r := 0; r < rows; r++ {
		for c := 0; c < len(a.disks); c++ {
			if missing[r][c] {
				lost = append(lost, r)
				break
			}
		}
	}
	if lost != nil {
		return &UnrecoverableError{Set: set, Rows: lost}
	}
	return nil
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
