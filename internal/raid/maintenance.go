package raid

import (
	"fmt"
)

// FailDisk marks a drive as operationally failed: every block on it reads
// as an erasure until the disk is replaced and rebuilt.
func (a *Array) FailDisk(d int) error {
	if err := a.checkDisk(d); err != nil {
		return err
	}
	if a.disks[d].failed {
		return fmt.Errorf("raid: disk %d already failed", d)
	}
	a.disks[d].failed = true
	return nil
}

// FailedDisks lists currently failed drives.
func (a *Array) FailedDisks() []int {
	var out []int
	for d := range a.disks {
		if a.disks[d].failed {
			out = append(out, d)
		}
	}
	return out
}

// CorruptBlock silently corrupts the payload of (disk, set, row): the data
// changes but the stored checksum does not, exactly like a latent sector
// defect — invisible until the block is next read or scrubbed.
func (a *Array) CorruptBlock(d, set, row int) error {
	if err := a.checkDisk(d); err != nil {
		return err
	}
	if err := a.checkSet(set); err != nil {
		return err
	}
	if row < 0 || row >= a.rowsPerSet() {
		return fmt.Errorf("raid: row %d out of range [0,%d)", row, a.rowsPerSet())
	}
	if a.disks[d].failed {
		return fmt.Errorf("raid: disk %d is failed; nothing to corrupt", d)
	}
	b := &a.disks[d].blocks[a.blockIndex(set, row)]
	for i := range b.data {
		b.data[i] ^= 0xA5
	}
	return nil
}

// RebuildReport summarizes a disk replacement.
type RebuildReport struct {
	Disk int
	// LostSets lists stripe sets whose data could not be reconstructed —
	// each is a block-level double failure (e.g. a latent defect on a
	// surviving drive). Lost sets are zero-filled on the replacement.
	LostSets []int
	// RepairedBlocks counts blocks written to the replacement.
	RepairedBlocks int
}

// ReplaceDisk swaps in a fresh drive for a failed one and reconstructs its
// contents from the surviving drives. Stripe sets that cannot be
// reconstructed are reported as lost — the physical DDF the reliability
// model counts.
func (a *Array) ReplaceDisk(d int) (*RebuildReport, error) {
	if err := a.checkDisk(d); err != nil {
		return nil, err
	}
	if !a.disks[d].failed {
		return nil, fmt.Errorf("raid: disk %d has not failed", d)
	}
	report := &RebuildReport{Disk: d}
	rows := a.rowsPerSet()
	// Bring the disk back empty, then reconstruct set by set using the
	// remaining drives (the disk participates as an erasure during its own
	// reconstruction).
	for b := range a.disks[d].blocks {
		zero := make([]byte, a.blockSize)
		a.disks[d].blocks[b] = block{data: zero, sum: 0} // invalid checksum: still an erasure
	}
	a.disks[d].failed = false
	for set := 0; set < a.stripeSets; set++ {
		cells, err := a.recoverSet(set)
		if err != nil {
			var unrec *UnrecoverableError
			if asUnrecoverable(err, &unrec) {
				report.LostSets = append(report.LostSets, set)
				// Zero-fill with valid checksums so the array returns to a
				// consistent (if lossy) state.
				for r := 0; r < rows; r++ {
					a.writeRaw(d, set, r, make([]byte, a.blockSize))
				}
				continue
			}
			return nil, err
		}
		for r := 0; r < rows; r++ {
			a.writeRaw(d, set, r, cells[r][d])
			report.RepairedBlocks++
		}
	}
	// Re-encode parity for lost sets so subsequent reads are consistent.
	// With another disk still down the re-encode must wait: the lost sets
	// keep invalid checksums on this disk (visible erasures) and the final
	// rebuild — when the array is whole again — re-discovers and settles
	// them.
	if len(a.FailedDisks()) == 0 {
		for _, set := range report.LostSets {
			data := make([][]byte, a.DataBlocksPerSet())
			for i := range data {
				data[i] = make([]byte, a.blockSize)
			}
			if err := a.WriteStripe(set, data); err != nil {
				return nil, fmt.Errorf("raid: re-encode lost set %d: %w", set, err)
			}
		}
	} else {
		for _, set := range report.LostSets {
			for r := 0; r < rows; r++ {
				b := &a.disks[d].blocks[a.blockIndex(set, r)]
				b.sum = ^crcOf(b.data) // deliberately invalid: still an erasure
			}
		}
	}
	return report, nil
}

// asUnrecoverable is a tiny errors.As specialization (avoids importing
// errors for one call site spread).
func asUnrecoverable(err error, target **UnrecoverableError) bool {
	u, ok := err.(*UnrecoverableError)
	if ok {
		*target = u
	}
	return ok
}

// RepairBlock reconstructs a single block from parity and rewrites it — a
// targeted scrub of one suspect location (the per-defect correction the
// reliability model's TTScrub samples). It fails if the stripe set is
// unrecoverable (e.g. another disk is down and the set has lost too much).
func (a *Array) RepairBlock(d, set, row int) error {
	if err := a.checkDisk(d); err != nil {
		return err
	}
	if err := a.checkSet(set); err != nil {
		return err
	}
	if row < 0 || row >= a.rowsPerSet() {
		return fmt.Errorf("raid: row %d out of range [0,%d)", row, a.rowsPerSet())
	}
	if a.disks[d].failed {
		return fmt.Errorf("raid: disk %d is failed; rebuild it instead", d)
	}
	cells, err := a.recoverSet(set)
	if err != nil {
		return err
	}
	a.writeRaw(d, set, row, cells[row][d])
	return nil
}

// ScrubReport summarizes one full scrub pass.
type ScrubReport struct {
	// CheckedBlocks counts blocks whose checksum was verified.
	CheckedBlocks int
	// RepairedBlocks counts silently corrupted blocks that were
	// reconstructed from parity and rewritten.
	RepairedBlocks int
	// UnrecoverableSets lists stripe sets where corruption exceeded the
	// redundancy (possible only with coincident corruptions or failures).
	UnrecoverableSets []int
}

// Scrub reads every block on every live drive, verifies checksums, and
// repairs silent corruption from parity — the paper's §6.4 background
// scrubbing, performed as one synchronous pass.
func (a *Array) Scrub() (*ScrubReport, error) {
	report := &ScrubReport{}
	rows := a.rowsPerSet()
	for set := 0; set < a.stripeSets; set++ {
		// First count checks for reporting.
		bad := false
		for d := range a.disks {
			if a.disks[d].failed {
				continue
			}
			for r := 0; r < rows; r++ {
				report.CheckedBlocks++
				if _, ok := a.readRaw(d, set, r); !ok {
					bad = true
				}
			}
		}
		if !bad {
			continue
		}
		cells, err := a.recoverSet(set)
		if err != nil {
			var unrec *UnrecoverableError
			if asUnrecoverable(err, &unrec) {
				report.UnrecoverableSets = append(report.UnrecoverableSets, set)
				continue
			}
			return nil, err
		}
		for d := range a.disks {
			if a.disks[d].failed {
				continue
			}
			for r := 0; r < rows; r++ {
				if _, ok := a.readRaw(d, set, r); !ok {
					a.writeRaw(d, set, r, cells[r][d])
					report.RepairedBlocks++
				}
			}
		}
	}
	return report, nil
}

// VerifyAll re-reads every stripe set and returns the first error, or nil
// if every block is intact or reconstructable.
func (a *Array) VerifyAll() error {
	for set := 0; set < a.stripeSets; set++ {
		if _, err := a.ReadStripe(set); err != nil {
			return err
		}
	}
	return nil
}
