package raid

import (
	"bytes"
	"testing"
)

func TestRSValidation(t *testing.T) {
	if _, err := New(RAID6RS, 3, 2, 16); err == nil {
		t.Error("3-disk RS accepted")
	}
	a, err := New(RAID6RS, 8, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Redundancy() != 2 || a.DataBlocksPerSet() != 6 {
		t.Errorf("geometry: redundancy %d, data blocks %d", a.Redundancy(), a.DataBlocksPerSet())
	}
	if a.Level().String() != "RAID6-RS" {
		t.Errorf("level = %v", a.Level())
	}
}

func TestRSRoundTrip(t *testing.T) {
	// Unlike RDP, RS accepts any disk count >= 4 — including non-prime+1.
	for _, disks := range []int{4, 7, 8, 10, 15} {
		a, err := New(RAID6RS, disks, 5, 32)
		if err != nil {
			t.Fatalf("disks=%d: %v", disks, err)
		}
		want := fillStripes(t, a, uint64(9000+disks))
		checkData(t, a, want)
	}
}

// Exhaustive double-erasure recovery across all disk pairs and several
// array widths — the defining property of double parity.
func TestRSAllDoubleFailuresRecover(t *testing.T) {
	for _, disks := range []int{4, 8, 11} {
		for x := 0; x < disks; x++ {
			for y := x + 1; y < disks; y++ {
				a, err := New(RAID6RS, disks, 3, 32)
				if err != nil {
					t.Fatal(err)
				}
				want := fillStripes(t, a, uint64(9500+disks*100+x*16+y))
				if err := a.FailDisk(x); err != nil {
					t.Fatal(err)
				}
				if err := a.FailDisk(y); err != nil {
					t.Fatal(err)
				}
				checkData(t, a, want)
				rep, err := a.ReplaceDisk(x)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.LostSets) != 0 {
					t.Fatalf("disks=%d pair (%d,%d): lost %v", disks, x, y, rep.LostSets)
				}
				if _, err := a.ReplaceDisk(y); err != nil {
					t.Fatal(err)
				}
				checkData(t, a, want)
			}
		}
	}
}

// RDP and RS must agree byte-for-byte on every recovery scenario: same
// data in, same data out after any double loss.
func TestRSCrossValidatesRDP(t *testing.T) {
	const disks = 8
	for x := 0; x < disks; x++ {
		for y := x + 1; y < disks; y++ {
			seed := uint64(9900 + x*16 + y)
			rdp, err := New(RAID6, disks, 2, 32)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := New(RAID6RS, disks, 2, 32)
			if err != nil {
				t.Fatal(err)
			}
			// Different geometries hold different block counts; write the
			// same byte pattern to each and verify both recover their own.
			wantRDP := fillStripes(t, rdp, seed)
			wantRS := fillStripes(t, rs, seed)
			for _, pair := range []struct {
				a    *Array
				want [][][]byte
			}{{rdp, wantRDP}, {rs, wantRS}} {
				if err := pair.a.FailDisk(x); err != nil {
					t.Fatal(err)
				}
				if err := pair.a.FailDisk(y); err != nil {
					t.Fatal(err)
				}
				for set := range pair.want {
					got, err := pair.a.ReadStripe(set)
					if err != nil {
						t.Fatalf("%v pair (%d,%d): %v", pair.a.Level(), x, y, err)
					}
					for i := range pair.want[set] {
						if !bytes.Equal(got[i], pair.want[set][i]) {
							t.Fatalf("%v pair (%d,%d): block %d corrupt", pair.a.Level(), x, y, i)
						}
					}
				}
			}
		}
	}
}

// Latent defect + whole-disk loss: RS survives like RDP.
func TestRSLatentDefectPlusFailure(t *testing.T) {
	a, err := New(RAID6RS, 8, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := fillStripes(t, a, 4)
	if err := a.CorruptBlock(2, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(5); err != nil {
		t.Fatal(err)
	}
	rep, err := a.ReplaceDisk(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.LostSets) != 0 {
		t.Fatalf("RS lost sets %v", rep.LostSets)
	}
	checkData(t, a, want)
}

// Triple loss defeats RS, as it must.
func TestRSTripleLossFails(t *testing.T) {
	a, err := New(RAID6RS, 8, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	fillStripes(t, a, 5)
	for _, d := range []int{0, 3, 6} {
		if err := a.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.ReadStripe(0); err == nil {
		t.Error("triple loss read succeeded")
	}
}

// Corruption on parity columns is repaired like data corruption.
func TestRSParityCorruption(t *testing.T) {
	a, err := New(RAID6RS, 8, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := fillStripes(t, a, 6)
	if err := a.CorruptBlock(6, 1, 0); err != nil { // P column
		t.Fatal(err)
	}
	if err := a.CorruptBlock(7, 2, 0); err != nil { // Q column
		t.Fatal(err)
	}
	rep, err := a.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairedBlocks != 2 || len(rep.UnrecoverableSets) != 0 {
		t.Fatalf("scrub = %+v", rep)
	}
	checkData(t, a, want)
}
