package raid

import (
	"bytes"
	"errors"
	"testing"

	"raidrel/internal/rng"
)

// tortureState tracks what the array's content must be: a shadow copy of
// every stripe set plus the corruptions currently outstanding.
type tortureState struct {
	shadow      [][][]byte      // set -> data blocks
	corruptions map[[3]int]bool // (disk, set, row) currently corrupt
	deadSets    map[int]bool    // sets declared lost (zero-filled)
}

// TestTortureRandomOperations drives each layout through long random
// sequences of writes, silent corruptions, scrubs, failures, and rebuilds,
// checking after every step that reads return exactly the shadow data (or
// a predicted loss) — never silent garbage.
func TestTortureRandomOperations(t *testing.T) {
	levels := []Level{RAID4, RAID5, RAID6, RAID6RS}
	for _, level := range levels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			r := rng.New(uint64(4242 + int(level)))
			const (
				disks      = 8
				sets       = 12
				blockSize  = 24
				operations = 400
			)
			a, err := New(level, disks, sets, blockSize)
			if err != nil {
				t.Fatal(err)
			}
			st := &tortureState{
				shadow:      make([][][]byte, sets),
				corruptions: make(map[[3]int]bool),
				deadSets:    make(map[int]bool),
			}
			// Initial content.
			for set := 0; set < sets; set++ {
				st.shadow[set] = randomStripe(a, r)
				if err := a.WriteStripe(set, st.shadow[set]); err != nil {
					t.Fatal(err)
				}
			}
			rows := a.rowsPerSet()
			for op := 0; op < operations; op++ {
				switch r.Intn(5) {
				case 0: // rewrite a stripe (only on a healthy array)
					if len(a.FailedDisks()) > 0 {
						continue
					}
					set := r.Intn(sets)
					st.shadow[set] = randomStripe(a, r)
					if err := a.WriteStripe(set, st.shadow[set]); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					delete(st.deadSets, set)
					// A full-stripe write overwrites any corruption in it.
					for key := range st.corruptions {
						if key[1] == set {
							delete(st.corruptions, key)
						}
					}
				case 1: // silent corruption on a live disk
					d := r.Intn(disks)
					if contains(failedList(a), d) {
						continue
					}
					key := [3]int{d, r.Intn(sets), r.Intn(rows)}
					if st.corruptions[key] {
						continue // double-XOR would self-cancel
					}
					if err := a.CorruptBlock(key[0], key[1], key[2]); err != nil {
						t.Fatalf("op %d corrupt: %v", op, err)
					}
					st.corruptions[key] = true
				case 2: // scrub pass
					rep, err := a.Scrub()
					if err != nil {
						t.Fatalf("op %d scrub: %v", op, err)
					}
					applyScrub(st, rep)
				case 3: // fail a disk (respect the layout's redundancy)
					if len(a.FailedDisks()) >= a.Redundancy() {
						continue
					}
					alive := aliveList(a)
					d := alive[r.Intn(len(alive))]
					if err := a.FailDisk(d); err != nil {
						t.Fatalf("op %d fail: %v", op, err)
					}
					// The dead disk's corruptions vanish with it.
					for key := range st.corruptions {
						if key[0] == d {
							delete(st.corruptions, key)
						}
					}
				case 4: // rebuild one failed disk
					failed := a.FailedDisks()
					if len(failed) == 0 {
						continue
					}
					d := failed[r.Intn(len(failed))]
					rep, err := a.ReplaceDisk(d)
					if err != nil {
						t.Fatalf("op %d rebuild: %v", op, err)
					}
					applyRebuild(st, a, rep)
				}
				verifyTorture(t, a, st, op)
			}
		})
	}
}

func randomStripe(a *Array, r *rng.RNG) [][]byte {
	data := make([][]byte, a.DataBlocksPerSet())
	for i := range data {
		blk := make([]byte, a.blockSize)
		for j := range blk {
			blk[j] = byte(r.Intn(256))
		}
		data[i] = blk
	}
	return data
}

func failedList(a *Array) []int { return a.FailedDisks() }

func aliveList(a *Array) []int {
	failed := make(map[int]bool)
	for _, d := range a.FailedDisks() {
		failed[d] = true
	}
	var out []int
	for d := 0; d < a.Disks(); d++ {
		if !failed[d] {
			out = append(out, d)
		}
	}
	return out
}

// applyScrub clears corruption bookkeeping for everything the scrub could
// repair: with no failed disks every tracked corruption within redundancy
// is repaired; sets reported unrecoverable keep theirs.
func applyScrub(st *tortureState, rep *ScrubReport) {
	unrec := make(map[int]bool, len(rep.UnrecoverableSets))
	for _, s := range rep.UnrecoverableSets {
		unrec[s] = true
	}
	for key := range st.corruptions {
		if !unrec[key[1]] {
			delete(st.corruptions, key)
		}
	}
}

// applyRebuild zero-fills shadows of lost sets and clears corruption
// records the rebuild settled.
func applyRebuild(st *tortureState, a *Array, rep *RebuildReport) {
	for _, set := range rep.LostSets {
		st.deadSets[set] = true
		zero := make([][]byte, a.DataBlocksPerSet())
		for i := range zero {
			zero[i] = make([]byte, a.blockSize)
		}
		st.shadow[set] = zero
		for key := range st.corruptions {
			if key[1] == set {
				delete(st.corruptions, key)
			}
		}
	}
	// Corruptions the reconstruction consumed: any corruption in a set the
	// rebuild visited stays unless the set was lost — reconstruction reads
	// around corrupt blocks but does not repair them. Nothing to do.
}

// verifyTorture reads every stripe set and checks the oracle.
func verifyTorture(t *testing.T, a *Array, st *tortureState, op int) {
	t.Helper()
	// Predict which sets might legitimately fail to read: erased blocks
	// (failed disks) plus corruptions beyond redundancy in that set.
	failed := len(a.FailedDisks())
	corruptPerSet := make(map[int]int)
	for key := range st.corruptions {
		corruptPerSet[key[1]]++
	}
	for set := 0; set < a.StripeSets(); set++ {
		data, err := a.ReadStripe(set)
		if err != nil {
			var unrec *UnrecoverableError
			if !errors.As(err, &unrec) {
				t.Fatalf("op %d set %d: unexpected error %v", op, set, err)
			}
			if failed+corruptPerSet[set] <= a.Redundancy() && !st.deadSets[set] {
				t.Fatalf("op %d set %d: unrecoverable with only %d failed + %d corrupt",
					op, set, failed, corruptPerSet[set])
			}
			continue
		}
		for i := range st.shadow[set] {
			if !bytes.Equal(data[i], st.shadow[set][i]) {
				t.Fatalf("op %d set %d block %d: silent data corruption returned to reader",
					op, set, i)
			}
		}
	}
}
