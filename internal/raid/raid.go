// Package raid is an in-memory block-level RAID substrate. It exists to
// demonstrate, at the data level, exactly the failure semantics the
// reliability model counts: a latent sector error (silent corruption,
// detectable only by checksum) combined with a whole-disk loss makes a
// stripe unrecoverable under single parity, while scrubbing repairs the
// corruption first and the subsequent rebuild succeeds; double parity
// (row-diagonal parity, the paper's reference [24]) survives both.
//
// Layouts:
//   - RAID4: dedicated parity disk, XOR row parity.
//   - RAID5: rotating parity, XOR row parity.
//   - RAID6: row-diagonal parity (RDP). For p prime the array has p+1
//     disks (p-1 data, row parity, diagonal parity) and stripes are sets
//     of p-1 rows.
//   - RAID6RS: Reed-Solomon P+Q over GF(2^8); any disk count >= 4,
//     single-row stripes. Cross-validates the RDP implementation.
package raid

import (
	"fmt"
	"hash/crc32"
)

// Level identifies the array layout.
type Level int

const (
	// RAID4 uses a dedicated XOR parity disk.
	RAID4 Level = iota + 1
	// RAID5 rotates XOR parity across disks.
	RAID5
	// RAID6 uses NetApp-style row-diagonal parity (double parity).
	RAID6
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case RAID4:
		return "RAID4"
	case RAID5:
		return "RAID5"
	case RAID6:
		return "RAID6-RDP"
	case RAID6RS:
		return "RAID6-RS"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// block is one on-disk block: payload plus the checksum written with it.
// Silent corruption mutates data without updating sum.
type block struct {
	data []byte
	sum  uint32
}

// disk is one drive: a column of blocks.
type disk struct {
	blocks []block
	failed bool
}

// Array is an in-memory RAID group.
type Array struct {
	level      Level
	disks      []disk
	blockSize  int
	stripeSets int
	prime      int // RAID6 only: the RDP prime p (disks == p+1)
}

// rowsPerSet returns the number of rows in one stripe set.
func (a *Array) rowsPerSet() int {
	if a.level == RAID6 {
		return a.prime - 1
	}
	return 1
}

// New creates an array. RAID4/5 need >= 3 disks. RAID6 needs disks == p+1
// for a prime p >= 3 (e.g. 6, 8, 12, 14 disks).
func New(level Level, disks, stripeSets, blockSize int) (*Array, error) {
	if stripeSets < 1 {
		return nil, fmt.Errorf("raid: need >= 1 stripe set, got %d", stripeSets)
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("raid: need positive block size, got %d", blockSize)
	}
	a := &Array{level: level, blockSize: blockSize, stripeSets: stripeSets}
	switch level {
	case RAID4, RAID5:
		if disks < 3 {
			return nil, fmt.Errorf("raid: %v needs >= 3 disks, got %d", level, disks)
		}
	case RAID6:
		p := disks - 1
		if p < 3 || !isPrime(p) {
			return nil, fmt.Errorf("raid: RAID6-RDP needs p+1 disks with p prime >= 3, got %d disks", disks)
		}
		a.prime = p
	case RAID6RS:
		if err := validateRS(disks); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("raid: unknown level %d", int(level))
	}
	blocksPerDisk := stripeSets * a.rowsPerSetFor(level, disks)
	a.disks = make([]disk, disks)
	for d := range a.disks {
		a.disks[d].blocks = make([]block, blocksPerDisk)
		for b := range a.disks[d].blocks {
			zero := make([]byte, blockSize)
			a.disks[d].blocks[b] = block{data: zero, sum: crc32.ChecksumIEEE(zero)}
		}
	}
	return a, nil
}

func (a *Array) rowsPerSetFor(level Level, disks int) int {
	if level == RAID6 {
		return disks - 2 // p-1
	}
	return 1
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Level returns the array layout.
func (a *Array) Level() Level { return a.level }

// Disks returns the total drive count.
func (a *Array) Disks() int { return len(a.disks) }

// StripeSets returns the number of stripe sets.
func (a *Array) StripeSets() int { return a.stripeSets }

// DataBlocksPerSet returns how many user blocks one stripe set holds.
func (a *Array) DataBlocksPerSet() int {
	switch a.level {
	case RAID6:
		return (a.prime - 1) * (a.prime - 1)
	case RAID6RS:
		return len(a.disks) - 2
	default:
		return len(a.disks) - 1
	}
}

// Redundancy returns the number of simultaneous whole-disk losses the
// layout tolerates.
func (a *Array) Redundancy() int {
	if a.level == RAID6 || a.level == RAID6RS {
		return 2
	}
	return 1
}

// parityDisk returns the column holding row parity for the given set.
func (a *Array) parityDisk(set int) int {
	switch a.level {
	case RAID4:
		return len(a.disks) - 1
	case RAID5:
		return set % len(a.disks)
	default: // RAID6: row parity lives on column p-1
		return a.prime - 1
	}
}

// dataDisks lists the columns holding user data for the given set, in
// logical order.
func (a *Array) dataDisks(set int) []int {
	switch a.level {
	case RAID6:
		out := make([]int, a.prime-1)
		for i := range out {
			out[i] = i
		}
		return out
	case RAID6RS:
		out := make([]int, a.rsDataDisks())
		for i := range out {
			out[i] = i
		}
		return out
	default:
		pd := a.parityDisk(set)
		out := make([]int, 0, len(a.disks)-1)
		for d := range a.disks {
			if d != pd {
				out = append(out, d)
			}
		}
		return out
	}
}

// blockIndex maps (set, row) to the per-disk block index.
func (a *Array) blockIndex(set, row int) int { return set*a.rowsPerSet() + row }

// writeRaw stores payload into (disk, set, row) with a fresh checksum.
func (a *Array) writeRaw(d, set, row int, payload []byte) {
	b := &a.disks[d].blocks[a.blockIndex(set, row)]
	copy(b.data, payload)
	b.sum = crc32.ChecksumIEEE(b.data)
}

// readRaw returns the payload at (disk, set, row) and whether it is intact
// (disk alive and checksum valid).
func (a *Array) readRaw(d, set, row int) ([]byte, bool) {
	if a.disks[d].failed {
		return nil, false
	}
	b := &a.disks[d].blocks[a.blockIndex(set, row)]
	if crc32.ChecksumIEEE(b.data) != b.sum {
		return b.data, false
	}
	return b.data, true
}

// crcOf is the block checksum function.
func crcOf(data []byte) uint32 { return crc32.ChecksumIEEE(data) }

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// checkSet validates a (set) index.
func (a *Array) checkSet(set int) error {
	if set < 0 || set >= a.stripeSets {
		return fmt.Errorf("raid: stripe set %d out of range [0,%d)", set, a.stripeSets)
	}
	return nil
}

// checkDisk validates a disk index.
func (a *Array) checkDisk(d int) error {
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("raid: disk %d out of range [0,%d)", d, len(a.disks))
	}
	return nil
}
