package raid

import (
	"fmt"

	"raidrel/internal/gf256"
)

// RAID6RS is an alternative double-parity layout: Reed-Solomon style P+Q
// over GF(2^8) with single-row stripes (P = Σ dᵢ, Q = Σ gⁱ·dᵢ). It
// tolerates any two simultaneous losses like RAID6 (row-diagonal parity)
// but trades XOR-only arithmetic for field multiplications; the two
// implementations cross-validate each other and the benchmark suite
// compares their costs.
const RAID6RS Level = 4

// rsDataDisks returns the number of data columns of an RS array.
func (a *Array) rsDataDisks() int { return len(a.disks) - 2 }

// rsP and rsQ return the parity column indices.
func (a *Array) rsP() int { return len(a.disks) - 2 }
func (a *Array) rsQ() int { return len(a.disks) - 1 }

// writeStripeRS encodes one single-row stripe with P and Q parity.
func (a *Array) writeStripeRS(set int, data [][]byte) error {
	p := make([]byte, a.blockSize)
	q := make([]byte, a.blockSize)
	for i, blk := range data {
		a.writeRaw(i, set, 0, blk)
		xorInto(p, blk)
		gf256.MulAddSlice(q, blk, gf256.Exp(i))
	}
	a.writeRaw(a.rsP(), set, 0, p)
	a.writeRaw(a.rsQ(), set, 0, q)
	return nil
}

// solveRS reconstructs the missing cells of a single-row RS stripe in
// place. cells[0][c] holds column c; missing[0][c] flags erasures.
func (a *Array) solveRS(set int, cells [][][]byte, missing [][]bool) error {
	row := cells[0]
	miss := missing[0]
	k := a.rsDataDisks()
	var gone []int
	for c := range miss {
		if miss[c] {
			gone = append(gone, c)
		}
	}
	switch len(gone) {
	case 0:
		return nil
	case 1, 2:
		// Handled below.
	default:
		return &UnrecoverableError{Set: set, Rows: []int{0}}
	}
	pMissing, qMissing := false, false
	var dataGone []int
	for _, c := range gone {
		switch c {
		case a.rsP():
			pMissing = true
		case a.rsQ():
			qMissing = true
		default:
			dataGone = append(dataGone, c)
		}
	}
	// Helper partial sums over the surviving data columns.
	partialP := func(skip ...int) []byte {
		out := make([]byte, a.blockSize)
		for i := 0; i < k; i++ {
			if contains(skip, i) || miss[i] {
				continue
			}
			xorInto(out, row[i])
		}
		return out
	}
	partialQ := func(skip ...int) []byte {
		out := make([]byte, a.blockSize)
		for i := 0; i < k; i++ {
			if contains(skip, i) || miss[i] {
				continue
			}
			gf256.MulAddSlice(out, row[i], gf256.Exp(i))
		}
		return out
	}
	recomputeParity := func() {
		if pMissing {
			row[a.rsP()] = partialP()
			miss[a.rsP()] = false
		}
		if qMissing {
			row[a.rsQ()] = partialQ()
			miss[a.rsQ()] = false
		}
	}
	switch {
	case len(dataGone) == 0:
		// Only parity lost: recompute from intact data.
		recomputeParity()
	case len(dataGone) == 1 && !pMissing:
		// One data column, P alive: XOR recovery.
		x := dataGone[0]
		rec := partialP(x)
		xorInto(rec, row[a.rsP()])
		row[x] = rec
		miss[x] = false
		recomputeParity()
	case len(dataGone) == 1 && pMissing:
		// One data column and P: recover the data from Q, then P.
		x := dataGone[0]
		rec := partialQ(x)
		xorInto(rec, row[a.rsQ()])         // rec = g^x · d_x
		gf256.MulSlice(rec, gf256.Exp(-x)) // d_x
		row[x] = rec
		miss[x] = false
		recomputeParity()
	default:
		// Two data columns x < y: the classic P+Q solve.
		x, y := dataGone[0], dataGone[1]
		pxy := partialP(x, y)
		xorInto(pxy, row[a.rsP()]) // d_x ⊕ d_y
		qxy := partialQ(x, y)
		xorInto(qxy, row[a.rsQ()]) // g^x d_x ⊕ g^y d_y

		gy := gf256.Exp(y)
		denom := gf256.Add(gf256.Exp(x), gy)
		inv := gf256.Inv(denom)
		dx := make([]byte, a.blockSize)
		copy(dx, qxy)
		gf256.MulAddSlice(dx, pxy, gy) // qxy ⊕ g^y·pxy
		gf256.MulSlice(dx, inv)
		dy := make([]byte, a.blockSize)
		copy(dy, pxy)
		xorInto(dy, dx)
		row[x], row[y] = dx, dy
		miss[x], miss[y] = false, false
		recomputeParity()
	}
	return nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// validateRS checks RS geometry at construction.
func validateRS(disks int) error {
	if disks < 4 {
		return fmt.Errorf("raid: RAID6-RS needs >= 4 disks, got %d", disks)
	}
	if disks-2 > 255 {
		return fmt.Errorf("raid: RAID6-RS supports at most 257 disks, got %d", disks)
	}
	return nil
}
