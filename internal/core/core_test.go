package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"raidrel/internal/sim"
	"raidrel/internal/stats"
)

// reduced returns the base case shrunk for fast tests while preserving the
// qualitative physics.
func reduced(p Params) Params {
	return p
}

func TestBaseCaseValues(t *testing.T) {
	p := BaseCase()
	if p.GroupSize != 8 || p.Redundancy != 1 {
		t.Errorf("structure = %d drives, redundancy %d", p.GroupSize, p.Redundancy)
	}
	if p.MissionHours != 87600 {
		t.Errorf("mission = %v", p.MissionHours)
	}
	if p.TTOp.Scale != 461386 || p.TTOp.Shape != 1.12 || p.TTOp.Location != 0 {
		t.Errorf("TTOp = %+v", p.TTOp)
	}
	if p.TTR.Location != 6 || p.TTR.Scale != 12 || p.TTR.Shape != 2 {
		t.Errorf("TTR = %+v", p.TTR)
	}
	if !p.LatentDefects || p.TTLd.Shape != 1 {
		t.Errorf("TTLd = %+v enabled=%v", p.TTLd, p.LatentDefects)
	}
	// The latent-defect rate must be the Table 1 medium×low cell 1.08e-4.
	if rate := 1 / p.TTLd.Scale; math.Abs(rate-1.08e-4) > 2e-6 {
		t.Errorf("TTLd rate = %v, want ~1.08e-4", rate)
	}
	if !p.Scrub || p.TTScrub.Scale != 168 || p.TTScrub.Shape != 3 {
		t.Errorf("TTScrub = %+v enabled=%v", p.TTScrub, p.Scrub)
	}
}

func TestParamVariantHelpers(t *testing.T) {
	p := BaseCase()
	noLd := p.WithoutLatentDefects()
	if noLd.LatentDefects || noLd.Scrub {
		t.Error("WithoutLatentDefects left processes enabled")
	}
	if !p.LatentDefects {
		t.Error("variant helper mutated the receiver")
	}
	fast := p.WithScrubPeriod(12)
	if !fast.Scrub || fast.TTScrub.Scale != 12 {
		t.Errorf("WithScrubPeriod(12) = %+v", fast.TTScrub)
	}
	if fast.TTScrub.Location >= 12 {
		t.Errorf("scrub location %v not below period", fast.TTScrub.Location)
	}
	none := p.WithScrubPeriod(0)
	if none.Scrub {
		t.Error("WithScrubPeriod(0) should disable scrubbing")
	}
	b := p.WithOpShape(0.8)
	if b.TTOp.Shape != 0.8 || b.TTOp.Scale != p.TTOp.Scale {
		t.Errorf("WithOpShape = %+v", b.TTOp)
	}
}

func TestNewValidation(t *testing.T) {
	bad := BaseCase()
	bad.TTOp.Shape = -1
	if _, err := New(bad); err == nil {
		t.Error("negative shape accepted")
	}
	bad = BaseCase()
	bad.GroupSize = 1
	if _, err := New(bad); err == nil {
		t.Error("single-drive group accepted")
	}
	bad = BaseCase()
	bad.TTLd.Scale = 0
	if _, err := New(bad); err == nil {
		t.Error("zero TTLd scale accepted")
	}
	bad = BaseCase()
	bad.TTScrub.Shape = math.NaN()
	if _, err := New(bad); err == nil {
		t.Error("NaN scrub shape accepted")
	}
}

// The c-c variant without latent defects must track equation 3: ~0.277
// DDFs per 1,000 groups per 10 years is too rare to verify cheaply, so
// this test checks the comparison plumbing at paper scale with a modest
// group count and wide tolerance, plus exact MTTDL values.
func TestCompareWithMTTDLPlumbing(t *testing.T) {
	p := BaseCase().WithoutLatentDefects()
	p.ExponentialOp = true
	p.ExponentialRestore = true
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(2000, 21)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := m.CompareWithMTTDL(r, p.MissionHours)
	if err != nil {
		t.Fatal(err)
	}
	// The MTTDL input uses the nominal MTBF 461,386 h and MTTR 12 h, so
	// the MTTDL must be the paper's ~36,162 years.
	if math.Abs(cmp.MTTDLYears-36162) > 100 {
		t.Errorf("MTTDL = %v years, want ~36,162", cmp.MTTDLYears)
	}
	if cmp.MTTDL <= 0 {
		t.Errorf("expected positive MTTDL count, got %v", cmp.MTTDL)
	}
	if cmp.Simulated < 0 {
		t.Errorf("negative simulated count %v", cmp.Simulated)
	}
}

// The paper's headline: the base case without scrubbing yields on the
// order of 1,000+ DDFs per 1,000 groups in 10 years, versus MTTDL's ~0.3.
// A reduced-iteration run must already show a ratio of several hundred.
func TestHeadlineLatentDefectEffect(t *testing.T) {
	if testing.Short() {
		t.Skip("full-mission base case is slow")
	}
	p := BaseCase().WithScrubPeriod(0)
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(400, 31)
	if err != nil {
		t.Fatal(err)
	}
	tenYear := r.DDFsPer1000GroupsAt(p.MissionHours)
	if tenYear < 700 || tenYear > 2000 {
		t.Errorf("no-scrub 10-year DDFs/1000 groups = %v, paper reports >1,200", tenYear)
	}
	opop, ldop := r.CauseBreakdown()
	if ldop < 50*math.Max(opop, 1) {
		t.Errorf("latent-defect DDFs %v should dwarf op-op %v", ldop, opop)
	}
}

func TestResultCurveAndROCOF(t *testing.T) {
	p := BaseCase().WithScrubPeriod(0)
	p.MissionHours = 30000
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(300, 41)
	if err != nil {
		t.Fatal(err)
	}
	times, vals := r.Curve(25)
	if len(times) != 25 || len(vals) != 25 {
		t.Fatalf("curve sizes %d/%d", len(times), len(vals))
	}
	if times[0] != 0 || times[24] != 30000 {
		t.Errorf("grid endpoints %v..%v", times[0], times[24])
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("cumulative curve decreased")
		}
	}
	rocof, err := r.ROCOF(5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rocof) != 6 {
		t.Fatalf("%d ROCOF windows", len(rocof))
	}
	var total float64
	for _, pt := range rocof {
		total += pt.Count
	}
	if math.Abs(total-vals[24]) > 1e-9 {
		t.Errorf("ROCOF windows sum to %v, curve ends at %v", total, vals[24])
	}
	// The no-scrub latent process must show an increasing ROCOF (Fig. 8).
	if !stats.IsIncreasingTrend(rocof) {
		t.Error("no-scrub ROCOF is not increasing")
	}
}

func TestFirstYearMatchesCurve(t *testing.T) {
	p := BaseCase()
	p.MissionHours = 20000
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(500, 51)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.FirstYearDDFsPer1000(), r.DDFsPer1000GroupsAt(8760); got != want {
		t.Errorf("FirstYear = %v, curve at 8760 = %v", got, want)
	}
}

func TestWithMixedVintages(t *testing.T) {
	vintages := []WeibullSpec{
		{Scale: 4.5444e5, Shape: 1.0987},
		{Scale: 7.5012e4, Shape: 1.4873},
	}
	p := BaseCase().WithMixedVintages(vintages)
	if len(p.SlotTTOp) != p.GroupSize {
		t.Fatalf("%d slot specs", len(p.SlotTTOp))
	}
	if p.SlotTTOp[0] != vintages[0] || p.SlotTTOp[1] != vintages[1] || p.SlotTTOp[2] != vintages[0] {
		t.Error("vintages not cycled across slots")
	}
	if _, err := New(p); err != nil {
		t.Fatalf("mixed-vintage params rejected: %v", err)
	}
	// Clearing works.
	if cleared := p.WithMixedVintages(nil); cleared.SlotTTOp != nil {
		t.Error("WithMixedVintages(nil) did not clear")
	}
}

func TestSlotTTOpValidation(t *testing.T) {
	p := BaseCase()
	p.SlotTTOp = []WeibullSpec{{Scale: 1, Shape: 1}} // wrong length
	if _, err := New(p); err == nil {
		t.Error("mismatched slot specs accepted")
	}
	p = BaseCase()
	p.SlotTTOp = make([]WeibullSpec, p.GroupSize)
	p.SlotTTOp[3] = WeibullSpec{Scale: -1, Shape: 1}
	if _, err := New(p); err == nil {
		t.Error("invalid slot spec accepted")
	}
	// All-zero specs fall back to the shared TTOp.
	p = BaseCase()
	p.SlotTTOp = make([]WeibullSpec, p.GroupSize)
	if _, err := New(p); err != nil {
		t.Errorf("zero-value slot specs rejected: %v", err)
	}
}

// A frail vintage mixed into the group raises fleet risk versus the pure
// healthy group — the architect's question the paper closes with.
func TestMixedVintageRaisesRisk(t *testing.T) {
	base := BaseCase()
	base.MissionHours = 30000
	healthy, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := New(base.WithMixedVintages([]WeibullSpec{
		base.TTOp,
		{Scale: 7.5012e4, Shape: 1.4873}, // the paper's worst vintage
	}))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := healthy.Run(1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := mixed.Run(1500, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := hr.DDFsPer1000GroupsAt(base.MissionHours)
	m := mr.DDFsPer1000GroupsAt(base.MissionHours)
	if m <= h {
		t.Errorf("mixed-vintage risk %v not above healthy %v", m, h)
	}
}

func TestConfidenceInterval(t *testing.T) {
	p := BaseCase()
	p.MissionHours = 20000
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run(2000, 61)
	if err != nil {
		t.Fatal(err)
	}
	point := r.DDFsPer1000GroupsAt(20000)
	ci, err := r.ConfidenceInterval(20000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > point || ci.Hi < point {
		t.Errorf("CI [%v, %v] excludes the point estimate %v", ci.Lo, ci.Hi, point)
	}
	if ci.Hi-ci.Lo <= 0 {
		t.Error("degenerate CI")
	}
	// ~Poisson counts: width should be near 2·1.96·sqrt(point/groups)·1000.
	if ci.Hi-ci.Lo > point {
		t.Errorf("CI width %v implausibly wide for %v", ci.Hi-ci.Lo, point)
	}
	if _, err := r.ConfidenceInterval(20000, 0); err == nil {
		t.Error("level 0 accepted")
	}
}

func TestRunRejectsBadIterations(t *testing.T) {
	m, err := New(BaseCase())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func topoParams() Params {
	return Params{
		GroupSize:    8,
		Redundancy:   1,
		MissionHours: 87600,
		TTOp:         WeibullSpec{Scale: 100000, Shape: 1},
		TTR:          WeibullSpec{Scale: 100, Shape: 1},
		Topology: &TopologySpec{Components: []ComponentSpec{
			{Name: "enclosure", Drives: []int{6, 7},
				TTOp: WeibullSpec{Scale: 200000, Shape: 1}, TTR: WeibullSpec{Scale: 500, Shape: 1}},
			{Name: "expander-a", Parent: "enclosure", Drives: []int{0, 1, 2}, Paths: 2,
				TTOp: WeibullSpec{Scale: 150000, Shape: 1}, TTR: WeibullSpec{Scale: 300, Shape: 1}},
			{Name: "expander-b", Parent: "enclosure", Drives: []int{3, 4, 5},
				TTOp: WeibullSpec{Scale: 150000, Shape: 1}, TTR: WeibullSpec{Scale: 300, Shape: 1}},
		}},
	}
}

// The component tree resolves to effective drive covers: a parent covers
// its own slots plus every descendant's.
func TestTopologySpecTreeResolution(t *testing.T) {
	m, err := New(topoParams())
	if err != nil {
		t.Fatal(err)
	}
	topo := m.SimConfig().Topology
	if topo == nil || len(topo.Components) != 3 {
		t.Fatalf("topology = %+v", topo)
	}
	wantDrives := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7}, // enclosure: own 6,7 + both expander subtrees
		{0, 1, 2},
		{3, 4, 5},
	}
	for i, c := range topo.Components {
		if len(c.Drives) != len(wantDrives[i]) {
			t.Fatalf("component %s covers %v, want %v", c.Name, c.Drives, wantDrives[i])
		}
		for j := range c.Drives {
			if c.Drives[j] != wantDrives[i][j] {
				t.Fatalf("component %s covers %v, want %v", c.Name, c.Drives, wantDrives[i])
			}
		}
	}
	if topo.Components[1].Paths != 2 {
		t.Errorf("expander-a paths = %d, want 2", topo.Components[1].Paths)
	}
}

func TestTopologySpecErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string
	}{
		{"unknown parent", func(p *Params) { p.Topology.Components[1].Parent = "nope" }, "unknown parent"},
		{"self cycle", func(p *Params) { p.Topology.Components[0].Parent = "enclosure" }, "cycle"},
		{"two cycle", func(p *Params) { p.Topology.Components[0].Parent = "expander-a" }, "cycle"},
		{"dup name", func(p *Params) { p.Topology.Components[2].Name = "expander-a" }, "duplicate"},
		{"no name", func(p *Params) { p.Topology.Components[0].Name = "" }, "no name"},
		{"slot range", func(p *Params) { p.Topology.Components[0].Drives = []int{11} }, "outside the group"},
		{"bad dist", func(p *Params) { p.Topology.Components[0].TTOp = WeibullSpec{} }, "TTOp"},
	}
	for _, tc := range cases {
		p := topoParams()
		tc.mut(&p)
		_, err := New(p)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// Coupled topologies cannot combine with per-slot engine features.
	p := topoParams()
	p.VR = sim.VR{Antithetic: true}
	if _, err := New(p); err == nil {
		t.Error("vr+topology accepted")
	}
}

// The JSON wire form round-trips, including the optional tree and paths
// fields, in the snake_case the service API uses.
func TestTopologySpecJSONRoundTrip(t *testing.T) {
	p := topoParams()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"topology"`, `"components"`, `"parent":"enclosure"`, `"paths":2`, `"tt_op"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire form misses %s: %s", want, data)
		}
	}
	var back Params
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Topology == nil || len(back.Topology.Components) != 3 {
		t.Fatalf("round trip lost the topology: %+v", back.Topology)
	}
	if _, err := New(back); err != nil {
		t.Fatalf("round-tripped params invalid: %v", err)
	}

	// Flat params keep their legacy wire form: no topology key at all.
	flat := topoParams()
	flat.Topology = nil
	data, err = json.Marshal(flat)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "topology") {
		t.Errorf("flat params leak a topology key: %s", data)
	}
}

// A coupled model runs end-to-end through Model.Run and surfaces the
// unavailability statistics next to (but never inside) the loss curve.
func TestModelRunWithTopologyUnavailability(t *testing.T) {
	p := Params{
		GroupSize:    4,
		Redundancy:   1,
		MissionHours: 20000,
		TTOp:         WeibullSpec{Scale: 1e9, Shape: 1}, // drives effectively never fail
		TTR:          WeibullSpec{Scale: 100, Shape: 1},
		Topology: &TopologySpec{Components: []ComponentSpec{
			{Name: "enclosure", Drives: []int{0, 1, 2, 3},
				TTOp: WeibullSpec{Scale: 10000, Shape: 1}, TTR: WeibullSpec{Scale: 1000, Shape: 1}},
		}},
	}
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.TotalDDFs != 0 {
		t.Errorf("losses with drives disabled: %d", res.Raw.TotalDDFs)
	}
	if got := res.DDFsPer1000GroupsAt(p.MissionHours); got != 0 {
		t.Errorf("loss curve contaminated by unavailability: %v", got)
	}
	if res.GroupUnavailProbability() <= 0 || res.GroupUnavailProbability() > 1 {
		t.Errorf("P(unavail) = %v", res.GroupUnavailProbability())
	}
	if res.UnavailPer1000Groups() <= 0 {
		t.Errorf("unavail per 1000 = %v", res.UnavailPer1000Groups())
	}
}
