// Package core is the paper's model: a RAID N+1 group whose drives fail
// operationally, silently corrupt data, get rebuilt, and get scrubbed
// according to generalized (three-parameter Weibull) distributions, with
// double-disk failures counted by sequential Monte Carlo simulation. It
// ties the dist, sim, stats, analytic, and markov substrates into the
// public API the examples and experiments consume.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"raidrel/internal/analytic"
	"raidrel/internal/campaign"
	"raidrel/internal/dist"
	"raidrel/internal/sim"
	"raidrel/internal/stats"
)

// WeibullSpec is a three-parameter Weibull in the paper's (γ, η, β)
// notation.
type WeibullSpec struct {
	Location float64 `json:"location,omitempty"` // γ, hours
	Scale    float64 `json:"scale"`              // η, hours
	Shape    float64 `json:"shape"`              // β
}

// Dist materializes the spec.
func (s WeibullSpec) Dist() (dist.Weibull, error) {
	return dist.NewWeibull(s.Shape, s.Scale, s.Location)
}

// ComponentSpec describes one shared hardware component of the group — an
// enclosure, expander, or controller whose failure makes every drive
// behind it inaccessible at once (without destroying the data on them).
type ComponentSpec struct {
	// Name identifies the component; it must be unique within the topology.
	Name string `json:"name"`
	// Parent optionally names the component this one sits behind, forming a
	// tree: a parent's outage takes down its whole subtree, so a parent's
	// effective drive cover is its own Drives plus every descendant's.
	Parent string `json:"parent,omitempty"`
	// Drives lists the drive slots directly attached to this component.
	Drives []int `json:"drives,omitempty"`
	// Paths is the number of redundant instances (dual porting, paired
	// expanders); the component is only down while every instance is down.
	// Zero means one path.
	Paths int `json:"paths,omitempty"`
	// TTOp is the per-instance time-to-failure distribution.
	TTOp WeibullSpec `json:"tt_op"`
	// TTR is the per-instance repair-time distribution.
	TTR WeibullSpec `json:"ttr"`
}

// TopologySpec is the JSON form of the component topology: the shared
// failure domains above the drives. Nil (or an empty component list) is
// the flat, drives-only model of the paper.
type TopologySpec struct {
	Components []ComponentSpec `json:"components"`
}

// lower resolves the component tree — effective drive cover = own drives
// plus every descendant's — and materializes the engine topology. A nil or
// empty spec lowers to nil (flat).
func (t *TopologySpec) lower() (*sim.Topology, error) {
	if t == nil || len(t.Components) == 0 {
		return nil, nil
	}
	idx := make(map[string]int, len(t.Components))
	for i, c := range t.Components {
		if c.Name == "" {
			return nil, fmt.Errorf("core: topology component %d has no name", i)
		}
		if _, dup := idx[c.Name]; dup {
			return nil, fmt.Errorf("core: duplicate topology component %q", c.Name)
		}
		idx[c.Name] = i
	}
	children := make([][]int, len(t.Components))
	for i, c := range t.Components {
		if c.Parent == "" {
			continue
		}
		p, ok := idx[c.Parent]
		if !ok {
			return nil, fmt.Errorf("core: component %q names unknown parent %q", c.Name, c.Parent)
		}
		children[p] = append(children[p], i)
	}

	// Depth-first effective covers with cycle detection; the set semantics
	// deduplicate a slot reachable through several children.
	const (
		unvisited = 0
		visiting  = 1
		doneMark  = 2
	)
	state := make([]int, len(t.Components))
	covers := make([]map[int]bool, len(t.Components))
	var cover func(i int) (map[int]bool, error)
	cover = func(i int) (map[int]bool, error) {
		switch state[i] {
		case visiting:
			return nil, fmt.Errorf("core: topology parent cycle through component %q", t.Components[i].Name)
		case doneMark:
			return covers[i], nil
		}
		state[i] = visiting
		set := make(map[int]bool)
		for _, d := range t.Components[i].Drives {
			set[d] = true
		}
		for _, ch := range children[i] {
			sub, err := cover(ch)
			if err != nil {
				return nil, err
			}
			for d := range sub {
				set[d] = true
			}
		}
		state[i] = doneMark
		covers[i] = set
		return set, nil
	}

	out := &sim.Topology{Components: make([]sim.Component, len(t.Components))}
	for i, c := range t.Components {
		set, err := cover(i)
		if err != nil {
			return nil, err
		}
		drives := make([]int, 0, len(set))
		for d := range set {
			drives = append(drives, d)
		}
		sort.Ints(drives)
		ttop, err := c.TTOp.Dist()
		if err != nil {
			return nil, fmt.Errorf("core: component %q TTOp: %w", c.Name, err)
		}
		ttr, err := c.TTR.Dist()
		if err != nil {
			return nil, fmt.Errorf("core: component %q TTR: %w", c.Name, err)
		}
		out.Components[i] = sim.Component{
			Name:   c.Name,
			Drives: drives,
			Paths:  c.Paths,
			TTOp:   ttop,
			TTR:    ttr,
		}
	}
	return out, nil
}

// Params is the full parameterization of one study — the programmatic form
// of the paper's Table 2 plus the structural knobs (group size, redundancy,
// mission, which processes are enabled).
type Params struct {
	// GroupSize is the total number of drives (the paper's N+1).
	GroupSize int `json:"group_size"`
	// Redundancy is the number of tolerated simultaneous drive losses:
	// 1 models RAID 4/5, 2 models the RAID 6 extension.
	Redundancy int `json:"redundancy"`
	// MissionHours is the simulated horizon (87,600 in the paper).
	MissionHours float64 `json:"mission_hours"`

	// TTOp is the time-to-operational-failure distribution.
	TTOp WeibullSpec `json:"tt_op"`
	// TTR is the time-to-restore distribution.
	TTR WeibullSpec `json:"ttr"`

	// LatentDefects enables the usage-dependent data-corruption process.
	LatentDefects bool `json:"latent_defects,omitempty"`
	// TTLd is the time-to-latent-defect distribution (β = 1 in the paper:
	// corruption arrives at a constant usage-driven rate).
	TTLd WeibullSpec `json:"tt_ld"`

	// Scrub enables background scrubbing of latent defects.
	Scrub bool `json:"scrub,omitempty"`
	// TTScrub is the time from defect creation to scrub correction.
	TTScrub WeibullSpec `json:"tt_scrub"`

	// SlotTTOp optionally gives each drive slot its own operational-failure
	// distribution — a group assembled from mixed manufacturing vintages
	// (Fig. 2). When non-empty its length must equal GroupSize; zero-value
	// entries fall back to TTOp.
	SlotTTOp []WeibullSpec `json:"slot_tt_op,omitempty"`

	// Spares optionally bounds the spare-drive pool (the paper assumes a
	// spare is always available); nil keeps that assumption.
	Spares *sim.SparePolicy `json:"spares,omitempty"`

	// Topology optionally describes the shared hardware components —
	// enclosures, expanders, controllers — the drives sit behind. A
	// component outage makes its drives inaccessible (recoverable on
	// repair, distinct from data loss) and pauses their rebuilds; nil is
	// the flat drives-only model. Coupled topologies run on the event
	// engine only.
	Topology *TopologySpec `json:"topology,omitempty"`

	// Bias optionally enables failure-biased importance sampling: hazards
	// are scaled up by the given factors during sampling and every
	// estimate is reweighted by the likelihood ratio, so rare DDFs are
	// reached with orders of magnitude fewer iterations at unchanged
	// expectation. The zero value is plain Monte Carlo.
	Bias sim.Bias `json:"bias"`

	// VR optionally stacks block-level variance reduction (antithetic
	// stream pairs, stratified first-failure quantiles, analytic control
	// variate) on top of plain or importance-sampled simulation. Any
	// enabled technique routes the run through the batched block engine;
	// the zero value changes nothing.
	VR sim.VR `json:"vr"`

	// Fleet optionally couples each iteration's RAID groups into a fleet
	// sharing a spare pool and a bounded repair crew (Fleet.Groups groups
	// per chronology, at most Fleet.MaxConcurrentRebuilds concurrent
	// rebuilds). Iterations still count groups; heal-backlog statistics
	// accumulate alongside the DDF estimate. Nil keeps the paper's
	// independent-group model. Incompatible with VR, Bias, and Topology.
	Fleet *sim.FleetOptions `json:"fleet,omitempty"`

	// ExponentialOp forces a constant-rate TTOp with the same mean as the
	// Weibull spec (the paper's "c-" variants in Fig. 6).
	ExponentialOp bool `json:"exponential_op,omitempty"`
	// ExponentialRestore forces a constant-rate TTR with the same mean
	// (the "-c" variants).
	ExponentialRestore bool `json:"exponential_restore,omitempty"`
}

// Base case of the paper's Table 2 (§6, reconstructed — see DESIGN.md):
// TTOp Weibull(γ=0, η=461,386, β=1.12); TTR Weibull(γ=6, η=12, β=2);
// TTLd constant rate 1.08e-4/h (medium read-error rate at the low hourly
// read volume of Table 1), i.e. Weibull(γ=0, η=9,259, β=1); TTScrub
// Weibull(γ=6, η=168, β=3).
const (
	// BaseMTBFHours is the characteristic life of the field TTOp fit.
	BaseMTBFHours = 461386
	// BaseTTLdScaleHours is 1/1.08e-4, the Table 1 medium×low cell.
	BaseTTLdScaleHours = 9259
	// BaseMissionHours is the paper's 10-year mission.
	BaseMissionHours = 87600
	// BaseScrubHours is the paper's base-case 168-hour scrub.
	BaseScrubHours = 168
)

// BaseCase returns the paper's base-case parameters: 8 drives, 10-year
// mission, latent defects on, 168-hour scrubbing.
func BaseCase() Params {
	return Params{
		GroupSize:     8,
		Redundancy:    1,
		MissionHours:  BaseMissionHours,
		TTOp:          WeibullSpec{Location: 0, Scale: BaseMTBFHours, Shape: 1.12},
		TTR:           WeibullSpec{Location: 6, Scale: 12, Shape: 2},
		LatentDefects: true,
		TTLd:          WeibullSpec{Location: 0, Scale: BaseTTLdScaleHours, Shape: 1},
		Scrub:         true,
		TTScrub:       WeibullSpec{Location: 6, Scale: BaseScrubHours, Shape: 3},
	}
}

// WithScrubPeriod returns a copy of p scrubbing with characteristic period
// hours (Fig. 9's 12/48/168/336-hour sweep); hours <= 0 disables scrubbing.
func (p Params) WithScrubPeriod(hours float64) Params {
	if hours <= 0 {
		p.Scrub = false
		return p
	}
	p.Scrub = true
	loc := p.TTScrub.Location
	if loc <= 0 {
		loc = 6
	}
	if loc >= hours {
		// Keep the minimum below the characteristic period for very fast
		// scrubs.
		loc = hours / 2
	}
	p.TTScrub = WeibullSpec{Location: loc, Scale: hours, Shape: 3}
	return p
}

// WithoutLatentDefects returns a copy of p with the corruption process
// disabled (the Fig. 6 variants).
func (p Params) WithoutLatentDefects() Params {
	p.LatentDefects = false
	p.Scrub = false
	return p
}

// WithOpShape returns a copy of p with the TTOp shape parameter replaced
// at fixed characteristic life (Fig. 10's β sweep).
func (p Params) WithOpShape(beta float64) Params {
	p.TTOp.Shape = beta
	return p
}

// simConfig lowers Params to the engine configuration.
func (p Params) simConfig() (sim.Config, error) {
	ttop, err := p.TTOp.Dist()
	if err != nil {
		return sim.Config{}, fmt.Errorf("core: TTOp: %w", err)
	}
	ttr, err := p.TTR.Dist()
	if err != nil {
		return sim.Config{}, fmt.Errorf("core: TTR: %w", err)
	}
	trans := sim.Transitions{TTOp: ttop, TTR: ttr}
	if p.ExponentialOp {
		// The paper's constant-rate variants use the nominal MTBF (the
		// characteristic life η fed to equation 3), so the c-c case tracks
		// the MTTDL line.
		e, err := dist.ExponentialFromMean(p.TTOp.Scale)
		if err != nil {
			return sim.Config{}, fmt.Errorf("core: exponential TTOp: %w", err)
		}
		trans.TTOp = e
	}
	if p.ExponentialRestore {
		e, err := dist.ExponentialFromMean(p.TTR.Scale)
		if err != nil {
			return sim.Config{}, fmt.Errorf("core: exponential TTR: %w", err)
		}
		trans.TTR = e
	}
	if p.LatentDefects {
		ttld, err := p.TTLd.Dist()
		if err != nil {
			return sim.Config{}, fmt.Errorf("core: TTLd: %w", err)
		}
		trans.TTLd = ttld
		if p.Scrub {
			scrub, err := p.TTScrub.Dist()
			if err != nil {
				return sim.Config{}, fmt.Errorf("core: TTScrub: %w", err)
			}
			trans.TTScrub = scrub
		}
	}
	topo, err := p.Topology.lower()
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Drives:     p.GroupSize,
		Redundancy: p.Redundancy,
		Mission:    p.MissionHours,
		Trans:      trans,
		Spares:     p.Spares,
		Bias:       p.Bias,
		VR:         p.VR,
		Topology:   topo,
	}
	if len(p.SlotTTOp) > 0 {
		if len(p.SlotTTOp) != p.GroupSize {
			return sim.Config{}, fmt.Errorf("core: %d slot TTOp specs for %d drives",
				len(p.SlotTTOp), p.GroupSize)
		}
		cfg.SlotTTOp = make([]dist.Distribution, p.GroupSize)
		for i, spec := range p.SlotTTOp {
			if spec == (WeibullSpec{}) {
				continue // fall back to the group TTOp
			}
			d, err := spec.Dist()
			if err != nil {
				return sim.Config{}, fmt.Errorf("core: slot %d TTOp: %w", i, err)
			}
			cfg.SlotTTOp[i] = d
		}
	}
	return cfg, nil
}

// WithMixedVintages returns a copy of p whose drives cycle through the
// given vintage TTOp specs (slot i gets vintages[i mod len]).
func (p Params) WithMixedVintages(vintages []WeibullSpec) Params {
	if len(vintages) == 0 {
		p.SlotTTOp = nil
		return p
	}
	slots := make([]WeibullSpec, p.GroupSize)
	for i := range slots {
		slots[i] = vintages[i%len(vintages)]
	}
	p.SlotTTOp = slots
	return p
}

// Model is a runnable study.
type Model struct {
	params Params
	cfg    sim.Config
}

// New validates p and returns a Model.
func New(p Params) (*Model, error) {
	cfg, err := p.simConfig()
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p.Fleet != nil {
		// The fleet wrapper re-validates the group config plus the
		// coupling knobs (size, spare policy, rebuild cap) and rejects the
		// engine features the fleet path cannot honor (VR, bias, coupled
		// topologies).
		if err := p.Fleet.Config(cfg).Validate(); err != nil {
			return nil, err
		}
	}
	return &Model{params: p, cfg: cfg}, nil
}

// Params returns the model's parameters.
func (m *Model) Params() Params { return m.params }

// SimConfig returns the validated engine configuration the model runs —
// for advanced uses such as tracing single chronologies with
// sim.SimulateTraced or swapping in custom engines.
func (m *Model) SimConfig() sim.Config { return m.cfg }

// engine returns the engine the model's configuration calls for: the
// batched block engine whenever variance reduction (or an explicit block
// size) is requested, otherwise nil for the runner's default.
func (m *Model) engine() sim.Engine {
	if m.cfg.VR.Enabled() || m.cfg.VR.BlockSize > 0 {
		return sim.BlockEngine{}
	}
	return nil
}

// Run simulates the given number of independent RAID groups with the given
// seed and returns the aggregated result. Iterations is the paper's "RAID
// groups monitored": 1,000 groups × 10 years in the headline numbers. For
// fleet models the count is rounded up to whole fleet chronologies.
func (m *Model) Run(iterations int, seed uint64) (*Result, error) {
	if f := m.params.Fleet; f != nil && f.Groups > 1 && iterations%f.Groups != 0 {
		iterations += f.Groups - iterations%f.Groups
	}
	res, err := sim.RunSparse(sim.RunSpec{
		Config:     m.cfg,
		Iterations: iterations,
		Seed:       seed,
		Engine:     m.engine(),
		Fleet:      m.params.Fleet,
	})
	if err != nil {
		return nil, err
	}
	return m.newResult(res, iterations)
}

// newResult wraps a raw run in the derived-statistics view. Importance-
// sampled runs feed the weighted MCF; for unbiased runs the weight slice
// is nil and the computation is bit-identical to the unweighted one.
func (m *Model) newResult(res *sim.SparseResult, groups int) (*Result, error) {
	times, weights := res.TimesAndWeights()
	mcf, err := stats.MCFFromWeightedTimes(times, weights, groups)
	if err != nil {
		return nil, fmt.Errorf("core: mcf: %w", err)
	}
	return &Result{
		Groups:  groups,
		Mission: m.params.MissionHours,
		Raw:     res,
		mcf:     mcf,
	}, nil
}

// AdaptiveOptions steers Model.RunAdaptive. The zero value is not
// runnable: at least one stopping rule (TargetRelErr, MaxIterations, or
// MaxDuration) must be set.
type AdaptiveOptions struct {
	// TargetRelErr stops once the Wilson CI on the per-group DDF
	// probability reaches this relative half-width (e.g. 0.1 for ±10%);
	// 0 disables the precision rule.
	TargetRelErr float64
	// Confidence is the CI level (0 = 0.95).
	Confidence float64
	// BatchSize is iterations per batch (0 = campaign.DefaultBatchSize).
	BatchSize int
	// MinIterations guards against lucky early stops (0 = one batch).
	MinIterations int
	// MaxIterations is a hard iteration budget (0 = unlimited).
	MaxIterations int
	// MaxDuration is a wall-clock budget (0 = unlimited).
	MaxDuration time.Duration
	// Checkpoint, when set, is written atomically after every batch.
	Checkpoint string
	// Resume, when set, restores a checkpoint before running; further
	// checkpoints go to the same path unless Checkpoint overrides it.
	Resume string
	// Workers is per-batch parallelism (0 = GOMAXPROCS).
	Workers int
	// Progress receives telemetry after each batch (nil = silent).
	Progress campaign.Progress
}

// AdaptiveResult couples the usual derived-statistics view with the
// campaign telemetry (iteration count, CI, stopping reason).
type AdaptiveResult struct {
	*Result
	Campaign *campaign.Result
}

// RunAdaptive runs an adaptively sized Monte Carlo campaign: batches of
// iterations until the DDF-rate confidence interval is tight enough or a
// budget runs out, with optional checkpoint/resume and progress
// telemetry. Results are bit-for-bit identical to Model.Run at the same
// final iteration count — batching, worker count, and resume points do
// not perturb the RNG stream assignment.
func (m *Model) RunAdaptive(ctx context.Context, seed uint64, opts AdaptiveOptions) (*AdaptiveResult, error) {
	cres, err := campaign.Run(ctx, campaign.Spec{
		Config:        m.cfg,
		Seed:          seed,
		Workers:       opts.Workers,
		Engine:        m.engine(),
		BatchSize:     opts.BatchSize,
		MinIterations: opts.MinIterations,
		TargetRelErr:  opts.TargetRelErr,
		Confidence:    opts.Confidence,
		MaxIterations: opts.MaxIterations,
		MaxDuration:   opts.MaxDuration,
		Checkpoint:    opts.Checkpoint,
		Resume:        opts.Resume,
		Progress:      opts.Progress,
		Fleet:         m.params.Fleet,
	})
	if err != nil {
		return nil, err
	}
	if cres.Iterations == 0 {
		// Cancelled before the first batch finished: there is no sample
		// to build statistics from.
		return nil, fmt.Errorf("core: adaptive campaign cancelled before any iterations completed")
	}
	res, err := m.newResult(cres.Run, cres.Iterations)
	if err != nil {
		return nil, err
	}
	return &AdaptiveResult{Result: res, Campaign: cres}, nil
}

// Result aggregates one Monte Carlo campaign. Raw is the sparse event
// index: only the groups that produced DDFs are materialized, so a
// million-group campaign costs memory proportional to its (rare) events.
type Result struct {
	Groups  int
	Mission float64
	Raw     *sim.SparseResult
	mcf     []stats.MCFPoint
}

// DDFsPer1000GroupsAt returns the expected cumulative DDFs per 1,000 RAID
// groups by time t — the y-axis of the paper's Figs. 6, 7, 9, and 10.
func (r *Result) DDFsPer1000GroupsAt(t float64) float64 {
	return stats.MCFAt(r.mcf, t) * 1000
}

// Curve samples the cumulative DDFs-per-1,000-groups on an even grid.
func (r *Result) Curve(points int) (times, ddfsPer1000 []float64) {
	times, vals := stats.CumulativeCurve(r.mcf, r.Mission, points)
	for i := range vals {
		vals[i] *= 1000
	}
	return times, vals
}

// ROCOF returns windowed DDF counts per 1,000 groups (the paper's Fig. 8).
func (r *Result) ROCOF(window float64) ([]stats.ROCOFPoint, error) {
	points, err := stats.ROCOF(r.mcf, r.Mission, window)
	if err != nil {
		return nil, err
	}
	for i := range points {
		points[i].Rate *= 1000
		points[i].Count *= 1000
	}
	return points, nil
}

// FirstYearDDFsPer1000 returns the cumulative count at 8,760 hours, the
// quantity tabulated in Table 3.
func (r *Result) FirstYearDDFsPer1000() float64 {
	return r.DDFsPer1000GroupsAt(analytic.HoursPerYear)
}

// UnavailPer1000Groups returns the expected unavailability onsets per
// 1,000 RAID groups over the mission — episodes where a shared-component
// outage pushed the group past its redundancy without losing data. The
// count is importance-weighted like CauseBreakdown; zero for flat
// topologies.
func (r *Result) UnavailPer1000Groups() float64 {
	return r.Raw.WeightedUnavailTotal() * 1000 / float64(r.Groups)
}

// GroupUnavailProbability returns the fraction of simulated groups that
// experienced at least one unavailability episode; zero for flat
// topologies.
func (r *Result) GroupUnavailProbability() float64 {
	return float64(r.Raw.GroupsWithUnavail()) / float64(r.Groups)
}

// Fleet returns the heal-backlog tally of a fleet run — repair-queue
// depth, per-rebuild waits, and worst degradation exposure accumulated
// across chronologies — or nil for independent-group runs.
func (r *Result) Fleet() *sim.FleetTally {
	return r.Raw.Fleet
}

// CauseBreakdown returns the OpOp and LdOp counts per 1,000 groups over
// the full mission. The counts are importance-weighted; for unbiased runs
// (every weight exactly 1) they equal the raw integer tallies.
func (r *Result) CauseBreakdown() (opop, ldop float64) {
	scale := 1000 / float64(r.Groups)
	_, wOpOp, wLdOp := r.Raw.WeightedCauseTotals()
	return wOpOp * scale, wLdOp * scale
}

// ConfidenceInterval returns a normal-approximation confidence interval
// (e.g. level 0.95) for the DDFs-per-1,000-groups estimate at time t,
// built from the per-group counts. Only the groups with events are
// scanned — O(events), not O(groups·events); the event-free groups enter
// the estimate as exact zeros.
func (r *Result) ConfidenceInterval(t float64, level float64) (stats.Interval, error) {
	ci, err := stats.NormalMeanCISparse(r.Raw.GroupCounts(t), r.Groups, level)
	if err != nil {
		return stats.Interval{}, fmt.Errorf("core: confidence interval: %w", err)
	}
	ci.Lo *= 1000
	ci.Hi *= 1000
	return ci, nil
}

// MTTDLComparison contrasts a simulated count with the MTTDL estimate at
// the same horizon.
type MTTDLComparison struct {
	Horizon    float64 // hours
	Simulated  float64 // DDFs per 1,000 groups from the model
	MTTDL      float64 // DDFs per 1,000 groups from equation 3
	Ratio      float64 // Simulated / MTTDL
	MTTDLYears float64 // the MTTDL itself, in years
}

// CompareWithMTTDL computes the Table 3 style ratio at the given horizon.
// The MTTDL input uses the nominal MTBF and MTTR (the characteristic
// lives), exactly how the paper feeds equation 1 in its equation 3 worked
// example.
func (m *Model) CompareWithMTTDL(r *Result, horizon float64) (MTTDLComparison, error) {
	in := analytic.MTTDLInput{
		N:    m.params.GroupSize - 1,
		MTBF: m.params.TTOp.Scale,
		MTTR: m.params.TTR.Scale,
	}
	mttdl, err := analytic.MTTDL(in)
	if err != nil {
		return MTTDLComparison{}, err
	}
	expected, err := analytic.ExpectedDDFs(in, horizon, 1000)
	if err != nil {
		return MTTDLComparison{}, err
	}
	simulated := r.DDFsPer1000GroupsAt(horizon)
	ratio := math.Inf(1)
	if expected > 0 {
		ratio = simulated / expected
	}
	return MTTDLComparison{
		Horizon:    horizon,
		Simulated:  simulated,
		MTTDL:      expected,
		Ratio:      ratio,
		MTTDLYears: analytic.Years(mttdl),
	}, nil
}
