package stats

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

func TestPairedMeanCIValidation(t *testing.T) {
	if _, err := PairedMeanCI([]float64{1}, []float64{1, 2}, 0.95); err == nil {
		t.Error("unequal pair lengths accepted")
	}
	if _, err := PairedMeanCI([]float64{1}, []float64{2}, 0.95); err == nil {
		t.Error("single pair accepted")
	}
}

// TestPairedMeanCIShrinksForAntitheticPairs: for negatively correlated
// pairs the paired interval must be narrower than the naive interval over
// the pooled observations pretending independence — that is the entire
// point of antithetic sampling — while still covering the true mean.
func TestPairedMeanCIShrinksForAntitheticPairs(t *testing.T) {
	r := rng.New(31)
	const n = 4000
	a := make([]float64, n)
	b := make([]float64, n)
	pooled := make([]float64, 0, 2*n)
	for i := range a {
		u := r.Float64()
		a[i] = u * u // a monotone transform keeps the antithetic correlation negative
		v := 1 - u
		b[i] = v * v
		pooled = append(pooled, a[i], b[i])
	}
	paired, err := PairedMeanCI(a, b, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NormalMeanCI(pooled, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	const want = 1.0 / 3
	if paired.Lo > want || paired.Hi < want {
		t.Fatalf("paired CI [%v, %v] misses the true mean %v", paired.Lo, paired.Hi, want)
	}
	if (paired.Hi - paired.Lo) >= (naive.Hi-naive.Lo)/2 {
		t.Fatalf("paired CI width %v not well below naive width %v", paired.Hi-paired.Lo, naive.Hi-naive.Lo)
	}
}

// TestControlVariateCIUnbiased: across many replications, the adjusted
// estimator's empirical mean must sit within a few replication standard
// errors of the true mean, and the 95% interval must cover it at roughly
// the nominal rate.
func TestControlVariateCIUnbiased(t *testing.T) {
	r := rng.New(7)
	const (
		reps = 400
		n    = 500
		ez   = 0.5 // control z ~ U(0,1)
	)
	trueMean := 1.0 // y = 1 + (z - 1/2) + noise
	sumCenter := 0.0
	covered := 0
	ys := make([]float64, n)
	zs := make([]float64, n)
	for rep := 0; rep < reps; rep++ {
		for i := range ys {
			z := r.Float64()
			zs[i] = z
			ys[i] = 1 + (z - 0.5) + 0.2*r.NormFloat64()
		}
		iv, coeff, err := ControlVariateCI(ys, zs, ez, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if coeff < 0.8 || coeff > 1.2 {
			t.Fatalf("rep %d: fitted coefficient %v far from the true 1.0", rep, coeff)
		}
		center := (iv.Lo + iv.Hi) / 2
		sumCenter += center
		if iv.Lo <= trueMean && trueMean <= iv.Hi {
			covered++
		}
	}
	empMean := sumCenter / reps
	// Replication s.e. of the adjusted estimator ≈ 0.2/√n per rep.
	se := 0.2 / math.Sqrt(float64(n)) / math.Sqrt(float64(reps))
	if math.Abs(empMean-trueMean) > 5*se {
		t.Fatalf("adjusted estimator mean %v is %v s.e. from the truth", empMean, math.Abs(empMean-trueMean)/se)
	}
	if covered < reps*88/100 {
		t.Fatalf("95%% interval covered the truth in only %d/%d replications", covered, reps)
	}
}

// TestControlVariateCINeverWidens is the algebraic guarantee: whatever the
// sample, the adjusted interval is no wider than the plain normal interval
// over the same ys — the residual variance Syy(1-r²) cannot exceed Syy.
func TestControlVariateCINeverWidens(t *testing.T) {
	r := rng.New(12)
	ys := make([]float64, 200)
	zs := make([]float64, 200)
	for trial := 0; trial < 50; trial++ {
		for i := range ys {
			ys[i] = r.NormFloat64()
			switch trial % 3 {
			case 0:
				zs[i] = r.Float64() // independent control
			case 1:
				zs[i] = ys[i] + 0.1*r.NormFloat64() // strong control
			default:
				zs[i] = 3.25 // degenerate constant control
			}
		}
		adj, _, err := ControlVariateCI(ys, zs, 0.5, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NormalMeanCI(ys, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		const slack = 1e-12
		if (adj.Hi - adj.Lo) > (plain.Hi-plain.Lo)*(1+slack) {
			t.Fatalf("trial %d: adjusted width %v exceeds plain width %v", trial, adj.Hi-adj.Lo, plain.Hi-plain.Lo)
		}
	}
}

// TestCVAccumMatchesBatch: the online accumulator must agree with direct
// two-pass moment computation to floating-point noise.
func TestCVAccumMatchesBatch(t *testing.T) {
	r := rng.New(99)
	var acc CVAccum
	ys := make([]float64, 1000)
	zs := make([]float64, 1000)
	for i := range ys {
		ys[i] = 10 + r.NormFloat64()
		zs[i] = 0.3*ys[i] + r.Float64()
		acc.Add(ys[i], zs[i])
	}
	meanY, meanZ := Mean(ys), Mean(zs)
	var syy, szz, syz float64
	for i := range ys {
		syy += (ys[i] - meanY) * (ys[i] - meanY)
		szz += (zs[i] - meanZ) * (zs[i] - meanZ)
		syz += (ys[i] - meanY) * (zs[i] - meanZ)
	}
	approx := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}
	if !approx(acc.MeanY(), meanY) || !approx(acc.MeanZ(), meanZ) {
		t.Fatalf("online means (%v, %v) vs batch (%v, %v)", acc.MeanY(), acc.MeanZ(), meanY, meanZ)
	}
	if !approx(acc.Coeff(), syz/szz) {
		t.Fatalf("online coefficient %v vs batch %v", acc.Coeff(), syz/szz)
	}
	if acc.N() != 1000 {
		t.Fatalf("N = %d", acc.N())
	}
}

// TestCVAccumDegenerate: a constant control must yield coefficient 0 and
// fall back to the plain interval rather than dividing by zero.
func TestCVAccumDegenerate(t *testing.T) {
	var acc CVAccum
	for i := 0; i < 10; i++ {
		acc.Add(float64(i), 2.5)
	}
	if acc.Coeff() != 0 {
		t.Fatalf("constant control fitted coefficient %v, want 0", acc.Coeff())
	}
	iv, err := acc.Interval(2.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		t.Fatal("degenerate control produced a NaN interval")
	}
}

// TestCVAccumR2: r² must match the batch formula, bind the adjusted
// interval's width to the plain one as width·√(1-r²), and collapse to the
// degenerate 0 when either side has no variance (and cap at 1 for an exact
// linear control).
func TestCVAccumR2(t *testing.T) {
	r := rng.New(7)
	var acc CVAccum
	ys := make([]float64, 500)
	zs := make([]float64, 500)
	for i := range ys {
		ys[i] = r.NormFloat64()
		zs[i] = 0.7*ys[i] + 0.5*r.NormFloat64()
		acc.Add(ys[i], zs[i])
	}
	meanY, meanZ := Mean(ys), Mean(zs)
	var syy, szz, syz float64
	for i := range ys {
		syy += (ys[i] - meanY) * (ys[i] - meanY)
		szz += (zs[i] - meanZ) * (zs[i] - meanZ)
		syz += (ys[i] - meanY) * (zs[i] - meanZ)
	}
	want := syz * syz / (syy * szz)
	if got := acc.R2(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("R2 = %v, batch %v", got, want)
	}
	if got := acc.R2(); got <= 0 || got >= 1 {
		t.Fatalf("R2 = %v outside (0, 1) for a noisy linear control", got)
	}

	// Width relation: adjusted half-width = plain half-width·√(1-r²).
	adj, err := acc.Interval(0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NormalMeanCI(ys, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	wantW := (plain.Hi - plain.Lo) * math.Sqrt(1-acc.R2())
	if gotW := adj.Hi - adj.Lo; math.Abs(gotW-wantW) > 1e-9*(1+wantW) {
		t.Fatalf("adjusted width %v, want plain·sqrt(1-r²) = %v", gotW, wantW)
	}

	// Degenerate sides.
	var flat CVAccum
	for i := 0; i < 10; i++ {
		flat.Add(float64(i), 4.0)
	}
	if flat.R2() != 0 {
		t.Fatalf("constant control R2 = %v, want 0", flat.R2())
	}
	var exact CVAccum
	for i := 0; i < 10; i++ {
		exact.Add(float64(i), 2*float64(i)+1)
	}
	if got := exact.R2(); got > 1 || got < 1-1e-12 {
		t.Fatalf("exact linear control R2 = %v, want 1", got)
	}
}
