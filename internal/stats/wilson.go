package stats

import (
	"fmt"
	"math"
)

// WilsonCI returns the Wilson score interval for a binomial proportion:
// `successes` out of `trials` at the given confidence level (e.g. 0.95).
// Unlike the normal approximation it never escapes [0, 1] and stays
// informative at zero counts, which makes it the right interval for
// rare-event Monte Carlo — the per-group DDF probability of a campaign is
// often of order 1e-4, where mean ± z·s/√n collapses or goes negative.
func WilsonCI(successes, trials int, level float64) (Interval, error) {
	if trials < 1 {
		return Interval{}, fmt.Errorf("stats: wilson interval needs >= 1 trial, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return Interval{}, fmt.Errorf("stats: %d successes outside [0, %d]", successes, trials)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	z := normalQuantile(0.5 + level/2)
	n := float64(trials)
	p := float64(successes) / n
	z2n := z * z / n
	center := (p + z2n/2) / (1 + z2n)
	half := z / (1 + z2n) * math.Sqrt(p*(1-p)/n+z2n/(4*n))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi, Level: level}, nil
}

// RelativeHalfWidth reports the interval's half-width relative to its
// midpoint — the campaign orchestrator's stopping statistic. It returns
// +Inf when the midpoint is zero (no events observed yet: the estimate
// carries no relative precision at all).
func (iv Interval) RelativeHalfWidth() float64 {
	mid := (iv.Lo + iv.Hi) / 2
	if mid <= 0 {
		return math.Inf(1)
	}
	return (iv.Hi - iv.Lo) / 2 / mid
}
