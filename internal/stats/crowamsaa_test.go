package stats

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

// samplePowerLaw draws one system's event times from an NHPP with
// m(t) = lambda t^beta by inverting the cumulative intensity.
func samplePowerLaw(lambda, beta, horizon float64, r *rng.RNG) []float64 {
	var out []float64
	m := 0.0
	for {
		m += r.ExpFloat64()
		t := math.Pow(m/lambda, 1/beta)
		if t > horizon {
			return out
		}
		out = append(out, t)
	}
}

func TestFitPowerLawRecovery(t *testing.T) {
	r := rng.New(71)
	cases := []struct{ lambda, beta float64 }{
		{0.001, 1.0},
		{0.0005, 1.3},
		{0.01, 0.8},
	}
	const horizon, systems = 87600.0, 400
	for _, c := range cases {
		events := make([][]float64, systems)
		for i := range events {
			events[i] = samplePowerLaw(c.lambda, c.beta, horizon, r)
		}
		fit, err := FitPowerLaw(events, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Beta-c.beta)/c.beta > 0.05 {
			t.Errorf("beta = %v, want ~%v", fit.Beta, c.beta)
		}
		// The fitted MCF at the horizon should match the true expectation.
		wantM := c.lambda * math.Pow(horizon, c.beta)
		if math.Abs(fit.MCFAt(horizon)-wantM)/wantM > 0.1 {
			t.Errorf("m(T) = %v, want ~%v", fit.MCFAt(horizon), wantM)
		}
	}
}

func TestFitPowerLawValidation(t *testing.T) {
	if _, err := FitPowerLaw(nil, 100); err == nil {
		t.Error("no systems accepted")
	}
	if _, err := FitPowerLaw([][]float64{{1}}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := FitPowerLaw([][]float64{{1}}, 100); err == nil {
		t.Error("single event accepted")
	}
	if _, err := FitPowerLaw([][]float64{{1, 200}}, 100); err == nil {
		t.Error("event beyond horizon accepted")
	}
	if _, err := FitPowerLaw([][]float64{{0, 1}}, 100); err == nil {
		t.Error("zero event time accepted")
	}
	if _, err := FitPowerLaw([][]float64{{100, 100}}, 100); err == nil {
		t.Error("all-at-horizon accepted")
	}
}

func TestIntensityShape(t *testing.T) {
	grow := PowerLawFit{Beta: 1.5, Lambda: 1e-5, Events: 100}
	if grow.Intensity(1000) >= grow.Intensity(10000) {
		t.Error("beta > 1 intensity should increase")
	}
	improve := PowerLawFit{Beta: 0.7, Lambda: 1e-3, Events: 100}
	if improve.Intensity(1000) <= improve.Intensity(10000) {
		t.Error("beta < 1 intensity should decrease")
	}
	if grow.MCFAt(-5) != 0 || grow.Intensity(0) != 0 {
		t.Error("non-positive times should give zero")
	}
}

func TestGrowthTestZ(t *testing.T) {
	r := rng.New(72)
	const horizon, systems = 87600.0, 300
	// Deteriorating process: strongly positive z.
	grow := make([][]float64, systems)
	for i := range grow {
		grow[i] = samplePowerLaw(1e-4, 1.4, horizon, r)
	}
	gf, err := FitPowerLaw(grow, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if z := GrowthTestZ(gf); z < 3 {
		t.Errorf("deteriorating process z = %v, want > 3", z)
	}
	// HPP: |z| small most of the time.
	hpp := make([][]float64, systems)
	for i := range hpp {
		hpp[i] = samplePowerLaw(5e-5, 1.0, horizon, r)
	}
	hf, err := FitPowerLaw(hpp, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if z := GrowthTestZ(hf); math.Abs(z) > 3 {
		t.Errorf("HPP z = %v, want |z| < 3", z)
	}
}
