package stats

import (
	"fmt"
	"math"
	"sort"

	"raidrel/internal/rng"
)

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// BootstrapMeanCI computes a percentile-bootstrap confidence interval for
// the mean of the sample using resamples drawn from r.
func BootstrapMeanCI(sample []float64, level float64, resamples int, r *rng.RNG) (Interval, error) {
	return bootstrapCI(sample, level, resamples, r, Mean)
}

// BootstrapCI computes a percentile-bootstrap confidence interval for an
// arbitrary statistic of the sample.
func BootstrapCI(sample []float64, level float64, resamples int, r *rng.RNG,
	statistic func([]float64) float64) (Interval, error) {
	return bootstrapCI(sample, level, resamples, r, statistic)
}

func bootstrapCI(sample []float64, level float64, resamples int, r *rng.RNG,
	statistic func([]float64) float64) (Interval, error) {
	if len(sample) == 0 {
		return Interval{}, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: need >= 10 resamples, got %d", resamples)
	}
	if r == nil {
		return Interval{}, fmt.Errorf("stats: nil RNG")
	}
	stats := make([]float64, resamples)
	buf := make([]float64, len(sample))
	for i := range stats {
		for j := range buf {
			buf[j] = sample[r.Intn(len(sample))]
		}
		stats[i] = statistic(buf)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	return Interval{
		Lo:    Quantile(stats, alpha),
		Hi:    Quantile(stats, 1-alpha),
		Level: level,
	}, nil
}

// NormalMeanCI returns the normal-approximation confidence interval for the
// mean of the sample: mean ± z·s/√n. Adequate for the large Monte Carlo
// counts the experiments use.
func NormalMeanCI(sample []float64, level float64) (Interval, error) {
	if len(sample) < 2 {
		return Interval{}, fmt.Errorf("stats: need >= 2 observations, got %d", len(sample))
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	s := Summarize(sample)
	z := normalQuantile(0.5 + level/2)
	half := z * s.StdDev / math.Sqrt(float64(s.N))
	return Interval{Lo: s.Mean - half, Hi: s.Mean + half, Level: level}, nil
}

// normalQuantile is a compact rational approximation of the standard normal
// inverse CDF (Odeh & Evans style), sufficient for CI z-scores.
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	if p < 0.5 {
		return -normalQuantile(1 - p)
	}
	t := math.Sqrt(-2 * math.Log(1-p))
	// Abramowitz & Stegun 26.2.23.
	num := 2.515517 + t*(0.802853+t*0.010328)
	den := 1 + t*(1.432788+t*(0.189269+t*0.001308))
	return t - num/den
}
