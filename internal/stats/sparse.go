package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sparse entry points: the Monte Carlo pipeline stores only the groups
// that produced events (a few hundred out of millions in the paper's
// rare-event regime), so the estimators here take pooled event times plus
// an explicit total system count instead of per-system [][]float64 — the
// empty systems are implied, and cost nothing.

// MCFFromTimes computes the mean cumulative function from the pooled event
// times of nSystems systems, already sorted ascending. It is the sparse
// counterpart of MCF: identical output, O(events) instead of
// O(systems + events).
func MCFFromTimes(times []float64, nSystems int) ([]MCFPoint, error) {
	if nSystems <= 0 {
		return nil, fmt.Errorf("stats: MCF needs positive system count, got %d", nSystems)
	}
	out := make([]MCFPoint, 0, len(times))
	prev := math.Inf(-1)
	for i, t := range times {
		if math.IsNaN(t) || t < 0 {
			return nil, fmt.Errorf("stats: invalid event time %v", t)
		}
		if t < prev {
			return nil, fmt.Errorf("stats: event times not ascending at index %d", i)
		}
		prev = t
		out = append(out, MCFPoint{Time: t, MCF: float64(i+1) / float64(nSystems)})
	}
	return out, nil
}

// FitPowerLawTimes computes the time-terminated Crow MLE from the pooled
// event times of nSystems systems observed over [0, horizon] — the sparse
// counterpart of FitPowerLaw. The system count enters the scale estimate
// (λ̂ = N / (k · horizonᵝ)), so it must include the event-free systems.
func FitPowerLawTimes(times []float64, nSystems int, horizon float64) (PowerLawFit, error) {
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return PowerLawFit{}, fmt.Errorf("stats: invalid horizon %v", horizon)
	}
	if nSystems <= 0 {
		return PowerLawFit{}, fmt.Errorf("stats: no systems")
	}
	n := 0
	var sumLog float64
	for _, t := range times {
		if !(t > 0) || t > horizon {
			return PowerLawFit{}, fmt.Errorf("stats: event time %v outside (0, %v]", t, horizon)
		}
		n++
		sumLog += math.Log(horizon / t)
	}
	return powerLawFromSums(n, sumLog, nSystems, horizon)
}

// NormalMeanCISparse computes NormalMeanCI over a sample of n observations
// of which only the nonzero values are materialized; the remaining
// n-len(nonzero) observations are exactly zero. Zeros contribute nothing
// to the mean's float sum, so the midpoint matches the dense computation
// bit-for-bit; the variance folds the zero terms in closed form
// ((n-k)·mean²), which can differ from the dense sum in the last ulp.
func NormalMeanCISparse(nonzero []float64, n int, level float64) (Interval, error) {
	if n < 2 {
		return Interval{}, fmt.Errorf("stats: need >= 2 observations, got %d", n)
	}
	if len(nonzero) > n {
		return Interval{}, fmt.Errorf("stats: %d nonzero values exceed %d observations", len(nonzero), n)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	// Sum in sorted order, exactly as Summarize does for the dense vector
	// (where the implied zeros sort first and add nothing).
	s := make([]float64, len(nonzero))
	copy(s, nonzero)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	ss += float64(n-len(s)) * mean * mean
	variance := ss / float64(n-1)
	z := normalQuantile(0.5 + level/2)
	half := z * math.Sqrt(variance) / math.Sqrt(float64(n))
	return Interval{Lo: mean - half, Hi: mean + half, Level: level}, nil
}
