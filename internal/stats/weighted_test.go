package stats

import (
	"math"
	"testing"
)

func TestESS(t *testing.T) {
	if got := ESS(nil); got != 0 {
		t.Errorf("ESS(nil) = %v, want 0", got)
	}
	if got := ESS([]float64{0, 0}); got != 0 {
		t.Errorf("ESS(zeros) = %v, want 0", got)
	}
	// Equal weights: ESS equals the count regardless of magnitude.
	if got := ESS([]float64{0.25, 0.25, 0.25, 0.25}); math.Abs(got-4) > 1e-12 {
		t.Errorf("ESS(equal) = %v, want 4", got)
	}
	// One dominant weight: ESS collapses toward 1.
	if got := ESS([]float64{100, 1e-6, 1e-6}); got > 1.001 {
		t.Errorf("ESS(dominant) = %v, want ~1", got)
	}
	// Hand-computed: (1+3)² / (1+9) = 1.6.
	if got := ESS([]float64{1, 3}); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("ESS([1 3]) = %v, want 1.6", got)
	}
}

func TestWeightedBernoulliCI(t *testing.T) {
	// All-unit weights must agree exactly with the sparse normal CI over
	// 0/1 observations (the unbiased estimator's normal approximation).
	ones := []float64{1, 1, 1}
	want, err := NormalMeanCISparse(ones, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightedBernoulliCI(ones, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("unit-weight CI %+v != sparse normal CI %+v", got, want)
	}
	mid := (got.Lo + got.Hi) / 2
	if math.Abs(mid-0.03) > 1e-12 {
		t.Errorf("midpoint %v, want 0.03", mid)
	}

	for _, bad := range [][]float64{{math.NaN()}, {math.Inf(1)}, {-1}} {
		if _, err := WeightedBernoulliCI(bad, 10, 0.95); err == nil {
			t.Errorf("invalid weight %v accepted", bad)
		}
	}
}

func TestMCFFromWeightedTimes(t *testing.T) {
	times := []float64{10, 20, 30}
	weights := []float64{2, 0.5, 1}
	pts, err := MCFFromWeightedTimes(times, weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.2, 0.25, 0.35}
	for i, p := range pts {
		if p.Time != times[i] || math.Abs(p.MCF-want[i]) > 1e-12 {
			t.Errorf("point %d = %+v, want (%v, %v)", i, p, times[i], want[i])
		}
	}

	// Unit weights reduce exactly to the unweighted MCF.
	unit, err := MCFFromWeightedTimes(times, []float64{1, 1, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MCFFromTimes(times, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if unit[i] != plain[i] {
			t.Errorf("unit-weight point %d = %+v != unweighted %+v", i, unit[i], plain[i])
		}
	}

	// Nil weights delegate to the unweighted path.
	nilw, err := MCFFromWeightedTimes(times, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if nilw[i] != plain[i] {
			t.Errorf("nil-weight point %d differs from unweighted", i)
		}
	}

	// Validation.
	if _, err := MCFFromWeightedTimes(times, []float64{1, 2}, 7); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MCFFromWeightedTimes(times, []float64{1, -1, 1}, 7); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := MCFFromWeightedTimes([]float64{5, 1}, []float64{1, 1}, 7); err == nil {
		t.Error("unsorted times accepted")
	}
	if _, err := MCFFromWeightedTimes(times, weights, 0); err == nil {
		t.Error("zero system count accepted")
	}
}
