package stats

import (
	"math"
	"testing"
)

func TestWilsonCIKnownValues(t *testing.T) {
	// Classical check: 10 successes in 100 trials at 95% gives the
	// well-tabulated Wilson interval [0.0552, 0.1744] (e.g. Newcombe 1998).
	iv, err := WilsonCI(10, 100, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Lo-0.0552) > 0.002 || math.Abs(iv.Hi-0.1744) > 0.002 {
		t.Errorf("WilsonCI(10, 100, 0.95) = [%.4f, %.4f], want ~[0.0552, 0.1744]", iv.Lo, iv.Hi)
	}
	if iv.Level != 0.95 {
		t.Errorf("level = %v", iv.Level)
	}
}

func TestWilsonCIZeroSuccesses(t *testing.T) {
	// Rare-event regime: zero observed events must still give a finite,
	// non-degenerate upper bound (the "rule of three" neighbourhood).
	iv, err := WilsonCI(0, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 {
		t.Errorf("lower bound %v, want 0", iv.Lo)
	}
	if iv.Hi <= 0 || iv.Hi > 0.01 {
		t.Errorf("upper bound %v, want small positive (~3.8e-3)", iv.Hi)
	}
}

func TestWilsonCIBounds(t *testing.T) {
	for _, tc := range []struct{ s, n int }{
		{0, 1}, {1, 1}, {1, 2}, {999, 1000}, {1000, 1000},
	} {
		iv, err := WilsonCI(tc.s, tc.n, 0.99)
		if err != nil {
			t.Fatalf("WilsonCI(%d, %d): %v", tc.s, tc.n, err)
		}
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			t.Errorf("WilsonCI(%d, %d) = [%v, %v] escapes [0,1]", tc.s, tc.n, iv.Lo, iv.Hi)
		}
		p := float64(tc.s) / float64(tc.n)
		if p < iv.Lo-1e-12 || p > iv.Hi+1e-12 {
			t.Errorf("WilsonCI(%d, %d) = [%v, %v] excludes p̂ = %v", tc.s, tc.n, iv.Lo, iv.Hi, p)
		}
	}
}

func TestWilsonCINarrowsWithN(t *testing.T) {
	prev := math.Inf(1)
	for _, n := range []int{100, 1000, 10000, 100000} {
		iv, err := WilsonCI(n/100, n, 0.95) // p̂ = 0.01 throughout
		if err != nil {
			t.Fatal(err)
		}
		w := iv.Hi - iv.Lo
		if w >= prev {
			t.Errorf("width %v at n=%d did not shrink from %v", w, n, prev)
		}
		prev = w
	}
}

func TestWilsonCIErrors(t *testing.T) {
	if _, err := WilsonCI(1, 0, 0.95); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := WilsonCI(-1, 10, 0.95); err == nil {
		t.Error("negative successes accepted")
	}
	if _, err := WilsonCI(11, 10, 0.95); err == nil {
		t.Error("successes > trials accepted")
	}
	if _, err := WilsonCI(1, 10, 1.5); err == nil {
		t.Error("level outside (0,1) accepted")
	}
}

func TestRelativeHalfWidth(t *testing.T) {
	iv := Interval{Lo: 0.8, Hi: 1.2}
	if got := iv.RelativeHalfWidth(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelativeHalfWidth = %v, want 0.2", got)
	}
	zero := Interval{Lo: 0, Hi: 0}
	if !math.IsInf(zero.RelativeHalfWidth(), 1) {
		t.Error("degenerate zero interval should have infinite relative half-width")
	}
}
