package stats

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(s.Variance-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance, 32.0/7)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Variance != 0 || s.Median != 3 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestECDFAt(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	if got := ECDFAt(s, 2.5); got != 0.5 {
		t.Errorf("ECDF(2.5) = %v", got)
	}
	if got := ECDFAt(s, 0); got != 0 {
		t.Errorf("ECDF(0) = %v", got)
	}
	if got := ECDFAt(s, 4); got != 1 {
		t.Errorf("ECDF(4) = %v", got)
	}
	if !math.IsNaN(ECDFAt(nil, 1)) {
		t.Error("ECDF of empty sample should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 10}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// -1 clamps into bin 0, 10 clamps into bin 2.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[2] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 6 {
		t.Errorf("total = %d", h.Total)
	}
	if h.BinCenter(1) != 1.5 {
		t.Errorf("BinCenter(1) = %v", h.BinCenter(1))
	}
	// Densities integrate to 1.
	var area float64
	for i := range h.Counts {
		area += h.Density(i) * (h.Hi - h.Lo) / float64(len(h.Counts))
	}
	if math.Abs(area-1) > 1e-12 {
		t.Errorf("density area = %v", area)
	}
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(nil, 2, 1, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestMCFBasic(t *testing.T) {
	// 4 systems; system 0 fails at 10 and 30, system 1 at 20, others never.
	events := [][]float64{{10, 30}, {20}, {}, {}}
	mcf, err := MCF(events, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mcf) != 3 {
		t.Fatalf("got %d points", len(mcf))
	}
	want := []MCFPoint{{10, 0.25}, {20, 0.5}, {30, 0.75}}
	for i, w := range want {
		if mcf[i] != w {
			t.Errorf("point %d = %+v, want %+v", i, mcf[i], w)
		}
	}
	if got := MCFAt(mcf, 25); got != 0.5 {
		t.Errorf("MCFAt(25) = %v", got)
	}
	if got := MCFAt(mcf, 5); got != 0 {
		t.Errorf("MCFAt(5) = %v", got)
	}
	if got := MCFAt(mcf, 100); got != 0.75 {
		t.Errorf("MCFAt(100) = %v", got)
	}
}

func TestMCFValidation(t *testing.T) {
	if _, err := MCF(nil, 0); err == nil {
		t.Error("zero systems accepted")
	}
	if _, err := MCF([][]float64{{1}, {2}}, 1); err == nil {
		t.Error("more event lists than systems accepted")
	}
	if _, err := MCF([][]float64{{-1}}, 1); err == nil {
		t.Error("negative event time accepted")
	}
	if _, err := MCF([][]float64{{math.NaN()}}, 1); err == nil {
		t.Error("NaN event time accepted")
	}
}

func TestCumulativeCurve(t *testing.T) {
	mcf := []MCFPoint{{10, 1}, {20, 2}}
	ts, vs := CumulativeCurve(mcf, 40, 5)
	wantT := []float64{0, 10, 20, 30, 40}
	wantV := []float64{0, 1, 2, 2, 2}
	for i := range ts {
		if ts[i] != wantT[i] || vs[i] != wantV[i] {
			t.Errorf("point %d = (%v, %v), want (%v, %v)", i, ts[i], vs[i], wantT[i], wantV[i])
		}
	}
}

func TestROCOFConstantProcess(t *testing.T) {
	// A HPP-like event stream: one event per system per window.
	events := [][]float64{{5, 15, 25, 35}, {5, 15, 25, 35}}
	mcf, err := MCF(events, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ROCOF(mcf, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 4 {
		t.Fatalf("got %d windows", len(r))
	}
	for _, p := range r {
		if math.Abs(p.Count-1) > 1e-12 {
			t.Errorf("window at %v count %v, want 1", p.TimeMid, p.Count)
		}
		if math.Abs(p.Rate-0.1) > 1e-12 {
			t.Errorf("window at %v rate %v, want 0.1", p.TimeMid, p.Rate)
		}
	}
	if IsIncreasingTrend(r) {
		t.Error("flat process flagged as increasing")
	}
}

func TestROCOFIncreasingProcess(t *testing.T) {
	// Events accelerate: counts per window are 1, 2, 4, 8.
	var ev []float64
	add := func(lo float64, n int) {
		for i := 0; i < n; i++ {
			ev = append(ev, lo+float64(i)*0.1)
		}
	}
	add(5, 1)
	add(15, 2)
	add(25, 4)
	add(35, 8)
	mcf, err := MCF([][]float64{ev}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ROCOF(mcf, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIncreasingTrend(r) {
		t.Error("accelerating process not flagged as increasing")
	}
}

func TestROCOFValidation(t *testing.T) {
	if _, err := ROCOF(nil, 0, 10); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ROCOF(nil, 10, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestIsIncreasingTrendEdge(t *testing.T) {
	if IsIncreasingTrend(nil) {
		t.Error("nil trend")
	}
	if IsIncreasingTrend([]ROCOFPoint{{Count: 1}}) {
		t.Error("single point trend")
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	r := rng.New(44)
	// Sample from N(10, 1): CI should cover 10 and have width ~ 4/sqrt(n).
	sample := make([]float64, 400)
	for i := range sample {
		sample[i] = 10 + r.NormFloat64()
	}
	ci, err := BootstrapMeanCI(sample, 0.95, 2000, r)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Errorf("CI [%v, %v] misses true mean 10", ci.Lo, ci.Hi)
	}
	width := ci.Hi - ci.Lo
	if width < 0.1 || width > 0.4 {
		t.Errorf("CI width %v implausible for n=400", width)
	}
}

func TestBootstrapValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := BootstrapMeanCI(nil, 0.95, 100, r); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 1.5, 100, r); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 5, r); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 100, nil); err == nil {
		t.Error("nil RNG accepted")
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	r := rng.New(7)
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = r.ExpFloat64()
	}
	ci, err := BootstrapCI(sample, 0.9, 1000, r, func(s []float64) float64 {
		return Summarize(s).Median
	})
	if err != nil {
		t.Fatal(err)
	}
	// True median of Exp(1) is ln 2.
	if ci.Lo > math.Ln2 || ci.Hi < math.Ln2 {
		t.Errorf("median CI [%v, %v] misses ln2", ci.Lo, ci.Hi)
	}
}

func TestNormalMeanCI(t *testing.T) {
	r := rng.New(8)
	sample := make([]float64, 1000)
	for i := range sample {
		sample[i] = 5 + 2*r.NormFloat64()
	}
	ci, err := NormalMeanCI(sample, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > 5 || ci.Hi < 5 {
		t.Errorf("CI [%v, %v] misses 5", ci.Lo, ci.Hi)
	}
	// Width should be ~ 2*1.96*2/sqrt(1000) = 0.248.
	if w := ci.Hi - ci.Lo; math.Abs(w-0.248) > 0.05 {
		t.Errorf("CI width %v, want ~0.248", w)
	}
	if _, err := NormalMeanCI([]float64{1}, 0.95); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NormalMeanCI([]float64{1, 2}, 0); err == nil {
		t.Error("level 0 accepted")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.6, 0.9, 0.95, 0.975, 0.995} {
		if math.Abs(normalQuantile(p)+normalQuantile(1-p)) > 1e-12 {
			t.Errorf("asymmetric at %v", p)
		}
	}
	// z(0.975) ~ 1.96.
	if z := normalQuantile(0.975); math.Abs(z-1.96) > 0.01 {
		t.Errorf("z(0.975) = %v", z)
	}
}
