package stats

import (
	"fmt"
	"math"
	"sort"
)

// The mean cumulative function (MCF) is the standard non-parametric estimate
// of the expected cumulative number of recurrent events per system versus
// age (Nelson; Trindade & Nathan, the paper's ref. [23]). The paper's Figs.
// 6-10 are exactly MCF plots: expected DDFs per 1,000 RAID groups versus
// hours. Its derivative is the rate of occurrence of failures (ROCOF),
// plotted in Fig. 8.

// MCFPoint is one step of the mean cumulative function.
type MCFPoint struct {
	Time float64 // event age, hours
	MCF  float64 // expected cumulative events per system at Time
}

// MCF computes the mean cumulative function from per-system event-time
// lists. All systems are assumed observed for the full window (no
// staggered entry), which matches the simulator's fixed mission. nSystems
// must cover every slice in events.
func MCF(events [][]float64, nSystems int) ([]MCFPoint, error) {
	if nSystems <= 0 {
		return nil, fmt.Errorf("stats: MCF needs positive system count, got %d", nSystems)
	}
	if len(events) > nSystems {
		return nil, fmt.Errorf("stats: %d event lists exceed %d systems", len(events), nSystems)
	}
	var all []float64
	for _, sys := range events {
		all = append(all, sys...)
	}
	sort.Float64s(all)
	return MCFFromTimes(all, nSystems)
}

// MCFAt evaluates a step MCF at time t (the value of the most recent step at
// or before t, zero before the first event).
func MCFAt(mcf []MCFPoint, t float64) float64 {
	// Binary search for the last point with Time <= t.
	i := sort.Search(len(mcf), func(i int) bool { return mcf[i].Time > t })
	if i == 0 {
		return 0
	}
	return mcf[i-1].MCF
}

// CumulativeCurve samples a step MCF on an evenly spaced time grid from 0 to
// horizon with the given number of points (endpoints included). Useful for
// plotting and for comparing runs on a common grid.
func CumulativeCurve(mcf []MCFPoint, horizon float64, points int) ([]float64, []float64) {
	if points < 2 {
		points = 2
	}
	ts := make([]float64, points)
	vs := make([]float64, points)
	for i := range ts {
		ts[i] = horizon * float64(i) / float64(points-1)
		vs[i] = MCFAt(mcf, ts[i])
	}
	return ts, vs
}

// ROCOFPoint is a windowed rate-of-occurrence-of-failures estimate.
type ROCOFPoint struct {
	TimeMid float64 // midpoint of the window, hours
	Rate    float64 // events per system per hour within the window
	Count   float64 // expected events per system within the window
}

// ROCOF estimates the rate of occurrence of failures by differencing the
// MCF over fixed-width windows covering [0, horizon]. This is the paper's
// Fig. 8 construction: "the number of DDFs that occur in any fixed time
// interval".
func ROCOF(mcf []MCFPoint, horizon, window float64) ([]ROCOFPoint, error) {
	if window <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("stats: ROCOF needs positive window and horizon")
	}
	n := int(math.Ceil(horizon / window))
	out := make([]ROCOFPoint, 0, n)
	for i := 0; i < n; i++ {
		lo := float64(i) * window
		hi := lo + window
		if hi > horizon {
			hi = horizon
		}
		d := MCFAt(mcf, hi) - MCFAt(mcf, lo)
		out = append(out, ROCOFPoint{
			TimeMid: (lo + hi) / 2,
			Rate:    d / (hi - lo),
			Count:   d,
		})
	}
	return out, nil
}

// IsIncreasingTrend reports whether the sequence of window counts has an
// increasing trend, judged by comparing the mean of the last half against
// the first half. Used in tests to verify the non-HPP behaviour the paper
// demonstrates (increasing ROCOF).
func IsIncreasingTrend(points []ROCOFPoint) bool {
	if len(points) < 2 {
		return false
	}
	half := len(points) / 2
	var first, second float64
	for i, p := range points {
		if i < half {
			first += p.Count
		} else {
			second += p.Count
		}
	}
	firstMean := first / float64(half)
	secondMean := second / float64(len(points)-half)
	return secondMean > firstMean
}
