// Package stats provides the descriptive and repairable-system statistics
// used to turn Monte Carlo event streams into the paper's tables and
// figures: summary statistics, empirical CDFs, the mean cumulative function
// (MCF) for repairable systems, windowed ROCOF estimation, histograms, and
// bootstrap confidence intervals.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moments and order statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes summary statistics for the sample. It returns a zero
// Summary for an empty sample.
func Summarize(sample []float64) Summary {
	n := len(sample)
	if n == 0 {
		return Summary{}
	}
	s := make([]float64, n)
	copy(s, sample)
	sort.Float64s(s)

	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	variance := 0.0
	if n > 1 {
		variance = ss / float64(n-1)
	}
	return Summary{
		N:        n,
		Mean:     mean,
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		Min:      s[0],
		Max:      s[n-1],
		Median:   Quantile(s, 0.5),
	}
}

// Quantile returns the p-quantile of a sorted sample by linear
// interpolation. It panics if the sample is empty or unsorted behaviour is
// undefined; callers sort first.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("stats: Quantile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// ECDFAt returns the empirical CDF of the sample evaluated at x: the
// fraction of observations <= x.
func ECDFAt(sample []float64, x float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range sample {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(sample))
}

// Histogram bins sample values into nbins equal-width bins over [lo, hi].
// Values outside the range are clamped into the end bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram of the sample. It returns an error if
// nbins < 1 or lo >= hi.
func NewHistogram(sample []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", nbins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v] invalid", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	width := (hi - lo) / float64(nbins)
	for _, v := range sample {
		i := int((v - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Density returns the normalized density estimate for bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.Total) * width)
}
