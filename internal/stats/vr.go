package stats

import (
	"fmt"
	"math"
)

// This file holds the estimator side of the simulator's variance-reduction
// stack: the paired (antithetic) mean interval and the control-variate
// adjusted interval with its online covariance accumulator.

// ZScore returns the two-sided standard-normal critical value for a
// confidence level: the z with P(|N(0,1)| ≤ z) = level. It is the
// multiplier behind every normal-approximation interval in this package,
// exported so diagnostics (e.g. the campaign's variance-reduction factor)
// can reconstruct standard errors from reported half-widths.
func ZScore(level float64) float64 {
	return normalQuantile(0.5 + level/2)
}

// PairedMeanCI returns the normal-approximation confidence interval for
// the common mean of paired observations — antithetic pairs (a_i, b_i)
// whose members are deliberately correlated. Each pair collapses to its
// mean (a_i+b_i)/2; the pair means are iid, so the usual normal interval
// over them is valid where a naive interval over the pooled 2n correlated
// observations would not be.
func PairedMeanCI(a, b []float64, level float64) (Interval, error) {
	if len(a) != len(b) {
		return Interval{}, fmt.Errorf("stats: paired samples of unequal length (%d vs %d)", len(a), len(b))
	}
	if len(a) < 2 {
		return Interval{}, fmt.Errorf("stats: need >= 2 pairs, got %d", len(a))
	}
	means := make([]float64, len(a))
	for i := range a {
		means[i] = (a[i] + b[i]) / 2
	}
	return NormalMeanCI(means, level)
}

// CVAccum accumulates the first and second co-moments of an observation y
// and its control variate z online (Welford form, numerically stable), so
// the optimal control coefficient ĉ = Cov(y,z)/Var(z) can be fitted in one
// pass without retaining the sample.
type CVAccum struct {
	n             int
	meanY, meanZ  float64
	syy, szz, syz float64 // centered co-moment sums Σ(y-ȳ)², Σ(z-z̄)², Σ(y-ȳ)(z-z̄)
}

// Add folds one (y, z) observation into the accumulator.
func (a *CVAccum) Add(y, z float64) {
	a.n++
	dy := y - a.meanY
	dz := z - a.meanZ
	a.meanY += dy / float64(a.n)
	a.meanZ += dz / float64(a.n)
	// Co-moment updates use the pre-update delta of one variable and the
	// post-update delta of the other.
	a.syy += dy * (y - a.meanY)
	a.szz += dz * (z - a.meanZ)
	a.syz += dy * (z - a.meanZ)
}

// N returns the observation count.
func (a *CVAccum) N() int { return a.n }

// MeanY and MeanZ return the running means.
func (a *CVAccum) MeanY() float64 { return a.meanY }
func (a *CVAccum) MeanZ() float64 { return a.meanZ }

// Coeff returns the fitted control coefficient ĉ = Cov(y,z)/Var(z), or 0
// when the control has no sample variance (no adjustment possible).
func (a *CVAccum) Coeff() float64 {
	if !(a.szz > 0) {
		return 0
	}
	return a.syz / a.szz
}

// R2 returns the squared sample correlation r² = Syz²/(Syy·Szz) between the
// observation and its control — the fraction of observation variance the
// control removes. The implied variance-reduction factor of the adjusted
// estimator is 1/(1-r²). Returns 0 when either side has no sample variance.
func (a *CVAccum) R2() float64 {
	if !(a.syy > 0) || !(a.szz > 0) {
		return 0
	}
	r2 := a.syz * a.syz / (a.syy * a.szz)
	if r2 > 1 {
		r2 = 1 // rounding guard
	}
	return r2
}

// Interval returns the normal-approximation confidence interval for E[y]
// from the control-variate adjusted estimator ŷ = ȳ - ĉ·(z̄ - ez), where
// ez is the control's known analytic expectation. The adjusted residual
// variance is s² = (Syy - Syz²/Szz)/(n-1) = Syy·(1-r²)/(n-1) ≤ the
// unadjusted sample variance — algebraically, fitting ĉ from the same
// sample can only shrink the interval, never widen it (at the price of an
// O(1/n) bias in ĉ that vanishes against the 1/√n interval width).
func (a *CVAccum) Interval(ez, level float64) (Interval, error) {
	if a.n < 2 {
		return Interval{}, fmt.Errorf("stats: need >= 2 observations, got %d", a.n)
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("stats: confidence level %v outside (0,1)", level)
	}
	c := a.Coeff()
	center := a.meanY - c*(a.meanZ-ez)
	resid := a.syy
	if a.szz > 0 {
		resid = a.syy - a.syz*a.syz/a.szz
		if resid < 0 {
			resid = 0 // rounding guard; exact math keeps it non-negative
		}
	}
	n := float64(a.n)
	s := math.Sqrt(resid / (n - 1))
	z := normalQuantile(0.5 + level/2)
	half := z * s / math.Sqrt(n)
	return Interval{Lo: center - half, Hi: center + half, Level: level}, nil
}

// ControlVariateCI computes the control-variate adjusted confidence
// interval for E[y] given paired observations ys, their controls zs, and
// the control's analytic expectation ez. It returns the interval and the
// fitted coefficient. The one-pass accumulator form is CVAccum.
func ControlVariateCI(ys, zs []float64, ez, level float64) (Interval, float64, error) {
	if len(ys) != len(zs) {
		return Interval{}, 0, fmt.Errorf("stats: control sample of unequal length (%d vs %d)", len(ys), len(zs))
	}
	var acc CVAccum
	for i := range ys {
		acc.Add(ys[i], zs[i])
	}
	iv, err := acc.Interval(ez, level)
	return iv, acc.Coeff(), err
}
