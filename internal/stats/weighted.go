package stats

import (
	"fmt"
	"math"
)

// Importance-sampling estimators: a biased (hazard-tilted) Monte Carlo run
// yields, per group, a likelihood-ratio weight W for groups with a DDF and
// an exact zero otherwise. The rare-event probability estimate is the
// weighted mean p̂ = (1/n)·ΣW, its CI comes from the sample variance of
// the weight vector (NormalMeanCISparse folds the implied zeros in closed
// form), and ESS diagnoses how much the weight spread costs.

// ESS returns the Kish effective sample size (Σw)²/Σw² of a weight vector:
// the number of equally-weighted observations carrying the same estimator
// variance. For identical weights it equals len(weights); heavy weight
// spread pulls it toward 1. Returns 0 for an empty or all-zero vector.
func ESS(weights []float64) float64 {
	var sum, sumSq float64
	for _, w := range weights {
		sum += w
		sumSq += w * w
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / sumSq
}

// WeightedBernoulliCI returns the normal-approximation confidence interval
// for the importance-sampled rare-event probability: weights holds the
// likelihood-ratio weight of each event-bearing group out of n total
// (the remaining n-len(weights) groups are exact zeros). The midpoint is
// the unbiased estimate p̂ = Σw/n. It replaces the Wilson interval of the
// unbiased path, which only applies to 0/1 observations.
func WeightedBernoulliCI(weights []float64, n int, level float64) (Interval, error) {
	for _, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return Interval{}, fmt.Errorf("stats: invalid importance weight %v", w)
		}
	}
	return NormalMeanCISparse(weights, n, level)
}

// MCFFromWeightedTimes computes the importance-weighted mean cumulative
// function from the pooled event times of nSystems systems, sorted
// ascending, with weights[i] the likelihood-ratio weight of the group that
// produced times[i]: M̂(t) = (1/n)·Σ_{tᵢ<=t} wᵢ. With every weight 1 it
// reduces exactly to MCFFromTimes. A nil weights slice means unweighted.
func MCFFromWeightedTimes(times, weights []float64, nSystems int) ([]MCFPoint, error) {
	if weights == nil {
		return MCFFromTimes(times, nSystems)
	}
	if len(weights) != len(times) {
		return nil, fmt.Errorf("stats: %d weights for %d event times", len(weights), len(times))
	}
	if nSystems <= 0 {
		return nil, fmt.Errorf("stats: MCF needs positive system count, got %d", nSystems)
	}
	out := make([]MCFPoint, 0, len(times))
	prev := math.Inf(-1)
	var cum float64
	for i, t := range times {
		if math.IsNaN(t) || t < 0 {
			return nil, fmt.Errorf("stats: invalid event time %v", t)
		}
		if t < prev {
			return nil, fmt.Errorf("stats: event times not ascending at index %d", i)
		}
		w := weights[i]
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("stats: invalid importance weight %v at index %d", w, i)
		}
		prev = t
		cum += w
		out = append(out, MCFPoint{Time: t, MCF: cum / float64(nSystems)})
	}
	return out, nil
}
