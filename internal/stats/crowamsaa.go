package stats

import (
	"fmt"
	"math"
)

// The Crow-AMSAA (power-law NHPP) model is the standard parametric
// description of a repairable system whose ROCOF changes with age:
// expected cumulative events m(t) = λ tᵝ, intensity λβt^(β-1). β > 1
// means deterioration — exactly the claim the paper's Fig. 8 makes about
// RAID groups with latent defects. Crow's MLE from pooled event times
// quantifies that claim with a growth exponent instead of a trend flag.

// PowerLawFit is a fitted Crow-AMSAA process.
type PowerLawFit struct {
	// Beta is the growth exponent: 1 = HPP, > 1 deteriorating, < 1
	// improving.
	Beta float64
	// Lambda is the scale: m(t) = Lambda · t^Beta events per system.
	Lambda float64
	// Events is the pooled event count behind the fit.
	Events int
}

// MCFAt returns the fitted expected cumulative events per system at t.
func (f PowerLawFit) MCFAt(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return f.Lambda * math.Pow(t, f.Beta)
}

// Intensity returns the fitted ROCOF at t.
func (f PowerLawFit) Intensity(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return f.Lambda * f.Beta * math.Pow(t, f.Beta-1)
}

// FitPowerLaw computes the time-terminated Crow MLE from per-system event
// times observed over [0, horizon]:
//
//	β̂ = N / Σ ln(horizon / tᵢ),  λ̂ = N / (k · horizonᵝ)
//
// where N pools events over the k systems. At least two events are
// required; events at or beyond the horizon or at non-positive times are
// rejected.
func FitPowerLaw(events [][]float64, horizon float64) (PowerLawFit, error) {
	if !(horizon > 0) || math.IsInf(horizon, 0) {
		return PowerLawFit{}, fmt.Errorf("stats: invalid horizon %v", horizon)
	}
	if len(events) == 0 {
		return PowerLawFit{}, fmt.Errorf("stats: no systems")
	}
	n := 0
	var sumLog float64
	for _, sys := range events {
		for _, t := range sys {
			if !(t > 0) || t > horizon {
				return PowerLawFit{}, fmt.Errorf("stats: event time %v outside (0, %v]", t, horizon)
			}
			n++
			sumLog += math.Log(horizon / t)
		}
	}
	return powerLawFromSums(n, sumLog, len(events), horizon)
}

// powerLawFromSums finishes the Crow MLE from the pooled event count, the
// Σ ln(horizon/tᵢ) sufficient statistic, and the total system count.
func powerLawFromSums(n int, sumLog float64, nSystems int, horizon float64) (PowerLawFit, error) {
	if n < 2 {
		return PowerLawFit{}, fmt.Errorf("stats: need >= 2 events, got %d", n)
	}
	if sumLog <= 0 {
		return PowerLawFit{}, fmt.Errorf("stats: degenerate event times (all at the horizon)")
	}
	beta := float64(n) / sumLog
	lambda := float64(n) / (float64(nSystems) * math.Pow(horizon, beta))
	return PowerLawFit{Beta: beta, Lambda: lambda, Events: n}, nil
}

// GrowthTestZ returns the standard normal test statistic for H0: β = 1
// (homogeneous Poisson) against deterioration, based on the conditional
// distribution of the Crow MLE: under H0, 2Nβ̂⁻¹ ~ χ²(2N). A large
// positive z rejects the HPP in favour of an increasing ROCOF.
func GrowthTestZ(f PowerLawFit) float64 {
	n := float64(f.Events)
	// 2N/β̂ is χ²(2N); use the Wilson-Hilferty normal approximation.
	x := 2 * n / f.Beta
	k := 2 * n
	z := (math.Pow(x/k, 1.0/3) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	// Small β̂ (deterioration... careful): β̂ > 1 ⇒ x < k ⇒ z negative;
	// flip the sign so positive z means deterioration.
	return -z
}
