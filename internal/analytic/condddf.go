package analytic

import "math"

// This file carries the math behind the block engine's conditional-DDF
// control variate (`cv=cond`, DESIGN.md §12): the probability that a
// first-generation operational failure at time t is "killed" — meets a
// second failure or a live latent defect — evaluated against the
// first-generation law of the other slots, and the exact expectation of
// the per-iteration variate built from it.
//
// The variate the engine reports is
//
//	z = Σ_s 1{T_s ≤ M} · κ_s(T_s)
//
// where T_s is slot s's drawn first-generation operational failure time
// and κ_s(t) is the drawn first-generation kill indicator: some mate m≠s
// either failed within the deterministic window (T_m ≤ t < T_m + W, with
// W the mean rebuild time, not the drawn one) or is still operational
// (T_m > t) with a latent defect alive at t. Restricting κ to
// first-generation structures and a deterministic window is what makes
// E[z] computable in closed quadrature while keeping z correlated with
// the DDF indicator: in the scrubbed regime the dominant loss path is
// exactly a first failure meeting a first-generation mate defect.
//
// Per mate m, with F_m the operational-failure CDF, S_m = 1-F_m, and μ(t)
// the expected number of live defects on an operational mate at t (a
// thinned-Poisson mean — see LiveDefectMean),
//
//	P(m does not kill at t) = F_m(t-W) + S_m(t)·e^{-μ(t)}
//
// (mate restored before the window reaches t; or mate never failed and
// its Poisson-thinned live-defect count is zero — defects die with their
// drive, so a failed-and-restored mate contributes nothing). Mates are
// independent, so
//
//	q_s(t) = P(κ_s = 1 | T_s = t) = 1 - Π_{m≠s} [F_m(t-W) + S_m(t)·e^{-μ(t)}]
//
// and, substituting u = H_s(t) (so dF_s = e^{-u}du),
//
//	E[z] = Σ_s ∫_0^{H_s(M)} e^{-u} · q_s(H_s^{-1}(u)) du ∈ [0, n].
type CondDDF struct {
	// Mission is the horizon M the first-generation failure must beat.
	Mission float64
	// Window is the deterministic kill window W after a mate's failure —
	// the mean rebuild time.
	Window float64
	// LiveMean is μ(t), the expected live-defect count on a mate still
	// operational at t; nil when the configuration has no defect process
	// (the variate then reduces to the pure second-failure-in-window
	// term).
	LiveMean func(t float64) float64
	// Slots holds each slot's base (untilted) operational-failure law.
	Slots []CondSlot
	// Identical marks a homogeneous group (every slot the same law), which
	// collapses EZ to n times one slot's integral.
	Identical bool
	// TKinks lists time-domain breakpoints where q(t) loses smoothness —
	// the window boundary, a scrub distribution's location shift — so the
	// quadrature can split pieces there. Unsorted and unclipped is fine.
	TKinks []float64
}

// CondSlot is one slot's base operational-failure law in the two forms the
// quadrature needs: the cumulative hazard H and its inverse.
type CondSlot struct {
	CumHazard func(t float64) float64
	// Quantile inverts the cumulative hazard: Quantile(H(t)) = t.
	Quantile func(u float64) float64
}

// NoKill returns P(mate j does not kill a failure at time t):
// F_j(t-Window) + S_j(t)·exp(-μ(t)).
func (m *CondDDF) NoKill(j int, t float64) float64 {
	restored := 0.0
	if t > m.Window {
		restored = -math.Expm1(-m.Slots[j].CumHazard(t - m.Window))
	}
	mu := 0.0
	if m.LiveMean != nil {
		mu = m.LiveMean(t)
	}
	return restored + math.Exp(-m.Slots[j].CumHazard(t)-mu)
}

// Q returns q_s(t) = P(κ_s = 1 | T_s = t), the conditional kill
// probability of a first-generation failure of slot s at time t.
func (m *CondDDF) Q(s int, t float64) float64 {
	if len(m.Slots) < 2 {
		return 0
	}
	if m.Identical {
		// Homogeneous mates: one NoKill, raised to the mate count.
		return 1 - math.Pow(m.NoKill(0, t), float64(len(m.Slots)-1))
	}
	p := 1.0
	for j := range m.Slots {
		if j == s {
			continue
		}
		p *= m.NoKill(j, t)
	}
	return 1 - p
}

// EZ returns the exact expectation of the variate,
// Σ_s ∫_0^{H_s(M)} e^{-u}·q_s(H_s^{-1}(u)) du, by piecewise composite
// Gauss–Legendre quadrature with pieces split at the TKinks images.
func (m *CondDDF) EZ() float64 {
	if len(m.Slots) < 2 {
		return 0
	}
	if m.Identical {
		return float64(len(m.Slots)) * m.slotEZ(0)
	}
	total := 0.0
	for s := range m.Slots {
		total += m.slotEZ(s)
	}
	return total
}

func (m *CondDDF) slotEZ(s int) float64 {
	sl := &m.Slots[s]
	hm := sl.CumHazard(m.Mission)
	if !(hm > 0) {
		return 0
	}
	// Breakpoints in the u domain: the kink images, clipped to (0, hm),
	// plus a geometric grading toward u = 0 — Quantile(u) ~ u^{1/β} has an
	// unbounded derivative there for β > 1, and log-uniform pieces keep the
	// Gauss–Legendre error at machine precision through the boundary layer.
	breaks := make([]float64, 0, len(m.TKinks)+10)
	breaks = append(breaks, 0)
	for _, t := range m.TKinks {
		if u := sl.CumHazard(t); u > 0 && u < hm {
			breaks = append(breaks, u)
		}
	}
	for u := hm / 10; u > 1e-9*hm; u /= 10 {
		breaks = append(breaks, u)
	}
	breaks = append(breaks, hm)
	sortFloats(breaks)
	f := func(u float64) float64 {
		return math.Exp(-u) * m.Q(s, sl.Quantile(u))
	}
	total := 0.0
	for i := 1; i < len(breaks); i++ {
		total += glComposite(f, breaks[i-1], breaks[i], 4)
	}
	return total
}

// LiveDefectMean builds μ(t) for a homogeneous Poisson defect process of
// the given rate whose defects die (are scrubbed) after an iid duration
// with the given survival function: by Poisson thinning the live count at
// t on a drive operational since 0 is Poisson with mean
//
//	μ(t) = rate · ∫_0^t S(u) du.
//
// survival may be nil (defects never die, e.g. no scrubbing): μ(t) =
// rate·t. kinks lists points where S loses smoothness (a location-shifted
// scrub law); support is a point beyond which S is negligible, +Inf for
// none — the integral saturates there, matching a mean defect lifetime.
func LiveDefectMean(rate float64, survival func(float64) float64, kinks []float64, support float64) func(float64) float64 {
	if survival == nil {
		return func(t float64) float64 { return rate * t }
	}
	return func(t float64) float64 {
		upper := t
		if upper > support {
			upper = support
		}
		if !(upper > 0) {
			return 0
		}
		breaks := make([]float64, 0, len(kinks)+2)
		breaks = append(breaks, 0)
		for _, k := range kinks {
			if k > 0 && k < upper {
				breaks = append(breaks, k)
			}
		}
		breaks = append(breaks, upper)
		sortFloats(breaks)
		total := 0.0
		for i := 1; i < len(breaks); i++ {
			total += glComposite(survival, breaks[i-1], breaks[i], 2)
		}
		return rate * total
	}
}

// LiveDefectMeanNHPP is LiveDefectMean for a non-homogeneous Poisson
// defect process with instantaneous rate λ(u), clamped to [0, rateMax]
// exactly as the simulator's thinning sampler clamps it:
//
//	μ(t) = ∫_0^t λ̃(u)·S(t-u) du.
//
// Kinks of S map to breakpoints t-k in the arrival variable; kinks of a
// caller-supplied λ are unknown and integrate at composite-rule accuracy.
func LiveDefectMeanNHPP(rate func(float64) float64, rateMax float64, survival func(float64) float64, kinks []float64, support float64) func(float64) float64 {
	clamped := func(u float64) float64 {
		r := rate(u)
		if r < 0 {
			return 0
		}
		if r > rateMax {
			return rateMax
		}
		return r
	}
	return func(t float64) float64 {
		if !(t > 0) {
			return 0
		}
		lo := 0.0
		if math.IsInf(support, 1) == false && t-support > 0 {
			lo = t - support // arrivals older than the defect lifetime are dead
		}
		breaks := make([]float64, 0, len(kinks)+2)
		breaks = append(breaks, lo)
		for _, k := range kinks {
			if a := t - k; a > lo && a < t {
				breaks = append(breaks, a)
			}
		}
		breaks = append(breaks, t)
		sortFloats(breaks)
		f := func(a float64) float64 {
			lam := clamped(a)
			if survival == nil {
				return lam
			}
			return lam * survival(t-a)
		}
		total := 0.0
		for i := 1; i < len(breaks); i++ {
			total += glComposite(f, breaks[i-1], breaks[i], 4)
		}
		return total
	}
}

// gl16 holds the positive half of the 16-point Gauss–Legendre rule on
// [-1, 1]; nodes mirror with equal weights.
var gl16 = [8][2]float64{
	{0.0950125098376374, 0.1894506104550685},
	{0.2816035507792589, 0.1826034150449236},
	{0.4580167776572274, 0.1691565193950025},
	{0.6178762444026438, 0.1495959888165767},
	{0.7554044083550030, 0.1246289712555339},
	{0.8656312023878318, 0.0951585116824928},
	{0.9445750230732326, 0.0622535239386479},
	{0.9894009349916499, 0.0271524594117541},
}

// glComposite integrates f over [a, b] with `panels` equal panels of
// 16-point Gauss–Legendre — exact to machine precision for the smooth
// analytic integrands above once kinks are split out.
func glComposite(f func(float64) float64, a, b float64, panels int) float64 {
	if !(b > a) {
		return 0
	}
	h := (b - a) / float64(panels)
	total := 0.0
	for p := 0; p < panels; p++ {
		mid := a + (float64(p)+0.5)*h
		half := h / 2
		sum := 0.0
		for _, nw := range gl16 {
			sum += nw[1] * (f(mid+half*nw[0]) + f(mid-half*nw[0]))
		}
		total += sum * half
	}
	return total
}

// sortFloats is a tiny insertion sort: breakpoint lists are a handful of
// entries, not worth the sort package's interface machinery here.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
