package analytic

import (
	"fmt"
	"math"
)

// RebuildInput describes the drive and bus characteristics that set the
// hard minimum rebuild (or scrub) time of §6.2: the reconstruction of a
// failed drive must read every surviving drive and write the replacement,
// gated by both the per-drive streaming rate and the shared bus.
type RebuildInput struct {
	CapacityBytes   float64 // per-drive capacity to reconstruct
	DriveRateBps    float64 // sustained per-drive transfer rate, bytes/s
	BusRateBps      float64 // shared data-bus bandwidth, bytes/s
	GroupSize       int     // drives on the bus participating in rebuild
	ForegroundShare float64 // fraction of bandwidth consumed by user IO, [0, 1)
}

func (in RebuildInput) validate() error {
	if !(in.CapacityBytes > 0) || math.IsInf(in.CapacityBytes, 0) {
		return fmt.Errorf("analytic: capacity must be positive, got %v", in.CapacityBytes)
	}
	if !(in.DriveRateBps > 0) || !(in.BusRateBps > 0) {
		return fmt.Errorf("analytic: transfer rates must be positive, got drive=%v bus=%v",
			in.DriveRateBps, in.BusRateBps)
	}
	if in.GroupSize < 2 {
		return fmt.Errorf("analytic: group size must be >= 2, got %d", in.GroupSize)
	}
	if in.ForegroundShare < 0 || in.ForegroundShare >= 1 || math.IsNaN(in.ForegroundShare) {
		return fmt.Errorf("analytic: foreground share must be in [0,1), got %v", in.ForegroundShare)
	}
	return nil
}

// MinRebuildHours returns the minimum number of hours to reconstruct one
// failed drive with the given share of bandwidth left after foreground IO.
//
// Rebuilding one drive requires reading the other GroupSize-1 drives in
// full and writing the replacement, so the bus must move
// GroupSize × CapacityBytes while the replacement drive itself can absorb
// writes no faster than DriveRateBps. The minimum time is the larger of
// the two bottlenecks.
//
// The paper's worked examples: 14 × 144 GB over a 2 Gb/s Fibre Channel bus
// needs about 3 hours with no foreground IO; a 500 GB SATA drive on a
// 1.5 Gb/s bus needs about 10.4 hours.
func MinRebuildHours(in RebuildInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	avail := 1 - in.ForegroundShare
	busSeconds := in.CapacityBytes * float64(in.GroupSize) / (in.BusRateBps * avail)
	driveSeconds := in.CapacityBytes / (in.DriveRateBps * avail)
	return math.Max(busSeconds, driveSeconds) / 3600, nil
}

// MinScrubHours returns the minimum number of hours for one full-disk
// verify pass: every byte of the drive must be read at the effective drive
// rate after foreground IO (a scrub reads each drive independently, so the
// bus is not the bottleneck for a single drive's pass).
func MinScrubHours(in RebuildInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	avail := 1 - in.ForegroundShare
	return in.CapacityBytes / (in.DriveRateBps * avail) / 3600, nil
}

// Drive/bus constants for the paper's §6.2 worked examples. Rates follow
// the paper's arithmetic: "giga-bit" buses deliver bits, drives sustain
// tens of MB/s.
const (
	GB = 1e9 // the paper's drive capacities are decimal gigabytes

	// FibreChannel2Gb is a 2 Gb/s bus in bytes/second.
	FibreChannel2Gb = 2e9 / 8
	// SATA15Gb is a 1.5 Gb/s bus in bytes/second.
	SATA15Gb = 1.5e9 / 8
	// FCDriveRate is the paper's "50 MB/sec is more common" sustained rate.
	FCDriveRate = 50e6
)
