package analytic

import (
	"math"
	"testing"
)

// weibullSlot builds a CondSlot for a Weibull(shape, scale) law:
// H(t) = (t/scale)^shape, H^{-1}(u) = scale·u^{1/shape}.
func weibullSlot(shape, scale float64) CondSlot {
	return CondSlot{
		CumHazard: func(t float64) float64 {
			if t <= 0 {
				return 0
			}
			return math.Pow(t/scale, shape)
		},
		Quantile: func(u float64) float64 {
			if u <= 0 {
				return 0
			}
			return scale * math.Pow(u, 1/shape)
		},
	}
}

// condRef integrates EZ by brute force: a dense midpoint rule in the
// u = H_s(t) domain, independent of the production quadrature's panel and
// breakpoint machinery. Accurate to ~1e-8 at this resolution for the smooth
// integrands below.
func condRef(m *CondDDF) float64 {
	const steps = 200000
	total := 0.0
	for s := range m.Slots {
		sl := &m.Slots[s]
		hm := sl.CumHazard(m.Mission)
		h := hm / steps
		sum := 0.0
		for i := 0; i < steps; i++ {
			u := (float64(i) + 0.5) * h
			sum += math.Exp(-u) * m.Q(s, sl.Quantile(u))
		}
		total += sum * h
	}
	return total
}

// TestCondDDFQuadrature pins the production EZ quadrature against the
// brute-force reference on the paper's scrubbed base-case law — homogeneous
// and with a heterogeneous slot mix — at the quadrature's claimed accuracy.
func TestCondDDFQuadrature(t *testing.T) {
	mission := 87600.0
	window := 16.6
	// μ(t) for exponential defects at rate 1/9259 scrubbed after a mean
	// life of ~155 h: the saturating closed form.
	tau := 155.0
	live := func(tt float64) float64 {
		return (1.0 / 9259) * tau * -math.Expm1(-tt/tau)
	}

	homo := &CondDDF{
		Mission:   mission,
		Window:    window,
		LiveMean:  live,
		Slots:     make([]CondSlot, 8),
		Identical: true,
		TKinks:    []float64{window, tau},
	}
	for i := range homo.Slots {
		homo.Slots[i] = weibullSlot(1.12, 461386)
	}
	got, want := homo.EZ(), condRef(homo)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("homogeneous EZ = %.12f, reference %.12f", got, want)
	}
	if !(got > 0) || got > 8 {
		t.Errorf("EZ = %v outside (0, drives]", got)
	}

	hetero := &CondDDF{
		Mission:  mission,
		Window:   window,
		LiveMean: live,
		Slots: []CondSlot{
			weibullSlot(1.12, 461386),
			weibullSlot(1.0, 300000),
			weibullSlot(1.3, 600000),
			weibullSlot(1.12, 461386),
		},
		TKinks: []float64{window, tau},
	}
	got, want = hetero.EZ(), condRef(hetero)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("heterogeneous EZ = %.12f, reference %.12f", got, want)
	}
}

// TestCondDDFNoKillBounds: NoKill is a probability, decreasing in defect
// pressure, and exactly the survival-only form before the window opens.
func TestCondDDFNoKillBounds(t *testing.T) {
	m := &CondDDF{
		Mission:  87600,
		Window:   20,
		LiveMean: func(t float64) float64 { return 1e-4 * t },
		Slots:    []CondSlot{weibullSlot(1.12, 461386), weibullSlot(1.12, 461386)},
	}
	for _, tt := range []float64{1, 10, 19.9, 20.1, 100, 10000, 87600} {
		nk := m.NoKill(0, tt)
		if nk < 0 || nk > 1 {
			t.Errorf("NoKill(%v) = %v outside [0,1]", tt, nk)
		}
		q := m.Q(0, tt)
		if q < 0 || q > 1 {
			t.Errorf("Q(%v) = %v outside [0,1]", tt, q)
		}
	}
	// Before the window opens there is no restored mass: NoKill must equal
	// S(t)·e^{-μ(t)} exactly.
	tt := 15.0
	want := math.Exp(-m.Slots[0].CumHazard(tt) - 1e-4*tt)
	if got := m.NoKill(0, tt); math.Abs(got-want) > 1e-15 {
		t.Errorf("pre-window NoKill = %v, want %v", got, want)
	}
	// A single-slot model has no mates to kill anything.
	solo := &CondDDF{Mission: 87600, Window: 20, Slots: []CondSlot{weibullSlot(1.12, 461386)}}
	if ez := solo.EZ(); ez != 0 {
		t.Errorf("single-slot EZ = %v, want 0", ez)
	}
}

// TestLiveDefectMeanClosedForm checks μ(t) against the exponential-survival
// closed form rate·τ·(1-e^{-t/τ}) and the nil-survival linear form.
func TestLiveDefectMeanClosedForm(t *testing.T) {
	rate, tau := 1.0/9259, 750.0
	surv := func(u float64) float64 { return math.Exp(-u / tau) }
	mu := LiveDefectMean(rate, surv, nil, math.Inf(1))
	for _, tt := range []float64{0, 1, 100, 1000, 20000} {
		want := rate * tau * -math.Expm1(-tt/tau)
		if got := mu(tt); math.Abs(got-want) > 1e-10*(1+want) {
			t.Errorf("mu(%v) = %v, want %v", tt, got, want)
		}
	}
	lin := LiveDefectMean(rate, nil, nil, math.Inf(1))
	if got, want := lin(5000), rate*5000; math.Abs(got-want) > 1e-12 {
		t.Errorf("nil-survival mu(5000) = %v, want %v", got, want)
	}
	// Finite support saturates the integral: beyond it μ is constant.
	sup := LiveDefectMean(rate, surv, nil, 3000)
	if a, b := sup(5000), sup(50000); math.Abs(a-b) > 1e-12 {
		t.Errorf("mu past support not constant: %v vs %v", a, b)
	}
}

// TestLiveDefectMeanNHPPConstantRate: a constant-rate NHPP must reproduce
// the homogeneous LiveDefectMean.
func TestLiveDefectMeanNHPPConstantRate(t *testing.T) {
	rate, tau := 2e-4, 400.0
	surv := func(u float64) float64 { return math.Exp(-u / tau) }
	homo := LiveDefectMean(rate, surv, nil, math.Inf(1))
	nhpp := LiveDefectMeanNHPP(func(float64) float64 { return rate }, rate, surv, nil, math.Inf(1))
	for _, tt := range []float64{1, 50, 500, 5000} {
		a, b := homo(tt), nhpp(tt)
		if math.Abs(a-b) > 1e-9*(1+a) {
			t.Errorf("mu(%v): homogeneous %v vs NHPP %v", tt, a, b)
		}
	}
	// The clamp must mirror the sampler: a rate spiking above rateMax is
	// cut to rateMax, so μ is bounded by rateMax·∫S.
	spiky := LiveDefectMeanNHPP(func(float64) float64 { return 10 * rate }, rate, surv, nil, math.Inf(1))
	for _, tt := range []float64{100, 2000} {
		if a, b := spiky(tt), homo(tt); math.Abs(a-b) > 1e-9*(1+b) {
			t.Errorf("clamped NHPP mu(%v) = %v, want %v", tt, a, b)
		}
	}
}
