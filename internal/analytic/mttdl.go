// Package analytic implements the closed-form reliability estimates the
// paper critiques: the MTTDL expressions of equations 1-3 and the
// homogeneous-Poisson expected-failure count they imply, plus the
// minimum-rebuild-time arithmetic of §6.2.
package analytic

import (
	"fmt"
	"math"
)

// MTTDLInput holds the constant-rate parameters of the classic MTTDL
// calculation for an N+1 RAID group.
type MTTDLInput struct {
	N    int     // data drives; the group has N+1 drives total
	MTBF float64 // mean time between drive failures, hours (1/λ)
	MTTR float64 // mean time to restore a failed drive, hours (1/μ)
}

func (in MTTDLInput) validate() error {
	if in.N < 1 {
		return fmt.Errorf("analytic: N must be >= 1, got %d", in.N)
	}
	if !(in.MTBF > 0) || math.IsInf(in.MTBF, 0) {
		return fmt.Errorf("analytic: MTBF must be positive and finite, got %v", in.MTBF)
	}
	if !(in.MTTR > 0) || math.IsInf(in.MTTR, 0) {
		return fmt.Errorf("analytic: MTTR must be positive and finite, got %v", in.MTTR)
	}
	return nil
}

// MTTDL returns the paper's equation 1 in hours:
//
//	MTTDL = ((2N+1)λ + μ) / (N(N+1)λ²)
func MTTDL(in MTTDLInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	lambda := 1 / in.MTBF
	mu := 1 / in.MTTR
	n := float64(in.N)
	return ((2*n+1)*lambda + mu) / (n * (n + 1) * lambda * lambda), nil
}

// MTTDLSimplified returns the paper's equation 2, the usual μ >> λ
// approximation:
//
//	MTTDL ≈ μ / (N(N+1)λ²) = MTBF² / (N(N+1) MTTR)
func MTTDLSimplified(in MTTDLInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	n := float64(in.N)
	return in.MTBF * in.MTBF / (n * (n + 1) * in.MTTR), nil
}

// ExpectedDDFs returns the paper's equation 3: the homogeneous-Poisson
// estimate of double-disk failures across a fleet,
//
//	E[N(t)] = hours × groups / MTTDL.
//
// The paper's worked example (10 years, 1,000 groups, MTTDL 36,162 years)
// yields ≈ 0.277.
func ExpectedDDFs(in MTTDLInput, hours float64, groups int) (float64, error) {
	if hours < 0 || math.IsNaN(hours) || math.IsInf(hours, 0) {
		return 0, fmt.Errorf("analytic: invalid horizon %v", hours)
	}
	if groups < 1 {
		return 0, fmt.Errorf("analytic: groups must be >= 1, got %d", groups)
	}
	m, err := MTTDL(in)
	if err != nil {
		return 0, err
	}
	return hours * float64(groups) / m, nil
}

// MTTDLDoubleParity returns the classical double-parity (RAID 6)
// approximation for a group with N data drives plus two parity drives,
// assuming sequential repair and μ >> λ:
//
//	MTTDL₆ ≈ MTBF³ / (m(m-1)(m-2) · MTTR²),  m = N+2.
//
// The paper's conclusion ("eventually, RAID 6 will be required") trades
// on this number being enormous — and on it being just as blind to latent
// defects and non-constant rates as equation 1.
func MTTDLDoubleParity(in MTTDLInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	m := float64(in.N + 2)
	return in.MTBF * in.MTBF * in.MTBF / (m * (m - 1) * (m - 2) * in.MTTR * in.MTTR), nil
}

// HoursPerYear is the paper's convention (365-day year).
const HoursPerYear = 8760.0

// Years converts hours to years under the paper's convention.
func Years(hours float64) float64 { return hours / HoursPerYear }
