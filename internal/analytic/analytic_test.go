package analytic

import (
	"math"
	"testing"
)

var paperBase = MTTDLInput{N: 7, MTBF: 461386, MTTR: 12}

// Equation 3 of the paper: MTTDL of 36,162 years for MTBF 461,386 h,
// MTTR 12 h, N = 7.
func TestMTTDLPaperValue(t *testing.T) {
	m, err := MTTDL(paperBase)
	if err != nil {
		t.Fatal(err)
	}
	years := Years(m)
	if math.Abs(years-36162) > 50 {
		t.Errorf("MTTDL = %v years, want ~36,162", years)
	}
}

// Equation 3: 10 years × 1,000 RAID groups / 36,162 years ≈ 0.277 DDFs.
func TestExpectedDDFsPaperValue(t *testing.T) {
	got, err := ExpectedDDFs(paperBase, 87600, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.277) > 0.005 {
		t.Errorf("E[DDFs] = %v, want ~0.277", got)
	}
}

// Equation 2 must approach equation 1 when μ >> λ.
func TestSimplifiedConvergesToExact(t *testing.T) {
	exact, err := MTTDL(paperBase)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := MTTDLSimplified(paperBase)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(exact-approx) / exact; rel > 1e-3 {
		t.Errorf("relative gap %v too large for MTTR << MTBF", rel)
	}
	// With a slow repair the gap must widen and eq.1 must exceed eq.2.
	slow := MTTDLInput{N: 7, MTBF: 1000, MTTR: 500}
	e, _ := MTTDL(slow)
	a, _ := MTTDLSimplified(slow)
	if e <= a {
		t.Errorf("exact %v should exceed simplified %v when repair is slow", e, a)
	}
}

func TestMTTDLScalesWithGroupSize(t *testing.T) {
	small, _ := MTTDL(MTTDLInput{N: 3, MTBF: 461386, MTTR: 12})
	large, _ := MTTDL(MTTDLInput{N: 13, MTBF: 461386, MTTR: 12})
	if large >= small {
		t.Errorf("bigger group should lose data sooner: %v >= %v", large, small)
	}
	// Eq.2 ratio is N(N+1): 3·4 / 13·14 = 12/182.
	ratio := large / small
	want := 12.0 / 182.0
	if math.Abs(ratio-want) > 0.01 {
		t.Errorf("MTTDL ratio %v, want ~%v", ratio, want)
	}
}

func TestMTTDLValidation(t *testing.T) {
	bad := []MTTDLInput{
		{N: 0, MTBF: 1, MTTR: 1},
		{N: 7, MTBF: 0, MTTR: 1},
		{N: 7, MTBF: 1, MTTR: -1},
		{N: 7, MTBF: math.Inf(1), MTTR: 1},
	}
	for _, in := range bad {
		if _, err := MTTDL(in); err == nil {
			t.Errorf("MTTDL accepted %+v", in)
		}
		if _, err := MTTDLSimplified(in); err == nil {
			t.Errorf("MTTDLSimplified accepted %+v", in)
		}
	}
	if _, err := ExpectedDDFs(paperBase, -1, 10); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := ExpectedDDFs(paperBase, 10, 0); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestMTTDLDoubleParity(t *testing.T) {
	dp, err := MTTDLDoubleParity(paperBase)
	if err != nil {
		t.Fatal(err)
	}
	single, err := MTTDL(paperBase)
	if err != nil {
		t.Fatal(err)
	}
	// m = 9: MTBF³/(9·8·7·144) hours.
	want := math.Pow(461386, 3) / (9 * 8 * 7 * 144)
	if math.Abs(dp-want)/want > 1e-12 {
		t.Errorf("MTTDL6 = %v, want %v", dp, want)
	}
	if dp < single*1000 {
		t.Errorf("double parity %v not >> single %v", dp, single)
	}
	if _, err := MTTDLDoubleParity(MTTDLInput{N: 0, MTBF: 1, MTTR: 1}); err == nil {
		t.Error("invalid input accepted")
	}
}

// §6.2 worked example: 500 GB SATA drive, 1.5 Gb/s bus, group of 14 →
// ~10.4 hours minimum rebuild.
func TestMinRebuildHoursSATAExample(t *testing.T) {
	got, err := MinRebuildHours(RebuildInput{
		CapacityBytes: 500 * GB,
		DriveRateBps:  FCDriveRate,
		BusRateBps:    SATA15Gb,
		GroupSize:     14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10.4) > 0.1 {
		t.Errorf("SATA rebuild = %v h, want ~10.4", got)
	}
}

// §6.2 worked example: 144 GB FC drive, 2 Gb/s bus, group of 14 → the
// paper quotes "a minimum of three hours"; the bus arithmetic gives ~2.2 h,
// so assert the 2-3.5 h band.
func TestMinRebuildHoursFCExample(t *testing.T) {
	got, err := MinRebuildHours(RebuildInput{
		CapacityBytes: 144 * GB,
		DriveRateBps:  FCDriveRate,
		BusRateBps:    FibreChannel2Gb,
		GroupSize:     14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got < 2 || got > 3.5 {
		t.Errorf("FC rebuild = %v h, want in [2, 3.5]", got)
	}
}

func TestForegroundIOLengthensRebuild(t *testing.T) {
	in := RebuildInput{
		CapacityBytes: 500 * GB,
		DriveRateBps:  FCDriveRate,
		BusRateBps:    SATA15Gb,
		GroupSize:     14,
	}
	idle, err := MinRebuildHours(in)
	if err != nil {
		t.Fatal(err)
	}
	in.ForegroundShare = 0.5
	busy, err := MinRebuildHours(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(busy-2*idle) > 1e-9 {
		t.Errorf("50%% foreground should double rebuild: %v vs %v", busy, idle)
	}
}

func TestDriveRateBottleneck(t *testing.T) {
	// A huge bus makes the replacement drive the bottleneck.
	got, err := MinRebuildHours(RebuildInput{
		CapacityBytes: 500 * GB,
		DriveRateBps:  FCDriveRate,
		BusRateBps:    1e12,
		GroupSize:     14,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 500 * GB / FCDriveRate / 3600
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("drive-limited rebuild = %v, want %v", got, want)
	}
}

func TestMinScrubHours(t *testing.T) {
	got, err := MinScrubHours(RebuildInput{
		CapacityBytes: 144 * GB,
		DriveRateBps:  FCDriveRate,
		BusRateBps:    FibreChannel2Gb,
		GroupSize:     14,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 144 * GB / FCDriveRate / 3600 // 0.8 h
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("scrub = %v, want %v", got, want)
	}
}

func TestRebuildValidation(t *testing.T) {
	good := RebuildInput{CapacityBytes: GB, DriveRateBps: 1, BusRateBps: 1, GroupSize: 2}
	bad := []func(RebuildInput) RebuildInput{
		func(in RebuildInput) RebuildInput { in.CapacityBytes = 0; return in },
		func(in RebuildInput) RebuildInput { in.DriveRateBps = -1; return in },
		func(in RebuildInput) RebuildInput { in.BusRateBps = 0; return in },
		func(in RebuildInput) RebuildInput { in.GroupSize = 1; return in },
		func(in RebuildInput) RebuildInput { in.ForegroundShare = 1; return in },
		func(in RebuildInput) RebuildInput { in.ForegroundShare = -0.1; return in },
	}
	if _, err := MinRebuildHours(good); err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	for i, mutate := range bad {
		if _, err := MinRebuildHours(mutate(good)); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := MinScrubHours(mutate(good)); err == nil {
			t.Errorf("scrub case %d accepted", i)
		}
	}
}

func TestYears(t *testing.T) {
	if Years(87600) != 10 {
		t.Errorf("Years(87600) = %v", Years(87600))
	}
}
