// Package gf256 implements arithmetic over the Galois field GF(2^8) with
// the polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field used by
// Reed-Solomon-style P+Q RAID-6 parity. It exists as the algebraic
// substrate for the alternative double-parity codec that cross-validates
// the row-diagonal-parity implementation.
package gf256

// Generator is the primitive element whose powers enumerate the nonzero
// field elements.
const Generator = 2

// polynomial is the field's reducing polynomial (without the x^8 term).
const polynomial = 0x1d

// tables holds the discrete log and exponential tables.
type tables struct {
	exp [512]byte // exp[i] = g^i, doubled to avoid modular reduction
	log [256]byte // log[x] = i with g^i = x, for x != 0
}

var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.log[x] = byte(i)
		// Multiply x by the generator (2): shift and reduce.
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= polynomial
		}
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// Add returns a + b (XOR; addition and subtraction coincide).
func Add(a, b byte) byte { return a ^ b }

// Mul returns the field product a·b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+int(_tables.log[b])]
}

// Exp returns g^i for any integer i (negative allowed).
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return _tables.exp[i]
}

// Log returns the discrete log of x != 0; it panics on zero, which has no
// logarithm.
func Log(x byte) int {
	if x == 0 {
		panic("gf256: log of zero")
	}
	return int(_tables.log[x])
}

// Inv returns the multiplicative inverse of x != 0; it panics on zero.
func Inv(x byte) byte {
	if x == 0 {
		panic("gf256: inverse of zero")
	}
	return _tables.exp[255-int(_tables.log[x])]
}

// Div returns a / b for b != 0; it panics on division by zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])-int(_tables.log[b])+255]
}

// MulAddSlice computes dst[i] ^= c·src[i] for all i — the inner loop of
// Q-parity encoding. dst and src must have equal length.
func MulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range dst {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(_tables.log[c])
	for i := range dst {
		s := src[i]
		if s != 0 {
			dst[i] ^= _tables.exp[logC+int(_tables.log[s])]
		}
	}
}

// MulSlice computes dst[i] = c·dst[i] in place.
func MulSlice(dst []byte, c byte) {
	if c == 1 {
		return
	}
	if c == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	logC := int(_tables.log[c])
	for i := range dst {
		if dst[i] != 0 {
			dst[i] = _tables.exp[logC+int(_tables.log[dst[i]])]
		}
	}
}
