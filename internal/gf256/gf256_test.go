package gf256

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	// Exhaustive over all pairs: commutativity, and distributivity on a
	// sample; full associativity over all triples is 16M cases, so sample
	// it in the quick test below.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x, y := byte(a), byte(b)
			if Mul(x, y) != Mul(y, x) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
			if Add(x, y) != Add(y, x) {
				t.Fatalf("add not commutative at %d,%d", a, b)
			}
		}
	}
}

func TestIdentitiesAndInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		x := byte(a)
		if Mul(x, 1) != x {
			t.Fatalf("1 is not identity for %d", a)
		}
		if Mul(x, Inv(x)) != 1 {
			t.Fatalf("inverse broken for %d", a)
		}
		if Div(x, x) != 1 {
			t.Fatalf("x/x != 1 for %d", a)
		}
		if Exp(Log(x)) != x {
			t.Fatalf("exp(log) broken for %d", a)
		}
	}
	if Mul(0, 77) != 0 || Mul(77, 0) != 0 {
		t.Error("zero annihilator broken")
	}
	if Div(0, 5) != 0 {
		t.Error("0/x != 0")
	}
}

func TestPanicsOnZero(t *testing.T) {
	for _, f := range []func(){
		func() { Inv(0) },
		func() { Log(0) },
		func() { Div(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneratorOrder(t *testing.T) {
	// g must have order 255: powers 0..254 all distinct, g^255 = 1.
	seen := make(map[byte]bool, 255)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("g^%d repeats value %d", i, v)
		}
		seen[v] = true
	}
	if Exp(255) != 1 || Exp(0) != 1 {
		t.Error("generator order wrong")
	}
	if Exp(-1) != Inv(Generator) {
		t.Error("negative exponent wrong")
	}
}

func TestDistributivityQuick(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	g := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{0, 1, 2, 128, 255}
	dst := []byte{9, 9, 9, 9, 9}
	want := make([]byte, len(src))
	for i := range src {
		want[i] = Add(9, Mul(37, src[i]))
	}
	MulAddSlice(dst, src, 37)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("index %d: got %d want %d", i, dst[i], want[i])
		}
	}
	// c = 0 is a no-op; c = 1 is plain XOR.
	d2 := []byte{1, 2, 3, 4, 5}
	MulAddSlice(d2, src, 0)
	if d2[1] != 2 {
		t.Error("c=0 modified dst")
	}
	MulAddSlice(d2, src, 1)
	if d2[1] != 2^1 {
		t.Error("c=1 is not XOR")
	}
}

func TestMulSlice(t *testing.T) {
	d := []byte{0, 1, 2, 250}
	want := make([]byte, len(d))
	for i := range d {
		want[i] = Mul(19, d[i])
	}
	MulSlice(d, 19)
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("index %d", i)
		}
	}
	MulSlice(d, 1) // identity
	if d[3] != want[3] {
		t.Error("c=1 changed values")
	}
	MulSlice(d, 0)
	for _, v := range d {
		if v != 0 {
			t.Error("c=0 should zero")
		}
	}
}
