package dist

import (
	"math"
	"testing"
	"testing/quick"

	"raidrel/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewWeibullValidation(t *testing.T) {
	cases := []struct {
		name              string
		shape, scale, loc float64
		wantErr           bool
	}{
		{"valid base case", 1.12, 461386, 0, false},
		{"valid with location", 2, 12, 6, false},
		{"zero shape", 0, 1, 0, true},
		{"negative shape", -1, 1, 0, true},
		{"zero scale", 1, 0, 0, true},
		{"negative location", 1, 1, -1, true},
		{"NaN shape", math.NaN(), 1, 0, true},
		{"Inf scale", 1, math.Inf(1), 0, true},
		{"NaN location", 1, 1, math.NaN(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewWeibull(tc.shape, tc.scale, tc.loc)
			if (err != nil) != tc.wantErr {
				t.Fatalf("NewWeibull(%v, %v, %v) error = %v, wantErr %v",
					tc.shape, tc.scale, tc.loc, err, tc.wantErr)
			}
		})
	}
}

func TestWeibullReducesToExponential(t *testing.T) {
	// β = 1 Weibull with scale η must equal Exponential(1/η) exactly.
	w := MustWeibull(1, 1000, 0)
	e := MustExponential(1.0 / 1000)
	for _, tt := range []float64{0, 1, 10, 500, 1000, 5000, 1e5} {
		if !almostEqual(w.CDF(tt), e.CDF(tt), 1e-12) {
			t.Errorf("CDF(%v): weibull %v != exp %v", tt, w.CDF(tt), e.CDF(tt))
		}
		if !almostEqual(w.PDF(tt), e.PDF(tt), 1e-12) {
			t.Errorf("PDF(%v): weibull %v != exp %v", tt, w.PDF(tt), e.PDF(tt))
		}
		if !almostEqual(w.Hazard(tt), e.Hazard(tt), 1e-12) {
			t.Errorf("Hazard(%v): weibull %v != exp %v", tt, w.Hazard(tt), e.Hazard(tt))
		}
	}
	if !almostEqual(w.Mean(), 1000, 1e-12) {
		t.Errorf("Mean = %v, want 1000", w.Mean())
	}
}

func TestWeibullCharacteristicLife(t *testing.T) {
	// CDF at γ + η must be 1 - 1/e for every shape.
	for _, beta := range []float64{0.5, 0.8, 1, 1.12, 2, 3.7} {
		w := MustWeibull(beta, 461386, 100)
		got := w.CDF(100 + 461386)
		want := 1 - math.Exp(-1)
		if !almostEqual(got, want, 1e-12) {
			t.Errorf("β=%v: CDF(γ+η) = %v, want %v", beta, got, want)
		}
	}
}

func TestWeibullQuantileInvertsCDF(t *testing.T) {
	dists := []Weibull{
		MustWeibull(1.12, 461386, 0),
		MustWeibull(2, 12, 6),
		MustWeibull(3, 168, 6),
		MustWeibull(0.9, 5e5, 0),
	}
	for _, w := range dists {
		for _, p := range []float64{1e-9, 1e-4, 0.01, 0.5, 0.632, 0.99, 1 - 1e-9} {
			q := w.Quantile(p)
			back := w.CDF(q)
			if !almostEqual(back, p, 1e-9) {
				t.Errorf("%v: CDF(Quantile(%v)) = %v", w, p, back)
			}
		}
	}
}

func TestWeibullQuantileEdges(t *testing.T) {
	w := MustWeibull(2, 12, 6)
	if got := w.Quantile(0); got != 6 {
		t.Errorf("Quantile(0) = %v, want location 6", got)
	}
	if got := w.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) = %v, want +Inf", got)
	}
}

func TestWeibullLocationShiftsSupport(t *testing.T) {
	w := MustWeibull(2, 12, 6)
	if w.CDF(5.999) != 0 {
		t.Errorf("CDF below location = %v, want 0", w.CDF(5.999))
	}
	if w.PDF(3) != 0 {
		t.Errorf("PDF below location = %v, want 0", w.PDF(3))
	}
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		if v := w.Sample(r); v < 6 {
			t.Fatalf("sample %v below location 6", v)
		}
	}
}

func TestWeibullSampleMoments(t *testing.T) {
	cases := []Weibull{
		MustWeibull(1.12, 461386, 0),
		MustWeibull(2, 12, 6),
		MustWeibull(3, 168, 6),
		MustWeibull(0.8, 1000, 0),
	}
	r := rng.New(99)
	const n = 400000
	for _, w := range cases {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := w.Sample(r)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if !almostEqual(mean, w.Mean(), 0.01) {
			t.Errorf("%v: sample mean %v vs analytic %v", w, mean, w.Mean())
		}
		if !almostEqual(variance, w.Variance(), 0.05) {
			t.Errorf("%v: sample variance %v vs analytic %v", w, variance, w.Variance())
		}
	}
}

func TestWeibullHazardMonotonicity(t *testing.T) {
	ts := []float64{10, 100, 1000, 10000, 100000}
	increasing := MustWeibull(1.4, 1e5, 0)
	decreasing := MustWeibull(0.8, 1e5, 0)
	for i := 1; i < len(ts); i++ {
		if increasing.Hazard(ts[i]) <= increasing.Hazard(ts[i-1]) {
			t.Errorf("β=1.4 hazard not increasing at %v", ts[i])
		}
		if decreasing.Hazard(ts[i]) >= decreasing.Hazard(ts[i-1]) {
			t.Errorf("β=0.8 hazard not decreasing at %v", ts[i])
		}
	}
}

func TestWeibullCumHazardConsistency(t *testing.T) {
	// S(t) = exp(-H(t)) must match 1 - CDF(t).
	w := MustWeibull(1.12, 461386, 0)
	for _, tt := range []float64{100, 8760, 87600, 461386} {
		if !almostEqual(math.Exp(-w.CumHazard(tt)), Survival(w, tt), 1e-12) {
			t.Errorf("t=%v: exp(-H) = %v, S = %v", tt, math.Exp(-w.CumHazard(tt)), Survival(w, tt))
		}
	}
}

func TestWeibullQuickProperties(t *testing.T) {
	w := MustWeibull(1.12, 461386, 0)
	cdfMonotone := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		return w.CDF(a) <= w.CDF(b)
	}
	if err := quick.Check(cdfMonotone, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("CDF not monotone: %v", err)
	}
	cdfBounded := func(a float64) bool {
		c := w.CDF(math.Abs(a))
		return c >= 0 && c <= 1
	}
	if err := quick.Check(cdfBounded, &quick.Config{MaxCount: 2000}); err != nil {
		t.Errorf("CDF out of [0,1]: %v", err)
	}
}

func TestWeibullPDFIntegratesToCDF(t *testing.T) {
	w := MustWeibull(1.5, 100, 10)
	// Trapezoid integral of the PDF from γ to T should approximate CDF(T).
	const upper, n = 500.0, 200000
	h := (upper - 10) / n
	sum := 0.5 * (w.PDF(10) + w.PDF(upper))
	for i := 1; i < n; i++ {
		sum += w.PDF(10 + float64(i)*h)
	}
	integral := sum * h
	if !almostEqual(integral, w.CDF(upper), 1e-6) {
		t.Errorf("∫PDF = %v, CDF = %v", integral, w.CDF(upper))
	}
}

func TestWeibullStringer(t *testing.T) {
	w := MustWeibull(1.12, 461386, 0)
	if got := w.String(); got != "Weibull(γ=0, η=461386, β=1.12)" {
		t.Errorf("String() = %q", got)
	}
}

func TestMustWeibullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWeibull with bad shape did not panic")
		}
	}()
	MustWeibull(-1, 1, 0)
}

func BenchmarkWeibullSampling(b *testing.B) {
	w := MustWeibull(1.12, 461386, 0)
	r := rng.New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = w.Sample(r)
	}
	_ = sink
}

func BenchmarkExponentialSampling(b *testing.B) {
	e := MustExponential(1.0 / 461386)
	r := rng.New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = e.Sample(r)
	}
	_ = sink
}
