package dist

import (
	"math"

	"raidrel/internal/rng"
)

// This file supports failure-biased importance sampling: drawing from a
// proportional-hazards tilt of a lifetime distribution and computing the
// log likelihood ratios that keep the weighted estimator unbiased.
//
// The tilt of f by factor θ > 0 is the distribution g with hazard
// h_g(t) = θ·h_f(t), equivalently S_g(t) = S_f(t)^θ. For a Weibull(γ,η,β)
// this is exactly Weibull(γ, η·θ^(-1/β), β); for an Exponential(λ) it is
// Exponential(λθ). θ > 1 pulls failures earlier, making rare overlap
// events common while the likelihood ratio f/g corrects the estimate.

// CumHazarder is implemented by distributions with a closed-form
// cumulative hazard H(t) = -ln(1 - F(t)).
type CumHazarder interface {
	CumHazard(t float64) float64
}

// CumHazardOf returns the cumulative hazard H(t) = -ln S(t) of d, using
// the closed form when the distribution provides one and -ln(1-CDF)
// otherwise. Returns +Inf where the survival function is zero.
func CumHazardOf(d Distribution, t float64) float64 {
	if c, ok := d.(CumHazarder); ok {
		return c.CumHazard(t)
	}
	s := Survival(d, t)
	if s == 0 {
		return math.Inf(1)
	}
	return -math.Log(s)
}

// LogPDFer is implemented by distributions with a closed-form log density.
type LogPDFer interface {
	LogPDF(t float64) float64
}

// LogPDF returns ln f(t) of d, using the closed form when available and
// ln(PDF) otherwise. Returns -Inf outside the support.
func LogPDF(d Distribution, t float64) float64 {
	if l, ok := d.(LogPDFer); ok {
		return l.LogPDF(t)
	}
	return math.Log(d.PDF(t))
}

// CumHazardInverter is implemented by distributions with a closed-form
// inverse of the cumulative hazard: QuantileFromCumHazard(h) is the value
// x with H(x) = h, i.e. S(x) = e^(-h). Tilt samplers prefer it over
// Quantile because it skips the h -> 1-e^(-h) -> -ln(1-p) round trip
// (two transcendental calls that cancel analytically but not in floating
// point).
type CumHazardInverter interface {
	QuantileFromCumHazard(h float64) float64
}

// QuantileFromCumHazardOf returns the value whose cumulative hazard under
// d is h, using the closed-form inverse when the distribution provides
// one and the quantile of 1 - e^(-h) otherwise.
func QuantileFromCumHazardOf(d Distribution, h float64) float64 {
	if inv, ok := d.(CumHazardInverter); ok {
		return inv.QuantileFromCumHazard(h)
	}
	return d.Quantile(-math.Expm1(-h))
}

// SampleHazardScaled draws one variate x from the proportional-hazards
// tilt of d by factor theta and returns it together with cumHazard, the
// base distribution's cumulative hazard H_f(x) at the draw.
//
// The draw inverts the tilted survival S_g = S_f^theta directly: with
// E standard exponential, H_f(x) = E/theta, so x is the base inverse
// cumulative hazard at E/theta. Returning H_f(x) alongside x lets callers
// form the log likelihood ratio ln(f(x)/g(x)) = (theta-1)·H_f(x) -
// ln(theta) without re-evaluating densities.
func SampleHazardScaled(d Distribution, theta float64, r *rng.RNG) (x, cumHazard float64) {
	h := r.ExpFloat64() / theta
	return QuantileFromCumHazardOf(d, h), h
}

// HazardScaleLogRatio returns ln(f(x)/g(x)) where g is the
// proportional-hazards tilt of f = d by factor theta, for an uncensored
// (observed) draw at x.
func HazardScaleLogRatio(d Distribution, theta, x float64) float64 {
	return (theta-1)*CumHazardOf(d, x) - math.Log(theta)
}

// HazardScaleCensoredLogRatio returns the log likelihood ratio of the
// censoring event {X > c}: ln(S_f(c)/S_g(c)) = (theta-1)·H_f(c). Samplers
// that discard draws beyond a horizon must weight the discard by the
// ratio of survival masses, not the density ratio at the discarded point —
// this keeps every weight factor bounded (the uncensored per-draw ratio
// has unbounded second moment for theta >= 2).
func HazardScaleCensoredLogRatio(d Distribution, theta, c float64) float64 {
	return (theta - 1) * CumHazardOf(d, c)
}
