package dist_test

import (
	"fmt"

	"raidrel/internal/dist"
	"raidrel/internal/rng"
)

// ExampleWeibull shows the paper's base-case TTOp distribution.
func ExampleWeibull() {
	ttop, err := dist.NewWeibull(1.12, 461386, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ttop)
	fmt.Printf("mean life: %.0f h\n", ttop.Mean())
	fmt.Printf("P(failure within 5 years): %.4f\n", ttop.CDF(5*8760))
	fmt.Printf("hazard ratio year 5 vs year 1: %.2f\n", ttop.Hazard(5*8760)/ttop.Hazard(8760))
	// Output:
	// Weibull(γ=0, η=461386, β=1.12)
	// mean life: 442626 h
	// P(failure within 5 years): 0.0691
	// hazard ratio year 5 vs year 1: 1.21
}

// ExampleWeibull_Sample draws restoration times with a 6-hour floor.
func ExampleWeibull_Sample() {
	ttr := dist.MustWeibull(2, 12, 6)
	r := rng.New(1)
	min := 1e18
	for i := 0; i < 10000; i++ {
		if v := ttr.Sample(r); v < min {
			min = v
		}
	}
	fmt.Println("every restoration exceeds the 6-hour floor:", min >= 6)
	// Output:
	// every restoration exceeds the 6-hour floor: true
}

// ExampleCompetingRisks builds a bathtub lifetime: infant mortality
// competing with wear-out.
func ExampleCompetingRisks() {
	bathtub := dist.MustCompetingRisks([]dist.Distribution{
		dist.MustWeibull(0.6, 3e6, 0), // infant mortality, burning off
		dist.MustWeibull(3.0, 2e5, 0), // wear-out
	})
	early := dist.Hazard(bathtub, 100)
	mid := dist.Hazard(bathtub, 30000)
	late := dist.Hazard(bathtub, 150000)
	fmt.Println("hazard falls early:", mid < early)
	fmt.Println("hazard rises late:", late > mid)
	// Output:
	// hazard falls early: true
	// hazard rises late: true
}
