package dist

import (
	"fmt"
	"math"
	"sort"

	"raidrel/internal/rng"
)

// Mixture models a population in which sub-populations carry different
// failure distributions — the paper's explanation for the first inflection
// of HDD #3 in Fig. 1 ("some of the HDDs have a failure mechanism that the
// others do not"). A drive is drawn from component i with probability
// weights[i].
type Mixture struct {
	components []Distribution
	weights    []float64 // normalized, same length as components
	cumWeights []float64
}

var _ Distribution = Mixture{}

// NewMixture returns a mixture of the given components with the given
// non-negative weights (normalized internally). At least one component and
// one positive weight are required.
func NewMixture(components []Distribution, weights []float64) (Mixture, error) {
	if len(components) == 0 {
		return Mixture{}, fmt.Errorf("mixture: no components")
	}
	if len(components) != len(weights) {
		return Mixture{}, fmt.Errorf("mixture: %d components but %d weights", len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return Mixture{}, fmt.Errorf("mixture: weight %d invalid: %v", i, w)
		}
		total += w
	}
	if total <= 0 {
		return Mixture{}, fmt.Errorf("mixture: weights sum to zero")
	}
	m := Mixture{
		components: make([]Distribution, len(components)),
		weights:    make([]float64, len(weights)),
		cumWeights: make([]float64, len(weights)),
	}
	copy(m.components, components)
	cum := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		cum += w / total
		m.cumWeights[i] = cum
	}
	m.cumWeights[len(m.cumWeights)-1] = 1
	return m, nil
}

// MustMixture is NewMixture but panics on invalid parameters.
func MustMixture(components []Distribution, weights []float64) Mixture {
	m, err := NewMixture(components, weights)
	if err != nil {
		panic(err)
	}
	return m
}

// PDF returns the weighted density sum.
func (m Mixture) PDF(t float64) float64 {
	var f float64
	for i, c := range m.components {
		f += m.weights[i] * c.PDF(t)
	}
	return f
}

// CDF returns the weighted CDF sum.
func (m Mixture) CDF(t float64) float64 {
	var f float64
	for i, c := range m.components {
		f += m.weights[i] * c.CDF(t)
	}
	return f
}

// Quantile inverts the mixture CDF numerically (the CDF is monotone).
func (m Mixture) Quantile(p float64) float64 { return invertCDF(m, p) }

// Mean returns the weighted mean.
func (m Mixture) Mean() float64 {
	var mu float64
	for i, c := range m.components {
		mu += m.weights[i] * c.Mean()
	}
	return mu
}

// Variance returns the law-of-total-variance mixture variance.
func (m Mixture) Variance() float64 {
	mu := m.Mean()
	var v float64
	for i, c := range m.components {
		d := c.Mean() - mu
		v += m.weights[i] * (c.Variance() + d*d)
	}
	return v
}

// Sample picks a component by weight, then samples it.
func (m Mixture) Sample(r *rng.RNG) float64 {
	u := r.Float64()
	i := sort.SearchFloat64s(m.cumWeights, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Sample(r)
}

// CompetingRisks models a unit subject to several independent failure
// mechanisms at once; the observed lifetime is the minimum. This produces
// the late-life upturn of HDD #3 in Fig. 1: survival is the product of the
// mechanisms' survivals, so hazards add.
type CompetingRisks struct {
	risks []Distribution
}

var _ Distribution = CompetingRisks{}

// NewCompetingRisks returns the distribution of min(T_1, ..., T_k) for
// independent lifetimes T_i with the given distributions.
func NewCompetingRisks(risks []Distribution) (CompetingRisks, error) {
	if len(risks) == 0 {
		return CompetingRisks{}, fmt.Errorf("competing risks: no mechanisms")
	}
	c := CompetingRisks{risks: make([]Distribution, len(risks))}
	copy(c.risks, risks)
	return c, nil
}

// MustCompetingRisks is NewCompetingRisks but panics on invalid parameters.
func MustCompetingRisks(risks []Distribution) CompetingRisks {
	c, err := NewCompetingRisks(risks)
	if err != nil {
		panic(err)
	}
	return c
}

// CDF returns 1 - Π(1 - F_i(t)).
func (c CompetingRisks) CDF(t float64) float64 {
	s := 1.0
	for _, r := range c.risks {
		s *= Survival(r, t)
	}
	return 1 - s
}

// PDF returns the density S(t) Σ h_i(t) via the product rule.
func (c CompetingRisks) PDF(t float64) float64 {
	var total float64
	for i := range c.risks {
		f := c.risks[i].PDF(t)
		for j := range c.risks {
			if j != i {
				f *= Survival(c.risks[j], t)
			}
		}
		total += f
	}
	return total
}

// Quantile inverts the CDF numerically.
func (c CompetingRisks) Quantile(p float64) float64 { return invertCDF(c, p) }

// Mean integrates the survival function numerically: E[T] = ∫S(t)dt.
func (c CompetingRisks) Mean() float64 {
	return survivalMean(c)
}

// Variance integrates 2∫t S(t)dt - mean².
func (c CompetingRisks) Variance() float64 {
	return survivalVariance(c)
}

// Sample draws every mechanism and returns the minimum.
func (c CompetingRisks) Sample(r *rng.RNG) float64 {
	min := c.risks[0].Sample(r)
	for _, d := range c.risks[1:] {
		if v := d.Sample(r); v < min {
			min = v
		}
	}
	return min
}

// Hazard returns the summed mechanism hazards.
func (c CompetingRisks) Hazard(t float64) float64 {
	var h float64
	for _, r := range c.risks {
		h += Hazard(r, t)
	}
	return h
}

var _ Hazarder = CompetingRisks{}

// invertCDF inverts a monotone CDF by doubling bracket + bisection.
func invertCDF(d Distribution, p float64) float64 {
	if p <= 0 {
		// Largest t with CDF(t) == 0 is distribution-specific; 0 is a safe
		// lower bound for lifetime distributions.
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1.0
	for d.CDF(hi) < p {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// survivalMean computes E[T] = ∫₀^∞ S(t) dt by adaptive trapezoid out to the
// 1-1e-9 quantile.
func survivalMean(d Distribution) float64 {
	upper := d.Quantile(1 - 1e-9)
	if math.IsInf(upper, 1) || upper <= 0 {
		return math.NaN()
	}
	const n = 20000
	h := upper / n
	sum := 0.5 * (Survival(d, 0) + Survival(d, upper))
	for i := 1; i < n; i++ {
		sum += Survival(d, float64(i)*h)
	}
	return sum * h
}

// survivalVariance computes Var[T] = 2∫ t S(t) dt - E[T]².
func survivalVariance(d Distribution) float64 {
	upper := d.Quantile(1 - 1e-9)
	if math.IsInf(upper, 1) || upper <= 0 {
		return math.NaN()
	}
	const n = 20000
	h := upper / n
	sum := 0.5 * upper * Survival(d, upper)
	for i := 1; i < n; i++ {
		t := float64(i) * h
		sum += t * Survival(d, t)
	}
	m := survivalMean(d)
	return 2*sum*h - m*m
}
