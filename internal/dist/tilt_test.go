package dist

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

var (
	_ CumHazarder = Weibull{}
	_ CumHazarder = Exponential{}
	_ LogPDFer    = Weibull{}
	_ LogPDFer    = Exponential{}
)

// TestLogPDFMatchesPDF: the closed-form log densities agree with ln(PDF)
// wherever the plain density does not underflow.
func TestLogPDFMatchesPDF(t *testing.T) {
	dists := []Distribution{
		MustWeibull(1.12, 461386, 0),
		MustWeibull(2, 12, 6),
		MustWeibull(0.5, 100, 0),
		MustExponential(1.0 / 9259),
	}
	for _, d := range dists {
		for _, x := range []float64{0.5, 1, 7, 100, 5000, 87600} {
			want := math.Log(d.PDF(x))
			got := LogPDF(d, x)
			if math.IsInf(want, -1) && math.IsInf(got, -1) {
				continue
			}
			if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
				t.Errorf("%v: LogPDF(%g) = %v, ln PDF = %v", d, x, got, want)
			}
		}
	}
}

// TestCumHazardOfMatchesSurvival: closed-form cumulative hazards agree
// with -ln S(t), and the generic fallback kicks in for distributions
// without the interface.
func TestCumHazardOfMatchesSurvival(t *testing.T) {
	dists := []Distribution{
		MustWeibull(1.12, 461386, 0),
		MustWeibull(3, 168, 6),
		MustExponential(2.5e-5),
	}
	for _, d := range dists {
		for _, x := range []float64{0, 1, 50, 1000, 87600} {
			want := -math.Log(Survival(d, x))
			got := CumHazardOf(d, x)
			if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
				t.Errorf("%v: CumHazardOf(%g) = %v, -ln S = %v", d, x, got, want)
			}
		}
	}
}

// TestSampleHazardScaledIdentity: for every draw the returned cumHazard is
// exactly the base cumulative hazard at the returned x (up to inversion
// round-off), and the uncensored log ratio matches the explicit density
// ratio f(x)/g(x) computed against the closed-form tilted distribution
// (Weibull scale η·θ^(-1/β)).
func TestSampleHazardScaledIdentity(t *testing.T) {
	const theta = 5.0
	f := MustWeibull(1.12, 461386, 0)
	g := MustWeibull(1.12, 461386*math.Pow(theta, -1/1.12), 0)
	r := rng.New(7)
	for i := 0; i < 200; i++ {
		x, h := SampleHazardScaled(f, theta, r)
		if hx := f.CumHazard(x); math.Abs(hx-h) > 1e-9*(h+1e-300) {
			t.Fatalf("draw %d: CumHazard(x)=%v, returned h=%v", i, hx, h)
		}
		want := f.LogPDF(x) - g.LogPDF(x)
		got := HazardScaleLogRatio(f, theta, x)
		if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
			t.Fatalf("draw %d: log ratio %v, density-based %v", i, got, want)
		}
	}
}

// TestSampleHazardScaledUnscaled: theta = 1 must reproduce the base
// distribution's law (checked on the empirical mean) with log ratio 0.
func TestSampleHazardScaledUnscaled(t *testing.T) {
	d := MustExponential(1e-3)
	r := rng.New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x, _ := SampleHazardScaled(d, 1, r)
		sum += x
		if lr := HazardScaleLogRatio(d, 1, x); lr != 0 {
			t.Fatalf("theta=1 draw has nonzero log ratio %v", lr)
		}
	}
	mean := sum / n
	if math.Abs(mean-d.Mean()) > 3*d.Mean()/math.Sqrt(n) {
		t.Errorf("theta=1 empirical mean %v, want %v", mean, d.Mean())
	}
}

// TestTiltedWeightsIntegrateToOne: E_g[f/g] = 1. With the draw censored at
// a horizon (the sampling scheme the engines use) the weight of each
// outcome class is bounded, so the empirical mean converges reliably even
// for theta where the uncensored ratio has infinite variance.
func TestTiltedWeightsIntegrateToOne(t *testing.T) {
	const (
		theta   = 5.0
		horizon = 20000.0
		n       = 400000
	)
	d := MustWeibull(1.12, 461386, 0)
	r := rng.New(11)
	sum := 0.0
	for i := 0; i < n; i++ {
		x, h := SampleHazardScaled(d, theta, r)
		var logLR float64
		if x > horizon {
			logLR = HazardScaleCensoredLogRatio(d, theta, horizon)
		} else {
			logLR = (theta-1)*h - math.Log(theta)
		}
		sum += math.Exp(logLR)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("E_g[W] = %v, want 1 (censored weights)", mean)
	}
}
