package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// Uniform is the continuous uniform distribution on [lo, hi].
type Uniform struct {
	lo, hi float64
}

var _ Distribution = Uniform{}

// NewUniform returns a uniform distribution on [lo, hi], lo < hi.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return Uniform{}, fmt.Errorf("uniform: require finite lo < hi, got [%v, %v]", lo, hi)
	}
	return Uniform{lo: lo, hi: hi}, nil
}

// MustUniform is NewUniform but panics on invalid parameters.
func MustUniform(lo, hi float64) Uniform {
	u, err := NewUniform(lo, hi)
	if err != nil {
		panic(err)
	}
	return u
}

// PDF returns 1/(hi-lo) inside the support.
func (u Uniform) PDF(t float64) float64 {
	if t < u.lo || t > u.hi {
		return 0
	}
	return 1 / (u.hi - u.lo)
}

// CDF returns the linear ramp on [lo, hi].
func (u Uniform) CDF(t float64) float64 {
	switch {
	case t <= u.lo:
		return 0
	case t >= u.hi:
		return 1
	default:
		return (t - u.lo) / (u.hi - u.lo)
	}
}

// Quantile returns lo + p(hi-lo).
func (u Uniform) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return u.lo
	case p >= 1:
		return u.hi
	default:
		return u.lo + p*(u.hi-u.lo)
	}
}

// Mean returns (lo+hi)/2.
func (u Uniform) Mean() float64 { return (u.lo + u.hi) / 2 }

// Variance returns (hi-lo)²/12.
func (u Uniform) Variance() float64 {
	w := u.hi - u.lo
	return w * w / 12
}

// Sample draws a uniform variate.
func (u Uniform) Sample(r *rng.RNG) float64 {
	return u.lo + r.Float64()*(u.hi-u.lo)
}

// String implements fmt.Stringer.
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g, %g]", u.lo, u.hi) }

// Deterministic is a point mass at a fixed value. Used for fixed repair
// delays and for testing event orderings exactly.
type Deterministic struct {
	value float64
}

var _ Distribution = Deterministic{}

// NewDeterministic returns a point mass at v >= 0.
func NewDeterministic(v float64) (Deterministic, error) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return Deterministic{}, fmt.Errorf("deterministic: value must be finite and non-negative, got %v", v)
	}
	return Deterministic{value: v}, nil
}

// MustDeterministic is NewDeterministic but panics on invalid parameters.
func MustDeterministic(v float64) Deterministic {
	d, err := NewDeterministic(v)
	if err != nil {
		panic(err)
	}
	return d
}

// Value returns the point-mass location.
func (d Deterministic) Value() float64 { return d.value }

// PDF returns 0 everywhere (the point mass has no density).
func (d Deterministic) PDF(t float64) float64 { return 0 }

// CDF is the step function at the value.
func (d Deterministic) CDF(t float64) float64 {
	if t < d.value {
		return 0
	}
	return 1
}

// Quantile returns the value for every p.
func (d Deterministic) Quantile(p float64) float64 { return d.value }

// Mean returns the value.
func (d Deterministic) Mean() float64 { return d.value }

// Variance returns 0.
func (d Deterministic) Variance() float64 { return 0 }

// Sample returns the value.
func (d Deterministic) Sample(r *rng.RNG) float64 { return d.value }

// String implements fmt.Stringer.
func (d Deterministic) String() string { return fmt.Sprintf("Deterministic(%g)", d.value) }
