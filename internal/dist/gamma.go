package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// Gamma is the gamma distribution with shape k and scale θ. It models the
// time to the k-th event of a Poisson process — e.g. the time for a SMART
// reallocation counter to accumulate k media-defect events (§3.1) — and
// serves as an alternative wear-out family in the field generator.
type Gamma struct {
	shape float64 // k
	scale float64 // θ
}

var _ Distribution = Gamma{}

// NewGamma returns a gamma distribution with shape k > 0 and scale θ > 0.
func NewGamma(shape, scale float64) (Gamma, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Gamma{}, fmt.Errorf("gamma: shape must be positive and finite, got %v", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Gamma{}, fmt.Errorf("gamma: scale must be positive and finite, got %v", scale)
	}
	return Gamma{shape: shape, scale: scale}, nil
}

// MustGamma is NewGamma but panics on invalid parameters.
func MustGamma(shape, scale float64) Gamma {
	g, err := NewGamma(shape, scale)
	if err != nil {
		panic(err)
	}
	return g
}

// Shape returns k.
func (g Gamma) Shape() float64 { return g.shape }

// Scale returns θ.
func (g Gamma) Scale() float64 { return g.scale }

// PDF returns the density t^(k-1) exp(-t/θ) / (Γ(k) θ^k).
func (g Gamma) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t == 0 {
		switch {
		case g.shape < 1:
			return math.Inf(1)
		case g.shape == 1:
			return 1 / g.scale
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.shape)
	logf := (g.shape-1)*math.Log(t) - t/g.scale - lg - g.shape*math.Log(g.scale)
	return math.Exp(logf)
}

// CDF returns the regularized lower incomplete gamma P(k, t/θ).
func (g Gamma) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return regIncGammaP(g.shape, t/g.scale)
}

// Quantile inverts the CDF by bisection refined with Newton steps.
func (g Gamma) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Bracket: mean + k·stddev grows until CDF exceeds p.
	lo, hi := 0.0, g.Mean()+4*math.Sqrt(g.Variance())
	for g.CDF(hi) < p {
		lo = hi
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if g.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// Mean returns kθ.
func (g Gamma) Mean() float64 { return g.shape * g.scale }

// Variance returns kθ².
func (g Gamma) Variance() float64 { return g.shape * g.scale * g.scale }

// Sample draws a gamma variate with the Marsaglia–Tsang method (shape >= 1)
// and Johnk's boost for shape < 1.
func (g Gamma) Sample(r *rng.RNG) float64 {
	k := g.shape
	boost := 1.0
	if k < 1 {
		// T ~ Gamma(k) can be drawn as Gamma(k+1) * U^(1/k).
		boost = math.Pow(r.Float64Open(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.scale
		}
	}
}

// String implements fmt.Stringer.
func (g Gamma) String() string { return fmt.Sprintf("Gamma(k=%g, θ=%g)", g.shape, g.scale) }

// regIncGammaP computes the regularized lower incomplete gamma function
// P(a, x) by series expansion for x < a+1 and continued fraction otherwise
// (Numerical Recipes style).
func regIncGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series representation.
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-16 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a, x) = 1 - P(a, x).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-16 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
