package dist

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

func TestExponentialBasics(t *testing.T) {
	e := MustExponential(1.0 / 12)
	if !almostEqual(e.Mean(), 12, 1e-12) {
		t.Errorf("Mean = %v, want 12", e.Mean())
	}
	if !almostEqual(e.Variance(), 144, 1e-12) {
		t.Errorf("Variance = %v, want 144", e.Variance())
	}
	if !almostEqual(e.CDF(12), 1-math.Exp(-1), 1e-12) {
		t.Errorf("CDF(mean) = %v", e.CDF(12))
	}
	if e.Hazard(0) != e.Hazard(1e6) {
		t.Error("exponential hazard is not constant")
	}
	if got := e.Quantile(0.5); !almostEqual(got, 12*math.Ln2, 1e-12) {
		t.Errorf("median = %v, want %v", got, 12*math.Ln2)
	}
}

func TestExponentialMemoryless(t *testing.T) {
	// P(T > s+t | T > s) == P(T > t).
	e := MustExponential(0.01)
	for _, s := range []float64{10, 100, 500} {
		for _, tt := range []float64{5, 50} {
			cond := Survival(e, s+tt) / Survival(e, s)
			if !almostEqual(cond, Survival(e, tt), 1e-10) {
				t.Errorf("memoryless violated at s=%v t=%v: %v vs %v",
					s, tt, cond, Survival(e, tt))
			}
		}
	}
}

func TestExponentialFromMean(t *testing.T) {
	e, err := ExponentialFromMean(461386)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Rate(), 1.0/461386, 1e-15) {
		t.Errorf("rate = %v", e.Rate())
	}
	if _, err := ExponentialFromMean(0); err == nil {
		t.Error("ExponentialFromMean(0) succeeded")
	}
	if _, err := NewExponential(-1); err == nil {
		t.Error("NewExponential(-1) succeeded")
	}
}

func TestLogNormalBasics(t *testing.T) {
	l := MustLogNormal(2, 0.5)
	if !almostEqual(l.Mean(), math.Exp(2+0.125), 1e-12) {
		t.Errorf("Mean = %v", l.Mean())
	}
	// Median is exp(mu).
	if !almostEqual(l.Quantile(0.5), math.Exp(2), 1e-9) {
		t.Errorf("median = %v, want %v", l.Quantile(0.5), math.Exp(2))
	}
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9, 0.999} {
		if !almostEqual(l.CDF(l.Quantile(p)), p, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, l.CDF(l.Quantile(p)))
		}
	}
}

func TestLogNormalSampleMoments(t *testing.T) {
	l := MustLogNormal(1, 0.25)
	r := rng.New(5)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += l.Sample(r)
	}
	if !almostEqual(sum/n, l.Mean(), 0.01) {
		t.Errorf("sample mean %v vs analytic %v", sum/n, l.Mean())
	}
}

func TestStdNormalQuantileAccuracy(t *testing.T) {
	// Known values of the standard normal inverse CDF.
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.0013498980316300933, -3},
		{0.9999683287581669, 4},
	}
	for _, c := range cases {
		if got := stdNormalQuantile(c.p); math.Abs(got-c.z) > 1e-9 {
			t.Errorf("Φ⁻¹(%v) = %v, want %v", c.p, got, c.z)
		}
	}
	if !math.IsInf(stdNormalQuantile(0), -1) || !math.IsInf(stdNormalQuantile(1), 1) {
		t.Error("quantile edges not infinite")
	}
}

func TestUniformBasics(t *testing.T) {
	u := MustUniform(2, 10)
	if u.Mean() != 6 {
		t.Errorf("Mean = %v", u.Mean())
	}
	if !almostEqual(u.Variance(), 64.0/12, 1e-12) {
		t.Errorf("Variance = %v", u.Variance())
	}
	if u.CDF(1) != 0 || u.CDF(11) != 1 || u.CDF(6) != 0.5 {
		t.Error("uniform CDF wrong")
	}
	if u.Quantile(0.25) != 4 {
		t.Errorf("Quantile(0.25) = %v", u.Quantile(0.25))
	}
	if _, err := NewUniform(5, 5); err == nil {
		t.Error("degenerate uniform accepted")
	}
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		if v := u.Sample(r); v < 2 || v >= 10 {
			t.Fatalf("sample %v out of [2,10)", v)
		}
	}
}

func TestDeterministicBasics(t *testing.T) {
	d := MustDeterministic(6)
	if d.Mean() != 6 || d.Variance() != 0 {
		t.Error("deterministic moments wrong")
	}
	if d.CDF(5.99) != 0 || d.CDF(6) != 1 {
		t.Error("deterministic CDF wrong")
	}
	if d.Sample(rng.New(1)) != 6 {
		t.Error("deterministic sample wrong")
	}
	if _, err := NewDeterministic(-1); err == nil {
		t.Error("negative deterministic accepted")
	}
}

func TestGammaBasics(t *testing.T) {
	g := MustGamma(3, 2)
	if !almostEqual(g.Mean(), 6, 1e-12) {
		t.Errorf("Mean = %v", g.Mean())
	}
	if !almostEqual(g.Variance(), 12, 1e-12) {
		t.Errorf("Variance = %v", g.Variance())
	}
	// Gamma(1, θ) is Exponential(1/θ).
	g1 := MustGamma(1, 5)
	e := MustExponential(0.2)
	for _, tt := range []float64{0.5, 1, 5, 20} {
		if !almostEqual(g1.CDF(tt), e.CDF(tt), 1e-10) {
			t.Errorf("Gamma(1,5).CDF(%v) = %v, want %v", tt, g1.CDF(tt), e.CDF(tt))
		}
	}
	// Erlang: Gamma(2,1) CDF at t is 1 - e^-t (1 + t).
	g2 := MustGamma(2, 1)
	for _, tt := range []float64{0.5, 1, 3, 10} {
		want := 1 - math.Exp(-tt)*(1+tt)
		if !almostEqual(g2.CDF(tt), want, 1e-9) {
			t.Errorf("Erlang2 CDF(%v) = %v, want %v", tt, g2.CDF(tt), want)
		}
	}
}

func TestGammaQuantileInvertsCDF(t *testing.T) {
	g := MustGamma(2.5, 4)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if got := g.CDF(g.Quantile(p)); !almostEqual(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestGammaSampleMoments(t *testing.T) {
	r := rng.New(7)
	for _, g := range []Gamma{MustGamma(0.5, 2), MustGamma(1, 1), MustGamma(4, 3)} {
		const n = 300000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := g.Sample(r)
			if v < 0 {
				t.Fatalf("%v: negative sample %v", g, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if !almostEqual(mean, g.Mean(), 0.02) {
			t.Errorf("%v: sample mean %v vs %v", g, mean, g.Mean())
		}
		if !almostEqual(variance, g.Variance(), 0.05) {
			t.Errorf("%v: sample variance %v vs %v", g, variance, g.Variance())
		}
	}
}

func TestMixtureBasics(t *testing.T) {
	// Even mixture of two exponentials.
	a, b := MustExponential(1), MustExponential(0.1)
	m := MustMixture([]Distribution{a, b}, []float64{1, 1})
	if !almostEqual(m.Mean(), (1+10)/2.0, 1e-12) {
		t.Errorf("mixture mean = %v", m.Mean())
	}
	for _, tt := range []float64{0.5, 2, 10} {
		want := 0.5*a.CDF(tt) + 0.5*b.CDF(tt)
		if !almostEqual(m.CDF(tt), want, 1e-12) {
			t.Errorf("mixture CDF(%v) = %v, want %v", tt, m.CDF(tt), want)
		}
	}
	// Law of total variance.
	wantVar := 0.5*(a.Variance()+b.Variance()) +
		0.5*math.Pow(a.Mean()-m.Mean(), 2) + 0.5*math.Pow(b.Mean()-m.Mean(), 2)
	if !almostEqual(m.Variance(), wantVar, 1e-12) {
		t.Errorf("mixture variance = %v, want %v", m.Variance(), wantVar)
	}
}

func TestMixtureValidation(t *testing.T) {
	e := MustExponential(1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestMixtureSampleMatchesCDF(t *testing.T) {
	m := MustMixture(
		[]Distribution{MustWeibull(0.7, 100, 0), MustWeibull(3, 5000, 0)},
		[]float64{0.3, 0.7},
	)
	r := rng.New(11)
	const n = 200000
	// Empirical CDF at a few points vs analytic.
	points := []float64{50, 500, 3000, 6000}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		v := m.Sample(r)
		for j, p := range points {
			if v <= p {
				counts[j]++
			}
		}
	}
	for j, p := range points {
		emp := float64(counts[j]) / n
		if math.Abs(emp-m.CDF(p)) > 0.005 {
			t.Errorf("at %v: empirical %v vs analytic %v", p, emp, m.CDF(p))
		}
	}
}

func TestCompetingRisksMinOfExponentials(t *testing.T) {
	// min of Exp(a), Exp(b) is Exp(a+b) — exact check.
	c := MustCompetingRisks([]Distribution{MustExponential(0.01), MustExponential(0.03)})
	want := MustExponential(0.04)
	for _, tt := range []float64{1, 10, 100} {
		if !almostEqual(c.CDF(tt), want.CDF(tt), 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", tt, c.CDF(tt), want.CDF(tt))
		}
		if !almostEqual(c.Hazard(tt), 0.04, 1e-12) {
			t.Errorf("Hazard(%v) = %v, want 0.04", tt, c.Hazard(tt))
		}
	}
	if !almostEqual(c.Mean(), 25, 1e-3) {
		t.Errorf("Mean = %v, want 25", c.Mean())
	}
	if !almostEqual(c.Variance(), 625, 1e-2) {
		t.Errorf("Variance = %v, want 625", c.Variance())
	}
}

func TestCompetingRisksHazardsAdd(t *testing.T) {
	w1 := MustWeibull(0.9, 5e5, 0)
	w2 := MustWeibull(3, 2e4, 0)
	c := MustCompetingRisks([]Distribution{w1, w2})
	for _, tt := range []float64{100, 10000, 30000} {
		want := w1.Hazard(tt) + w2.Hazard(tt)
		if !almostEqual(c.Hazard(tt), want, 1e-10) {
			t.Errorf("Hazard(%v) = %v, want %v", tt, c.Hazard(tt), want)
		}
	}
	// The competing-risk hazard has a bathtub-like upturn: hazard at late
	// life exceeds hazard at mid life.
	if c.Hazard(30000) <= c.Hazard(3000) {
		t.Error("expected wear-out upturn in competing-risk hazard")
	}
}

func TestCompetingRisksSample(t *testing.T) {
	c := MustCompetingRisks([]Distribution{MustExponential(0.01), MustExponential(0.03)})
	r := rng.New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += c.Sample(r)
	}
	if !almostEqual(sum/n, 25, 0.01) {
		t.Errorf("sample mean %v, want ~25", sum/n)
	}
}

func TestEmpiricalBasics(t *testing.T) {
	e := MustEmpirical([]float64{10, 20, 30, 40})
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
	if e.Mean() != 25 {
		t.Errorf("Mean = %v", e.Mean())
	}
	if e.CDF(5) != 0 || e.CDF(40) != 1 {
		t.Error("empirical CDF edges wrong")
	}
	if got := e.CDF(25); !almostEqual(got, 0.625, 1e-12) {
		t.Errorf("CDF(25) = %v, want 0.625", got)
	}
	if got := e.Quantile(0.5); !almostEqual(got, 25, 1e-12) {
		t.Errorf("median = %v, want 25", got)
	}
	if _, err := NewEmpirical([]float64{1}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := NewEmpirical([]float64{1, -2}); err == nil {
		t.Error("negative observation accepted")
	}
}

func TestEmpiricalRoundTripsSample(t *testing.T) {
	// Build an empirical dist from Weibull draws; its quantiles should be
	// close to the source distribution's.
	w := MustWeibull(1.12, 461386, 0)
	r := rng.New(21)
	sample := make([]float64, 50000)
	for i := range sample {
		sample[i] = w.Sample(r)
	}
	e := MustEmpirical(sample)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if !almostEqual(e.Quantile(p), w.Quantile(p), 0.03) {
			t.Errorf("p=%v: empirical %v vs weibull %v", p, e.Quantile(p), w.Quantile(p))
		}
	}
}

func TestSurvivalClamps(t *testing.T) {
	w := MustWeibull(1, 1, 0)
	if Survival(w, -5) != 1 {
		t.Error("survival before support should be 1")
	}
	if s := Survival(w, 1e9); s != 0 {
		t.Errorf("survival at extreme tail = %v", s)
	}
}

func TestHazardFallbackPath(t *testing.T) {
	// LogNormal does not implement Hazarder, so Hazard uses f/(1-F).
	l := MustLogNormal(0, 1)
	tt := 1.5
	want := l.PDF(tt) / (1 - l.CDF(tt))
	if got := Hazard(l, tt); !almostEqual(got, want, 1e-12) {
		t.Errorf("Hazard = %v, want %v", got, want)
	}
}

func TestSampleByInversionAgreesWithSample(t *testing.T) {
	// Inversion sampling from the Weibull should give the same moments as
	// the direct sampler (both are exact).
	w := MustWeibull(2, 12, 6)
	r := rng.New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += sampleByInversion(w, r)
	}
	if !almostEqual(sum/n, w.Mean(), 0.01) {
		t.Errorf("inversion mean %v vs analytic %v", sum/n, w.Mean())
	}
}
