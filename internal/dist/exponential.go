package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// Exponential is the constant-hazard distribution the MTTDL method assumes
// for both failures and repairs. Rate λ is the reciprocal of the mean.
type Exponential struct {
	rate float64
}

var _ Distribution = Exponential{}
var _ Hazarder = Exponential{}
var _ CumHazarder = Exponential{}
var _ CumHazardInverter = Exponential{}

// NewExponential returns an exponential distribution with rate λ > 0 per
// hour.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("exponential: rate must be positive and finite, got %v", rate)
	}
	return Exponential{rate: rate}, nil
}

// MustExponential is NewExponential but panics on invalid parameters.
func MustExponential(rate float64) Exponential {
	e, err := NewExponential(rate)
	if err != nil {
		panic(err)
	}
	return e
}

// ExponentialFromMean returns an exponential distribution with the given
// mean (MTTF or MTTR), i.e. rate 1/mean.
func ExponentialFromMean(mean float64) (Exponential, error) {
	if !(mean > 0) || math.IsInf(mean, 0) {
		return Exponential{}, fmt.Errorf("exponential: mean must be positive and finite, got %v", mean)
	}
	return Exponential{rate: 1 / mean}, nil
}

// Rate returns λ.
func (e Exponential) Rate() float64 { return e.rate }

// PDF returns λ exp(-λt) for t >= 0.
func (e Exponential) PDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return e.rate * math.Exp(-e.rate*t)
}

// CDF returns 1 - exp(-λt).
func (e Exponential) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-e.rate * t)
}

// Quantile returns -ln(1-p)/λ.
func (e Exponential) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.rate
}

// Hazard returns the constant rate λ.
func (e Exponential) Hazard(t float64) float64 {
	if t < 0 {
		return 0
	}
	return e.rate
}

// CumHazard returns the cumulative hazard H(t) = λt.
func (e Exponential) CumHazard(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return e.rate * t
}

// QuantileFromCumHazard returns h/λ, the value whose cumulative hazard
// is h. Implements CumHazardInverter for the tilt samplers.
func (e Exponential) QuantileFromCumHazard(h float64) float64 {
	if h <= 0 {
		return 0
	}
	return h / e.rate
}

// LogPDF returns ln λ - λt for t >= 0.
func (e Exponential) LogPDF(t float64) float64 {
	if t < 0 {
		return math.Inf(-1)
	}
	return math.Log(e.rate) - e.rate*t
}

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.rate }

// Variance returns 1/λ².
func (e Exponential) Variance() float64 { return 1 / (e.rate * e.rate) }

// Sample draws an exponential variate by inversion.
func (e Exponential) Sample(r *rng.RNG) float64 {
	return r.ExpFloat64() / e.rate
}

// String implements fmt.Stringer.
func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(λ=%g)", e.rate)
}

// AsPoissonRate reports whether a renewal process with inter-arrival
// distribution d is a homogeneous Poisson process — i.e. whether d is
// memoryless — returning its rate. True for Exponential and for the
// Weibull special case shape 1 with no location shift; callers relying on
// Poisson structure (e.g. the conditional-DDF variate's thinned live-count
// expectation) must gate on this.
func AsPoissonRate(d Distribution) (float64, bool) {
	switch v := d.(type) {
	case Exponential:
		return v.rate, true
	case Weibull:
		if v.Shape() == 1 && v.Location() == 0 {
			return 1 / v.Scale(), true
		}
	}
	return 0, false
}
