package dist

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

// expTestKernels returns compiled kernels covering every specialized kind.
func expTestKernels(t *testing.T) []Kernel {
	t.Helper()
	var ks []Kernel
	for _, spec := range []struct{ shape, scale, loc float64 }{
		{1, 9259, 0}, {2, 12, 6}, {3, 168, 6}, {1.12, 461386, 0},
	} {
		w, err := NewWeibull(spec.shape, spec.scale, spec.loc)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, Compile(w))
	}
	e, err := NewExponential(1.08e-4)
	if err != nil {
		t.Fatal(err)
	}
	ks = append(ks, Compile(e))
	return ks
}

// TestFromExpMatchesDraw pins the exp-variate entry point: FromExp applied
// to the exponential variate Draw would have consumed produces the exact
// same value.
func TestFromExpMatchesDraw(t *testing.T) {
	for ki, k := range expTestKernels(t) {
		if !k.Compiled() {
			t.Fatalf("kernel %d did not compile", ki)
		}
		for seed := uint64(1); seed <= 20; seed++ {
			ra, rb := rng.New(seed), rng.New(seed)
			want := k.Draw(ra)
			got := k.FromExp(rb.ExpFloat64())
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("kernel %d seed %d: FromExp = %v, Draw = %v", ki, seed, got, want)
			}
		}
	}
}

// TestCumHazardExported checks the exported hazard against the interface
// helper it wraps.
func TestCumHazardExported(t *testing.T) {
	for ki, k := range expTestKernels(t) {
		for _, tt := range []float64{0, 1, 6, 100, 87600, 1e6} {
			if got, want := k.CumHazard(tt), CumHazardOf(k.Distribution(), tt); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("kernel %d t=%v: CumHazard = %v, CumHazardOf = %v", ki, tt, got, want)
			}
		}
	}
}

// TestCompareExpNeverWrong is the safety property of the banded comparison:
// whenever CompareExp returns a certain verdict it must agree with the
// exact transform-and-compare, across random (e, x) pairs including pairs
// constructed to sit exactly on the boundary.
func TestCompareExpNeverWrong(t *testing.T) {
	r := rng.New(42)
	for ki, k := range expTestKernels(t) {
		uncertain := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			e := r.ExpFloat64()
			var x float64
			switch i % 4 {
			case 0:
				x = k.FromExp(r.ExpFloat64()) // another draw: far from e's boundary usually
			case 1:
				x = k.FromExp(e) // exactly on the boundary
			case 2:
				x = k.FromExp(e) * (1 + (r.Float64()-0.5)*1e-12) // a few ulps off
			default:
				x = r.Float64() * 1e6 // arbitrary magnitude
			}
			verdict := k.CompareExp(e, x)
			if verdict == 0 {
				uncertain++
				continue
			}
			exact := k.FromExp(e) > x
			if (verdict > 0) != exact {
				t.Fatalf("kernel %d: CompareExp(%v, %v) = %d, exact compare says %v", ki, e, x, verdict, exact)
			}
		}
		// Far-from-boundary pairs (3 of every 4 trials) must be mostly
		// certain, or the fast path is pointless — except for the general-β
		// Pow kind, which by design has no surrogate and is always uncertain.
		if k.kind != kindWeibullPow && uncertain > trials/2 {
			t.Fatalf("kernel %d: %d/%d comparisons uncertain — band too wide", ki, uncertain, trials)
		}
	}
}

// TestCompareExpBelowLocation covers the x <= loc branch: a threshold well
// below the location is certainly exceeded, a threshold at the location is
// uncertain.
func TestCompareExpBelowLocation(t *testing.T) {
	w, err := NewWeibull(3, 168, 6)
	if err != nil {
		t.Fatal(err)
	}
	k := Compile(w)
	if got := k.CompareExp(1.0, 5.0); got != 1 {
		t.Fatalf("x well below loc: verdict %d, want 1", got)
	}
	if got := k.CompareExp(1.0, 6.0); got != 0 {
		t.Fatalf("x at loc: verdict %d, want 0 (uncertain)", got)
	}
	if got := k.CompareExp(1e-300, 6.0+1e-9); got != 0 {
		t.Fatalf("x just above loc with tiny e: verdict %d, want 0 (uncertain)", got)
	}
}

// TestCompareHazard covers the package-level band compare used with
// caller-precomputed thresholds (the general-β TTOp mission hazard).
func TestCompareHazard(t *testing.T) {
	for _, tc := range []struct {
		e, h float64
		want int
	}{
		{2.0, 1.0, 1},
		{0.5, 1.0, -1},
		{1.0, 1.0, 0},
		{1.0 + 1e-9, 1.0, 0},
		{1.0000021, 1.0, 1},
		{0.9999979, 1.0, -1},
		{3e8, 1.2e8, 1},
		{5e7, 1.2e8, -1},
		{1.3e8, 1.2e8, 0},
	} {
		if got := CompareHazard(tc.e, tc.h); got != tc.want {
			t.Fatalf("CompareHazard(%v, %v) = %d, want %d", tc.e, tc.h, got, tc.want)
		}
	}
}

// TestDrawLRFromExpMatchesDrawLR pins the tilted exp-variate entry point
// against DrawLR over a seed grid, covering both the censored and the
// uncensored branch, and CensoredLogLR against the censored branch's value.
func TestDrawLRFromExpMatchesDrawLR(t *testing.T) {
	w, err := NewWeibull(1.12, 461386, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{2, 8} {
		tk := CompileTilted(w, theta)
		censored, uncensored := 0, 0
		for seed := uint64(1); seed <= 200; seed++ {
			const m = 87600
			ra, rb := rng.New(seed), rng.New(seed)
			wantX, wantLR := tk.DrawLR(m, ra)
			gotX, gotLR := tk.DrawLRFromExp(rb.ExpFloat64(), m)
			if math.Float64bits(gotX) != math.Float64bits(wantX) || math.Float64bits(gotLR) != math.Float64bits(wantLR) {
				t.Fatalf("theta %v seed %d: DrawLRFromExp = (%v, %v), DrawLR = (%v, %v)",
					theta, seed, gotX, gotLR, wantX, wantLR)
			}
			if wantX > m {
				censored++
				if math.Float64bits(tk.CensoredLogLR(m)) != math.Float64bits(wantLR) {
					t.Fatalf("theta %v seed %d: CensoredLogLR = %v, censored DrawLR ratio = %v",
						theta, seed, tk.CensoredLogLR(m), wantLR)
				}
			} else {
				uncensored++
			}
		}
		if censored == 0 || uncensored == 0 {
			t.Fatalf("theta %v: seed grid did not cover both branches (%d censored, %d uncensored)", theta, censored, uncensored)
		}
	}
}
