package dist

import (
	"math"
	"math/big"
	"sort"
	"testing"

	"raidrel/internal/rng"
)

// kernelTestDists is the equivalence grid: every kernel kind (β = 1, 2, 3
// specializations, the generic-β power path, the exponential, and the
// interface fallback), with and without location shifts.
func kernelTestDists() []Distribution {
	return []Distribution{
		MustWeibull(1, 9259, 0),       // kindWeibullExp (paper TTLd)
		MustWeibull(1, 12, 6),         // kindWeibullExp, shifted
		MustWeibull(2, 12, 6),         // kindWeibullSqrt (paper TTR)
		MustWeibull(2, 461386, 0),     // kindWeibullSqrt, unshifted
		MustWeibull(3, 168, 6),        // kindWeibullCbrt (paper TTScrub)
		MustWeibull(3, 1000, 0),       // kindWeibullCbrt, unshifted
		MustWeibull(1.12, 461386, 0),  // kindWeibullPow (paper TTOp)
		MustWeibull(0.7, 3e6, 0),      // kindWeibullPow, infant mortality
		MustExponential(1.0 / 461386), // kindExponential
		MustExponential(2.5),          // kindExponential
		MustMixture([]Distribution{ // kindGeneric: interface fallback
			MustWeibull(1.1, 4.5e5, 0),
			MustWeibull(1.5, 7.5e4, 0),
		}, []float64{0.5, 0.5}),
	}
}

// TestKernelDrawMatchesSample asserts the tentpole's hard invariant: for
// every distribution and seed, Compile(d).Draw is bit-identical to
// d.Sample — same values, same RNG consumption — so engines may mix
// kernel and interface draws on one stream without desynchronizing.
func TestKernelDrawMatchesSample(t *testing.T) {
	const draws = 2000
	for _, d := range kernelTestDists() {
		for seed := uint64(1); seed <= 5; seed++ {
			k := Compile(d)
			rK, rS := rng.New(seed), rng.New(seed)
			for i := 0; i < draws; i++ {
				got, want := k.Draw(rK), d.Sample(rS)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%v seed %d draw %d: kernel %v (%#x) != sample %v (%#x)",
						d, seed, i, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
			// Same stream position afterwards: one extra draw still agrees.
			if got, want := k.Draw(rK), d.Sample(rS); got != want {
				t.Fatalf("%v seed %d: streams desynchronized after %d draws", d, seed, draws)
			}
		}
	}
}

// TestKernelFillMatchesSequentialDraws asserts the batched Fill contract:
// one Fill call equals len(dst) sequential Draw calls bit-for-bit.
func TestKernelFillMatchesSequentialDraws(t *testing.T) {
	for _, d := range kernelTestDists() {
		k := Compile(d)
		for _, n := range []int{1, 7, 256} {
			rF, rD := rng.New(99), rng.New(99)
			batch := make([]float64, n)
			k.Fill(batch, rF)
			for i := range batch {
				want := k.Draw(rD)
				if math.Float64bits(batch[i]) != math.Float64bits(want) {
					t.Fatalf("%v Fill(%d)[%d] = %v, sequential draw = %v", d, n, i, batch[i], want)
				}
			}
			if rF.Uint64() != rD.Uint64() {
				t.Fatalf("%v Fill(%d): stream positions diverge", d, n)
			}
		}
	}
}

// TestTiltedKernelMatchesInterfaceSequence asserts that the fused DrawLR
// is bit-identical to the interface sequence it replaces — the
// hazard-scaled draw plus the censored or uncensored log likelihood ratio
// — including the censored-weight branch, over a grid of seeds, tilt
// factors, and censoring horizons.
func TestTiltedKernelMatchesInterfaceSequence(t *testing.T) {
	const draws = 1000
	for _, d := range kernelTestDists() {
		for _, theta := range []float64{0.5, 2, 8} {
			// Horizons straddling the tilted distribution's bulk so both
			// the censored (x > m) and uncensored branches run.
			med := QuantileFromCumHazardOf(d, math.Ln2/theta)
			for _, m := range []float64{med / 4, med, med * 16} {
				k := CompileTilted(d, theta)
				rK, rI := rng.New(7), rng.New(7)
				censored, uncensored := 0, 0
				for i := 0; i < draws; i++ {
					x, lr := k.DrawLR(m, rK)

					wantX, h := SampleHazardScaled(d, theta, rI)
					var wantLR float64
					if wantX > m {
						wantLR = HazardScaleCensoredLogRatio(d, theta, m)
						censored++
					} else {
						wantLR = (theta-1)*h - math.Log(theta)
						uncensored++
					}
					if math.Float64bits(x) != math.Float64bits(wantX) {
						t.Fatalf("%v θ=%g m=%g draw %d: x=%v want %v", d, theta, m, i, x, wantX)
					}
					if math.Float64bits(lr) != math.Float64bits(wantLR) {
						t.Fatalf("%v θ=%g m=%g draw %d (x=%v): logLR=%v want %v", d, theta, m, i, x, lr, wantLR)
					}
				}
				if m == med && (censored == 0 || uncensored == 0) {
					t.Fatalf("%v θ=%g m=%g: branch coverage censored=%d uncensored=%d",
						d, theta, m, censored, uncensored)
				}
			}
		}
	}
}

// TestTiltedKernelThetaOneIsIdentity: θ = 1 must reproduce the base
// sampler's values with exactly zero log ratios, so a biased run with a
// unit factor is bit-equivalent to plain Monte Carlo.
func TestTiltedKernelThetaOneIsIdentity(t *testing.T) {
	d := MustWeibull(1.12, 461386, 0)
	k := CompileTilted(d, 1)
	rK, rS := rng.New(3), rng.New(3)
	for i := 0; i < 1000; i++ {
		x, lr := k.DrawLR(1e5, rK)
		if lr != 0 {
			t.Fatalf("draw %d: θ=1 log ratio = %v, want exactly 0", i, lr)
		}
		if want := d.Sample(rS); math.Float64bits(x) != math.Float64bits(want) {
			t.Fatalf("draw %d: θ=1 draw %v != base sample %v", i, x, want)
		}
	}
}

// ulpDiff returns the distance in representable float64 steps between two
// finite same-sign values.
func ulpDiff(a, b float64) uint64 {
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	if d := ia - ib; d < 0 {
		return uint64(-d)
	} else {
		return uint64(d)
	}
}

// refCbrt returns the correctly rounded cube root of x (x > 0) via
// 200-bit Newton iteration.
func refCbrt(x float64) float64 {
	const prec = 200
	bx := new(big.Float).SetPrec(prec).SetFloat64(x)
	y := new(big.Float).SetPrec(prec).SetFloat64(math.Cbrt(x))
	three := big.NewFloat(3).SetPrec(prec)
	for i := 0; i < 5; i++ {
		// y <- y - (y^3 - x) / (3 y^2)
		y2 := new(big.Float).SetPrec(prec).Mul(y, y)
		y3 := new(big.Float).SetPrec(prec).Mul(y2, y)
		num := new(big.Float).SetPrec(prec).Sub(y3, bx)
		den := new(big.Float).SetPrec(prec).Mul(three, y2)
		step := new(big.Float).SetPrec(prec).Quo(num, den)
		y.Sub(y, step)
	}
	f, _ := y.Float64()
	return f
}

// TestWeibullSpecializationAccuracy is the specialization property test:
// over a million standard-exponential inputs, the β = 1 and β = 2 fast
// paths must agree with the generic math.Pow evaluation bit-for-bit (Go's
// Pow special-cases exponents 1 and 0.5 to identity and Sqrt), and the
// β = 3 Cbrt path must be within 1 ulp of the correctly rounded cube root
// — tighter than the generic Pow evaluation, which strays several ulp.
func TestWeibullSpecializationAccuracy(t *testing.T) {
	const draws = 1_000_000
	r := rng.New(42)
	maxCbrtUlp := uint64(0)
	for i := 0; i < draws; i++ {
		e := r.ExpFloat64()
		if got, want := weibullICDFExp(kindWeibullExp, 0, 1, 1, e), math.Pow(e, 1); got != want {
			t.Fatalf("β=1 specialization: e=%v -> %v, Pow gives %v", e, got, want)
		}
		if got, want := weibullICDFExp(kindWeibullSqrt, 0, 1, 0.5, e), math.Pow(e, 0.5); got != want {
			t.Fatalf("β=2 specialization: e=%v -> %v, Pow gives %v", e, got, want)
		}
		cbrt := weibullICDFExp(kindWeibullCbrt, 0, 1, 1.0/3, e)
		// Checking the correctly rounded reference for every input would
		// dominate the test; screen with the cheap Pow comparison and
		// verify the exact ulp distance only where they disagree, plus a
		// deterministic 1-in-4096 sample.
		if cbrt != math.Pow(e, 1.0/3) || i%4096 == 0 {
			if d := ulpDiff(cbrt, refCbrt(e)); d > maxCbrtUlp {
				maxCbrtUlp = d
			}
		}
	}
	if maxCbrtUlp > 1 {
		t.Errorf("β=3 specialization strays %d ulp from the correctly rounded cube root, want <= 1", maxCbrtUlp)
	}
}

// TestKernelDrawsMatchAnalyticCDF is the distributional check on the
// specialized paths: a Kolmogorov–Smirnov test of kernel draws against
// each distribution's analytic CDF. With n = 2e5 the critical value at
// α = 0.001 is 1.95/√n; the fixed seed makes the test deterministic.
func TestKernelDrawsMatchAnalyticCDF(t *testing.T) {
	const n = 200_000
	dists := []Distribution{
		MustWeibull(1, 9259, 0),
		MustWeibull(2, 12, 6),
		MustWeibull(3, 168, 6),
		MustWeibull(1.12, 461386, 0),
		MustExponential(2.5),
	}
	xs := make([]float64, n)
	for _, d := range dists {
		k := Compile(d)
		k.Fill(xs, rng.New(20070625))
		sort.Float64s(xs)
		dStat := 0.0
		for i, x := range xs {
			f := d.CDF(x)
			if hi := float64(i+1)/n - f; hi > dStat {
				dStat = hi
			}
			if lo := f - float64(i)/n; lo > dStat {
				dStat = lo
			}
		}
		if crit := 1.95 / math.Sqrt(n); dStat > crit {
			t.Errorf("%v: KS statistic %.5f exceeds %.5f (α=0.001)", d, dStat, crit)
		}
	}
}

// --- microbenchmarks (run with -benchmem; the hot paths must not allocate) ---

// BenchmarkKernelWeibull measures one compiled draw per specialization,
// next to the interface path it replaces.
func BenchmarkKernelWeibull(b *testing.B) {
	cases := []struct {
		name string
		d    Distribution
	}{
		{"Beta1Exp", MustWeibull(1, 9259, 0)},
		{"Beta2Sqrt", MustWeibull(2, 12, 6)},
		{"Beta3Cbrt", MustWeibull(3, 168, 6)},
		{"GenericPow", MustWeibull(1.12, 461386, 0)},
	}
	for _, c := range cases {
		k := Compile(c.d)
		b.Run(c.name, func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += k.Draw(r)
			}
			benchSink = sink
		})
		b.Run(c.name+"/Interface", func(b *testing.B) {
			d := c.d
			r := rng.New(1)
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += d.Sample(r)
			}
			benchSink = sink
		})
	}
}

// BenchmarkKernelTilted measures the fused tilted draw against the
// interface sequence it replaces (hazard-scaled sample + censored or
// uncensored log-ratio), at the paper base case's θ = 8 tilt.
func BenchmarkKernelTilted(b *testing.B) {
	d := MustWeibull(1.12, 461386, 0)
	const theta, m = 8, 87600
	b.Run("Fused", func(b *testing.B) {
		k := CompileTilted(d, theta)
		r := rng.New(1)
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			x, lr := k.DrawLR(m, r)
			sink += x + lr
		}
		benchSink = sink
	})
	b.Run("Interface", func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		var sink float64
		for i := 0; i < b.N; i++ {
			x, h := SampleHazardScaled(d, theta, r)
			var lr float64
			if x > m {
				lr = HazardScaleCensoredLogRatio(d, theta, m)
			} else {
				lr = (theta-1)*h - math.Log(theta)
			}
			sink += x + lr
		}
		benchSink = sink
	})
}

// BenchmarkKernelFill measures the batched draw path.
func BenchmarkKernelFill(b *testing.B) {
	k := Compile(MustWeibull(3, 168, 6))
	dst := make([]float64, 1024)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Fill(dst, r)
	}
	benchSink = dst[0]
}

var benchSink float64
