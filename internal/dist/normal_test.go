package dist

import (
	"math"
	"testing"

	"raidrel/internal/rng"
)

func TestNormalBasics(t *testing.T) {
	n := MustNormal(10, 2)
	if n.Mean() != 10 || n.Variance() != 4 {
		t.Error("moments wrong")
	}
	if !almostEqual(n.CDF(10), 0.5, 1e-12) {
		t.Errorf("CDF(mean) = %v", n.CDF(10))
	}
	// 68-95-99.7.
	if got := n.CDF(12) - n.CDF(8); math.Abs(got-0.6827) > 0.001 {
		t.Errorf("one-sigma mass = %v", got)
	}
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.999} {
		if !almostEqual(n.CDF(n.Quantile(p)), p, 1e-9) {
			t.Errorf("quantile roundtrip at %v", p)
		}
	}
	if _, err := NewNormal(0, 0); err == nil {
		t.Error("zero sd accepted")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NaN mean accepted")
	}
}

func TestNormalSampleMoments(t *testing.T) {
	n := MustNormal(5, 3)
	r := rng.New(81)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := n.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-5) > 0.03 || math.Abs(variance-9) > 0.1 {
		t.Errorf("sample moments %v/%v", mean, variance)
	}
}

func TestTruncatedValidation(t *testing.T) {
	n := MustNormal(0, 1)
	if _, err := NewTruncated(nil, 0, 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewTruncated(n, 2, 2); err == nil {
		t.Error("empty window accepted")
	}
	if _, err := NewTruncated(n, 50, 60); err == nil {
		t.Error("zero-mass window accepted")
	}
}

func TestTruncatedNormalIsLifetime(t *testing.T) {
	// A scrub-time model: normal(168, 50) truncated to [6, 400].
	tr := MustTruncated(MustNormal(168, 50), 6, 400)
	r := rng.New(82)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := tr.Sample(r)
		if v < 6 || v > 400 {
			t.Fatalf("sample %v outside window", v)
		}
		sum += v
	}
	if math.Abs(sum/draws-tr.Mean()) > 0.02*tr.Mean() {
		t.Errorf("sample mean %v vs analytic %v", sum/draws, tr.Mean())
	}
	if tr.CDF(5) != 0 || tr.CDF(401) != 1 {
		t.Error("CDF edges wrong")
	}
	for _, p := range []float64{0.05, 0.5, 0.95} {
		if !almostEqual(tr.CDF(tr.Quantile(p)), p, 1e-6) {
			t.Errorf("roundtrip at %v", p)
		}
	}
	// Density renormalizes: integrate PDF over window ~ 1.
	const n = 50000
	h := (400.0 - 6.0) / n
	area := 0.5 * (tr.PDF(6) + tr.PDF(400))
	for i := 1; i < n; i++ {
		area += tr.PDF(6 + float64(i)*h)
	}
	if !almostEqual(area*h, 1, 1e-4) {
		t.Errorf("PDF area = %v", area*h)
	}
}

// The paper's §6.4 claim: a β = 3 Weibull looks Normal. Quantify with the
// KS distance between a Weibull(3, η) and the moment-matched normal: it
// should be small (a few percent).
func TestWeibullShape3IsNearNormal(t *testing.T) {
	w := MustWeibull(3, 168, 6)
	n := MustNormal(w.Mean(), math.Sqrt(w.Variance()))
	var maxGap float64
	for x := 6.0; x < 400; x += 0.5 {
		if gap := math.Abs(w.CDF(x) - n.CDF(x)); gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap > 0.02 {
		t.Errorf("Weibull(β=3) vs normal KS distance %v; the paper's claim needs < 0.02", maxGap)
	}
	// Contrast: β = 1 is nowhere near normal.
	e := MustWeibull(1, 168, 0)
	ne := MustNormal(e.Mean(), math.Sqrt(e.Variance()))
	var expGap float64
	for x := 0.0; x < 1000; x += 1 {
		if gap := math.Abs(e.CDF(x) - ne.CDF(x)); gap > expGap {
			expGap = gap
		}
	}
	if expGap < 0.05 {
		t.Errorf("β = 1 should not be normal-like (gap %v)", expGap)
	}
}

func TestTruncatedVarianceFinite(t *testing.T) {
	tr := MustTruncated(MustNormal(100, 30), 0, 200)
	v := tr.Variance()
	if !(v > 0) || v > 30*30 {
		t.Errorf("truncated variance %v should be positive and below the base variance", v)
	}
}
