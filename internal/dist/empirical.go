package dist

import (
	"fmt"
	"math"
	"sort"

	"raidrel/internal/rng"
)

// Empirical is the empirical distribution of an observed sample, with linear
// interpolation between order statistics. It lets the simulator run directly
// on (synthetic or real) field times-to-failure without committing to a
// parametric family.
type Empirical struct {
	sorted []float64
}

var _ Distribution = Empirical{}

// NewEmpirical returns the empirical distribution of the given sample of
// non-negative observations. The sample is copied and sorted.
func NewEmpirical(sample []float64) (Empirical, error) {
	if len(sample) < 2 {
		return Empirical{}, fmt.Errorf("empirical: need at least 2 observations, got %d", len(sample))
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	for _, v := range s {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Empirical{}, fmt.Errorf("empirical: invalid observation %v", v)
		}
	}
	sort.Float64s(s)
	return Empirical{sorted: s}, nil
}

// MustEmpirical is NewEmpirical but panics on invalid input.
func MustEmpirical(sample []float64) Empirical {
	e, err := NewEmpirical(sample)
	if err != nil {
		panic(err)
	}
	return e
}

// Len returns the sample size.
func (e Empirical) Len() int { return len(e.sorted) }

// PDF returns a histogram-free density estimate: the reciprocal of n times
// the local spacing of order statistics. It is rough; empirical
// distributions are primarily used through CDF/Quantile/Sample.
func (e Empirical) PDF(t float64) float64 {
	n := len(e.sorted)
	i := sort.SearchFloat64s(e.sorted, t)
	if i == 0 || i >= n {
		return 0
	}
	gap := e.sorted[i] - e.sorted[i-1]
	if gap <= 0 {
		return math.Inf(1)
	}
	return 1 / (float64(n) * gap)
}

// CDF returns the fraction of observations <= t with linear interpolation.
func (e Empirical) CDF(t float64) float64 {
	n := len(e.sorted)
	if t < e.sorted[0] {
		return 0
	}
	if t >= e.sorted[n-1] {
		return 1
	}
	i := sort.SearchFloat64s(e.sorted, t) // first index with sorted[i] >= t
	if e.sorted[i] == t {
		// Step up through ties.
		j := i
		for j < n && e.sorted[j] == t {
			j++
		}
		return float64(j) / float64(n)
	}
	// Interpolate between the order-statistic anchors (x_i, i/n), with x_i
	// the i-th smallest observation (1-indexed).
	lo, hi := e.sorted[i-1], e.sorted[i]
	frac := (t - lo) / (hi - lo)
	return (float64(i) + frac) / float64(n)
}

// Quantile returns the interpolated order statistic at probability p.
func (e Empirical) Quantile(p float64) float64 {
	n := len(e.sorted)
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return e.sorted[n-1]
	}
	return e.sorted[i] + frac*(e.sorted[i+1]-e.sorted[i])
}

// Mean returns the sample mean.
func (e Empirical) Mean() float64 {
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Variance returns the population variance of the sample.
func (e Empirical) Variance() float64 {
	m := e.Mean()
	var sum float64
	for _, v := range e.sorted {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(e.sorted))
}

// Sample draws uniformly among the interpolated quantiles (a smoothed
// bootstrap draw).
func (e Empirical) Sample(r *rng.RNG) float64 {
	return e.Quantile(r.Float64())
}

// String implements fmt.Stringer.
func (e Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d)", len(e.sorted))
}
