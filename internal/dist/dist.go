// Package dist implements the lifetime distributions used by the RAID
// reliability model: the three-parameter Weibull family the paper fits to
// field data, plus the exponential (the distribution the MTTDL method
// implicitly assumes), and supporting families for building mixed and
// competing-risk field populations.
//
// All sampling is by inverse-CDF transform against the package rng
// substrate, so every draw is reproducible from a seed.
package dist

import (
	"math"

	"raidrel/internal/rng"
)

// Distribution is a continuous lifetime distribution on [0, +inf).
//
// Implementations must be immutable after construction so they can be shared
// across concurrent Monte Carlo workers.
type Distribution interface {
	// PDF returns the probability density f(t). Zero outside support.
	PDF(t float64) float64
	// CDF returns P(T <= t).
	CDF(t float64) float64
	// Quantile returns the p-quantile, the inverse of CDF, for p in [0, 1).
	Quantile(p float64) float64
	// Mean returns E[T].
	Mean() float64
	// Variance returns Var[T].
	Variance() float64
	// Sample draws one variate using r.
	Sample(r *rng.RNG) float64
}

// Hazarder is implemented by distributions with a closed-form hazard
// (instantaneous failure) rate h(t) = f(t)/(1-F(t)).
type Hazarder interface {
	Hazard(t float64) float64
}

// Survival returns the survival function 1 - CDF(t) of d, clamped to [0, 1].
func Survival(d Distribution, t float64) float64 {
	s := 1 - d.CDF(t)
	switch {
	case s < 0:
		return 0
	case s > 1:
		return 1
	default:
		return s
	}
}

// Hazard returns the hazard rate of d at t, using the closed form when the
// distribution provides one and f/(1-F) otherwise. Returns +Inf where the
// survival function is zero but the density is not.
func Hazard(d Distribution, t float64) float64 {
	if h, ok := d.(Hazarder); ok {
		return h.Hazard(t)
	}
	s := Survival(d, t)
	f := d.PDF(t)
	if s == 0 {
		if f == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return f / s
}

// sampleByInversion draws by the inverse-CDF transform using an open-interval
// uniform so Quantile never sees p = 0 or p = 1.
func sampleByInversion(d Distribution, r *rng.RNG) float64 {
	return d.Quantile(r.Float64Open())
}
