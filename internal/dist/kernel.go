package dist

import (
	"math"

	"raidrel/internal/rng"
)

// This file implements the sampler-compilation layer. A Kernel is a
// distribution "compiled" once at configuration time: the per-draw
// constants (1/β, the tilt's ln θ, ...) are precomputed and the draw
// routine is selected by a small tag, so the simulation hot loop pays
// neither dynamic dispatch nor a generic math.Pow per variate. The paper's
// base case uses exactly β = 1.12 (TTOp), β = 1 (TTLd), β = 2 (TTR) and
// β = 3 (TTScrub), so almost every draw of a campaign resolves to a plain
// exponential, a Sqrt, or a Cbrt.
//
// Correctness bar: a kernel must consume the RNG in exactly the same order
// as the Distribution it was compiled from and produce bit-identical
// variates. The engines mix kernel draws with interface draws (tracing,
// generic distributions), checkpoints resume mid-campaign from a stream
// index, and the worker-invariance guarantee replays stream i for
// iteration i — one flipped bit in one draw desynchronizes all of them.
// Bit-identity is guaranteed structurally: Kernel.Draw and the family's
// Sample method both evaluate the same weibullICDFExp helper with the same
// precomputed constants, so there is a single source of truth for the
// transform (see weibull.go).

// kernelKind tags the specialized draw routine a Kernel dispatches to.
type kernelKind uint8

const (
	// kindGeneric falls back to the Distribution interface.
	kindGeneric kernelKind = iota
	// kindWeibullExp is Weibull β = 1: γ + η·E, a shifted exponential.
	kindWeibullExp
	// kindWeibullSqrt is Weibull β = 2: γ + η·√E (math.Pow special-cases
	// exponent 0.5 to Sqrt, so this is bit-identical to the generic form).
	kindWeibullSqrt
	// kindWeibullCbrt is Weibull β = 3: γ + η·∛E. math.Cbrt is correctly
	// rounded where math.Pow(E, 1/3) can be several ulp off, so the cube
	// root is both the faster and the more accurate evaluation.
	kindWeibullCbrt
	// kindWeibullPow is the general Weibull: γ + η·E^(1/β) with 1/β cached.
	kindWeibullPow
	// kindExponential is Exponential(λ): E/λ.
	kindExponential
)

// weibullKindFor selects the specialization for a Weibull shape.
func weibullKindFor(shape float64) kernelKind {
	switch shape {
	case 1:
		return kindWeibullExp
	case 2:
		return kindWeibullSqrt
	case 3:
		return kindWeibullCbrt
	default:
		return kindWeibullPow
	}
}

// weibullICDFExp maps a standard exponential variate e (equivalently a
// cumulative hazard) to the Weibull value γ + η·e^(1/β) through the
// kind-selected specialization. Every Weibull sampling path — Sample,
// QuantileFromCumHazard, Kernel.Draw, TiltedKernel.DrawLR — funnels
// through this one function, which is what makes the kernel layer
// bit-identical to the interface layer by construction.
func weibullICDFExp(kind kernelKind, loc, scale, invShape, e float64) float64 {
	switch kind {
	case kindWeibullExp:
		return loc + scale*e
	case kindWeibullSqrt:
		return loc + scale*math.Sqrt(e)
	case kindWeibullCbrt:
		return loc + scale*math.Cbrt(e)
	default:
		return loc + scale*math.Pow(e, invShape)
	}
}

// Kernel is a compiled sampler for one distribution. Compile it once per
// configuration (not per draw); the zero value is not usable. Kernels are
// plain values — copying is cheap and a copy is as good as the original —
// and, like the distributions they compile, safe for concurrent use from
// multiple goroutines each holding its own RNG.
type Kernel struct {
	kind kernelKind
	// Weibull constants (γ, η, β, 1/β); for kindExponential, scale holds
	// the rate λ and the others are unused.
	loc, scale, shape, invShape float64
	// d retains the source distribution for the generic fallback and for
	// closed-form cumulative hazards the specialized kinds don't cover.
	d Distribution
}

// Compile returns the kernel for d. Weibull and Exponential — every
// transition distribution of the paper's model — compile to specialized
// direct code; any other distribution gets a generic kernel that draws
// through the interface, so Compile is total and always safe to use.
func Compile(d Distribution) Kernel {
	switch v := d.(type) {
	case Weibull:
		return Kernel{kind: v.kind, loc: v.loc, scale: v.scale, shape: v.shape, invShape: v.invShape, d: d}
	case Exponential:
		return Kernel{kind: kindExponential, scale: v.rate, d: d}
	default:
		return Kernel{kind: kindGeneric, d: d}
	}
}

// Distribution returns the distribution the kernel was compiled from.
func (k *Kernel) Distribution() Distribution { return k.d }

// Draw returns one variate, bit-identical to k.Distribution().Sample(r)
// (same RNG consumption, same value).
func (k *Kernel) Draw(r *rng.RNG) float64 {
	switch k.kind {
	case kindGeneric:
		return k.d.Sample(r)
	case kindExponential:
		return r.ExpFloat64() / k.scale
	default:
		return weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, r.ExpFloat64())
	}
}

// Fill draws len(dst) variates into dst, bit-identical to len(dst)
// sequential Draw calls. The compiled kinds batch the RNG fill first
// (rng.ExpFloat64s) and then transform in place, which keeps the generator
// state hot instead of round-tripping it through every transform.
func (k *Kernel) Fill(dst []float64, r *rng.RNG) {
	switch k.kind {
	case kindGeneric:
		for i := range dst {
			dst[i] = k.d.Sample(r)
		}
	case kindExponential:
		r.ExpFloat64s(dst)
		for i := range dst {
			dst[i] /= k.scale
		}
	default:
		r.ExpFloat64s(dst)
		for i := range dst {
			dst[i] = weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, dst[i])
		}
	}
}

// cumHazard returns the base distribution's cumulative hazard H(t),
// bit-identical to CumHazardOf(k.Distribution(), t): the Weibull and
// exponential branches replicate those types' CumHazard methods exactly.
func (k *Kernel) cumHazard(t float64) float64 {
	switch k.kind {
	case kindGeneric:
		return CumHazardOf(k.d, t)
	case kindExponential:
		if t <= 0 {
			return 0
		}
		return k.scale * t
	default:
		if t <= k.loc {
			return 0
		}
		if k.kind == kindWeibullExp {
			return (t - k.loc) / k.scale
		}
		return math.Pow((t-k.loc)/k.scale, k.shape)
	}
}

// quantileFromCumHazard inverts the survival function at e^(-h),
// bit-identical to QuantileFromCumHazardOf(k.Distribution(), h).
func (k *Kernel) quantileFromCumHazard(h float64) float64 {
	switch k.kind {
	case kindGeneric:
		return QuantileFromCumHazardOf(k.d, h)
	case kindExponential:
		if h <= 0 {
			return 0
		}
		return h / k.scale
	default:
		if h <= 0 {
			return k.loc
		}
		return weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, h)
	}
}

// TiltedKernel is a compiled sampler for the proportional-hazards tilt of
// a distribution by factor θ, fused with the per-draw log likelihood
// ratio: one DrawLR call replaces the SampleHazardScaled +
// HazardScale(Censored)LogRatio sequence of the interface layer, with
// ln θ and θ-1 precomputed. See tilt.go for the measure-change math.
type TiltedKernel struct {
	Kernel
	theta, thetaM1, logTheta float64
}

// CompileTilted returns the tilted kernel for d with factor theta > 0.
// theta = 1 is valid (the identity tilt with zero log ratios) but callers
// should prefer plain Compile for the unbiased case.
func CompileTilted(d Distribution, theta float64) TiltedKernel {
	return TiltedKernel{
		Kernel:   Compile(d),
		theta:    theta,
		thetaM1:  theta - 1,
		logTheta: math.Log(theta),
	}
}

// Theta returns the tilt factor.
func (k *TiltedKernel) Theta() float64 { return k.theta }

// DrawLR draws one variate x from the tilt of the base distribution and
// returns it with the draw's log likelihood ratio ln(f/g), censored at m:
// a draw landing beyond m contributes the ratio of survival masses
// ln(S_f(m)/S_g(m)) = (θ-1)·H_f(m) rather than the density ratio at x,
// because the caller discards such draws and the censored ratio is what
// keeps every weight factor bounded (the uncensored per-draw ratio has
// unbounded second moment for θ >= 2).
//
// DrawLR is bit-identical — same RNG consumption, same x, same ratio — to
// the interface sequence it fuses:
//
//	x, h := SampleHazardScaled(d, θ, r)
//	if x > m { lr = HazardScaleCensoredLogRatio(d, θ, m) }
//	else     { lr = (θ-1)*h - ln θ }
func (k *TiltedKernel) DrawLR(m float64, r *rng.RNG) (x, logLR float64) {
	h := r.ExpFloat64() / k.theta
	x = k.quantileFromCumHazard(h)
	if x > m {
		return x, k.thetaM1 * k.cumHazard(m)
	}
	return x, k.thetaM1*h - k.logTheta
}
