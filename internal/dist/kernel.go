package dist

import (
	"math"

	"raidrel/internal/rng"
)

// This file implements the sampler-compilation layer. A Kernel is a
// distribution "compiled" once at configuration time: the per-draw
// constants (1/β, the tilt's ln θ, ...) are precomputed and the draw
// routine is selected by a small tag, so the simulation hot loop pays
// neither dynamic dispatch nor a generic math.Pow per variate. The paper's
// base case uses exactly β = 1.12 (TTOp), β = 1 (TTLd), β = 2 (TTR) and
// β = 3 (TTScrub), so almost every draw of a campaign resolves to a plain
// exponential, a Sqrt, or a Cbrt.
//
// Correctness bar: a kernel must consume the RNG in exactly the same order
// as the Distribution it was compiled from and produce bit-identical
// variates. The engines mix kernel draws with interface draws (tracing,
// generic distributions), checkpoints resume mid-campaign from a stream
// index, and the worker-invariance guarantee replays stream i for
// iteration i — one flipped bit in one draw desynchronizes all of them.
// Bit-identity is guaranteed structurally: Kernel.Draw and the family's
// Sample method both evaluate the same weibullICDFExp helper with the same
// precomputed constants, so there is a single source of truth for the
// transform (see weibull.go).

// kernelKind tags the specialized draw routine a Kernel dispatches to.
type kernelKind uint8

const (
	// kindGeneric falls back to the Distribution interface.
	kindGeneric kernelKind = iota
	// kindWeibullExp is Weibull β = 1: γ + η·E, a shifted exponential.
	kindWeibullExp
	// kindWeibullSqrt is Weibull β = 2: γ + η·√E (math.Pow special-cases
	// exponent 0.5 to Sqrt, so this is bit-identical to the generic form).
	kindWeibullSqrt
	// kindWeibullCbrt is Weibull β = 3: γ + η·∛E. math.Cbrt is correctly
	// rounded where math.Pow(E, 1/3) can be several ulp off, so the cube
	// root is both the faster and the more accurate evaluation.
	kindWeibullCbrt
	// kindWeibullPow is the general Weibull: γ + η·E^(1/β) with 1/β cached.
	kindWeibullPow
	// kindExponential is Exponential(λ): E/λ.
	kindExponential
)

// weibullKindFor selects the specialization for a Weibull shape.
func weibullKindFor(shape float64) kernelKind {
	switch shape {
	case 1:
		return kindWeibullExp
	case 2:
		return kindWeibullSqrt
	case 3:
		return kindWeibullCbrt
	default:
		return kindWeibullPow
	}
}

// weibullICDFExp maps a standard exponential variate e (equivalently a
// cumulative hazard) to the Weibull value γ + η·e^(1/β) through the
// kind-selected specialization. Every Weibull sampling path — Sample,
// QuantileFromCumHazard, Kernel.Draw, TiltedKernel.DrawLR — funnels
// through this one function, which is what makes the kernel layer
// bit-identical to the interface layer by construction.
func weibullICDFExp(kind kernelKind, loc, scale, invShape, e float64) float64 {
	switch kind {
	case kindWeibullExp:
		return loc + scale*e
	case kindWeibullSqrt:
		return loc + scale*math.Sqrt(e)
	case kindWeibullCbrt:
		return loc + scale*math.Cbrt(e)
	default:
		return loc + scale*math.Pow(e, invShape)
	}
}

// Kernel is a compiled sampler for one distribution. Compile it once per
// configuration (not per draw); the zero value is not usable. Kernels are
// plain values — copying is cheap and a copy is as good as the original —
// and, like the distributions they compile, safe for concurrent use from
// multiple goroutines each holding its own RNG.
type Kernel struct {
	kind kernelKind
	// Weibull constants (γ, η, β, 1/β); for kindExponential, scale holds
	// the rate λ and the others are unused.
	loc, scale, shape, invShape float64
	// d retains the source distribution for the generic fallback and for
	// closed-form cumulative hazards the specialized kinds don't cover.
	d Distribution
}

// Compile returns the kernel for d. Weibull and Exponential — every
// transition distribution of the paper's model — compile to specialized
// direct code; any other distribution gets a generic kernel that draws
// through the interface, so Compile is total and always safe to use.
func Compile(d Distribution) Kernel {
	switch v := d.(type) {
	case Weibull:
		return Kernel{kind: v.kind, loc: v.loc, scale: v.scale, shape: v.shape, invShape: v.invShape, d: d}
	case Exponential:
		return Kernel{kind: kindExponential, scale: v.rate, d: d}
	default:
		return Kernel{kind: kindGeneric, d: d}
	}
}

// Distribution returns the distribution the kernel was compiled from.
func (k *Kernel) Distribution() Distribution { return k.d }

// Draw returns one variate, bit-identical to k.Distribution().Sample(r)
// (same RNG consumption, same value).
func (k *Kernel) Draw(r *rng.RNG) float64 {
	switch k.kind {
	case kindGeneric:
		return k.d.Sample(r)
	case kindExponential:
		return r.ExpFloat64() / k.scale
	default:
		return weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, r.ExpFloat64())
	}
}

// Fill draws len(dst) variates into dst, bit-identical to len(dst)
// sequential Draw calls. The compiled kinds batch the RNG fill first
// (rng.ExpFloat64s) and then transform in place, which keeps the generator
// state hot instead of round-tripping it through every transform.
func (k *Kernel) Fill(dst []float64, r *rng.RNG) {
	switch k.kind {
	case kindGeneric:
		for i := range dst {
			dst[i] = k.d.Sample(r)
		}
	case kindExponential:
		r.ExpFloat64s(dst)
		for i := range dst {
			dst[i] /= k.scale
		}
	default:
		r.ExpFloat64s(dst)
		for i := range dst {
			dst[i] = weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, dst[i])
		}
	}
}

// Compiled reports whether the kernel has a specialized (non-generic) draw
// routine — i.e. whether FromExp and the hazard-domain helpers below are
// available. Weibull and Exponential distributions always compile.
func (k *Kernel) Compiled() bool { return k.kind != kindGeneric }

// FromExp maps a unit-exponential variate e to the kernel's variate,
// bit-identical to what Draw computes from the same e: batch consumers
// pre-fill exponential columns with rng.Uint64s and transform through
// FromExp, reproducing Draw's stream exactly. Panics on a generic kernel
// (no closed-form transform); guard with Compiled.
func (k *Kernel) FromExp(e float64) float64 {
	switch k.kind {
	case kindGeneric:
		panic("dist: FromExp on a generic kernel")
	case kindExponential:
		return e / k.scale
	default:
		return weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, e)
	}
}

// CumHazard returns the base distribution's cumulative hazard H(t) — the
// exported form of cumHazard, bit-identical to CumHazardOf(Distribution(), t).
// Because Draw is exactly the inverse map e ↦ H⁻¹(e), H(x) is the
// exponential-domain image of a threshold x: Draw(e) > x ⟺ e > H(x) in
// exact arithmetic, which is what the block engine's lazy transforms
// compare against.
func (k *Kernel) CumHazard(t float64) float64 { return k.cumHazard(t) }

// Guard bands for the certain hazard-domain comparisons: wide enough to
// absorb every rounding step on both sides of the predicate (the surrogate
// hazard's few ulps, the draw transform's few ulps, and the caller's
// boundary arithmetic), narrow enough that the exact fallback fires with
// probability ~1e-6. See CompareExp for the margin analysis.
const (
	hazardRelBand = 1e-6
	hazardAbsBand = 1e-6
	// hazardHuge caps the banded comparison: beyond it the relative margin
	// arguments thin out, so only a factor-two separation is ruled certain.
	hazardHuge = 1e8
)

// CompareHazard reports how a unit-exponential variate e compares to a
// cumulative-hazard threshold h when the verdict is certain despite
// floating-point rounding on either side: +1 (e surely above), -1 (surely
// below), or 0 inside the guard band, where the caller must fall back to
// the exact transform-and-compare. Both e and h may carry a few ulps of
// rounding from their own computation.
func CompareHazard(e, h float64) int {
	if h > hazardHuge {
		switch {
		case e > 2*h:
			return 1
		case e < h/2:
			return -1
		default:
			return 0
		}
	}
	switch {
	case e > h*(1+hazardRelBand)+hazardAbsBand:
		return 1
	case e < h*(1-hazardRelBand)-hazardAbsBand:
		return -1
	default:
		return 0
	}
}

// CompareExp reports how the variate FromExp(e) compares to x when that is
// certain despite rounding: +1 (FromExp(e) > x surely), -1 (< x surely), or
// 0 when e lands inside the guard band around the exact boundary — or when
// the kernel has no cheap hazard surrogate (generic, or the general-β Pow
// kind whose surrogate would cost the same math.Pow it is meant to avoid).
// On 0 the caller computes FromExp(e) and compares directly.
//
// Margin sketch for the certain verdicts: the surrogate hazard h of x is
// exact-math-monotone-equivalent to the draw comparison and computed with
// ≤4 roundings, the draw transform chain carries ≤3 (no cancellation:
// loc, scale, e all non-negative), and the caller's boundary x may carry a
// few more — all O(ε) relative, dwarfed by the 1e-6 relative band. The
// absolute band covers the regime h → 0 where the relative band vanishes;
// the loc/scale term keeps the derived draw-domain margin above ε·loc even
// for extreme location/scale ratios.
func (k *Kernel) CompareExp(e, x float64) int {
	var h, abs float64
	switch k.kind {
	case kindExponential:
		if x <= 0 {
			if x < 0 {
				return 1 // draws are strictly positive
			}
			return 0
		}
		h = x * k.scale // scale holds the rate: e/rate > x ⟺ e > x·rate
		abs = hazardAbsBand
	case kindWeibullExp, kindWeibullSqrt, kindWeibullCbrt:
		z := (x - k.loc) / k.scale
		if z <= 0 {
			// x at or below the location. The draw loc + scale·g(e) with
			// g(e) > 0 certainly exceeds x when x is clearly below loc; at
			// the boundary the outer addition can round down to loc itself,
			// so stay uncertain there.
			if k.loc-x > hazardRelBand*k.scale+1e-12*k.loc {
				return 1
			}
			return 0
		}
		switch k.kind {
		case kindWeibullExp:
			h = z
		case kindWeibullSqrt:
			h = z * z
		default:
			h = z * z * z
		}
		abs = hazardAbsBand * (1 + k.loc/k.scale)
	default:
		return 0
	}
	if h > hazardHuge {
		switch {
		case e > 2*h:
			return 1
		case e < h/2:
			return -1
		default:
			return 0
		}
	}
	switch {
	case e > h*(1+hazardRelBand)+abs:
		return 1
	case e < h*(1-hazardRelBand)-abs:
		return -1
	default:
		return 0
	}
}

// cumHazard returns the base distribution's cumulative hazard H(t),
// bit-identical to CumHazardOf(k.Distribution(), t): the Weibull and
// exponential branches replicate those types' CumHazard methods exactly.
func (k *Kernel) cumHazard(t float64) float64 {
	switch k.kind {
	case kindGeneric:
		return CumHazardOf(k.d, t)
	case kindExponential:
		if t <= 0 {
			return 0
		}
		return k.scale * t
	default:
		if t <= k.loc {
			return 0
		}
		if k.kind == kindWeibullExp {
			return (t - k.loc) / k.scale
		}
		return math.Pow((t-k.loc)/k.scale, k.shape)
	}
}

// quantileFromCumHazard inverts the survival function at e^(-h),
// bit-identical to QuantileFromCumHazardOf(k.Distribution(), h).
func (k *Kernel) quantileFromCumHazard(h float64) float64 {
	switch k.kind {
	case kindGeneric:
		return QuantileFromCumHazardOf(k.d, h)
	case kindExponential:
		if h <= 0 {
			return 0
		}
		return h / k.scale
	default:
		if h <= 0 {
			return k.loc
		}
		return weibullICDFExp(k.kind, k.loc, k.scale, k.invShape, h)
	}
}

// TiltedKernel is a compiled sampler for the proportional-hazards tilt of
// a distribution by factor θ, fused with the per-draw log likelihood
// ratio: one DrawLR call replaces the SampleHazardScaled +
// HazardScale(Censored)LogRatio sequence of the interface layer, with
// ln θ and θ-1 precomputed. See tilt.go for the measure-change math.
type TiltedKernel struct {
	Kernel
	theta, thetaM1, logTheta float64
}

// CompileTilted returns the tilted kernel for d with factor theta > 0.
// theta = 1 is valid (the identity tilt with zero log ratios) but callers
// should prefer plain Compile for the unbiased case.
func CompileTilted(d Distribution, theta float64) TiltedKernel {
	return TiltedKernel{
		Kernel:   Compile(d),
		theta:    theta,
		thetaM1:  theta - 1,
		logTheta: math.Log(theta),
	}
}

// Theta returns the tilt factor.
func (k *TiltedKernel) Theta() float64 { return k.theta }

// DrawLR draws one variate x from the tilt of the base distribution and
// returns it with the draw's log likelihood ratio ln(f/g), censored at m:
// a draw landing beyond m contributes the ratio of survival masses
// ln(S_f(m)/S_g(m)) = (θ-1)·H_f(m) rather than the density ratio at x,
// because the caller discards such draws and the censored ratio is what
// keeps every weight factor bounded (the uncensored per-draw ratio has
// unbounded second moment for θ >= 2).
//
// DrawLR is bit-identical — same RNG consumption, same x, same ratio — to
// the interface sequence it fuses:
//
//	x, h := SampleHazardScaled(d, θ, r)
//	if x > m { lr = HazardScaleCensoredLogRatio(d, θ, m) }
//	else     { lr = (θ-1)*h - ln θ }
func (k *TiltedKernel) DrawLR(m float64, r *rng.RNG) (x, logLR float64) {
	return k.DrawLRFromExp(r.ExpFloat64(), m)
}

// DrawLRFromExp is DrawLR fed from an externally supplied unit-exponential
// variate e, bit-identical to DrawLR when e comes from the same stream
// position — the tilted counterpart of Kernel.FromExp for batch consumers
// that pre-fill exponential columns.
func (k *TiltedKernel) DrawLRFromExp(e, m float64) (x, logLR float64) {
	h := e / k.theta
	x = k.quantileFromCumHazard(h)
	if x > m {
		return x, k.thetaM1 * k.cumHazard(m)
	}
	return x, k.thetaM1*h - k.logTheta
}

// CensoredLogLR returns the log likelihood ratio of a draw censored at m —
// (θ-1)·H(m), exactly the value DrawLRFromExp returns for a draw landing
// past m. Callers that can prove censoring from the hazard domain alone
// (CompareHazard against CumHazard(m)) use it to skip the quantile
// transform entirely.
func (k *TiltedKernel) CensoredLogLR(m float64) float64 {
	return k.thetaM1 * k.cumHazard(m)
}
