package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// Normal is the Gaussian distribution. As a lifetime model it must be
// truncated at zero (see Truncated); it exists mainly to test the paper's
// §6.4 claim that a β = 3 Weibull "produces a Normal shaped distribution"
// for scrub completion times.
type Normal struct {
	mean, sd float64
}

var _ Distribution = Normal{}

// NewNormal returns a normal distribution with the given mean and
// standard deviation sd > 0.
func NewNormal(mean, sd float64) (Normal, error) {
	if !(sd > 0) || math.IsInf(sd, 0) || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Normal{}, fmt.Errorf("normal: invalid parameters mean=%v sd=%v", mean, sd)
	}
	return Normal{mean: mean, sd: sd}, nil
}

// MustNormal is NewNormal but panics on invalid parameters.
func MustNormal(mean, sd float64) Normal {
	n, err := NewNormal(mean, sd)
	if err != nil {
		panic(err)
	}
	return n
}

// Mean returns μ.
func (n Normal) Mean() float64 { return n.mean }

// Variance returns σ².
func (n Normal) Variance() float64 { return n.sd * n.sd }

// PDF returns the density at t.
func (n Normal) PDF(t float64) float64 {
	z := (t - n.mean) / n.sd
	return math.Exp(-z*z/2) / (n.sd * math.Sqrt(2*math.Pi))
}

// CDF returns Φ((t-μ)/σ).
func (n Normal) CDF(t float64) float64 {
	return stdNormalCDF((t - n.mean) / n.sd)
}

// Quantile returns μ + σΦ⁻¹(p).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return n.mean + n.sd*stdNormalQuantile(p)
}

// Sample draws μ + σZ.
func (n Normal) Sample(r *rng.RNG) float64 {
	return n.mean + n.sd*r.NormFloat64()
}

// String implements fmt.Stringer.
func (n Normal) String() string { return fmt.Sprintf("Normal(μ=%g, σ=%g)", n.mean, n.sd) }

// Truncated restricts a distribution to [lo, hi] by conditioning: samples
// and probabilities are renormalized to the retained mass. It turns a
// Normal into a valid lifetime distribution (lo = 0) and models hard
// operational floors/caps like the paper's minimum and maximum
// reconstruction times (§6.2).
type Truncated struct {
	base   Distribution
	lo, hi float64
	pLo    float64 // base CDF at lo
	mass   float64 // base probability of [lo, hi]
}

var _ Distribution = Truncated{}

// NewTruncated returns base conditioned on [lo, hi]. The interval must
// retain positive probability.
func NewTruncated(base Distribution, lo, hi float64) (Truncated, error) {
	if base == nil {
		return Truncated{}, fmt.Errorf("truncated: nil base")
	}
	if !(lo < hi) {
		return Truncated{}, fmt.Errorf("truncated: need lo < hi, got [%v, %v]", lo, hi)
	}
	pLo := base.CDF(lo)
	mass := base.CDF(hi) - pLo
	if !(mass > 0) {
		return Truncated{}, fmt.Errorf("truncated: [%v, %v] has no probability mass", lo, hi)
	}
	return Truncated{base: base, lo: lo, hi: hi, pLo: pLo, mass: mass}, nil
}

// MustTruncated is NewTruncated but panics on invalid parameters.
func MustTruncated(base Distribution, lo, hi float64) Truncated {
	t, err := NewTruncated(base, lo, hi)
	if err != nil {
		panic(err)
	}
	return t
}

// PDF returns the renormalized density inside the window.
func (t Truncated) PDF(x float64) float64 {
	if x < t.lo || x > t.hi {
		return 0
	}
	return t.base.PDF(x) / t.mass
}

// CDF returns the conditioned CDF.
func (t Truncated) CDF(x float64) float64 {
	switch {
	case x <= t.lo:
		return 0
	case x >= t.hi:
		return 1
	default:
		return (t.base.CDF(x) - t.pLo) / t.mass
	}
}

// Quantile inverts by mapping p into the base quantile scale.
func (t Truncated) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return t.lo
	case p >= 1:
		return t.hi
	default:
		q := t.base.Quantile(t.pLo + p*t.mass)
		// Clamp against base-quantile numerical drift.
		return math.Min(math.Max(q, t.lo), t.hi)
	}
}

// Mean integrates the survival function over the window.
func (t Truncated) Mean() float64 {
	// E[T] = lo + ∫_{lo}^{hi} S(x) dx for the truncated variable.
	const n = 20000
	h := (t.hi - t.lo) / n
	sum := 0.5 * (Survival(t, t.lo) + Survival(t, t.hi))
	for i := 1; i < n; i++ {
		sum += Survival(t, t.lo+float64(i)*h)
	}
	return t.lo + sum*h
}

// Variance integrates numerically.
func (t Truncated) Variance() float64 {
	m := t.Mean()
	const n = 20000
	h := (t.hi - t.lo) / n
	var sum float64
	for i := 0; i <= n; i++ {
		x := t.lo + float64(i)*h
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		d := x - m
		sum += w * d * d * t.PDF(x)
	}
	return sum * h
}

// Sample draws by inversion within the retained mass.
func (t Truncated) Sample(r *rng.RNG) float64 {
	return t.Quantile(r.Float64Open())
}

// String implements fmt.Stringer.
func (t Truncated) String() string {
	return fmt.Sprintf("Truncated(%v on [%g, %g])", t.base, t.lo, t.hi)
}
