package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// LogNormal is the two-parameter lognormal distribution: ln T ~ N(μ, σ²).
// Lognormal lifetimes arise from multiplicative degradation processes and
// are a common alternative fit for drive wear-out populations; the field
// module uses it to build populations that a Weibull plot cannot linearize.
type LogNormal struct {
	mu    float64
	sigma float64
}

var _ Distribution = LogNormal{}

// NewLogNormal returns a lognormal distribution with log-mean mu and
// log-standard-deviation sigma > 0.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) || math.IsInf(sigma, 0) || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return LogNormal{}, fmt.Errorf("lognormal: invalid parameters mu=%v sigma=%v", mu, sigma)
	}
	return LogNormal{mu: mu, sigma: sigma}, nil
}

// MustLogNormal is NewLogNormal but panics on invalid parameters.
func MustLogNormal(mu, sigma float64) LogNormal {
	l, err := NewLogNormal(mu, sigma)
	if err != nil {
		panic(err)
	}
	return l
}

// Mu returns the log-mean μ.
func (l LogNormal) Mu() float64 { return l.mu }

// Sigma returns the log-standard-deviation σ.
func (l LogNormal) Sigma() float64 { return l.sigma }

// PDF returns the density at t.
func (l LogNormal) PDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	z := (math.Log(t) - l.mu) / l.sigma
	return math.Exp(-z*z/2) / (t * l.sigma * math.Sqrt(2*math.Pi))
}

// CDF returns Φ((ln t - μ)/σ).
func (l LogNormal) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return stdNormalCDF((math.Log(t) - l.mu) / l.sigma)
}

// Quantile returns exp(μ + σ Φ⁻¹(p)).
func (l LogNormal) Quantile(p float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return math.Exp(l.mu + l.sigma*stdNormalQuantile(p))
}

// Mean returns exp(μ + σ²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.mu + l.sigma*l.sigma/2)
}

// Variance returns (exp(σ²)-1) exp(2μ+σ²).
func (l LogNormal) Variance() float64 {
	s2 := l.sigma * l.sigma
	return math.Expm1(s2) * math.Exp(2*l.mu+s2)
}

// Sample draws exp(μ + σZ) with Z standard normal.
func (l LogNormal) Sample(r *rng.RNG) float64 {
	return math.Exp(l.mu + l.sigma*r.NormFloat64())
}

// String implements fmt.Stringer.
func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(μ=%g, σ=%g)", l.mu, l.sigma)
}

// stdNormalCDF is Φ(z), computed with the error function.
func stdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// stdNormalQuantile is Φ⁻¹(p) for p in (0,1), computed with the
// Acklam/Wichura-style rational approximation followed by one Halley
// refinement step, accurate to ~1e-15 over the full open interval.
func stdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Peter Acklam's rational approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement against the exact CDF.
	e := stdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}
