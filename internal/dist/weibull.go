package dist

import (
	"fmt"
	"math"

	"raidrel/internal/rng"
)

// Weibull is the three-parameter Weibull distribution used throughout the
// paper (§6):
//
//	f(t) = (β/η) ((t-γ)/η)^(β-1) exp(-((t-γ)/η)^β),  t >= γ
//
// Shape β < 1 gives a decreasing hazard (infant mortality), β = 1 reduces to
// a shifted exponential (constant hazard), and β > 1 gives wear-out. The
// location γ models hard minimum durations, e.g. the minimum time to rebuild
// a replaced drive (§6.2) or to complete a full-disk scrub pass (§6.4).
type Weibull struct {
	shape float64 // β
	scale float64 // η (characteristic life)
	loc   float64 // γ (location / minimum time)

	// Derived constants, computed once at construction so per-draw and
	// per-evaluation code never recomputes them: 1/β (the sampling
	// exponent), ln η (log-space evaluations), and the kernel
	// specialization tag for β ∈ {1, 2, 3} (see kernel.go).
	invShape float64
	logScale float64
	kind     kernelKind
}

var _ Distribution = Weibull{}
var _ Hazarder = Weibull{}
var _ CumHazarder = Weibull{}
var _ CumHazardInverter = Weibull{}

// NewWeibull returns a three-parameter Weibull with shape β > 0, scale
// η > 0, and location γ >= 0.
func NewWeibull(shape, scale, loc float64) (Weibull, error) {
	if !(shape > 0) || math.IsInf(shape, 0) {
		return Weibull{}, fmt.Errorf("weibull: shape must be positive and finite, got %v", shape)
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return Weibull{}, fmt.Errorf("weibull: scale must be positive and finite, got %v", scale)
	}
	if loc < 0 || math.IsNaN(loc) || math.IsInf(loc, 0) {
		return Weibull{}, fmt.Errorf("weibull: location must be finite and non-negative, got %v", loc)
	}
	return Weibull{
		shape:    shape,
		scale:    scale,
		loc:      loc,
		invShape: 1 / shape,
		logScale: math.Log(scale),
		kind:     weibullKindFor(shape),
	}, nil
}

// MustWeibull is NewWeibull but panics on invalid parameters. Intended for
// package-level defaults and tests with literal constants.
func MustWeibull(shape, scale, loc float64) Weibull {
	w, err := NewWeibull(shape, scale, loc)
	if err != nil {
		panic(err)
	}
	return w
}

// Shape returns β.
func (w Weibull) Shape() float64 { return w.shape }

// Scale returns η, the characteristic life (the 63.2nd percentile measured
// from the location).
func (w Weibull) Scale() float64 { return w.scale }

// Location returns γ, the minimum possible value.
func (w Weibull) Location() float64 { return w.loc }

// PDF returns the density at t.
func (w Weibull) PDF(t float64) float64 {
	if t < w.loc {
		return 0
	}
	z := (t - w.loc) / w.scale
	if z == 0 {
		switch {
		case w.shape < 1:
			return math.Inf(1)
		case w.shape == 1:
			return 1 / w.scale
		default:
			return 0
		}
	}
	return (w.shape / w.scale) * math.Pow(z, w.shape-1) * math.Exp(-math.Pow(z, w.shape))
}

// CDF returns P(T <= t) = 1 - exp(-((t-γ)/η)^β).
func (w Weibull) CDF(t float64) float64 {
	if t <= w.loc {
		return 0
	}
	z := (t - w.loc) / w.scale
	// -expm1(-z^β) is accurate for both tiny and large z^β.
	return -math.Expm1(-math.Pow(z, w.shape))
}

// Quantile returns γ + η (-ln(1-p))^(1/β). This is the inverse-CDF transform
// the sampler uses.
func (w Weibull) Quantile(p float64) float64 {
	if p <= 0 {
		return w.loc
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// -log1p(-p) = -ln(1-p), accurate for small p.
	return weibullICDFExp(w.kind, w.loc, w.scale, w.invShape, -math.Log1p(-p))
}

// QuantileFromCumHazard inverts the survival function at e^(-h): it
// returns γ + η h^(1/β), the value whose cumulative hazard is h. This is
// the tilt samplers' inner transform (see tilt.go); taking h directly
// skips the lossy h -> p -> -ln(1-p) round trip of Quantile and shares
// the kernel layer's specialized e^(1/β) evaluation.
func (w Weibull) QuantileFromCumHazard(h float64) float64 {
	if h <= 0 {
		return w.loc
	}
	return weibullICDFExp(w.kind, w.loc, w.scale, w.invShape, h)
}

// Hazard returns the instantaneous failure rate (β/η)((t-γ)/η)^(β-1).
func (w Weibull) Hazard(t float64) float64 {
	if t < w.loc {
		return 0
	}
	z := (t - w.loc) / w.scale
	if z == 0 {
		switch {
		case w.shape < 1:
			return math.Inf(1)
		case w.shape == 1:
			return 1 / w.scale
		default:
			return 0
		}
	}
	return (w.shape / w.scale) * math.Pow(z, w.shape-1)
}

// LogPDF returns ln f(t), computed in log space so that far-tail densities
// underflowing PDF still yield a finite log density.
func (w Weibull) LogPDF(t float64) float64 {
	if t < w.loc {
		return math.Inf(-1)
	}
	z := (t - w.loc) / w.scale
	if z == 0 {
		switch {
		case w.shape < 1:
			return math.Inf(1)
		case w.shape == 1:
			return -w.logScale
		default:
			return math.Inf(-1)
		}
	}
	return math.Log(w.shape) - w.logScale + (w.shape-1)*math.Log(z) - math.Pow(z, w.shape)
}

// CumHazard returns the cumulative hazard H(t) = ((t-γ)/η)^β.
func (w Weibull) CumHazard(t float64) float64 {
	if t <= w.loc {
		return 0
	}
	return math.Pow((t-w.loc)/w.scale, w.shape)
}

// Mean returns γ + η Γ(1 + 1/β).
func (w Weibull) Mean() float64 {
	return w.loc + w.scale*math.Gamma(1+w.invShape)
}

// Variance returns η² [Γ(1+2/β) - Γ(1+1/β)²].
func (w Weibull) Variance() float64 {
	g1 := math.Gamma(1 + w.invShape)
	g2 := math.Gamma(1 + 2*w.invShape)
	return w.scale * w.scale * (g2 - g1*g1)
}

// Sample draws a Weibull variate by inversion: γ + η (-ln U)^(1/β) with
// U uniform on (0, 1). (-ln U has the same law as -ln(1-U).) The
// evaluation goes through the same kind-specialized transform as the
// compiled kernels, so Sample and Compile(w).Draw are bit-identical.
func (w Weibull) Sample(r *rng.RNG) float64 {
	return weibullICDFExp(w.kind, w.loc, w.scale, w.invShape, r.ExpFloat64())
}

// String implements fmt.Stringer with the paper's (γ, η, β) notation.
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(γ=%g, η=%g, β=%g)", w.loc, w.scale, w.shape)
}
