package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"raidrel/internal/rng"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("At wrong")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Error("Set wrong")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewMatrix(0, 3); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestVecMul(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := m.VecMul([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{9, 12, 15}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("VecMul = %v, want %v", y, want)
		}
	}
	if _, err := m.VecMul([]float64{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix solved")
	}
	b, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := Factor(b); err == nil {
		t.Error("non-square matrix factored")
	}
}

func TestDet(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-6)) > 1e-12 {
		t.Errorf("det = %v, want -6", f.Det())
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(8)
		a := MustMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance keeps the system well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*2)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Error("wrong-length b accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestVecMulLinearityProperty(t *testing.T) {
	m, _ := FromRows([][]float64{{1, -2, 0.5}, {3, 4, -1}})
	f := func(a1, a2, b1, b2 float64) bool {
		// Reject inputs that could overflow.
		for _, v := range []float64{a1, a2, b1, b2} {
			if math.Abs(v) > 1e100 || math.IsNaN(v) {
				return true
			}
		}
		x := []float64{a1, a2}
		y := []float64{b1, b2}
		s := []float64{a1 + b1, a2 + b2}
		mx, _ := m.VecMul(x)
		my, _ := m.VecMul(y)
		ms, _ := m.VecMul(s)
		for j := range ms {
			if math.Abs(ms[j]-(mx[j]+my[j])) > 1e-6*(1+math.Abs(ms[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
