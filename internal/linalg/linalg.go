// Package linalg is a small dense linear-algebra substrate: just enough
// (matrix-vector products, LU factorization with partial pivoting, linear
// solves) to support the continuous-time Markov chain comparator models.
// Stdlib-only by design.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given dimensions.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("linalg: invalid dimensions %dx%d", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}, nil
}

// MustMatrix is NewMatrix but panics on invalid dimensions.
func MustMatrix(rows, cols int) *Matrix {
	m, err := NewMatrix(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// FromRows builds a matrix from row slices, which must be non-empty and of
// equal length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("linalg: empty rows")
	}
	cols := len(rows[0])
	m := MustMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged row %d (%d vs %d cols)", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := MustMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M x. x must have length Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("linalg: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// VecMul computes y = x M (row vector times matrix). x must have length
// Rows. This is the natural operation for probability-vector propagation.
func (m *Matrix) VecMul(x []float64) ([]float64, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("linalg: VecMul dimension mismatch: %d rows vs %d vec", m.Rows, len(x))
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y, nil
}

// LU is an LU factorization with partial pivoting: PA = LU.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// Factor computes the LU factorization of a square matrix. It returns an
// error for non-square or numerically singular input.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, max := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				p, max = i, v
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("linalg: matrix is singular at column %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[k*n+j] = lu.Data[k*n+j], lu.Data[p*n+j]
			}
			pivot[p], pivot[k] = pivot[k], pivot[p]
			sign = -sign
		}
		pk := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pk
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Set(i, j, lu.At(i, j)-f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns x with A x = b.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch: %d vs %d", len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience wrapper: factor A and solve A x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}
