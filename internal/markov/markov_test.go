package markov

import (
	"math"
	"testing"
)

func TestChainValidation(t *testing.T) {
	if _, err := New(1, nil); err == nil {
		t.Error("1-state chain accepted")
	}
	if _, err := New(3, []string{"a"}); err == nil {
		t.Error("label mismatch accepted")
	}
	c, err := New(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := c.AddRate(0, 5, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if err := c.AddRate(0, 1, -2); err == nil {
		t.Error("negative rate accepted")
	}
	if err := c.AddRate(0, 1, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if err := c.AddRate(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAbsorbing(0); err == nil {
		t.Error("absorbing state with outgoing rates accepted")
	}
	if err := c.SetAbsorbing(2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(2, 0, 1); err == nil {
		t.Error("rate out of absorbing state accepted")
	}
	if c.Label(0) != "state0" {
		t.Errorf("default label = %q", c.Label(0))
	}
}

func TestTwoStateExactTransient(t *testing.T) {
	// Simple birth-death: 0 -> 1 at rate a, 1 -> 0 at rate b.
	// P(in state 1 at t | start 0) = a/(a+b) (1 - e^{-(a+b)t}).
	a, b := 0.3, 0.7
	c, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, b); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.1, 1, 5, 50} {
		pi, err := c.TransientAt([]float64{1, 0}, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
		if math.Abs(pi[1]-want) > 1e-9 {
			t.Errorf("t=%v: P(1) = %v, want %v", tt, pi[1], want)
		}
		if math.Abs(pi[0]+pi[1]-1) > 1e-9 {
			t.Errorf("t=%v: probabilities sum to %v", tt, pi[0]+pi[1])
		}
	}
}

func TestPureDeathAbsorption(t *testing.T) {
	// 0 -> 1 (absorbing) at rate r: absorption prob is 1 - e^{-rt} and
	// MTTA is 1/r.
	c, err := New(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := c.SetAbsorbing(1); err != nil {
		t.Fatal(err)
	}
	p, err := c.AbsorptionProbability(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-(1-math.Exp(-1))) > 1e-9 {
		t.Errorf("absorption = %v, want %v", p, 1-math.Exp(-1))
	}
	mtta, err := c.MeanTimeToAbsorption(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mtta-100) > 1e-9 {
		t.Errorf("MTTA = %v, want 100", mtta)
	}
	// From the absorbing state itself MTTA is zero.
	if m, _ := c.MeanTimeToAbsorption(1); m != 0 {
		t.Errorf("MTTA from absorbing = %v", m)
	}
}

func TestNoAbsorbingStateMTTAInfinite(t *testing.T) {
	c, _ := New(2, nil)
	if err := c.AddRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddRate(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	m, err := c.MeanTimeToAbsorption(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m, 1) {
		t.Errorf("MTTA = %v, want +Inf", m)
	}
}

func TestTransientValidation(t *testing.T) {
	c, _ := New(2, nil)
	if err := c.AddRate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TransientAt([]float64{1}, 1); err == nil {
		t.Error("short initial vector accepted")
	}
	if _, err := c.TransientAt([]float64{0.5, 0.4}, 1); err == nil {
		t.Error("non-normalized initial accepted")
	}
	if _, err := c.TransientAt([]float64{-1, 2}, 1); err == nil {
		t.Error("negative initial accepted")
	}
	if _, err := c.TransientAt([]float64{1, 0}, -1); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.AbsorptionProbability(7, 1); err == nil {
		t.Error("bad start state accepted")
	}
	if _, err := c.MeanTimeToAbsorption(-1); err == nil {
		t.Error("bad start state accepted")
	}
}

// The classic three-state RAID chain's MTTA must equal the paper's
// equation 1 closed form.
func TestRAIDChainMatchesEquationOne(t *testing.T) {
	cases := []struct {
		n          int
		mtbf, mttr float64
	}{
		{7, 461386, 12},
		{7, 1e6, 24},
		{13, 461386, 6},
		{1, 250000, 12},
	}
	for _, tc := range cases {
		lambda := 1 / tc.mtbf
		mu := 1 / tc.mttr
		c, err := NewRAIDChain(tc.n, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.MeanTimeToAbsorption(RAIDAllGood)
		if err != nil {
			t.Fatal(err)
		}
		n := float64(tc.n)
		want := ((2*n+1)*lambda + mu) / (n * (n + 1) * lambda * lambda)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("N=%d: MTTA = %v, want eq.1 %v", tc.n, got, want)
		}
	}
}

// Equation 3 of the paper: MTBF 461,386 h, MTTR 12 h, N = 7 gives an MTTDL
// of about 36,162 years.
func TestRAIDChainPaperEquationThree(t *testing.T) {
	c, err := NewRAIDChain(7, 1/461386.0, 1/12.0)
	if err != nil {
		t.Fatal(err)
	}
	mtta, err := c.MeanTimeToAbsorption(RAIDAllGood)
	if err != nil {
		t.Fatal(err)
	}
	years := mtta / 8760
	if math.Abs(years-36162) > 100 {
		t.Errorf("MTTDL = %v years, want ~36,162", years)
	}
}

func TestRAIDChainValidation(t *testing.T) {
	if _, err := NewRAIDChain(0, 1e-6, 0.1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewRAIDChain(7, -1, 0.1); err == nil {
		t.Error("negative lambda accepted")
	}
}

// The double-parity chain's MTTA must approach the classical RAID 6
// closed form when repairs are fast, and dwarf the single-parity MTTDL.
func TestDoubleParityChain(t *testing.T) {
	const (
		drives = 8
		mtbf   = 461386.0
		mttr   = 12.0
	)
	c, err := NewDoubleParityChain(drives, 1/mtbf, 1/mttr)
	if err != nil {
		t.Fatal(err)
	}
	mtta, err := c.MeanTimeToAbsorption(DPAllGood)
	if err != nil {
		t.Fatal(err)
	}
	m := float64(drives)
	want := mtbf * mtbf * mtbf / (m * (m - 1) * (m - 2) * mttr * mttr)
	if rel := math.Abs(mtta-want) / want; rel > 1e-3 {
		t.Errorf("MTTA = %v, closed form %v (rel %v)", mtta, want, rel)
	}
	single, err := NewRAIDChain(drives-1, 1/mtbf, 1/mttr)
	if err != nil {
		t.Fatal(err)
	}
	singleMTTA, err := single.MeanTimeToAbsorption(RAIDAllGood)
	if err != nil {
		t.Fatal(err)
	}
	if mtta < singleMTTA*1000 {
		t.Errorf("double parity MTTA %v not >> single parity %v", mtta, singleMTTA)
	}
	if _, err := NewDoubleParityChain(2, 1, 1); err == nil {
		t.Error("2-drive double-parity chain accepted")
	}
}

func TestFigureFourChainStructure(t *testing.T) {
	p := FigureFourRates{
		N:         7,
		LambdaOp:  1 / 461386.0,
		LambdaLd:  1.08e-4,
		MuRestore: 1 / 12.0,
		MuScrub:   1 / 156.0,
	}
	c, err := NewFigureFourChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 5 {
		t.Fatalf("states = %d", c.N())
	}
	if !c.IsAbsorbing(LDFailedLdOp) || !c.IsAbsorbing(LDFailedOpOp) {
		t.Error("failure states not absorbing")
	}
	if got := c.Rate(LDFullyFunctional, LDDegradedLatent); math.Abs(got-8*p.LambdaLd) > 1e-15 {
		t.Errorf("1->2 rate = %v", got)
	}
	if got := c.Rate(LDDegradedLatent, LDFailedLdOp); math.Abs(got-7*p.LambdaOp) > 1e-15 {
		t.Errorf("2->3 rate = %v", got)
	}
	if got := c.Rate(LDDegradedOp, LDFailedOpOp); math.Abs(got-7*p.LambdaOp) > 1e-15 {
		t.Errorf("4->5 rate = %v", got)
	}
}

// With latent defects present, the chain's MTTA must be dramatically
// shorter than the defect-free chain's — the core qualitative claim.
func TestFigureFourChainLatentDefectsShortenLife(t *testing.T) {
	lambda := 1 / 461386.0
	base, err := NewRAIDChain(7, lambda, 1/12.0)
	if err != nil {
		t.Fatal(err)
	}
	baseMTTA, err := base.MeanTimeToAbsorption(RAIDAllGood)
	if err != nil {
		t.Fatal(err)
	}
	withLd, err := NewFigureFourChain(FigureFourRates{
		N: 7, LambdaOp: lambda, LambdaLd: 1.08e-4,
		MuRestore: 1 / 12.0, MuScrub: 1 / 156.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ldMTTA, err := withLd.MeanTimeToAbsorption(LDFullyFunctional)
	if err != nil {
		t.Fatal(err)
	}
	if ldMTTA >= baseMTTA/50 {
		t.Errorf("latent-defect MTTA %v not << defect-free MTTA %v", ldMTTA, baseMTTA)
	}
	// Slower scrub must shorten life further.
	slowScrub, err := NewFigureFourChain(FigureFourRates{
		N: 7, LambdaOp: lambda, LambdaLd: 1.08e-4,
		MuRestore: 1 / 12.0, MuScrub: 1 / 1000.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	slowMTTA, err := slowScrub.MeanTimeToAbsorption(LDFullyFunctional)
	if err != nil {
		t.Fatal(err)
	}
	if slowMTTA >= ldMTTA {
		t.Errorf("slower scrub gave longer MTTA: %v >= %v", slowMTTA, ldMTTA)
	}
}

func TestFigureFourValidation(t *testing.T) {
	if _, err := NewFigureFourChain(FigureFourRates{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewFigureFourChain(FigureFourRates{N: 7}); err == nil {
		t.Error("zero rates accepted")
	}
}

func TestAbsorptionProbabilityMonotone(t *testing.T) {
	c, err := NewRAIDChain(7, 1/461386.0, 1/12.0)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, tt := range []float64{1000, 10000, 87600, 876000} {
		p, err := c.AbsorptionProbability(RAIDAllGood, tt)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("absorption probability decreased at t=%v: %v < %v", tt, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("absorption probability %v out of [0,1]", p)
		}
		prev = p
	}
}

func TestBoundedRepairChainValidation(t *testing.T) {
	if _, err := NewBoundedRepairChain(8, 0, 1, 1e-5, 0.1); err == nil {
		t.Error("redundancy 0 accepted")
	}
	if _, err := NewBoundedRepairChain(2, 2, 1, 1e-5, 0.1); err == nil {
		t.Error("too few drives accepted")
	}
	if _, err := NewBoundedRepairChain(8, 2, 0, 1e-5, 0.1); err == nil {
		t.Error("zero repair crews accepted")
	}
}

// With crews >= redundancy the bound never binds (every transient state
// has at most `redundancy` drives down), so the bounded chain must be
// rate-for-rate identical to the parallel-repair chain.
func TestBoundedRepairChainUnboundedLimit(t *testing.T) {
	const lambda, mu = 1.0 / 461386, 1.0 / 12
	for _, red := range []int{1, 2, 3} {
		bounded, err := NewBoundedRepairChain(8, red, red, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := NewParallelRepairChain(8, red, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < bounded.N(); i++ {
			for j := 0; j < bounded.N(); j++ {
				if bounded.Rate(i, j) != parallel.Rate(i, j) {
					t.Errorf("redundancy %d: rate(%d,%d) = %v, parallel %v",
						red, i, j, bounded.Rate(i, j), parallel.Rate(i, j))
				}
			}
		}
	}
}

// A single crew on a double-parity group is exactly the classic RAID 6
// single-crew chain.
func TestBoundedRepairChainSingleCrewMatchesDoubleParity(t *testing.T) {
	const lambda, mu = 1.0 / 461386, 1.0 / 12
	bounded, err := NewBoundedRepairChain(16, 2, 1, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDoubleParityChain(16, lambda, mu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bounded.N(); i++ {
		for j := 0; j < bounded.N(); j++ {
			if bounded.Rate(i, j) != dp.Rate(i, j) {
				t.Errorf("rate(%d,%d) = %v, double-parity %v", i, j, bounded.Rate(i, j), dp.Rate(i, j))
			}
		}
	}
}

// Fewer crews can only hurt: absorption probability over the mission is
// monotone nonincreasing in the crew count.
func TestBoundedRepairChainMonotoneInCrews(t *testing.T) {
	const lambda, mu = 1.0 / 50000, 1.0 / 200
	prev := 1.0
	for _, crews := range []int{1, 2, 3} {
		c, err := NewBoundedRepairChain(16, 3, crews, lambda, mu)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.AbsorptionProbability(0, 87600)
		if err != nil {
			t.Fatal(err)
		}
		if p <= 0 || p > prev+1e-15 {
			t.Errorf("crews %d: absorption %v not decreasing from %v", crews, p, prev)
		}
		prev = p
	}
}
