// Package markov implements the continuous-time Markov chain machinery that
// underlies the reliability models the paper compares against. All previous
// RAID reliability work the paper reviews ("the primary change has been to
// introduce Markov models", §4.1) assumes constant failure and repair
// rates; this package builds those comparator chains exactly so the Monte
// Carlo model's departures from them can be quantified.
package markov

import (
	"fmt"
	"math"

	"raidrel/internal/linalg"
)

// Chain is a finite-state CTMC described by its generator matrix Q:
// Q[i][j] (i != j) is the transition rate from state i to j, and each
// diagonal entry is the negative row sum. Absorbing states have zero rows.
type Chain struct {
	n         int
	q         *linalg.Matrix
	absorbing []bool
	labels    []string
}

// New builds a chain with n states. Rates are added with AddRate; states
// are made absorbing with SetAbsorbing.
func New(n int, labels []string) (*Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: chain needs >= 2 states, got %d", n)
	}
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("markov: %d labels for %d states", len(labels), n)
	}
	q, err := linalg.NewMatrix(n, n)
	if err != nil {
		return nil, err
	}
	c := &Chain{n: n, q: q, absorbing: make([]bool, n)}
	if labels != nil {
		c.labels = make([]string, n)
		copy(c.labels, labels)
	}
	return c, nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.n }

// Label returns the label of state i, or its index as a string.
func (c *Chain) Label(i int) string {
	if c.labels == nil {
		return fmt.Sprintf("state%d", i)
	}
	return c.labels[i]
}

// AddRate adds a transition from state i to state j at the given positive
// rate, updating the diagonal to keep rows summing to zero.
func (c *Chain) AddRate(i, j int, rate float64) error {
	if i < 0 || i >= c.n || j < 0 || j >= c.n || i == j {
		return fmt.Errorf("markov: invalid transition %d -> %d", i, j)
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return fmt.Errorf("markov: rate %v for %d -> %d must be positive and finite", rate, i, j)
	}
	if c.absorbing[i] {
		return fmt.Errorf("markov: state %d is absorbing", i)
	}
	c.q.Set(i, j, c.q.At(i, j)+rate)
	c.q.Set(i, i, c.q.At(i, i)-rate)
	return nil
}

// SetAbsorbing marks state i absorbing; any rates previously added out of i
// must not exist.
func (c *Chain) SetAbsorbing(i int) error {
	if i < 0 || i >= c.n {
		return fmt.Errorf("markov: invalid state %d", i)
	}
	for j := 0; j < c.n; j++ {
		if i != j && c.q.At(i, j) != 0 {
			return fmt.Errorf("markov: state %d has outgoing rates; cannot absorb", i)
		}
	}
	c.absorbing[i] = true
	return nil
}

// IsAbsorbing reports whether state i is absorbing.
func (c *Chain) IsAbsorbing(i int) bool { return c.absorbing[i] }

// Rate returns the rate from i to j (zero if none).
func (c *Chain) Rate(i, j int) float64 {
	if i == j {
		return 0
	}
	return c.q.At(i, j)
}

// TransientAt returns the state-probability vector at time t >= 0 starting
// from the given initial distribution, computed by uniformization. The
// Poisson series is truncated when the accumulated weight exceeds
// 1 - 1e-12.
func (c *Chain) TransientAt(initial []float64, t float64) ([]float64, error) {
	if len(initial) != c.n {
		return nil, fmt.Errorf("markov: initial vector length %d for %d states", len(initial), c.n)
	}
	var sum float64
	for _, p := range initial {
		if p < 0 {
			return nil, fmt.Errorf("markov: negative initial probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: initial probabilities sum to %v", sum)
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid time %v", t)
	}
	if t == 0 {
		out := make([]float64, c.n)
		copy(out, initial)
		return out, nil
	}
	// Uniformization rate: max exit rate, padded.
	lambda := 0.0
	for i := 0; i < c.n; i++ {
		if r := -c.q.At(i, i); r > lambda {
			lambda = r
		}
	}
	if lambda == 0 {
		out := make([]float64, c.n)
		copy(out, initial)
		return out, nil
	}
	lambda *= 1.02
	// DTMC kernel P = I + Q/lambda.
	p := linalg.MustMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			v := c.q.At(i, j) / lambda
			if i == j {
				v++
			}
			p.Set(i, j, v)
		}
	}
	// pi(t) = sum_k Pois(k; lambda t) * initial P^k.
	lt := lambda * t
	// Poisson weights computed iteratively in log space for large lt.
	out := make([]float64, c.n)
	vec := make([]float64, c.n)
	copy(vec, initial)
	logW := -lt // ln Pois(0)
	accum := 0.0
	maxK := int(lt + 12*math.Sqrt(lt) + 50)
	for k := 0; ; k++ {
		w := math.Exp(logW)
		for i := range out {
			out[i] += w * vec[i]
		}
		accum += w
		if accum > 1-1e-12 || k > maxK {
			break
		}
		next, err := p.VecMul(vec)
		if err != nil {
			return nil, err
		}
		vec = next
		logW += math.Log(lt) - math.Log(float64(k+1))
	}
	// Renormalize the truncated series.
	if accum > 0 {
		for i := range out {
			out[i] /= accum
		}
	}
	return out, nil
}

// AbsorptionProbability returns the probability of having been absorbed
// into any absorbing state by time t, starting from state start.
func (c *Chain) AbsorptionProbability(start int, t float64) (float64, error) {
	if start < 0 || start >= c.n {
		return 0, fmt.Errorf("markov: invalid start state %d", start)
	}
	initial := make([]float64, c.n)
	initial[start] = 1
	pi, err := c.TransientAt(initial, t)
	if err != nil {
		return 0, err
	}
	var p float64
	for i, a := range c.absorbing {
		if a {
			p += pi[i]
		}
	}
	return p, nil
}

// MeanTimeToAbsorption returns the expected time to reach any absorbing
// state starting from state start, by solving -Q_TT tau = 1 on the
// transient submatrix.
func (c *Chain) MeanTimeToAbsorption(start int) (float64, error) {
	if start < 0 || start >= c.n {
		return 0, fmt.Errorf("markov: invalid start state %d", start)
	}
	if c.absorbing[start] {
		return 0, nil
	}
	// Collect transient states.
	idx := make([]int, 0, c.n)
	pos := make(map[int]int, c.n)
	hasAbsorbing := false
	for i := 0; i < c.n; i++ {
		if c.absorbing[i] {
			hasAbsorbing = true
			continue
		}
		pos[i] = len(idx)
		idx = append(idx, i)
	}
	if !hasAbsorbing {
		return math.Inf(1), nil
	}
	m := len(idx)
	a := linalg.MustMatrix(m, m)
	for r, i := range idx {
		for s, j := range idx {
			a.Set(r, s, -c.q.At(i, j))
		}
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	tau, err := linalg.Solve(a, ones)
	if err != nil {
		return 0, fmt.Errorf("markov: absorption solve: %w", err)
	}
	return tau[pos[start]], nil
}
