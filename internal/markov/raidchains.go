package markov

import "fmt"

// State indices for the classic three-state RAID chain.
const (
	RAIDAllGood  = 0 // every drive operational
	RAIDDegraded = 1 // one drive failed, rebuilding
	RAIDDataLoss = 2 // double-disk failure (absorbing)
)

// NewRAIDChain builds the textbook N+1 RAID group chain with constant
// failure rate lambda (per drive-hour) and repair rate mu. Its mean time to
// absorption from state 0 is exactly the paper's equation 1:
//
//	MTTDL = ((2N+1)λ + μ) / (N(N+1)λ²)
func NewRAIDChain(n int, lambda, mu float64) (*Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("markov: RAID chain needs data drives N >= 1, got %d", n)
	}
	c, err := New(3, []string{"all-good", "degraded", "data-loss"})
	if err != nil {
		return nil, err
	}
	total := float64(n + 1)
	if err := c.AddRate(RAIDAllGood, RAIDDegraded, total*lambda); err != nil {
		return nil, err
	}
	if err := c.AddRate(RAIDDegraded, RAIDAllGood, mu); err != nil {
		return nil, err
	}
	if err := c.AddRate(RAIDDegraded, RAIDDataLoss, float64(n)*lambda); err != nil {
		return nil, err
	}
	if err := c.SetAbsorbing(RAIDDataLoss); err != nil {
		return nil, err
	}
	return c, nil
}

// State indices for the double-parity (RAID 6) chain.
const (
	DPAllGood  = 0 // every drive operational
	DPOneDown  = 1 // one drive rebuilding
	DPTwoDown  = 2 // two drives rebuilding
	DPDataLoss = 3 // triple failure (absorbing)
)

// NewDoubleParityChain builds the constant-rate chain for a RAID 6 group
// of totalDrives drives (N data + 2 parity): data loss requires three
// overlapping failures. Repairs proceed one at a time (single repair
// crew), matching the simulator's per-drive restore process. With
// μ >> λ its MTTA approaches MTBF³ / (m(m-1)(m-2) · MTTR²).
func NewDoubleParityChain(totalDrives int, lambda, mu float64) (*Chain, error) {
	if totalDrives < 3 {
		return nil, fmt.Errorf("markov: double-parity chain needs >= 3 drives, got %d", totalDrives)
	}
	c, err := New(4, []string{"all-good", "one-down", "two-down", "data-loss"})
	if err != nil {
		return nil, err
	}
	m := float64(totalDrives)
	add := func(i, j int, rate float64) {
		if err == nil {
			err = c.AddRate(i, j, rate)
		}
	}
	add(DPAllGood, DPOneDown, m*lambda)
	add(DPOneDown, DPAllGood, mu)
	add(DPOneDown, DPTwoDown, (m-1)*lambda)
	add(DPTwoDown, DPOneDown, mu)
	add(DPTwoDown, DPDataLoss, (m-2)*lambda)
	if err != nil {
		return nil, err
	}
	if err := c.SetAbsorbing(DPDataLoss); err != nil {
		return nil, err
	}
	return c, nil
}

// State indices for the five-state latent-defect chain of the paper's
// Fig. 4 (constant-rate approximation).
const (
	LDFullyFunctional = 0 // state 1: all drives good, no latent defects
	LDDegradedLatent  = 1 // state 2: >= 1 latent defect present
	LDFailedLdOp      = 2 // state 3: latent defect then operational failure (absorbing)
	LDDegradedOp      = 3 // state 4: one operational failure, rebuilding
	LDFailedOpOp      = 4 // state 5: two simultaneous operational failures (absorbing)
)

// FigureFourRates holds the constant-rate parameters of the Fig. 4 chain.
type FigureFourRates struct {
	N         int     // data drives (group size is N+1)
	LambdaOp  float64 // operational failure rate per drive-hour
	LambdaLd  float64 // latent defect rate per drive-hour
	MuRestore float64 // rebuild completion rate (1/MTTR)
	MuScrub   float64 // scrub completion rate (1/mean scrub time)
}

// NewFigureFourChain builds the paper's Fig. 4 state diagram as a CTMC with
// constant rates. This is what a Markov treatment of the latent-defect
// model looks like if one (incorrectly, per the paper) assumes
// exponential distributions everywhere — the Monte Carlo engine relaxes
// that assumption.
func NewFigureFourChain(p FigureFourRates) (*Chain, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("markov: figure-4 chain needs N >= 1, got %d", p.N)
	}
	c, err := New(5, []string{
		"fully-functional", "degraded-latent", "failed-ld-op",
		"degraded-op", "failed-op-op",
	})
	if err != nil {
		return nil, err
	}
	total := float64(p.N + 1)
	data := float64(p.N)
	add := func(i, j int, rate float64) {
		if err == nil {
			err = c.AddRate(i, j, rate)
		}
	}
	// 1 -> 2: any of the N+1 drives develops a latent defect.
	add(LDFullyFunctional, LDDegradedLatent, total*p.LambdaLd)
	// 1 -> 4: any of the N+1 drives fails operationally.
	add(LDFullyFunctional, LDDegradedOp, total*p.LambdaOp)
	// 2 -> 1: scrub corrects the latent defect.
	add(LDDegradedLatent, LDFullyFunctional, p.MuScrub)
	// 2 -> 3: operational failure of any of the N other drives => DDF.
	add(LDDegradedLatent, LDFailedLdOp, data*p.LambdaOp)
	// 2 -> 4: the defective drive itself fails operationally (the paper's
	// note 2 folds SMART-trip/time-out transitions into the Op rate).
	add(LDDegradedLatent, LDDegradedOp, p.LambdaOp)
	// 4 -> 1: restore completes.
	add(LDDegradedOp, LDFullyFunctional, p.MuRestore)
	// 4 -> 5: second simultaneous operational failure => DDF.
	add(LDDegradedOp, LDFailedOpOp, data*p.LambdaOp)
	if err != nil {
		return nil, err
	}
	if err := c.SetAbsorbing(LDFailedLdOp); err != nil {
		return nil, err
	}
	if err := c.SetAbsorbing(LDFailedOpOp); err != nil {
		return nil, err
	}
	return c, nil
}
